//! Race-hunting stress tests — `#[ignore]`d by default.
//!
//! The small conformance and determinism suites can miss windows that only
//! open under real contention: many leaves merging at once, redistributes
//! racing workers across pool helpers, whole-structure rebuilds mid-sweep.
//! These tests run repeated *large* mixed batches (the paper's zipf and
//! R-MAT key distributions) on `Pma`/`Cpma` under the full thread pool,
//! checking against `BTreeSet` after every round and re-validating the
//! structure invariants.
//!
//! Run with `cargo test -q -- --ignored` (the CI `stress` job does, on a
//! schedule and on manual dispatch). They take minutes, which is the
//! point.

use cpma::api::testkit::Rng;
use cpma::prelude::*;
use cpma::workloads::{RmatGenerator, ZipfGenerator};
use std::collections::BTreeSet;

/// Thread budget for the stress runs: oversubscribed relative to small CI
/// runners on purpose — preemption inside the merge/redistribute phases
/// opens exactly the windows this suite hunts (`CPMA_THREADS=1` still caps
/// it for a sequential control run).
const STRESS_THREADS: usize = 8;

/// One full mixed-workload run of `rounds` large batches drawn by `next`,
/// checked against the oracle after every round.
fn pounded<S>(next_batch: impl FnMut(usize) -> Vec<u64> + Send, rounds: usize, tag: &str)
where
    S: BatchSet<u64> + RangeSet<u64>,
{
    rayon::ThreadPoolBuilder::new()
        .num_threads(STRESS_THREADS)
        .build()
        .unwrap()
        .install(move || pounded_inner::<S>(next_batch, rounds, tag))
}

fn pounded_inner<S>(mut next_batch: impl FnMut(usize) -> Vec<u64>, rounds: usize, tag: &str)
where
    S: BatchSet<u64> + RangeSet<u64>,
{
    let mut s = S::new_set();
    let mut model: BTreeSet<u64> = BTreeSet::new();
    let mut rng = Rng::new(0x57E5_5000 ^ rounds as u64);
    for round in 0..rounds {
        let mut ins = next_batch(round);
        let added = s.insert_batch(&mut ins, false);
        let mut want_added = 0;
        let mut seen = BTreeSet::new();
        for &k in &ins {
            if seen.insert(k) && model.insert(k) {
                want_added += 1;
            }
        }
        assert_eq!(added, want_added, "{tag} round {round}: insert count");

        // Delete half of a freshly drawn batch (same distribution, so a
        // mix of present keys and misses) plus guaranteed-miss noise.
        let mut del: Vec<u64> = next_batch(round)
            .into_iter()
            .step_by(2)
            .chain((0..1000).map(|_| rng.next_u64()))
            .collect();
        let removed = s.remove_batch(&mut del, false);
        let mut want_removed = 0;
        let mut seen = BTreeSet::new();
        for &k in &del {
            if seen.insert(k) && model.remove(&k) {
                want_removed += 1;
            }
        }
        assert_eq!(removed, want_removed, "{tag} round {round}: remove count");

        assert_eq!(s.len(), model.len(), "{tag} round {round}: len");
        let lo = rng.bits(30);
        let hi = lo.saturating_add(1 << 28);
        let want_sum = model.range(lo..=hi).fold(0u64, |a, &k| a.wrapping_add(k));
        assert_eq!(
            s.range_sum(lo..=hi),
            want_sum,
            "{tag} round {round}: range_sum"
        );
    }
    let final_contents: Vec<u64> = model.iter().copied().collect();
    assert_eq!(s.to_vec(), final_contents, "{tag}: final contents");
}

#[test]
#[ignore = "stress: minutes of runtime; run via `cargo test -- --ignored` (CI stress job)"]
fn cpma_zipf_mixed_batches_under_full_pool() {
    let mut zipf = ZipfGenerator::paper_config(0xC0FFEE);
    pounded::<Cpma>(|_| zipf.keys(200_000), 12, "CPMA/zipf");
}

#[test]
#[ignore = "stress: minutes of runtime; run via `cargo test -- --ignored` (CI stress job)"]
fn pma_zipf_mixed_batches_under_full_pool() {
    let mut zipf = ZipfGenerator::paper_config(0xBEEF);
    pounded::<Pma<u64>>(|_| zipf.keys(200_000), 12, "PMA/zipf");
}

#[test]
#[ignore = "stress: minutes of runtime; run via `cargo test -- --ignored` (CI stress job)"]
fn cpma_rmat_edge_batches_under_full_pool() {
    // R-MAT edges as raw u64 keys: highly skewed, heavy duplicate rate —
    // the distribution that hammers single-leaf contention hardest.
    let gen = RmatGenerator::paper_config(20, 0xABCD);
    pounded::<Cpma>(
        |round| gen.directed_edges(150_000 + round * 10_000),
        10,
        "CPMA/rmat",
    );
}

#[test]
#[ignore = "stress: minutes of runtime; run via `cargo test -- --ignored` (CI stress job)"]
fn cpma_full_rebuild_regime_under_full_pool() {
    // Batches at k >= n/10 force the parallel whole-structure rebuild path
    // every round.
    let mut rng = Rng::new(0x9E37);
    pounded::<Cpma>(|_| rng.keys(400_000, 26), 8, "CPMA/rebuild");
}

#[test]
#[ignore = "stress: minutes of runtime; run via `cargo test -- --ignored` (CI stress job)"]
fn store_combiner_oversubscribed_multi_writers() {
    // The cpma-store front-end under more writer threads than any CI
    // runner has cores, on top of an already-oversubscribed internal
    // pool: preemption inside combining epochs, snapshot publication,
    // and the sharded parallel batch apply all race for the same few
    // cores. Every writer owns a key stripe, so each acknowledgement is
    // oracle-checked, and every acknowledged write must be visible in
    // the next published snapshot.
    const WRITERS: u64 = 16;
    const OPS_PER_WRITER: usize = 25_000;

    // A non-zero window so the leader actually holds epochs open for the
    // 128-op target (with the default zero wait the target is inert and
    // draining is purely reactive — that path is stressed by the
    // cpma-store suite's own concurrent test).
    let cfg = CombinerConfig {
        window_ops: 128,
        window_wait: std::time::Duration::from_micros(20),
        ..CombinerConfig::default()
    };
    let store: Combiner<ShardedSet<Cpma, 8>> = Combiner::with_config(BatchSet::new_set(), cfg);

    let models: Vec<BTreeSet<u64>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..WRITERS)
            .map(|t| {
                let store = &store;
                scope.spawn(move || {
                    let mut rng = Rng::new(0x57E5_5100 + t);
                    let mut model: BTreeSet<u64> = BTreeSet::new();
                    for i in 0..OPS_PER_WRITER {
                        let k = (t << 40) | rng.bits(14);
                        match rng.below(4) {
                            0 | 1 => {
                                assert_eq!(store.insert(k), model.insert(k), "t{t} insert({k})")
                            }
                            2 => {
                                assert_eq!(store.remove(k), model.remove(&k), "t{t} remove({k})")
                            }
                            _ => assert_eq!(
                                store.contains(k),
                                model.contains(&k),
                                "t{t} contains({k})"
                            ),
                        }
                        if i % 4096 == 4095 {
                            let snap = store.snapshot();
                            for &k in &model {
                                assert!(snap.contains(k), "t{t}: acked {k} not in snapshot");
                            }
                        }
                    }
                    model
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let mut want: Vec<u64> = models.iter().flatten().copied().collect();
    want.sort_unstable();
    assert_eq!(store.snapshot().to_vec(), want, "final snapshot");
    assert_eq!(store.into_inner().to_vec(), want, "final contents");
}
