//! Determinism across thread counts.
//!
//! The paper's batch algorithm is deterministic by construction — leaf
//! merges are disjoint, counting reductions are integer sums, rebuild
//! offsets are precomputed — so **every** observable result must be
//! bit-identical no matter how many threads execute it. These tests run
//! the same seeded workload under thread budgets 1 (the sequential
//! oracle), 2, and 8 on every `BatchSet` backend and on the workload
//! generators, and require identical outputs.
//!
//! Budgets are pinned with `ThreadPool::install` (process-global), so the
//! suite serializes itself on a lock. A `CPMA_THREADS=1` run caps all
//! three budgets to one — the comparisons then hold trivially, and the CI
//! matrix's default-threads leg does the real cross-schedule comparison.

use cpma::api::testkit::Rng;
use cpma::prelude::*;
use std::collections::BTreeSet;
use std::sync::Mutex;

static BUDGET_LOCK: Mutex<()> = Mutex::new(());

fn with_threads<T: Send>(threads: usize, f: impl FnOnce() -> T + Send) -> T {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .unwrap()
        .install(f)
}

/// Everything a workload observes from a backend, in one comparable blob.
#[derive(Debug, PartialEq, Eq)]
struct Observations {
    contents: Vec<u64>,
    counts: Vec<usize>,
    sums: Vec<u64>,
    sizes: Vec<usize>,
    hits: Vec<bool>,
    succs: Vec<Option<u64>>,
}

/// A seeded mixed batch workload: large unsorted insert and remove batches
/// (well past the point-update cutoff, so the three-phase parallel
/// algorithm runs), a *mixed-op* batch per round (interleaved
/// inserts/removes through `apply_batch` — the single-pass pipeline on
/// PMA-family backends, parallel sort + dedup in `normalize_ops`
/// everywhere), plus range sums and len/min/max probes.
fn run_workload<S: BatchSet<u64> + RangeSet<u64>>(seed: u64) -> Observations {
    let mut rng = Rng::new(seed);
    let mut s = S::new_set();
    let mut obs = Observations {
        contents: Vec::new(),
        counts: Vec::new(),
        sums: Vec::new(),
        sizes: Vec::new(),
        hits: Vec::new(),
        succs: Vec::new(),
    };
    for round in 0..6 {
        let mut ins = rng.keys(4000, 24);
        obs.counts.push(s.insert_batch(&mut ins, false));
        let mut del = rng.keys(1500, 24);
        obs.counts.push(s.remove_batch(&mut del, false));
        let mut ops: Vec<BatchOp<u64>> = rng
            .keys(3000, 24)
            .into_iter()
            .map(|k| {
                if k % 2 == 0 {
                    BatchOp::Insert(k)
                } else {
                    BatchOp::Remove(k ^ 1)
                }
            })
            .collect();
        let out = s.apply_batch(&mut ops, false);
        obs.counts.push(out.added);
        obs.counts.push(out.removed);
        let a = rng.bits(24);
        let b = rng.bits(24);
        obs.sums.push(s.range_sum(a.min(b)..=a.max(b)));
        obs.sums.push(s.range_sum(..));
        obs.sizes.push(s.len());
        // Batched point reads: sharded backends answer these with a
        // parallel per-shard fan-out, so the result order (original probe
        // order, duplicates preserved) must survive any schedule.
        let mut probes = rng.keys(600, 24);
        probes.push(0);
        probes.push(u64::MAX);
        probes.push(probes[0]);
        obs.hits.extend(s.contains_batch(&probes));
        obs.succs.extend(s.successor_batch(&probes));
        if round == 5 {
            obs.contents = s.to_vec();
        }
    }
    obs
}

fn assert_deterministic<S: BatchSet<u64> + RangeSet<u64>>(name: &str) {
    let _guard = BUDGET_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    for seed in [0x5EED_0001u64, 0xD15C_0C0A] {
        let oracle = with_threads(1, || run_workload::<S>(seed));
        for threads in [2usize, 8] {
            let got = with_threads(threads, || run_workload::<S>(seed));
            assert_eq!(
                got, oracle,
                "{name}: results diverged between 1 and {threads} threads (seed {seed:#x})"
            );
        }
    }
}

#[test]
fn pma_batches_deterministic_across_thread_counts() {
    assert_deterministic::<Pma<u64>>("PMA");
}

#[test]
fn cpma_batches_deterministic_across_thread_counts() {
    assert_deterministic::<Cpma>("CPMA");
}

#[test]
fn ptree_batches_deterministic_across_thread_counts() {
    assert_deterministic::<PTree>("P-tree");
}

#[test]
fn upac_batches_deterministic_across_thread_counts() {
    assert_deterministic::<UPac>("U-PaC");
}

#[test]
fn cpac_batches_deterministic_across_thread_counts() {
    assert_deterministic::<CPac>("C-PaC");
}

#[test]
fn ctree_batches_deterministic_across_thread_counts() {
    assert_deterministic::<CTreeSet>("C-tree");
}

#[test]
fn btreeset_batches_deterministic_across_thread_counts() {
    assert_deterministic::<BTreeSet<u64>>("BTreeSet");
}

#[test]
fn sharded_cpma_batches_deterministic_across_thread_counts() {
    // The sharded wrapper adds two more schedule-sensitive layers — the
    // parallel per-shard batch application and the skew-triggered
    // rebalance — both of which must be invisible in the results: the
    // per-shard counts merge in shard index order and the rebalance
    // decision depends only on the stored contents.
    assert_deterministic::<ShardedSet<Cpma, 8>>("ShardedSet<Cpma, 8>");
    assert_deterministic::<ShardedSet<Cpma, 3>>("ShardedSet<Cpma, 3>");
}

#[test]
fn autotuned_sharded_cpma_deterministic_across_thread_counts() {
    // Shard-count autotuning adds a third schedule-sensitive layer: the
    // resharding decision. It reads only the stored contents and the
    // batch-op counters (both schedule-independent), so grow/shrink
    // points — and therefore all observable results — must be identical
    // at every thread budget.
    assert_deterministic::<ShardedSet<Cpma, 4, 1, 16>>("ShardedSet<Cpma, 4, 1, 16>");
    assert_deterministic::<ShardedSet<Cpma, 2, 2, 32>>("ShardedSet<Cpma, 2, 2, 32>");
}

#[test]
fn combiner_adaptive_policy_deterministic_across_thread_counts() {
    // The adaptive window changes *when* epochs seal (wall-clock
    // dependent), but never *what* the linearized history computes: with
    // one submitting thread, acknowledgements and final contents are a
    // pure function of the op stream, whatever the internal thread
    // budget or the epoch partitioning. Stats (epoch counts, seal
    // reasons) are deliberately excluded — they are timing-dependent.
    fn run(seed: u64) -> (Vec<bool>, Vec<u64>) {
        let c: Combiner<ShardedSet<Cpma, 4, 1, 16>> =
            Combiner::with_config(BatchSet::new_set(), CombinerConfig::adaptive());
        let mut rng = Rng::new(seed);
        let mut acks = Vec::new();
        for _ in 0..40 {
            let burst: Vec<cpma::store::Op<u64>> = (0..rng.below(200) + 1)
                .map(|_| {
                    let k = rng.bits(14);
                    match rng.below(3) {
                        0 => cpma::store::Op::Insert(k),
                        1 => cpma::store::Op::Remove(k),
                        _ => cpma::store::Op::Contains(k),
                    }
                })
                .collect();
            acks.extend(c.submit_many(&burst));
            acks.push(c.insert(rng.bits(14)));
        }
        let contents = RangeSet::to_vec(&c.into_inner());
        (acks, contents)
    }
    let _guard = BUDGET_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    for seed in [0xADA_0001u64, 0xADA_0002] {
        let oracle = with_threads(1, || run(seed));
        for threads in [2usize, 8] {
            let got = with_threads(threads, || run(seed));
            assert_eq!(
                got, oracle,
                "adaptive combiner diverged between 1 and {threads} threads (seed {seed:#x})"
            );
        }
    }
}

#[test]
fn service_round_trip_deterministic_across_thread_counts() {
    // A scripted single-connection op trace through the real TCP front
    // door. Reply bytes and final contents are a pure function of the op
    // stream: per-op acks replay against the epoch overlay, snapshot
    // reads are served only after the connection's earlier writes were
    // acked, and set contents are history-independent — so neither the
    // internal batch-application budget nor how TCP delivery splits the
    // pipeline into combining epochs may show through.
    fn run(seed: u64) -> (Vec<Vec<u8>>, Vec<u64>) {
        use cpma::service::{Client, Request, Service, ServiceConfig};
        let (mut service, combiner) =
            Service::serve(Cpma::new(), ServiceConfig::default()).unwrap();
        let mut client = Client::connect(service.local_addr()).unwrap();
        let mut rng = Rng::new(seed);
        let mut reply_bytes: Vec<Vec<u8>> = Vec::new();
        for _ in 0..12 {
            let burst: Vec<Request> = (0..rng.below(150) + 1)
                .map(|_| {
                    let k = rng.bits(10);
                    match rng.below(6) {
                        0 => Request::Remove { seq: 0, key: k },
                        1 => Request::Contains { seq: 0, key: k },
                        2 => Request::RangeSum {
                            seq: 0,
                            lo: k,
                            hi: k + 64,
                        },
                        3 => Request::Scan {
                            seq: 0,
                            lo: k,
                            max: 16,
                        },
                        4 => Request::ContainsBatch {
                            seq: 0,
                            keys: rng.keys(4, 10),
                        },
                        _ => Request::Insert { seq: 0, key: k },
                    }
                })
                .collect();
            for reply in client.pipeline(burst).unwrap() {
                let mut body = Vec::new();
                reply.encode_body(&mut body);
                reply_bytes.push(body);
            }
        }
        let contents = combiner.snapshot().to_vec();
        service.shutdown();
        (reply_bytes, contents)
    }
    let _guard = BUDGET_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    for seed in [0x5E2C_0001u64, 0x5E2C_0002] {
        let oracle = with_threads(1, || run(seed));
        for threads in [2usize, 8] {
            let got = with_threads(threads, || run(seed));
            assert_eq!(
                got, oracle,
                "service round trip diverged between 1 and {threads} threads (seed {seed:#x})"
            );
        }
    }
}

#[test]
fn workload_generators_deterministic_across_thread_counts() {
    // The paper's input generators are chunk-parallel with per-chunk seed
    // streams; their output must not depend on the thread count either.
    let _guard = BUDGET_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let uniform1 = with_threads(1, || cpma::workloads::uniform_keys(300_000, 40, 42));
    let rmat1 = with_threads(1, || {
        cpma::workloads::RmatGenerator::paper_config(12, 7).directed_edges(200_000)
    });
    for threads in [2usize, 8] {
        let uniform = with_threads(threads, || cpma::workloads::uniform_keys(300_000, 40, 42));
        assert_eq!(uniform, uniform1, "uniform_keys @ {threads} threads");
        let rmat = with_threads(threads, || {
            cpma::workloads::RmatGenerator::paper_config(12, 7).directed_edges(200_000)
        });
        assert_eq!(rmat, rmat1, "rmat edges @ {threads} threads");
    }
}

#[test]
fn normalize_batch_deterministic_across_thread_counts() {
    // normalize_batch is the parallel sort every unsorted wrapper routes
    // through; sorting u64s has one answer, but this pins the whole
    // pipeline (sort + dedup) across schedules.
    let _guard = BUDGET_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let mut rng = Rng::new(0xBA7C4);
    let input = rng.keys(250_000, 18); // dense: plenty of duplicates
    let oracle = with_threads(1, || {
        let mut v = input.clone();
        normalize_batch(&mut v).to_vec()
    });
    for threads in [2usize, 8] {
        let got = with_threads(threads, || {
            let mut v = input.clone();
            normalize_batch(&mut v).to_vec()
        });
        assert_eq!(got, oracle, "normalize_batch @ {threads} threads");
    }
}

#[test]
fn normalize_ops_deterministic_across_thread_counts() {
    // normalize_ops leans on the *stable* parallel sort: with heavy
    // same-key duplication, last-op-wins dedup must pick the same op at
    // every thread count (submission order, not schedule order).
    let _guard = BUDGET_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let mut rng = Rng::new(0x0B5C4);
    let input: Vec<BatchOp<u64>> = (0..200_000)
        .map(|_| {
            let k = rng.bits(12); // ~4k distinct keys: long same-key runs
            if rng.chance(1, 2) {
                BatchOp::Insert(k)
            } else {
                BatchOp::Remove(k)
            }
        })
        .collect();
    let oracle = with_threads(1, || {
        let mut v = input.clone();
        normalize_ops(&mut v).to_vec()
    });
    assert!(oracle.windows(2).all(|w| w[0].key() < w[1].key()));
    for threads in [2usize, 8] {
        let got = with_threads(threads, || {
            let mut v = input.clone();
            normalize_ops(&mut v).to_vec()
        });
        assert_eq!(got, oracle, "normalize_ops @ {threads} threads");
    }
}

/// All files of a checkpoint/WAL directory as `(name, bytes)`, sorted —
/// the unit of byte-identity for directory-shaped persistence.
fn dir_image(path: &std::path::Path) -> Vec<(String, Vec<u8>)> {
    let mut files: Vec<(String, Vec<u8>)> = std::fs::read_dir(path)
        .unwrap()
        .map(|e| {
            let e = e.unwrap();
            (
                e.file_name().to_str().unwrap().to_owned(),
                std::fs::read(e.path()).unwrap(),
            )
        })
        .collect();
    files.sort();
    files
}

/// A seeded batch history for the snapshot-determinism tests: both batch
/// directions plus a mixed pass, all above the point-update cutoff.
fn build_history<S: BatchSet<u64>>(seed: u64) -> S {
    let mut rng = Rng::new(seed);
    let mut s = S::new_set();
    for _ in 0..4 {
        let mut ins = rng.keys(4000, 24);
        s.insert_batch(&mut ins, false);
        let mut del = rng.keys(1500, 24);
        s.remove_batch(&mut del, false);
        let mut ops: Vec<BatchOp<u64>> = rng
            .keys(2000, 24)
            .into_iter()
            .map(|k| {
                if k % 2 == 0 {
                    BatchOp::Insert(k)
                } else {
                    BatchOp::Remove(k ^ 1)
                }
            })
            .collect();
        s.apply_batch(&mut ops, false);
    }
    s
}

#[test]
fn snapshot_images_bit_identical_across_thread_counts() {
    // A snapshot is the raw byte view of the PMA's backing arrays —
    // including the slack past each leaf's used prefix — so byte
    // identity here proves every array write of the batch pipeline is
    // deterministic, a strictly stronger claim than equal contents.
    let _guard = BUDGET_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    for seed in [0x5EED_0001u64, 0xD15C_0C0A] {
        let pma = with_threads(1, || build_history::<Pma<u64>>(seed).to_snapshot_bytes());
        let cpma = with_threads(1, || build_history::<Cpma>(seed).to_snapshot_bytes());
        for threads in [2usize, 8] {
            let p = with_threads(threads, || {
                build_history::<Pma<u64>>(seed).to_snapshot_bytes()
            });
            assert_eq!(p, pma, "Pma image @ {threads} threads (seed {seed:#x})");
            let c = with_threads(threads, || build_history::<Cpma>(seed).to_snapshot_bytes());
            assert_eq!(c, cpma, "Cpma image @ {threads} threads (seed {seed:#x})");
        }
        // Load → re-save is the identity on bytes (canonical images).
        let back = cpma::pma::Cpma::from_snapshot_bytes(&cpma).unwrap();
        assert_eq!(back.to_snapshot_bytes(), cpma);
    }
}

#[test]
fn hybrid_codec_images_bit_identical_on_clustered_keys() {
    // Clustered runs push the CPMA through its hybrid machinery: dense
    // leaves adopt the bitmap encoding, removals flip them back, and the
    // wordwise merge paths run alongside the scalar ones. The per-leaf
    // codec choice is part of the snapshot image, so it must be exactly as
    // schedule-independent as the element contents.
    fn build(seed: u64) -> cpma::pma::Cpma {
        let keys = cpma::workloads::clustered_keys(40_000, 96, 1 << 22, seed);
        let mut s = cpma::pma::Cpma::new();
        for chunk in keys.chunks(5_000) {
            let mut batch = chunk.to_vec();
            s.insert_batch(&mut batch, false);
        }
        // Thin out some runs so leaves cross the codec threshold in both
        // directions across redistributes.
        let mut rng = Rng::new(seed ^ 0xF11);
        let mut del: Vec<u64> = keys.iter().copied().filter(|_| rng.chance(1, 3)).collect();
        s.remove_batch(&mut del, false);
        let mut ops: Vec<BatchOp<u64>> = keys
            .iter()
            .take(8_000)
            .map(|&k| {
                if k % 2 == 0 {
                    BatchOp::Insert(k)
                } else {
                    BatchOp::Remove(k)
                }
            })
            .collect();
        s.apply_batch(&mut ops, false);
        s
    }
    let _guard = BUDGET_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    for seed in [0xC1D5_0001u64, 0xC1D5_0002] {
        let oracle = with_threads(1, || build(seed).to_snapshot_bytes());
        for threads in [2usize, 8] {
            let got = with_threads(threads, || build(seed).to_snapshot_bytes());
            assert_eq!(
                got, oracle,
                "hybrid Cpma image @ {threads} threads (seed {seed:#x})"
            );
        }
        // Canonical image: load → re-save is the identity here too.
        let back = cpma::pma::Cpma::from_snapshot_bytes(&oracle).unwrap();
        assert_eq!(back.to_snapshot_bytes(), oracle);
        back.check_invariants();
    }
}

#[test]
fn sharded_checkpoint_dirs_bit_identical_across_thread_counts() {
    // Shard-per-file checkpoints add the parallel per-shard batch
    // application and the autotuner to the byte-identity claim.
    let _guard = BUDGET_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let base = std::env::temp_dir().join(format!("cpma-det-sharded-{}", std::process::id()));
    let save_image = |threads: usize, seed: u64| {
        let dir = base.join(format!("t{threads}"));
        let _ = std::fs::remove_dir_all(&dir);
        let set = with_threads(threads, || {
            build_history::<ShardedSet<Cpma, 4, 1, 16>>(seed)
        });
        set.save(&dir).unwrap();
        dir_image(&dir)
    };
    for seed in [0x5EED_0001u64, 0xD15C_0C0A] {
        let oracle = save_image(1, seed);
        for threads in [2usize, 8] {
            assert_eq!(
                save_image(threads, seed),
                oracle,
                "sharded checkpoint @ {threads} threads (seed {seed:#x})"
            );
        }
    }
    std::fs::remove_dir_all(&base).unwrap();
}

#[test]
fn durable_combiner_wal_and_recovery_bit_identical_across_thread_counts() {
    // The full save/log/replay round: one seeded op stream through a
    // durable combiner must leave byte-identical WAL segments at every
    // internal thread budget, and replaying them must rebuild identical
    // contents.
    let _guard = BUDGET_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let base = std::env::temp_dir().join(format!("cpma-det-wal-{}", std::process::id()));
    let run = |threads: usize, seed: u64| {
        let dir = base.join(format!("t{threads}"));
        let _ = std::fs::remove_dir_all(&dir);
        let mut wal = WalConfig::new(&dir);
        wal.fsync = FsyncPolicy::Never;
        wal.rotate_bytes = u64::MAX;
        with_threads(threads, || {
            let (c, report) =
                Combiner::<ShardedSet<Cpma, 4>>::open_durable(CombinerConfig::default(), wal)
                    .unwrap();
            assert_eq!(report.last_seq, 0);
            let mut rng = Rng::new(seed);
            for _ in 0..12 {
                let burst: Vec<cpma::store::Op<u64>> = (0..rng.below(300) + 8)
                    .map(|_| {
                        let k = rng.bits(12);
                        if rng.chance(1, 3) {
                            cpma::store::Op::Remove(k)
                        } else {
                            cpma::store::Op::Insert(k)
                        }
                    })
                    .collect();
                c.submit_many(&burst);
            }
            drop(c);
            let (set, report) = cpma::persist::recover::<u64, ShardedSet<Cpma, 4>>(&dir).unwrap();
            assert_eq!(report.last_seq, 12);
            assert!(!report.truncated_tail);
            (dir_image(&dir), set.to_vec())
        })
    };
    for seed in [0xD04A_0001u64, 0xD04A_0002] {
        let oracle = run(1, seed);
        for threads in [2usize, 8] {
            assert_eq!(
                run(threads, seed),
                oracle,
                "durable combiner @ {threads} threads (seed {seed:#x})"
            );
        }
    }
    std::fs::remove_dir_all(&base).unwrap();
}
