//! Property-based tests for the core invariants the paper's data
//! structures must uphold under arbitrary inputs, driven by the in-repo
//! randomized-test kit ([`cpma::api::testkit::Rng`]) — seeded and fully
//! deterministic, no external property-testing dependency (the build
//! environment is offline).

use cpma::api::testkit::{sorted_unique, Rng};
use cpma::pma::codec;
use cpma::prelude::*;
use std::collections::BTreeSet;
use std::ops::Bound;

const CASES: u64 = 64;

/// Byte codes round-trip any strictly increasing run.
#[test]
fn codec_roundtrip() {
    let mut rng = Rng::new(0xC0DE);
    for _ in 0..CASES {
        let elems = sorted_unique(rng.raw_keys(300));
        let len = codec::encoded_run_len(&elems, 8);
        let mut buf = vec![0u8; len];
        let written = codec::encode_run(&elems, &mut buf);
        assert_eq!(written, len);
        let mut out = Vec::new();
        codec::decode_run(&buf, elems.len(), &mut out);
        assert_eq!(out, elems);
    }
}

/// Varints round-trip any u64.
#[test]
fn varint_roundtrip() {
    let mut rng = Rng::new(0x7A21);
    let probe = |v: u64| {
        let mut buf = [0u8; codec::MAX_VARINT_BYTES];
        let n = codec::write_varint(v, &mut buf);
        assert_eq!(n, codec::varint_len(v));
        let (back, used) = codec::decode_varint(&buf);
        assert_eq!(back, v);
        assert_eq!(used, n);
    };
    probe(0);
    probe(u64::MAX);
    for _ in 0..CASES * 4 {
        // Vary magnitude so every varint width is hit.
        let bits = rng.below(64) as u32 + 1;
        probe(rng.bits(bits));
    }
}

/// Batch insert ≡ point inserts, for the PMA.
#[test]
fn pma_batch_equals_points() {
    let mut rng = Rng::new(0xBA7C);
    for _ in 0..CASES {
        let base = sorted_unique(rng.raw_keys(500));
        let mut batched = Pma::<u64>::from_sorted(&base);
        let mut pointed = Pma::<u64>::from_sorted(&base);
        let b = sorted_unique(rng.raw_keys(800));
        let added = batched.insert_batch_sorted(&b);
        let mut point_added = 0;
        for &k in &b {
            if pointed.insert(k) {
                point_added += 1;
            }
        }
        assert_eq!(added, point_added);
        assert!(batched.iter().eq(pointed.iter()));
        batched.check_invariants();
        pointed.check_invariants();
    }
}

/// The CPMA stores exactly the same set as the PMA under the same
/// operations (compression must be invisible).
#[test]
fn cpma_equals_pma() {
    let mut rng = Rng::new(0xCE0A);
    for _ in 0..CASES {
        let mut pma = Pma::<u64>::new();
        let mut cpma = Cpma::new();
        let rounds = rng.below(7) + 1;
        for _ in 0..rounds {
            let b = sorted_unique(rng.raw_keys(400).into_iter().chain([1]).collect());
            if rng.chance(1, 2) {
                assert_eq!(pma.insert_batch_sorted(&b), cpma.insert_batch_sorted(&b));
            } else {
                assert_eq!(pma.remove_batch_sorted(&b), cpma.remove_batch_sorted(&b));
            }
        }
        assert!(pma.iter().eq(cpma.iter()));
        pma.check_invariants();
        cpma.check_invariants();
    }
}

/// delete ∘ insert ≡ identity on the CPMA.
#[test]
fn cpma_insert_then_delete_is_identity() {
    let mut rng = Rng::new(0x1DE7);
    for _ in 0..CASES {
        let base = sorted_unique(rng.raw_keys(600));
        let extra: Vec<u64> = sorted_unique(rng.raw_keys(600).into_iter().chain([3]).collect())
            .into_iter()
            .filter(|k| base.binary_search(k).is_err())
            .collect();
        let mut c = Cpma::from_sorted(&base);
        let before: Vec<u64> = c.iter().collect();
        let added = c.insert_batch_sorted(&extra);
        assert_eq!(added, extra.len());
        let removed = c.remove_batch_sorted(&extra);
        assert_eq!(removed, extra.len());
        assert_eq!(c.iter().collect::<Vec<_>>(), before);
        c.check_invariants();
    }
}

/// THE range-agreement property of the new API: on every structure,
/// `range_iter(range)` ≡ `for_range(range)` ≡ `BTreeSet::range(range)`,
/// for random windows in every `RangeBounds` shape (including ones only
/// the inclusive forms can express, like `..=u64::MAX`).
#[test]
fn range_iter_agrees_with_for_range_and_btreeset_on_every_structure() {
    fn check<S: BatchSet<u64> + RangeSet<u64>>(rng: &mut Rng) {
        let elems = sorted_unique(
            rng.raw_keys(500)
                .into_iter()
                .chain([0, u64::MAX, rng.next_u64()])
                .collect(),
        );
        let s = S::build_sorted(&elems);
        let model: BTreeSet<u64> = elems.iter().copied().collect();
        for _ in 0..12 {
            let a = rng.next_u64();
            let b = rng.next_u64();
            let (lo, hi) = (a.min(b), a.max(b));
            let shapes: [(Bound<u64>, Bound<u64>); 6] = [
                (Bound::Included(lo), Bound::Excluded(hi)),
                (Bound::Included(lo), Bound::Included(hi)),
                (Bound::Excluded(lo), Bound::Included(hi)),
                (Bound::Included(lo), Bound::Unbounded),
                (Bound::Unbounded, Bound::Excluded(hi)),
                (Bound::Unbounded, Bound::Unbounded),
            ];
            for range in shapes {
                let want: Vec<u64> = model.range(range).copied().collect();
                let got_iter: Vec<u64> = s.range_iter(range).collect();
                assert_eq!(got_iter, want, "{}: range_iter {range:?}", S::NAME);
                let mut got_for = Vec::new();
                s.for_range(range, |k| got_for.push(k));
                assert_eq!(got_for, want, "{}: for_range {range:?}", S::NAME);
                let want_sum = want.iter().fold(0u64, |x, &y| x.wrapping_add(y));
                assert_eq!(
                    s.range_sum(range),
                    want_sum,
                    "{}: range_sum {range:?}",
                    S::NAME
                );
            }
        }
    }
    let mut rng = Rng::new(0x4A63);
    for _ in 0..8 {
        check::<Pma<u64>>(&mut rng);
        check::<Cpma>(&mut rng);
        check::<PTree>(&mut rng);
        check::<UPac>(&mut rng);
        check::<CPac>(&mut rng);
        check::<CTreeSet>(&mut rng);
        check::<BTreeSet<u64>>(&mut rng);
    }
}

/// successor() is the BTreeSet range lower bound.
#[test]
fn successor_matches_model() {
    let mut rng = Rng::new(0x5CCE);
    for _ in 0..CASES {
        let elems = sorted_unique(rng.raw_keys(400));
        let model: BTreeSet<u64> = elems.iter().copied().collect();
        let p = Pma::<u64>::from_sorted(&elems);
        let probe = rng.next_u64();
        let want = model.range(probe..).next().copied();
        assert_eq!(p.successor(probe), want);
    }
}

/// Tree baselines implement the same set as the PMA (union semantics).
#[test]
fn baselines_match_pma() {
    let mut rng = Rng::new(0xBA5E);
    for _ in 0..CASES {
        let base = sorted_unique(rng.raw_keys(400));
        let batch = sorted_unique(rng.raw_keys(400));
        let dels = sorted_unique(rng.raw_keys(200));
        let mut pma = Pma::<u64>::from_sorted(&base);
        let mut pt = PTree::from_sorted(&base);
        let mut cp = CPac::from_sorted(&base);
        assert_eq!(
            pma.insert_batch_sorted(&batch),
            pt.insert_batch_sorted(&batch)
        );
        assert_eq!(
            cp.insert_batch_sorted(&batch),
            pt.len() - base.len().min(pt.len())
        );
        assert_eq!(
            pma.remove_batch_sorted(&dels),
            pt.remove_batch_sorted(&dels)
        );
        cp.remove_batch_sorted(&dels);
        let reference: Vec<u64> = pma.iter().collect();
        assert_eq!(pt.collect(), reference);
        assert_eq!(cp.collect(), reference);
    }
}

/// Structural invariants hold after arbitrary mixed point operations.
#[test]
fn pma_invariants_under_point_ops() {
    let mut rng = Rng::new(0x1417);
    for _ in 0..CASES {
        let mut p = Pma::<u64>::new();
        let mut c = Cpma::new();
        let ops = rng.below(600) as usize;
        for _ in 0..ops {
            let k = rng.bits(32);
            if rng.chance(1, 2) {
                p.insert(k);
                c.insert(k);
            } else {
                p.remove(k);
                c.remove(k);
            }
        }
        p.check_invariants();
        c.check_invariants();
        assert!(p.iter().eq(c.iter()));
    }
}

/// The std-idiom constructors agree with the batch API.
#[test]
fn from_iterator_and_extend_match_batches() {
    let mut rng = Rng::new(0xF20E);
    for _ in 0..16 {
        let keys = rng.raw_keys(500);
        let collected: Cpma = keys.iter().copied().collect();
        let mut batched = Cpma::new();
        batched.insert_batch(&mut keys.clone(), false);
        assert!(collected.iter().eq(batched.iter()));
        let more = rng.raw_keys(300);
        let mut extended = collected;
        extended.extend(more.iter().copied());
        batched.insert_batch(&mut more.clone(), false);
        assert!(extended.iter().eq(batched.iter()));
    }
}
