//! Property-based tests (proptest) for the core invariants the paper's
//! data structures must uphold under arbitrary inputs.

use cpma::baselines::{CPac, PTree};
use cpma::pma::{codec, Cpma, Pma};
use proptest::collection::vec;
use proptest::prelude::*;
use std::collections::BTreeSet;

fn sorted_unique(mut v: Vec<u64>) -> Vec<u64> {
    v.sort_unstable();
    v.dedup();
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Byte codes round-trip any strictly increasing run.
    #[test]
    fn codec_roundtrip(raw in vec(any::<u64>(), 0..300)) {
        let elems = sorted_unique(raw);
        let len = codec::encoded_run_len(&elems, 8);
        let mut buf = vec![0u8; len];
        let written = codec::encode_run(&elems, &mut buf);
        prop_assert_eq!(written, len);
        let mut out = Vec::new();
        codec::decode_run(&buf, elems.len(), &mut out);
        prop_assert_eq!(out, elems);
    }

    /// Varints round-trip any u64.
    #[test]
    fn varint_roundtrip(v in any::<u64>()) {
        let mut buf = [0u8; codec::MAX_VARINT_BYTES];
        let n = codec::write_varint(v, &mut buf);
        prop_assert_eq!(n, codec::varint_len(v));
        let (back, used) = codec::decode_varint(&buf);
        prop_assert_eq!(back, v);
        prop_assert_eq!(used, n);
    }

    /// Batch insert ≡ point inserts, for the PMA.
    #[test]
    fn pma_batch_equals_points(
        base in vec(any::<u64>(), 0..500),
        batch in vec(any::<u64>(), 0..800),
    ) {
        let base = sorted_unique(base);
        let mut batched = Pma::<u64>::from_sorted(&base);
        let mut pointed = Pma::<u64>::from_sorted(&base);
        let b = sorted_unique(batch);
        let added = batched.insert_batch_sorted(&b);
        let mut point_added = 0;
        for &k in &b {
            if pointed.insert(k) {
                point_added += 1;
            }
        }
        prop_assert_eq!(added, point_added);
        prop_assert!(batched.iter().eq(pointed.iter()));
        batched.check_invariants();
        pointed.check_invariants();
    }

    /// The CPMA stores exactly the same set as the PMA under the same
    /// operations (compression must be invisible).
    #[test]
    fn cpma_equals_pma(
        ops in vec((any::<bool>(), vec(any::<u64>(), 1..400)), 1..8)
    ) {
        let mut pma = Pma::<u64>::new();
        let mut cpma = Cpma::new();
        for (is_insert, keys) in ops {
            let b = sorted_unique(keys);
            if is_insert {
                prop_assert_eq!(pma.insert_batch_sorted(&b), cpma.insert_batch_sorted(&b));
            } else {
                prop_assert_eq!(pma.remove_batch_sorted(&b), cpma.remove_batch_sorted(&b));
            }
        }
        prop_assert!(pma.iter().eq(cpma.iter()));
        pma.check_invariants();
        cpma.check_invariants();
    }

    /// delete ∘ insert ≡ identity on the CPMA.
    #[test]
    fn cpma_insert_then_delete_is_identity(
        base in vec(any::<u64>(), 0..600),
        extra in vec(any::<u64>(), 1..600),
    ) {
        let base = sorted_unique(base);
        let extra: Vec<u64> = sorted_unique(extra)
            .into_iter()
            .filter(|k| base.binary_search(k).is_err())
            .collect();
        let mut c = Cpma::from_sorted(&base);
        let before: Vec<u64> = c.iter().collect();
        let added = c.insert_batch_sorted(&extra);
        prop_assert_eq!(added, extra.len());
        let removed = c.remove_batch_sorted(&extra);
        prop_assert_eq!(removed, extra.len());
        prop_assert_eq!(c.iter().collect::<Vec<_>>(), before);
        c.check_invariants();
    }

    /// Range queries agree with the model on arbitrary bounds.
    #[test]
    fn range_ops_match_model(
        elems in vec(any::<u64>(), 0..800),
        a in any::<u64>(),
        b in any::<u64>(),
    ) {
        let elems = sorted_unique(elems);
        let c = Cpma::from_sorted(&elems);
        let (lo, hi) = (a.min(b), a.max(b));
        let want: Vec<u64> = elems.iter().copied().filter(|&e| e >= lo && e < hi).collect();
        let mut got = Vec::new();
        c.map_range(lo, hi, |e| got.push(e));
        prop_assert_eq!(&got, &want);
        let want_sum = want.iter().fold(0u64, |x, &y| x.wrapping_add(y));
        prop_assert_eq!(c.range_sum(lo, hi), want_sum);
    }

    /// successor() is the BTreeSet range lower bound.
    #[test]
    fn successor_matches_model(elems in vec(any::<u64>(), 0..400), probe in any::<u64>()) {
        let elems = sorted_unique(elems);
        let model: BTreeSet<u64> = elems.iter().copied().collect();
        let p = Pma::<u64>::from_sorted(&elems);
        let want = model.range(probe..).next().copied();
        prop_assert_eq!(p.successor(probe), want);
    }

    /// Tree baselines implement the same set as the PMA (union semantics).
    #[test]
    fn baselines_match_pma(
        base in vec(any::<u64>(), 0..400),
        batch in vec(any::<u64>(), 0..400),
        dels in vec(any::<u64>(), 0..200),
    ) {
        let base = sorted_unique(base);
        let batch = sorted_unique(batch);
        let dels = sorted_unique(dels);
        let mut pma = Pma::<u64>::from_sorted(&base);
        let mut pt = PTree::from_sorted(&base);
        let mut cp = CPac::from_sorted(&base);
        prop_assert_eq!(pma.insert_batch_sorted(&batch), pt.insert_batch_sorted(&batch));
        prop_assert_eq!(cp.insert_batch_sorted(&batch), pt.len() - base.len().min(pt.len()));
        prop_assert_eq!(pma.remove_batch_sorted(&dels), pt.remove_batch_sorted(&dels));
        cp.remove_batch_sorted(&dels);
        let reference: Vec<u64> = pma.iter().collect();
        prop_assert_eq!(pt.collect(), reference.clone());
        prop_assert_eq!(cp.collect(), reference);
    }

    /// Structural invariants hold after arbitrary mixed point operations.
    #[test]
    fn pma_invariants_under_point_ops(ops in vec((any::<bool>(), any::<u32>()), 0..600)) {
        let mut p = Pma::<u64>::new();
        let mut c = Cpma::new();
        for (ins, k) in ops {
            let k = k as u64;
            if ins {
                p.insert(k);
                c.insert(k);
            } else {
                p.remove(k);
                c.remove(k);
            }
        }
        p.check_invariants();
        c.check_invariants();
        prop_assert!(p.iter().eq(c.iter()));
    }
}
