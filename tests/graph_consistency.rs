//! Graph-layer integration tests: every dynamic container (F-Graph, C-PaC
//! graph, Aspen graph) must present exactly the same graph as the static
//! CSR reference, and the Ligra-layer algorithms must produce identical
//! results on all of them.

use cpma::fgraph::algos::{bc, bfs, cc, pagerank};
use cpma::fgraph::{pack_edge, AspenGraph, Csr, FGraph, GraphScan, PacGraph, SetGraph};
use cpma::prelude::ShardedSet;
use cpma::workloads::{erdos_renyi_edges, RmatGenerator};

fn neighbors_of(g: &impl GraphScan, v: u32) -> Vec<u32> {
    let mut out = Vec::new();
    g.for_each_neighbor(v, &mut |d| {
        out.push(d);
        true
    });
    out
}

fn assert_same_graph(a: &impl GraphScan, b: &impl GraphScan, name: &str) {
    assert_eq!(a.num_vertices(), b.num_vertices(), "{name}: vertex count");
    assert_eq!(a.num_edges(), b.num_edges(), "{name}: edge count");
    for v in 0..a.num_vertices() as u32 {
        assert_eq!(a.degree(v), b.degree(v), "{name}: degree({v})");
        assert_eq!(neighbors_of(a, v), neighbors_of(b, v), "{name}: N({v})");
    }
}

#[test]
fn containers_present_identical_topology() {
    let edges = RmatGenerator::paper_config(10, 5).undirected_graph(4_000);
    let n = 1 << 10;
    let csr = Csr::from_sorted_edges(n, &edges);
    let fg = FGraph::from_edges(n, &edges);
    let pac = PacGraph::from_edges(n, &edges);
    let asp = AspenGraph::from_edges(n, &edges);
    assert_same_graph(&csr, &fg.snapshot(), "F-Graph");
    assert_same_graph(&csr, &pac, "PacGraph");
    assert_same_graph(&csr, &asp, "AspenGraph");
    // The backend-generic SetGraph accepts cpma-store's sharded wrapper
    // like any other EdgeSet — same topology, no special casing.
    let sharded: SetGraph<ShardedSet<cpma::pma::Cpma, 4>> = SetGraph::from_edges(n, &edges);
    assert_same_graph(&csr, &sharded.snapshot(), "SetGraph<ShardedSet<Cpma>>");
}

#[test]
fn algorithms_agree_across_containers_rmat() {
    let edges = RmatGenerator::paper_config(10, 11).undirected_graph(6_000);
    let n = 1 << 10;
    let csr = Csr::from_sorted_edges(n, &edges);
    let fg = FGraph::from_edges(n, &edges);
    let pac = PacGraph::from_edges(n, &edges);
    let asp = AspenGraph::from_edges(n, &edges);
    let snap = fg.snapshot();

    // PageRank: exact same arithmetic on every container.
    let pr_ref = pagerank(&csr, 10);
    for (name, pr) in [
        ("F", pagerank(&snap, 10)),
        ("C-PaC", pagerank(&pac, 10)),
        ("Aspen", pagerank(&asp, 10)),
    ] {
        for (i, (a, b)) in pr_ref.iter().zip(&pr).enumerate() {
            assert!((a - b).abs() < 1e-10, "{name}: PR[{i}] {a} vs {b}");
        }
    }

    // Connected components: identical labels.
    let cc_ref = cc(&csr);
    assert_eq!(cc(&snap), cc_ref, "F-Graph CC");
    assert_eq!(cc(&pac), cc_ref, "PacGraph CC");
    assert_eq!(cc(&asp), cc_ref, "AspenGraph CC");

    // BC: identical dependency scores.
    let bc_ref = bc(&csr, 3);
    for (name, d) in [
        ("F", bc(&snap, 3)),
        ("C-PaC", bc(&pac, 3)),
        ("Aspen", bc(&asp, 3)),
    ] {
        for (i, (a, b)) in bc_ref.iter().zip(&d).enumerate() {
            assert!((a - b).abs() < 1e-9, "{name}: BC[{i}] {a} vs {b}");
        }
    }

    // BFS: same reachability and levels (parents may differ).
    let ref_parents = bfs(&csr, 3);
    let f_parents = bfs(&snap, 3);
    for v in 0..n {
        assert_eq!(
            ref_parents[v] == u32::MAX,
            f_parents[v] == u32::MAX,
            "BFS reachability differs at {v}"
        );
    }
}

#[test]
fn algorithms_agree_on_er_graph() {
    let n = 800u32;
    let edges = erdos_renyi_edges(n, 8.0 / n as f64, 9);
    let csr = Csr::from_sorted_edges(n as usize, &edges);
    let fg = FGraph::from_edges(n as usize, &edges);
    let snap = fg.snapshot();
    assert_eq!(cc(&snap), cc(&csr));
    let pr_a = pagerank(&csr, 5);
    let pr_b = pagerank(&snap, 5);
    for (a, b) in pr_a.iter().zip(&pr_b) {
        assert!((a - b).abs() < 1e-10);
    }
}

#[test]
fn incremental_updates_converge_to_static_build() {
    // Insert a graph in many small batches; the result must equal the
    // one-shot build, on every container.
    let edges = RmatGenerator::paper_config(9, 21).undirected_graph(3_000);
    let n = 1 << 9;
    let mut fg = FGraph::new(n);
    let mut pac = PacGraph::new(n);
    let mut asp = AspenGraph::new(n);
    for chunk in edges.chunks(137) {
        let mut b = chunk.to_vec();
        fg.insert_edges(&mut b.clone(), true);
        pac.insert_edges(&mut b.clone(), true);
        asp.insert_edges(&mut b, true);
    }
    let csr = Csr::from_sorted_edges(n, &edges);
    assert_same_graph(&csr, &fg.snapshot(), "incremental F-Graph");
    assert_same_graph(&csr, &pac, "incremental PacGraph");
    assert_same_graph(&csr, &asp, "incremental AspenGraph");
}

#[test]
fn deletions_propagate_to_algorithms() {
    // Remove a bridge edge and watch components split identically.
    let mut pairs = Vec::new();
    for v in 0..10u32 {
        if v != 4 {
            pairs.push((v, v + 1));
        }
    }
    pairs.push((4, 5)); // the bridge
    let mut edges: Vec<u64> = Vec::new();
    for (a, b) in pairs {
        edges.push(pack_edge(a, b));
        edges.push(pack_edge(b, a));
    }
    edges.sort_unstable();
    edges.dedup();
    let mut fg = FGraph::from_edges(11, &edges);
    assert_eq!(cc(&fg.snapshot()).iter().filter(|&&l| l == 0).count(), 11);
    let mut del = vec![pack_edge(4, 5), pack_edge(5, 4)];
    assert_eq!(fg.delete_edges(&mut del, true), 2);
    let labels = cc(&fg.snapshot());
    assert!(labels[..5].iter().all(|&l| l == 0));
    assert!(labels[5..].iter().all(|&l| l == 5));
}
