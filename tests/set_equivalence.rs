//! Cross-crate integration test: every set implementation in the
//! evaluation (PMA, CPMA, P-tree, U-PaC, C-PaC, C-tree) must behave as the
//! same abstract ordered set under a long randomized mixed workload of
//! batch inserts, batch deletes, and range scans, with `BTreeSet` as the
//! oracle.

use cpma::baselines::{CPac, CTreeSet, PTree, UPac};
use cpma::pma::{Cpma, Pma};
use cpma::workloads::SplitMix64;
use std::collections::BTreeSet;

/// The operations every structure must expose for this test.
trait SetUnderTest {
    fn name() -> &'static str;
    fn new_empty() -> Self;
    fn ins(&mut self, batch: &[u64]) -> usize;
    fn del(&mut self, batch: &[u64]) -> usize;
    fn contains(&self, k: u64) -> bool;
    fn items(&self) -> Vec<u64>;
    fn count(&self) -> usize;
}

macro_rules! set_under_test {
    ($ty:ty, $name:literal, $collect:ident) => {
        impl SetUnderTest for $ty {
            fn name() -> &'static str {
                $name
            }
            fn new_empty() -> Self {
                <$ty>::new()
            }
            fn ins(&mut self, batch: &[u64]) -> usize {
                self.insert_batch_sorted(batch)
            }
            fn del(&mut self, batch: &[u64]) -> usize {
                self.remove_batch_sorted(batch)
            }
            fn contains(&self, k: u64) -> bool {
                self.has(k)
            }
            fn items(&self) -> Vec<u64> {
                self.$collect()
            }
            fn count(&self) -> usize {
                self.len()
            }
        }
    };
}

impl SetUnderTest for Pma<u64> {
    fn name() -> &'static str {
        "PMA"
    }
    fn new_empty() -> Self {
        Pma::new()
    }
    fn ins(&mut self, batch: &[u64]) -> usize {
        self.insert_batch_sorted(batch)
    }
    fn del(&mut self, batch: &[u64]) -> usize {
        self.remove_batch_sorted(batch)
    }
    fn contains(&self, k: u64) -> bool {
        self.has(k)
    }
    fn items(&self) -> Vec<u64> {
        self.iter().collect()
    }
    fn count(&self) -> usize {
        self.len()
    }
}

impl SetUnderTest for Cpma {
    fn name() -> &'static str {
        "CPMA"
    }
    fn new_empty() -> Self {
        Cpma::new()
    }
    fn ins(&mut self, batch: &[u64]) -> usize {
        self.insert_batch_sorted(batch)
    }
    fn del(&mut self, batch: &[u64]) -> usize {
        self.remove_batch_sorted(batch)
    }
    fn contains(&self, k: u64) -> bool {
        self.has(k)
    }
    fn items(&self) -> Vec<u64> {
        self.iter().collect()
    }
    fn count(&self) -> usize {
        self.len()
    }
}

set_under_test!(PTree, "P-tree", collect);
set_under_test!(UPac, "U-PaC", collect);
set_under_test!(CPac, "C-PaC", collect);
set_under_test!(CTreeSet, "C-tree", collect);

fn batch(rng: &mut SplitMix64, max_len: usize, bits: u32) -> Vec<u64> {
    let len = rng.next_below(max_len as u64) as usize + 1;
    let mut b: Vec<u64> = (0..len).map(|_| rng.next_bits(bits)).collect();
    b.sort_unstable();
    b.dedup();
    b
}

fn exercise<S: SetUnderTest>(seed: u64) {
    let mut rng = SplitMix64::new(seed);
    let mut s = S::new_empty();
    let mut model: BTreeSet<u64> = BTreeSet::new();
    for round in 0..60 {
        let op = rng.next_below(10);
        if op < 6 {
            // Batch insert (sizes span the point / three-phase / rebuild
            // regimes relative to the structure size).
            let b = batch(&mut rng, 3000, 24);
            let before = model.len();
            model.extend(b.iter().copied());
            let added = s.ins(&b);
            assert_eq!(added, model.len() - before, "{} round {round} insert", S::name());
        } else {
            let b = batch(&mut rng, 2000, 24);
            let mut expect = 0;
            for k in &b {
                if model.remove(k) {
                    expect += 1;
                }
            }
            let removed = s.del(&b);
            assert_eq!(removed, expect, "{} round {round} delete", S::name());
        }
        assert_eq!(s.count(), model.len(), "{} round {round} len", S::name());
        // Spot membership checks.
        for _ in 0..20 {
            let k = rng.next_bits(24);
            assert_eq!(s.contains(k), model.contains(&k), "{} has({k})", S::name());
        }
    }
    let got = s.items();
    let want: Vec<u64> = model.iter().copied().collect();
    assert_eq!(got, want, "{} final contents", S::name());
}

#[test]
fn pma_matches_model() {
    exercise::<Pma<u64>>(101);
}

#[test]
fn cpma_matches_model() {
    exercise::<Cpma>(202);
}

#[test]
fn ptree_matches_model() {
    exercise::<PTree>(303);
}

#[test]
fn upac_matches_model() {
    exercise::<UPac>(404);
}

#[test]
fn cpac_matches_model() {
    exercise::<CPac>(505);
}

#[test]
fn ctree_matches_model() {
    exercise::<CTreeSet>(606);
}

#[test]
fn all_structures_agree_with_each_other() {
    // One shared workload, six structures, identical final contents.
    let mut rng = SplitMix64::new(777);
    let batches: Vec<Vec<u64>> = (0..20).map(|_| batch(&mut rng, 5000, 30)).collect();
    let dels: Vec<Vec<u64>> = (0..10).map(|_| batch(&mut rng, 3000, 30)).collect();

    let mut pma = Pma::<u64>::new();
    let mut cpma = Cpma::new();
    let mut pt = PTree::new();
    let mut up = UPac::new();
    let mut cp = CPac::new();
    let mut ct = CTreeSet::new();
    for b in &batches {
        pma.insert_batch_sorted(b);
        cpma.insert_batch_sorted(b);
        pt.insert_batch_sorted(b);
        up.insert_batch_sorted(b);
        cp.insert_batch_sorted(b);
        ct.insert_batch_sorted(b);
    }
    for d in &dels {
        pma.remove_batch_sorted(d);
        cpma.remove_batch_sorted(d);
        pt.remove_batch_sorted(d);
        up.remove_batch_sorted(d);
        cp.remove_batch_sorted(d);
        ct.remove_batch_sorted(d);
    }
    let reference: Vec<u64> = pma.iter().collect();
    assert_eq!(cpma.iter().collect::<Vec<_>>(), reference);
    assert_eq!(pt.collect(), reference);
    assert_eq!(up.collect(), reference);
    assert_eq!(cp.collect(), reference);
    assert_eq!(ct.collect(), reference);
    // Sums agree too (exercises each structure's scan path).
    let want: u64 = reference.iter().fold(0u64, |a, &b| a.wrapping_add(b));
    assert_eq!(pma.sum(), want);
    assert_eq!(cpma.sum(), want);
    assert_eq!(pt.sum(), want);
    assert_eq!(up.sum(), want);
    assert_eq!(cp.sum(), want);
    assert_eq!(ct.sum(), want);
}
