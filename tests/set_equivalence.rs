//! Cross-crate integration test: every set implementation in the
//! evaluation (PMA, CPMA, P-tree, U-PaC, C-PaC, C-tree) plus the
//! `BTreeSet` oracle must behave as the same abstract ordered set — once
//! through the shared conformance suite, and once under a long randomized
//! mixed workload of batch inserts, batch deletes, and range scans, all
//! driven through the canonical `cpma::api` traits (no per-test shims).

use cpma::api::conformance::assert_ordered_set_contract;
use cpma::prelude::*;
use cpma::workloads::SplitMix64;
use std::collections::BTreeSet;

// ---------------------------------------------------------------------
// The shared contract, against all seven implementations.
// ---------------------------------------------------------------------

#[test]
fn all_seven_implementations_pass_the_contract() {
    assert_ordered_set_contract::<Pma<u64>>(1);
    assert_ordered_set_contract::<Cpma>(2);
    assert_ordered_set_contract::<PTree>(3);
    assert_ordered_set_contract::<UPac>(4);
    assert_ordered_set_contract::<CPac>(5);
    assert_ordered_set_contract::<CTreeSet>(6);
    assert_ordered_set_contract::<BTreeSet<u64>>(7);
}

#[test]
fn sharded_cpma_passes_the_contract_at_1_4_16_shards() {
    // The cpma-store wrapper must be externally indistinguishable from
    // its backend at any shard count (including the degenerate 1).
    assert_ordered_set_contract::<ShardedSet<Cpma, 1>>(8);
    assert_ordered_set_contract::<ShardedSet<Cpma, 4>>(9);
    assert_ordered_set_contract::<ShardedSet<Cpma, 16>>(10);
}

// ---------------------------------------------------------------------
// Long-run equivalence under one generic driver.
// ---------------------------------------------------------------------

fn batch(rng: &mut SplitMix64, max_len: usize, bits: u32) -> Vec<u64> {
    let len = rng.next_below(max_len as u64) as usize + 1;
    let mut b: Vec<u64> = (0..len).map(|_| rng.next_bits(bits)).collect();
    b.sort_unstable();
    b.dedup();
    b
}

fn exercise<S: BatchSet<u64> + RangeSet<u64>>(seed: u64) {
    let mut rng = SplitMix64::new(seed);
    let mut s = S::new_set();
    let mut model: BTreeSet<u64> = BTreeSet::new();
    for round in 0..60 {
        let op = rng.next_below(10);
        if op < 6 {
            // Batch insert (sizes span the point / three-phase / rebuild
            // regimes relative to the structure size).
            let b = batch(&mut rng, 3000, 24);
            let before = model.len();
            model.extend(b.iter().copied());
            let added = s.insert_batch_sorted(&b);
            assert_eq!(
                added,
                model.len() - before,
                "{} round {round} insert",
                S::NAME
            );
        } else {
            let b = batch(&mut rng, 2000, 24);
            let mut expect = 0;
            for k in &b {
                if model.remove(k) {
                    expect += 1;
                }
            }
            let removed = s.remove_batch_sorted(&b);
            assert_eq!(removed, expect, "{} round {round} delete", S::NAME);
        }
        assert_eq!(s.len(), model.len(), "{} round {round} len", S::NAME);
        // Spot membership checks.
        for _ in 0..20 {
            let k = rng.next_bits(24);
            assert_eq!(s.contains(k), model.contains(&k), "{} has({k})", S::NAME);
        }
        // A range scan per round (random window).
        let a = rng.next_bits(24);
        let b = rng.next_bits(24);
        let (lo, hi) = (a.min(b), a.max(b));
        let want: Vec<u64> = model.range(lo..hi).copied().collect();
        assert_eq!(
            s.range_iter(lo..hi).collect::<Vec<_>>(),
            want,
            "{} round {round} range_iter",
            S::NAME
        );
    }
    let got = s.to_vec();
    let want: Vec<u64> = model.iter().copied().collect();
    assert_eq!(got, want, "{} final contents", S::NAME);
}

#[test]
fn pma_matches_model() {
    exercise::<Pma<u64>>(101);
}

#[test]
fn cpma_matches_model() {
    exercise::<Cpma>(202);
}

#[test]
fn ptree_matches_model() {
    exercise::<PTree>(303);
}

#[test]
fn upac_matches_model() {
    exercise::<UPac>(404);
}

#[test]
fn cpac_matches_model() {
    exercise::<CPac>(505);
}

#[test]
fn ctree_matches_model() {
    exercise::<CTreeSet>(606);
}

#[test]
fn btreeset_matches_model() {
    exercise::<BTreeSet<u64>>(707);
}

#[test]
fn sharded_cpma_matches_model() {
    exercise::<ShardedSet<Cpma, 4>>(808);
}

#[test]
fn all_structures_agree_with_each_other() {
    // One shared workload, six structures, identical final contents —
    // driven through the trait, structures in a homogeneous list of
    // drivers (the payoff of the canonical hierarchy: adding a structure
    // is one line here).
    let mut rng = SplitMix64::new(777);
    let batches: Vec<Vec<u64>> = (0..20).map(|_| batch(&mut rng, 5000, 30)).collect();
    let dels: Vec<Vec<u64>> = (0..10).map(|_| batch(&mut rng, 3000, 30)).collect();

    fn drive<S: BatchSet<u64> + RangeSet<u64>>(
        batches: &[Vec<u64>],
        dels: &[Vec<u64>],
    ) -> (Vec<u64>, u64) {
        let mut s = S::new_set();
        for b in batches {
            s.insert_batch_sorted(b);
        }
        for d in dels {
            s.remove_batch_sorted(d);
        }
        let contents = s.to_vec();
        let sum = s.range_sum(..);
        (contents, sum)
    }

    let reference = drive::<Pma<u64>>(&batches, &dels);
    assert_eq!(drive::<Cpma>(&batches, &dels), reference, "CPMA");
    assert_eq!(drive::<PTree>(&batches, &dels), reference, "P-tree");
    assert_eq!(drive::<UPac>(&batches, &dels), reference, "U-PaC");
    assert_eq!(drive::<CPac>(&batches, &dels), reference, "C-PaC");
    assert_eq!(drive::<CTreeSet>(&batches, &dels), reference, "C-tree");
    assert_eq!(
        drive::<ShardedSet<Cpma, 8>>(&batches, &dels),
        reference,
        "Sharded CPMA"
    );
    assert_eq!(
        drive::<BTreeSet<u64>>(&batches, &dels),
        reference,
        "BTreeSet"
    );
    // The range_sum in the tuple exercises each structure's scan path; it
    // must also equal the naive fold over the reference contents.
    let want: u64 = reference.0.iter().fold(0u64, |a, &b| a.wrapping_add(b));
    assert_eq!(reference.1, want);
}
