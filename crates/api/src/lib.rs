//! # cpma-api — the canonical ordered-set interface of this workspace.
//!
//! The paper's entire evaluation (§6) runs six set structures — PMA, CPMA,
//! P-tree, U-PaC, C-PaC, C-tree — through *identical* workloads. This crate
//! is the Rust expression of that idea: one trait hierarchy that every
//! structure (plus [`std::collections::BTreeSet`], the test oracle)
//! implements, so benchmarks, equivalence tests, and downstream systems are
//! written once against traits instead of six times against concrete types.
//!
//! ## The hierarchy
//!
//! * [`OrderedSet<K>`] — point queries over an ordered set of integer keys:
//!   [`contains`](OrderedSet::contains), [`len`](OrderedSet::len),
//!   [`min`](OrderedSet::min) / [`max`](OrderedSet::max),
//!   [`successor`](OrderedSet::successor), and
//!   [`size_bytes`](OrderedSet::size_bytes) (the paper's space metric).
//! * [`BatchSet<K>`] — construction and the paper's batch updates:
//!   [`build_sorted`](BatchSet::build_sorted),
//!   [`insert_batch_sorted`](BatchSet::insert_batch_sorted),
//!   [`remove_batch_sorted`](BatchSet::remove_batch_sorted), plus unsorted
//!   convenience wrappers that route through [`normalize_batch`].
//! * [`RangeSet<K>`] — ordered iteration and range queries with std-idiom
//!   [`std::ops::RangeBounds`] arguments:
//!   [`for_range`](RangeSet::for_range) (`set.for_range(a..=b, f)`),
//!   [`range_sum`](RangeSet::range_sum) (`set.range_sum(a..b)`), and
//!   [`range_iter`](RangeSet::range_iter). Implementors provide one
//!   primitive — [`scan_from`](RangeSet::scan_from) — and may override the
//!   derived methods with fast paths.
//!
//! Keys implement [`SetKey`] (`u64` and `u32` here; the paper's artifact is
//! a 64-bit key store).
//!
//! ## Conformance
//!
//! [`conformance::assert_ordered_set_contract`] is a generic, randomized
//! contract test exercised by every implementation in the workspace — the
//! executable definition of "behaves as the same abstract set". The
//! [`testkit`] module holds the tiny deterministic RNG it (and the
//! workspace's property tests) are built on.

use std::ops::{Bound, RangeBounds};

pub mod conformance;
pub mod persist;
pub mod testkit;

mod btree;

pub use persist::{Persist, PersistError};

/// Integer key types storable in the workspace's ordered sets.
///
/// The compressed structures (CPMA, C-PaC, C-tree) delta-encode keys via
/// `u64`, which is why widening/narrowing is part of the contract.
pub trait SetKey:
    Copy + Ord + Eq + Send + Sync + std::fmt::Debug + std::fmt::Display + 'static
{
    /// Smallest key value.
    const MIN: Self;
    /// Largest key value.
    const MAX: Self;
    /// Widen to u64 (used by sums and compression).
    fn to_u64(self) -> u64;
    /// Narrow from u64; values out of range must not occur by construction.
    fn from_u64(v: u64) -> Self;
}

impl SetKey for u64 {
    const MIN: Self = 0;
    const MAX: Self = u64::MAX;
    #[inline]
    fn to_u64(self) -> u64 {
        self
    }
    #[inline]
    fn from_u64(v: u64) -> Self {
        v
    }
}

impl SetKey for u32 {
    const MIN: Self = 0;
    const MAX: Self = u32::MAX;
    #[inline]
    fn to_u64(self) -> u64 {
        self as u64
    }
    #[inline]
    fn from_u64(v: u64) -> Self {
        debug_assert!(v <= u32::MAX as u64);
        v as u32
    }
}

/// An ordered set of integer keys: point queries and size accounting.
///
/// This is the read-only core every structure shares. `NAME` is the label
/// used in the paper's tables ("PMA", "C-PaC", ...).
pub trait OrderedSet<K: SetKey> {
    /// Structure name as it appears in the paper's tables.
    const NAME: &'static str;

    /// Membership test (the artifact's `has`).
    fn contains(&self, key: K) -> bool;

    /// Number of stored elements.
    fn len(&self) -> usize;

    /// True iff no elements are stored.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Smallest stored element.
    fn min(&self) -> Option<K>;

    /// Largest stored element.
    fn max(&self) -> Option<K>;

    /// Smallest stored element ≥ `key` (the paper's `search`).
    fn successor(&self, key: K) -> Option<K>;

    /// Batched membership: `out[i] == self.contains(keys[i])`.
    ///
    /// Probes may arrive in any order and may repeat. The default is the
    /// per-key loop; structures that can amortize search work across
    /// probes (sorting them, sharing leaf decodes, prefetching) override
    /// this with a cache-conscious pass.
    fn contains_batch(&self, keys: &[K]) -> Vec<bool> {
        keys.iter().map(|&k| self.contains(k)).collect()
    }

    /// Batched successor: `out[i] == self.successor(keys[i])`.
    ///
    /// Same contract and default as [`OrderedSet::contains_batch`]: any
    /// order, duplicates allowed, positional results.
    fn successor_batch(&self, keys: &[K]) -> Vec<Option<K>> {
        keys.iter().map(|&k| self.successor(k)).collect()
    }

    /// Bytes of backing memory (the paper's space metric, `get_size()`).
    fn size_bytes(&self) -> usize;
}

/// One element of a mixed update batch: insert or remove a single key.
///
/// A *mixed* batch interleaves insertions and removals in one submission —
/// the shape a combining front-end naturally produces from live traffic.
/// [`normalize_ops`] brings a stream of these into the normal form
/// [`BatchSet::apply_batch_sorted`] requires: ascending, one op per key,
/// the *last* submitted op for each key winning.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BatchOp<K> {
    /// Insert the key (counted in [`BatchOutcome::added`] iff it was new).
    Insert(K),
    /// Remove the key (counted in [`BatchOutcome::removed`] iff present).
    Remove(K),
}

impl<K: Copy> BatchOp<K> {
    /// The key this operation targets.
    #[inline]
    pub fn key(&self) -> K {
        match *self {
            BatchOp::Insert(k) | BatchOp::Remove(k) => k,
        }
    }

    /// True iff this is an [`BatchOp::Insert`].
    #[inline]
    pub fn is_insert(&self) -> bool {
        matches!(self, BatchOp::Insert(_))
    }
}

/// Net effect of a mixed batch: how many keys were actually added and how
/// many actually removed (set semantics — inserts of present keys and
/// removes of absent keys count in neither).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BatchOutcome {
    /// Keys newly inserted.
    pub added: usize,
    /// Keys actually removed.
    pub removed: usize,
}

impl std::ops::Add for BatchOutcome {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        Self {
            added: self.added + rhs.added,
            removed: self.removed + rhs.removed,
        }
    }
}

/// Batch-parallel construction and updates (the paper's §4 interface).
///
/// `*_sorted` methods require strictly increasing input — the normal form
/// produced by [`normalize_batch`]. The unsorted wrappers accept anything.
pub trait BatchSet<K: SetKey>: OrderedSet<K> + Sized {
    /// Empty structure with default configuration.
    fn new_set() -> Self;

    /// Build from a strictly increasing slice (the artifact's bulk
    /// constructor).
    fn build_sorted(elems: &[K]) -> Self;

    /// Insert a strictly increasing batch; returns how many keys were
    /// actually new (set semantics).
    fn insert_batch_sorted(&mut self, batch: &[K]) -> usize;

    /// Remove a strictly increasing batch; returns how many keys were
    /// actually present.
    fn remove_batch_sorted(&mut self, batch: &[K]) -> usize;

    /// Insert an arbitrary batch: sorts + dedups in place, then delegates
    /// to [`insert_batch_sorted`](Self::insert_batch_sorted).
    fn insert_batch(&mut self, batch: &mut [K], sorted: bool) -> usize {
        if sorted {
            debug_assert!(batch.windows(2).all(|w| w[0] < w[1]));
            self.insert_batch_sorted(batch)
        } else {
            let b = normalize_batch(batch);
            self.insert_batch_sorted(b)
        }
    }

    /// Remove an arbitrary batch: sorts + dedups in place, then delegates
    /// to [`remove_batch_sorted`](Self::remove_batch_sorted).
    fn remove_batch(&mut self, batch: &mut [K], sorted: bool) -> usize {
        if sorted {
            debug_assert!(batch.windows(2).all(|w| w[0] < w[1]));
            self.remove_batch_sorted(batch)
        } else {
            let b = normalize_batch(batch);
            self.remove_batch_sorted(b)
        }
    }

    /// Apply a *mixed* batch of inserts and removes in one pass. `ops`
    /// must be in the normal form produced by [`normalize_ops`]: keys
    /// strictly increasing (hence one op per key).
    ///
    /// The default implementation splits the batch into its remove and
    /// insert halves and runs the two one-sided batch updates — correct
    /// for every backend, but it walks the structure twice. Backends with
    /// a native mixed pipeline (the PMA/CPMA's single
    /// route→merge→count→redistribute pass, the sharded wrapper's
    /// one-split fan-out) override this.
    ///
    /// Because each key appears at most once, the relative order of
    /// inserts and removes of *distinct* keys is immaterial and the
    /// per-op results are well-defined: an `Insert` counts as added iff
    /// the key was absent, a `Remove` as removed iff it was present.
    ///
    /// # Examples
    ///
    /// ```
    /// use cpma_api::{normalize_ops, BatchOp, BatchSet};
    /// use std::collections::BTreeSet;
    ///
    /// let mut set: BTreeSet<u64> = [1, 2, 3].into_iter().collect();
    /// // Raw op stream: same-key runs resolve last-op-wins.
    /// let mut ops = vec![
    ///     BatchOp::Remove(2),
    ///     BatchOp::Insert(9),
    ///     BatchOp::Insert(5),
    ///     BatchOp::Remove(5), // cancels the insert above
    /// ];
    /// let outcome = set.apply_batch_sorted(normalize_ops(&mut ops));
    /// assert_eq!((outcome.added, outcome.removed), (1, 1));
    /// assert_eq!(set.into_iter().collect::<Vec<_>>(), vec![1, 3, 9]);
    /// ```
    fn apply_batch_sorted(&mut self, ops: &[BatchOp<K>]) -> BatchOutcome {
        debug_assert!(ops.windows(2).all(|w| w[0].key() < w[1].key()));
        let mut ins: Vec<K> = Vec::new();
        let mut del: Vec<K> = Vec::new();
        for op in ops {
            match *op {
                BatchOp::Insert(k) => ins.push(k),
                BatchOp::Remove(k) => del.push(k),
            }
        }
        let removed = if del.is_empty() {
            0
        } else {
            self.remove_batch_sorted(&del)
        };
        let added = if ins.is_empty() {
            0
        } else {
            self.insert_batch_sorted(&ins)
        };
        BatchOutcome { added, removed }
    }

    /// Apply an arbitrary op stream: normalizes in place (sort by key,
    /// last-op-wins dedup) unless `normalized` promises the stream is
    /// already in normal form, then delegates to
    /// [`apply_batch_sorted`](Self::apply_batch_sorted).
    fn apply_batch(&mut self, ops: &mut [BatchOp<K>], normalized: bool) -> BatchOutcome {
        if normalized {
            debug_assert!(ops.windows(2).all(|w| w[0].key() < w[1].key()));
            self.apply_batch_sorted(ops)
        } else {
            let ops = normalize_ops(ops);
            self.apply_batch_sorted(ops)
        }
    }
}

/// Ordered scans and range queries with [`RangeBounds`] arguments.
///
/// Implementors provide [`scan_from`](Self::scan_from); everything else has
/// a default derived from it. Structures with cheaper whole-range paths
/// (the PMA's whole-leaf `range_sum` fast path, say) override the derived
/// methods.
pub trait RangeSet<K: SetKey>: OrderedSet<K> {
    /// Visit stored elements ≥ `start` in ascending order until `f`
    /// returns `false`.
    fn scan_from(&self, start: K, f: &mut dyn FnMut(K) -> bool);

    /// Apply `f` to every element in `range`, in ascending order.
    ///
    /// Accepts any std range expression: `a..b`, `a..=b`, `a..`, `..b`, `..`.
    fn for_range<R: RangeBounds<K>>(&self, range: R, mut f: impl FnMut(K)) {
        let Some((lo, hi)) = range_to_inclusive(&range) else {
            return;
        };
        self.scan_from(lo, &mut |k| {
            if k > hi {
                false
            } else {
                f(k);
                true
            }
        });
    }

    /// Wrapping sum of the elements in `range` (the paper's range-query
    /// kernel), widened to `u64`.
    fn range_sum<R: RangeBounds<K>>(&self, range: R) -> u64 {
        let mut sum = 0u64;
        self.for_range(range, |k| sum = sum.wrapping_add(k.to_u64()));
        sum
    }

    /// Iterator over the elements in `range`, ascending.
    ///
    /// The default buffers the range; structures with native lazy iterators
    /// may still prefer this for short ranges (one allocation, no per-item
    /// indirection).
    fn range_iter<R: RangeBounds<K>>(&self, range: R) -> RangeIter<K> {
        let mut buf = Vec::new();
        self.for_range(range, |k| buf.push(k));
        RangeIter {
            inner: buf.into_iter(),
        }
    }

    /// Iterator over all elements, ascending.
    fn iter_all(&self) -> RangeIter<K> {
        self.range_iter(..)
    }

    /// All elements, ascending, as a `Vec` (the baselines' `collect`).
    fn to_vec(&self) -> Vec<K> {
        let mut buf = Vec::with_capacity(self.len());
        self.for_range(.., |k| buf.push(k));
        buf
    }
}

/// Structures that can expose their contents as disjoint ascending chunks,
/// visited possibly in parallel (the CPMA hands out its leaves; flat
/// containers hand out slices). Used by scan-heavy consumers like
/// F-Graph's PageRank pull to parallelize a whole-structure pass without
/// knowing the layout.
pub trait ParallelChunks<K: SetKey>: RangeSet<K> {
    /// Call `f` on disjoint, ascending, contiguous chunks that together
    /// cover the whole set. Chunks may be visited concurrently; each
    /// individual chunk is in ascending order, and chunk `i`'s elements all
    /// precede chunk `i + 1`'s.
    fn par_chunks(&self, f: &(dyn Fn(&[K]) + Sync)) {
        // Fallback for structures without a native chunked layout (the
        // PMA hands out leaves instead): materialize once, then hand out
        // slice chunks in parallel — about four per thread, but no smaller
        // than 1024 keys so tiny sets stay a single serial visit.
        use rayon::prelude::*;
        let all = self.to_vec();
        if all.is_empty() {
            return;
        }
        let target_chunks = rayon::current_num_threads() * 4;
        let chunk = all.len().div_ceil(target_chunks.max(1)).max(1024);
        all.par_chunks(chunk).for_each(f);
    }
}

/// Buffered ascending iterator returned by [`RangeSet::range_iter`].
pub struct RangeIter<K> {
    inner: std::vec::IntoIter<K>,
}

impl<K: SetKey> Iterator for RangeIter<K> {
    type Item = K;

    fn next(&mut self) -> Option<K> {
        self.inner.next()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }
}

impl<K: SetKey> ExactSizeIterator for RangeIter<K> {}

/// Convert any `RangeBounds<K>` into an inclusive `[lo, hi]` pair over the
/// key domain, or `None` if the range is empty.
pub fn range_to_inclusive<K: SetKey, R: RangeBounds<K>>(range: &R) -> Option<(K, K)> {
    let lo = match range.start_bound() {
        Bound::Included(&s) => s,
        Bound::Excluded(&s) => {
            if s == K::MAX {
                return None;
            }
            K::from_u64(s.to_u64() + 1)
        }
        Bound::Unbounded => K::MIN,
    };
    let hi = match range.end_bound() {
        Bound::Included(&e) => e,
        Bound::Excluded(&e) => {
            if e == K::MIN {
                return None;
            }
            K::from_u64(e.to_u64() - 1)
        }
        Bound::Unbounded => K::MAX,
    };
    if lo > hi {
        return None;
    }
    Some((lo, hi))
}

/// Sort + dedup a batch in place and return the strictly-increasing prefix
/// — the normal form every `*_batch_sorted` method requires.
///
/// This is the one batch-normalization routine in the workspace (the
/// paper's structures all consume "sorted, deduplicated batches"; keeping a
/// single implementation keeps their preprocessing identical and therefore
/// comparable). The sort is rayon's parallel sort, so batch preprocessing
/// scales with whatever parallel backend the workspace is built against.
pub fn normalize_batch<K: SetKey>(batch: &mut [K]) -> &[K] {
    use rayon::slice::ParallelSliceMut;
    batch.par_sort_unstable();
    let mut w = 0;
    for r in 0..batch.len() {
        if w == 0 || batch[r] != batch[w - 1] {
            batch[w] = batch[r];
            w += 1;
        }
    }
    &batch[..w]
}

/// Sort a mixed op stream by key (stable) and dedup with last-op-wins,
/// in place; returns the normal-form prefix every
/// [`BatchSet::apply_batch_sorted`] requires.
///
/// *Last-op-wins* is the sequential semantics of replaying the stream in
/// submission order: `[Remove(5), Insert(5)]` nets to `Insert(5)`,
/// `[Insert(5), Remove(5)]` to `Remove(5)`. It is exact for presence —
/// after every prefix of same-key ops, the key's membership equals the
/// last op's kind — so applying the normal form leaves the set in the
/// same state as replaying the raw stream one op at a time. (Per-op
/// *results* are a different question; front-ends that acknowledge
/// individual ops, like `cpma-store`'s combiner, replay against an
/// overlay first.) The sort is rayon's stable `par_sort_by_key`, so
/// equal-key ops keep submission order at any thread count.
pub fn normalize_ops<K: SetKey>(ops: &mut [BatchOp<K>]) -> &[BatchOp<K>] {
    use rayon::slice::ParallelSliceMut;
    ops.par_sort_by_key(|op| op.key());
    let mut w = 0;
    for r in 0..ops.len() {
        if w > 0 && ops[w - 1].key() == ops[r].key() {
            ops[w - 1] = ops[r]; // same key: the later op wins
        } else {
            ops[w] = ops[r];
            w += 1;
        }
    }
    &ops[..w]
}

/// Evaluate a [`RangeBounds`] `range_sum` through an exclusive-end kernel
/// (`sum_excl(lo, hi_excl)` summing keys in `[lo, hi_excl)`), folding in
/// `K::MAX` separately — the one value a half-open kernel can never cover.
///
/// Shared by every implementation that overrides
/// [`RangeSet::range_sum`] with a structure-specific fast path; the
/// boundary handling lives here exactly once.
pub fn range_sum_via_exclusive<K: SetKey, R: RangeBounds<K>>(
    range: &R,
    contains_max: impl FnOnce() -> bool,
    sum_excl: impl FnOnce(K, K) -> u64,
) -> u64 {
    let Some((lo, hi)) = range_to_inclusive(range) else {
        return 0;
    };
    if hi == K::MAX {
        let mut sum = sum_excl(lo, K::MAX);
        if contains_max() {
            sum = sum.wrapping_add(K::MAX.to_u64());
        }
        sum
    } else {
        sum_excl(lo, K::from_u64(hi.to_u64() + 1))
    }
}

/// An invalid structure configuration (builder validation failure).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    /// The offending parameter, e.g. `"growing_factor"`.
    pub field: &'static str,
    /// Human-readable constraint violation.
    pub reason: String,
}

impl ConfigError {
    pub fn new(field: &'static str, reason: impl Into<String>) -> Self {
        Self {
            field,
            reason: reason.into(),
        }
    }
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid config: {}: {}", self.field, self.reason)
    }
}

impl std::error::Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_batch_sorts_and_dedups() {
        let mut b = [5u64, 1, 3, 1, 5, 2];
        assert_eq!(normalize_batch(&mut b), &[1, 2, 3, 5]);
        let mut empty: [u64; 0] = [];
        assert_eq!(normalize_batch(&mut empty), &[] as &[u64]);
        let mut same = [7u64, 7, 7];
        assert_eq!(normalize_batch(&mut same), &[7]);
    }

    #[test]
    fn normalize_ops_last_op_wins() {
        use BatchOp::{Insert, Remove};
        let mut ops = [
            Insert(5u64),
            Remove(3),
            Insert(3),
            Remove(5),
            Insert(7),
            Insert(7),
        ];
        assert_eq!(normalize_ops(&mut ops), &[Insert(3), Remove(5), Insert(7)]);
        let mut single = [Remove(9u64)];
        assert_eq!(normalize_ops(&mut single), &[Remove(9)]);
        let mut empty: [BatchOp<u64>; 0] = [];
        assert_eq!(normalize_ops(&mut empty), &[] as &[BatchOp<u64>]);
        // A long same-key run keeps only its last op.
        let mut run: Vec<BatchOp<u64>> = (0..100)
            .map(|i| if i % 2 == 0 { Insert(1) } else { Remove(1) })
            .collect();
        assert_eq!(normalize_ops(&mut run), &[Remove(1)]);
    }

    #[test]
    fn default_apply_batch_matches_oracle() {
        use std::collections::BTreeSet;
        use BatchOp::{Insert, Remove};
        let mut s: BTreeSet<u64> = [1u64, 2, 3].into_iter().collect();
        let out = s.apply_batch_sorted(&[Insert(0), Remove(2), Insert(3), Remove(9)]);
        assert_eq!(
            out,
            BatchOutcome {
                added: 1,
                removed: 1
            }
        );
        assert_eq!(s.iter().copied().collect::<Vec<_>>(), vec![0, 1, 3]);
        // Unsorted wrapper normalizes: remove-then-insert of 1 nets to
        // insert (a no-op here), insert-then-remove of 3 nets to remove.
        let mut ops = [Remove(1u64), Insert(3), Insert(1), Remove(3)];
        let out = s.apply_batch(&mut ops, false);
        assert_eq!(
            out,
            BatchOutcome {
                added: 0,
                removed: 1
            }
        );
        assert_eq!(s.iter().copied().collect::<Vec<_>>(), vec![0, 1]);
        assert_eq!(s.apply_batch_sorted(&[]), BatchOutcome::default());
    }

    #[test]
    fn range_to_inclusive_cases() {
        assert_eq!(range_to_inclusive::<u64, _>(&(1..5)), Some((1, 4)));
        assert_eq!(range_to_inclusive::<u64, _>(&(1..=5)), Some((1, 5)));
        assert_eq!(range_to_inclusive::<u64, _>(&(1..)), Some((1, u64::MAX)));
        assert_eq!(range_to_inclusive::<u64, _>(&(..5)), Some((0, 4)));
        assert_eq!(range_to_inclusive::<u64, _>(&(..)), Some((0, u64::MAX)));
        assert_eq!(range_to_inclusive::<u64, _>(&(5..5)), None);
        #[allow(clippy::reversed_empty_ranges)] // the empty-range behaviour is the point
        let reversed = 5..4;
        assert_eq!(range_to_inclusive::<u64, _>(&reversed), None);
        assert_eq!(range_to_inclusive::<u64, _>(&(0..0)), None);
        // The full-domain inclusive range is representable (half-open pairs
        // could never include K::MAX — the reason this API exists).
        assert_eq!(
            range_to_inclusive::<u64, _>(&(0..=u64::MAX)),
            Some((0, u64::MAX))
        );
        assert_eq!(
            range_to_inclusive::<u64, _>(&(Bound::Excluded(3u64), Bound::Included(7u64))),
            Some((4, 7))
        );
        assert_eq!(
            range_to_inclusive::<u64, _>(&(Bound::Excluded(u64::MAX), Bound::Unbounded)),
            None
        );
    }

    #[test]
    fn config_error_display() {
        let e = ConfigError::new("growing_factor", "must exceed 1");
        assert_eq!(
            e.to_string(),
            "invalid config: growing_factor: must exceed 1"
        );
    }
}
