//! Deterministic randomized-test support.
//!
//! The workspace's property tests (and the [`conformance`](crate::conformance)
//! suite) need seeded, reproducible randomness with no external
//! dependencies. `Rng` is SplitMix64 — the same generator the workloads
//! crate uses for the paper's inputs — plus the handful of draw helpers the
//! tests share.

/// SplitMix64 (Steele, Lea, Flood 2014): 64 bits of state, equidistributed
/// output, and robust to any seed including zero.
#[derive(Clone, Debug)]
pub struct Rng {
    state: u64,
}

impl Rng {
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)`; `bound` of 0 yields 0.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        // Multiply-shift bounded draw (Lemire); bias is negligible for
        // test-scale bounds.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform draw keeping the low `bits` bits.
    pub fn bits(&mut self, bits: u32) -> u64 {
        debug_assert!((1..=64).contains(&bits));
        self.next_u64() >> (64 - bits)
    }

    /// Coin flip with probability `num / den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }

    /// A batch of `len` draws of `bits`-bit keys (not normalized).
    pub fn keys(&mut self, len: usize, bits: u32) -> Vec<u64> {
        (0..len).map(|_| self.bits(bits)).collect()
    }

    /// A strictly-increasing batch of at most `max_len` `bits`-bit keys.
    pub fn sorted_batch(&mut self, max_len: usize, bits: u32) -> Vec<u64> {
        let len = self.below(max_len as u64) as usize + 1;
        let mut b = self.keys(len, bits);
        b.sort_unstable();
        b.dedup();
        b
    }

    /// Up to `max_len` full-width draws (not normalized) — the adversarial
    /// input shape the property tests feed through [`sorted_unique`].
    pub fn raw_keys(&mut self, max_len: u64) -> Vec<u64> {
        let n = self.below(max_len) as usize;
        (0..n).map(|_| self.next_u64()).collect()
    }
}

/// Sort + dedup by value: the tests' model-side normal form.
pub fn sorted_unique(mut v: Vec<u64>) -> Vec<u64> {
    v.sort_unstable();
    v.dedup();
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let a: Vec<u64> = {
            let mut r = Rng::new(1);
            (0..5).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = Rng::new(1);
            (0..5).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = Rng::new(2);
            (0..5).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn bounded_draws_in_range() {
        let mut r = Rng::new(42);
        for _ in 0..1000 {
            assert!(r.below(10) < 10);
            assert!(r.bits(8) < 256);
        }
        assert_eq!(r.below(0), 0);
    }

    #[test]
    fn sorted_batch_is_normal_form() {
        let mut r = Rng::new(7);
        for _ in 0..50 {
            let b = r.sorted_batch(100, 16);
            assert!(!b.is_empty());
            assert!(b.windows(2).all(|w| w[0] < w[1]));
        }
    }
}
