//! The durability contract: [`Persist`] and its typed error.
//!
//! The paper's structures are pointer-free — one contiguous allocation plus
//! a few side arrays — which makes checkpointing a versioned header and a
//! byte copy instead of a serialization walk. This module holds only the
//! *contract*: the snapshot/WAL formats and the recovery driver live in
//! `cpma-persist`, and each structure implements [`Persist`] next to its
//! own definition (`Pma`/`Cpma` in `cpma-pma`, `ShardedSet` in
//! `cpma-store`).
//!
//! Everything on-disk is validated before use: loads must return a
//! [`PersistError`] — never panic, and never allocate from an
//! attacker-controlled length that the actual file size does not back.

use std::path::Path;

use crate::ConfigError;

/// A structure that can checkpoint itself to disk and be loaded back.
///
/// `save` must be atomic at the file level (write to a temporary sibling,
/// then rename) so a crash mid-save never destroys the previous
/// checkpoint. `load` must validate everything it reads and fail with a
/// typed error on any corruption.
pub trait Persist: Sized {
    /// Write a checkpoint of `self` at `path` (a file or directory,
    /// depending on the structure), atomically replacing any previous
    /// checkpoint there.
    fn save(&self, path: &Path) -> Result<(), PersistError>;

    /// Load a previously saved checkpoint. Corrupt, truncated, or
    /// mismatched inputs yield an error, never a panic.
    fn load(path: &Path) -> Result<Self, PersistError>;
}

/// Why a checkpoint or WAL operation failed. Every on-disk validation
/// failure maps to one of these variants so callers can distinguish
/// "wrong file" from "damaged file" from "I/O trouble".
#[derive(Debug)]
pub enum PersistError {
    /// Underlying I/O failure (open, read, write, rename, fsync).
    Io(std::io::Error),
    /// The file does not start with the expected magic bytes.
    BadMagic {
        /// The 8 bytes actually found at the start of the file.
        found: [u8; 8],
    },
    /// The format version is newer than this build understands.
    UnsupportedVersion {
        /// Version found in the header.
        found: u32,
        /// Highest version this build can read.
        supported: u32,
    },
    /// The snapshot was written by a different leaf codec than the one
    /// being loaded (e.g. a `Pma` snapshot opened as `Cpma`).
    CodecMismatch {
        /// Codec id the loading structure expects.
        expected: u32,
        /// Codec id recorded in the header.
        found: u32,
    },
    /// The snapshot stores keys of a different width than requested
    /// (e.g. a `u64` snapshot opened as `Pma<u32>`).
    KeyWidthMismatch {
        /// Key width in bytes the loading structure expects.
        expected: u32,
        /// Key width in bytes recorded in the header.
        found: u32,
    },
    /// A checksum over the named region did not match.
    ChecksumMismatch(&'static str),
    /// The file ended before the named region was complete.
    Truncated(&'static str),
    /// Structurally invalid contents (bad lengths, out-of-order keys,
    /// sequence gaps, ...) with a human-readable description.
    Corrupt(String),
    /// The header decoded to an invalid structure configuration.
    Config(ConfigError),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "persist i/o error: {e}"),
            PersistError::BadMagic { found } => {
                write!(f, "bad magic: found {found:02x?}")
            }
            PersistError::UnsupportedVersion { found, supported } => {
                write!(
                    f,
                    "unsupported format version {found} (supported ≤ {supported})"
                )
            }
            PersistError::CodecMismatch { expected, found } => {
                write!(
                    f,
                    "codec mismatch: expected id {expected}, snapshot has {found}"
                )
            }
            PersistError::KeyWidthMismatch { expected, found } => {
                write!(
                    f,
                    "key width mismatch: expected {expected} bytes, snapshot has {found}"
                )
            }
            PersistError::ChecksumMismatch(what) => {
                write!(f, "checksum mismatch over {what}")
            }
            PersistError::Truncated(what) => write!(f, "truncated {what}"),
            PersistError::Corrupt(detail) => write!(f, "corrupt persisted data: {detail}"),
            PersistError::Config(e) => write!(f, "persisted config invalid: {e}"),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            PersistError::Config(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<ConfigError> for PersistError {
    fn from(e: ConfigError) -> Self {
        PersistError::Config(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_descriptive() {
        let cases: Vec<(PersistError, &str)> = vec![
            (
                PersistError::BadMagic {
                    found: *b"NOTCPMA!",
                },
                "bad magic",
            ),
            (
                PersistError::UnsupportedVersion {
                    found: 9,
                    supported: 1,
                },
                "unsupported format version 9",
            ),
            (
                PersistError::CodecMismatch {
                    expected: 1,
                    found: 2,
                },
                "codec mismatch",
            ),
            (
                PersistError::KeyWidthMismatch {
                    expected: 8,
                    found: 4,
                },
                "key width mismatch",
            ),
            (PersistError::ChecksumMismatch("header"), "header"),
            (PersistError::Truncated("payload"), "payload"),
            (
                PersistError::Corrupt("wal sequence gap".into()),
                "sequence gap",
            ),
            (
                PersistError::Config(ConfigError::new("min_leaves", "must be ≥ 1")),
                "min_leaves",
            ),
        ];
        for (err, needle) in cases {
            let s = err.to_string();
            assert!(s.contains(needle), "{s:?} should contain {needle:?}");
        }
    }

    #[test]
    fn error_conversions() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: PersistError = io.into();
        assert!(matches!(e, PersistError::Io(_)));
        use std::error::Error;
        assert!(e.source().is_some());

        let c: PersistError = ConfigError::new("growing_factor", "must exceed 1").into();
        assert!(matches!(c, PersistError::Config(_)));
    }
}
