//! Trait implementations for [`std::collections::BTreeSet`] — the oracle
//! the equivalence tests and the conformance suite compare against.

use crate::{BatchSet, OrderedSet, ParallelChunks, RangeSet, SetKey};
use std::collections::BTreeSet;

impl<K: SetKey> OrderedSet<K> for BTreeSet<K> {
    const NAME: &'static str = "BTreeSet";

    fn contains(&self, key: K) -> bool {
        BTreeSet::contains(self, &key)
    }

    fn len(&self) -> usize {
        BTreeSet::len(self)
    }

    fn min(&self) -> Option<K> {
        self.iter().next().copied()
    }

    fn max(&self) -> Option<K> {
        self.iter().next_back().copied()
    }

    fn successor(&self, key: K) -> Option<K> {
        self.range(key..).next().copied()
    }

    /// Rough model of the B-tree's footprint (std exposes no accounting):
    /// key bytes plus two words of node overhead per element. Only used for
    /// sanity bounds, never benchmark tables.
    fn size_bytes(&self) -> usize {
        BTreeSet::len(self) * (std::mem::size_of::<K>() + 16)
    }
}

impl<K: SetKey> BatchSet<K> for BTreeSet<K> {
    fn new_set() -> Self {
        BTreeSet::new()
    }

    fn build_sorted(elems: &[K]) -> Self {
        debug_assert!(elems.windows(2).all(|w| w[0] < w[1]));
        elems.iter().copied().collect()
    }

    fn insert_batch_sorted(&mut self, batch: &[K]) -> usize {
        batch.iter().filter(|&&k| self.insert(k)).count()
    }

    fn remove_batch_sorted(&mut self, batch: &[K]) -> usize {
        batch.iter().filter(|&&k| self.remove(&k)).count()
    }
}

impl<K: SetKey> RangeSet<K> for BTreeSet<K> {
    fn scan_from(&self, start: K, f: &mut dyn FnMut(K) -> bool) {
        for &k in self.range(start..) {
            if !f(k) {
                return;
            }
        }
    }
}

impl<K: SetKey> ParallelChunks<K> for BTreeSet<K> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn btreeset_implements_the_hierarchy() {
        let mut s: BTreeSet<u64> = BatchSet::build_sorted(&[1, 3, 5, 7]);
        assert_eq!(<BTreeSet<u64> as OrderedSet<u64>>::NAME, "BTreeSet");
        assert!(OrderedSet::contains(&s, 3));
        assert_eq!(OrderedSet::min(&s), Some(1));
        assert_eq!(OrderedSet::max(&s), Some(7));
        assert_eq!(OrderedSet::successor(&s, 4), Some(5));
        assert_eq!(s.insert_batch_sorted(&[3, 4]), 1);
        assert_eq!(s.remove_batch_sorted(&[1, 2]), 1);
        assert_eq!(s.range_sum(3..=5), 12);
        assert_eq!(s.range_iter(..).collect::<Vec<_>>(), vec![3, 4, 5, 7]);
    }
}
