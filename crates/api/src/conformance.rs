//! Generic conformance suite: the executable contract of the trait
//! hierarchy.
//!
//! Every set implementation in the workspace runs
//! [`assert_ordered_set_contract`] from its own test suite (and the
//! umbrella crate runs it for all seven implementations side by side). It
//! drives a randomized mixed workload against a [`BTreeSet`] oracle and
//! checks every trait method, including the `RangeBounds` forms on all five
//! range shapes and the `K::MAX`-inclusive edge that half-open `(start,
//! end)` pairs could never express.

use crate::testkit::Rng;
use crate::{
    normalize_batch, normalize_ops, BatchOp, BatchOutcome, BatchSet, ParallelChunks, RangeSet,
};
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Assert the full `OrderedSet`/`BatchSet`/`RangeSet`/`ParallelChunks`
/// contract for `S`.
///
/// Panics with a structure-named message on the first violation. `seed`
/// varies the workload; any seed must pass.
pub fn assert_ordered_set_contract<S>(seed: u64)
where
    S: BatchSet<u64> + RangeSet<u64> + ParallelChunks<u64>,
{
    let name = S::NAME;
    let mut rng = Rng::new(seed ^ 0xC0F0_12AE_5EED_0001);

    // --- empty-set behaviour -------------------------------------------
    let empty = S::new_set();
    assert_eq!(empty.len(), 0, "{name}: empty len");
    assert!(empty.is_empty(), "{name}: empty is_empty");
    assert!(!empty.contains(0), "{name}: empty contains(0)");
    assert!(!empty.contains(u64::MAX), "{name}: empty contains(MAX)");
    assert_eq!(empty.min(), None, "{name}: empty min");
    assert_eq!(empty.max(), None, "{name}: empty max");
    assert_eq!(empty.successor(0), None, "{name}: empty successor");
    assert_eq!(empty.range_sum(..), 0, "{name}: empty range_sum");
    assert_eq!(empty.range_iter(..).count(), 0, "{name}: empty range_iter");
    assert_eq!(S::build_sorted(&[]).len(), 0, "{name}: build_sorted([])");

    // --- build_sorted round-trips, including boundary keys -------------
    let elems: Vec<u64> = vec![0, 1, 5, 1 << 40, u64::MAX - 1, u64::MAX];
    let s = S::build_sorted(&elems);
    assert_eq!(s.len(), elems.len(), "{name}: build_sorted len");
    assert_eq!(s.to_vec(), elems, "{name}: build_sorted contents");
    assert_eq!(s.min(), Some(0), "{name}: min with 0 stored");
    assert_eq!(s.max(), Some(u64::MAX), "{name}: max with MAX stored");
    assert_eq!(
        s.successor(u64::MAX),
        Some(u64::MAX),
        "{name}: successor(MAX)"
    );
    assert_eq!(
        s.range_sum(0..=u64::MAX),
        s.range_sum(..),
        "{name}: full-range sum forms"
    );
    assert!(s.size_bytes() > 0, "{name}: size_bytes");

    // --- randomized mixed workload vs the oracle -----------------------
    let mut s = S::new_set();
    let mut model: BTreeSet<u64> = BTreeSet::new();
    let bits = 20; // dense enough for collisions, wide enough for growth
    for round in 0..40 {
        let batch = rng.sorted_batch(800, bits);
        if rng.chance(3, 5) {
            let added = s.insert_batch_sorted(&batch);
            let want = batch.iter().filter(|&&k| model.insert(k)).count();
            assert_eq!(added, want, "{name} round {round}: insert count");
        } else {
            let removed = s.remove_batch_sorted(&batch);
            let want = batch.iter().filter(|&&k| model.remove(&k)).count();
            assert_eq!(removed, want, "{name} round {round}: remove count");
        }
        assert_eq!(s.len(), model.len(), "{name} round {round}: len");
        assert_eq!(
            s.is_empty(),
            model.is_empty(),
            "{name} round {round}: is_empty"
        );
        assert_eq!(
            s.min(),
            model.iter().next().copied(),
            "{name} round {round}: min"
        );
        assert_eq!(
            s.max(),
            model.iter().next_back().copied(),
            "{name} round {round}: max"
        );

        // Point probes and their batched forms must agree with the oracle
        // AND each other; the probe vector deliberately mixes random keys
        // with duplicates, 0 (below any stored minimum most rounds), and
        // `u64::MAX` in arbitrary (unsorted) order.
        let mut probes: Vec<u64> = (0..25).map(|_| rng.bits(bits)).collect();
        probes.push(0);
        probes.push(u64::MAX);
        probes.push(probes[3]); // duplicate probe, out of sorted position
        let got_contains = s.contains_batch(&probes);
        let got_succ = s.successor_batch(&probes);
        for (i, &k) in probes.iter().enumerate() {
            assert_eq!(
                s.contains(k),
                model.contains(&k),
                "{name} round {round}: contains({k})"
            );
            assert_eq!(
                s.successor(k),
                model.range(k..).next().copied(),
                "{name} round {round}: successor({k})"
            );
            assert_eq!(
                got_contains[i],
                model.contains(&k),
                "{name} round {round}: contains_batch[{i}] ({k})"
            );
            assert_eq!(
                got_succ[i],
                model.range(k..).next().copied(),
                "{name} round {round}: successor_batch[{i}] ({k})"
            );
        }
        assert_eq!(
            s.contains_batch(&[]),
            Vec::<bool>::new(),
            "{name} round {round}: contains_batch([])"
        );

        // Range queries on random windows, all five range shapes.
        let a = rng.bits(bits);
        let b = rng.bits(bits);
        let (lo, hi) = (a.min(b), a.max(b));
        check_range(&s, &model, lo..hi, name, round);
        check_range(&s, &model, lo..=hi, name, round);
        check_range(&s, &model, lo.., name, round);
        check_range(&s, &model, ..hi, name, round);
        check_range(&s, &model, .., name, round);
    }
    let want: Vec<u64> = model.iter().copied().collect();
    assert_eq!(s.to_vec(), want, "{name}: final contents");
    assert!(s.iter_all().eq(want.iter().copied()), "{name}: iter_all");

    // par_chunks: chunks must each be ascending, mutually disjoint, and
    // together cover exactly the set's contents — the contract parallel
    // whole-set consumers (F-Graph's pull kernel) rely on for their
    // non-atomic interior-run writes.
    let chunks: Mutex<Vec<Vec<u64>>> = Mutex::new(Vec::new());
    s.par_chunks(&|chunk| chunks.lock().unwrap().push(chunk.to_vec()));
    let mut chunks = chunks.into_inner().unwrap();
    for (i, c) in chunks.iter().enumerate() {
        assert!(!c.is_empty(), "{name}: par_chunks yielded an empty chunk");
        assert!(
            c.windows(2).all(|w| w[0] < w[1]),
            "{name}: par_chunks chunk {i} not strictly ascending"
        );
    }
    chunks.sort_by_key(|c| c[0]);
    for w in chunks.windows(2) {
        assert!(
            w[0].last().unwrap() < w[1].first().unwrap(),
            "{name}: par_chunks chunks overlap"
        );
    }
    let flat: Vec<u64> = chunks.into_iter().flatten().collect();
    assert_eq!(flat, want, "{name}: par_chunks does not cover the set");

    // Chunked parallel aggregation must agree with the sequential range
    // queries — the whole-set scan contract the parallel engine executes
    // for real, so every current and future backend is gated on
    // parallel-scan correctness at whatever thread count the suite runs
    // under (the results are schedule-independent by construction).
    let par_sum = AtomicU64::new(0);
    let par_count = AtomicUsize::new(0);
    s.par_chunks(&|chunk| {
        let local: u64 = chunk.iter().fold(0u64, |a, &k| a.wrapping_add(k));
        par_sum.fetch_add(local, Ordering::Relaxed);
        par_count.fetch_add(chunk.len(), Ordering::Relaxed);
    });
    assert_eq!(
        par_sum.into_inner(),
        s.range_sum(..),
        "{name}: parallel chunked sum != sequential range_sum(..)"
    );
    assert_eq!(
        par_count.into_inner(),
        s.len(),
        "{name}: parallel chunked count != len()"
    );

    // scan_from: suffix agreement and early exit.
    let probe = rng.bits(bits);
    let mut got = Vec::new();
    s.scan_from(probe, &mut |k| {
        got.push(k);
        got.len() < 10
    });
    let want_suffix: Vec<u64> = model.range(probe..).take(10).copied().collect();
    assert_eq!(
        got, want_suffix,
        "{name}: scan_from({probe}) early-exit prefix"
    );

    // Sparse structure: a handful of far-apart keys leaves almost every
    // internal region empty, so `successor`/`scan_from` resumption must
    // hop whole empty runs (an occupancy-aware skip, not a region-at-a-
    // time walk) and still agree with the oracle — including probes that
    // land inside an empty run, on a stored key, just past one, below the
    // minimum, and at `u64::MAX`.
    let sparse: Vec<u64> = (0..48u64).map(|i| (i << 40) | 3).collect();
    let sp = S::build_sorted(&sparse);
    let sparse_probes = [
        0u64,
        1,
        5 << 40,
        (5 << 40) | 3,
        (5 << 40) | 4,
        (47 << 40) | 3,
        (47 << 40) | 4,
        u64::MAX,
    ];
    for probe in sparse_probes {
        let want = sparse.iter().copied().find(|&k| k >= probe);
        assert_eq!(
            sp.successor(probe),
            want,
            "{name}: sparse successor({probe})"
        );
        let mut got = Vec::new();
        sp.scan_from(probe, &mut |k| {
            got.push(k);
            got.len() < 3
        });
        let want_prefix: Vec<u64> = sparse
            .iter()
            .copied()
            .filter(|&k| k >= probe)
            .take(3)
            .collect();
        assert_eq!(got, want_prefix, "{name}: sparse scan_from({probe})");
    }
    let want_contains: Vec<bool> = sparse_probes.iter().map(|k| sp.contains(*k)).collect();
    let want_succ: Vec<Option<u64>> = sparse_probes.iter().map(|k| sp.successor(*k)).collect();
    assert_eq!(
        sp.contains_batch(&sparse_probes),
        want_contains,
        "{name}: sparse contains_batch"
    );
    assert_eq!(
        sp.successor_batch(&sparse_probes),
        want_succ,
        "{name}: sparse successor_batch"
    );

    // --- unsorted wrappers route through normalize_batch ---------------
    let mut messy: Vec<u64> = (0..100).map(|_| rng.bits(12)).collect();
    let mut expected = messy.clone();
    let expected = normalize_batch(&mut expected);
    let mut a = S::new_set();
    let mut b = S::new_set();
    assert_eq!(
        a.insert_batch(&mut messy, false),
        b.insert_batch_sorted(expected),
        "{name}: unsorted insert wrapper count"
    );
    assert_eq!(
        a.to_vec(),
        b.to_vec(),
        "{name}: unsorted insert wrapper contents"
    );
    let mut kill: Vec<u64> = expected.iter().rev().copied().collect();
    assert_eq!(
        a.remove_batch(&mut kill, false),
        expected.len(),
        "{name}: unsorted remove wrapper count"
    );
    assert!(a.is_empty(), "{name}: unsorted remove wrapper emptied");

    // --- mixed-op batches (apply_batch_sorted / normalize_ops) ---------
    // Random interleaved insert/remove streams — duplicates included, so
    // last-op-wins normalization is exercised (remove-then-insert and
    // insert-then-remove of the same key inside one batch) — checked
    // against the oracle across batch sizes spanning every update regime
    // (point fallback, in-place pipeline, full rebuild).
    let mut s = S::new_set();
    let mut model: BTreeSet<u64> = BTreeSet::new();
    {
        // Bulk-seed so mid-size op batches are small relative to the set.
        let seedling = rng.sorted_batch(30_000, bits);
        s.insert_batch_sorted(&seedling);
        model.extend(seedling.iter().copied());
    }
    for (round, &op_count) in [40usize, 1_500, 1_500, 6_000, 40, 1_500].iter().enumerate() {
        let mut raw: Vec<BatchOp<u64>> = (0..op_count)
            .map(|_| {
                let k = rng.bits(bits - 4); // dense: plenty of same-key runs
                if rng.chance(11, 20) {
                    BatchOp::Insert(k)
                } else {
                    BatchOp::Remove(k)
                }
            })
            .collect();
        // Oracle A: replay the *raw* stream sequentially.
        let mut replay = model.clone();
        for op in &raw {
            match *op {
                BatchOp::Insert(k) => {
                    replay.insert(k);
                }
                BatchOp::Remove(k) => {
                    replay.remove(&k);
                }
            }
        }
        let ops = normalize_ops(&mut raw);
        assert!(
            ops.windows(2).all(|w| w[0].key() < w[1].key()),
            "{name} round {round}: normalize_ops not strictly increasing"
        );
        // Oracle B: apply the normal form to the model, tracking counts.
        let mut want = BatchOutcome::default();
        for op in ops {
            match *op {
                BatchOp::Insert(k) => {
                    if model.insert(k) {
                        want.added += 1;
                    }
                }
                BatchOp::Remove(k) => {
                    if model.remove(&k) {
                        want.removed += 1;
                    }
                }
            }
        }
        assert_eq!(
            model, replay,
            "{name} round {round}: last-op-wins normal form diverged from sequential replay"
        );
        let got = s.apply_batch_sorted(ops);
        assert_eq!(got, want, "{name} round {round}: apply_batch_sorted counts");
        assert_eq!(s.len(), model.len(), "{name} round {round}: mixed len");
        for _ in 0..10 {
            let k = rng.bits(bits - 4);
            assert_eq!(
                s.contains(k),
                model.contains(&k),
                "{name} round {round}: mixed contains({k})"
            );
        }
    }
    let want: Vec<u64> = model.iter().copied().collect();
    assert_eq!(s.to_vec(), want, "{name}: mixed final contents");

    // Same-key collisions inside one batch, pinned explicitly: the later
    // op must win regardless of the key's prior presence.
    let mut s = S::new_set();
    s.insert_batch_sorted(&[5, 7]);
    let mut ops = vec![
        BatchOp::Remove(5u64), // present: remove…
        BatchOp::Insert(5),    // …then re-insert → net no-op, not added
        BatchOp::Insert(6),    // absent: insert…
        BatchOp::Remove(6),    // …then remove → net no-op, not removed
        BatchOp::Insert(7),    // present: plain no-op insert
        BatchOp::Remove(8),    // absent: plain no-op remove
        BatchOp::Insert(9),    // absent: real insert
        BatchOp::Remove(7),    // ops arrive unsorted across keys too
    ];
    let out = s.apply_batch(&mut ops, false);
    assert_eq!(
        out,
        BatchOutcome {
            added: 1,
            removed: 1
        },
        "{name}: same-key collision outcome"
    );
    assert_eq!(
        s.to_vec(),
        vec![5, 9],
        "{name}: same-key collision contents"
    );
}

fn check_range<S: RangeSet<u64>>(
    s: &S,
    model: &BTreeSet<u64>,
    range: impl std::ops::RangeBounds<u64> + Clone,
    name: &str,
    round: usize,
) {
    let want: Vec<u64> = model
        .range((range.start_bound(), range.end_bound()))
        .copied()
        .collect();
    let mut got = Vec::new();
    s.for_range(range.clone(), |k| got.push(k));
    assert_eq!(got, want, "{name} round {round}: for_range");
    let got_iter: Vec<u64> = s.range_iter(range.clone()).collect();
    assert_eq!(got_iter, want, "{name} round {round}: range_iter");
    let want_sum = want.iter().fold(0u64, |a, &b| a.wrapping_add(b));
    assert_eq!(
        s.range_sum(range),
        want_sum,
        "{name} round {round}: range_sum"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn btreeset_passes_its_own_contract() {
        // The oracle must pass the suite it anchors (self-consistency).
        assert_ordered_set_contract::<BTreeSet<u64>>(0xB7EE);
    }
}
