//! Byte-traffic regression for the compressed codec's membership probe
//! (needs `--features stats`; the counters are process-global, so this
//! file holds exactly one test).
//!
//! `leaf_contains` must decode only until the running value reaches the
//! probe and account only the bytes it consumed. The previous definition
//! delegated to `leaf_successor`, which decodes — and charges — the whole
//! run, so probing a leaf's head read `units_used(leaf)` bytes instead
//! of 8: that is what the exact equalities below would report.
#![cfg(feature = "stats")]

use cpma_api::BatchSet;
use cpma_pma::{stats, Cpma, ForceCodec, LeafStorage, PmaConfig};

#[test]
fn compressed_membership_probe_stops_early() {
    // Gap-7 keys are dense enough that the hybrid policy would pick the
    // bitmap encoding; pin the delta codec — this test is specifically
    // about the delta probe's early exit.
    let cfg = PmaConfig::builder()
        .force_codec(ForceCodec::Delta)
        .build()
        .unwrap();
    let mut c = Cpma::with_config(cfg);
    let mut elems: Vec<u64> = (0..200_000u64).map(|i| i * 7 + 3).collect();
    c.insert_batch(&mut elems, false);
    let storage = c.storage();

    // Pick the fullest leaf so the early-exit saving is unambiguous.
    let leaf = (0..storage.num_leaves())
        .max_by_key(|&l| storage.count(l))
        .unwrap();
    let mut run = Vec::new();
    storage.collect_leaf(leaf, &mut run);
    assert!(
        run.len() >= 8,
        "fullest leaf unexpectedly small: {}",
        run.len()
    );
    let used = storage.units_used(leaf) as u64;

    // Probing the head must touch only the 8-byte head itself.
    let (hit, t) = stats::measure(|| storage.leaf_contains(leaf, run[0]));
    assert!(hit);
    assert_eq!(t.bytes_read, 8, "head probe decoded past the head");

    // A probe below the head answers from the head alone too.
    let (hit, t) = stats::measure(|| storage.leaf_contains(leaf, run[0].wrapping_sub(1)));
    assert!(!hit);
    assert_eq!(t.bytes_read, 8, "below-head probe decoded past the head");

    // An early element must not cost a full-run decode.
    let (hit, t) = stats::measure(|| storage.leaf_contains(leaf, run[2]));
    assert!(hit);
    assert!(
        t.bytes_read < used,
        "early-element probe read the whole run ({} of {used} bytes)",
        t.bytes_read
    );

    // The last element legitimately needs the whole run — upper bound.
    let (hit, t) = stats::measure(|| storage.leaf_contains(leaf, *run.last().unwrap()));
    assert!(hit);
    assert!(t.bytes_read <= used);

    // Bitmap leaves answer any membership probe from the base plus one
    // word: a flat 16 bytes no matter where the key sits in the leaf.
    let mut dense = Cpma::new();
    let mut keys: Vec<u64> = (0..200_000u64).collect();
    dense.insert_batch(&mut keys, false);
    let storage = dense.storage();
    let leaf = (0..storage.num_leaves())
        .max_by_key(|&l| storage.count(l))
        .unwrap();
    let mut run = Vec::new();
    storage.collect_leaf(leaf, &mut run);
    assert!(storage.units_used(leaf) as u64 > 16);
    let (hit, t) = stats::measure(|| storage.leaf_contains(leaf, *run.last().unwrap()));
    assert!(hit);
    assert_eq!(t.bytes_read, 16, "bitmap probe is O(1) bytes");
}
