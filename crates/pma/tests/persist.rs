//! Snapshot roundtrips and corruption fuzzing for `Pma`/`Cpma`.
//!
//! The contract under test: `save`/`load` (and the in-memory
//! `to_snapshot_bytes`/`from_snapshot_bytes`) roundtrip *whole-structure*
//! equality, and every flipped or truncated byte in a snapshot yields a
//! typed `PersistError` — never a panic, never an unchecked allocation.

use cpma_api::{BatchOp, BatchSet, Persist, PersistError, RangeSet};
use cpma_pma::{Cpma, Pma, PmaConfig};
use std::path::PathBuf;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cpma-pma-persist-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn sample_keys(n: u64) -> Vec<u64> {
    // Mixed-stride keys: dense runs (small deltas) and sparse jumps
    // (multi-byte codes) so the CPMA payload exercises both shapes.
    (0..n)
        .map(|i| i * 7 + (i % 13) * 1_000_003 + (i % 3) * (1 << 33))
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect()
}

fn build<S: BatchSet<u64>>(keys: &[u64]) -> S {
    let mut set = S::new_set();
    let mut batch = keys.to_vec();
    set.insert_batch(&mut batch, false);
    // A remove wave so the structure has lived through both batch paths.
    let mut rm: Vec<u64> = keys.iter().copied().step_by(5).collect();
    set.remove_batch(&mut rm, false);
    set
}

#[test]
fn pma_file_roundtrip_whole_structure_equality() {
    let dir = tmp_dir("pma-file");
    for n in [0u64, 1, 100, 20_000] {
        let set: Pma = build(&sample_keys(n));
        let path = dir.join(format!("pma-{n}.snap"));
        set.save(&path).unwrap();
        let back = Pma::load(&path).unwrap();
        // The PartialEq satellite: element + config equality in one shot.
        assert_eq!(set, back, "n = {n}");
        back.check_invariants();
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn cpma_file_roundtrip_whole_structure_equality() {
    let dir = tmp_dir("cpma-file");
    for n in [0u64, 1, 100, 20_000] {
        let set: Cpma = build(&sample_keys(n));
        let path = dir.join(format!("cpma-{n}.snap"));
        set.save(&path).unwrap();
        let back = Cpma::load(&path).unwrap();
        assert_eq!(set, back, "n = {n}");
        back.check_invariants();
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn snapshot_bytes_roundtrip_and_are_stable() {
    let set: Cpma = build(&sample_keys(5_000));
    let bytes = set.to_snapshot_bytes();
    let back = Cpma::from_snapshot_bytes(&bytes).unwrap();
    assert_eq!(set, back);
    // save → load → save is byte-identical (canonical image).
    assert_eq!(back.to_snapshot_bytes(), bytes);
}

#[test]
fn u32_keys_roundtrip_and_width_mismatch_is_typed() {
    let mut set = Pma::<u32>::new();
    let mut batch: Vec<u32> = (0..3_000u32).map(|i| i * 7 + (i % 13) * 10_003).collect();
    set.insert_batch(&mut batch, false);
    let mut rm: Vec<u32> = (0..3_000u32).step_by(5).map(|i| i * 7).collect();
    set.remove_batch(&mut rm, false);
    let bytes = set.to_snapshot_bytes();
    let back = Pma::<u32>::from_snapshot_bytes(&bytes).unwrap();
    assert_eq!(set, back);
    // A u32 image must not open as a u64 PMA.
    assert!(matches!(
        Pma::<u64>::from_snapshot_bytes(&bytes),
        Err(PersistError::KeyWidthMismatch {
            expected: 8,
            found: 4
        })
    ));
}

#[test]
fn codec_mismatch_is_typed() {
    let pma: Pma = build(&sample_keys(500));
    let cpma: Cpma = build(&sample_keys(500));
    assert!(matches!(
        Cpma::from_snapshot_bytes(&pma.to_snapshot_bytes()),
        Err(PersistError::CodecMismatch { .. })
    ));
    assert!(matches!(
        Pma::<u64>::from_snapshot_bytes(&cpma.to_snapshot_bytes()),
        Err(PersistError::CodecMismatch { .. })
    ));
}

#[test]
fn head_layout_tag_roundtrips_and_mismatch_is_typed() {
    use cpma_pma::{CpmaBNary, PmaEytzinger, PmaLinear};

    // Same-layout roundtrip: whole-structure equality, still usable.
    let set: PmaEytzinger = build(&sample_keys(20_000));
    let bytes = set.to_snapshot_bytes();
    let back = PmaEytzinger::<u64>::from_snapshot_bytes(&bytes).unwrap();
    assert_eq!(set, back);
    back.check_invariants();

    // Opening under any *other* head layout is a typed corruption error
    // that names both layouts — the aux array is rebuilt from the tag's
    // layout, so a silent cross-load would misroute every lookup.
    let err = Pma::<u64>::from_snapshot_bytes(&bytes).unwrap_err();
    match err {
        PersistError::Corrupt(msg) => {
            assert!(
                msg.contains("eytzinger"),
                "message names found layout: {msg}"
            );
            assert!(
                msg.contains("inplace"),
                "message names expected layout: {msg}"
            );
        }
        other => panic!("expected Corrupt, got {other:?}"),
    }
    assert!(matches!(
        PmaLinear::<u64>::from_snapshot_bytes(&bytes),
        Err(PersistError::Corrupt(_))
    ));

    // Compressed codec carries the tag too.
    let cset: CpmaBNary = build(&sample_keys(10_000));
    let cbytes = cset.to_snapshot_bytes();
    let cback = CpmaBNary::from_snapshot_bytes(&cbytes).unwrap();
    assert_eq!(cset, cback);
    assert!(matches!(
        Cpma::from_snapshot_bytes(&cbytes),
        Err(PersistError::Corrupt(_))
    ));
}

#[test]
fn non_default_config_survives_roundtrip() {
    let cfg = PmaConfig::builder()
        .growing_factor(1.5)
        .point_update_cutoff(0)
        .build()
        .unwrap();
    let mut set = Cpma::with_config(cfg);
    let mut batch: Vec<u64> = (0..10_000u64).map(|i| i * 3).collect();
    set.insert_batch(&mut batch, true);
    let back = Cpma::from_snapshot_bytes(&set.to_snapshot_bytes()).unwrap();
    assert_eq!(back.config(), &cfg);
    assert_eq!(set, back);
    // Config differences break equality even with identical elements.
    let mut default_cfg = Cpma::new();
    let mut batch2: Vec<u64> = (0..10_000u64).map(|i| i * 3).collect();
    default_cfg.insert_batch(&mut batch2, true);
    assert_ne!(back, default_cfg);
}

#[test]
fn loaded_structure_remains_fully_usable() {
    let set: Cpma = build(&sample_keys(10_000));
    let mut back = Cpma::from_snapshot_bytes(&set.to_snapshot_bytes()).unwrap();
    let expect = set.range_sum(..);
    assert_eq!(back.range_sum(..), expect);
    // Updates after load go through every pipeline path unharmed.
    let mut more: Vec<u64> = (0..50_000u64).map(|i| i * 11 + 5).collect();
    back.insert_batch(&mut more, false);
    back.check_invariants();
    let mut ops: Vec<BatchOp<u64>> = (0..1_000u64)
        .map(|i| {
            if i % 2 == 0 {
                BatchOp::Insert(i * 13)
            } else {
                BatchOp::Remove(i * 11 + 5)
            }
        })
        .collect();
    back.apply_batch(&mut ops, false);
    back.check_invariants();
}

/// Flip (a sample of) single bytes across the whole snapshot: every flip
/// must produce a typed error. The envelope checksums make this
/// exhaustive in effect — a flip lands in either the header (header crc)
/// or the payload (payload crc) or a crc field itself.
fn assert_every_flip_detected(bytes: &[u8], load: impl Fn(&[u8]) -> Result<(), PersistError>) {
    // Step 3 keeps runtime moderate while still hitting every field; the
    // first 128 bytes (header + meta) are covered exhaustively.
    let positions = (0..bytes.len().min(128)).chain((128..bytes.len()).step_by(3));
    for i in positions {
        let mut bad = bytes.to_vec();
        bad[i] ^= 0x08;
        match load(&bad) {
            Err(e) => {
                let _ = e.to_string(); // Display must not panic either
            }
            Ok(()) => panic!("flip at byte {i} went undetected"),
        }
    }
}

#[test]
fn fuzz_pma_snapshot_byte_flips() {
    let set: Pma = build(&sample_keys(2_000));
    let bytes = set.to_snapshot_bytes();
    assert_every_flip_detected(&bytes, |b| Pma::<u64>::from_snapshot_bytes(b).map(|_| ()));
}

#[test]
fn fuzz_cpma_snapshot_byte_flips() {
    let set: Cpma = build(&sample_keys(2_000));
    let bytes = set.to_snapshot_bytes();
    assert_every_flip_detected(&bytes, |b| Cpma::from_snapshot_bytes(b).map(|_| ()));
}

#[test]
fn fuzz_cpma_snapshot_truncations() {
    let set: Cpma = build(&sample_keys(2_000));
    let bytes = set.to_snapshot_bytes();
    for n in (0..bytes.len()).step_by(7).chain([bytes.len() - 1]) {
        assert!(
            Cpma::from_snapshot_bytes(&bytes[..n]).is_err(),
            "truncation to {n} bytes went undetected"
        );
    }
}

/// Attack the *validated* layer directly: forge a structurally invalid
/// payload with correct checksums (flip bytes, then recompute the crcs by
/// rebuilding the envelope). Loads must still fail typed, proving the
/// per-leaf validation pass — not just the checksums — guards the codecs.
#[test]
fn forged_payloads_with_valid_checksums_are_rejected() {
    use cpma_persist::snapshot::SnapshotEnvelope;
    let set: Cpma = build(&sample_keys(2_000));
    let env = SnapshotEnvelope::from_bytes(&set.to_snapshot_bytes()).unwrap();
    let mut rejected = 0usize;
    for i in (0..env.payload.len()).step_by(11) {
        let mut forged = env.clone();
        forged.payload[i] ^= 0x55;
        match Cpma::from_snapshot_bytes(&forged.to_bytes()) {
            Err(_) => rejected += 1,
            Ok(back) => {
                // A flip in don't-care bytes (slack past a leaf's used
                // prefix) may legitimately load; it must load *correctly*.
                back.check_invariants();
            }
        }
    }
    assert!(rejected > 0, "validation layer never fired");

    // Element-count inflation in the meta section must be caught by the
    // recount, not trusted.
    let mut inflated = env.clone();
    let len_at = 4 + 7 * 8 + 4 * 8; // key width + seven f64 + four u64
    let huge = (u32::MAX as u64).to_le_bytes();
    inflated.meta[len_at..len_at + 8].copy_from_slice(&huge);
    assert!(matches!(
        Cpma::from_snapshot_bytes(&inflated.to_bytes()),
        Err(PersistError::Corrupt(_))
    ));
}
