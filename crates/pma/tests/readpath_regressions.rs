//! Regressions for the O(n) read-path hazards: empty-run routing and
//! successor resumption must not touch per-leaf metadata leaf-by-leaf,
//! and the two leaf codecs must agree on every per-leaf query.
//!
//! The routing tests use a counting [`LeafStorage`] adapter: the engine's
//! read path (`has`/`successor`/batched lookups) is expected to consult
//! the occupancy bitset, never `count()`. The previous implementation
//! walked `count(leaf)` backward (destination routing) or forward
//! (successor resumption) across every leaf of an empty run, so on the
//! sparse structures below it made hundreds of `count()` calls per probe
//! — these tests fail loudly against it.

use cpma_api::PersistError;
use cpma_pma::{LeafStorage, Pma, PmaConfig, PmaCore, UncompressedLeaves};
use std::sync::atomic::{AtomicUsize, Ordering};

type Inner = UncompressedLeaves<u64>;

/// `UncompressedLeaves` plus a counter of trait-level `count()` calls —
/// the per-leaf probe the old empty-run walks were made of.
struct CountingLeaves {
    inner: Inner,
    count_calls: AtomicUsize,
}

impl CountingLeaves {
    fn wrap(inner: Inner) -> Self {
        Self {
            inner,
            count_calls: AtomicUsize::new(0),
        }
    }

    fn count_calls(&self) -> usize {
        self.count_calls.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.count_calls.store(0, Ordering::Relaxed);
    }
}

impl LeafStorage<u64> for CountingLeaves {
    type Shared<'a> = <Inner as LeafStorage<u64>>::Shared<'a>;

    const NAME: &'static str = "PMA(counting)";
    const MIN_LEAF_UNITS: usize = Inner::MIN_LEAF_UNITS;
    const LEAF_ALIGN: usize = Inner::LEAF_ALIGN;
    const HEAD_UNITS: usize = Inner::HEAD_UNITS;
    const LEAF_SCALE: usize = Inner::LEAF_SCALE;
    const CODEC_ID: u32 = Inner::CODEC_ID;

    fn with_geometry(num_leaves: usize, leaf_units: usize) -> Self {
        Self::wrap(Inner::with_geometry(num_leaves, leaf_units))
    }

    fn payload_len(num_leaves: usize, leaf_units: usize) -> Option<usize> {
        Inner::payload_len(num_leaves, leaf_units)
    }

    fn write_payload(&self, out: &mut Vec<u8>) {
        self.inner.write_payload(out)
    }

    fn read_payload(
        num_leaves: usize,
        leaf_units: usize,
        payload: &[u8],
    ) -> Result<Self, PersistError> {
        Inner::read_payload(num_leaves, leaf_units, payload).map(Self::wrap)
    }

    fn num_leaves(&self) -> usize {
        self.inner.num_leaves()
    }

    fn leaf_units(&self) -> usize {
        self.inner.leaf_units()
    }

    fn units_used(&self, leaf: usize) -> usize {
        self.inner.units_used(leaf)
    }

    fn count(&self, leaf: usize) -> usize {
        self.count_calls.fetch_add(1, Ordering::Relaxed);
        self.inner.count(leaf)
    }

    fn head(&self, leaf: usize) -> u64 {
        self.inner.head(leaf)
    }

    fn is_overflowed(&self, leaf: usize) -> bool {
        self.inner.is_overflowed(leaf)
    }

    fn size_bytes(&self) -> usize {
        self.inner.size_bytes()
    }

    fn leaf_successor(&self, leaf: usize, key: u64) -> Option<u64> {
        self.inner.leaf_successor(leaf, key)
    }

    fn leaf_contains(&self, leaf: usize, key: u64) -> bool {
        self.inner.leaf_contains(leaf, key)
    }

    fn leaf_max(&self, leaf: usize) -> Option<u64> {
        self.inner.leaf_max(leaf)
    }

    fn for_each_in_leaf(&self, leaf: usize, f: &mut dyn FnMut(u64) -> bool) -> bool {
        self.inner.for_each_in_leaf(leaf, f)
    }

    fn collect_leaf(&self, leaf: usize, out: &mut Vec<u64>) {
        self.inner.collect_leaf(leaf, out)
    }

    fn leaf_sum(&self, leaf: usize) -> u64 {
        self.inner.leaf_sum(leaf)
    }

    fn units_for(elems: &[u64]) -> usize {
        Inner::units_for(elems)
    }

    fn plan_split(elems: &[u64], k: usize, leaf_units: usize) -> Vec<usize> {
        Inner::plan_split(elems, k, leaf_units)
    }

    fn shared(&mut self) -> Self::Shared<'_> {
        self.inner.shared()
    }
}

type CountingPma = PmaCore<u64, CountingLeaves>;

/// A structure whose occupied leaves are separated by empty runs of
/// hundreds of leaves: 6 elements forced across ≥ 4096 leaves.
fn sparse_pma() -> CountingPma {
    let cfg = PmaConfig::builder().min_leaves(4096).build().unwrap();
    let elems: Vec<u64> = (0..6u64).map(|i| i << 56).collect();
    let p = CountingPma::from_sorted_with(&elems, cfg);
    assert!(p.storage().num_leaves() >= 4096);
    p.storage().reset();
    p
}

#[test]
fn routing_over_long_empty_runs_never_scans_leaf_counts() {
    let p = sparse_pma();
    // Probes landing mid-run, on stored keys, below the minimum, and at
    // the very top: destination routing must come from the occupancy
    // bitset, not a per-leaf backward walk.
    for probe in [
        0u64,
        1,
        1 << 40,
        2 << 56,
        (2 << 56) + 1,
        (3 << 56) - 1,
        5 << 56,
        u64::MAX,
    ] {
        let expect = (0..6u64).map(|i| i << 56).any(|k| k == probe);
        assert_eq!(p.has(probe), expect, "has({probe})");
    }
    assert_eq!(
        p.storage().count_calls(),
        0,
        "the point-lookup path walked per-leaf counts across an empty run"
    );
}

#[test]
fn successor_over_long_empty_runs_never_scans_leaf_counts() {
    let p = sparse_pma();
    let elems: Vec<u64> = (0..6u64).map(|i| i << 56).collect();
    for probe in [0u64, 1, (1 << 56) + 1, (4 << 56) + 12345, 5 << 56, u64::MAX] {
        let want = elems.iter().copied().find(|&k| k >= probe);
        assert_eq!(p.successor(probe), want, "successor({probe})");
    }
    assert_eq!(
        p.storage().count_calls(),
        0,
        "the successor path walked per-leaf counts across an empty run"
    );
}

#[test]
fn batched_lookups_never_scan_leaf_counts() {
    let p = sparse_pma();
    let elems: Vec<u64> = (0..6u64).map(|i| i << 56).collect();
    let probes: Vec<u64> = vec![0, 1, 1 << 56, (1 << 56) + 1, 3 << 56, 3 << 56, u64::MAX];
    let contains = p.contains_batch(&probes);
    let succ = p.successor_batch(&probes);
    for (i, &k) in probes.iter().enumerate() {
        assert_eq!(contains[i], elems.contains(&k), "contains_batch[{i}]");
        assert_eq!(
            succ[i],
            elems.iter().copied().find(|&e| e >= k),
            "successor_batch[{i}]"
        );
    }
    assert_eq!(
        p.storage().count_calls(),
        0,
        "the batched read path walked per-leaf counts across an empty run"
    );
}

/// Both codecs must give identical per-leaf answers: `leaf_contains` is an
/// independent early-exit decode for the compressed codec (it used to be
/// defined as `leaf_successor(..) == Some(key)`), so pin the agreement of
/// both per-leaf queries against a collect-derived oracle, per leaf, for
/// member keys and their neighbours.
#[test]
fn leaf_queries_agree_across_codecs() {
    use cpma_pma::{CompressedLeaves, Cpma};

    let elems: Vec<u64> = (0..30_000u64)
        .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 20)
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect();
    let p = Pma::<u64>::from_sorted(&elems);
    let c = Cpma::from_sorted(&elems);

    fn check_storage<L: LeafStorage<u64>>(storage: &L, name: &str) {
        let mut buf = Vec::new();
        for leaf in 0..storage.num_leaves() {
            buf.clear();
            storage.collect_leaf(leaf, &mut buf);
            if buf.is_empty() {
                continue;
            }
            for &e in &buf {
                for probe in [e.saturating_sub(1), e, e.saturating_add(1)] {
                    assert_eq!(
                        storage.leaf_contains(leaf, probe),
                        buf.contains(&probe),
                        "{name}: leaf {leaf} contains({probe})"
                    );
                    assert_eq!(
                        storage.leaf_successor(leaf, probe),
                        buf.iter().copied().find(|&k| k >= probe),
                        "{name}: leaf {leaf} successor({probe})"
                    );
                }
            }
        }
    }
    check_storage::<UncompressedLeaves<u64>>(p.storage(), "PMA");
    check_storage::<CompressedLeaves>(c.storage(), "CPMA");

    // And the set-level answers agree between the codecs.
    for probe in elems.iter().step_by(97).copied() {
        assert_eq!(p.has(probe), c.has(probe));
        assert_eq!(p.has(probe + 1), c.has(probe + 1));
        assert_eq!(p.successor(probe + 1), c.successor(probe + 1));
    }
}
