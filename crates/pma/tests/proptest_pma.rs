//! Crate-level property tests for the PMA/CPMA: structural invariants and
//! behavioural equivalences under adversarial inputs that unit tests don't
//! reach (dense runs, huge gaps, boundary keys, pathological batch mixes).
//!
//! Written against the in-repo randomized-test kit
//! ([`cpma_api::testkit::Rng`]) — seeded and fully deterministic, no
//! external property-testing dependency (the build environment is offline).

use cpma_api::testkit::{sorted_unique, Rng};
use cpma_pma::{Cpma, DensityBounds, Pma, PmaConfig};
use std::collections::BTreeSet;

const CASES: u64 = 48;

/// Key generators spanning the distributions that stress different parts
/// of the structure: dense runs (tiny deltas), sparse (huge deltas), and
/// clustered (a few hot leaves).
fn key_batch(rng: &mut Rng) -> Vec<u64> {
    match rng.below(3) {
        // dense run with a random base
        0 => {
            let base = rng.bits(32);
            let n = rng.below(600) + 1;
            (0..n).map(|i| base + i).collect()
        }
        // uniform sparse
        1 => {
            let n = rng.below(600) as usize;
            (0..n).map(|_| rng.next_u64()).collect()
        }
        // clustered around a handful of centers
        _ => {
            let centers: Vec<u64> = (0..rng.below(4) + 1).map(|_| rng.bits(32)).collect();
            let n = rng.below(400) as usize + 1;
            (0..n)
                .map(|i| (centers[i % centers.len()] << 16) + (i as u64 % 1000))
                .collect()
        }
    }
}

/// from_sorted round-trips any distribution, both storages.
#[test]
fn build_roundtrip() {
    let mut rng = Rng::new(0xB111);
    for _ in 0..CASES {
        let elems = sorted_unique(key_batch(&mut rng));
        let p = Pma::<u64>::from_sorted(&elems);
        assert!(p.iter().eq(elems.iter().copied()));
        p.check_invariants();
        let c = Cpma::from_sorted(&elems);
        assert!(c.iter().eq(elems.iter().copied()));
        c.check_invariants();
    }
}

/// Alternating insert/delete batches keep both structures equal to the
/// model and internally consistent.
#[test]
fn mixed_batches_match_model() {
    let mut rng = Rng::new(0x0112);
    for _ in 0..CASES {
        let mut p = Pma::<u64>::new();
        let mut c = Cpma::new();
        let mut model = BTreeSet::new();
        let rounds = rng.below(5) + 1;
        for _ in 0..rounds {
            let b = sorted_unique(key_batch(&mut rng));
            if rng.chance(1, 2) {
                let before = model.len();
                model.extend(b.iter().copied());
                let want = model.len() - before;
                assert_eq!(p.insert_batch_sorted(&b), want);
                assert_eq!(c.insert_batch_sorted(&b), want);
            } else {
                let mut want = 0;
                for k in &b {
                    if model.remove(k) {
                        want += 1;
                    }
                }
                assert_eq!(p.remove_batch_sorted(&b), want);
                assert_eq!(c.remove_batch_sorted(&b), want);
            }
            p.check_invariants();
            c.check_invariants();
        }
        assert!(p.iter().eq(model.iter().copied()));
        assert!(c.iter().eq(model.iter().copied()));
    }
}

/// iter_from agrees with filtering the full iteration.
#[test]
fn iter_from_matches_filter() {
    let mut rng = Rng::new(0x17E4);
    for _ in 0..CASES {
        let elems = sorted_unique(key_batch(&mut rng));
        let c = Cpma::from_sorted(&elems);
        // Probe both arbitrary values and stored values.
        let start = if rng.chance(1, 2) || elems.is_empty() {
            rng.next_u64()
        } else {
            elems[rng.below(elems.len() as u64) as usize]
        };
        let want: Vec<u64> = elems.iter().copied().filter(|&e| e >= start).collect();
        let got: Vec<u64> = c.iter_from(start).collect();
        assert_eq!(got, want);
    }
}

/// map_range_length visits exactly min(length, #elements ≥ start)
/// elements, in order.
#[test]
fn map_range_length_counts() {
    let mut rng = Rng::new(0x3A91);
    for _ in 0..CASES {
        let elems = sorted_unique(key_batch(&mut rng));
        let p = Pma::<u64>::from_sorted(&elems);
        let start = rng.next_u64();
        let len = rng.below(50) as usize;
        let mut got = Vec::new();
        let visited = p.map_range_length(start, len, |e| got.push(e));
        let want: Vec<u64> = elems
            .iter()
            .copied()
            .filter(|&e| e >= start)
            .take(len)
            .collect();
        assert_eq!(visited, want.len());
        assert_eq!(got, want);
    }
}

/// min/max/len/sum agree with the model after batch churn.
#[test]
fn aggregates_match() {
    let mut rng = Rng::new(0xA66A);
    for _ in 0..CASES {
        let elems = sorted_unique(key_batch(&mut rng));
        let dels = sorted_unique(key_batch(&mut rng));
        let mut c = Cpma::from_sorted(&elems);
        c.remove_batch_sorted(&dels);
        let model: BTreeSet<u64> = elems
            .iter()
            .copied()
            .filter(|k| dels.binary_search(k).is_err())
            .collect();
        assert_eq!(c.len(), model.len());
        assert_eq!(c.min(), model.iter().next().copied());
        assert_eq!(c.max(), model.iter().next_back().copied());
        let want = model.iter().fold(0u64, |a, &b| a.wrapping_add(b));
        assert_eq!(c.sum(), want);
    }
}

/// Every growing factor in the paper's Appendix C sweep keeps the
/// structure correct. Exercises the fallible builder while at it.
#[test]
fn growing_factors_correct() {
    let mut rng = Rng::new(0x6F01);
    for factor_tenths in 11u32..=20 {
        let cfg = PmaConfig::builder()
            .growing_factor(factor_tenths as f64 / 10.0)
            .build()
            .expect("legal growing factor");
        let mut c = Cpma::with_config(cfg);
        let mut model = BTreeSet::new();
        let keys: Vec<u64> = (0..rng.below(800) + 1).map(|_| rng.next_u64()).collect();
        for chunk in keys.chunks(97) {
            let b = sorted_unique(chunk.to_vec());
            c.insert_batch_sorted(&b);
            model.extend(b);
        }
        assert!(c.iter().eq(model.iter().copied()));
        c.check_invariants();
    }
}

/// Custom density bounds within the legal envelope keep behaviour.
#[test]
fn custom_density_bounds_correct() {
    let mut rng = Rng::new(0xD0B5);
    for _ in 0..CASES {
        let upper_leaf = 0.80 + rng.below(15) as f64 / 100.0;
        let lower_root = 0.20 + rng.below(15) as f64 / 100.0;
        let bounds = DensityBounds {
            upper_leaf,
            upper_root: 0.7,
            lower_leaf: 0.05,
            lower_root,
            rebuild_target: 0.5,
        };
        let cfg = PmaConfig::builder()
            .bounds(bounds)
            .build()
            .expect("legal bounds");
        let mut p = Pma::<u64>::with_config(cfg);
        let b = sorted_unique(key_batch(&mut rng));
        p.insert_batch_sorted(&b);
        assert!(p.iter().eq(b.iter().copied()));
        p.check_invariants();
    }
}

/// The builder rejects every illegal parameter with a named field.
#[test]
fn builder_rejects_bad_configs() {
    assert_eq!(
        PmaConfig::builder()
            .growing_factor(1.0)
            .build()
            .unwrap_err()
            .field,
        "growing_factor"
    );
    assert_eq!(
        PmaConfig::builder()
            .growing_factor(f64::INFINITY)
            .build()
            .unwrap_err()
            .field,
        "growing_factor"
    );
    assert_eq!(
        PmaConfig::builder()
            .min_leaves(0)
            .build()
            .unwrap_err()
            .field,
        "min_leaves"
    );
    let bad = DensityBounds {
        rebuild_target: 0.95,
        ..Default::default()
    };
    assert_eq!(
        PmaConfig::builder().bounds(bad).build().unwrap_err().field,
        "bounds.rebuild_target"
    );
}

#[test]
fn point_ops_at_extremes() {
    let mut c = Cpma::new();
    assert!(c.insert(u64::MAX));
    assert!(c.insert(0));
    assert!(c.insert(u64::MAX - 1));
    assert!(!c.insert(u64::MAX));
    assert_eq!(
        c.iter().collect::<Vec<_>>(),
        vec![0, u64::MAX - 1, u64::MAX]
    );
    assert!(c.remove(0));
    assert_eq!(c.min(), Some(u64::MAX - 1));
    c.check_invariants();
}

#[test]
fn batch_larger_than_structure() {
    // k >> n exercises the full-rebuild regime from a tiny base.
    let mut c = Cpma::from_sorted(&[5, 10]);
    let batch: Vec<u64> = (0..50_000u64).map(|i| i * 2 + 1).collect();
    // 5 is already present, so one batch key is a duplicate.
    assert_eq!(c.insert_batch_sorted(&batch), 49_999);
    assert_eq!(c.len(), 50_001);
    c.check_invariants();
}

#[test]
fn repeated_identical_batches_are_idempotent() {
    let batch: Vec<u64> = (0..10_000u64).map(|i| i * 7).collect();
    let mut p = Pma::<u64>::new();
    assert_eq!(p.insert_batch_sorted(&batch), 10_000);
    for _ in 0..5 {
        assert_eq!(p.insert_batch_sorted(&batch), 0);
        p.check_invariants();
    }
    assert_eq!(p.len(), 10_000);
}

#[test]
fn alternating_grow_shrink_cycles() {
    // Pump the structure up and down across several resize boundaries.
    let mut c = Cpma::new();
    for round in 0..6u64 {
        let keys: Vec<u64> = (0..20_000u64).map(|i| i * 31 + round).collect();
        let b = sorted_unique(keys);
        c.insert_batch_sorted(&b);
        c.check_invariants();
        c.remove_batch_sorted(&b);
        c.check_invariants();
    }
    assert!(c.is_empty());
}
