//! Crate-level property tests for the PMA/CPMA: structural invariants and
//! behavioural equivalences under adversarial inputs that unit tests don't
//! reach (dense runs, huge gaps, boundary keys, pathological batch mixes).

use cpma_pma::{Cpma, DensityBounds, Pma, PmaConfig};
use proptest::collection::vec;
use proptest::prelude::*;
use std::collections::BTreeSet;

fn sorted_unique(mut v: Vec<u64>) -> Vec<u64> {
    v.sort_unstable();
    v.dedup();
    v
}

/// Key generators spanning the distributions that stress different parts
/// of the structure: dense runs (tiny deltas), sparse (huge deltas), and
/// clustered (a few hot leaves).
fn key_strategy() -> impl Strategy<Value = Vec<u64>> {
    prop_oneof![
        // dense run with a random base
        (any::<u32>(), 1usize..600).prop_map(|(base, n)| {
            (0..n as u64).map(|i| base as u64 + i).collect()
        }),
        // uniform sparse
        vec(any::<u64>(), 0..600),
        // clustered around a handful of centers
        (vec(any::<u32>(), 1..5), 1usize..400).prop_map(|(centers, n)| {
            let mut out = Vec::with_capacity(n);
            for i in 0..n {
                let c = centers[i % centers.len()] as u64;
                out.push((c << 16) + (i as u64 % 1000));
            }
            out
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// from_sorted round-trips any distribution, both storages.
    #[test]
    fn build_roundtrip(keys in key_strategy()) {
        let elems = sorted_unique(keys);
        let p = Pma::<u64>::from_sorted(&elems);
        prop_assert!(p.iter().eq(elems.iter().copied()));
        p.check_invariants();
        let c = Cpma::from_sorted(&elems);
        prop_assert!(c.iter().eq(elems.iter().copied()));
        c.check_invariants();
    }

    /// Alternating insert/delete batches keep both structures equal to the
    /// model and internally consistent.
    #[test]
    fn mixed_batches_match_model(
        rounds in vec((any::<bool>(), key_strategy()), 1..6)
    ) {
        let mut p = Pma::<u64>::new();
        let mut c = Cpma::new();
        let mut model = BTreeSet::new();
        for (is_insert, keys) in rounds {
            let b = sorted_unique(keys);
            if is_insert {
                let before = model.len();
                model.extend(b.iter().copied());
                let want = model.len() - before;
                prop_assert_eq!(p.insert_batch_sorted(&b), want);
                prop_assert_eq!(c.insert_batch_sorted(&b), want);
            } else {
                let mut want = 0;
                for k in &b {
                    if model.remove(k) {
                        want += 1;
                    }
                }
                prop_assert_eq!(p.remove_batch_sorted(&b), want);
                prop_assert_eq!(c.remove_batch_sorted(&b), want);
            }
            p.check_invariants();
            c.check_invariants();
        }
        prop_assert!(p.iter().eq(model.iter().copied()));
        prop_assert!(c.iter().eq(model.iter().copied()));
    }

    /// iter_from agrees with filtering the full iteration.
    #[test]
    fn iter_from_matches_filter(keys in key_strategy(), start in any::<u64>()) {
        let elems = sorted_unique(keys);
        let c = Cpma::from_sorted(&elems);
        let want: Vec<u64> = elems.iter().copied().filter(|&e| e >= start).collect();
        let got: Vec<u64> = c.iter_from(start).collect();
        prop_assert_eq!(got, want);
    }

    /// map_range_length visits exactly min(length, #elements ≥ start)
    /// elements, in order.
    #[test]
    fn map_range_length_counts(keys in key_strategy(), start in any::<u64>(), len in 0usize..50) {
        let elems = sorted_unique(keys);
        let p = Pma::<u64>::from_sorted(&elems);
        let mut got = Vec::new();
        let visited = p.map_range_length(start, len, |e| got.push(e));
        let want: Vec<u64> =
            elems.iter().copied().filter(|&e| e >= start).take(len).collect();
        prop_assert_eq!(visited, want.len());
        prop_assert_eq!(got, want);
    }

    /// min/max/len/sum agree with the model after batch churn.
    #[test]
    fn aggregates_match(keys in key_strategy(), dels in key_strategy()) {
        let elems = sorted_unique(keys);
        let dels = sorted_unique(dels);
        let mut c = Cpma::from_sorted(&elems);
        c.remove_batch_sorted(&dels);
        let model: BTreeSet<u64> = elems
            .iter()
            .copied()
            .filter(|k| dels.binary_search(k).is_err())
            .collect();
        prop_assert_eq!(c.len(), model.len());
        prop_assert_eq!(c.min(), model.iter().next().copied());
        prop_assert_eq!(c.max(), model.iter().next_back().copied());
        let want = model.iter().fold(0u64, |a, &b| a.wrapping_add(b));
        prop_assert_eq!(c.sum(), want);
    }

    /// Every growing factor in the paper's Appendix C sweep keeps the
    /// structure correct.
    #[test]
    fn growing_factors_correct(
        factor_tenths in 11u32..=20,
        keys in vec(any::<u64>(), 1..800),
    ) {
        let cfg = PmaConfig {
            growing_factor: factor_tenths as f64 / 10.0,
            ..Default::default()
        };
        let mut c = Cpma::with_config(cfg);
        let mut model = BTreeSet::new();
        for chunk in keys.chunks(97) {
            let b = sorted_unique(chunk.to_vec());
            c.insert_batch_sorted(&b);
            model.extend(b);
        }
        prop_assert!(c.iter().eq(model.iter().copied()));
        c.check_invariants();
    }

    /// Custom density bounds within the legal envelope keep behaviour.
    #[test]
    fn custom_density_bounds_correct(
        upper_leaf in 0.80f64..0.95,
        lower_root in 0.20f64..0.35,
        keys in vec(any::<u64>(), 1..600),
    ) {
        let bounds = DensityBounds {
            upper_leaf,
            upper_root: 0.7,
            lower_leaf: 0.05,
            lower_root,
            rebuild_target: 0.5,
        };
        let cfg = PmaConfig { bounds, ..Default::default() };
        let mut p = Pma::<u64>::with_config(cfg);
        let b = sorted_unique(keys);
        p.insert_batch_sorted(&b);
        prop_assert!(p.iter().eq(b.iter().copied()));
        p.check_invariants();
    }
}

#[test]
fn point_ops_at_extremes() {
    let mut c = Cpma::new();
    assert!(c.insert(u64::MAX));
    assert!(c.insert(0));
    assert!(c.insert(u64::MAX - 1));
    assert!(!c.insert(u64::MAX));
    assert_eq!(c.iter().collect::<Vec<_>>(), vec![0, u64::MAX - 1, u64::MAX]);
    assert!(c.remove(0));
    assert_eq!(c.min(), Some(u64::MAX - 1));
    c.check_invariants();
}

#[test]
fn batch_larger_than_structure() {
    // k >> n exercises the full-rebuild regime from a tiny base.
    let mut c = Cpma::from_sorted(&[5, 10]);
    let batch: Vec<u64> = (0..50_000u64).map(|i| i * 2 + 1).collect();
    // 5 is already present, so one batch key is a duplicate.
    assert_eq!(c.insert_batch_sorted(&batch), 49_999);
    assert_eq!(c.len(), 50_001);
    c.check_invariants();
}

#[test]
fn repeated_identical_batches_are_idempotent() {
    let batch: Vec<u64> = (0..10_000u64).map(|i| i * 7).collect();
    let mut p = Pma::<u64>::new();
    assert_eq!(p.insert_batch_sorted(&batch), 10_000);
    for _ in 0..5 {
        assert_eq!(p.insert_batch_sorted(&batch), 0);
        p.check_invariants();
    }
    assert_eq!(p.len(), 10_000);
}

#[test]
fn alternating_grow_shrink_cycles() {
    // Pump the structure up and down across several resize boundaries.
    let mut c = Cpma::new();
    for round in 0..6u64 {
        let keys: Vec<u64> = (0..20_000u64).map(|i| i * 31 + round).collect();
        let b: Vec<u64> = {
            let mut v = keys.clone();
            v.sort_unstable();
            v.dedup();
            v
        };
        c.insert_batch_sorted(&b);
        c.check_invariants();
        c.remove_batch_sorted(&b);
        c.check_invariants();
    }
    assert!(c.is_empty());
}
