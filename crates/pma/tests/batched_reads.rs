//! Property test: the batched read API must agree with the per-key API
//! and with a `BTreeSet` oracle — for every head layout, both codecs,
//! and after every batch-update regime (point fallback, pipeline, full
//! rebuild), including duplicate probes, probes below the minimum, and
//! `u64::MAX`.

use cpma_api::testkit::{sorted_unique, Rng};
use cpma_api::OrderedSet;
use std::collections::BTreeSet;

const KEY_BITS: u32 = 40;

/// Probe with duplicates, 0 (below any stored minimum), and `u64::MAX`,
/// and check the three-way agreement batched ≡ per-key ≡ oracle.
fn check_reads<S: OrderedSet<u64>>(s: &S, oracle: &BTreeSet<u64>, rng: &mut Rng, tag: &str) {
    let mut probes: Vec<u64> = (0..120).map(|_| rng.bits(KEY_BITS)).collect();
    // Stored keys and their neighbours, to hit both sides of membership.
    for &k in oracle.iter().take(20) {
        probes.push(k);
        probes.push(k.wrapping_add(1));
    }
    probes.push(0);
    probes.push(u64::MAX);
    probes.push(probes[7]); // duplicate of an earlier probe
    probes.push(probes[7]);

    let got_contains = s.contains_batch(&probes);
    let got_succ = s.successor_batch(&probes);
    assert_eq!(
        got_contains.len(),
        probes.len(),
        "{tag}: contains_batch len"
    );
    assert_eq!(got_succ.len(), probes.len(), "{tag}: successor_batch len");
    for (i, &p) in probes.iter().enumerate() {
        let want_c = oracle.contains(&p);
        let want_s = oracle.range(p..).next().copied();
        assert_eq!(s.contains(p), want_c, "{tag}: contains({p})");
        assert_eq!(got_contains[i], want_c, "{tag}: contains_batch[{i}]({p})");
        assert_eq!(s.successor(p), want_s, "{tag}: successor({p})");
        assert_eq!(got_succ[i], want_s, "{tag}: successor_batch[{i}]({p})");
    }
    assert_eq!(
        s.contains_batch(&[]),
        Vec::<bool>::new(),
        "{tag}: empty batch"
    );
    assert_eq!(
        s.successor_batch(&[]),
        Vec::<Option<u64>>::new(),
        "{tag}: empty batch"
    );
}

macro_rules! layout_case {
    ($name:ident, $ty:ty) => {
        #[test]
        fn $name() {
            let mut rng = Rng::new(0xC0FFEE ^ stringify!($name).len() as u64);
            let base = sorted_unique(rng.keys(3000, KEY_BITS));
            let mut s = <$ty>::from_sorted(&base);
            let mut oracle: BTreeSet<u64> = base.iter().copied().collect();
            check_reads(&s, &oracle, &mut rng, concat!(stringify!($name), "/seed"));

            // One batch per update regime: below the point-update cutoff,
            // through the merge pipeline, and big enough (≥ len/10) to take
            // the full-rebuild path. Reads must agree after each.
            for (regime, batch_len) in [("point", 40usize), ("pipeline", 1500), ("rebuild", 6000)] {
                let mut ins: Vec<u64> = (0..batch_len).map(|_| rng.bits(KEY_BITS)).collect();
                s.insert_batch(&mut ins, false);
                oracle.extend(ins.iter().copied());

                // Remove a mix of present and absent keys, same regime.
                let mut rem: Vec<u64> = oracle
                    .iter()
                    .copied()
                    .step_by(7)
                    .take(batch_len / 2)
                    .collect();
                rem.extend((0..batch_len / 2).map(|_| rng.bits(KEY_BITS)));
                s.remove_batch(&mut rem, false);
                for k in &rem {
                    oracle.remove(k);
                }

                assert_eq!(s.len(), oracle.len(), "{regime}: len after batches");
                check_reads(&s, &oracle, &mut rng, concat!(stringify!($name)));
                let _ = regime;
            }
        }
    };
}

layout_case!(pma_inplace, cpma_pma::Pma<u64>);
layout_case!(pma_linear, cpma_pma::PmaLinear<u64>);
layout_case!(pma_eytzinger, cpma_pma::PmaEytzinger<u64>);
layout_case!(pma_bnary, cpma_pma::PmaBNary<u64>);
layout_case!(cpma_inplace, cpma_pma::Cpma);
layout_case!(cpma_linear, cpma_pma::CpmaLinear);
layout_case!(cpma_eytzinger, cpma_pma::CpmaEytzinger);
layout_case!(cpma_bnary, cpma_pma::CpmaBNary);
