//! Structure-level tests of the hybrid (delta / bitmap) leaf codec.
//!
//! The white-box leaf mechanics live in `src/compressed.rs`; this file
//! checks the codec *through the whole engine*: every `ForceCodec` policy
//! must agree with a `BTreeSet` oracle on a clustered mixed workload, the
//! hybrid must actually populate both codecs (and win space on dense
//! inputs), and snapshots with mixed-codec leaves must round-trip
//! byte-identically.

use cpma_api::{BatchOp, OrderedSet, RangeSet};
use cpma_pma::{Cpma, ForceCodec, PmaConfig};
use cpma_workloads::{clustered_keys, uniform_keys, ClusteredKeys};
use std::collections::BTreeSet;

fn cpma_with(force: ForceCodec) -> Cpma {
    let cfg = PmaConfig::builder().force_codec(force).build().unwrap();
    Cpma::with_config(cfg)
}

/// Drive a clustered mixed workload through `set` and an oracle, checking
/// every observable after each round.
fn run_against_oracle(mut set: Cpma, seed: u64) -> Cpma {
    let mut oracle: BTreeSet<u64> = BTreeSet::new();
    // Runs of ~1000 consecutive keys: long enough that whole leaves sit
    // inside a run (the bitmap's winning regime — a 256-byte leaf holds
    // ~240 delta-coded elements but ~1980 bitmap positions), with 4M-wide
    // gaps keeping the boundary leaves on the delta side.
    let keys = clustered_keys(30_000, 1000, 1 << 22, seed);
    // Plus a sparse uniform salt: guarantees genuinely sparse leaves, so
    // a hybrid structure holds *both* codecs at once.
    let salt = uniform_keys(5_000, 40, seed ^ 0x5A17);
    for (round, chunk) in keys.chunks(6_000).enumerate() {
        let mut batch = chunk.to_vec();
        batch.extend_from_slice(&salt[round * 1_000..(round + 1) * 1_000]);
        set.insert_batch(&mut batch, false);
        oracle.extend(batch.iter().copied());
        // Remove every third key of the previous chunk: thins dense runs
        // so leaves cross the codec threshold in both directions.
        if round > 0 {
            let prev = &keys[(round - 1) * 6_000..round * 6_000];
            let mut del: Vec<u64> = prev.iter().copied().step_by(3).collect();
            set.remove_batch(&mut del, false);
            for k in prev.iter().step_by(3) {
                oracle.remove(k);
            }
        }
        // Mixed ops across the whole touched key space.
        let mut ops: Vec<BatchOp<u64>> = chunk
            .iter()
            .map(|&k| {
                if k % 5 == 0 {
                    BatchOp::Remove(k)
                } else {
                    BatchOp::Insert(k ^ 1)
                }
            })
            .collect();
        set.apply_batch(&mut ops, false);
        for op in &ops {
            match *op {
                BatchOp::Insert(k) => {
                    oracle.insert(k);
                }
                BatchOp::Remove(k) => {
                    oracle.remove(&k);
                }
            }
        }
        set.check_invariants();
        assert_eq!(set.len(), oracle.len(), "round {round}: len");
        let lo = keys[round * 600] & !0xFF;
        let hi = lo + (1 << 22);
        let want: u64 = oracle.range(lo..hi).fold(0u64, |a, &e| a.wrapping_add(e));
        assert_eq!(set.range_sum(lo..hi), want, "round {round}: range_sum");
        for &probe in chunk.iter().step_by(97) {
            assert_eq!(
                set.contains(probe),
                oracle.contains(&probe),
                "round {round}: contains({probe})"
            );
            assert_eq!(
                set.successor(probe),
                oracle.range(probe..).next().copied(),
                "round {round}: successor({probe})"
            );
        }
    }
    let got: Vec<u64> = set.iter().collect();
    let want: Vec<u64> = oracle.iter().copied().collect();
    assert_eq!(got, want, "final contents");
    set
}

#[test]
fn auto_policy_matches_oracle_on_clustered_keys() {
    let set = run_against_oracle(cpma_with(ForceCodec::Auto), 0xA001);
    // The clustered input must actually exercise both encodings.
    let (delta, bitmap) = set.storage().codec_census();
    assert!(bitmap > 0, "no bitmap leaves on a clustered workload");
    assert!(delta > 0, "no delta leaves despite inter-run gaps");
}

#[test]
fn forced_delta_matches_oracle_on_clustered_keys() {
    let set = run_against_oracle(cpma_with(ForceCodec::Delta), 0xA002);
    let (_, bitmap) = set.storage().codec_census();
    assert_eq!(bitmap, 0, "ForceCodec::Delta produced bitmap leaves");
}

#[test]
fn forced_bitmap_matches_oracle_on_clustered_keys() {
    let set = run_against_oracle(cpma_with(ForceCodec::Bitmap), 0xA003);
    let (_, bitmap) = set.storage().codec_census();
    assert!(bitmap > 0, "ForceCodec::Bitmap produced no bitmap leaves");
}

#[test]
fn auto_policy_matches_oracle_on_uniform_keys() {
    // Sparse 40-bit uniform keys: the hybrid must not regress the paper's
    // main workload — virtually every leaf stays delta-encoded.
    let mut set = cpma_with(ForceCodec::Auto);
    let mut oracle: BTreeSet<u64> = BTreeSet::new();
    let keys = uniform_keys(40_000, 40, 0xA004);
    for chunk in keys.chunks(8_000) {
        let mut batch = chunk.to_vec();
        set.insert_batch(&mut batch, false);
        oracle.extend(chunk.iter().copied());
    }
    set.check_invariants();
    assert_eq!(
        set.iter().collect::<Vec<_>>(),
        oracle.iter().copied().collect::<Vec<_>>()
    );
    let (delta, bitmap) = set.storage().codec_census();
    assert!(
        bitmap * 100 <= delta,
        "sparse uniform keys flipped {bitmap} of {} leaves to bitmap",
        delta + bitmap
    );
}

#[test]
fn hybrid_beats_pure_delta_on_dense_runs() {
    // The space claim behind the tentpole: on run-structured keys the
    // hybrid stores strictly fewer bytes per element than forced delta —
    // and the denser the runs, the wider the gap.
    let keys = ClusteredKeys::new(1024, 1 << 24, 0xA005).sorted(200_000);
    let build = |force: ForceCodec| {
        let mut s = cpma_with(force);
        let mut batch = keys.clone();
        s.insert_batch(&mut batch, true);
        s.size_bytes() as f64 / s.len() as f64
    };
    let hybrid = build(ForceCodec::Auto);
    let delta = build(ForceCodec::Delta);
    assert!(
        hybrid < delta * 0.75,
        "hybrid {hybrid:.3} B/elem not clearly under delta {delta:.3} B/elem"
    );
}

#[test]
fn mixed_codec_snapshots_roundtrip_byte_identically() {
    let set = run_against_oracle(cpma_with(ForceCodec::Auto), 0xA006);
    let (delta, bitmap) = set.storage().codec_census();
    assert!(delta > 0 && bitmap > 0, "workload failed to mix codecs");
    let bytes = set.to_snapshot_bytes();
    let back = Cpma::from_snapshot_bytes(&bytes).unwrap();
    back.check_invariants();
    assert_eq!(set, back);
    // Per-leaf oracle: the reloaded storage answers identically leaf by
    // leaf (census included), and re-saving is the byte identity.
    assert_eq!(back.storage().codec_census(), (delta, bitmap));
    assert_eq!(back.to_snapshot_bytes(), bytes);
}

#[test]
fn forced_codec_configs_survive_snapshots() {
    for force in [ForceCodec::Delta, ForceCodec::Bitmap, ForceCodec::Auto] {
        let cfg = PmaConfig::builder()
            .force_codec(force)
            .bitmap_leaf_threshold(0.8)
            .build()
            .unwrap();
        let mut set = Cpma::with_config(cfg);
        let mut batch = clustered_keys(10_000, 64, 1 << 20, 0xA007);
        set.insert_batch(&mut batch, false);
        let back = Cpma::from_snapshot_bytes(&set.to_snapshot_bytes()).unwrap();
        assert_eq!(back.config(), &cfg, "{force:?}: config lost");
        assert_eq!(set, back, "{force:?}: contents lost");
        // The policy must keep steering post-load rewrites: grow the
        // reloaded set and re-check the census invariant for Delta.
        if force == ForceCodec::Delta {
            let mut back = back;
            let mut more = clustered_keys(10_000, 64, 1 << 20, 0xA008);
            back.insert_batch(&mut more, false);
            let (_, bitmap) = back.storage().codec_census();
            assert_eq!(bitmap, 0, "Delta policy not re-applied after load");
        }
    }
}

#[test]
fn invalid_codec_knobs_are_rejected() {
    assert!(PmaConfig::builder()
        .bitmap_leaf_threshold(0.0)
        .build()
        .is_err());
    assert!(PmaConfig::builder()
        .bitmap_leaf_threshold(-1.0)
        .build()
        .is_err());
    assert!(PmaConfig::builder()
        .bitmap_leaf_threshold(f64::NAN)
        .build()
        .is_err());
    assert!(PmaConfig::builder()
        .bitmap_leaf_threshold(f64::INFINITY)
        .build()
        .is_err());
    assert!(PmaConfig::builder()
        .bitmap_leaf_threshold(0.5)
        .build()
        .is_ok());
}
