//! Height-interpolated density bounds for the implicit PMA tree.
//!
//! "Each node of the PMA tree has an upper density bound that determines the
//! allowed number of occupied cells in that node. ... The density bound of a
//! node depends on its height." (§3). Bounds are linear in the node's depth:
//! leaves tolerate the highest density (they absorb inserts), the root the
//! lowest (root violation triggers a resize). Lower bounds are symmetric and
//! drive shrinking on deletes.
//!
//! In the CPMA the same machinery runs on **byte** densities: "The density
//! in a CPMA node is the ratio of the number of filled bytes to the total
//! number of bytes available in the node" (§5). This module is agnostic to
//! the unit.

/// Density thresholds. All values are fractions of a node's unit capacity.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DensityBounds {
    /// Maximum density allowed in a leaf (depth = max).
    pub upper_leaf: f64,
    /// Maximum density allowed at the root; exceeding it grows the array.
    pub upper_root: f64,
    /// Minimum density required in a leaf (enforced on the delete path).
    pub lower_leaf: f64,
    /// Minimum density required at the root; undershooting it shrinks.
    pub lower_root: f64,
    /// Density targeted when (re)building, growing, or shrinking. Must sit
    /// strictly inside the root band so resizes do not immediately re-trigger.
    pub rebuild_target: f64,
}

impl Default for DensityBounds {
    fn default() -> Self {
        // Classic PMA parameters (Bender et al. / Wheatman-Xu style):
        // leaves run hot, the root keeps global slack.
        Self {
            upper_leaf: 0.9,
            upper_root: 0.7,
            lower_leaf: 0.08,
            lower_root: 0.3,
            rebuild_target: 0.55,
        }
    }
}

impl DensityBounds {
    /// Check the parameter relationships the maintenance algorithms rely
    /// on. Called once at construction (via [`crate::PmaConfig::check`]).
    pub fn check(&self) -> Result<(), cpma_api::ConfigError> {
        let err = |field, reason: &str| Err(cpma_api::ConfigError::new(field, reason));
        // NaN compares false against everything, so the relational checks
        // below would silently wave it through; reject non-finite first.
        for (field, value) in [
            ("bounds.upper_leaf", self.upper_leaf),
            ("bounds.upper_root", self.upper_root),
            ("bounds.lower_leaf", self.lower_leaf),
            ("bounds.lower_root", self.lower_root),
            ("bounds.rebuild_target", self.rebuild_target),
        ] {
            if !value.is_finite() {
                return err(field, "must be finite");
            }
        }
        if !(self.upper_leaf > 0.0 && self.upper_leaf <= 1.0) {
            return err("bounds.upper_leaf", "must be in (0, 1]");
        }
        if self.upper_root >= self.upper_leaf {
            return err(
                "bounds.upper_root",
                "root upper bound must be tighter than leaf upper bound",
            );
        }
        if self.lower_leaf < 0.0 {
            return err("bounds.lower_leaf", "must be non-negative");
        }
        if self.lower_root <= self.lower_leaf {
            return err(
                "bounds.lower_root",
                "root lower bound must be tighter than leaf lower bound",
            );
        }
        if !(self.lower_root < self.rebuild_target && self.rebuild_target < self.upper_root) {
            return err(
                "bounds.rebuild_target",
                "rebuild target must sit strictly inside the root density band",
            );
        }
        Ok(())
    }

    /// Upper density bound for a node at `depth`, where the root has depth 0
    /// and leaves have depth `max_depth`. Interpolates linearly from
    /// `upper_root` (depth 0) to `upper_leaf` (max depth).
    #[inline]
    pub fn upper(&self, depth: u32, max_depth: u32) -> f64 {
        if max_depth == 0 {
            return self.upper_root;
        }
        let t = depth as f64 / max_depth as f64;
        self.upper_root + (self.upper_leaf - self.upper_root) * t
    }

    /// Lower density bound for a node at `depth` (root = 0). Interpolates
    /// from `lower_root` down to `lower_leaf` at the leaves.
    #[inline]
    pub fn lower(&self, depth: u32, max_depth: u32) -> f64 {
        if max_depth == 0 {
            return self.lower_root;
        }
        let t = depth as f64 / max_depth as f64;
        self.lower_root + (self.lower_leaf - self.lower_root) * t
    }

    /// Maximum units a node of `capacity` units at `depth` may hold.
    /// (The 1e-9 nudge keeps exact products like 0.9·100 from rounding the
    /// wrong way.)
    #[inline]
    pub fn max_units(&self, capacity: usize, depth: u32, max_depth: u32) -> usize {
        (self.upper(depth, max_depth) * capacity as f64 + 1e-9).floor() as usize
    }

    /// Minimum units a node of `capacity` units at `depth` should hold.
    #[inline]
    pub fn min_units(&self, capacity: usize, depth: u32, max_depth: u32) -> usize {
        (self.lower(depth, max_depth) * capacity as f64 - 1e-9).ceil() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        DensityBounds::default().check().unwrap();
    }

    #[test]
    fn upper_monotone_in_depth() {
        let b = DensityBounds::default();
        let h = 10;
        for d in 0..h {
            assert!(
                b.upper(d, h) <= b.upper(d + 1, h) + 1e-12,
                "upper bound must loosen toward the leaves"
            );
            assert!(b.lower(d, h) >= b.lower(d + 1, h) - 1e-12);
        }
        assert!((b.upper(0, h) - b.upper_root).abs() < 1e-12);
        assert!((b.upper(h, h) - b.upper_leaf).abs() < 1e-12);
        assert!((b.lower(0, h) - b.lower_root).abs() < 1e-12);
        assert!((b.lower(h, h) - b.lower_leaf).abs() < 1e-12);
    }

    #[test]
    fn bands_never_cross() {
        let b = DensityBounds::default();
        for h in [0u32, 1, 5, 30] {
            for d in 0..=h {
                assert!(b.lower(d, h) < b.upper(d, h));
            }
        }
    }

    #[test]
    fn unit_thresholds() {
        let b = DensityBounds::default();
        // Root of a 1000-unit tree of depth 4.
        assert_eq!(b.max_units(1000, 0, 4), 700);
        assert_eq!(b.min_units(1000, 0, 4), 300);
        // Leaf bounds.
        assert_eq!(b.max_units(100, 4, 4), 90);
        assert_eq!(b.min_units(100, 4, 4), 8);
    }

    #[test]
    fn degenerate_single_node_tree() {
        let b = DensityBounds::default();
        // A one-leaf PMA: the leaf *is* the root; use the root band so the
        // structure grows before the single leaf is full.
        assert!((b.upper(0, 0) - b.upper_root).abs() < 1e-12);
        assert!((b.lower(0, 0) - b.lower_root).abs() < 1e-12);
    }

    #[test]
    fn bad_target_rejected() {
        let err = DensityBounds {
            rebuild_target: 0.9,
            ..Default::default()
        }
        .check()
        .unwrap_err();
        assert_eq!(err.field, "bounds.rebuild_target");
    }

    #[test]
    fn non_finite_bounds_rejected() {
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let err = DensityBounds {
                lower_leaf: bad,
                ..Default::default()
            }
            .check()
            .unwrap_err();
            assert_eq!(err.field, "bounds.lower_leaf");
            let err = DensityBounds {
                upper_root: bad,
                ..Default::default()
            }
            .check()
            .unwrap_err();
            assert_eq!(err.field, "bounds.upper_root");
        }
    }
}
