//! [`cpma_api`] trait implementations for the PMA/CPMA.
//!
//! One generic impl block per trait covers both storages (the paper's
//! observation that the CPMA is the PMA with a different leaf encoding
//! holds at the API layer too); `OrderedSet::NAME` comes from
//! [`LeafStorage::NAME`].

use crate::core::PmaCore;
use crate::{LeafStorage, PmaKey};
use cpma_api::{BatchOp, BatchOutcome, BatchSet, OrderedSet, ParallelChunks, RangeSet};
use rayon::prelude::*;

impl<K: PmaKey, L: LeafStorage<K>, const FORM: u8> OrderedSet<K> for PmaCore<K, L, FORM> {
    const NAME: &'static str = L::NAME;

    fn contains(&self, key: K) -> bool {
        self.has(key)
    }

    fn len(&self) -> usize {
        PmaCore::len(self)
    }

    fn min(&self) -> Option<K> {
        PmaCore::min(self)
    }

    fn max(&self) -> Option<K> {
        PmaCore::max(self)
    }

    fn successor(&self, key: K) -> Option<K> {
        PmaCore::successor(self, key)
    }

    /// Sorted-probe batched lookup with shared leaf decodes (the inherent
    /// [`PmaCore::contains_batch`]) instead of the default per-key loop.
    fn contains_batch(&self, keys: &[K]) -> Vec<bool> {
        PmaCore::contains_batch(self, keys)
    }

    /// Sorted-probe batched successor with shared leaf decodes (the
    /// inherent [`PmaCore::successor_batch`]).
    fn successor_batch(&self, keys: &[K]) -> Vec<Option<K>> {
        PmaCore::successor_batch(self, keys)
    }

    fn size_bytes(&self) -> usize {
        PmaCore::size_bytes(self)
    }
}

impl<K: PmaKey, L: LeafStorage<K>, const FORM: u8> BatchSet<K> for PmaCore<K, L, FORM> {
    fn new_set() -> Self {
        Self::new()
    }

    fn build_sorted(elems: &[K]) -> Self {
        Self::from_sorted(elems)
    }

    fn insert_batch_sorted(&mut self, batch: &[K]) -> usize {
        PmaCore::insert_batch_sorted(self, batch)
    }

    fn remove_batch_sorted(&mut self, batch: &[K]) -> usize {
        PmaCore::remove_batch_sorted(self, batch)
    }

    /// The PMA/CPMA native mixed pipeline: one route→merge→count→
    /// redistribute pass instead of the default remove+insert split.
    fn apply_batch_sorted(&mut self, ops: &[BatchOp<K>]) -> BatchOutcome {
        PmaCore::apply_batch_sorted(self, ops)
    }
}

impl<K: PmaKey, L: LeafStorage<K>, const FORM: u8> RangeSet<K> for PmaCore<K, L, FORM> {
    fn scan_from(&self, start: K, f: &mut dyn FnMut(K) -> bool) {
        self.for_each_from(start, f)
    }

    fn range_sum<R: std::ops::RangeBounds<K>>(&self, range: R) -> u64 {
        cpma_api::range_sum_via_exclusive(
            &range,
            || self.has(K::MAX),
            |lo, hi| PmaCore::range_sum_excl(self, lo, hi),
        )
    }
}

impl<K: PmaKey, L: LeafStorage<K>, const FORM: u8> ParallelChunks<K> for PmaCore<K, L, FORM> {
    /// One chunk per non-empty leaf, decoded leaf-parallel.
    fn par_chunks(&self, f: &(dyn Fn(&[K]) + Sync)) {
        let storage = self.storage();
        (0..storage.num_leaves()).into_par_iter().for_each(|leaf| {
            if storage.count(leaf) > 0 {
                let mut buf = Vec::with_capacity(storage.count(leaf));
                storage.collect_leaf(leaf, &mut buf);
                f(&buf);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use crate::{Cpma, Pma};
    use cpma_api::conformance::assert_ordered_set_contract;
    use cpma_api::{BatchSet, OrderedSet, ParallelChunks, RangeSet};

    #[test]
    fn pma_conforms() {
        assert_ordered_set_contract::<Pma<u64>>(0x70A1);
    }

    #[test]
    fn cpma_conforms() {
        assert_ordered_set_contract::<Cpma>(0xC70A);
    }

    #[test]
    fn names_match_the_paper() {
        assert_eq!(<Pma<u64> as OrderedSet<u64>>::NAME, "PMA");
        assert_eq!(<Cpma as OrderedSet<u64>>::NAME, "CPMA");
    }

    #[test]
    fn range_sum_includes_max_key() {
        let c: Cpma = BatchSet::build_sorted(&[1, 2, u64::MAX]);
        assert_eq!(c.range_sum(..), 3u64.wrapping_add(u64::MAX));
        assert_eq!(c.range_sum(3..=u64::MAX), u64::MAX);
        assert_eq!(c.range_sum(3..u64::MAX), 0);
    }

    #[test]
    fn par_chunks_cover_everything_in_order() {
        use std::sync::Mutex;
        let elems: Vec<u64> = (0..10_000).map(|i| i * 3).collect();
        let c: Cpma = BatchSet::build_sorted(&elems);
        let chunks: Mutex<Vec<Vec<u64>>> = Mutex::new(Vec::new());
        c.par_chunks(&|chunk| chunks.lock().unwrap().push(chunk.to_vec()));
        let mut chunks = chunks.into_inner().unwrap();
        chunks.sort_by_key(|c| c[0]);
        let flat: Vec<u64> = chunks.into_iter().flatten().collect();
        assert_eq!(flat, elems);
    }

    #[test]
    fn std_collection_idioms() {
        let p: Pma<u64> = [5u64, 1, 3, 1].into_iter().collect();
        assert_eq!(p.iter().collect::<Vec<_>>(), vec![1, 3, 5]);
        let mut c: Cpma = (0..100u64).collect();
        c.extend(vec![500u64, 50, 200]);
        assert_eq!(c.len(), 102);
        assert!(c.has(500));
        let drained: Vec<u64> = c.into_iter().collect();
        assert_eq!(drained.len(), 102);
        assert!(drained.windows(2).all(|w| w[0] < w[1]));
    }
}
