//! Uncompressed leaf storage: packed-left leaves of raw keys.
//!
//! The classic PMA stores elements in cells with embedded gaps; following
//! the paper (and \[81]) we pack each leaf's elements to the left and keep a
//! per-leaf count, which "does not affect the PMA's asymptotic bounds
//! because the bounds only depend on the density of the elements in the PMA
//! leaves" (§5). A separate head array accelerates search, as in the
//! search-optimized PMA the paper builds on \[78]. Units are **cells**.

use crate::leaf::{
    apply_ops_into, set_difference_into, set_union_into, MergeOutcome, OpsOutcome, SharedLeaves,
};
use crate::{stats, LeafStorage, PmaKey};
use cpma_api::{BatchOp, PersistError};
use std::marker::PhantomData;

/// Packed-left uncompressed leaves. See module docs.
#[derive(Clone)]
pub struct UncompressedLeaves<K: PmaKey> {
    /// `num_leaves * leaf_units` cells; leaf `i` owns
    /// `[i * leaf_units, (i+1) * leaf_units)`, valid prefix = `counts[i]`.
    cells: Vec<K>,
    /// Elements per leaf.
    counts: Vec<u32>,
    /// Leaf heads (inherited values for empty leaves); non-decreasing.
    heads: Vec<K>,
    /// Out-of-place buffers for overflowed leaves (batch merge only).
    overflow: Vec<Option<Box<[K]>>>,
    leaf_units: usize,
}

impl<K: PmaKey> UncompressedLeaves<K> {
    #[inline]
    fn leaf_slice(&self, leaf: usize) -> &[K] {
        debug_assert!(self.overflow[leaf].is_none(), "query on overflowed leaf");
        let start = leaf * self.leaf_units;
        &self.cells[start..start + self.counts[leaf] as usize]
    }
}

impl<K: PmaKey> LeafStorage<K> for UncompressedLeaves<K> {
    type Shared<'a>
        = UncompressedShared<'a, K>
    where
        Self: 'a;

    const NAME: &'static str = "PMA";

    // 16 cells minimum so leaves stay Θ(log n)-sized rather than degenerate.
    const MIN_LEAF_UNITS: usize = 16;
    const LEAF_ALIGN: usize = 8;
    const HEAD_UNITS: usize = 0;
    const LEAF_SCALE: usize = 2;

    const CODEC_ID: u32 = 1;

    // Snapshot payload layout (all little-endian):
    //   counts  num_leaves × u32
    //   heads   num_leaves × K::BYTES
    //   cells   num_leaves × leaf_units × K::BYTES   (full array, packed
    //           prefixes valid; bytes past each count are don't-care)
    fn payload_len(num_leaves: usize, leaf_units: usize) -> Option<usize> {
        let per_leaf = K::BYTES
            .checked_mul(leaf_units)?
            .checked_add(4 + K::BYTES)?;
        num_leaves.checked_mul(per_leaf)
    }

    fn write_payload(&self, out: &mut Vec<u8>) {
        debug_assert!(self.overflow.iter().all(|o| o.is_none()));
        for &c in &self.counts {
            out.extend_from_slice(&c.to_le_bytes());
        }
        for &h in &self.heads {
            out.extend_from_slice(&h.to_u64().to_le_bytes()[..K::BYTES]);
        }
        for &cell in &self.cells {
            out.extend_from_slice(&cell.to_u64().to_le_bytes()[..K::BYTES]);
        }
    }

    fn read_payload(
        num_leaves: usize,
        leaf_units: usize,
        payload: &[u8],
    ) -> Result<Self, PersistError> {
        let expected = Self::payload_len(num_leaves, leaf_units)
            .filter(|&n| n == payload.len())
            .ok_or(PersistError::Truncated("pma payload"))?;
        debug_assert_eq!(expected, payload.len());

        let read_key = |bytes: &[u8]| {
            let mut widened = [0u8; 8];
            widened[..K::BYTES].copy_from_slice(bytes);
            K::from_u64(u64::from_le_bytes(widened))
        };
        let counts: Vec<u32> = payload[..num_leaves * 4]
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
            .collect();
        let heads_at = num_leaves * 4;
        let cells_at = heads_at + num_leaves * K::BYTES;
        let heads: Vec<K> = payload[heads_at..cells_at]
            .chunks_exact(K::BYTES)
            .map(read_key)
            .collect();
        let cells: Vec<K> = payload[cells_at..]
            .chunks_exact(K::BYTES)
            .map(read_key)
            .collect();

        // Structural validation: every later read assumes these hold.
        let mut prev_max: Option<K> = None;
        for leaf in 0..num_leaves {
            let count = counts[leaf] as usize;
            if count > leaf_units {
                return Err(PersistError::Corrupt(format!(
                    "leaf {leaf} claims {count} elements in {leaf_units} cells"
                )));
            }
            if leaf > 0 && heads[leaf] < heads[leaf - 1] {
                return Err(PersistError::Corrupt(format!(
                    "head array decreases at leaf {leaf}"
                )));
            }
            if count == 0 {
                continue;
            }
            let run = &cells[leaf * leaf_units..leaf * leaf_units + count];
            if run.windows(2).any(|w| w[0] >= w[1]) {
                return Err(PersistError::Corrupt(format!(
                    "leaf {leaf} is not strictly ascending"
                )));
            }
            if heads[leaf] != run[0] {
                return Err(PersistError::Corrupt(format!(
                    "leaf {leaf} head disagrees with its first element"
                )));
            }
            if prev_max.is_some_and(|p| p >= run[0]) {
                return Err(PersistError::Corrupt(format!(
                    "leaf {leaf} overlaps its predecessor"
                )));
            }
            prev_max = Some(run[count - 1]);
        }

        Ok(Self {
            cells,
            counts,
            heads,
            overflow: (0..num_leaves).map(|_| None).collect(),
            leaf_units,
        })
    }

    fn with_geometry(num_leaves: usize, leaf_units: usize) -> Self {
        assert!(num_leaves >= 1);
        assert!(leaf_units >= Self::MIN_LEAF_UNITS);
        Self {
            cells: vec![K::MIN; num_leaves * leaf_units],
            counts: vec![0; num_leaves],
            heads: vec![K::MIN; num_leaves],
            overflow: (0..num_leaves).map(|_| None).collect(),
            leaf_units,
        }
    }

    #[inline]
    fn num_leaves(&self) -> usize {
        self.counts.len()
    }

    #[inline]
    fn leaf_units(&self) -> usize {
        self.leaf_units
    }

    #[inline]
    fn units_used(&self, leaf: usize) -> usize {
        self.counts[leaf] as usize
    }

    #[inline]
    fn count(&self, leaf: usize) -> usize {
        self.counts[leaf] as usize
    }

    #[inline]
    fn head(&self, leaf: usize) -> K {
        self.heads[leaf]
    }

    #[inline]
    fn is_overflowed(&self, leaf: usize) -> bool {
        self.overflow[leaf].is_some()
    }

    fn size_bytes(&self) -> usize {
        self.cells.len() * K::BYTES
            + self.counts.len() * 4
            + self.heads.len() * K::BYTES
            + self.overflow.len() * std::mem::size_of::<Option<Box<[K]>>>()
    }

    #[inline]
    fn prefetch_leaf(&self, leaf: usize) {
        // The in-leaf binary search touches the middle of the run first,
        // so pull the leaf's first and middle lines.
        let at = leaf * self.leaf_units;
        crate::search::prefetch_read(&self.cells[at]);
        crate::search::prefetch_read(&self.cells[at + self.leaf_units / 2]);
    }

    fn leaf_successor(&self, leaf: usize, key: K) -> Option<K> {
        let slice = self.leaf_slice(leaf);
        stats::record_read(slice.len() * K::BYTES);
        let idx = crate::search::lower_bound(slice, key);
        slice.get(idx).copied()
    }

    fn leaf_contains(&self, leaf: usize, key: K) -> bool {
        let slice = self.leaf_slice(leaf);
        stats::record_read(slice.len() * K::BYTES);
        // Branch-free lower bound: one unpredictable exit branch instead
        // of log(len) data-dependent ones.
        let idx = crate::search::lower_bound(slice, key);
        slice.get(idx) == Some(&key)
    }

    fn leaf_max(&self, leaf: usize) -> Option<K> {
        // Overflow-aware: the redistribute phase reads neighbours that may
        // still be spilled.
        if let Some(buf) = self.overflow[leaf].as_deref() {
            return buf.last().copied();
        }
        self.leaf_slice(leaf).last().copied()
    }

    fn for_each_in_leaf(&self, leaf: usize, f: &mut dyn FnMut(K) -> bool) -> bool {
        let slice = self.leaf_slice(leaf);
        stats::record_read(slice.len() * K::BYTES);
        for &e in slice {
            if !f(e) {
                return false;
            }
        }
        true
    }

    fn collect_leaf(&self, leaf: usize, out: &mut Vec<K>) {
        if let Some(buf) = self.overflow[leaf].as_deref() {
            out.extend_from_slice(buf);
            return;
        }
        out.extend_from_slice(self.leaf_slice(leaf));
    }

    fn leaf_sum(&self, leaf: usize) -> u64 {
        let slice = self.leaf_slice(leaf);
        stats::record_read(slice.len() * K::BYTES);
        slice
            .iter()
            .fold(0u64, |acc, &e| acc.wrapping_add(e.to_u64()))
    }

    #[inline]
    fn units_for(elems: &[K]) -> usize {
        elems.len()
    }

    fn plan_split(elems: &[K], k: usize, leaf_units: usize) -> Vec<usize> {
        // Even count split: slice sizes differ by at most one.
        let n = elems.len();
        let offsets: Vec<usize> = (0..=k).map(|j| j * n / k).collect();
        debug_assert!(
            offsets.windows(2).all(|w| w[1] - w[0] <= leaf_units),
            "split does not fit: {n} elements into {k} leaves of {leaf_units}"
        );
        offsets
    }

    fn shared(&mut self) -> UncompressedShared<'_, K> {
        UncompressedShared {
            cells: self.cells.as_mut_ptr(),
            counts: self.counts.as_mut_ptr(),
            heads: self.heads.as_mut_ptr(),
            overflow: self.overflow.as_mut_ptr(),
            leaf_units: self.leaf_units,
            num_leaves: self.counts.len(),
            _marker: PhantomData,
        }
    }
}

/// Shared-disjoint accessor for [`UncompressedLeaves`]. All raw pointers are
/// derived from one `&mut` borrow; methods only touch the addressed leaf's
/// cells/count/head/overflow slot, so concurrent calls on distinct leaves
/// never alias.
pub struct UncompressedShared<'a, K: PmaKey> {
    cells: *mut K,
    counts: *mut u32,
    heads: *mut K,
    overflow: *mut Option<Box<[K]>>,
    leaf_units: usize,
    num_leaves: usize,
    _marker: PhantomData<&'a mut UncompressedLeaves<K>>,
}

impl<K: PmaKey> Clone for UncompressedShared<'_, K> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<K: PmaKey> Copy for UncompressedShared<'_, K> {}

// SAFETY: the accessor is only used under the SharedLeaves contract (no two
// concurrent calls target the same leaf), which makes all pointer accesses
// disjoint; the underlying buffers outlive 'a.
unsafe impl<K: PmaKey> Send for UncompressedShared<'_, K> {}
unsafe impl<K: PmaKey> Sync for UncompressedShared<'_, K> {}

impl<K: PmaKey> UncompressedShared<'_, K> {
    #[inline]
    #[allow(clippy::mut_from_ref)] // shared-disjoint contract: see trait docs
    unsafe fn leaf_cells(&self, leaf: usize, len: usize) -> &mut [K] {
        debug_assert!(leaf < self.num_leaves && len <= self.leaf_units);
        std::slice::from_raw_parts_mut(self.cells.add(leaf * self.leaf_units), len)
    }

    #[inline]
    unsafe fn current(&self, leaf: usize, scratch_src: &mut Vec<K>) -> usize {
        // Load the leaf's current elements (possibly from overflow) into
        // scratch_src; returns the old unit count.
        let cnt = *self.counts.add(leaf) as usize;
        scratch_src.clear();
        if let Some(buf) = (*self.overflow.add(leaf)).as_deref() {
            scratch_src.extend_from_slice(buf);
        } else {
            scratch_src.extend_from_slice(self.leaf_cells(leaf, cnt));
        }
        cnt
    }

    /// Store `elems` into the leaf, spilling to overflow when oversized.
    #[inline]
    unsafe fn store(&self, leaf: usize, elems: &[K], inherited_head: K) -> (usize, bool) {
        let n = elems.len();
        stats::record_write(n * K::BYTES);
        if n <= self.leaf_units {
            self.leaf_cells(leaf, n).copy_from_slice(elems);
            *self.overflow.add(leaf) = None;
            *self.counts.add(leaf) = n as u32;
            *self.heads.add(leaf) = if n > 0 { elems[0] } else { inherited_head };
            (n, false)
        } else {
            *self.overflow.add(leaf) = Some(elems.to_vec().into_boxed_slice());
            *self.counts.add(leaf) = n as u32;
            *self.heads.add(leaf) = elems[0];
            (n, true)
        }
    }
}

impl<K: PmaKey> SharedLeaves<K> for UncompressedShared<'_, K> {
    unsafe fn merge_into_leaf(&self, leaf: usize, add: &[K], scratch: &mut Vec<K>) -> MergeOutcome {
        let mut cur = Vec::new();
        let old_units = self.current(leaf, &mut cur);
        stats::record_read(old_units * K::BYTES);
        let added = set_union_into(&cur, add, scratch);
        let (new_units, overflowed) = self.store(leaf, scratch, *self.heads.add(leaf));
        MergeOutcome {
            delta_count: added,
            delta_units: new_units as isize - old_units as isize,
            overflowed,
        }
    }

    unsafe fn remove_from_leaf(
        &self,
        leaf: usize,
        rem: &[K],
        scratch: &mut Vec<K>,
    ) -> MergeOutcome {
        let mut cur = Vec::new();
        let old_units = self.current(leaf, &mut cur);
        stats::record_read(old_units * K::BYTES);
        let removed = set_difference_into(&cur, rem, scratch);
        if removed == 0 {
            return MergeOutcome::default();
        }
        // An emptied leaf keeps its old head as the inherited value.
        let (new_units, overflowed) = self.store(leaf, scratch, *self.heads.add(leaf));
        debug_assert!(!overflowed);
        MergeOutcome {
            delta_count: removed,
            delta_units: new_units as isize - old_units as isize,
            overflowed: false,
        }
    }

    unsafe fn merge_ops_into_leaf(
        &self,
        leaf: usize,
        ops: &[BatchOp<K>],
        scratch: &mut Vec<K>,
    ) -> OpsOutcome {
        let mut cur = Vec::new();
        let old_units = self.current(leaf, &mut cur);
        stats::record_read(old_units * K::BYTES);
        let (added, removed) = apply_ops_into(&cur, ops, scratch);
        if added == 0 && removed == 0 {
            return OpsOutcome::default();
        }
        let (new_units, overflowed) = self.store(leaf, scratch, *self.heads.add(leaf));
        OpsOutcome {
            added,
            removed,
            delta_units: new_units as isize - old_units as isize,
            overflowed,
        }
    }

    unsafe fn write_leaf(&self, leaf: usize, elems: &[K], inherited_head: K) -> usize {
        debug_assert!(elems.len() <= self.leaf_units, "write_leaf must fit");
        let (units, _) = self.store(leaf, elems, inherited_head);
        units
    }

    unsafe fn collect_leaf(&self, leaf: usize, out: &mut Vec<K>) {
        let cnt = *self.counts.add(leaf) as usize;
        stats::record_read(cnt * K::BYTES);
        if let Some(buf) = (*self.overflow.add(leaf)).as_deref() {
            out.extend_from_slice(buf);
        } else {
            out.extend_from_slice(self.leaf_cells(leaf, cnt));
        }
    }

    unsafe fn units_used(&self, leaf: usize) -> usize {
        *self.counts.add(leaf) as usize
    }

    unsafe fn count(&self, leaf: usize) -> usize {
        *self.counts.add(leaf) as usize
    }

    unsafe fn set_inherited_head(&self, leaf: usize, head: K) {
        debug_assert_eq!(*self.counts.add(leaf), 0);
        *self.heads.add(leaf) = head;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store3() -> UncompressedLeaves<u64> {
        UncompressedLeaves::with_geometry(3, 16)
    }

    #[test]
    fn fresh_storage_is_empty() {
        let s = store3();
        assert_eq!(s.num_leaves(), 3);
        assert_eq!(s.leaf_units(), 16);
        for l in 0..3 {
            assert_eq!(s.count(l), 0);
            assert_eq!(s.units_used(l), 0);
            assert!(!s.is_overflowed(l));
            assert_eq!(s.head(l), 0);
        }
    }

    #[test]
    fn merge_and_query() {
        let mut s = store3();
        let sh = s.shared();
        let mut scratch = Vec::new();
        let out = unsafe { sh.merge_into_leaf(1, &[10, 20, 30], &mut scratch) };
        assert_eq!(out.delta_count, 3);
        assert_eq!(out.delta_units, 3);
        assert!(!out.overflowed);
        assert_eq!(s.count(1), 3);
        assert_eq!(s.head(1), 10);
        assert!(s.leaf_contains(1, 20));
        assert!(!s.leaf_contains(1, 25));
        assert_eq!(s.leaf_successor(1, 15), Some(20));
        assert_eq!(s.leaf_successor(1, 31), None);
        assert_eq!(s.leaf_max(1), Some(30));
        assert_eq!(s.leaf_sum(1), 60);
    }

    #[test]
    fn merge_dedups_against_existing() {
        let mut s = store3();
        let mut scratch = Vec::new();
        unsafe {
            let sh = s.shared();
            sh.merge_into_leaf(0, &[5, 10], &mut scratch);
            let out = sh.merge_into_leaf(0, &[5, 7, 10, 12], &mut scratch);
            assert_eq!(out.delta_count, 2);
        }
        let mut v = Vec::new();
        s.collect_leaf(0, &mut v);
        assert_eq!(v, vec![5, 7, 10, 12]);
    }

    #[test]
    fn overflow_spills_and_reports() {
        let mut s = UncompressedLeaves::<u64>::with_geometry(2, 16);
        let mut scratch = Vec::new();
        let big: Vec<u64> = (0..20).collect();
        let out = unsafe { s.shared().merge_into_leaf(0, &big, &mut scratch) };
        assert!(out.overflowed);
        assert_eq!(out.delta_count, 20);
        assert!(s.is_overflowed(0));
        assert_eq!(s.units_used(0), 20); // exceeds capacity => density > 1
        let mut v = Vec::new();
        unsafe { s.shared().collect_leaf(0, &mut v) };
        assert_eq!(v, big);
        // write_leaf clears the overflow.
        unsafe { s.shared().write_leaf(0, &[1, 2, 3], 0) };
        assert!(!s.is_overflowed(0));
        assert_eq!(s.count(0), 3);
    }

    #[test]
    fn merge_ops_single_rewrite() {
        use cpma_api::BatchOp::{Insert, Remove};
        let mut s = store3();
        let mut scratch = Vec::new();
        unsafe {
            let sh = s.shared();
            sh.merge_into_leaf(0, &[10, 20, 30], &mut scratch);
            let out = sh.merge_ops_into_leaf(
                0,
                &[Insert(5), Remove(20), Insert(30), Remove(99)],
                &mut scratch,
            );
            assert_eq!(out.added, 1);
            assert_eq!(out.removed, 1);
            assert_eq!(out.delta_units, 0);
            assert!(!out.overflowed);
            // A run that changes nothing skips the rewrite entirely.
            let noop = sh.merge_ops_into_leaf(0, &[Insert(10), Remove(42)], &mut scratch);
            assert_eq!(noop, OpsOutcome::default());
            // Removing everything keeps the old head as inherited value.
            let all = sh.merge_ops_into_leaf(0, &[Remove(5), Remove(10), Remove(30)], &mut scratch);
            assert_eq!(all.removed, 3);
        }
        let mut v = Vec::new();
        s.collect_leaf(0, &mut v);
        assert!(v.is_empty());
        assert_eq!(s.head(0), 5, "emptied leaf keeps old head");
    }

    #[test]
    fn merge_ops_can_overflow() {
        use cpma_api::BatchOp::Insert;
        let mut s = UncompressedLeaves::<u64>::with_geometry(2, 16);
        let mut scratch = Vec::new();
        let ops: Vec<cpma_api::BatchOp<u64>> = (0..20).map(Insert).collect();
        let out = unsafe { s.shared().merge_ops_into_leaf(0, &ops, &mut scratch) };
        assert!(out.overflowed);
        assert_eq!(out.added, 20);
        assert!(s.is_overflowed(0));
    }

    #[test]
    fn remove_keeps_old_head_when_emptied() {
        let mut s = store3();
        let mut scratch = Vec::new();
        unsafe {
            let sh = s.shared();
            sh.merge_into_leaf(2, &[7, 9], &mut scratch);
            let out = sh.remove_from_leaf(2, &[7, 9], &mut scratch);
            assert_eq!(out.delta_count, 2);
        }
        assert_eq!(s.count(2), 0);
        assert_eq!(s.head(2), 7, "emptied leaf keeps old head");
    }

    #[test]
    fn remove_absent_is_noop() {
        let mut s = store3();
        let mut scratch = Vec::new();
        unsafe {
            let sh = s.shared();
            sh.merge_into_leaf(0, &[1, 2], &mut scratch);
            let out = sh.remove_from_leaf(0, &[3, 4], &mut scratch);
            assert_eq!(out, MergeOutcome::default());
        }
        assert_eq!(s.count(0), 2);
    }

    #[test]
    fn plan_split_even() {
        let elems: Vec<u64> = (0..10).collect();
        let plan = UncompressedLeaves::plan_split(&elems, 4, 16);
        assert_eq!(plan, vec![0, 2, 5, 7, 10]);
        let plan = UncompressedLeaves::<u64>::plan_split(&[], 3, 16);
        assert_eq!(plan, vec![0, 0, 0, 0]);
    }

    #[test]
    fn write_leaf_empty_sets_inherited_head() {
        let mut s = store3();
        unsafe {
            s.shared().write_leaf(1, &[], 42);
        }
        assert_eq!(s.head(1), 42);
        assert_eq!(s.count(1), 0);
    }

    #[test]
    fn parallel_disjoint_merges() {
        use rayon::prelude::*;
        let mut s = UncompressedLeaves::<u64>::with_geometry(64, 16);
        let sh = s.shared();
        (0..64usize).into_par_iter().for_each(|leaf| {
            let base = leaf as u64 * 100;
            let mut scratch = Vec::new();
            // SAFETY: each task owns a distinct leaf.
            unsafe {
                sh.merge_into_leaf(leaf, &[base, base + 1, base + 2], &mut scratch);
            }
        });
        for leaf in 0..64 {
            assert_eq!(s.count(leaf), 3);
            assert_eq!(s.head(leaf), leaf as u64 * 100);
        }
    }
}
