//! Snapshot persistence for [`PmaCore`] — the paper's pointer-free layout
//! turned into a checkpoint format.
//!
//! Because a PMA is one contiguous allocation plus a few side arrays, a
//! snapshot is the `cpma-persist` envelope around a *byte view* of those
//! arrays: the meta section records the [`PmaConfig`] and the geometry,
//! the payload is the raw leaf storage (see each codec's
//! `read_payload`/`write_payload`). Saving does no structure walk;
//! loading does one validation pass plus an O(num_leaves) read-index
//! rebuild (the occupancy bitset and auxiliary head array are derived
//! state and are never serialized).
//!
//! Loads verify, in order: envelope magic/version/checksums (in
//! `cpma-persist`), codec id and key width, configuration validity
//! ([`PmaConfig::check`]), geometry sanity, payload size, per-leaf
//! structure, and finally that the recomputed element/unit totals match
//! the header. Anything off yields a typed
//! [`PersistError`] — never a panic.

use std::path::Path;

use cpma_api::{Persist, PersistError};
use cpma_persist::snapshot::{ByteReader, ByteSink, SnapshotEnvelope};

use crate::core::{HeadForm, PmaCore};
use crate::density::DensityBounds;
use crate::{LeafStorage, PmaConfig, PmaKey};

/// Meta section: key width (u32), eleven config scalars (seven f64, four
/// u64 — the last being the [`crate::ForceCodec`] discriminant), three
/// geometry / count fields (u64 each), and the head-layout tag (u64).
/// Floats travel as IEEE-754 bit patterns.
const META_LEN: usize = 4 + 7 * 8 + 4 * 8 + 3 * 8 + 8;

impl<K: PmaKey, L: LeafStorage<K>, const FORM: u8> PmaCore<K, L, FORM> {
    /// Serialize to the snapshot byte format without touching disk.
    /// The image is deterministic: equal histories yield equal bytes at
    /// any thread budget (checked by `tests/determinism.rs`).
    pub fn to_snapshot_bytes(&self) -> Vec<u8> {
        self.to_envelope().to_bytes()
    }

    /// Deserialize a snapshot produced by
    /// [`to_snapshot_bytes`](Self::to_snapshot_bytes) (or read from a
    /// [`Persist::save`] file), validating everything.
    pub fn from_snapshot_bytes(bytes: &[u8]) -> Result<Self, PersistError> {
        Self::from_envelope(&SnapshotEnvelope::from_bytes(bytes)?)
    }

    fn to_envelope(&self) -> SnapshotEnvelope {
        let mut meta = Vec::with_capacity(META_LEN);
        meta.put_u32(K::BYTES as u32);
        let cfg = &self.cfg;
        meta.put_f64(cfg.bounds.upper_leaf);
        meta.put_f64(cfg.bounds.upper_root);
        meta.put_f64(cfg.bounds.lower_leaf);
        meta.put_f64(cfg.bounds.lower_root);
        meta.put_f64(cfg.bounds.rebuild_target);
        meta.put_f64(cfg.growing_factor);
        meta.put_f64(cfg.bitmap_leaf_threshold);
        meta.put_u64(cfg.min_leaves as u64);
        meta.put_u64(cfg.point_update_cutoff as u64);
        meta.put_u64(cfg.full_rebuild_divisor as u64);
        meta.put_u64(force_codec_tag(cfg.force_codec));
        meta.put_u64(self.len as u64);
        meta.put_u64(self.storage.num_leaves() as u64);
        meta.put_u64(self.storage.leaf_units() as u64);
        meta.put_u64(FORM as u64);
        debug_assert_eq!(meta.len(), META_LEN);
        let mut payload = Vec::with_capacity(
            L::payload_len(self.storage.num_leaves(), self.storage.leaf_units())
                .expect("live geometry cannot overflow"),
        );
        self.storage.write_payload(&mut payload);
        SnapshotEnvelope {
            codec_id: L::CODEC_ID,
            meta,
            payload,
        }
    }

    fn from_envelope(env: &SnapshotEnvelope) -> Result<Self, PersistError> {
        if env.codec_id != L::CODEC_ID {
            return Err(PersistError::CodecMismatch {
                expected: L::CODEC_ID,
                found: env.codec_id,
            });
        }
        let mut r = ByteReader::new(&env.meta);
        let key_bytes = r.u32("key width")?;
        if key_bytes != K::BYTES as u32 {
            return Err(PersistError::KeyWidthMismatch {
                expected: K::BYTES as u32,
                found: key_bytes,
            });
        }
        let cfg = PmaConfig {
            bounds: DensityBounds {
                upper_leaf: r.f64("upper_leaf")?,
                upper_root: r.f64("upper_root")?,
                lower_leaf: r.f64("lower_leaf")?,
                lower_root: r.f64("lower_root")?,
                rebuild_target: r.f64("rebuild_target")?,
            },
            growing_factor: r.f64("growing_factor")?,
            bitmap_leaf_threshold: r.f64("bitmap_leaf_threshold")?,
            min_leaves: as_usize(r.u64("min_leaves")?, "min_leaves")?,
            point_update_cutoff: as_usize(r.u64("point_update_cutoff")?, "point_update_cutoff")?,
            full_rebuild_divisor: as_usize(r.u64("full_rebuild_divisor")?, "full_rebuild_divisor")?,
            force_codec: force_codec_from_tag(r.u64("force_codec")?)?,
        };
        cfg.check()?;
        let len = as_usize(r.u64("len")?, "len")?;
        let num_leaves = as_usize(r.u64("num_leaves")?, "num_leaves")?;
        let leaf_units = as_usize(r.u64("leaf_units")?, "leaf_units")?;
        let layout = r.u64("head layout")?;
        r.expect_end("snapshot meta")?;
        if layout != FORM as u64 {
            let found = match layout {
                0..=3 => HeadForm::from_u8(layout as u8).name(),
                _ => "unknown",
            };
            return Err(PersistError::Corrupt(format!(
                "snapshot uses head layout `{found}` ({layout}), but this \
                 type is fixed to `{}` ({FORM})",
                Self::HEAD_FORM.name()
            )));
        }
        if num_leaves == 0 {
            return Err(PersistError::Corrupt("snapshot has zero leaves".into()));
        }
        if leaf_units < L::MIN_LEAF_UNITS {
            return Err(PersistError::Corrupt(format!(
                "leaf capacity {leaf_units} below the codec minimum {}",
                L::MIN_LEAF_UNITS
            )));
        }
        let mut storage = L::read_payload(num_leaves, leaf_units, &env.payload)?;
        storage.set_codec_policy(cfg.force_codec, cfg.bitmap_leaf_threshold);
        let (mut total_len, mut total_units) = (0usize, 0usize);
        for leaf in 0..num_leaves {
            total_len += storage.count(leaf);
            total_units += storage.units_used(leaf);
        }
        if total_len != len {
            return Err(PersistError::Corrupt(format!(
                "header says {len} elements, leaves hold {total_len}"
            )));
        }
        let mut this = Self {
            storage,
            cfg,
            len,
            units: total_units,
            batch_stats: Default::default(),
            occ: Vec::new(),
            aux: crate::core::HeadIndex::None,
            _marker: std::marker::PhantomData,
        };
        this.rebuild_read_index();
        Ok(this)
    }
}

fn as_usize(v: u64, what: &'static str) -> Result<usize, PersistError> {
    usize::try_from(v).map_err(|_| PersistError::Corrupt(format!("{what} {v} exceeds usize")))
}

/// Stable on-disk discriminant of a [`crate::ForceCodec`]. Never renumber.
fn force_codec_tag(f: crate::ForceCodec) -> u64 {
    match f {
        crate::ForceCodec::Auto => 0,
        crate::ForceCodec::Delta => 1,
        crate::ForceCodec::Bitmap => 2,
    }
}

fn force_codec_from_tag(v: u64) -> Result<crate::ForceCodec, PersistError> {
    match v {
        0 => Ok(crate::ForceCodec::Auto),
        1 => Ok(crate::ForceCodec::Delta),
        2 => Ok(crate::ForceCodec::Bitmap),
        _ => Err(PersistError::Corrupt(format!(
            "unknown force_codec discriminant {v}"
        ))),
    }
}

impl<K: PmaKey, L: LeafStorage<K>, const FORM: u8> Persist for PmaCore<K, L, FORM> {
    fn save(&self, path: &Path) -> Result<(), PersistError> {
        self.to_envelope().save_file(path)
    }

    fn load(path: &Path) -> Result<Self, PersistError> {
        Self::from_envelope(&SnapshotEnvelope::load_file(path)?)
    }
}
