//! Memory-traffic accounting — the reproduction's stand-in for `perf stat`.
//!
//! Table 1 of the paper reports hardware cache misses during batch inserts
//! to show that the PMA/CPMA move ~3× less data than PaC-trees. Hardware
//! counters are not portable, so (as recorded in DESIGN.md §4) we count the
//! bytes each structure reads and writes at its storage layer and report
//! estimated cache-line (64 B) transfers. Relative ordering between
//! structures — the quantity Table 1 is about — is preserved.
//!
//! Compiled to no-ops unless the `stats` feature is enabled, so the hot
//! paths of benchmark builds without the feature pay nothing.

#[cfg(feature = "stats")]
use std::sync::atomic::{AtomicU64, Ordering};

/// Cache-line size used to convert bytes to estimated line transfers.
pub const CACHE_LINE: u64 = 64;

#[cfg(feature = "stats")]
static BYTES_READ: AtomicU64 = AtomicU64::new(0);
#[cfg(feature = "stats")]
static BYTES_WRITTEN: AtomicU64 = AtomicU64::new(0);

/// Record `n` bytes read from a data structure's backing storage.
#[inline(always)]
pub fn record_read(n: usize) {
    #[cfg(feature = "stats")]
    BYTES_READ.fetch_add(n as u64, Ordering::Relaxed);
    #[cfg(not(feature = "stats"))]
    let _ = n;
}

/// Record `n` bytes written to a data structure's backing storage.
#[inline(always)]
pub fn record_write(n: usize) {
    #[cfg(feature = "stats")]
    BYTES_WRITTEN.fetch_add(n as u64, Ordering::Relaxed);
    #[cfg(not(feature = "stats"))]
    let _ = n;
}

/// Per-structure batch-pipeline counters, incremented by every batch
/// update (one-sided and mixed) a `Pma`/`Cpma` instance executes.
///
/// Unlike the byte-traffic counters above — process-global and
/// feature-gated because they sit on the per-element hot path — these are
/// a handful of integer adds per *batch*, so they are always on and live
/// in the structure itself (`Pma::stats()`), which also keeps them
/// deterministic at any thread count: every quantity counted is a
/// property of the batch algorithm's schedule-independent output.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PmaStats {
    /// Batch updates that fell back to per-key point updates (below the
    /// configured `point_update_cutoff`).
    pub point_fallbacks: u64,
    /// Batch updates that ran the route→merge→count→redistribute
    /// pipeline.
    pub pipeline_batches: u64,
    /// `(leaf, run)` assignments produced by the routing phase — each is
    /// one leaf rewrite in the merge phase.
    pub routed_runs: u64,
    /// Leaves rewritten across merge *and* redistribution phases (the
    /// touched-leaf traffic the mixed pipeline exists to halve).
    pub leaves_touched: u64,
    /// Maximal disjoint ranges handed to the redistribute phase.
    pub redistribute_ranges: u64,
    /// Whole-structure rebuilds: huge-batch merges, bulk loads into an
    /// empty structure, and root-violation grows/shrinks.
    pub full_rebuilds: u64,
}

impl PmaStats {
    /// One compact human-readable line (the bench drivers print this).
    pub fn summary(&self) -> String {
        format!(
            "pipeline={} point_fallbacks={} routed_runs={} leaves_touched={} \
             redistribute_ranges={} full_rebuilds={}",
            self.pipeline_batches,
            self.point_fallbacks,
            self.routed_runs,
            self.leaves_touched,
            self.redistribute_ranges,
            self.full_rebuilds
        )
    }
}

/// Snapshot of traffic counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Traffic {
    /// Total bytes read.
    pub bytes_read: u64,
    /// Total bytes written.
    pub bytes_written: u64,
}

impl Traffic {
    /// Estimated cache-line transfers (reads + writes, 64 B lines).
    pub fn est_line_transfers(&self) -> u64 {
        (self.bytes_read + self.bytes_written).div_ceil(CACHE_LINE)
    }
}

/// Read the current counters.
pub fn snapshot() -> Traffic {
    #[cfg(feature = "stats")]
    {
        Traffic {
            bytes_read: BYTES_READ.load(Ordering::Relaxed),
            bytes_written: BYTES_WRITTEN.load(Ordering::Relaxed),
        }
    }
    #[cfg(not(feature = "stats"))]
    Traffic::default()
}

/// Zero the counters (call before a measured region).
pub fn reset() {
    #[cfg(feature = "stats")]
    {
        BYTES_READ.store(0, Ordering::Relaxed);
        BYTES_WRITTEN.store(0, Ordering::Relaxed);
    }
}

/// Run `f` with freshly-reset counters and return `(result, traffic)`.
pub fn measure<T>(f: impl FnOnce() -> T) -> (T, Traffic) {
    reset();
    let out = f();
    (out, snapshot())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_transfer_estimate_rounds_up() {
        let t = Traffic {
            bytes_read: 1,
            bytes_written: 0,
        };
        assert_eq!(t.est_line_transfers(), 1);
        let t = Traffic {
            bytes_read: 64,
            bytes_written: 64,
        };
        assert_eq!(t.est_line_transfers(), 2);
        let t = Traffic {
            bytes_read: 65,
            bytes_written: 0,
        };
        assert_eq!(t.est_line_transfers(), 2);
    }

    #[cfg(feature = "stats")]
    #[test]
    fn counters_accumulate_and_reset() {
        reset();
        record_read(100);
        record_write(28);
        let t = snapshot();
        assert!(t.bytes_read >= 100);
        assert!(t.bytes_written >= 28);
        reset();
        // Other tests may run in parallel and bump counters, so only check
        // that reset did not panic and measure() returns something coherent.
        let (v, tr) = measure(|| {
            record_read(64);
            7
        });
        assert_eq!(v, 7);
        assert!(tr.bytes_read >= 64);
    }

    #[cfg(not(feature = "stats"))]
    #[test]
    fn disabled_stats_are_zero() {
        record_read(1000);
        record_write(1000);
        assert_eq!(snapshot(), Traffic::default());
    }
}
