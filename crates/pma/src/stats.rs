//! Memory-traffic accounting — the reproduction's stand-in for `perf stat`.
//!
//! Table 1 of the paper reports hardware cache misses during batch inserts
//! to show that the PMA/CPMA move ~3× less data than PaC-trees. Hardware
//! counters are not portable, so (as recorded in DESIGN.md §4) we count the
//! bytes each structure reads and writes at its storage layer and report
//! estimated cache-line (64 B) transfers. Relative ordering between
//! structures — the quantity Table 1 is about — is preserved.
//!
//! Compiled to no-ops unless the `stats` feature is enabled, so the hot
//! paths of benchmark builds without the feature pay nothing.

#[cfg(feature = "stats")]
use std::sync::atomic::{AtomicU64, Ordering};

use cpma_obs::{Counter, Unit};

/// Cache-line size used to convert bytes to estimated line transfers.
pub const CACHE_LINE: u64 = 64;

#[cfg(feature = "stats")]
static BYTES_READ: AtomicU64 = AtomicU64::new(0);
#[cfg(feature = "stats")]
static BYTES_WRITTEN: AtomicU64 = AtomicU64::new(0);

/// Record `n` bytes read from a data structure's backing storage.
#[inline(always)]
pub fn record_read(n: usize) {
    #[cfg(feature = "stats")]
    BYTES_READ.fetch_add(n as u64, Ordering::Relaxed);
    #[cfg(not(feature = "stats"))]
    let _ = n;
}

/// Record `n` bytes written to a data structure's backing storage.
#[inline(always)]
pub fn record_write(n: usize) {
    #[cfg(feature = "stats")]
    BYTES_WRITTEN.fetch_add(n as u64, Ordering::Relaxed);
    #[cfg(not(feature = "stats"))]
    let _ = n;
}

/// Per-structure batch-pipeline counters, incremented by every batch
/// update (one-sided and mixed) a `Pma`/`Cpma` instance executes.
///
/// Unlike the byte-traffic counters above — process-global and
/// feature-gated because they sit on the per-element hot path — these are
/// a handful of integer adds per *batch*, so they are always on and live
/// in the structure itself (`Pma::stats()`), which also keeps them
/// deterministic at any thread count: every quantity counted is a
/// property of the batch algorithm's schedule-independent output.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PmaStats {
    /// Batch updates that fell back to per-key point updates (below the
    /// configured `point_update_cutoff`).
    pub point_fallbacks: u64,
    /// Batch updates that ran the route→merge→count→redistribute
    /// pipeline.
    pub pipeline_batches: u64,
    /// `(leaf, run)` assignments produced by the routing phase — each is
    /// one leaf rewrite in the merge phase.
    pub routed_runs: u64,
    /// Leaves rewritten across merge *and* redistribution phases (the
    /// touched-leaf traffic the mixed pipeline exists to halve).
    pub leaves_touched: u64,
    /// Maximal disjoint ranges handed to the redistribute phase.
    pub redistribute_ranges: u64,
    /// Whole-structure rebuilds: huge-batch merges, bulk loads into an
    /// empty structure, and root-violation grows/shrinks.
    pub full_rebuilds: u64,
}

impl PmaStats {
    /// One compact human-readable line (the bench drivers print this).
    pub fn summary(&self) -> String {
        format!(
            "pipeline={} point_fallbacks={} routed_runs={} leaves_touched={} \
             redistribute_ranges={} full_rebuilds={}",
            self.pipeline_batches,
            self.point_fallbacks,
            self.routed_runs,
            self.leaves_touched,
            self.redistribute_ranges,
            self.full_rebuilds
        )
    }
}

/// The live counter cells behind [`PmaStats`]: each `PmaCore` instance
/// owns one set, registered under the global `cpma-obs` registry (names
/// `pma.*`), and `Pma::stats()` is a point-in-time [`PmaCounters::view`]
/// over them. The registry snapshot additionally sums across every
/// instance in the process.
///
/// `Clone` (and `Default`) register *fresh zeroed cells* — cloning a
/// `Pma` yields a structure whose stats start at zero, exactly like the
/// old value-struct behaved for a freshly built structure, and snapshot
/// clones published by the combiner never double-count.
#[derive(Debug)]
pub struct PmaCounters {
    pub(crate) point_fallbacks: Counter,
    pub(crate) pipeline_batches: Counter,
    pub(crate) routed_runs: Counter,
    pub(crate) leaves_touched: Counter,
    pub(crate) redistribute_ranges: Counter,
    pub(crate) full_rebuilds: Counter,
}

impl PmaCounters {
    /// Register a fresh set of cells on the global registry.
    pub fn new() -> Self {
        let r = cpma_obs::global();
        Self {
            point_fallbacks: r.counter("pma.point_fallbacks", Unit::Count),
            pipeline_batches: r.counter("pma.pipeline_batches", Unit::Count),
            routed_runs: r.counter("pma.routed_runs", Unit::Count),
            leaves_touched: r.counter("pma.leaves_touched", Unit::Count),
            redistribute_ranges: r.counter("pma.redistribute_ranges", Unit::Count),
            full_rebuilds: r.counter("pma.full_rebuilds", Unit::Count),
        }
    }

    /// The classic value-struct view of this instance's counters.
    pub fn view(&self) -> PmaStats {
        PmaStats {
            point_fallbacks: self.point_fallbacks.value(),
            pipeline_batches: self.pipeline_batches.value(),
            routed_runs: self.routed_runs.value(),
            leaves_touched: self.leaves_touched.value(),
            redistribute_ranges: self.redistribute_ranges.value(),
            full_rebuilds: self.full_rebuilds.value(),
        }
    }
}

impl Default for PmaCounters {
    fn default() -> Self {
        Self::new()
    }
}

/// Process-shared latency histograms for the four batch-pipeline phases
/// (timing-derived; inert when `cpma_obs::set_timing_enabled(false)`).
/// Shared rather than per-instance: phase durations are a property of the
/// machine, not of one structure, and a single cell keeps the per-batch
/// cost to pointer loads.
pub(crate) struct PhaseSpans {
    pub route: cpma_obs::Histogram,
    pub merge: cpma_obs::Histogram,
    pub count: cpma_obs::Histogram,
    pub redistribute: cpma_obs::Histogram,
}

pub(crate) fn phase_spans() -> &'static PhaseSpans {
    static SPANS: std::sync::OnceLock<PhaseSpans> = std::sync::OnceLock::new();
    SPANS.get_or_init(|| {
        let r = cpma_obs::global();
        PhaseSpans {
            route: r.shared_histogram("pma.route.ns", Unit::Nanos),
            merge: r.shared_histogram("pma.merge.ns", Unit::Nanos),
            count: r.shared_histogram("pma.count.ns", Unit::Nanos),
            redistribute: r.shared_histogram("pma.redistribute.ns", Unit::Nanos),
        }
    })
}

/// Process-shared counters for the hybrid leaf codec: how often each
/// encoding is written and how often a non-empty leaf *flips* encodings at
/// a rewrite (the quantity the redistribute-time hysteresis damps).
/// Shared like [`PhaseSpans`]: codec population is a whole-process
/// property the bench exposition sums anyway, and one cell per event
/// keeps the per-leaf-rewrite cost to one relaxed add.
pub(crate) struct CodecCounters {
    pub bitmap_writes: Counter,
    pub delta_writes: Counter,
    pub flips: Counter,
}

pub(crate) fn codec_counters() -> &'static CodecCounters {
    static CELLS: std::sync::OnceLock<CodecCounters> = std::sync::OnceLock::new();
    CELLS.get_or_init(|| {
        let r = cpma_obs::global();
        CodecCounters {
            bitmap_writes: r.counter("cpma.codec.bitmap_writes", Unit::Count),
            delta_writes: r.counter("cpma.codec.delta_writes", Unit::Count),
            flips: r.counter("cpma.codec.flips", Unit::Count),
        }
    })
}

impl Clone for PmaCounters {
    fn clone(&self) -> Self {
        Self::new()
    }
}

/// Snapshot of traffic counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Traffic {
    /// Total bytes read.
    pub bytes_read: u64,
    /// Total bytes written.
    pub bytes_written: u64,
}

impl Traffic {
    /// Estimated cache-line transfers (reads + writes, 64 B lines).
    pub fn est_line_transfers(&self) -> u64 {
        (self.bytes_read + self.bytes_written).div_ceil(CACHE_LINE)
    }

    /// Component-wise saturating difference (`self - earlier`).
    pub fn since(&self, earlier: Traffic) -> Traffic {
        Traffic {
            bytes_read: self.bytes_read.saturating_sub(earlier.bytes_read),
            bytes_written: self.bytes_written.saturating_sub(earlier.bytes_written),
        }
    }
}

/// Scoped view over the process-global byte-traffic counters.
///
/// The raw `BYTES_READ`/`BYTES_WRITTEN` statics are process-global, so
/// measuring two structures back-to-back used to require a global
/// [`reset`] between them — and one forgotten reset polluted the next
/// Table-1 number. A `TrafficScope` captures the totals at construction
/// and reports deltas, so any number of sequential (or nested)
/// measurements stay independent without ever resetting the globals.
///
/// Like everything in this module it measures whatever runs in the
/// process during the scope; keep concurrent structure work out of a
/// measured region, as Table 1 always required.
#[derive(Clone, Copy, Debug)]
pub struct TrafficScope {
    base: Traffic,
}

impl TrafficScope {
    /// Open a scope at the current counter totals.
    pub fn begin() -> Self {
        Self { base: snapshot() }
    }

    /// Bytes recorded since [`TrafficScope::begin`].
    pub fn traffic(&self) -> Traffic {
        snapshot().since(self.base)
    }
}

impl Default for TrafficScope {
    fn default() -> Self {
        Self::begin()
    }
}

/// Read the current counters.
pub fn snapshot() -> Traffic {
    #[cfg(feature = "stats")]
    {
        Traffic {
            bytes_read: BYTES_READ.load(Ordering::Relaxed),
            bytes_written: BYTES_WRITTEN.load(Ordering::Relaxed),
        }
    }
    #[cfg(not(feature = "stats"))]
    Traffic::default()
}

/// Zero the counters (call before a measured region).
pub fn reset() {
    #[cfg(feature = "stats")]
    {
        BYTES_READ.store(0, Ordering::Relaxed);
        BYTES_WRITTEN.store(0, Ordering::Relaxed);
    }
}

/// Run `f` in a [`TrafficScope`] and return `(result, traffic delta)`.
/// Does not reset the globals, so sequential `measure` calls are
/// independent of each other and of any surrounding scope.
pub fn measure<T>(f: impl FnOnce() -> T) -> (T, Traffic) {
    let scope = TrafficScope::begin();
    let out = f();
    (out, scope.traffic())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_transfer_estimate_rounds_up() {
        let t = Traffic {
            bytes_read: 1,
            bytes_written: 0,
        };
        assert_eq!(t.est_line_transfers(), 1);
        let t = Traffic {
            bytes_read: 64,
            bytes_written: 64,
        };
        assert_eq!(t.est_line_transfers(), 2);
        let t = Traffic {
            bytes_read: 65,
            bytes_written: 0,
        };
        assert_eq!(t.est_line_transfers(), 2);
    }

    #[cfg(feature = "stats")]
    #[test]
    fn scopes_are_independent() {
        // Two sequential scopes must each see only their own traffic even
        // though the underlying counters are process-global and never
        // reset. (Other tests may add traffic concurrently, so assert
        // lower bounds only.)
        let a = TrafficScope::begin();
        record_read(128);
        let ta = a.traffic();
        let b = TrafficScope::begin();
        record_write(64);
        let tb = b.traffic();
        assert!(ta.bytes_read >= 128);
        assert!(tb.bytes_written >= 64);
        // b opened after a's reads: they don't leak into b's read count
        // unless a concurrent test recorded reads in the window.
        let (v, tr) = measure(|| {
            record_read(64);
            7
        });
        assert_eq!(v, 7);
        assert!(tr.bytes_read >= 64);
    }

    #[cfg(feature = "stats")]
    #[test]
    fn counters_accumulate_and_reset() {
        reset();
        record_read(100);
        record_write(28);
        let t = snapshot();
        assert!(t.bytes_read >= 100);
        assert!(t.bytes_written >= 28);
        reset();
        // Other tests may run in parallel and bump counters, so only check
        // that reset did not panic and measure() returns something coherent.
        let (v, tr) = measure(|| {
            record_read(64);
            7
        });
        assert_eq!(v, 7);
        assert!(tr.bytes_read >= 64);
    }

    #[cfg(not(feature = "stats"))]
    #[test]
    fn disabled_stats_are_zero() {
        record_read(1000);
        record_write(1000);
        assert_eq!(snapshot(), Traffic::default());
    }
}
