//! Batch-parallel Packed Memory Array (PMA) and Compressed PMA (CPMA).
//!
//! This crate is the paper's primary contribution: a dynamic, ordered,
//! batch-parallel set stored in one contiguous array without pointers.
//!
//! * [`Pma`] — the uncompressed PMA: packed-left leaves of raw keys.
//! * [`Cpma`] — the compressed PMA: each leaf stores its first key (*head*)
//!   raw and the remaining keys as delta-encoded byte codes; density bounds
//!   are enforced on **bytes** instead of cells (§5 of the paper).
//!
//! Both share one engine, [`core::PmaCore`], which implements search, point
//! updates, the three-phase parallel batch-update algorithm of §4
//! (batch-merge → counting → redistribute), range maps, and resizing with a
//! configurable growing factor (Appendix C).

pub mod codec;
pub mod core;
pub mod density;
pub mod stats;
pub mod tree;

mod batch;
mod compressed;
mod leaf;
mod uncompressed;

pub use crate::compressed::CompressedLeaves;
pub use crate::core::{Cpma, Pma, PmaConfig, PmaCore};
pub use crate::density::DensityBounds;
pub use crate::leaf::{LeafStorage, MergeOutcome};
pub use crate::uncompressed::UncompressedLeaves;

/// Integer key types storable in a PMA.
///
/// The paper's artifact is a 64-bit key store; we additionally allow `u32`
/// for the uncompressed PMA. The CPMA's delta coder is defined on `u64`.
pub trait PmaKey:
    Copy + Ord + Eq + Send + Sync + std::fmt::Debug + std::fmt::Display + 'static
{
    /// Width of the raw (uncompressed) encoding in bytes.
    const BYTES: usize;
    /// Smallest key value.
    const MIN: Self;
    /// Largest key value.
    const MAX: Self;
    /// Widen to u64 (used by sum / compression).
    fn to_u64(self) -> u64;
    /// Narrow from u64; values out of range must not occur by construction.
    fn from_u64(v: u64) -> Self;
}

impl PmaKey for u64 {
    const BYTES: usize = 8;
    const MIN: Self = 0;
    const MAX: Self = u64::MAX;
    #[inline]
    fn to_u64(self) -> u64 {
        self
    }
    #[inline]
    fn from_u64(v: u64) -> Self {
        v
    }
}

impl PmaKey for u32 {
    const BYTES: usize = 4;
    const MIN: Self = 0;
    const MAX: Self = u32::MAX;
    #[inline]
    fn to_u64(self) -> u64 {
        self as u64
    }
    #[inline]
    fn from_u64(v: u64) -> Self {
        debug_assert!(v <= u32::MAX as u64);
        v as u32
    }
}
