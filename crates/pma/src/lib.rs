//! Batch-parallel Packed Memory Array (PMA) and Compressed PMA (CPMA).
//!
//! This crate is the paper's primary contribution: a dynamic, ordered,
//! batch-parallel set stored in one contiguous array without pointers.
//!
//! * [`Pma`] — the uncompressed PMA: packed-left leaves of raw keys.
//! * [`Cpma`] — the compressed PMA: each leaf stores its first key (*head*)
//!   raw and the remaining keys as delta-encoded byte codes; density bounds
//!   are enforced on **bytes** instead of cells (§5 of the paper).
//!
//! Both share one engine, [`core::PmaCore`], which implements search, point
//! updates, the three-phase parallel batch-update algorithm of §4
//! (batch-merge → counting → redistribute), range maps, and resizing with a
//! configurable growing factor (Appendix C).
//!
//! The public query/update surface is the workspace-wide `cpma_api`
//! hierarchy — `OrderedSet` (point queries), `BatchSet` (batch updates),
//! `RangeSet` (`RangeBounds`-based scans: `range_sum(a..b)`,
//! `for_range(a..=b, f)`, `range_iter`) — implemented once for the generic
//! engine in this crate's `api` module. Construction is tunable through
//! the fallible [`PmaConfig::builder`]; `Pma`/`Cpma` also implement
//! `FromIterator`, `Extend`, and `IntoIterator` for std-collection
//! ergonomics.

pub mod bitmap;
pub mod codec;
pub mod core;
pub mod density;
pub mod persist;
pub mod stats;
pub mod tree;

mod api;
mod batch;
mod compressed;
mod leaf;
mod search;
mod uncompressed;

pub use crate::compressed::CompressedLeaves;
pub use crate::core::{
    Cpma, CpmaBNary, CpmaEytzinger, CpmaLinear, ForceCodec, HeadForm, Pma, PmaBNary, PmaConfig,
    PmaConfigBuilder, PmaCore, PmaEytzinger, PmaLinear,
};
pub use crate::density::DensityBounds;
pub use crate::leaf::{LeafStorage, MergeOutcome, OpsOutcome};
pub use crate::stats::PmaStats;
pub use crate::uncompressed::UncompressedLeaves;
pub use cpma_api::{BatchOp, BatchOutcome, Persist, PersistError, SetKey};

/// Integer key types storable in a PMA.
///
/// Extends the workspace-wide [`SetKey`] (which carries `MIN`/`MAX` and the
/// u64 widening used by sums and compression) with the raw encoding width
/// the PMA's cell accounting needs. The paper's artifact is a 64-bit key
/// store; we additionally allow `u32` for the uncompressed PMA. The CPMA's
/// delta coder is defined on `u64`.
pub trait PmaKey: SetKey {
    /// Width of the raw (uncompressed) encoding in bytes.
    const BYTES: usize;
}

impl PmaKey for u64 {
    const BYTES: usize = 8;
}

impl PmaKey for u32 {
    const BYTES: usize = 4;
}
