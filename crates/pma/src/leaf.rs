//! Leaf-storage abstraction shared by the PMA and the CPMA.
//!
//! The paper derives the CPMA from the PMA by changing exactly one thing:
//! what a leaf stores and how its occupancy is measured ("The main change in
//! the CPMA is the compression of each individual leaf, which does not
//! affect the high-level implicit tree structure", §5). We encode that
//! observation as a trait: [`PmaCore`](crate::core::PmaCore) implements
//! search, point updates, the batch algorithm, range maps, and resizing once
//! against [`LeafStorage`]; [`UncompressedLeaves`](crate::UncompressedLeaves)
//! measures occupancy in **cells** and
//! [`CompressedLeaves`](crate::CompressedLeaves) in **bytes**.
//!
//! # Shared-disjoint mutation
//!
//! The batch-merge and redistribute phases mutate many leaves in parallel.
//! The recursion partitions leaves disjointly (§4), so per-leaf mutation is
//! race-free *by construction*; [`SharedLeaves`] exposes that contract as
//! `unsafe` methods whose safety requirement is exactly "no two concurrent
//! calls may target the same leaf". Implementations use raw pointers derived
//! from `&mut self`, never materializing overlapping `&mut` references.

use crate::core::ForceCodec;
use crate::PmaKey;
use cpma_api::{BatchOp, PersistError};

/// Result of merging into / removing from one leaf.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MergeOutcome {
    /// Elements actually added (insert) or removed (delete); keys already
    /// present (or absent) do not count — set semantics.
    pub delta_count: usize,
    /// Signed change in the leaf's occupied units (cells or bytes).
    pub delta_units: isize,
    /// The leaf now holds more units than its physical capacity and its
    /// contents live in an out-of-place overflow buffer (Figure 4 of the
    /// paper). The counting phase is guaranteed to schedule it for
    /// redistribution because its density exceeds 1.0.
    pub overflowed: bool,
}

/// Result of applying a mixed op run to one leaf: like [`MergeOutcome`]
/// but with the add and remove counts kept apart (a mixed run can do
/// both in the same rewrite).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OpsOutcome {
    /// Keys newly inserted into the leaf.
    pub added: usize,
    /// Keys actually removed from the leaf.
    pub removed: usize,
    /// Signed change in the leaf's occupied units (cells or bytes).
    pub delta_units: isize,
    /// The rewritten leaf spilled to an overflow buffer (see
    /// [`MergeOutcome::overflowed`]).
    pub overflowed: bool,
}

/// Storage for the leaves of a PMA. See module docs.
///
/// Units are cells for the uncompressed PMA and bytes for the CPMA; density
/// bounds, the counting phase, and resizing all operate on units.
pub trait LeafStorage<K: PmaKey>: Send + Sync + Sized {
    /// Shared-disjoint accessor handed to parallel phases.
    type Shared<'a>: SharedLeaves<K> + Copy + Send + Sync
    where
        Self: 'a;

    /// Name of the structure this storage yields, as the paper's tables
    /// spell it ("PMA" / "CPMA"); surfaces as `OrderedSet::NAME`.
    const NAME: &'static str;

    /// Smallest permissible leaf capacity in units. For the CPMA this must
    /// be ≥ 256 bytes: redistribution's fit proof needs
    /// `0.1 · capacity ≥ 18` (see `plan_split`).
    const MIN_LEAF_UNITS: usize;
    /// Leaf capacities are rounded up to a multiple of this.
    const LEAF_ALIGN: usize;
    /// Units consumed by a leaf head beyond the element's delta cost
    /// (8 for the CPMA's raw head, 0 for the uncompressed PMA).
    const HEAD_UNITS: usize;
    /// Leaf capacity is `LEAF_SCALE · ⌈log₂ capacity⌉` units (clamped and
    /// aligned), keeping leaves Θ(log N) as the paper requires.
    const LEAF_SCALE: usize;

    /// Stable on-disk identifier of this codec, recorded in snapshot
    /// headers so a `Pma` image is never deserialized as a `Cpma` (or
    /// vice versa). Never reuse or renumber.
    const CODEC_ID: u32;

    /// Allocate `num_leaves` empty leaves of `leaf_units` capacity each.
    fn with_geometry(num_leaves: usize, leaf_units: usize) -> Self;

    /// Exact snapshot-payload size in bytes for this geometry, or `None`
    /// on arithmetic overflow (the geometry then cannot be valid).
    fn payload_len(num_leaves: usize, leaf_units: usize) -> Option<usize>;

    /// Append the raw backing arrays to `out`, little-endian, in the
    /// layout fixed by [`CODEC_ID`](Self::CODEC_ID) — the snapshot
    /// payload. Because the structure is pointer-free this is a plain
    /// byte view of the allocation: no walk, no fixup. Callers must
    /// ensure no leaf is overflowed (always true outside a batch).
    fn write_payload(&self, out: &mut Vec<u8>);

    /// Rebuild storage with the given geometry from a snapshot payload,
    /// validating lengths *before* allocating and every per-leaf
    /// invariant (prefix bounds, ascending order, head consistency)
    /// before the storage is returned. The payload's checksum has
    /// already been verified by the envelope; this guards against
    /// crafted or stale inputs ever panicking later.
    fn read_payload(
        num_leaves: usize,
        leaf_units: usize,
        payload: &[u8],
    ) -> Result<Self, PersistError>;

    /// Number of leaves.
    fn num_leaves(&self) -> usize;
    /// Capacity of each leaf in units.
    fn leaf_units(&self) -> usize;
    /// Occupied units of `leaf` (may exceed capacity while overflowed).
    fn units_used(&self, leaf: usize) -> usize;
    /// Number of elements in `leaf`.
    fn count(&self, leaf: usize) -> usize;
    /// Head value of `leaf`. For empty leaves this is an *inherited* value:
    /// any value keeping the head array non-decreasing (see `core::dest_leaf`).
    fn head(&self, leaf: usize) -> K;
    /// Whether `leaf` currently spills to an overflow buffer.
    fn is_overflowed(&self, leaf: usize) -> bool;
    /// Bytes of backing memory (the paper's `get_size()`).
    fn size_bytes(&self) -> usize;

    /// Hint that `leaf`'s backing bytes are about to be read (batched
    /// lookups prefetch the next probe group's leaf while searching the
    /// current one). Default: no-op.
    fn prefetch_leaf(&self, _leaf: usize) {}

    /// Smallest element ≥ `key` within `leaf`, if any.
    fn leaf_successor(&self, leaf: usize, key: K) -> Option<K>;
    /// Membership test within `leaf`.
    fn leaf_contains(&self, leaf: usize, key: K) -> bool;
    /// Largest element of `leaf`, if non-empty.
    fn leaf_max(&self, leaf: usize) -> Option<K>;
    /// In-order traversal of `leaf`; stop early when `f` returns false.
    /// Returns false iff stopped early.
    fn for_each_in_leaf(&self, leaf: usize, f: &mut dyn FnMut(K) -> bool) -> bool;
    /// In-order traversal of `leaf` restricted to elements ≥ `start`.
    /// Default: filter [`Self::for_each_in_leaf`]; codecs with positional
    /// access (bitmap leaves) override to skip the prefix wholesale
    /// instead of paying one closure call per skipped element.
    fn for_each_in_leaf_from(&self, leaf: usize, start: K, f: &mut dyn FnMut(K) -> bool) -> bool {
        self.for_each_in_leaf(leaf, &mut |e| if e < start { true } else { f(e) })
    }
    /// Append `leaf`'s elements, in order, to `out`.
    fn collect_leaf(&self, leaf: usize, out: &mut Vec<K>);
    /// Sum of `leaf`'s elements (widened to u64, wrapping).
    fn leaf_sum(&self, leaf: usize) -> u64;

    /// Sum of `leaf`'s elements in the half-open key range `[start, end)`
    /// (widened to u64, wrapping). Default: early-exit in-order walk;
    /// hybrid storages override with wordwise popcount kernels on dense
    /// leaves.
    fn leaf_range_sum(&self, leaf: usize, start: K, end: K) -> u64 {
        let mut acc = 0u64;
        self.for_each_in_leaf(leaf, &mut |e| {
            if e >= end {
                return false;
            }
            if e >= start {
                acc = acc.wrapping_add(e.to_u64());
            }
            true
        });
        acc
    }

    /// Units a strictly-increasing run would occupy written as one leaf.
    fn units_for(elems: &[K]) -> usize;

    /// Plan how to spread `elems` across `k` leaves of `leaf_units` capacity:
    /// returns `k + 1` offsets into `elems` (first 0, last `elems.len()`),
    /// such that every slice fits its leaf and occupancies are near-equal.
    ///
    /// Callers guarantee `units_for` of the whole run is at most
    /// `0.9 · k · leaf_units` (the tightest upper density bound), which makes
    /// a fitting plan always exist for `leaf_units ≥ MIN_LEAF_UNITS`.
    fn plan_split(elems: &[K], k: usize, leaf_units: usize) -> Vec<usize>;

    /// Install the per-leaf codec policy (hybrid storages only; the
    /// default ignores it). Called at construction and when loading a
    /// snapshot, before any leaf is written.
    fn set_codec_policy(&mut self, _force: ForceCodec, _threshold: f64) {}

    /// Policy-aware [`Self::units_for`]: what *this instance's* codec
    /// policy would charge for the run. Capacity planning must use this
    /// so a hybrid storage's cheaper encodings translate into a smaller
    /// footprint. Default: the static cost.
    fn units_for_with(&self, elems: &[K]) -> usize {
        Self::units_for(elems)
    }

    /// Policy-aware [`Self::plan_split`] (same contract). Default: the
    /// static plan.
    fn plan_split_with(&self, elems: &[K], k: usize, leaf_units: usize) -> Vec<usize> {
        Self::plan_split(elems, k, leaf_units)
    }

    /// Obtain the shared-disjoint accessor. Borrows `self` mutably for the
    /// accessor's lifetime, so no safe references can alias the raw access.
    fn shared(&mut self) -> Self::Shared<'_>;
}

/// Shared-disjoint per-leaf mutation (and reads) used by the parallel batch
/// phases.
///
/// # Safety contract (all methods)
///
/// For a given accessor, no two concurrent calls may target the same leaf
/// index, and no concurrent call may target a leaf another thread is reading
/// through the same accessor. Distinct leaves are always safe.
pub trait SharedLeaves<K: PmaKey> {
    /// Merge sorted, deduplicated `add` into `leaf` (set union). Spills to
    /// an overflow buffer when the result exceeds leaf capacity. Updates the
    /// leaf head.
    ///
    /// # Safety
    /// See trait-level contract.
    unsafe fn merge_into_leaf(&self, leaf: usize, add: &[K], scratch: &mut Vec<K>) -> MergeOutcome;

    /// Remove every element of sorted `rem` present in `leaf` (set
    /// difference). Never overflows. An emptied leaf keeps its old head as
    /// the inherited value (this preserves head-array monotonicity with no
    /// cross-leaf reads — see `core` docs).
    ///
    /// # Safety
    /// See trait-level contract.
    unsafe fn remove_from_leaf(&self, leaf: usize, rem: &[K], scratch: &mut Vec<K>)
        -> MergeOutcome;

    /// Apply a mixed op run (normal form: ascending, one op per key) to
    /// `leaf` in **one** rewrite — the kernel of the single-pass mixed
    /// batch pipeline. Inserts may spill to an overflow buffer; an
    /// emptied leaf keeps its old head as the inherited value (the same
    /// invariants as the one-sided merges, threaded through one
    /// decode → three-finger merge → encode).
    ///
    /// # Safety
    /// See trait-level contract.
    unsafe fn merge_ops_into_leaf(
        &self,
        leaf: usize,
        ops: &[BatchOp<K>],
        scratch: &mut Vec<K>,
    ) -> OpsOutcome;

    /// Overwrite `leaf` with `elems` (must fit capacity; caller planned the
    /// split). For an empty `elems`, the head is set to `inherited_head`.
    /// Clears any overflow buffer. Returns the leaf's new unit count.
    ///
    /// # Safety
    /// See trait-level contract.
    unsafe fn write_leaf(&self, leaf: usize, elems: &[K], inherited_head: K) -> usize;

    /// Append `leaf`'s elements to `out` (reads through the shared view).
    ///
    /// # Safety
    /// See trait-level contract.
    unsafe fn collect_leaf(&self, leaf: usize, out: &mut Vec<K>);

    /// Occupied units of `leaf` through the shared view.
    ///
    /// # Safety
    /// See trait-level contract.
    unsafe fn units_used(&self, leaf: usize) -> usize;

    /// Element count of `leaf` through the shared view.
    ///
    /// # Safety
    /// See trait-level contract.
    unsafe fn count(&self, leaf: usize) -> usize;

    /// Set the head of an (empty) leaf to an inherited value.
    ///
    /// # Safety
    /// See trait-level contract.
    unsafe fn set_inherited_head(&self, leaf: usize, head: K);
}

/// Merge two sorted runs as a set union into `out` (cleared first).
/// Returns the number of elements of `add` that were *not* already present.
pub(crate) fn set_union_into<K: PmaKey>(cur: &[K], add: &[K], out: &mut Vec<K>) -> usize {
    out.clear();
    out.reserve(cur.len() + add.len());
    let mut added = 0;
    let (mut i, mut j) = (0, 0);
    while i < cur.len() && j < add.len() {
        match cur[i].cmp(&add[j]) {
            std::cmp::Ordering::Less => {
                out.push(cur[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(add[j]);
                added += 1;
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(cur[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&cur[i..]);
    for &k in &add[j..] {
        out.push(k);
        added += 1;
    }
    added
}

/// Apply a normal-form mixed op run to the sorted run `cur`, writing the
/// result into `out` (cleared first): one three-finger merge that unions
/// inserts and subtracts removes in the same pass. Returns
/// `(added, removed)` with set semantics.
pub(crate) fn apply_ops_into<K: PmaKey>(
    cur: &[K],
    ops: &[BatchOp<K>],
    out: &mut Vec<K>,
) -> (usize, usize) {
    debug_assert!(ops.windows(2).all(|w| w[0].key() < w[1].key()));
    out.clear();
    out.reserve(cur.len() + ops.len());
    let (mut added, mut removed) = (0usize, 0usize);
    let (mut i, mut j) = (0usize, 0usize);
    while i < cur.len() && j < ops.len() {
        match cur[i].cmp(&ops[j].key()) {
            std::cmp::Ordering::Less => {
                out.push(cur[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                if let BatchOp::Insert(k) = ops[j] {
                    out.push(k);
                    added += 1;
                }
                j += 1; // a Remove of an absent key is a no-op
            }
            std::cmp::Ordering::Equal => {
                match ops[j] {
                    BatchOp::Insert(_) => out.push(cur[i]), // already present
                    BatchOp::Remove(_) => removed += 1,     // drop it
                }
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&cur[i..]);
    for op in &ops[j..] {
        if let BatchOp::Insert(k) = *op {
            out.push(k);
            added += 1;
        }
    }
    (added, removed)
}

/// Set difference `cur \ rem` into `out` (cleared first). Returns the number
/// of elements removed.
pub(crate) fn set_difference_into<K: PmaKey>(cur: &[K], rem: &[K], out: &mut Vec<K>) -> usize {
    out.clear();
    out.reserve(cur.len());
    let mut removed = 0;
    let mut j = 0;
    for &c in cur {
        while j < rem.len() && rem[j] < c {
            j += 1;
        }
        if j < rem.len() && rem[j] == c {
            removed += 1;
            j += 1;
        } else {
            out.push(c);
        }
    }
    removed
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn union_counts_new_elements_only() {
        let mut out = Vec::new();
        let added = set_union_into(&[1u64, 3, 5], &[2, 3, 6], &mut out);
        assert_eq!(out, vec![1, 2, 3, 5, 6]);
        assert_eq!(added, 2);
    }

    #[test]
    fn union_with_empty_sides() {
        let mut out = Vec::new();
        assert_eq!(set_union_into::<u64>(&[], &[1, 2], &mut out), 2);
        assert_eq!(out, vec![1, 2]);
        assert_eq!(set_union_into::<u64>(&[1, 2], &[], &mut out), 0);
        assert_eq!(out, vec![1, 2]);
        assert_eq!(set_union_into::<u64>(&[], &[], &mut out), 0);
        assert!(out.is_empty());
    }

    #[test]
    fn difference_counts_removed_only() {
        let mut out = Vec::new();
        let removed = set_difference_into(&[1u64, 2, 3, 5], &[2, 4, 5, 9], &mut out);
        assert_eq!(out, vec![1, 3]);
        assert_eq!(removed, 2);
    }

    #[test]
    fn difference_with_empty_sides() {
        let mut out = Vec::new();
        assert_eq!(set_difference_into::<u64>(&[], &[1], &mut out), 0);
        assert!(out.is_empty());
        assert_eq!(set_difference_into::<u64>(&[7, 8], &[], &mut out), 0);
        assert_eq!(out, vec![7, 8]);
    }

    #[test]
    fn apply_ops_mixes_union_and_difference() {
        use cpma_api::BatchOp::{Insert, Remove};
        let mut out = Vec::new();
        let (added, removed) = apply_ops_into(
            &[1u64, 3, 5, 7],
            &[Insert(0), Remove(3), Insert(5), Insert(6), Remove(9)],
            &mut out,
        );
        assert_eq!(out, vec![0, 1, 5, 6, 7]);
        assert_eq!((added, removed), (2, 1));
        // Pure-insert and pure-remove runs degenerate to union/difference.
        let (added, removed) = apply_ops_into(&[2u64, 4], &[Insert(2), Insert(3)], &mut out);
        assert_eq!(out, vec![2, 3, 4]);
        assert_eq!((added, removed), (1, 0));
        let (added, removed) = apply_ops_into(&[2u64, 4], &[Remove(2), Remove(4)], &mut out);
        assert!(out.is_empty());
        assert_eq!((added, removed), (0, 2));
        let (added, removed) = apply_ops_into::<u64>(&[], &[Insert(9), Remove(10)], &mut out);
        assert_eq!(out, vec![9]);
        assert_eq!((added, removed), (1, 0));
    }

    #[test]
    fn union_result_is_sorted_unique() {
        let mut out = Vec::new();
        set_union_into(&[10u64, 20, 30], &[5, 10, 15, 20, 25, 35], &mut out);
        assert!(out.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(out.len(), 7);
    }
}
