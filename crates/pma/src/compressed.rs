//! Hybrid compressed leaf storage: delta byte codes (§5 of the paper) or
//! a fixed-span bitmap, chosen **per leaf** at rewrite time.
//!
//! "A CPMA leaf stores its head, or its first element, uncompressed, and
//! stores subsequent elements compressed with delta encoding and byte codes.
//! ... The density bounds in a CPMA count byte density rather than element
//! density." Units here are **bytes**. The implicit tree, the batch
//! algorithm, and search on leaf heads are untouched — that is the paper's
//! central structural claim, and it is what lets this type plug into the
//! same `PmaCore` as the uncompressed storage.
//!
//! The paper compresses every leaf the same way, which is optimal for
//! sparse runs but charges ≥ 1 byte per element no matter how dense the
//! keys are. This module extends the representation with the
//! [`crate::bitmap`] encoding: each leaf carries a one-byte tag, every
//! rewrite ([`CompressedShared::store`]) re-decides the cheaper encoding
//! under the configured [`ForceCodec`] policy, and the read paths dispatch
//! on the tag. Dense leaves get wordwise popcount range kernels and a
//! wordwise OR/ANDNOT merge path that never round-trips through a full
//! delta decode.

use crate::bitmap;
use crate::codec::{
    decode_run, decode_varint, encode_run, encoded_run_len, for_each_in_run, varint_len,
};
use crate::core::ForceCodec;
use crate::leaf::{
    apply_ops_into, set_difference_into, set_union_into, MergeOutcome, OpsOutcome, SharedLeaves,
};
use crate::{stats, LeafStorage};
use cpma_api::{BatchOp, PersistError};
use std::marker::PhantomData;

/// Per-leaf tag: LEB128 delta run (the paper's encoding).
const TAG_DELTA: u8 = 0;
/// Per-leaf tag: fixed-span bitmap ([`crate::bitmap`]).
const TAG_BITMAP: u8 = 1;

/// The instance-level codec decision knobs (mirrors the two `PmaConfig`
/// fields; stored here so the shared accessor can decide without reaching
/// back into the core).
#[derive(Clone, Copy, Debug)]
pub(crate) struct CodecPolicy {
    force: ForceCodec,
    threshold: f64,
}

impl Default for CodecPolicy {
    fn default() -> Self {
        Self {
            force: ForceCodec::Auto,
            threshold: 1.0,
        }
    }
}

/// Hysteresis band: a leaf already in bitmap form stays there up to
/// `threshold · 17/16`, one in delta form flips only below
/// `threshold · 15/16`, so leaves hovering at the boundary do not flip
/// encodings on every redistribute.
#[inline]
fn effective_threshold(threshold: f64, was_bitmap: bool) -> f64 {
    if was_bitmap {
        threshold * (17.0 / 16.0)
    } else {
        threshold * (15.0 / 16.0)
    }
}

/// Pick the encoding for a non-empty run given both exact costs. Returns
/// `(tag, units)`; `units > cap` means neither fitting choice exists and
/// the caller spills (always with delta-based unit accounting, keeping
/// density math monotone in the element count).
fn choose_codec(
    policy: CodecPolicy,
    was_bitmap: bool,
    delta_units: usize,
    bitmap_units: usize,
    cap: usize,
) -> (u8, usize) {
    match policy.force {
        ForceCodec::Delta => (TAG_DELTA, delta_units),
        ForceCodec::Bitmap => {
            if bitmap_units <= cap {
                (TAG_BITMAP, bitmap_units)
            } else {
                (TAG_DELTA, delta_units)
            }
        }
        ForceCodec::Auto => {
            let t = effective_threshold(policy.threshold, was_bitmap);
            if bitmap_units <= cap && (bitmap_units as f64) <= t * (delta_units as f64) {
                (TAG_BITMAP, bitmap_units)
            } else if delta_units <= cap || bitmap_units > cap {
                (TAG_DELTA, delta_units)
            } else {
                // The threshold prefers delta but only the bitmap fits:
                // fitting beats preference (no needless overflow).
                (TAG_BITMAP, bitmap_units)
            }
        }
    }
}

/// `prefix[i]` = summed `cost(gap)` of the first `i` elements (the head
/// element is free): `prefix[0] = prefix[1] = 0`,
/// `prefix[i+1] = prefix[i] + cost(e[i] − e[i−1])`. Computed with a
/// two-pass parallel scan for large runs (whole-array rebuilds are
/// O(n)-dominated by this).
fn cost_prefix(elems: &[u64], cost: impl Fn(u64) -> u64 + Sync) -> Vec<u64> {
    let n = elems.len();
    let mut prefix = vec![0u64; n + 1];
    const SCAN_CHUNK: usize = 1 << 15;
    if n <= SCAN_CHUNK {
        for i in 1..n {
            prefix[i + 1] = prefix[i] + cost(elems[i] - elems[i - 1]);
        }
    } else {
        use rayon::prelude::*;
        // Pass 1: local costs + per-chunk sums. prefix[i+1] holds the
        // cost of element i, chunk-local-accumulated.
        let nchunks = n.div_ceil(SCAN_CHUNK);
        let mut chunk_sums = vec![0u64; nchunks + 1];
        let sums: Vec<u64> = prefix[1..=n]
            .par_chunks_mut(SCAN_CHUNK)
            .enumerate()
            .map(|(c, chunk)| {
                let base = c * SCAN_CHUNK;
                let mut acc = 0u64;
                for (j, slot) in chunk.iter_mut().enumerate() {
                    let i = base + j; // element index whose cost this is
                    if i > 0 {
                        acc += cost(elems[i] - elems[i - 1]);
                    }
                    *slot = acc;
                }
                acc
            })
            .collect();
        for (c, s) in sums.into_iter().enumerate() {
            chunk_sums[c + 1] = chunk_sums[c] + s;
        }
        // Pass 2: add chunk offsets.
        prefix[1..=n]
            .par_chunks_mut(SCAN_CHUNK)
            .enumerate()
            .for_each(|(c, chunk)| {
                let off = chunk_sums[c];
                if off != 0 {
                    for slot in chunk.iter_mut() {
                        *slot += off;
                    }
                }
            });
    }
    prefix
}

/// Cost estimate of a run under the hybrid codec: each element charges the
/// cheaper of its delta byte code (in bits) and its bitmap span growth
/// (`gap` bits), plus the 8-byte head. A lower bound on the true per-leaf
/// minimum — capacity planning divides it by the rebuild target, and the
/// rebuild retry loop absorbs the (rare) underestimate.
fn hybrid_units_estimate(elems: &[u64]) -> usize {
    if elems.is_empty() {
        return 0;
    }
    let mut bits = 0u64;
    for w in elems.windows(2) {
        let gap = w[1] - w[0];
        bits += (varint_len(gap) as u64 * 8).min(gap);
    }
    8 + bits.div_ceil(8) as usize
}

/// The paper's delta-only split plan (exact; the density contract proof in
/// the trait docs applies to this path).
fn delta_plan_split(elems: &[u64], k: usize, leaf_units: usize) -> Vec<usize> {
    let n = elems.len();
    let mut offsets = vec![0usize; k + 1];
    offsets[k] = n;
    if n == 0 || k == 1 {
        return offsets;
    }
    let prefix = cost_prefix(elems, |gap| varint_len(gap) as u64);
    let total = prefix[n];
    // Exact encoded size of slice [a, b): 0 if empty, else raw head +
    // interior deltas.
    let bytes_of = |a: usize, b: usize| -> usize {
        if a == b {
            0
        } else {
            8 + (prefix[b] - prefix[a + 1]) as usize
        }
    };
    for j in 1..k {
        // prefix[i] is the stream cost of the first i elements, so the
        // partition point is directly the boundary element index.
        let ideal = total * j as u64 / k as u64;
        let o = prefix.partition_point(|&p| p < ideal).min(n);
        offsets[j] = o.max(offsets[j - 1]);
    }
    // Left-to-right fix-up: shrink any oversized slice by pulling its
    // right boundary left (pushing elements to the next leaf).
    for j in 0..k - 1 {
        let a = offsets[j];
        while bytes_of(a, offsets[j + 1]) > leaf_units {
            offsets[j + 1] -= 1;
        }
        if offsets[j + 1] < a {
            offsets[j + 1] = a;
        }
    }
    debug_assert!(
        bytes_of(offsets[k - 1], n) <= leaf_units,
        "last leaf overflows: caller violated the density contract"
    );
    offsets
}

/// Split plan under the hybrid codec: balance on the per-element
/// min-marginal cost, then fix up against the *exact* per-slice cost
/// `min(delta bytes, bitmap span bytes)` — O(1) per evaluation and
/// monotone in the right boundary. If balancing cannot fit the tail (the
/// min-marginal estimate is a lower bound, not exact), fall back to greedy
/// maximal prefixes, which fit whenever any k-way split fits; a still-
/// overflowing last leaf is reported by `write_leaf` and resolved by the
/// caller's capacity grow.
fn hybrid_plan_split(elems: &[u64], k: usize, leaf_units: usize) -> Vec<usize> {
    let n = elems.len();
    let mut offsets = vec![0usize; k + 1];
    offsets[k] = n;
    if n == 0 || k == 1 {
        return offsets;
    }
    let dpre = cost_prefix(elems, |gap| varint_len(gap) as u64);
    let mpre = cost_prefix(elems, |gap| (varint_len(gap) as u64 * 8).min(gap));
    let exact = |a: usize, b: usize| -> usize {
        if a == b {
            0
        } else {
            let delta = 8 + (dpre[b] - dpre[a + 1]) as usize;
            delta.min(bitmap::encoded_len(elems[a], elems[b - 1]))
        }
    };
    let total = mpre[n];
    for j in 1..k {
        let ideal = total * j as u64 / k as u64;
        let o = mpre.partition_point(|&p| p < ideal).min(n);
        offsets[j] = o.max(offsets[j - 1]);
    }
    for j in 0..k - 1 {
        let a = offsets[j];
        while offsets[j + 1] > a && exact(a, offsets[j + 1]) > leaf_units {
            offsets[j + 1] -= 1;
        }
    }
    if exact(offsets[k - 1], n) > leaf_units {
        // Greedy maximal prefixes (binary search per leaf on the monotone
        // exact cost).
        let mut a = 0usize;
        for off in offsets.iter_mut().take(k).skip(1) {
            let (mut lo, mut hi) = (a, n);
            while lo < hi {
                let mid = lo + (hi - lo).div_ceil(2);
                if exact(a, mid) <= leaf_units {
                    lo = mid;
                } else {
                    hi = mid - 1;
                }
            }
            *off = lo;
            a = lo;
        }
    }
    offsets
}

/// Append the elements a word array represents (relative to `base`) to
/// `out` (cleared first), ascending.
fn words_into_elems(base: u64, words: &[u64], out: &mut Vec<u64>) {
    out.clear();
    for (wi, &word) in words.iter().enumerate() {
        let mut w = word;
        let first = base + (wi as u64) * 64;
        while w != 0 {
            out.push(first + w.trailing_zeros() as u64);
            w &= w - 1;
        }
    }
}

/// Hybrid compressed leaves over `u64` keys. See module docs.
#[derive(Clone)]
pub struct CompressedLeaves {
    /// `num_leaves * leaf_units` bytes; leaf `i` owns
    /// `[i * leaf_units, (i+1) * leaf_units)`, valid prefix = `used[i]`.
    bytes: Vec<u8>,
    /// Occupied bytes per leaf (may exceed capacity while overflowed).
    used: Vec<u32>,
    /// Elements per leaf.
    counts: Vec<u32>,
    /// Leaf heads, duplicated out of the leaves for cache-friendly search
    /// (inherited values for empty leaves); non-decreasing.
    heads: Vec<u64>,
    /// Per-leaf codec tag ([`TAG_DELTA`] / [`TAG_BITMAP`]); empty leaves
    /// are canonically [`TAG_DELTA`].
    tags: Vec<u8>,
    /// Out-of-place buffers for overflowed leaves (batch merge only).
    overflow: Vec<Option<Box<[u64]>>>,
    leaf_units: usize,
    policy: CodecPolicy,
}

impl CompressedLeaves {
    #[inline]
    fn leaf_bytes(&self, leaf: usize) -> &[u8] {
        debug_assert!(self.overflow[leaf].is_none(), "query on overflowed leaf");
        let start = leaf * self.leaf_units;
        &self.bytes[start..start + self.used[leaf] as usize]
    }

    #[inline]
    fn is_bitmap(&self, leaf: usize) -> bool {
        self.tags[leaf] == TAG_BITMAP
    }

    /// `(delta, bitmap)` leaf counts over the non-empty leaves — the
    /// codec population the obs counters track incrementally, recomputed
    /// exactly (bench exposition and white-box tests).
    pub fn codec_census(&self) -> (usize, usize) {
        let mut delta = 0usize;
        let mut bm = 0usize;
        for leaf in 0..self.counts.len() {
            if self.counts[leaf] > 0 {
                if self.tags[leaf] == TAG_BITMAP {
                    bm += 1;
                } else {
                    delta += 1;
                }
            }
        }
        (delta, bm)
    }
}

impl LeafStorage<u64> for CompressedLeaves {
    type Shared<'a>
        = CompressedShared<'a>
    where
        Self: 'a;

    const NAME: &'static str = "CPMA";

    // ≥ 256 bytes: the redistribution fit argument needs
    // 0.1 · capacity ≥ 18 (head swap 8 B + dropped boundary delta 10 B);
    // 256 gives a comfortable margin (see leaf.rs docs and DESIGN.md).
    const MIN_LEAF_UNITS: usize = 256;
    const LEAF_ALIGN: usize = 64;
    const HEAD_UNITS: usize = 8;
    const LEAF_SCALE: usize = 8;

    // 2 was the delta-only layout (no per-leaf tag section). Never reuse.
    const CODEC_ID: u32 = 3;

    // Snapshot payload layout (all little-endian):
    //   tags    num_leaves × u8
    //   used    num_leaves × u32
    //   counts  num_leaves × u32
    //   heads   num_leaves × u64
    //   bytes   num_leaves × leaf_units  (full array; the first `used[i]`
    //           bytes of each leaf are its encoded run, the rest don't-care)
    fn payload_len(num_leaves: usize, leaf_units: usize) -> Option<usize> {
        let per_leaf = leaf_units.checked_add(1 + 4 + 4 + 8)?;
        num_leaves.checked_mul(per_leaf)
    }

    fn write_payload(&self, out: &mut Vec<u8>) {
        debug_assert!(self.overflow.iter().all(|o| o.is_none()));
        out.extend_from_slice(&self.tags);
        for &u in &self.used {
            out.extend_from_slice(&u.to_le_bytes());
        }
        for &c in &self.counts {
            out.extend_from_slice(&c.to_le_bytes());
        }
        for &h in &self.heads {
            out.extend_from_slice(&h.to_le_bytes());
        }
        out.extend_from_slice(&self.bytes);
    }

    fn read_payload(
        num_leaves: usize,
        leaf_units: usize,
        payload: &[u8],
    ) -> Result<Self, PersistError> {
        let expected = Self::payload_len(num_leaves, leaf_units)
            .filter(|&n| n == payload.len())
            .ok_or(PersistError::Truncated("cpma payload"))?;
        debug_assert_eq!(expected, payload.len());

        let tags: Vec<u8> = payload[..num_leaves].to_vec();
        let used_at = num_leaves;
        let counts_at = used_at + num_leaves * 4;
        let heads_at = counts_at + num_leaves * 4;
        let bytes_at = heads_at + num_leaves * 8;
        let used: Vec<u32> = payload[used_at..counts_at]
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
            .collect();
        let counts: Vec<u32> = payload[counts_at..heads_at]
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
            .collect();
        let heads: Vec<u64> = payload[heads_at..bytes_at]
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
            .collect();
        let bytes = payload[bytes_at..].to_vec();

        // Walk every leaf's encoded run: the search and scan paths decode
        // without bounds checks, so nothing invalid may pass.
        let mut prev_max: Option<u64> = None;
        for leaf in 0..num_leaves {
            let nbytes = used[leaf] as usize;
            let count = counts[leaf] as usize;
            if tags[leaf] > TAG_BITMAP {
                return Err(PersistError::Corrupt(format!(
                    "leaf {leaf} has unknown codec tag {}",
                    tags[leaf]
                )));
            }
            if nbytes > leaf_units {
                return Err(PersistError::Corrupt(format!(
                    "leaf {leaf} claims {nbytes} used bytes in {leaf_units}"
                )));
            }
            if leaf > 0 && heads[leaf] < heads[leaf - 1] {
                return Err(PersistError::Corrupt(format!(
                    "head array decreases at leaf {leaf}"
                )));
            }
            if count == 0 {
                if nbytes != 0 || tags[leaf] != TAG_DELTA {
                    return Err(PersistError::Corrupt(format!(
                        "empty leaf {leaf} is not in canonical form"
                    )));
                }
                continue;
            }
            let run = &bytes[leaf * leaf_units..leaf * leaf_units + nbytes];
            if nbytes < 8 {
                return Err(PersistError::Corrupt(format!(
                    "leaf {leaf} run too short for a head"
                )));
            }
            let head = u64::from_le_bytes(run[..8].try_into().unwrap());
            if heads[leaf] != head {
                return Err(PersistError::Corrupt(format!(
                    "leaf {leaf} head disagrees with its encoded run"
                )));
            }
            if prev_max.is_some_and(|p| p >= head) {
                return Err(PersistError::Corrupt(format!(
                    "leaf {leaf} overlaps its predecessor"
                )));
            }
            if tags[leaf] == TAG_BITMAP {
                // Canonical bitmap: whole words after the base, bit 0 of
                // word 0 set (base is the minimum), non-zero last word
                // (span ends at the maximum), popcount = count.
                if nbytes < 16 || !(nbytes - 8).is_multiple_of(8) {
                    return Err(PersistError::Corrupt(format!(
                        "bitmap leaf {leaf} has a ragged word array"
                    )));
                }
                let nwords = bitmap::word_count(nbytes);
                if bitmap::get_word(run, 0) & 1 == 0 {
                    return Err(PersistError::Corrupt(format!(
                        "bitmap leaf {leaf} base is not its minimum"
                    )));
                }
                if bitmap::get_word(run, nwords - 1) == 0 {
                    return Err(PersistError::Corrupt(format!(
                        "bitmap leaf {leaf} has a trailing zero word"
                    )));
                }
                if bitmap::count(run, nbytes) != count {
                    return Err(PersistError::Corrupt(format!(
                        "bitmap leaf {leaf} popcount disagrees with its element count"
                    )));
                }
                if head.checked_add((nwords as u64 - 1) * 64 + 63).is_none() {
                    return Err(PersistError::Corrupt(format!(
                        "bitmap leaf {leaf} span wraps around the key space"
                    )));
                }
                prev_max = Some(bitmap::max_elem(run, nbytes));
            } else {
                let mut cur = head;
                let mut pos = 8usize;
                for _ in 1..count {
                    let delta = checked_varint(run, &mut pos).ok_or_else(|| {
                        PersistError::Corrupt(format!("leaf {leaf} has a malformed byte code"))
                    })?;
                    cur = cur
                        .checked_add(delta)
                        .filter(|_| delta > 0)
                        .ok_or_else(|| {
                            PersistError::Corrupt(format!("leaf {leaf} deltas are not ascending"))
                        })?;
                }
                if pos != nbytes {
                    return Err(PersistError::Corrupt(format!(
                        "leaf {leaf} run length disagrees with its element count"
                    )));
                }
                prev_max = Some(cur);
            }
        }

        Ok(Self {
            bytes,
            used,
            counts,
            heads,
            tags,
            overflow: (0..num_leaves).map(|_| None).collect(),
            leaf_units,
            policy: CodecPolicy::default(),
        })
    }

    fn with_geometry(num_leaves: usize, leaf_units: usize) -> Self {
        assert!(num_leaves >= 1);
        assert!(leaf_units >= Self::MIN_LEAF_UNITS);
        Self {
            bytes: vec![0u8; num_leaves * leaf_units],
            used: vec![0; num_leaves],
            counts: vec![0; num_leaves],
            heads: vec![0; num_leaves],
            tags: vec![TAG_DELTA; num_leaves],
            overflow: (0..num_leaves).map(|_| None).collect(),
            leaf_units,
            policy: CodecPolicy::default(),
        }
    }

    #[inline]
    fn num_leaves(&self) -> usize {
        self.counts.len()
    }

    #[inline]
    fn leaf_units(&self) -> usize {
        self.leaf_units
    }

    #[inline]
    fn units_used(&self, leaf: usize) -> usize {
        self.used[leaf] as usize
    }

    #[inline]
    fn count(&self, leaf: usize) -> usize {
        self.counts[leaf] as usize
    }

    #[inline]
    fn head(&self, leaf: usize) -> u64 {
        self.heads[leaf]
    }

    #[inline]
    fn is_overflowed(&self, leaf: usize) -> bool {
        self.overflow[leaf].is_some()
    }

    fn size_bytes(&self) -> usize {
        self.bytes.len()
            + self.used.len() * 4
            + self.counts.len() * 4
            + self.heads.len() * 8
            + self.tags.len()
            + self.overflow.len() * std::mem::size_of::<Option<Box<[u64]>>>()
    }

    fn leaf_successor(&self, leaf: usize, key: u64) -> Option<u64> {
        let buf = self.leaf_bytes(leaf);
        if self.is_bitmap(leaf) {
            stats::record_read(buf.len());
            return bitmap::successor_inclusive(buf, buf.len(), key);
        }
        stats::record_read(buf.len());
        let mut found = None;
        for_each_in_run(buf, self.counts[leaf] as usize, |e| {
            if e >= key {
                found = Some(e);
                false
            } else {
                true
            }
        });
        found
    }

    fn leaf_contains(&self, leaf: usize, key: u64) -> bool {
        let cnt = self.counts[leaf] as usize;
        if cnt == 0 {
            return false;
        }
        let buf = self.leaf_bytes(leaf);
        if self.is_bitmap(leaf) {
            // One base load + one word load.
            stats::record_read(16);
            return bitmap::contains(buf, buf.len(), key);
        }
        // Membership needs no successor value: decode deltas only until the
        // running value reaches `key`, and account only the bytes consumed
        // (the full-run `leaf_successor` path charges the whole leaf).
        let mut cur = u64::from_le_bytes(buf[..8].try_into().unwrap());
        if key <= cur {
            stats::record_read(8);
            return key == cur;
        }
        let mut pos = 8usize;
        for _ in 1..cnt {
            let (delta, used) = decode_varint(&buf[pos..]);
            pos += used;
            cur += delta;
            if cur >= key {
                stats::record_read(pos);
                return cur == key;
            }
        }
        stats::record_read(pos);
        false
    }

    #[inline]
    fn prefetch_leaf(&self, leaf: usize) {
        // Both codecs walk the run front to back, so pull the first two
        // lines: the head/base plus the first stretch of codes or words.
        let at = leaf * self.leaf_units;
        crate::search::prefetch_read(&self.bytes[at]);
        if self.leaf_units > 64 {
            crate::search::prefetch_read(&self.bytes[at + 64]);
        }
    }

    fn leaf_max(&self, leaf: usize) -> Option<u64> {
        // Overflow-aware: the redistribute phase reads neighbours that may
        // still be spilled.
        if let Some(buf) = self.overflow[leaf].as_deref() {
            return buf.last().copied();
        }
        let cnt = self.counts[leaf] as usize;
        if cnt == 0 {
            return None;
        }
        let buf = self.leaf_bytes(leaf);
        if self.is_bitmap(leaf) {
            return Some(bitmap::max_elem(buf, buf.len()));
        }
        let mut last = 0;
        for_each_in_run(buf, cnt, |e| {
            last = e;
            true
        });
        Some(last)
    }

    fn for_each_in_leaf(&self, leaf: usize, f: &mut dyn FnMut(u64) -> bool) -> bool {
        let buf = self.leaf_bytes(leaf);
        stats::record_read(buf.len());
        if self.is_bitmap(leaf) {
            return bitmap::for_each(buf, buf.len(), &mut *f);
        }
        for_each_in_run(buf, self.counts[leaf] as usize, f)
    }

    fn for_each_in_leaf_from(
        &self,
        leaf: usize,
        start: u64,
        f: &mut dyn FnMut(u64) -> bool,
    ) -> bool {
        let buf = self.leaf_bytes(leaf);
        stats::record_read(buf.len());
        if self.is_bitmap(leaf) {
            return bitmap::for_each_from(buf, buf.len(), start, &mut *f);
        }
        for_each_in_run(buf, self.counts[leaf] as usize, |e| {
            if e < start {
                true
            } else {
                f(e)
            }
        })
    }

    fn collect_leaf(&self, leaf: usize, out: &mut Vec<u64>) {
        if let Some(buf) = self.overflow[leaf].as_deref() {
            out.extend_from_slice(buf);
            return;
        }
        let buf = self.leaf_bytes(leaf);
        if self.is_bitmap(leaf) {
            bitmap::decode_into(buf, buf.len(), out);
            return;
        }
        decode_run(buf, self.counts[leaf] as usize, out);
    }

    fn leaf_sum(&self, leaf: usize) -> u64 {
        let buf = self.leaf_bytes(leaf);
        stats::record_read(buf.len());
        if self.is_bitmap(leaf) {
            return bitmap::sum(buf, buf.len());
        }
        let mut sum = 0u64;
        for_each_in_run(buf, self.counts[leaf] as usize, |e| {
            sum = sum.wrapping_add(e);
            true
        });
        sum
    }

    fn leaf_range_sum(&self, leaf: usize, start: u64, end: u64) -> u64 {
        if self.counts[leaf] == 0 || start >= end {
            return 0;
        }
        let buf = self.leaf_bytes(leaf);
        stats::record_read(buf.len());
        if self.is_bitmap(leaf) {
            // Wordwise: masked boundary words, popcount kernels inside.
            return bitmap::range_sum(buf, buf.len(), start, end);
        }
        let mut acc = 0u64;
        for_each_in_run(buf, self.counts[leaf] as usize, |e| {
            if e >= end {
                return false;
            }
            if e >= start {
                acc = acc.wrapping_add(e);
            }
            true
        });
        acc
    }

    #[inline]
    fn units_for(elems: &[u64]) -> usize {
        hybrid_units_estimate(elems)
    }

    fn plan_split(elems: &[u64], k: usize, leaf_units: usize) -> Vec<usize> {
        hybrid_plan_split(elems, k, leaf_units)
    }

    fn set_codec_policy(&mut self, force: ForceCodec, threshold: f64) {
        self.policy = CodecPolicy { force, threshold };
    }

    fn units_for_with(&self, elems: &[u64]) -> usize {
        match self.policy.force {
            ForceCodec::Delta => encoded_run_len(elems, 8),
            _ => hybrid_units_estimate(elems),
        }
    }

    fn plan_split_with(&self, elems: &[u64], k: usize, leaf_units: usize) -> Vec<usize> {
        match self.policy.force {
            ForceCodec::Delta => delta_plan_split(elems, k, leaf_units),
            _ => hybrid_plan_split(elems, k, leaf_units),
        }
    }

    fn shared(&mut self) -> CompressedShared<'_> {
        CompressedShared {
            bytes: self.bytes.as_mut_ptr(),
            used: self.used.as_mut_ptr(),
            counts: self.counts.as_mut_ptr(),
            heads: self.heads.as_mut_ptr(),
            tags: self.tags.as_mut_ptr(),
            overflow: self.overflow.as_mut_ptr(),
            leaf_units: self.leaf_units,
            num_leaves: self.counts.len(),
            policy: self.policy,
            _marker: PhantomData,
        }
    }
}

/// Shared-disjoint accessor for [`CompressedLeaves`]; see
/// [`SharedLeaves`] for the safety contract.
pub struct CompressedShared<'a> {
    bytes: *mut u8,
    used: *mut u32,
    counts: *mut u32,
    heads: *mut u64,
    tags: *mut u8,
    overflow: *mut Option<Box<[u64]>>,
    leaf_units: usize,
    num_leaves: usize,
    policy: CodecPolicy,
    _marker: PhantomData<&'a mut CompressedLeaves>,
}

impl Clone for CompressedShared<'_> {
    fn clone(&self) -> Self {
        *self
    }
}
impl Copy for CompressedShared<'_> {}

// SAFETY: used only under the SharedLeaves contract (disjoint leaves);
// buffers outlive 'a.
unsafe impl Send for CompressedShared<'_> {}
unsafe impl Sync for CompressedShared<'_> {}

impl CompressedShared<'_> {
    #[inline]
    #[allow(clippy::mut_from_ref)] // shared-disjoint contract: see trait docs
    unsafe fn leaf_buf(&self, leaf: usize, len: usize) -> &mut [u8] {
        debug_assert!(leaf < self.num_leaves && len <= self.leaf_units);
        std::slice::from_raw_parts_mut(self.bytes.add(leaf * self.leaf_units), len)
    }

    #[inline]
    unsafe fn leaf_buf_read(&self, leaf: usize, len: usize) -> &[u8] {
        debug_assert!(leaf < self.num_leaves && len <= self.leaf_units);
        std::slice::from_raw_parts(self.bytes.add(leaf * self.leaf_units), len)
    }

    #[inline]
    unsafe fn current(&self, leaf: usize, out: &mut Vec<u64>) -> usize {
        let cnt = *self.counts.add(leaf) as usize;
        let units = *self.used.add(leaf) as usize;
        out.clear();
        if let Some(buf) = (*self.overflow.add(leaf)).as_deref() {
            out.extend_from_slice(buf);
        } else if cnt > 0 {
            let buf = self.leaf_buf_read(leaf, units);
            if *self.tags.add(leaf) == TAG_BITMAP {
                bitmap::decode_into(buf, units, out);
            } else {
                decode_run(buf, cnt, out);
            }
        }
        units
    }

    /// Overwrite `leaf` with `elems`, re-deciding the codec under the
    /// instance policy (with hysteresis against the leaf's current tag).
    /// Spills with delta-based accounting when neither encoding fits.
    #[inline]
    unsafe fn store(&self, leaf: usize, elems: &[u64], inherited_head: u64) -> (usize, bool) {
        let was_bitmap = *self.tags.add(leaf) == TAG_BITMAP;
        let had_elems = *self.counts.add(leaf) > 0;
        if elems.is_empty() {
            *self.overflow.add(leaf) = None;
            *self.counts.add(leaf) = 0;
            *self.used.add(leaf) = 0;
            *self.tags.add(leaf) = TAG_DELTA;
            *self.heads.add(leaf) = inherited_head;
            return (0, false);
        }
        let delta_units = encoded_run_len(elems, 8);
        let bitmap_units = bitmap::encoded_len(elems[0], *elems.last().unwrap());
        let (tag, units) = choose_codec(
            self.policy,
            was_bitmap,
            delta_units,
            bitmap_units,
            self.leaf_units,
        );
        if units <= self.leaf_units {
            stats::record_write(units);
            if tag == TAG_BITMAP {
                bitmap::encode_from_sorted(elems, self.leaf_buf(leaf, units));
            } else {
                encode_run(elems, self.leaf_buf(leaf, units));
            }
            *self.overflow.add(leaf) = None;
            *self.counts.add(leaf) = elems.len() as u32;
            *self.used.add(leaf) = units as u32;
            *self.heads.add(leaf) = elems[0];
            *self.tags.add(leaf) = tag;
            let c = stats::codec_counters();
            if tag == TAG_BITMAP {
                c.bitmap_writes.inc();
            } else {
                c.delta_writes.inc();
            }
            if had_elems && was_bitmap != (tag == TAG_BITMAP) {
                c.flips.inc();
            }
            (units, false)
        } else {
            stats::record_write(delta_units);
            *self.overflow.add(leaf) = Some(elems.to_vec().into_boxed_slice());
            *self.counts.add(leaf) = elems.len() as u32;
            *self.used.add(leaf) = delta_units as u32;
            *self.tags.add(leaf) = TAG_DELTA;
            *self.heads.add(leaf) = elems[0];
            (delta_units, true)
        }
    }

    /// May the wordwise path commit a bitmap of `cand_units` bytes holding
    /// `count` elements without consulting the exact delta cost?
    /// `8 + count − 1` lower-bounds any delta run of `count` elements, so
    /// a yes here implies [`Self::store`] would pick the bitmap too — both
    /// paths stay byte-identical.
    #[inline]
    fn commit_wordwise(&self, cand_units: usize, count: usize) -> bool {
        match self.policy.force {
            ForceCodec::Bitmap => true,
            ForceCodec::Delta => false,
            ForceCodec::Auto => {
                let lb = (8 + count - 1) as f64;
                cand_units as f64 <= effective_threshold(self.policy.threshold, true) * lb
            }
        }
    }

    /// Commit a normalized word array wordwise: raw write, no re-encode.
    unsafe fn write_bitmap(&self, leaf: usize, base: u64, words: &[u64], count: usize) -> usize {
        let used = bitmap::BASE_BYTES + words.len() * 8;
        debug_assert!(used <= self.leaf_units);
        bitmap::write_words(base, words, self.leaf_buf(leaf, used));
        stats::record_write(used);
        *self.overflow.add(leaf) = None;
        *self.counts.add(leaf) = count as u32;
        *self.used.add(leaf) = used as u32;
        *self.heads.add(leaf) = base;
        *self.tags.add(leaf) = TAG_BITMAP;
        stats::codec_counters().bitmap_writes.inc();
        used
    }

    /// Mirror of `store(leaf, &[], head)` for the wordwise paths: an
    /// emptied leaf keeps its old head as the inherited value.
    unsafe fn clear_leaf(&self, leaf: usize) {
        *self.overflow.add(leaf) = None;
        *self.counts.add(leaf) = 0;
        *self.used.add(leaf) = 0;
        *self.tags.add(leaf) = TAG_DELTA;
    }

    /// Wordwise union into a bitmap leaf: OR the existing words (rebased if
    /// the batch extends the span downward) and set one bit per new key —
    /// no delta decode, no re-encode. Falls back to the scalar path when
    /// the merged span outgrows the leaf or the bitmap may no longer be
    /// the cheaper codec.
    unsafe fn merge_into_bitmap(
        &self,
        leaf: usize,
        add: &[u64],
        scratch: &mut Vec<u64>,
    ) -> MergeOutcome {
        let old_units = *self.used.add(leaf) as usize;
        let old_count = *self.counts.add(leaf) as usize;
        stats::record_read(old_units);
        let buf = self.leaf_buf_read(leaf, old_units);
        let old_base = bitmap::base_of(buf);
        let old_max = bitmap::max_elem(buf, old_units);
        let new_base = old_base.min(add[0]);
        let new_max = old_max.max(*add.last().unwrap());
        let cand_units = bitmap::encoded_len(new_base, new_max);
        if cand_units > self.leaf_units {
            // Span outgrew the leaf: decode and take the scalar path.
            let mut cur = Vec::new();
            bitmap::decode_into(buf, old_units, &mut cur);
            let added = set_union_into(&cur, add, scratch);
            let (new_units, overflowed) = self.store(leaf, scratch, *self.heads.add(leaf));
            return MergeOutcome {
                delta_count: added,
                delta_units: new_units as isize - old_units as isize,
                overflowed,
            };
        }
        let mut old_words = Vec::new();
        bitmap::read_words(buf, old_units, &mut old_words);
        let mut words = vec![0u64; bitmap::span_words(new_base, new_max)];
        bitmap::or_shifted(&old_words, old_base - new_base, &mut words);
        let mut added = 0usize;
        for &k in add {
            if bitmap::set_bit(&mut words, k - new_base) {
                added += 1;
            }
        }
        let count = old_count + added;
        if self.commit_wordwise(cand_units, count) {
            let used = self.write_bitmap(leaf, new_base, &words, count);
            return MergeOutcome {
                delta_count: added,
                delta_units: used as isize - old_units as isize,
                overflowed: false,
            };
        }
        // Uncertain winner: materialize and let `store` decide exactly.
        words_into_elems(new_base, &words, scratch);
        let (new_units, overflowed) = self.store(leaf, scratch, *self.heads.add(leaf));
        MergeOutcome {
            delta_count: added,
            delta_units: new_units as isize - old_units as isize,
            overflowed,
        }
    }

    /// Wordwise difference on a bitmap leaf: clear one bit per present key
    /// and re-normalize.
    unsafe fn remove_from_bitmap(
        &self,
        leaf: usize,
        rem: &[u64],
        scratch: &mut Vec<u64>,
    ) -> MergeOutcome {
        let old_units = *self.used.add(leaf) as usize;
        let old_count = *self.counts.add(leaf) as usize;
        stats::record_read(old_units);
        let buf = self.leaf_buf_read(leaf, old_units);
        let base = bitmap::base_of(buf);
        let span_bits = (bitmap::word_count(old_units) as u64) * 64;
        let mut words = Vec::new();
        bitmap::read_words(buf, old_units, &mut words);
        let mut removed = 0usize;
        for &k in rem {
            if k >= base && k - base < span_bits && bitmap::clear_bit(&mut words, k - base) {
                removed += 1;
            }
        }
        if removed == 0 {
            return MergeOutcome::default();
        }
        let count = old_count - removed;
        if count == 0 {
            self.clear_leaf(leaf);
            return MergeOutcome {
                delta_count: removed,
                delta_units: -(old_units as isize),
                overflowed: false,
            };
        }
        let shift = bitmap::normalize(&mut words);
        let new_base = base + shift;
        let cand_units = bitmap::BASE_BYTES + words.len() * 8;
        if self.commit_wordwise(cand_units, count) {
            let used = self.write_bitmap(leaf, new_base, &words, count);
            return MergeOutcome {
                delta_count: removed,
                delta_units: used as isize - old_units as isize,
                overflowed: false,
            };
        }
        words_into_elems(new_base, &words, scratch);
        let (new_units, overflowed) = self.store(leaf, scratch, *self.heads.add(leaf));
        debug_assert!(!overflowed);
        MergeOutcome {
            delta_count: removed,
            delta_units: new_units as isize - old_units as isize,
            overflowed: false,
        }
    }

    /// Wordwise mixed run on a bitmap leaf: one pass of set-bit (insert)
    /// and clear-bit (remove) — the OR/ANDNOT three-finger analogue.
    unsafe fn merge_ops_into_bitmap(
        &self,
        leaf: usize,
        ops: &[BatchOp<u64>],
        scratch: &mut Vec<u64>,
    ) -> OpsOutcome {
        let old_units = *self.used.add(leaf) as usize;
        let old_count = *self.counts.add(leaf) as usize;
        stats::record_read(old_units);
        let buf = self.leaf_buf_read(leaf, old_units);
        let old_base = bitmap::base_of(buf);
        let old_max = bitmap::max_elem(buf, old_units);
        let (mut ins_min, mut ins_max, mut any_ins) = (u64::MAX, 0u64, false);
        for op in ops {
            if let BatchOp::Insert(k) = *op {
                if !any_ins {
                    ins_min = k;
                    any_ins = true;
                }
                ins_max = k; // ops are ascending
            }
        }
        let new_base = if any_ins {
            old_base.min(ins_min)
        } else {
            old_base
        };
        let new_max = if any_ins {
            old_max.max(ins_max)
        } else {
            old_max
        };
        let cand_units = bitmap::encoded_len(new_base, new_max);
        if cand_units > self.leaf_units {
            let mut cur = Vec::new();
            bitmap::decode_into(buf, old_units, &mut cur);
            let (added, removed) = apply_ops_into(&cur, ops, scratch);
            if added == 0 && removed == 0 {
                return OpsOutcome::default();
            }
            let (new_units, overflowed) = self.store(leaf, scratch, *self.heads.add(leaf));
            return OpsOutcome {
                added,
                removed,
                delta_units: new_units as isize - old_units as isize,
                overflowed,
            };
        }
        let mut old_words = Vec::new();
        bitmap::read_words(buf, old_units, &mut old_words);
        let mut words = vec![0u64; bitmap::span_words(new_base, new_max)];
        bitmap::or_shifted(&old_words, old_base - new_base, &mut words);
        let span_bits = (words.len() as u64) * 64;
        let (mut added, mut removed) = (0usize, 0usize);
        for op in ops {
            match *op {
                BatchOp::Insert(k) => {
                    if bitmap::set_bit(&mut words, k - new_base) {
                        added += 1;
                    }
                }
                BatchOp::Remove(k) => {
                    if k >= new_base
                        && k - new_base < span_bits
                        && bitmap::clear_bit(&mut words, k - new_base)
                    {
                        removed += 1;
                    }
                }
            }
        }
        if added == 0 && removed == 0 {
            return OpsOutcome::default();
        }
        let count = old_count + added - removed;
        if count == 0 {
            self.clear_leaf(leaf);
            return OpsOutcome {
                added,
                removed,
                delta_units: -(old_units as isize),
                overflowed: false,
            };
        }
        let shift = bitmap::normalize(&mut words);
        let base = new_base + shift;
        let cand2 = bitmap::BASE_BYTES + words.len() * 8;
        if self.commit_wordwise(cand2, count) {
            let used = self.write_bitmap(leaf, base, &words, count);
            return OpsOutcome {
                added,
                removed,
                delta_units: used as isize - old_units as isize,
                overflowed: false,
            };
        }
        words_into_elems(base, &words, scratch);
        let (new_units, overflowed) = self.store(leaf, scratch, *self.heads.add(leaf));
        OpsOutcome {
            added,
            removed,
            delta_units: new_units as isize - old_units as isize,
            overflowed,
        }
    }
}

impl SharedLeaves<u64> for CompressedShared<'_> {
    unsafe fn merge_into_leaf(
        &self,
        leaf: usize,
        add: &[u64],
        scratch: &mut Vec<u64>,
    ) -> MergeOutcome {
        if !add.is_empty()
            && *self.tags.add(leaf) == TAG_BITMAP
            && (*self.overflow.add(leaf)).is_none()
        {
            return self.merge_into_bitmap(leaf, add, scratch);
        }
        let mut cur = Vec::new();
        let old_units = self.current(leaf, &mut cur);
        stats::record_read(old_units);
        let added = set_union_into(&cur, add, scratch);
        let (new_units, overflowed) = self.store(leaf, scratch, *self.heads.add(leaf));
        MergeOutcome {
            delta_count: added,
            delta_units: new_units as isize - old_units as isize,
            overflowed,
        }
    }

    unsafe fn remove_from_leaf(
        &self,
        leaf: usize,
        rem: &[u64],
        scratch: &mut Vec<u64>,
    ) -> MergeOutcome {
        if !rem.is_empty()
            && *self.tags.add(leaf) == TAG_BITMAP
            && (*self.overflow.add(leaf)).is_none()
        {
            return self.remove_from_bitmap(leaf, rem, scratch);
        }
        let mut cur = Vec::new();
        let old_units = self.current(leaf, &mut cur);
        stats::record_read(old_units);
        let removed = set_difference_into(&cur, rem, scratch);
        if removed == 0 {
            return MergeOutcome::default();
        }
        let (new_units, overflowed) = self.store(leaf, scratch, *self.heads.add(leaf));
        debug_assert!(!overflowed);
        MergeOutcome {
            delta_count: removed,
            delta_units: new_units as isize - old_units as isize,
            overflowed: false,
        }
    }

    unsafe fn merge_ops_into_leaf(
        &self,
        leaf: usize,
        ops: &[BatchOp<u64>],
        scratch: &mut Vec<u64>,
    ) -> OpsOutcome {
        if !ops.is_empty()
            && *self.tags.add(leaf) == TAG_BITMAP
            && (*self.overflow.add(leaf)).is_none()
        {
            return self.merge_ops_into_bitmap(leaf, ops, scratch);
        }
        let mut cur = Vec::new();
        let old_units = self.current(leaf, &mut cur);
        stats::record_read(old_units);
        let (added, removed) = apply_ops_into(&cur, ops, scratch);
        if added == 0 && removed == 0 {
            return OpsOutcome::default();
        }
        let (new_units, overflowed) = self.store(leaf, scratch, *self.heads.add(leaf));
        OpsOutcome {
            added,
            removed,
            delta_units: new_units as isize - old_units as isize,
            overflowed,
        }
    }

    unsafe fn write_leaf(&self, leaf: usize, elems: &[u64], inherited_head: u64) -> usize {
        // May overflow when a hybrid split plan had to leave an oversized
        // tail; the caller detects it and grows the capacity.
        let (units, _overflowed) = self.store(leaf, elems, inherited_head);
        units
    }

    unsafe fn collect_leaf(&self, leaf: usize, out: &mut Vec<u64>) {
        let units = self.current_units(leaf);
        stats::record_read(units);
        let mut tmp = Vec::new();
        self.current(leaf, &mut tmp);
        out.extend_from_slice(&tmp);
    }

    unsafe fn units_used(&self, leaf: usize) -> usize {
        *self.used.add(leaf) as usize
    }

    unsafe fn count(&self, leaf: usize) -> usize {
        *self.counts.add(leaf) as usize
    }

    unsafe fn set_inherited_head(&self, leaf: usize, head: u64) {
        debug_assert_eq!(*self.counts.add(leaf), 0);
        *self.heads.add(leaf) = head;
    }
}

impl CompressedShared<'_> {
    #[inline]
    unsafe fn current_units(&self, leaf: usize) -> usize {
        *self.used.add(leaf) as usize
    }
}

/// Bounds- and overflow-checked LEB128 decode for snapshot validation.
/// Unlike `codec::decode_varint` (which trusts its input — it runs on
/// runs this module encoded itself), this never reads past `buf` and
/// rejects encodings that do not fit a `u64`.
fn checked_varint(buf: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let &byte = buf.get(*pos)?;
        *pos += 1;
        let part = (byte & 0x7f) as u64;
        if shift >= 64 || (shift > 0 && part >> (64 - shift) != 0) {
            return None; // would overflow u64
        }
        v |= part << shift;
        if byte & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store(leaves: usize) -> CompressedLeaves {
        CompressedLeaves::with_geometry(leaves, 256)
    }

    fn delta_store(leaves: usize) -> CompressedLeaves {
        let mut s = store(leaves);
        s.set_codec_policy(ForceCodec::Delta, 1.0);
        s
    }

    /// Exact hybrid cost of a slice as one leaf (what `store` would use).
    fn hybrid_cost(elems: &[u64]) -> usize {
        if elems.is_empty() {
            return 0;
        }
        encoded_run_len(elems, 8).min(bitmap::encoded_len(elems[0], *elems.last().unwrap()))
    }

    #[test]
    fn merge_roundtrip() {
        let mut s = store(2);
        let mut scratch = Vec::new();
        let elems = vec![100u64, 105, 1000, 1 << 40];
        let out = unsafe { s.shared().merge_into_leaf(0, &elems, &mut scratch) };
        assert_eq!(out.delta_count, 4);
        assert!(!out.overflowed);
        assert_eq!(s.count(0), 4);
        assert_eq!(s.head(0), 100);
        assert_eq!(s.units_used(0), encoded_run_len(&elems, 8));
        let mut v = Vec::new();
        s.collect_leaf(0, &mut v);
        assert_eq!(v, elems);
        assert!(s.leaf_contains(0, 1000));
        assert!(!s.leaf_contains(0, 101));
        assert_eq!(s.leaf_successor(0, 106), Some(1000));
        assert_eq!(s.leaf_max(0), Some(1 << 40));
        assert_eq!(s.leaf_sum(0), 100 + 105 + 1000 + (1u64 << 40));
    }

    #[test]
    fn incremental_merges_accumulate() {
        let mut s = store(1);
        let mut scratch = Vec::new();
        unsafe {
            let sh = s.shared();
            sh.merge_into_leaf(0, &[10, 30], &mut scratch);
            let out = sh.merge_into_leaf(0, &[10, 20, 40], &mut scratch);
            assert_eq!(out.delta_count, 2);
        }
        let mut v = Vec::new();
        s.collect_leaf(0, &mut v);
        assert_eq!(v, vec![10, 20, 30, 40]);
    }

    #[test]
    fn overflow_on_oversized_merge() {
        // Forced-delta policy: the dense run must spill instead of
        // flipping to the (much cheaper) bitmap encoding.
        let mut s = delta_store(1);
        let mut scratch = Vec::new();
        // 300 consecutive values: 8 + 299 bytes > 256.
        let big: Vec<u64> = (0..300).collect();
        let out = unsafe { s.shared().merge_into_leaf(0, &big, &mut scratch) };
        assert!(out.overflowed);
        assert!(s.is_overflowed(0));
        assert_eq!(s.units_used(0), 8 + 299);
        let mut v = Vec::new();
        unsafe { s.shared().collect_leaf(0, &mut v) };
        assert_eq!(v, big);
    }

    #[test]
    fn auto_picks_bitmap_for_dense_and_delta_for_sparse() {
        let mut s = store(2);
        let mut scratch = Vec::new();
        let dense: Vec<u64> = (5000..5300).collect(); // delta 307 B, bitmap 48 B
        let sparse: Vec<u64> = (0..20).map(|i| 1 << (20 + i)).collect();
        unsafe {
            let sh = s.shared();
            let out = sh.merge_into_leaf(0, &dense, &mut scratch);
            assert!(!out.overflowed);
            assert_eq!(out.delta_units, bitmap::encoded_len(5000, 5299) as isize);
            sh.merge_into_leaf(1, &sparse, &mut scratch);
        }
        assert!(s.is_bitmap(0));
        assert!(!s.is_bitmap(1));
        assert_eq!(s.codec_census(), (1, 1));
        assert_eq!(s.units_used(0), bitmap::encoded_len(5000, 5299));
        // Read paths agree with the element set.
        let mut v = Vec::new();
        s.collect_leaf(0, &mut v);
        assert_eq!(v, dense);
        assert!(s.leaf_contains(0, 5123));
        assert!(!s.leaf_contains(0, 4999));
        assert_eq!(s.leaf_successor(0, 5299), Some(5299));
        assert_eq!(s.leaf_successor(0, 5300), None);
        assert_eq!(s.leaf_max(0), Some(5299));
        let naive: u64 = dense.iter().sum();
        assert_eq!(s.leaf_sum(0), naive);
        let naive_rng: u64 = dense.iter().filter(|&&e| (5100..5200).contains(&e)).sum();
        assert_eq!(s.leaf_range_sum(0, 5100, 5200), naive_rng);
    }

    #[test]
    fn forced_bitmap_falls_back_to_delta_on_wide_spans() {
        let mut s = store(1);
        s.set_codec_policy(ForceCodec::Bitmap, 1.0);
        let mut scratch = Vec::new();
        let sparse: Vec<u64> = (0..10).map(|i| i << 40).collect();
        let out = unsafe { s.shared().merge_into_leaf(0, &sparse, &mut scratch) };
        assert!(!out.overflowed);
        assert!(!s.is_bitmap(0)); // bitmap would be astronomically large
        let mut v = Vec::new();
        s.collect_leaf(0, &mut v);
        assert_eq!(v, sparse);
    }

    #[test]
    fn wordwise_merge_matches_scalar_union() {
        // Same batch through a bitmap leaf (wordwise path) and a forced-
        // delta leaf (scalar path) must produce identical element sets and
        // consistent MergeOutcome accounting.
        let mut hybrid = store(1);
        let mut delta = delta_store(1);
        let mut scratch = Vec::new();
        let seed: Vec<u64> = (1000..1150).collect();
        let add: Vec<u64> = (900..1100).step_by(3).collect(); // extends base downward
        unsafe {
            hybrid.shared().merge_into_leaf(0, &seed, &mut scratch);
            assert!(hybrid.is_bitmap(0));
            let hw = hybrid.shared().merge_into_leaf(0, &add, &mut scratch);
            delta.shared().merge_into_leaf(0, &seed, &mut scratch);
            let dw = delta.shared().merge_into_leaf(0, &add, &mut scratch);
            assert_eq!(hw.delta_count, dw.delta_count);
            assert!(!hw.overflowed);
        }
        let (mut hv, mut dv) = (Vec::new(), Vec::new());
        hybrid.collect_leaf(0, &mut hv);
        delta.collect_leaf(0, &mut dv);
        assert_eq!(hv, dv);
        assert_eq!(hybrid.count(0), hv.len());
        // Unit accounting must match the stored encoding exactly.
        assert_eq!(hybrid.units_used(0), hybrid_cost(&hv));
    }

    #[test]
    fn wordwise_remove_renormalizes_base() {
        let mut s = store(1);
        let mut scratch = Vec::new();
        let seed: Vec<u64> = (640..940).collect();
        unsafe {
            s.shared().merge_into_leaf(0, &seed, &mut scratch);
            assert!(s.is_bitmap(0));
            // Remove the low block: base must slide up to 768 and the word
            // array must shrink.
            let rem: Vec<u64> = (600..768).collect();
            let out = s.shared().remove_from_leaf(0, &rem, &mut scratch);
            assert_eq!(out.delta_count, 128);
            assert!(!out.overflowed);
        }
        assert_eq!(s.head(0), 768);
        assert_eq!(s.count(0), 172);
        let mut v = Vec::new();
        s.collect_leaf(0, &mut v);
        assert_eq!(v, (768..940).collect::<Vec<u64>>());
        assert_eq!(s.units_used(0), bitmap::encoded_len(768, 939));
        // Removing everything keeps the head (inherited value).
        unsafe {
            let all: Vec<u64> = (0..1000).collect();
            s.shared().remove_from_leaf(0, &all, &mut scratch);
        }
        assert_eq!(s.count(0), 0);
        assert_eq!(s.units_used(0), 0);
        assert_eq!(s.head(0), 768);
    }

    #[test]
    fn wordwise_ops_accounting() {
        use cpma_api::BatchOp::{Insert, Remove};
        let mut s = store(1);
        let mut scratch = Vec::new();
        let seed: Vec<u64> = (2000..2200).collect();
        unsafe {
            s.shared().merge_into_leaf(0, &seed, &mut scratch);
            assert!(s.is_bitmap(0));
            let ops = [
                Insert(1990), // extends span downward
                Remove(2000),
                Insert(2100), // already present: no-op
                Remove(2199),
                Remove(5000), // absent: no-op
            ];
            let out = s.shared().merge_ops_into_leaf(0, &ops, &mut scratch);
            assert_eq!((out.added, out.removed), (1, 2));
            assert!(!out.overflowed);
            // Pure-no-op run: no rewrite, no unit change.
            let before = s.units_used(0);
            let out =
                s.shared()
                    .merge_ops_into_leaf(0, &[Insert(2100), Remove(7777)], &mut scratch);
            assert_eq!(out, OpsOutcome::default());
            assert_eq!(s.units_used(0), before);
        }
        assert_eq!(s.head(0), 1990);
        assert_eq!(s.count(0), 199);
        let mut v = Vec::new();
        s.collect_leaf(0, &mut v);
        assert!(v.windows(2).all(|w| w[0] < w[1]));
        assert!(v.contains(&1990) && !v.contains(&2000) && !v.contains(&2199));
        assert_eq!(s.units_used(0), hybrid_cost(&v));
    }

    #[test]
    fn hysteresis_damps_codec_flips() {
        // A run whose bitmap/delta cost ratio sits inside the hysteresis
        // band must keep its current encoding in both directions.
        // 101 elements with gap 8: delta = 8 + 100 = 108 B; bitmap spans
        // 801 bits → 8 + 13·8 = 112 B. Ratio ≈ 1.037: inside (15/16, 17/16).
        let run: Vec<u64> = (0..101u64).map(|i| 1000 + i * 8).collect();
        let mut scratch = Vec::new();
        // Fresh leaf (delta-tagged): threshold·15/16 < ratio → stays delta.
        let mut s = store(1);
        unsafe { s.shared().merge_into_leaf(0, &run, &mut scratch) };
        assert!(!s.is_bitmap(0));
        // Same run written over a bitmap-tagged leaf: threshold·17/16 >
        // ratio → stays bitmap.
        let mut s = store(1);
        let dense: Vec<u64> = (1000..1200).collect();
        unsafe {
            s.shared().merge_into_leaf(0, &dense, &mut scratch);
            assert!(s.is_bitmap(0));
            // Overwrite with the borderline run (redistribute path).
            s.shared().write_leaf(0, &run, 0);
        }
        assert!(s.is_bitmap(0));
    }

    #[test]
    fn plan_split_balances_hybrid_cost() {
        // Mixed deltas: a dense region then a sparse one.
        let mut elems: Vec<u64> = (0..500u64).collect();
        elems.extend((0..100u64).map(|i| 1_000_000 + i * 1_000_000_000));
        let k = 8;
        let plan = CompressedLeaves::plan_split(&elems, k, 256);
        assert_eq!(plan[0], 0);
        assert_eq!(plan[k], elems.len());
        assert!(plan.windows(2).all(|w| w[0] <= w[1]));
        for j in 0..k {
            let slice = &elems[plan[j]..plan[j + 1]];
            assert!(hybrid_cost(slice) <= 256, "leaf {j} overflows");
        }
    }

    #[test]
    fn delta_plan_split_balances_bytes() {
        let mut elems: Vec<u64> = (0..200u64).map(|i| i * 3).collect();
        elems.extend((0..100u64).map(|i| 1_000_000 + i * 1_000_000_000));
        let k = 8;
        let plan = delta_plan_split(&elems, k, 256);
        assert_eq!(plan[0], 0);
        assert_eq!(plan[k], elems.len());
        for j in 0..k {
            let slice = &elems[plan[j]..plan[j + 1]];
            assert!(encoded_run_len(slice, 8) <= 256, "leaf {j} overflows");
        }
    }

    #[test]
    fn plan_split_handles_fewer_elements_than_leaves() {
        let elems = vec![5u64, 10];
        let plan = CompressedLeaves::plan_split(&elems, 4, 256);
        assert_eq!(plan[0], 0);
        assert_eq!(plan[4], 2);
        for j in 0..4 {
            let slice = &elems[plan[j]..plan[j + 1]];
            assert!(hybrid_cost(slice) <= 256);
        }
    }

    #[test]
    fn hybrid_plan_greedy_fallback_fits_dense_runs() {
        // 2048 consecutive keys across 2 leaves of 256 B: delta needs
        // 8 + 2047 bytes, far over; bitmaps fit 1984 keys per 256-B leaf.
        let elems: Vec<u64> = (0..2048u64).collect();
        let plan = hybrid_plan_split(&elems, 2, 256);
        assert_eq!(plan[0], 0);
        assert_eq!(plan[2], 2048);
        assert!(hybrid_cost(&elems[plan[0]..plan[1]]) <= 256);
        assert!(hybrid_cost(&elems[plan[1]..plan[2]]) <= 256);
    }

    #[test]
    fn write_leaf_empty_sets_inherited_head() {
        let mut s = store(2);
        unsafe {
            s.shared().write_leaf(1, &[], 77);
        }
        assert_eq!(s.head(1), 77);
        assert_eq!(s.count(1), 0);
        assert_eq!(s.units_used(1), 0);
    }

    #[test]
    fn parallel_disjoint_merges() {
        use rayon::prelude::*;
        let mut s = CompressedLeaves::with_geometry(32, 256);
        let sh = s.shared();
        (0..32usize).into_par_iter().for_each(|leaf| {
            let base = leaf as u64 * 1000;
            let mut scratch = Vec::new();
            // SAFETY: each task owns a distinct leaf.
            unsafe {
                sh.merge_into_leaf(leaf, &[base, base + 7], &mut scratch);
            }
        });
        for leaf in 0..32 {
            assert_eq!(s.count(leaf), 2);
            assert_eq!(s.head(leaf), leaf as u64 * 1000);
        }
    }
}
