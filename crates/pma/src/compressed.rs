//! Compressed leaf storage: raw head + delta byte codes (§5 of the paper).
//!
//! "A CPMA leaf stores its head, or its first element, uncompressed, and
//! stores subsequent elements compressed with delta encoding and byte codes.
//! ... The density bounds in a CPMA count byte density rather than element
//! density." Units here are **bytes**. The implicit tree, the batch
//! algorithm, and search on leaf heads are untouched — that is the paper's
//! central structural claim, and it is what lets this type plug into the
//! same `PmaCore` as the uncompressed storage.

use crate::codec::{
    decode_run, decode_varint, encode_run, encoded_run_len, for_each_in_run, varint_len,
};
use crate::leaf::{
    apply_ops_into, set_difference_into, set_union_into, MergeOutcome, OpsOutcome, SharedLeaves,
};
use crate::{stats, LeafStorage};
use cpma_api::{BatchOp, PersistError};
use std::marker::PhantomData;

/// Delta-compressed leaves over `u64` keys. See module docs.
#[derive(Clone)]
pub struct CompressedLeaves {
    /// `num_leaves * leaf_units` bytes; leaf `i` owns
    /// `[i * leaf_units, (i+1) * leaf_units)`, valid prefix = `used[i]`.
    bytes: Vec<u8>,
    /// Occupied bytes per leaf (may exceed capacity while overflowed).
    used: Vec<u32>,
    /// Elements per leaf.
    counts: Vec<u32>,
    /// Leaf heads, duplicated out of the leaves for cache-friendly search
    /// (inherited values for empty leaves); non-decreasing.
    heads: Vec<u64>,
    /// Out-of-place buffers for overflowed leaves (batch merge only).
    overflow: Vec<Option<Box<[u64]>>>,
    leaf_units: usize,
}

impl CompressedLeaves {
    #[inline]
    fn leaf_bytes(&self, leaf: usize) -> &[u8] {
        debug_assert!(self.overflow[leaf].is_none(), "query on overflowed leaf");
        let start = leaf * self.leaf_units;
        &self.bytes[start..start + self.used[leaf] as usize]
    }
}

impl LeafStorage<u64> for CompressedLeaves {
    type Shared<'a>
        = CompressedShared<'a>
    where
        Self: 'a;

    const NAME: &'static str = "CPMA";

    // ≥ 256 bytes: the redistribution fit argument needs
    // 0.1 · capacity ≥ 18 (head swap 8 B + dropped boundary delta 10 B);
    // 256 gives a comfortable margin (see leaf.rs docs and DESIGN.md).
    const MIN_LEAF_UNITS: usize = 256;
    const LEAF_ALIGN: usize = 64;
    const HEAD_UNITS: usize = 8;
    const LEAF_SCALE: usize = 8;

    const CODEC_ID: u32 = 2;

    // Snapshot payload layout (all little-endian):
    //   used    num_leaves × u32
    //   counts  num_leaves × u32
    //   heads   num_leaves × u64
    //   bytes   num_leaves × leaf_units  (full array; the first `used[i]`
    //           bytes of each leaf are its encoded run, the rest don't-care)
    fn payload_len(num_leaves: usize, leaf_units: usize) -> Option<usize> {
        let per_leaf = leaf_units.checked_add(4 + 4 + 8)?;
        num_leaves.checked_mul(per_leaf)
    }

    fn write_payload(&self, out: &mut Vec<u8>) {
        debug_assert!(self.overflow.iter().all(|o| o.is_none()));
        for &u in &self.used {
            out.extend_from_slice(&u.to_le_bytes());
        }
        for &c in &self.counts {
            out.extend_from_slice(&c.to_le_bytes());
        }
        for &h in &self.heads {
            out.extend_from_slice(&h.to_le_bytes());
        }
        out.extend_from_slice(&self.bytes);
    }

    fn read_payload(
        num_leaves: usize,
        leaf_units: usize,
        payload: &[u8],
    ) -> Result<Self, PersistError> {
        let expected = Self::payload_len(num_leaves, leaf_units)
            .filter(|&n| n == payload.len())
            .ok_or(PersistError::Truncated("cpma payload"))?;
        debug_assert_eq!(expected, payload.len());

        let used: Vec<u32> = payload[..num_leaves * 4]
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
            .collect();
        let counts_at = num_leaves * 4;
        let heads_at = counts_at + num_leaves * 4;
        let bytes_at = heads_at + num_leaves * 8;
        let counts: Vec<u32> = payload[counts_at..heads_at]
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
            .collect();
        let heads: Vec<u64> = payload[heads_at..bytes_at]
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
            .collect();
        let bytes = payload[bytes_at..].to_vec();

        // Walk every leaf's encoded run byte by byte: the search and scan
        // paths decode without bounds checks, so nothing invalid may pass.
        let mut prev_max: Option<u64> = None;
        for leaf in 0..num_leaves {
            let nbytes = used[leaf] as usize;
            let count = counts[leaf] as usize;
            if nbytes > leaf_units {
                return Err(PersistError::Corrupt(format!(
                    "leaf {leaf} claims {nbytes} used bytes in {leaf_units}"
                )));
            }
            if leaf > 0 && heads[leaf] < heads[leaf - 1] {
                return Err(PersistError::Corrupt(format!(
                    "head array decreases at leaf {leaf}"
                )));
            }
            if count == 0 {
                if nbytes != 0 {
                    return Err(PersistError::Corrupt(format!(
                        "empty leaf {leaf} claims {nbytes} used bytes"
                    )));
                }
                continue;
            }
            let run = &bytes[leaf * leaf_units..leaf * leaf_units + nbytes];
            if nbytes < 8 {
                return Err(PersistError::Corrupt(format!(
                    "leaf {leaf} run too short for a head"
                )));
            }
            let head = u64::from_le_bytes(run[..8].try_into().unwrap());
            if heads[leaf] != head {
                return Err(PersistError::Corrupt(format!(
                    "leaf {leaf} head disagrees with its encoded run"
                )));
            }
            if prev_max.is_some_and(|p| p >= head) {
                return Err(PersistError::Corrupt(format!(
                    "leaf {leaf} overlaps its predecessor"
                )));
            }
            let mut cur = head;
            let mut pos = 8usize;
            for _ in 1..count {
                let delta = checked_varint(run, &mut pos).ok_or_else(|| {
                    PersistError::Corrupt(format!("leaf {leaf} has a malformed byte code"))
                })?;
                cur = cur
                    .checked_add(delta)
                    .filter(|_| delta > 0)
                    .ok_or_else(|| {
                        PersistError::Corrupt(format!("leaf {leaf} deltas are not ascending"))
                    })?;
            }
            if pos != nbytes {
                return Err(PersistError::Corrupt(format!(
                    "leaf {leaf} run length disagrees with its element count"
                )));
            }
            prev_max = Some(cur);
        }

        Ok(Self {
            bytes,
            used,
            counts,
            heads,
            overflow: (0..num_leaves).map(|_| None).collect(),
            leaf_units,
        })
    }

    fn with_geometry(num_leaves: usize, leaf_units: usize) -> Self {
        assert!(num_leaves >= 1);
        assert!(leaf_units >= Self::MIN_LEAF_UNITS);
        Self {
            bytes: vec![0u8; num_leaves * leaf_units],
            used: vec![0; num_leaves],
            counts: vec![0; num_leaves],
            heads: vec![0; num_leaves],
            overflow: (0..num_leaves).map(|_| None).collect(),
            leaf_units,
        }
    }

    #[inline]
    fn num_leaves(&self) -> usize {
        self.counts.len()
    }

    #[inline]
    fn leaf_units(&self) -> usize {
        self.leaf_units
    }

    #[inline]
    fn units_used(&self, leaf: usize) -> usize {
        self.used[leaf] as usize
    }

    #[inline]
    fn count(&self, leaf: usize) -> usize {
        self.counts[leaf] as usize
    }

    #[inline]
    fn head(&self, leaf: usize) -> u64 {
        self.heads[leaf]
    }

    #[inline]
    fn is_overflowed(&self, leaf: usize) -> bool {
        self.overflow[leaf].is_some()
    }

    fn size_bytes(&self) -> usize {
        self.bytes.len()
            + self.used.len() * 4
            + self.counts.len() * 4
            + self.heads.len() * 8
            + self.overflow.len() * std::mem::size_of::<Option<Box<[u64]>>>()
    }

    fn leaf_successor(&self, leaf: usize, key: u64) -> Option<u64> {
        let buf = self.leaf_bytes(leaf);
        stats::record_read(buf.len());
        let mut found = None;
        for_each_in_run(buf, self.counts[leaf] as usize, |e| {
            if e >= key {
                found = Some(e);
                false
            } else {
                true
            }
        });
        found
    }

    fn leaf_contains(&self, leaf: usize, key: u64) -> bool {
        // Membership needs no successor value: decode deltas only until the
        // running value reaches `key`, and account only the bytes consumed
        // (the full-run `leaf_successor` path charges the whole leaf).
        let cnt = self.counts[leaf] as usize;
        if cnt == 0 {
            return false;
        }
        let buf = self.leaf_bytes(leaf);
        let mut cur = u64::from_le_bytes(buf[..8].try_into().unwrap());
        if key <= cur {
            stats::record_read(8);
            return key == cur;
        }
        let mut pos = 8usize;
        for _ in 1..cnt {
            let (delta, used) = decode_varint(&buf[pos..]);
            pos += used;
            cur += delta;
            if cur >= key {
                stats::record_read(pos);
                return cur == key;
            }
        }
        stats::record_read(pos);
        false
    }

    #[inline]
    fn prefetch_leaf(&self, leaf: usize) {
        // The delta decode walks the run front to back, so pull the first
        // two lines: the head plus the first stretch of varints.
        let at = leaf * self.leaf_units;
        crate::search::prefetch_read(&self.bytes[at]);
        if self.leaf_units > 64 {
            crate::search::prefetch_read(&self.bytes[at + 64]);
        }
    }

    fn leaf_max(&self, leaf: usize) -> Option<u64> {
        // Overflow-aware: the redistribute phase reads neighbours that may
        // still be spilled.
        if let Some(buf) = self.overflow[leaf].as_deref() {
            return buf.last().copied();
        }
        let cnt = self.counts[leaf] as usize;
        if cnt == 0 {
            return None;
        }
        let mut last = 0;
        for_each_in_run(self.leaf_bytes(leaf), cnt, |e| {
            last = e;
            true
        });
        Some(last)
    }

    fn for_each_in_leaf(&self, leaf: usize, f: &mut dyn FnMut(u64) -> bool) -> bool {
        let buf = self.leaf_bytes(leaf);
        stats::record_read(buf.len());
        for_each_in_run(buf, self.counts[leaf] as usize, f)
    }

    fn collect_leaf(&self, leaf: usize, out: &mut Vec<u64>) {
        if let Some(buf) = self.overflow[leaf].as_deref() {
            out.extend_from_slice(buf);
            return;
        }
        decode_run(self.leaf_bytes(leaf), self.counts[leaf] as usize, out);
    }

    fn leaf_sum(&self, leaf: usize) -> u64 {
        let buf = self.leaf_bytes(leaf);
        stats::record_read(buf.len());
        let mut sum = 0u64;
        for_each_in_run(buf, self.counts[leaf] as usize, |e| {
            sum = sum.wrapping_add(e);
            true
        });
        sum
    }

    #[inline]
    fn units_for(elems: &[u64]) -> usize {
        encoded_run_len(elems, 8)
    }

    fn plan_split(elems: &[u64], k: usize, leaf_units: usize) -> Vec<usize> {
        let n = elems.len();
        let mut offsets = vec![0usize; k + 1];
        offsets[k] = n;
        if n == 0 || k == 1 {
            return offsets;
        }
        // prefix[i] = stream cost of deltas up to element i (head cost
        // excluded): prefix[0] = prefix[1] = 0, prefix[i+1] = prefix[i] +
        // varint_len(e[i] − e[i−1]). Computed with a two-pass parallel scan
        // for large runs (whole-array rebuilds are O(n)-dominated by this).
        let mut prefix = vec![0u64; n + 1];
        const SCAN_CHUNK: usize = 1 << 15;
        if n <= SCAN_CHUNK {
            for i in 1..n {
                prefix[i + 1] = prefix[i] + varint_len(elems[i] - elems[i - 1]) as u64;
            }
        } else {
            use rayon::prelude::*;
            // Pass 1: local costs + per-chunk sums. prefix[i+1] holds the
            // cost of element i, chunk-local-accumulated.
            let nchunks = n.div_ceil(SCAN_CHUNK);
            let mut chunk_sums = vec![0u64; nchunks + 1];
            let sums: Vec<u64> = prefix[1..=n]
                .par_chunks_mut(SCAN_CHUNK)
                .enumerate()
                .map(|(c, chunk)| {
                    let base = c * SCAN_CHUNK;
                    let mut acc = 0u64;
                    for (j, slot) in chunk.iter_mut().enumerate() {
                        let i = base + j; // element index whose cost this is
                        if i > 0 {
                            acc += varint_len(elems[i] - elems[i - 1]) as u64;
                        }
                        *slot = acc;
                    }
                    acc
                })
                .collect();
            for (c, s) in sums.into_iter().enumerate() {
                chunk_sums[c + 1] = chunk_sums[c] + s;
            }
            // Pass 2: add chunk offsets.
            prefix[1..=n]
                .par_chunks_mut(SCAN_CHUNK)
                .enumerate()
                .for_each(|(c, chunk)| {
                    let off = chunk_sums[c];
                    if off != 0 {
                        for slot in chunk.iter_mut() {
                            *slot += off;
                        }
                    }
                });
        }
        let total = prefix[n];
        // Exact encoded size of slice [a, b): 0 if empty, else raw head +
        // interior deltas.
        let bytes_of = |a: usize, b: usize| -> usize {
            if a == b {
                0
            } else {
                8 + (prefix[b] - prefix[a + 1]) as usize
            }
        };
        for j in 1..k {
            // prefix[i] is the stream cost of the first i elements, so the
            // partition point is directly the boundary element index.
            let ideal = total * j as u64 / k as u64;
            let o = prefix.partition_point(|&p| p < ideal).min(n);
            offsets[j] = o.max(offsets[j - 1]);
        }
        // Left-to-right fix-up: shrink any oversized slice by pulling its
        // right boundary left (pushing elements to the next leaf).
        for j in 0..k - 1 {
            let a = offsets[j];
            while bytes_of(a, offsets[j + 1]) > leaf_units {
                offsets[j + 1] -= 1;
            }
            if offsets[j + 1] < a {
                offsets[j + 1] = a;
            }
        }
        debug_assert!(
            bytes_of(offsets[k - 1], n) <= leaf_units,
            "last leaf overflows: caller violated the density contract"
        );
        offsets
    }

    fn shared(&mut self) -> CompressedShared<'_> {
        CompressedShared {
            bytes: self.bytes.as_mut_ptr(),
            used: self.used.as_mut_ptr(),
            counts: self.counts.as_mut_ptr(),
            heads: self.heads.as_mut_ptr(),
            overflow: self.overflow.as_mut_ptr(),
            leaf_units: self.leaf_units,
            num_leaves: self.counts.len(),
            _marker: PhantomData,
        }
    }
}

/// Shared-disjoint accessor for [`CompressedLeaves`]; see
/// [`SharedLeaves`] for the safety contract.
pub struct CompressedShared<'a> {
    bytes: *mut u8,
    used: *mut u32,
    counts: *mut u32,
    heads: *mut u64,
    overflow: *mut Option<Box<[u64]>>,
    leaf_units: usize,
    num_leaves: usize,
    _marker: PhantomData<&'a mut CompressedLeaves>,
}

impl Clone for CompressedShared<'_> {
    fn clone(&self) -> Self {
        *self
    }
}
impl Copy for CompressedShared<'_> {}

// SAFETY: used only under the SharedLeaves contract (disjoint leaves);
// buffers outlive 'a.
unsafe impl Send for CompressedShared<'_> {}
unsafe impl Sync for CompressedShared<'_> {}

impl CompressedShared<'_> {
    #[inline]
    #[allow(clippy::mut_from_ref)] // shared-disjoint contract: see trait docs
    unsafe fn leaf_buf(&self, leaf: usize, len: usize) -> &mut [u8] {
        debug_assert!(leaf < self.num_leaves && len <= self.leaf_units);
        std::slice::from_raw_parts_mut(self.bytes.add(leaf * self.leaf_units), len)
    }

    #[inline]
    unsafe fn current(&self, leaf: usize, out: &mut Vec<u64>) -> usize {
        let cnt = *self.counts.add(leaf) as usize;
        let units = *self.used.add(leaf) as usize;
        out.clear();
        if let Some(buf) = (*self.overflow.add(leaf)).as_deref() {
            out.extend_from_slice(buf);
        } else if cnt > 0 {
            let start = leaf * self.leaf_units;
            decode_run(
                std::slice::from_raw_parts(self.bytes.add(start), units),
                cnt,
                out,
            );
        }
        units
    }

    #[inline]
    unsafe fn store(&self, leaf: usize, elems: &[u64], inherited_head: u64) -> (usize, bool) {
        let units = encoded_run_len(elems, 8);
        stats::record_write(units);
        if units <= self.leaf_units {
            if !elems.is_empty() {
                encode_run(elems, self.leaf_buf(leaf, units));
            }
            *self.overflow.add(leaf) = None;
            *self.counts.add(leaf) = elems.len() as u32;
            *self.used.add(leaf) = units as u32;
            *self.heads.add(leaf) = if elems.is_empty() {
                inherited_head
            } else {
                elems[0]
            };
            (units, false)
        } else {
            *self.overflow.add(leaf) = Some(elems.to_vec().into_boxed_slice());
            *self.counts.add(leaf) = elems.len() as u32;
            *self.used.add(leaf) = units as u32;
            *self.heads.add(leaf) = elems[0];
            (units, true)
        }
    }
}

impl SharedLeaves<u64> for CompressedShared<'_> {
    unsafe fn merge_into_leaf(
        &self,
        leaf: usize,
        add: &[u64],
        scratch: &mut Vec<u64>,
    ) -> MergeOutcome {
        let mut cur = Vec::new();
        let old_units = self.current(leaf, &mut cur);
        stats::record_read(old_units);
        let added = set_union_into(&cur, add, scratch);
        let (new_units, overflowed) = self.store(leaf, scratch, *self.heads.add(leaf));
        MergeOutcome {
            delta_count: added,
            delta_units: new_units as isize - old_units as isize,
            overflowed,
        }
    }

    unsafe fn remove_from_leaf(
        &self,
        leaf: usize,
        rem: &[u64],
        scratch: &mut Vec<u64>,
    ) -> MergeOutcome {
        let mut cur = Vec::new();
        let old_units = self.current(leaf, &mut cur);
        stats::record_read(old_units);
        let removed = set_difference_into(&cur, rem, scratch);
        if removed == 0 {
            return MergeOutcome::default();
        }
        let (new_units, overflowed) = self.store(leaf, scratch, *self.heads.add(leaf));
        debug_assert!(!overflowed);
        MergeOutcome {
            delta_count: removed,
            delta_units: new_units as isize - old_units as isize,
            overflowed: false,
        }
    }

    unsafe fn merge_ops_into_leaf(
        &self,
        leaf: usize,
        ops: &[BatchOp<u64>],
        scratch: &mut Vec<u64>,
    ) -> OpsOutcome {
        let mut cur = Vec::new();
        let old_units = self.current(leaf, &mut cur);
        stats::record_read(old_units);
        let (added, removed) = apply_ops_into(&cur, ops, scratch);
        if added == 0 && removed == 0 {
            return OpsOutcome::default();
        }
        let (new_units, overflowed) = self.store(leaf, scratch, *self.heads.add(leaf));
        OpsOutcome {
            added,
            removed,
            delta_units: new_units as isize - old_units as isize,
            overflowed,
        }
    }

    unsafe fn write_leaf(&self, leaf: usize, elems: &[u64], inherited_head: u64) -> usize {
        let (units, overflowed) = self.store(leaf, elems, inherited_head);
        debug_assert!(!overflowed, "write_leaf must fit");
        units
    }

    unsafe fn collect_leaf(&self, leaf: usize, out: &mut Vec<u64>) {
        let units = self.current_units(leaf);
        stats::record_read(units);
        let mut tmp = Vec::new();
        self.current(leaf, &mut tmp);
        out.extend_from_slice(&tmp);
    }

    unsafe fn units_used(&self, leaf: usize) -> usize {
        *self.used.add(leaf) as usize
    }

    unsafe fn count(&self, leaf: usize) -> usize {
        *self.counts.add(leaf) as usize
    }

    unsafe fn set_inherited_head(&self, leaf: usize, head: u64) {
        debug_assert_eq!(*self.counts.add(leaf), 0);
        *self.heads.add(leaf) = head;
    }
}

impl CompressedShared<'_> {
    #[inline]
    unsafe fn current_units(&self, leaf: usize) -> usize {
        *self.used.add(leaf) as usize
    }
}

/// Bounds- and overflow-checked LEB128 decode for snapshot validation.
/// Unlike `codec::decode_varint` (which trusts its input — it runs on
/// runs this module encoded itself), this never reads past `buf` and
/// rejects encodings that do not fit a `u64`.
fn checked_varint(buf: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let &byte = buf.get(*pos)?;
        *pos += 1;
        let part = (byte & 0x7f) as u64;
        if shift >= 64 || (shift > 0 && part >> (64 - shift) != 0) {
            return None; // would overflow u64
        }
        v |= part << shift;
        if byte & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store(leaves: usize) -> CompressedLeaves {
        CompressedLeaves::with_geometry(leaves, 256)
    }

    #[test]
    fn merge_roundtrip() {
        let mut s = store(2);
        let mut scratch = Vec::new();
        let elems = vec![100u64, 105, 1000, 1 << 40];
        let out = unsafe { s.shared().merge_into_leaf(0, &elems, &mut scratch) };
        assert_eq!(out.delta_count, 4);
        assert!(!out.overflowed);
        assert_eq!(s.count(0), 4);
        assert_eq!(s.head(0), 100);
        assert_eq!(s.units_used(0), encoded_run_len(&elems, 8));
        let mut v = Vec::new();
        s.collect_leaf(0, &mut v);
        assert_eq!(v, elems);
        assert!(s.leaf_contains(0, 1000));
        assert!(!s.leaf_contains(0, 101));
        assert_eq!(s.leaf_successor(0, 106), Some(1000));
        assert_eq!(s.leaf_max(0), Some(1 << 40));
        assert_eq!(s.leaf_sum(0), 100 + 105 + 1000 + (1u64 << 40));
    }

    #[test]
    fn incremental_merges_accumulate() {
        let mut s = store(1);
        let mut scratch = Vec::new();
        unsafe {
            let sh = s.shared();
            sh.merge_into_leaf(0, &[10, 30], &mut scratch);
            let out = sh.merge_into_leaf(0, &[10, 20, 40], &mut scratch);
            assert_eq!(out.delta_count, 2);
        }
        let mut v = Vec::new();
        s.collect_leaf(0, &mut v);
        assert_eq!(v, vec![10, 20, 30, 40]);
    }

    #[test]
    fn overflow_on_oversized_merge() {
        let mut s = store(1);
        let mut scratch = Vec::new();
        // 300 consecutive values: 8 + 299 bytes > 256.
        let big: Vec<u64> = (0..300).collect();
        let out = unsafe { s.shared().merge_into_leaf(0, &big, &mut scratch) };
        assert!(out.overflowed);
        assert!(s.is_overflowed(0));
        assert_eq!(s.units_used(0), 8 + 299);
        let mut v = Vec::new();
        unsafe { s.shared().collect_leaf(0, &mut v) };
        assert_eq!(v, big);
    }

    #[test]
    fn remove_and_empty_keeps_head() {
        let mut s = store(1);
        let mut scratch = Vec::new();
        unsafe {
            let sh = s.shared();
            sh.merge_into_leaf(0, &[3, 9], &mut scratch);
            sh.remove_from_leaf(0, &[3, 9], &mut scratch);
        }
        assert_eq!(s.count(0), 0);
        assert_eq!(s.units_used(0), 0);
        assert_eq!(s.head(0), 3);
    }

    #[test]
    fn merge_ops_single_rewrite_compressed() {
        use cpma_api::BatchOp::{Insert, Remove};
        let mut s = store(1);
        let mut scratch = Vec::new();
        unsafe {
            let sh = s.shared();
            sh.merge_into_leaf(0, &[100, 200, 1 << 30], &mut scratch);
            let out = sh.merge_ops_into_leaf(
                0,
                &[Insert(50), Insert(100), Remove(200), Remove(777)],
                &mut scratch,
            );
            assert_eq!((out.added, out.removed), (1, 1));
            assert!(!out.overflowed);
        }
        let mut v = Vec::new();
        s.collect_leaf(0, &mut v);
        assert_eq!(v, vec![50, 100, 1 << 30]);
        assert_eq!(s.head(0), 50);
        assert_eq!(s.units_used(0), encoded_run_len(&v, 8));
        // No-op run: no rewrite, no unit change.
        let before = s.units_used(0);
        let out = unsafe {
            s.shared()
                .merge_ops_into_leaf(0, &[Remove(3), Insert(100)], &mut scratch)
        };
        assert_eq!(out, OpsOutcome::default());
        assert_eq!(s.units_used(0), before);
    }

    #[test]
    fn plan_split_balances_bytes() {
        // Mixed deltas: a dense region then a sparse one.
        let mut elems: Vec<u64> = (0..500u64).collect();
        elems.extend((0..100u64).map(|i| 1_000_000 + i * 1_000_000_000));
        let k = 8;
        let plan = CompressedLeaves::plan_split(&elems, k, 256);
        assert_eq!(plan[0], 0);
        assert_eq!(plan[k], elems.len());
        assert!(plan.windows(2).all(|w| w[0] <= w[1]));
        for j in 0..k {
            let slice = &elems[plan[j]..plan[j + 1]];
            assert!(encoded_run_len(slice, 8) <= 256, "leaf {j} overflows");
        }
    }

    #[test]
    fn plan_split_handles_fewer_elements_than_leaves() {
        let elems = vec![5u64, 10];
        let plan = CompressedLeaves::plan_split(&elems, 4, 256);
        assert_eq!(plan[0], 0);
        assert_eq!(plan[4], 2);
        for j in 0..4 {
            let slice = &elems[plan[j]..plan[j + 1]];
            assert!(encoded_run_len(slice, 8) <= 256);
        }
    }

    #[test]
    fn write_leaf_empty_sets_inherited_head() {
        let mut s = store(2);
        unsafe {
            s.shared().write_leaf(1, &[], 77);
        }
        assert_eq!(s.head(1), 77);
        assert_eq!(s.count(1), 0);
        assert_eq!(s.units_used(1), 0);
    }

    #[test]
    fn parallel_disjoint_merges() {
        use rayon::prelude::*;
        let mut s = CompressedLeaves::with_geometry(32, 256);
        let sh = s.shared();
        (0..32usize).into_par_iter().for_each(|leaf| {
            let base = leaf as u64 * 1000;
            let mut scratch = Vec::new();
            // SAFETY: each task owns a distinct leaf.
            unsafe {
                sh.merge_into_leaf(leaf, &[base, base + 7], &mut scratch);
            }
        });
        for leaf in 0..32 {
            assert_eq!(s.count(leaf), 2);
            assert_eq!(s.head(leaf), leaf as u64 * 1000);
        }
    }
}
