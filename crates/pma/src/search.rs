//! Branch-free search kernels and cache-conscious head layouts.
//!
//! The flat head array answers "rightmost head ≤ key" with a classic
//! binary search whose branches are unpredictable by construction (every
//! comparison is a coin flip on random probes). This module provides the
//! alternatives the head-layout menu ([`crate::HeadForm`]) is built from:
//!
//! * [`lower_bound`] / [`upper_bound`]: branchless binary search over a
//!   sorted slice (the compare feeds a conditional move, not a branch);
//! * [`Eytzinger`]: the BFS/heap order layout — level `d` of the implicit
//!   tree is contiguous, so the first ~4 levels share a few cache lines
//!   and deeper probes are prefetched four levels ahead;
//! * [`BNary`]: a static B-ary search tree (B = 9, so each node's 8 keys
//!   fill exactly one 64-byte cache line) searched with a branchless
//!   per-node rank computation.
//!
//! Both auxiliary layouts store, next to each key, the *rank* of that key
//! in the sorted head array, so a layout search returns the same partition
//! point the flat binary search would (`aux` slots that exist only as
//! padding carry the rank sentinel `u32::MAX` and an infinity key).

/// Issue a best-effort read prefetch for the cache line holding `p`.
#[inline(always)]
pub(crate) fn prefetch_read<T>(p: *const T) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: prefetch is a hint; it never faults, even on bad addresses.
    unsafe {
        std::arch::x86_64::_mm_prefetch(p as *const i8, std::arch::x86_64::_MM_HINT_T0)
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = p;
}

/// First index with `a[i] >= key` (branchless; equals
/// `a.partition_point(|&e| e < key)`).
#[inline]
pub(crate) fn lower_bound<K: Ord + Copy>(a: &[K], key: K) -> usize {
    if a.is_empty() {
        return 0;
    }
    let mut base = 0usize;
    let mut size = a.len();
    while size > 1 {
        let half = size / 2;
        // The compare becomes a conditional move: no mispredicted branch.
        base += usize::from(a[base + half - 1] < key) * half;
        size -= half;
    }
    base + usize::from(a[base] < key)
}

/// First index with `a[i] > key` (branchless; equals
/// `a.partition_point(|&e| e <= key)`).
#[inline]
pub(crate) fn upper_bound<K: Ord + Copy>(a: &[K], key: K) -> usize {
    if a.is_empty() {
        return 0;
    }
    let mut base = 0usize;
    let mut size = a.len();
    while size > 1 {
        let half = size / 2;
        base += usize::from(a[base + half - 1] <= key) * half;
        size -= half;
    }
    base + usize::from(a[base] <= key)
}

/// Eytzinger (BFS order) layout over `n` sorted keys: slot `i`'s children
/// are `2i` and `2i + 1`, slot 0 is unused. An in-order walk of the slots
/// visits the keys in sorted order; `rank[i]` records each slot's sorted
/// position.
#[derive(Clone)]
pub(crate) struct Eytzinger<K> {
    pub keys: Vec<K>,
    pub rank: Vec<u32>,
}

impl<K: Copy> Eytzinger<K> {
    /// Build from the sorted `heads` (duplicates allowed). `pad` fills the
    /// unused slot 0.
    pub fn build(heads: &[K], pad: K) -> Self {
        let n = heads.len();
        let mut keys = vec![pad; n + 1];
        let mut rank = vec![u32::MAX; n + 1];
        let mut next = 0usize;
        // Iterative in-order fill (n can be millions of leaves; recursion
        // depth would be fine at log n, but the explicit stack form keeps
        // the hot build loop allocation-free after the two Vecs).
        let mut stack: Vec<(usize, bool)> = vec![(1, false)];
        while let Some((i, expanded)) = stack.pop() {
            if i > n {
                continue;
            }
            if expanded {
                keys[i] = heads[next];
                rank[i] = next as u32;
                next += 1;
                stack.push((2 * i + 1, false));
            } else {
                stack.push((i, true));
                stack.push((2 * i, false));
            }
        }
        debug_assert_eq!(next, n);
        Self { keys, rank }
    }

    /// Number of heads > `key` is `n - result`; the result is the count of
    /// heads ≤ `key` — the same partition point `upper_bound` returns on
    /// the sorted array.
    #[inline]
    pub fn partition(&self, key: K) -> usize
    where
        K: Ord,
    {
        let n = self.keys.len() - 1;
        if n == 0 {
            return 0;
        }
        let keys = &self.keys[..];
        let mut i = 1usize;
        while i <= n {
            // Four levels ahead: one prefetch covers the 16 descendants
            // that share the destination cache line in BFS order.
            if i * 16 <= n {
                prefetch_read(&keys[i * 16]);
            }
            i = 2 * i + usize::from(keys[i] <= key);
        }
        // The answer is the last slot where the descent went left: strip
        // the trailing right-turns (1-bits) plus the final step.
        let j = i >> (i.trailing_ones() + 1);
        if j == 0 {
            n // every head ≤ key
        } else {
            self.rank[j] as usize // rank of the first head > key
        }
    }
}

/// Fan-out of the static B-ary tree: 8 keys per node = one 64-byte cache
/// line of `u64` keys.
pub(crate) const BNARY_B: usize = 9;

/// Static B-ary search tree (an "S-tree") over `n` sorted keys. Node `t`
/// holds keys `t·(B−1) .. (t+1)·(B−1)` and its `c`-th child is node
/// `t·B + 1 + c`; an in-order walk visits the keys in sorted order.
/// Valid keys form a prefix of every node (`fill[t]` many); padding slots
/// hold `pad` with the rank sentinel.
#[derive(Clone)]
pub(crate) struct BNary<K> {
    pub keys: Vec<K>,
    pub rank: Vec<u32>,
    /// Number of real keys in each node (the rest of the node is padding).
    pub fill: Vec<u8>,
    nodes: usize,
}

impl<K: Copy> BNary<K> {
    /// Build from the sorted `heads` (duplicates allowed).
    pub fn build(heads: &[K], pad: K) -> Self {
        const SLOTS: usize = BNARY_B - 1;
        let n = heads.len();
        let nodes = n.div_ceil(SLOTS).max(1);
        let mut keys = vec![pad; nodes * SLOTS];
        let mut rank = vec![u32::MAX; nodes * SLOTS];
        let mut fill = vec![0u8; nodes];
        let mut next = 0usize;
        // In-order fill: visit child c, place key c, ... , visit child B−1.
        let mut stack: Vec<(usize, usize)> = vec![(0, 0)];
        while let Some((t, c)) = stack.pop() {
            if t >= nodes {
                continue;
            }
            // A node interleaves B−1 keys with B children: key `c−1` is
            // placed between child `c−1` and child `c`, so only states
            // 1..=SLOTS carry a key (state SLOTS+1 follows the last child).
            if c > 0 && c <= SLOTS && next < n {
                let slot = t * SLOTS + (c - 1);
                keys[slot] = heads[next];
                rank[slot] = next as u32;
                fill[t] = c as u8;
                next += 1;
            }
            if c < SLOTS + 1 {
                stack.push((t, c + 1));
                stack.push((t * BNARY_B + 1 + c, 0));
            }
        }
        debug_assert_eq!(next, n);
        Self {
            keys,
            rank,
            fill,
            nodes,
        }
    }

    /// Count of heads ≤ `key` (the flat `upper_bound` partition point).
    #[inline]
    pub fn partition(&self, key: K, n: usize) -> usize
    where
        K: Ord,
    {
        const SLOTS: usize = BNARY_B - 1;
        if n == 0 {
            return 0;
        }
        let mut t = 0usize;
        // Rank of the first head > key seen so far (n = none yet).
        let mut res = n;
        while t < self.nodes {
            let child = t * BNARY_B + 1;
            if child < self.nodes {
                prefetch_read(&self.keys[child * SLOTS]);
            }
            let base = t * SLOTS;
            let node = &self.keys[base..base + SLOTS];
            // Branchless rank of `key` within the node: padding keys never
            // count because `fill` caps the sum.
            let mut le = 0usize;
            for &k in node {
                le += usize::from(k <= key);
            }
            let valid = self.fill[t] as usize;
            let i = le.min(valid);
            if i < valid {
                res = self.rank[base + i] as usize;
            }
            t = t * BNARY_B + 1 + i;
        }
        res
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_match_partition_point() {
        let cases: Vec<Vec<u64>> = vec![
            vec![],
            vec![5],
            vec![1, 3, 3, 3, 9, 9, 12],
            (0..100).map(|i| i * 2).collect(),
            vec![0, 0, u64::MAX, u64::MAX],
        ];
        for a in &cases {
            for probe in [0u64, 1, 2, 3, 4, 8, 9, 10, 199, u64::MAX - 1, u64::MAX] {
                assert_eq!(
                    lower_bound(a, probe),
                    a.partition_point(|&e| e < probe),
                    "lower_bound {a:?} {probe}"
                );
                assert_eq!(
                    upper_bound(a, probe),
                    a.partition_point(|&e| e <= probe),
                    "upper_bound {a:?} {probe}"
                );
            }
        }
    }

    #[test]
    fn eytzinger_partition_matches_flat() {
        for n in [0usize, 1, 2, 3, 7, 8, 9, 63, 64, 65, 1000] {
            let heads: Vec<u64> = (0..n as u64).map(|i| i * 3 + 2).collect();
            let e = Eytzinger::build(&heads, 0);
            for probe in 0..(3 * n as u64 + 5) {
                assert_eq!(
                    e.partition(probe),
                    heads.partition_point(|&h| h <= probe),
                    "n={n} probe={probe}"
                );
            }
        }
    }

    #[test]
    fn eytzinger_handles_duplicates_and_max() {
        let heads = vec![0u64, 7, 7, 7, 7, 9, u64::MAX, u64::MAX];
        let e = Eytzinger::build(&heads, 0);
        for probe in [0u64, 1, 6, 7, 8, 9, 10, u64::MAX - 1, u64::MAX] {
            assert_eq!(
                e.partition(probe),
                heads.partition_point(|&h| h <= probe),
                "probe={probe}"
            );
        }
    }

    #[test]
    fn bnary_partition_matches_flat() {
        for n in [0usize, 1, 7, 8, 9, 16, 17, 72, 73, 100, 1000] {
            let heads: Vec<u64> = (0..n as u64).map(|i| i * 5 + 1).collect();
            let b = BNary::build(&heads, u64::MAX);
            for probe in 0..(5 * n as u64 + 7) {
                assert_eq!(
                    b.partition(probe, n),
                    heads.partition_point(|&h| h <= probe),
                    "n={n} probe={probe}"
                );
            }
        }
    }

    #[test]
    fn bnary_handles_duplicates_and_max() {
        let heads = vec![3u64, 3, 3, 10, 10, 10, 10, 10, 12, u64::MAX];
        let b = BNary::build(&heads, u64::MAX);
        for probe in [0u64, 3, 4, 9, 10, 11, 12, 13, u64::MAX - 1, u64::MAX] {
            assert_eq!(
                b.partition(probe, heads.len()),
                heads.partition_point(|&h| h <= probe),
                "probe={probe}"
            );
        }
    }
}
