//! Fixed-span bitmap leaf encoding (the dense half of the hybrid codec).
//!
//! Delta byte codes (§5, [`crate::codec`]) cost ≥ 1 byte per element no
//! matter how dense the keys are. For a run of mostly-consecutive integers
//! a plain bitmap over the leaf's key span is smaller — 1 *bit* per slot —
//! and turns range queries into popcounts (cf. CONCISE in PAPERS.md). This
//! module implements that encoding:
//!
//! ```text
//! byte 0..8    base  — the leaf's minimum element, raw little-endian u64
//! byte 8..8+8w words — w = ⌈(max − base + 1) / 64⌉ little-endian u64 words
//! ```
//!
//! Bit `j` of word `k` set ⇔ the key `base + 64·k + j` is present. Two
//! structural invariants make the encoding canonical (one byte string per
//! element set): bit 0 of word 0 is always set (`base` is the minimum) and
//! the last word is non-zero (the span ends at the maximum). Encoded size
//! is `8 + 8·w` bytes, independent of the element count.
//!
//! All sums here use wrapping arithmetic, matching the `RangeSet` contract.

/// Raw bytes of the leading base key.
pub const BASE_BYTES: usize = 8;

/// Bit-plane masks: `MASKS[k]` selects the bit positions whose index has
/// bit `k` set, so `Σ_k 2^k · popcount(w & MASKS[k])` is the sum of the
/// set-bit positions of `w` in six popcounts.
const MASKS: [u64; 6] = [
    0xAAAA_AAAA_AAAA_AAAA,
    0xCCCC_CCCC_CCCC_CCCC,
    0xF0F0_F0F0_F0F0_F0F0,
    0xFF00_FF00_FF00_FF00,
    0xFFFF_0000_FFFF_0000,
    0xFFFF_FFFF_0000_0000,
];

/// Words needed to cover keys in `[base, max]` (both inclusive, `max ≥ base`).
#[inline]
pub fn span_words(base: u64, max: u64) -> usize {
    ((max - base) / 64 + 1) as usize
}

/// Encoded size in bytes of a bitmap leaf spanning `[base, max]`. Saturates
/// instead of overflowing on astronomical spans — callers only compare the
/// result against a leaf capacity, which such spans always exceed.
#[inline]
pub fn encoded_len(base: u64, max: u64) -> usize {
    BASE_BYTES.saturating_add(span_words(base, max).saturating_mul(8))
}

/// Read the base key from an encoded leaf.
#[inline]
pub fn base_of(buf: &[u8]) -> u64 {
    u64::from_le_bytes(buf[..8].try_into().unwrap())
}

/// Number of bitmap words in a leaf that uses `used` bytes.
#[inline]
pub fn word_count(used: usize) -> usize {
    debug_assert!(used >= BASE_BYTES && (used - BASE_BYTES).is_multiple_of(8));
    (used - BASE_BYTES) / 8
}

/// Read word `w` from an encoded leaf.
#[inline]
pub fn get_word(buf: &[u8], w: usize) -> u64 {
    let at = BASE_BYTES + w * 8;
    u64::from_le_bytes(buf[at..at + 8].try_into().unwrap())
}

/// Encode a non-empty strictly-increasing run into `out`; returns bytes
/// written (= [`encoded_len`] of the run's span). `out` must be large enough.
pub fn encode_from_sorted(elems: &[u64], out: &mut [u8]) -> usize {
    debug_assert!(!elems.is_empty());
    let base = elems[0];
    let max = *elems.last().unwrap();
    let used = encoded_len(base, max);
    debug_assert!(used <= out.len());
    out[..8].copy_from_slice(&base.to_le_bytes());
    out[BASE_BYTES..used].fill(0);
    // Sorted input visits words in non-decreasing order: accumulate one
    // word at a time and flush on word change, no read-modify-write.
    let mut cur_w = 0usize;
    let mut acc = 0u64;
    for &e in elems {
        debug_assert!(e >= base && e <= max);
        let off = e - base;
        let w = (off >> 6) as usize;
        if w != cur_w {
            let at = BASE_BYTES + cur_w * 8;
            out[at..at + 8].copy_from_slice(&acc.to_le_bytes());
            cur_w = w;
            acc = 0;
        }
        acc |= 1u64 << (off & 63);
    }
    let at = BASE_BYTES + cur_w * 8;
    out[at..at + 8].copy_from_slice(&acc.to_le_bytes());
    used
}

/// Serialize `base` + `words` into `out`; returns bytes written.
pub fn write_words(base: u64, words: &[u64], out: &mut [u8]) -> usize {
    let used = BASE_BYTES + words.len() * 8;
    debug_assert!(used <= out.len());
    out[..8].copy_from_slice(&base.to_le_bytes());
    for (i, &w) in words.iter().enumerate() {
        let at = BASE_BYTES + i * 8;
        out[at..at + 8].copy_from_slice(&w.to_le_bytes());
    }
    used
}

/// Deserialize the word array of an encoded leaf into `out` (cleared first).
pub fn read_words(buf: &[u8], used: usize, out: &mut Vec<u64>) {
    out.clear();
    let n = word_count(used);
    out.reserve(n);
    for w in 0..n {
        out.push(get_word(buf, w));
    }
}

/// Membership test — O(1): one word load and a shift.
#[inline]
pub fn contains(buf: &[u8], used: usize, key: u64) -> bool {
    let base = base_of(buf);
    if key < base {
        return false;
    }
    let off = key - base;
    let w = (off >> 6) as usize;
    if w >= word_count(used) {
        return false;
    }
    (get_word(buf, w) >> (off & 63)) & 1 == 1
}

/// Smallest element ≥ `key`, or `None` if every element is smaller.
pub fn successor_inclusive(buf: &[u8], used: usize, key: u64) -> Option<u64> {
    let base = base_of(buf);
    let nwords = word_count(used);
    let off = key.saturating_sub(base);
    let mut w = (off >> 6) as usize;
    if w >= nwords {
        return None;
    }
    let mut word = get_word(buf, w) & (!0u64 << (off & 63));
    loop {
        if word != 0 {
            let b = word.trailing_zeros() as u64;
            return Some(base + (w as u64) * 64 + b);
        }
        w += 1;
        if w >= nwords {
            return None;
        }
        word = get_word(buf, w);
    }
}

/// Maximum element. Relies on the canonical-form invariant that the last
/// word is non-zero.
#[inline]
pub fn max_elem(buf: &[u8], used: usize) -> u64 {
    let nwords = word_count(used);
    let last = get_word(buf, nwords - 1);
    debug_assert!(last != 0, "canonical bitmap leaf has a non-zero last word");
    base_of(buf) + ((nwords - 1) as u64) * 64 + (63 - last.leading_zeros() as u64)
}

/// Element count — one popcount per word.
pub fn count(buf: &[u8], used: usize) -> usize {
    let nwords = word_count(used);
    let mut n = 0usize;
    for w in 0..nwords {
        n += get_word(buf, w).count_ones() as usize;
    }
    n
}

/// Sum of the set-bit *positions* of `w` (0–63 each) in six popcounts.
#[inline]
pub fn pos_weighted_sum(w: u64) -> u64 {
    let mut s = 0u64;
    let mut k = 0;
    while k < 6 {
        s += ((w & MASKS[k]).count_ones() as u64) << k;
        k += 1;
    }
    s
}

/// Wrapping sum of the elements a word represents, where `first` is the
/// key value of the word's bit 0.
#[inline]
pub fn word_sum(w: u64, first: u64) -> u64 {
    first
        .wrapping_mul(w.count_ones() as u64)
        .wrapping_add(pos_weighted_sum(w))
}

/// Wrapping sum of every element in the leaf.
pub fn sum(buf: &[u8], used: usize) -> u64 {
    let base = base_of(buf);
    let nwords = word_count(used);
    let mut total = 0u64;
    for w in 0..nwords {
        let word = get_word(buf, w);
        if word != 0 {
            total = total.wrapping_add(word_sum(word, base.wrapping_add((w as u64) * 64)));
        }
    }
    total
}

/// Wrapping sum of the elements in `[lo, hi)` — boundary words are masked,
/// interior words go through [`word_sum`] whole.
pub fn range_sum(buf: &[u8], used: usize, lo: u64, hi: u64) -> u64 {
    let base = base_of(buf);
    let nwords = word_count(used);
    let span = (nwords as u64) * 64;
    if hi <= base {
        return 0;
    }
    let lo_off = lo.saturating_sub(base);
    let hi_off = (hi - base).min(span);
    if lo_off >= hi_off {
        return 0;
    }
    let w0 = (lo_off >> 6) as usize;
    let w1 = ((hi_off - 1) >> 6) as usize;
    let mut total = 0u64;
    for w in w0..=w1 {
        let mut word = get_word(buf, w);
        if w == w0 {
            word &= !0u64 << (lo_off & 63);
        }
        if w == w1 {
            let r = hi_off - (w1 as u64) * 64;
            if r < 64 {
                word &= (1u64 << r) - 1;
            }
        }
        if word != 0 {
            total = total.wrapping_add(word_sum(word, base.wrapping_add((w as u64) * 64)));
        }
    }
    total
}

/// Count of elements in `[lo, hi)` via masked popcounts.
pub fn range_count(buf: &[u8], used: usize, lo: u64, hi: u64) -> usize {
    let base = base_of(buf);
    let nwords = word_count(used);
    let span = (nwords as u64) * 64;
    if hi <= base {
        return 0;
    }
    let lo_off = lo.saturating_sub(base);
    let hi_off = (hi - base).min(span);
    if lo_off >= hi_off {
        return 0;
    }
    let w0 = (lo_off >> 6) as usize;
    let w1 = ((hi_off - 1) >> 6) as usize;
    let mut n = 0usize;
    for w in w0..=w1 {
        let mut word = get_word(buf, w);
        if w == w0 {
            word &= !0u64 << (lo_off & 63);
        }
        if w == w1 {
            let r = hi_off - (w1 as u64) * 64;
            if r < 64 {
                word &= (1u64 << r) - 1;
            }
        }
        n += word.count_ones() as usize;
    }
    n
}

/// Iterate elements in ascending order via `trailing_zeros`; stops early
/// when `f` returns `false`. Returns `false` iff stopped early.
pub fn for_each(buf: &[u8], used: usize, mut f: impl FnMut(u64) -> bool) -> bool {
    let base = base_of(buf);
    let nwords = word_count(used);
    for w in 0..nwords {
        let mut word = get_word(buf, w);
        let first = base + (w as u64) * 64;
        while word != 0 {
            let b = word.trailing_zeros() as u64;
            if !f(first + b) {
                return false;
            }
            word &= word - 1;
        }
    }
    true
}

/// Like [`for_each`], but visits only elements ≥ `start`: whole words
/// below `start` are skipped and the boundary word is masked, so the
/// pre-`start` prefix of a dense leaf costs O(words), not O(set bits).
pub fn for_each_from(buf: &[u8], used: usize, start: u64, mut f: impl FnMut(u64) -> bool) -> bool {
    let base = base_of(buf);
    if start <= base {
        return for_each(buf, used, f);
    }
    let nwords = word_count(used);
    let skip = ((start - base) / 64) as usize;
    if skip >= nwords {
        return true;
    }
    for w in skip..nwords {
        let mut word = get_word(buf, w);
        let first = base + (w as u64) * 64;
        if w == skip {
            word &= !0u64 << ((start - base) & 63);
        }
        while word != 0 {
            let b = word.trailing_zeros() as u64;
            if !f(first + b) {
                return false;
            }
            word &= word - 1;
        }
    }
    true
}

/// Append every element to `out` in ascending order.
pub fn decode_into(buf: &[u8], used: usize, out: &mut Vec<u64>) {
    for_each(buf, used, |e| {
        out.push(e);
        true
    });
}

/// OR `src`'s bits, shifted *up* by `shift` bit positions, into `dst`.
/// `dst` must already cover the shifted span (caller sizes it).
pub fn or_shifted(src: &[u64], shift: u64, dst: &mut [u64]) {
    let ws = (shift >> 6) as usize;
    let bs = (shift & 63) as u32;
    if bs == 0 {
        for (i, &s) in src.iter().enumerate() {
            dst[i + ws] |= s;
        }
    } else {
        for (i, &s) in src.iter().enumerate() {
            dst[i + ws] |= s << bs;
            let hi = s >> (64 - bs);
            if hi != 0 {
                dst[i + ws + 1] |= hi;
            }
        }
    }
}

/// Set the bit at `off`; returns `true` iff it was newly set.
#[inline]
pub fn set_bit(words: &mut [u64], off: u64) -> bool {
    let w = (off >> 6) as usize;
    let m = 1u64 << (off & 63);
    let was = words[w] & m != 0;
    words[w] |= m;
    !was
}

/// Clear the bit at `off`; returns `true` iff it was previously set.
#[inline]
pub fn clear_bit(words: &mut [u64], off: u64) -> bool {
    let w = (off >> 6) as usize;
    let m = 1u64 << (off & 63);
    let was = words[w] & m != 0;
    words[w] &= !m;
    was
}

/// Restore canonical form after edits: shift so the first set bit lands on
/// bit 0 of word 0 and drop trailing zero words. Returns the bit offset
/// shifted out — the amount to *add* to the leaf's base. `words` must
/// contain at least one set bit.
pub fn normalize(words: &mut Vec<u64>) -> u64 {
    let fw = words
        .iter()
        .position(|&w| w != 0)
        .expect("normalize on an empty bitmap");
    let fb = words[fw].trailing_zeros();
    let shift = (fw as u64) * 64 + fb as u64;
    if fb == 0 {
        words.drain(..fw);
    } else {
        let n = words.len();
        for i in fw..n {
            let lo = words[i] >> fb;
            let hi = if i + 1 < n {
                words[i + 1] << (64 - fb)
            } else {
                0
            };
            words[i - fw] = lo | hi;
        }
        words.truncate(n - fw);
    }
    while let Some(&0) = words.last() {
        words.pop();
    }
    shift
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keyset(seed: u64, n: usize, span: u64, base: u64) -> Vec<u64> {
        // Simple xorshift-style generator: deterministic, no deps.
        let mut s = seed | 1;
        let mut set = std::collections::BTreeSet::new();
        while set.len() < n {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            set.insert(base + s % span);
        }
        set.into_iter().collect()
    }

    fn encode(elems: &[u64]) -> (Vec<u8>, usize) {
        let mut buf = vec![0u8; encoded_len(elems[0], *elems.last().unwrap())];
        let used = encode_from_sorted(elems, &mut buf);
        assert_eq!(used, buf.len());
        (buf, used)
    }

    #[test]
    fn roundtrip_and_point_queries() {
        for (seed, n, span) in [(7, 50, 400), (9, 1, 1), (11, 64, 64), (13, 200, 8000)] {
            let elems = keyset(seed, n, span, 1 << 33);
            let (buf, used) = encode(&elems);
            assert_eq!(base_of(&buf), elems[0]);
            let mut back = Vec::new();
            decode_into(&buf, used, &mut back);
            assert_eq!(back, elems);
            assert_eq!(count(&buf, used), elems.len());
            assert_eq!(max_elem(&buf, used), *elems.last().unwrap());
            for probe in elems[0].saturating_sub(3)..=*elems.last().unwrap() + 3 {
                assert_eq!(
                    contains(&buf, used, probe),
                    elems.binary_search(&probe).is_ok()
                );
                let want = elems.iter().copied().find(|&e| e >= probe);
                assert_eq!(
                    successor_inclusive(&buf, used, probe),
                    want,
                    "probe {probe}"
                );
            }
        }
    }

    #[test]
    fn for_each_from_matches_filtered_walk() {
        let elems = keyset(21, 300, 6_000, 1 << 40);
        let (buf, used) = encode(&elems);
        let lo0 = elems[0];
        for start in [
            lo0.saturating_sub(10),
            lo0,
            lo0 + 1,
            lo0 + 63,
            lo0 + 64,
            lo0 + 65,
            elems[150],
            elems[150] + 1,
            *elems.last().unwrap(),
            *elems.last().unwrap() + 1,
        ] {
            let mut got = Vec::new();
            assert!(for_each_from(&buf, used, start, |e| {
                got.push(e);
                true
            }));
            let want: Vec<u64> = elems.iter().copied().filter(|&e| e >= start).collect();
            assert_eq!(got, want, "start {start}");
            // Early exit still propagates.
            if !want.is_empty() {
                let mut n = 0;
                assert!(!for_each_from(&buf, used, start, |_| {
                    n += 1;
                    false
                }));
                assert_eq!(n, 1);
            }
        }
    }

    #[test]
    fn sums_match_naive() {
        let elems = keyset(42, 300, 10_000, u64::MAX - 20_000);
        let (buf, used) = encode(&elems);
        let naive: u64 = elems.iter().fold(0u64, |a, &e| a.wrapping_add(e));
        assert_eq!(sum(&buf, used), naive);
        let lo0 = elems[0];
        for (lo, hi) in [
            (lo0, lo0 + 1),
            (lo0 + 17, lo0 + 4096),
            (lo0.wrapping_sub(100), u64::MAX),
            (elems[120], elems[240]),
            (lo0 + 63, lo0 + 65),
        ] {
            let naive = elems
                .iter()
                .filter(|&&e| e >= lo && e < hi)
                .fold(0u64, |a, &e| a.wrapping_add(e));
            assert_eq!(range_sum(&buf, used, lo, hi), naive, "[{lo}, {hi})");
            let nc = elems.iter().filter(|&&e| e >= lo && e < hi).count();
            assert_eq!(range_count(&buf, used, lo, hi), nc);
        }
        assert_eq!(range_sum(&buf, used, 5, 10), 0);
        assert_eq!(range_count(&buf, used, 5, 10), 0);
    }

    #[test]
    fn pos_weighted_sum_matches_loop() {
        for w in [0u64, 1, u64::MAX, 0xDEAD_BEEF_0BAD_F00D, 1 << 63] {
            let mut naive = 0u64;
            for b in 0..64 {
                if w >> b & 1 == 1 {
                    naive += b;
                }
            }
            assert_eq!(pos_weighted_sum(w), naive);
        }
    }

    #[test]
    fn early_exit_iteration() {
        let elems: Vec<u64> = (100..200).step_by(3).collect();
        let (buf, used) = encode(&elems);
        let mut seen = Vec::new();
        let finished = for_each(&buf, used, |e| {
            seen.push(e);
            e < 130
        });
        assert!(!finished);
        assert_eq!(*seen.last().unwrap(), 130);
    }

    #[test]
    fn or_shifted_merges_bit_sets() {
        let old: Vec<u64> = vec![0b1011, 1 << 63];
        for shift in [0u64, 1, 63, 64, 65, 130] {
            let need = (128 + shift).div_ceil(64) as usize;
            let mut dst = vec![0u64; need];
            or_shifted(&old, shift, &mut dst);
            for b in 0..128u64 {
                let src_set = (old[(b >> 6) as usize] >> (b & 63)) & 1 == 1;
                let d = b + shift;
                let dst_set = (dst[(d >> 6) as usize] >> (d & 63)) & 1 == 1;
                assert_eq!(src_set, dst_set, "shift {shift} bit {b}");
            }
        }
    }

    #[test]
    fn normalize_rebases_and_trims() {
        // bits at offsets 70, 100, 190 → after normalize: 0, 30, 120.
        let mut words = vec![0u64; 5];
        for off in [70u64, 100, 190] {
            set_bit(&mut words, off);
        }
        let shift = normalize(&mut words);
        assert_eq!(shift, 70);
        assert_eq!(words.len(), 2);
        assert!(words[0] & 1 == 1);
        for off in [0u64, 30, 120] {
            assert!(words[(off >> 6) as usize] >> (off & 63) & 1 == 1);
        }
        // Single-bit case trims to one word.
        let mut words = vec![0u64, 0, 1 << 5];
        assert_eq!(normalize(&mut words), 133);
        assert_eq!(words, vec![1]);
    }

    #[test]
    fn encoding_cost_is_span_bound() {
        assert_eq!(encoded_len(10, 10), 16);
        assert_eq!(encoded_len(10, 73), 16);
        assert_eq!(encoded_len(10, 74), 24);
        // 256 consecutive keys: 8 + 4 words = 40 bytes (delta would be 263).
        assert_eq!(encoded_len(1000, 1255), 40);
        // Astronomical span saturates instead of overflowing.
        assert!(encoded_len(0, u64::MAX) > 1 << 50);
    }
}
