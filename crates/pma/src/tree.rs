//! The implicit PMA tree, realized as recursive range halving over leaves.
//!
//! "The PMA defines an implicit binary tree with leaves of size Θ(log N)
//! cells. ... Every node in the PMA tree has a corresponding region of
//! cells." (§3). Because the growing factor is 1.2× (Appendix C), the number
//! of leaves is rarely a power of two, so instead of bit tricks we define
//! the tree by recursive halving of the leaf range `[0, L)`: a node *is* a
//! half-open leaf range, its children are the two halves. This keeps every
//! operation O(log L) without restricting L.

/// A node of the implicit tree: a half-open range of leaves plus its depth
/// (root = depth 0). Two nodes are the same node iff their ranges are equal;
/// depth is derived but carried for density-bound lookups.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Node {
    /// First leaf of the region.
    pub start: usize,
    /// One past the last leaf of the region.
    pub end: usize,
    /// Depth from the root (root = 0).
    pub depth: u32,
}

impl Node {
    /// Number of leaves in the region.
    #[inline]
    #[allow(clippy::len_without_is_empty)] // a tree node's range is never empty
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True for single-leaf nodes.
    #[inline]
    pub fn is_leaf(&self) -> bool {
        self.len() == 1
    }

    /// The two children of an internal node (left gets the smaller half when
    /// the range is odd, matching `start + len/2` splitting everywhere).
    #[inline]
    pub fn children(&self) -> (Node, Node) {
        debug_assert!(!self.is_leaf());
        let mid = self.start + self.len() / 2;
        (
            Node {
                start: self.start,
                end: mid,
                depth: self.depth + 1,
            },
            Node {
                start: mid,
                end: self.end,
                depth: self.depth + 1,
            },
        )
    }

    /// True if `other`'s region is contained in ours.
    #[inline]
    pub fn contains(&self, other: &Node) -> bool {
        self.start <= other.start && other.end <= self.end
    }
}

/// The implicit tree over `num_leaves` leaves.
#[derive(Clone, Copy, Debug)]
pub struct ImplicitTree {
    num_leaves: usize,
}

impl ImplicitTree {
    /// Tree over `num_leaves` ≥ 1 leaves.
    pub fn new(num_leaves: usize) -> Self {
        assert!(num_leaves >= 1);
        Self { num_leaves }
    }

    /// Number of leaves.
    #[inline]
    pub fn num_leaves(&self) -> usize {
        self.num_leaves
    }

    /// The root node `[0, L)`.
    #[inline]
    pub fn root(&self) -> Node {
        Node {
            start: 0,
            end: self.num_leaves,
            depth: 0,
        }
    }

    /// Maximum depth of any leaf = ⌈log₂ L⌉. With range halving every leaf
    /// sits at depth ⌈log₂ L⌉ or ⌈log₂ L⌉ − 1.
    #[inline]
    pub fn max_depth(&self) -> u32 {
        usize::BITS - (self.num_leaves - 1).leading_zeros().min(usize::BITS)
    }

    /// The root-to-leaf path for `leaf`, root first, leaf node last.
    /// O(log L) time and output size.
    pub fn path_to_leaf(&self, leaf: usize) -> Vec<Node> {
        debug_assert!(leaf < self.num_leaves);
        let mut path = Vec::with_capacity(self.max_depth() as usize + 1);
        let mut node = self.root();
        path.push(node);
        while !node.is_leaf() {
            let (l, r) = node.children();
            node = if leaf < l.end { l } else { r };
            path.push(node);
        }
        path
    }

    /// The leaf node (range `[leaf, leaf+1)`) with its true depth.
    /// Allocation-free descent (hot in the counting phase).
    pub fn leaf_node(&self, leaf: usize) -> Node {
        debug_assert!(leaf < self.num_leaves);
        let mut node = self.root();
        while !node.is_leaf() {
            let (l, r) = node.children();
            node = if leaf < l.end { l } else { r };
        }
        node
    }

    /// Parent of `node`, or `None` for the root. O(log L): re-descends from
    /// the root.
    pub fn parent_of(&self, node: Node) -> Option<Node> {
        if node.len() == self.num_leaves {
            return None;
        }
        let mut cur = self.root();
        loop {
            debug_assert!(cur.contains(&node) && cur != node);
            let (l, r) = cur.children();
            if l == node || r == node {
                return Some(cur);
            }
            cur = if node.start < l.end { l } else { r };
            debug_assert!(cur.contains(&node), "node is not a tree node");
        }
    }

    /// True if `node` is a node of this tree (reachable by halving).
    pub fn is_tree_node(&self, node: Node) -> bool {
        let mut cur = self.root();
        loop {
            if cur == node {
                return true;
            }
            if cur.is_leaf() || !cur.contains(&node) {
                return false;
            }
            let (l, r) = cur.children();
            cur = if node.start < l.end { l } else { r };
            if !cur.contains(&node) {
                return false;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_and_leaf_basics() {
        let t = ImplicitTree::new(5);
        assert_eq!(
            t.root(),
            Node {
                start: 0,
                end: 5,
                depth: 0
            }
        );
        assert_eq!(t.max_depth(), 3);
        let leaf = t.leaf_node(3);
        assert_eq!((leaf.start, leaf.end), (3, 4));
    }

    #[test]
    fn single_leaf_tree() {
        let t = ImplicitTree::new(1);
        assert_eq!(t.max_depth(), 0);
        assert!(t.root().is_leaf());
        assert_eq!(t.path_to_leaf(0), vec![t.root()]);
        assert_eq!(t.parent_of(t.root()), None);
    }

    #[test]
    fn children_partition_parent() {
        for leaves in [2usize, 3, 7, 8, 13, 100] {
            let t = ImplicitTree::new(leaves);
            let mut stack = vec![t.root()];
            while let Some(n) = stack.pop() {
                if n.is_leaf() {
                    continue;
                }
                let (l, r) = n.children();
                assert_eq!(l.start, n.start);
                assert_eq!(l.end, r.start);
                assert_eq!(r.end, n.end);
                assert!(l.len() >= 1 && r.len() >= 1);
                // Halving keeps the tree balanced: |left - right| ≤ 1.
                assert!(l.len().abs_diff(r.len()) <= 1);
                stack.push(l);
                stack.push(r);
            }
        }
    }

    #[test]
    fn path_is_consistent_with_children() {
        let t = ImplicitTree::new(11);
        for leaf in 0..11 {
            let path = t.path_to_leaf(leaf);
            assert_eq!(path[0], t.root());
            let last = *path.last().unwrap();
            assert!(last.is_leaf());
            assert_eq!(last.start, leaf);
            for w in path.windows(2) {
                let (l, r) = w[0].children();
                assert!(w[1] == l || w[1] == r);
                assert_eq!(w[1].depth, w[0].depth + 1);
            }
            // Depth of every leaf is max_depth or max_depth - 1.
            let d = last.depth;
            assert!(
                d == t.max_depth() || d + 1 == t.max_depth(),
                "leaf {leaf} depth {d}"
            );
        }
    }

    #[test]
    fn parent_inverts_children() {
        for leaves in [2usize, 3, 9, 16, 37] {
            let t = ImplicitTree::new(leaves);
            let mut stack = vec![t.root()];
            while let Some(n) = stack.pop() {
                if n.is_leaf() {
                    continue;
                }
                let (l, r) = n.children();
                assert_eq!(t.parent_of(l), Some(n));
                assert_eq!(t.parent_of(r), Some(n));
                stack.push(l);
                stack.push(r);
            }
        }
    }

    #[test]
    fn is_tree_node_accepts_only_halving_ranges() {
        let t = ImplicitTree::new(8);
        assert!(t.is_tree_node(Node {
            start: 0,
            end: 8,
            depth: 0
        }));
        assert!(t.is_tree_node(Node {
            start: 4,
            end: 6,
            depth: 2
        }));
        // [1,3) is not reachable by halving [0,8).
        assert!(!t.is_tree_node(Node {
            start: 1,
            end: 3,
            depth: 2
        }));
    }

    #[test]
    fn max_depth_formula() {
        for (leaves, depth) in [
            (1usize, 0u32),
            (2, 1),
            (3, 2),
            (4, 2),
            (5, 3),
            (8, 3),
            (9, 4),
        ] {
            assert_eq!(ImplicitTree::new(leaves).max_depth(), depth, "L={leaves}");
        }
    }
}
