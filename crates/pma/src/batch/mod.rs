//! The work-efficient parallel batch-update algorithm (§4 of the paper).
//!
//! `insert_batch` / `remove_batch` follow the paper's three regimes:
//!
//! * **tiny batches** fall back to point updates (the paper uses point
//!   inserts "for small batches when the batch update algorithm does not
//!   provide practical benefits", Table 3);
//! * **huge batches** (`k ≥ n/10`) rebuild the whole structure with a
//!   linear two-finger merge ("the optimal algorithm is to rebuild the
//!   entire data structure", §4);
//! * everything in between runs the three-phase algorithm:
//!   batch-merge (route + parallel leaf merges), counting, redistribute —
//!   `O(k(log n + log²n / B))` amortized work, `O(log²n)` span (Theorem 5).

mod count;
mod redistribute;
mod route;

pub(crate) use count::{count_phase, BoundKind};
pub(crate) use redistribute::redistribute_ranges;

use crate::leaf::{set_difference_into, set_union_into, SharedLeaves};
use crate::{LeafStorage, PmaCore, PmaKey};
use rayon::prelude::*;

/// Batches smaller than this use point updates (paper: "e.g., k < 100").
const POINT_UPDATE_CUTOFF: usize = 128;

/// Batches at least `len / FULL_REBUILD_DIVISOR` trigger a full two-finger
/// merge rebuild (paper: "e.g., k ≥ n/10").
const FULL_REBUILD_DIVISOR: usize = 10;

/// Assignment counts at or below this merge serially: fork overhead must
/// be amortized across the available workers, so the grain shrinks as the
/// pool grows (on the paper's 64-core machine parallel batch updates pay
/// off from ~1e3 elements; on a dual-core laptop only from ~1e5).
fn serial_merge_cutoff() -> usize {
    (8192 / rayon::current_num_threads().max(1)).max(256)
}

impl<K: PmaKey, L: LeafStorage<K>> PmaCore<K, L> {
    /// Insert a batch of keys; sorts and deduplicates in place unless
    /// `sorted` promises the batch is already sorted and unique. Returns the
    /// number of keys that were not already present (the artifact's
    /// `insert_batch`).
    pub fn insert_batch(&mut self, batch: &mut [K], sorted: bool) -> usize {
        cpma_api::BatchSet::insert_batch(self, batch, sorted)
    }

    /// Remove a batch of keys; see [`Self::insert_batch`] for `sorted`.
    /// Returns the number of keys actually removed (the artifact's
    /// `remove_batch`).
    pub fn remove_batch(&mut self, batch: &mut [K], sorted: bool) -> usize {
        cpma_api::BatchSet::remove_batch(self, batch, sorted)
    }

    /// Batch insert of a sorted, deduplicated slice.
    pub fn insert_batch_sorted(&mut self, batch: &[K]) -> usize {
        if batch.is_empty() {
            return 0;
        }
        // Empty structure: bulk load at the target density.
        if self.len == 0 {
            let cap = self.capacity_for_target(batch);
            self.rebuild_into(batch, cap);
            return batch.len();
        }
        // Tiny batch: point updates win.
        if batch.len() < POINT_UPDATE_CUTOFF {
            return batch.iter().filter(|&&k| self.insert(k)).count();
        }
        // Huge batch: parallel linear two-finger merge + rebuild.
        if batch.len() >= self.len / FULL_REBUILD_DIVISOR {
            let current = self.collect_all_par();
            let (merged, added) = par_set_union(&current, batch);
            let cap = self.capacity_for_target(&merged);
            self.rebuild_into(&merged, cap);
            return added;
        }

        // Phase 1: batch merge (route, then parallel disjoint leaf merges).
        // Small assignment sets run serially: fork-join overhead would
        // otherwise dominate (work-efficiency, §4).
        let assignments = route::route_batch(self, batch);
        let shared = self.storage.shared();
        let (added, units_delta) = if assignments.len() <= serial_merge_cutoff() {
            let mut scratch = Vec::new();
            let mut acc = (0usize, 0isize);
            for a in &assignments {
                // SAFETY: single-threaded here.
                let out =
                    unsafe { shared.merge_into_leaf(a.leaf, &batch[a.start..a.end], &mut scratch) };
                acc.0 += out.delta_count;
                acc.1 += out.delta_units;
            }
            acc
        } else {
            assignments
                .par_iter()
                .map_init(Vec::new, |scratch, a| {
                    // SAFETY: route_batch assigns each leaf at most once.
                    let out =
                        unsafe { shared.merge_into_leaf(a.leaf, &batch[a.start..a.end], scratch) };
                    (out.delta_count, out.delta_units)
                })
                .reduce(|| (0usize, 0isize), |x, y| (x.0 + y.0, x.1 + y.1))
        };
        self.len += added;
        self.units = self.units.checked_add_signed(units_delta).unwrap();
        if added == 0 {
            return 0; // nothing changed; no bound can be newly violated
        }

        // Phase 2: counting.
        let touched: Vec<usize> = assignments.iter().map(|a| a.leaf).collect();
        let outcome = count_phase(self, &touched, BoundKind::Upper);

        // Phase 3: redistribute (or grow on root violation).
        if outcome.resize_root {
            let elems = self.collect_all_par();
            self.grow_and_rebuild(&elems);
        } else {
            redistribute_ranges(self, &outcome.ranges);
        }
        self.debug_check_no_overflow();
        added
    }

    /// Batch remove of a sorted, deduplicated slice.
    pub fn remove_batch_sorted(&mut self, batch: &[K]) -> usize {
        if batch.is_empty() || self.len == 0 {
            return 0;
        }
        if batch.len() < POINT_UPDATE_CUTOFF {
            return batch.iter().filter(|&&k| self.remove(k)).count();
        }
        if batch.len() >= self.len / FULL_REBUILD_DIVISOR {
            let current = self.collect_all_par();
            let (remaining, removed) = par_set_difference(&current, batch);
            if removed == 0 {
                return 0;
            }
            let cap = self.capacity_for_target(&remaining);
            self.rebuild_into(&remaining, cap);
            return removed;
        }

        let assignments = route::route_batch(self, batch);
        let shared = self.storage.shared();
        let (removed, units_delta) = if assignments.len() <= serial_merge_cutoff() {
            let mut scratch = Vec::new();
            let mut acc = (0usize, 0isize);
            for a in &assignments {
                // SAFETY: single-threaded here.
                let out = unsafe {
                    shared.remove_from_leaf(a.leaf, &batch[a.start..a.end], &mut scratch)
                };
                acc.0 += out.delta_count;
                acc.1 += out.delta_units;
            }
            acc
        } else {
            assignments
                .par_iter()
                .map_init(Vec::new, |scratch, a| {
                    // SAFETY: route_batch assigns each leaf at most once.
                    let out =
                        unsafe { shared.remove_from_leaf(a.leaf, &batch[a.start..a.end], scratch) };
                    (out.delta_count, out.delta_units)
                })
                .reduce(|| (0usize, 0isize), |x, y| (x.0 + y.0, x.1 + y.1))
        };
        self.len -= removed;
        self.units = self.units.checked_add_signed(units_delta).unwrap();
        if removed == 0 {
            return 0;
        }

        let touched: Vec<usize> = assignments.iter().map(|a| a.leaf).collect();
        let outcome = count_phase(self, &touched, BoundKind::Lower);
        if outcome.resize_root {
            let elems = self.collect_all_par();
            if elems.is_empty() {
                let floor = self.cfg.min_leaves * L::MIN_LEAF_UNITS;
                self.rebuild_into(&elems, floor);
            } else if self.storage.num_leaves() > self.cfg.min_leaves {
                self.shrink_and_rebuild(&elems);
            } else {
                // At the floor: just re-spread evenly.
                let root = self.tree().root();
                redistribute_ranges(self, &[root]);
            }
        } else {
            redistribute_ranges(self, &outcome.ranges);
        }
        self.debug_check_no_overflow();
        removed
    }

    #[inline]
    fn debug_check_no_overflow(&self) {
        #[cfg(debug_assertions)]
        {
            for l in 0..self.storage.num_leaves() {
                debug_assert!(
                    !self.storage.is_overflowed(l),
                    "leaf {l} left overflowed after batch op"
                );
            }
        }
    }
}

/// Parallel sorted set union: split both inputs at quantile pivots of `a`,
/// union the pieces concurrently, then concatenate. Returns the union and
/// the number of `b` elements not present in `a` (the parallel "linear
/// two-finger merge" of the paper's huge-batch regime).
pub(crate) fn par_set_union<K: PmaKey>(a: &[K], b: &[K]) -> (Vec<K>, usize) {
    const SERIAL_LIMIT: usize = 1 << 15;
    if a.len() + b.len() <= SERIAL_LIMIT {
        let mut out = Vec::new();
        let added = set_union_into(a, b, &mut out);
        return (out, added);
    }
    let pieces = rayon::current_num_threads().max(2) * 4;
    let cuts: Vec<(usize, usize)> = (0..=pieces)
        .map(|p| {
            if p == 0 {
                (0, 0)
            } else if p == pieces {
                (a.len(), b.len())
            } else {
                let ai = p * a.len() / pieces;
                // b elements equal to the pivot go right, where a[ai] lives.
                let bi = b.partition_point(|&e| e < a[ai]);
                (ai, bi)
            }
        })
        .collect();
    let parts: Vec<(Vec<K>, usize)> = (0..pieces)
        .into_par_iter()
        .map(|p| {
            let (a0, b0) = cuts[p];
            let (a1, b1) = cuts[p + 1];
            let mut out = Vec::new();
            let added = set_union_into(&a[a0..a1], &b[b0..b1], &mut out);
            (out, added)
        })
        .collect();
    let total: usize = parts.iter().map(|(v, _)| v.len()).sum();
    let added: usize = parts.iter().map(|(_, c)| c).sum();
    let mut out = Vec::with_capacity(total);
    for (v, _) in parts {
        out.extend_from_slice(&v);
    }
    (out, added)
}

/// Parallel sorted set difference `a \ b`; returns the survivors and the
/// number removed.
pub(crate) fn par_set_difference<K: PmaKey>(a: &[K], b: &[K]) -> (Vec<K>, usize) {
    const SERIAL_LIMIT: usize = 1 << 15;
    if a.len() + b.len() <= SERIAL_LIMIT {
        let mut out = Vec::new();
        let removed = set_difference_into(a, b, &mut out);
        return (out, removed);
    }
    let pieces = rayon::current_num_threads().max(2) * 4;
    let cuts: Vec<(usize, usize)> = (0..=pieces)
        .map(|p| {
            if p == 0 {
                (0, 0)
            } else if p == pieces {
                (a.len(), b.len())
            } else {
                let ai = p * a.len() / pieces;
                let bi = b.partition_point(|&e| e < a[ai]);
                (ai, bi)
            }
        })
        .collect();
    let parts: Vec<(Vec<K>, usize)> = (0..pieces)
        .into_par_iter()
        .map(|p| {
            let (a0, b0) = cuts[p];
            let (a1, b1) = cuts[p + 1];
            let mut out = Vec::new();
            let removed = set_difference_into(&a[a0..a1], &b[b0..b1], &mut out);
            (out, removed)
        })
        .collect();
    let total: usize = parts.iter().map(|(v, _)| v.len()).sum();
    let removed: usize = parts.iter().map(|(_, c)| c).sum();
    let mut out = Vec::with_capacity(total);
    for (v, _) in parts {
        out.extend_from_slice(&v);
    }
    (out, removed)
}

#[cfg(test)]
mod tests {
    use crate::{Cpma, Pma};
    use std::collections::BTreeSet;

    fn lcg_keys(n: usize, seed: u64, bits: u32) -> Vec<u64> {
        let mut x = seed;
        (0..n)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                x >> (64 - bits)
            })
            .collect()
    }

    #[test]
    fn batch_insert_into_empty_builds() {
        let mut p = Pma::<u64>::new();
        let mut batch: Vec<u64> = vec![5, 3, 9, 3, 1];
        assert_eq!(p.insert_batch(&mut batch, false), 4);
        assert_eq!(p.iter().collect::<Vec<_>>(), vec![1, 3, 5, 9]);
        p.check_invariants();
    }

    #[test]
    fn batch_equals_point_inserts_pma() {
        let keys = lcg_keys(20_000, 42, 30);
        let mut batched = Pma::<u64>::new();
        let mut pointed = Pma::<u64>::new();
        let mut model = BTreeSet::new();
        for chunk in keys.chunks(1500) {
            let mut b = chunk.to_vec();
            let added = batched.insert_batch(&mut b, false);
            let mut point_added = 0;
            for &k in chunk {
                if pointed.insert(k) {
                    point_added += 1;
                }
                model.insert(k);
            }
            assert_eq!(added, point_added);
            batched.check_invariants();
        }
        assert_eq!(batched.len(), model.len());
        assert!(batched.iter().eq(model.iter().copied()));
        assert!(pointed.iter().eq(model.iter().copied()));
    }

    #[test]
    fn batch_equals_point_inserts_cpma() {
        let keys = lcg_keys(20_000, 7, 34);
        let mut c = Cpma::new();
        let mut model = BTreeSet::new();
        for chunk in keys.chunks(2500) {
            let mut b = chunk.to_vec();
            c.insert_batch(&mut b, false);
            model.extend(chunk.iter().copied());
            c.check_invariants();
        }
        assert_eq!(c.len(), model.len());
        assert!(c.iter().eq(model.iter().copied()));
    }

    #[test]
    fn batch_sizes_spanning_all_regimes() {
        // Point-update, three-phase, and full-rebuild paths.
        for &batch_size in &[10usize, 100, 1000, 30_000] {
            let mut c = Cpma::new();
            let mut model = BTreeSet::new();
            let keys = lcg_keys(60_000, batch_size as u64, 32);
            for chunk in keys.chunks(batch_size) {
                let mut b = chunk.to_vec();
                c.insert_batch(&mut b, false);
                model.extend(chunk.iter().copied());
            }
            assert_eq!(c.len(), model.len(), "batch_size={batch_size}");
            assert!(c.iter().eq(model.iter().copied()));
            c.check_invariants();
        }
    }

    #[test]
    fn batch_remove_matches_model() {
        let keys = lcg_keys(30_000, 99, 26);
        let mut c = Cpma::new();
        let mut model: BTreeSet<u64> = BTreeSet::new();
        let mut insert = keys.clone();
        c.insert_batch(&mut insert, false);
        model.extend(keys.iter().copied());
        c.check_invariants();
        // Remove in batches: half present keys, half misses.
        for chunk in keys.chunks(3000).step_by(2) {
            let mut b: Vec<u64> = chunk
                .iter()
                .map(|&k| k ^ 1)
                .chain(chunk.iter().copied())
                .collect();
            let removed = c.remove_batch(&mut b, false);
            let mut expect = 0;
            let mut seen = BTreeSet::new();
            for k in chunk.iter().map(|&k| k ^ 1).chain(chunk.iter().copied()) {
                if seen.insert(k) && model.remove(&k) {
                    expect += 1;
                }
            }
            assert_eq!(removed, expect);
            c.check_invariants();
        }
        assert!(c.iter().eq(model.iter().copied()));
    }

    #[test]
    fn batch_remove_everything() {
        let mut p = Pma::<u64>::new();
        let mut keys: Vec<u64> = (0..10_000).map(|i| i * 3).collect();
        p.insert_batch(&mut keys.clone(), true);
        let removed = p.remove_batch(&mut keys, true);
        assert_eq!(removed, 10_000);
        assert!(p.is_empty());
        p.check_invariants();
        // Still usable afterwards.
        let mut again = vec![1u64, 2, 3];
        p.insert_batch(&mut again, true);
        assert_eq!(p.len(), 3);
        p.check_invariants();
    }

    #[test]
    fn batch_with_all_duplicates_of_existing() {
        let mut c = Cpma::new();
        let mut keys: Vec<u64> = (0..5000).collect();
        c.insert_batch(&mut keys, true);
        let mut again = keys.clone();
        assert_eq!(c.insert_batch(&mut again, true), 0);
        assert_eq!(c.len(), 5000);
        c.check_invariants();
    }

    #[test]
    fn skewed_batch_single_leaf_target() {
        // All batch elements land in one leaf: the worst case the paper
        // calls out ("the batch-parallel PMA is well-suited for the case of
        // all insertions targeting the same leaf").
        let spread: Vec<u64> = (0..10_000u64).map(|i| i << 20).collect();
        let mut c = Cpma::from_sorted(&spread);
        let mut tight: Vec<u64> = (0..5_000u64).map(|i| (5_000u64 << 20) + i + 1).collect();
        let added = c.insert_batch(&mut tight, true);
        assert_eq!(added, 5_000);
        assert_eq!(c.len(), 15_000);
        c.check_invariants();
    }

    #[test]
    fn interleaved_batch_insert_remove() {
        let mut p = Pma::<u64>::new();
        let mut model = BTreeSet::new();
        for round in 0..10u64 {
            let ins = lcg_keys(4000, round * 2 + 1, 24);
            let del = lcg_keys(3000, round * 2 + 2, 24);
            let mut b = ins.clone();
            p.insert_batch(&mut b, false);
            model.extend(ins.iter().copied());
            let mut d = del.clone();
            p.remove_batch(&mut d, false);
            for k in del {
                model.remove(&k);
            }
            assert_eq!(p.len(), model.len(), "round {round}");
            p.check_invariants();
        }
        assert!(p.iter().eq(model.iter().copied()));
    }
}
