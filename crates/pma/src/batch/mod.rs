//! The work-efficient parallel batch-update algorithm (§4 of the paper),
//! one-sided *and* mixed.
//!
//! All three batch entry points — `insert_batch_sorted`,
//! `remove_batch_sorted`, and the mixed-op `apply_batch_sorted` — follow
//! the paper's three regimes:
//!
//! * **tiny batches** (below [`crate::PmaConfig::point_update_cutoff`])
//!   fall back to point updates (the paper uses point inserts "for small
//!   batches when the batch update algorithm does not provide practical
//!   benefits", Table 3);
//! * **huge batches** (`k ≥ n /`
//!   [`crate::PmaConfig::full_rebuild_divisor`]) rebuild the whole
//!   structure with a linear merge ("the optimal algorithm is to rebuild
//!   the entire data structure", §4) — two-finger for one-sided batches,
//!   three-finger ([`par_set_merge_ops`]) for mixed ones;
//! * everything in between runs the four-phase pipeline —
//!   `O(k(log n + log²n / B))` amortized work, `O(log²n)` span
//!   (Theorem 5):
//!   1. **route** (`route.rs`) — the recursive midpoint search partitions
//!      the batch into per-leaf runs; op runs route exactly like key runs
//!      (routing reads only keys);
//!   2. **merge** — parallel rewrites of disjoint leaves; a mixed run
//!      threads every key's insert-or-remove through **one** rewrite of
//!      its leaf ([`crate::leaf::SharedLeaves::merge_ops_into_leaf`], on
//!      both the uncompressed and the delta-coded leaf codec);
//!   3. **count** (`count.rs`) — work-efficient counting from the leaves
//!      up; a mixed batch can push leaves over the upper bound *and*
//!      drain others under the lower bound, so both bands are checked in
//!      the same pass (`BoundKind::Both`);
//!   4. **redistribute** (`redistribute.rs`) — parallel re-spread of the
//!      maximal violating ranges, or a root grow/shrink.
//!
//! A mixed batch therefore pays **one** route + merge + count +
//! redistribute traversal where the legacy remove-then-insert split paid
//! two full passes over the touched leaves. The required normal form —
//! keys strictly ascending, one op per key, later submissions winning —
//! is produced by [`cpma_api::normalize_ops`] (*last-op-wins*: a
//! `Remove(k)` followed by `Insert(k)` in the same stream nets to
//! `Insert(k)`, matching a sequential replay).

mod count;
mod redistribute;
mod route;

pub(crate) use count::{count_phase, BoundKind, RootResize};
pub(crate) use redistribute::redistribute_ranges;

use crate::leaf::{apply_ops_into, set_difference_into, set_union_into, SharedLeaves};
use crate::tree::Node;
use crate::{LeafStorage, PmaCore, PmaKey};
use cpma_api::{BatchOp, BatchOutcome};
use rayon::prelude::*;

/// Assignment counts at or below this merge serially: fork overhead must
/// be amortized across the available workers, so the grain shrinks as the
/// pool grows (on the paper's 64-core machine parallel batch updates pay
/// off from ~1e3 elements; on a dual-core laptop only from ~1e5).
fn serial_merge_cutoff() -> usize {
    (8192 / rayon::current_num_threads().max(1)).max(256)
}

impl<K: PmaKey, L: LeafStorage<K>, const FORM: u8> PmaCore<K, L, FORM> {
    /// Insert a batch of keys; sorts and deduplicates in place unless
    /// `sorted` promises the batch is already sorted and unique. Returns the
    /// number of keys that were not already present (the artifact's
    /// `insert_batch`).
    pub fn insert_batch(&mut self, batch: &mut [K], sorted: bool) -> usize {
        cpma_api::BatchSet::insert_batch(self, batch, sorted)
    }

    /// Remove a batch of keys; see [`Self::insert_batch`] for `sorted`.
    /// Returns the number of keys actually removed (the artifact's
    /// `remove_batch`).
    pub fn remove_batch(&mut self, batch: &mut [K], sorted: bool) -> usize {
        cpma_api::BatchSet::remove_batch(self, batch, sorted)
    }

    /// Apply a mixed insert/remove op stream; normalizes in place (sort
    /// by key, last-op-wins dedup) unless `normalized` promises the
    /// stream is already in normal form.
    pub fn apply_batch(&mut self, ops: &mut [BatchOp<K>], normalized: bool) -> BatchOutcome {
        cpma_api::BatchSet::apply_batch(self, ops, normalized)
    }

    /// Batch insert of a sorted, deduplicated slice.
    pub fn insert_batch_sorted(&mut self, batch: &[K]) -> usize {
        if batch.is_empty() {
            return 0;
        }
        // Empty structure: bulk load at the target density.
        if self.len == 0 {
            let cap = self.capacity_for_target(batch);
            self.rebuild_into(batch, cap);
            return batch.len();
        }
        // Tiny batch: point updates win.
        if batch.len() < self.cfg.point_update_cutoff {
            self.batch_stats.point_fallbacks.inc();
            return batch.iter().filter(|&&k| self.insert(k)).count();
        }
        // Huge batch: parallel linear two-finger merge + rebuild.
        if batch.len() >= self.len / self.cfg.full_rebuild_divisor {
            let current = self.collect_all_par();
            let (merged, added) = par_set_union(&current, batch);
            let cap = self.capacity_for_target(&merged);
            self.rebuild_into(&merged, cap);
            return added;
        }

        // Phase 1: batch merge (route, then parallel disjoint leaf merges).
        // Small assignment sets run serially: fork-join overhead would
        // otherwise dominate (work-efficiency, §4).
        self.batch_stats.pipeline_batches.inc();
        let spans = crate::stats::phase_spans();
        let assignments = {
            let mut s = cpma_obs::span_with(&spans.route, "pma.route");
            let a = route::route_batch(self, batch);
            s.set_items(a.len() as u64);
            a
        };
        self.batch_stats.routed_runs.add(assignments.len() as u64);
        self.batch_stats
            .leaves_touched
            .add(assignments.len() as u64);
        let mut merge_span = cpma_obs::span_with(&spans.merge, "pma.merge");
        merge_span.set_items(assignments.len() as u64);
        let shared = self.storage.shared();
        let (added, units_delta) = if assignments.len() <= serial_merge_cutoff() {
            let mut scratch = Vec::new();
            let mut acc = (0usize, 0isize);
            for a in &assignments {
                // SAFETY: single-threaded here.
                let out =
                    unsafe { shared.merge_into_leaf(a.leaf, &batch[a.start..a.end], &mut scratch) };
                acc.0 += out.delta_count;
                acc.1 += out.delta_units;
            }
            acc
        } else {
            assignments
                .par_iter()
                .map_init(Vec::new, |scratch, a| {
                    // SAFETY: route_batch assigns each leaf at most once.
                    let out =
                        unsafe { shared.merge_into_leaf(a.leaf, &batch[a.start..a.end], scratch) };
                    (out.delta_count, out.delta_units)
                })
                .reduce(|| (0usize, 0isize), |x, y| (x.0 + y.0, x.1 + y.1))
        };
        drop(merge_span);
        self.len += added;
        self.units = self.units.checked_add_signed(units_delta).unwrap();
        if added == 0 {
            return 0; // nothing changed; no bound can be newly violated
        }

        // Phase 2: counting.
        let touched: Vec<usize> = assignments.iter().map(|a| a.leaf).collect();
        let outcome = {
            let mut s = cpma_obs::span_with(&spans.count, "pma.count");
            s.set_items(touched.len() as u64);
            count_phase(self, &touched, BoundKind::Upper)
        };

        // Phase 3: redistribute (or grow on root violation).
        if outcome.resize_root.is_some() {
            let elems = self.collect_all_par();
            self.grow_and_rebuild(&elems);
        } else {
            self.redistribute_with_stats(&outcome.ranges);
        }
        self.debug_check_no_overflow();
        added
    }

    /// Batch remove of a sorted, deduplicated slice.
    pub fn remove_batch_sorted(&mut self, batch: &[K]) -> usize {
        if batch.is_empty() || self.len == 0 {
            return 0;
        }
        if batch.len() < self.cfg.point_update_cutoff {
            self.batch_stats.point_fallbacks.inc();
            return batch.iter().filter(|&&k| self.remove(k)).count();
        }
        if batch.len() >= self.len / self.cfg.full_rebuild_divisor {
            let current = self.collect_all_par();
            let (remaining, removed) = par_set_difference(&current, batch);
            if removed == 0 {
                return 0;
            }
            let cap = self.capacity_for_target(&remaining);
            self.rebuild_into(&remaining, cap);
            return removed;
        }

        self.batch_stats.pipeline_batches.inc();
        let spans = crate::stats::phase_spans();
        let assignments = {
            let mut s = cpma_obs::span_with(&spans.route, "pma.route");
            let a = route::route_batch(self, batch);
            s.set_items(a.len() as u64);
            a
        };
        self.batch_stats.routed_runs.add(assignments.len() as u64);
        self.batch_stats
            .leaves_touched
            .add(assignments.len() as u64);
        let mut merge_span = cpma_obs::span_with(&spans.merge, "pma.merge");
        merge_span.set_items(assignments.len() as u64);
        let shared = self.storage.shared();
        let (removed, units_delta) = if assignments.len() <= serial_merge_cutoff() {
            let mut scratch = Vec::new();
            let mut acc = (0usize, 0isize);
            for a in &assignments {
                // SAFETY: single-threaded here.
                let out = unsafe {
                    shared.remove_from_leaf(a.leaf, &batch[a.start..a.end], &mut scratch)
                };
                acc.0 += out.delta_count;
                acc.1 += out.delta_units;
            }
            acc
        } else {
            assignments
                .par_iter()
                .map_init(Vec::new, |scratch, a| {
                    // SAFETY: route_batch assigns each leaf at most once.
                    let out =
                        unsafe { shared.remove_from_leaf(a.leaf, &batch[a.start..a.end], scratch) };
                    (out.delta_count, out.delta_units)
                })
                .reduce(|| (0usize, 0isize), |x, y| (x.0 + y.0, x.1 + y.1))
        };
        drop(merge_span);
        self.len -= removed;
        self.units = self.units.checked_add_signed(units_delta).unwrap();
        if removed == 0 {
            return 0;
        }

        let touched: Vec<usize> = assignments.iter().map(|a| a.leaf).collect();
        let outcome = {
            let mut s = cpma_obs::span_with(&spans.count, "pma.count");
            s.set_items(touched.len() as u64);
            count_phase(self, &touched, BoundKind::Lower)
        };
        if outcome.resize_root.is_some() {
            self.resize_root_shrink();
        } else {
            self.redistribute_with_stats(&outcome.ranges);
        }
        self.debug_check_no_overflow();
        removed
    }

    /// Apply a normal-form mixed batch (ascending keys, one op per key —
    /// the output of [`cpma_api::normalize_ops`]) through **one**
    /// route→merge→count→redistribute pass; see the module docs. Returns
    /// the keys actually added and removed.
    pub fn apply_batch_sorted(&mut self, ops: &[BatchOp<K>]) -> BatchOutcome {
        if ops.is_empty() {
            return BatchOutcome::default();
        }
        debug_assert!(ops.windows(2).all(|w| w[0].key() < w[1].key()));
        // Empty structure: removes are no-ops, the inserts bulk-load.
        if self.len == 0 {
            let ins: Vec<K> = ops
                .iter()
                .filter_map(|op| match *op {
                    BatchOp::Insert(k) => Some(k),
                    BatchOp::Remove(_) => None,
                })
                .collect();
            if ins.is_empty() {
                return BatchOutcome::default();
            }
            let cap = self.capacity_for_target(&ins);
            self.rebuild_into(&ins, cap);
            return BatchOutcome {
                added: ins.len(),
                removed: 0,
            };
        }
        // Tiny batch: point updates win.
        if ops.len() < self.cfg.point_update_cutoff {
            self.batch_stats.point_fallbacks.inc();
            let mut out = BatchOutcome::default();
            for op in ops {
                match *op {
                    BatchOp::Insert(k) => out.added += usize::from(self.insert(k)),
                    BatchOp::Remove(k) => out.removed += usize::from(self.remove(k)),
                }
            }
            return out;
        }
        // Huge batch: parallel linear three-finger merge + rebuild.
        if ops.len() >= self.len / self.cfg.full_rebuild_divisor {
            let current = self.collect_all_par();
            let (merged, outcome) = par_set_merge_ops(&current, ops);
            if outcome == BatchOutcome::default() {
                return outcome;
            }
            let cap = if merged.is_empty() {
                self.cfg.min_leaves * L::MIN_LEAF_UNITS
            } else {
                self.capacity_for_target(&merged)
            };
            self.rebuild_into(&merged, cap);
            return outcome;
        }

        // Phase 1: route op runs to leaves (ops route exactly like keys).
        self.batch_stats.pipeline_batches.inc();
        let spans = crate::stats::phase_spans();
        let assignments = {
            let mut s = cpma_obs::span_with(&spans.route, "pma.route");
            let a = route::route_batch(self, ops);
            s.set_items(a.len() as u64);
            a
        };
        self.batch_stats.routed_runs.add(assignments.len() as u64);
        self.batch_stats
            .leaves_touched
            .add(assignments.len() as u64);
        // Phase 1b: one rewrite per touched leaf threads that leaf's
        // inserts and removes together.
        let mut merge_span = cpma_obs::span_with(&spans.merge, "pma.merge");
        merge_span.set_items(assignments.len() as u64);
        let shared = self.storage.shared();
        let (added, removed, units_delta) = if assignments.len() <= serial_merge_cutoff() {
            let mut scratch = Vec::new();
            let mut acc = (0usize, 0usize, 0isize);
            for a in &assignments {
                // SAFETY: single-threaded here.
                let out = unsafe {
                    shared.merge_ops_into_leaf(a.leaf, &ops[a.start..a.end], &mut scratch)
                };
                acc.0 += out.added;
                acc.1 += out.removed;
                acc.2 += out.delta_units;
            }
            acc
        } else {
            assignments
                .par_iter()
                .map_init(Vec::new, |scratch, a| {
                    // SAFETY: route_batch assigns each leaf at most once.
                    let out = unsafe {
                        shared.merge_ops_into_leaf(a.leaf, &ops[a.start..a.end], scratch)
                    };
                    (out.added, out.removed, out.delta_units)
                })
                .reduce(
                    || (0usize, 0usize, 0isize),
                    |x, y| (x.0 + y.0, x.1 + y.1, x.2 + y.2),
                )
        };
        drop(merge_span);
        self.len = self.len + added - removed;
        self.units = self.units.checked_add_signed(units_delta).unwrap();
        let outcome = BatchOutcome { added, removed };
        if added == 0 && removed == 0 {
            return outcome; // nothing changed; no bound can be newly violated
        }

        // Phase 2: one counting pass checks upper *and* lower bounds.
        let touched: Vec<usize> = assignments.iter().map(|a| a.leaf).collect();
        let count = {
            let mut s = cpma_obs::span_with(&spans.count, "pma.count");
            s.set_items(touched.len() as u64);
            count_phase(self, &touched, BoundKind::Both)
        };

        // Phase 3: redistribute, or resize in whichever direction the
        // root violated.
        match count.resize_root {
            Some(RootResize::Grow) => {
                let elems = self.collect_all_par();
                self.grow_and_rebuild(&elems);
            }
            Some(RootResize::Shrink) => self.resize_root_shrink(),
            None => self.redistribute_with_stats(&count.ranges),
        }
        self.debug_check_no_overflow();
        outcome
    }

    /// Handle a root lower-bound violation: shrink the capacity, or
    /// re-spread evenly when already at the floor.
    fn resize_root_shrink(&mut self) {
        let elems = self.collect_all_par();
        if elems.is_empty() {
            let floor = self.cfg.min_leaves * L::MIN_LEAF_UNITS;
            self.rebuild_into(&elems, floor);
        } else if self.storage.num_leaves() > self.cfg.min_leaves {
            self.shrink_and_rebuild(&elems);
        } else {
            // At the floor: just re-spread evenly.
            let root = self.tree().root();
            self.redistribute_with_stats(&[root]);
        }
    }

    /// Redistribute `ranges` and account them in the batch stats.
    fn redistribute_with_stats(&mut self, ranges: &[Node]) {
        let leaves: u64 = ranges.iter().map(|n| n.len() as u64).sum();
        self.batch_stats
            .redistribute_ranges
            .add(ranges.len() as u64);
        self.batch_stats.leaves_touched.add(leaves);
        let mut s = cpma_obs::span_with(
            &crate::stats::phase_spans().redistribute,
            "pma.redistribute",
        );
        s.set_items(leaves);
        redistribute_ranges(self, ranges);
    }

    #[inline]
    fn debug_check_no_overflow(&self) {
        #[cfg(debug_assertions)]
        {
            for l in 0..self.storage.num_leaves() {
                debug_assert!(
                    !self.storage.is_overflowed(l),
                    "leaf {l} left overflowed after batch op"
                );
            }
        }
    }
}

/// Below this combined input size the whole-set merges run serially.
const SERIAL_MERGE_LIMIT: usize = 1 << 15;

/// Piece boundaries for the parallel whole-set merges: cut `a` at its
/// quantiles and align the second input at the same key pivots via
/// `partition` (elements equal to a pivot go right, where the pivot
/// element itself lives).
fn piece_cuts<K: PmaKey>(
    a: &[K],
    b_len: usize,
    pieces: usize,
    partition: impl Fn(K) -> usize,
) -> Vec<(usize, usize)> {
    (0..=pieces)
        .map(|p| {
            if p == 0 {
                (0, 0)
            } else if p == pieces {
                (a.len(), b_len)
            } else {
                let ai = p * a.len() / pieces;
                (ai, partition(a[ai]))
            }
        })
        .collect()
}

/// Parallel sorted set union: split both inputs at quantile pivots of `a`,
/// union the pieces concurrently, then concatenate. Returns the union and
/// the number of `b` elements not present in `a` (the parallel "linear
/// two-finger merge" of the paper's huge-batch regime).
pub(crate) fn par_set_union<K: PmaKey>(a: &[K], b: &[K]) -> (Vec<K>, usize) {
    if a.len() + b.len() <= SERIAL_MERGE_LIMIT {
        let mut out = Vec::new();
        let added = set_union_into(a, b, &mut out);
        return (out, added);
    }
    let pieces = rayon::current_num_threads().max(2) * 4;
    let cuts = piece_cuts(a, b.len(), pieces, |pivot| {
        b.partition_point(|&e| e < pivot)
    });
    let parts: Vec<(Vec<K>, usize)> = (0..pieces)
        .into_par_iter()
        .map(|p| {
            let (a0, b0) = cuts[p];
            let (a1, b1) = cuts[p + 1];
            let mut out = Vec::new();
            let added = set_union_into(&a[a0..a1], &b[b0..b1], &mut out);
            (out, added)
        })
        .collect();
    let total: usize = parts.iter().map(|(v, _)| v.len()).sum();
    let added: usize = parts.iter().map(|(_, c)| c).sum();
    let mut out = Vec::with_capacity(total);
    for (v, _) in parts {
        out.extend_from_slice(&v);
    }
    (out, added)
}

/// Parallel sorted set difference `a \ b`; returns the survivors and the
/// number removed.
pub(crate) fn par_set_difference<K: PmaKey>(a: &[K], b: &[K]) -> (Vec<K>, usize) {
    if a.len() + b.len() <= SERIAL_MERGE_LIMIT {
        let mut out = Vec::new();
        let removed = set_difference_into(a, b, &mut out);
        return (out, removed);
    }
    let pieces = rayon::current_num_threads().max(2) * 4;
    let cuts = piece_cuts(a, b.len(), pieces, |pivot| {
        b.partition_point(|&e| e < pivot)
    });
    let parts: Vec<(Vec<K>, usize)> = (0..pieces)
        .into_par_iter()
        .map(|p| {
            let (a0, b0) = cuts[p];
            let (a1, b1) = cuts[p + 1];
            let mut out = Vec::new();
            let removed = set_difference_into(&a[a0..a1], &b[b0..b1], &mut out);
            (out, removed)
        })
        .collect();
    let total: usize = parts.iter().map(|(v, _)| v.len()).sum();
    let removed: usize = parts.iter().map(|(_, c)| c).sum();
    let mut out = Vec::with_capacity(total);
    for (v, _) in parts {
        out.extend_from_slice(&v);
    }
    (out, removed)
}

/// Parallel three-finger whole-set merge for mixed batches: split the
/// current contents at quantile pivots, align the op run at the same
/// pivots, and apply each piece concurrently (the mixed analogue of the
/// huge-batch "rebuild the entire data structure" regime — union and
/// difference in the same linear pass).
pub(crate) fn par_set_merge_ops<K: PmaKey>(a: &[K], ops: &[BatchOp<K>]) -> (Vec<K>, BatchOutcome) {
    if a.len() + ops.len() <= SERIAL_MERGE_LIMIT {
        let mut out = Vec::new();
        let (added, removed) = apply_ops_into(a, ops, &mut out);
        return (out, BatchOutcome { added, removed });
    }
    let pieces = rayon::current_num_threads().max(2) * 4;
    let cuts = piece_cuts(a, ops.len(), pieces, |pivot| {
        ops.partition_point(|op| op.key() < pivot)
    });
    let parts: Vec<(Vec<K>, usize, usize)> = (0..pieces)
        .into_par_iter()
        .map(|p| {
            let (a0, b0) = cuts[p];
            let (a1, b1) = cuts[p + 1];
            let mut out = Vec::new();
            let (added, removed) = apply_ops_into(&a[a0..a1], &ops[b0..b1], &mut out);
            (out, added, removed)
        })
        .collect();
    let total: usize = parts.iter().map(|(v, _, _)| v.len()).sum();
    let added: usize = parts.iter().map(|&(_, a, _)| a).sum();
    let removed: usize = parts.iter().map(|&(_, _, r)| r).sum();
    let mut out = Vec::with_capacity(total);
    for (v, _, _) in parts {
        out.extend_from_slice(&v);
    }
    (out, BatchOutcome { added, removed })
}

#[cfg(test)]
mod tests {
    use crate::{Cpma, Pma};
    use std::collections::BTreeSet;

    fn lcg_keys(n: usize, seed: u64, bits: u32) -> Vec<u64> {
        let mut x = seed;
        (0..n)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                x >> (64 - bits)
            })
            .collect()
    }

    #[test]
    fn batch_insert_into_empty_builds() {
        let mut p = Pma::<u64>::new();
        let mut batch: Vec<u64> = vec![5, 3, 9, 3, 1];
        assert_eq!(p.insert_batch(&mut batch, false), 4);
        assert_eq!(p.iter().collect::<Vec<_>>(), vec![1, 3, 5, 9]);
        p.check_invariants();
    }

    #[test]
    fn batch_equals_point_inserts_pma() {
        let keys = lcg_keys(20_000, 42, 30);
        let mut batched = Pma::<u64>::new();
        let mut pointed = Pma::<u64>::new();
        let mut model = BTreeSet::new();
        for chunk in keys.chunks(1500) {
            let mut b = chunk.to_vec();
            let added = batched.insert_batch(&mut b, false);
            let mut point_added = 0;
            for &k in chunk {
                if pointed.insert(k) {
                    point_added += 1;
                }
                model.insert(k);
            }
            assert_eq!(added, point_added);
            batched.check_invariants();
        }
        assert_eq!(batched.len(), model.len());
        assert!(batched.iter().eq(model.iter().copied()));
        assert!(pointed.iter().eq(model.iter().copied()));
    }

    #[test]
    fn batch_equals_point_inserts_cpma() {
        let keys = lcg_keys(20_000, 7, 34);
        let mut c = Cpma::new();
        let mut model = BTreeSet::new();
        for chunk in keys.chunks(2500) {
            let mut b = chunk.to_vec();
            c.insert_batch(&mut b, false);
            model.extend(chunk.iter().copied());
            c.check_invariants();
        }
        assert_eq!(c.len(), model.len());
        assert!(c.iter().eq(model.iter().copied()));
    }

    #[test]
    fn batch_sizes_spanning_all_regimes() {
        // Point-update, three-phase, and full-rebuild paths.
        for &batch_size in &[10usize, 100, 1000, 30_000] {
            let mut c = Cpma::new();
            let mut model = BTreeSet::new();
            let keys = lcg_keys(60_000, batch_size as u64, 32);
            for chunk in keys.chunks(batch_size) {
                let mut b = chunk.to_vec();
                c.insert_batch(&mut b, false);
                model.extend(chunk.iter().copied());
            }
            assert_eq!(c.len(), model.len(), "batch_size={batch_size}");
            assert!(c.iter().eq(model.iter().copied()));
            c.check_invariants();
        }
    }

    #[test]
    fn batch_remove_matches_model() {
        let keys = lcg_keys(30_000, 99, 26);
        let mut c = Cpma::new();
        let mut model: BTreeSet<u64> = BTreeSet::new();
        let mut insert = keys.clone();
        c.insert_batch(&mut insert, false);
        model.extend(keys.iter().copied());
        c.check_invariants();
        // Remove in batches: half present keys, half misses.
        for chunk in keys.chunks(3000).step_by(2) {
            let mut b: Vec<u64> = chunk
                .iter()
                .map(|&k| k ^ 1)
                .chain(chunk.iter().copied())
                .collect();
            let removed = c.remove_batch(&mut b, false);
            let mut expect = 0;
            let mut seen = BTreeSet::new();
            for k in chunk.iter().map(|&k| k ^ 1).chain(chunk.iter().copied()) {
                if seen.insert(k) && model.remove(&k) {
                    expect += 1;
                }
            }
            assert_eq!(removed, expect);
            c.check_invariants();
        }
        assert!(c.iter().eq(model.iter().copied()));
    }

    #[test]
    fn batch_remove_everything() {
        let mut p = Pma::<u64>::new();
        let mut keys: Vec<u64> = (0..10_000).map(|i| i * 3).collect();
        p.insert_batch(&mut keys.clone(), true);
        let removed = p.remove_batch(&mut keys, true);
        assert_eq!(removed, 10_000);
        assert!(p.is_empty());
        p.check_invariants();
        // Still usable afterwards.
        let mut again = vec![1u64, 2, 3];
        p.insert_batch(&mut again, true);
        assert_eq!(p.len(), 3);
        p.check_invariants();
    }

    #[test]
    fn batch_with_all_duplicates_of_existing() {
        let mut c = Cpma::new();
        let mut keys: Vec<u64> = (0..5000).collect();
        c.insert_batch(&mut keys, true);
        let mut again = keys.clone();
        assert_eq!(c.insert_batch(&mut again, true), 0);
        assert_eq!(c.len(), 5000);
        c.check_invariants();
    }

    #[test]
    fn skewed_batch_single_leaf_target() {
        // All batch elements land in one leaf: the worst case the paper
        // calls out ("the batch-parallel PMA is well-suited for the case of
        // all insertions targeting the same leaf").
        let spread: Vec<u64> = (0..10_000u64).map(|i| i << 20).collect();
        let mut c = Cpma::from_sorted(&spread);
        let mut tight: Vec<u64> = (0..5_000u64).map(|i| (5_000u64 << 20) + i + 1).collect();
        let added = c.insert_batch(&mut tight, true);
        assert_eq!(added, 5_000);
        assert_eq!(c.len(), 15_000);
        c.check_invariants();
    }

    #[test]
    fn mixed_batches_match_model_across_regimes() {
        use cpma_api::BatchOp;
        // Batch sizes spanning the point-update, four-phase, and full-
        // rebuild regimes, on both leaf codecs.
        fn run<L: crate::LeafStorage<u64>>(batch_size: usize) {
            let mut s = crate::PmaCore::<u64, L>::new();
            let mut model = BTreeSet::new();
            let keys = lcg_keys(60_000, batch_size as u64 ^ 0x50F7, 22);
            for chunk in keys.chunks(batch_size.max(2)) {
                let mut ops: Vec<BatchOp<u64>> = chunk
                    .iter()
                    .enumerate()
                    .map(|(i, &k)| {
                        if i % 3 == 0 {
                            BatchOp::Remove(k)
                        } else {
                            BatchOp::Insert(k)
                        }
                    })
                    .collect();
                let norm = cpma_api::normalize_ops(&mut ops);
                let mut want = cpma_api::BatchOutcome::default();
                for op in norm {
                    match *op {
                        BatchOp::Insert(k) => want.added += usize::from(model.insert(k)),
                        BatchOp::Remove(k) => want.removed += usize::from(model.remove(&k)),
                    }
                }
                let got = s.apply_batch_sorted(norm);
                assert_eq!(got, want, "batch_size={batch_size}");
                s.check_invariants();
            }
            assert_eq!(s.len(), model.len(), "batch_size={batch_size}");
            assert!(s.iter().eq(model.iter().copied()));
        }
        for &bs in &[20usize, 600, 5_000, 40_000] {
            run::<crate::UncompressedLeaves<u64>>(bs);
            run::<crate::CompressedLeaves>(bs);
        }
    }

    #[test]
    fn mixed_batch_heavy_removal_shrinks() {
        use cpma_api::BatchOp;
        // A mixed batch that drains most of the structure must survive the
        // root lower-bound (shrink) path of the single counting pass.
        let keys: Vec<u64> = (0..40_000u64).map(|i| i * 7).collect();
        let mut c = Cpma::from_sorted(&keys);
        // Stay under the full-rebuild threshold so the pipeline runs:
        // n/10 = 4000 ops max; remove 3500, insert 100 fresh.
        let mut rounds = 0;
        while c.len() > 8_000 {
            let len_before = c.len();
            let present: Vec<u64> = c.iter().take(3_500).collect();
            let mut ops: Vec<BatchOp<u64>> = present.iter().map(|&k| BatchOp::Remove(k)).collect();
            ops.extend((0..100u64).map(|i| BatchOp::Insert(1_000_000_000 + rounds * 1000 + i)));
            let norm = cpma_api::normalize_ops(&mut ops);
            let out = c.apply_batch_sorted(norm);
            assert_eq!(out.removed, 3_500);
            assert_eq!(c.len(), len_before - out.removed + out.added);
            c.check_invariants();
            rounds += 1;
        }
    }

    #[test]
    fn mixed_batch_same_state_as_split_application() {
        use cpma_api::BatchOp;
        // The single pass and the legacy remove+insert split must land in
        // identical states (same contents, same counts).
        let base = lcg_keys(30_000, 11, 24);
        let mut single = Pma::<u64>::new();
        let mut split = Pma::<u64>::new();
        let mut b = base.clone();
        single.insert_batch(&mut b.clone(), false);
        split.insert_batch(&mut b, false);
        let stream = lcg_keys(2_000, 12, 24);
        let mut ops: Vec<BatchOp<u64>> = stream
            .iter()
            .enumerate()
            .map(|(i, &k)| {
                if i % 2 == 0 {
                    BatchOp::Insert(k)
                } else {
                    BatchOp::Remove(k)
                }
            })
            .collect();
        let norm = cpma_api::normalize_ops(&mut ops);
        let got = single.apply_batch_sorted(norm);
        let (mut ins, mut del) = (Vec::new(), Vec::new());
        for op in norm {
            match *op {
                BatchOp::Insert(k) => ins.push(k),
                BatchOp::Remove(k) => del.push(k),
            }
        }
        let removed = split.remove_batch_sorted(&del);
        let added = split.insert_batch_sorted(&ins);
        assert_eq!((got.added, got.removed), (added, removed));
        assert!(single.iter().eq(split.iter()));
        single.check_invariants();
    }

    #[test]
    fn mixed_batch_into_empty_and_all_removes() {
        use cpma_api::BatchOp::{Insert, Remove};
        let mut p = Pma::<u64>::new();
        // Only removes against an empty structure: nothing happens.
        let out = p.apply_batch_sorted(&[Remove(1), Remove(2)]);
        assert_eq!(out, cpma_api::BatchOutcome::default());
        assert!(p.is_empty());
        // Mixed into empty: inserts bulk-load, removes are no-ops.
        let mut ops: Vec<cpma_api::BatchOp<u64>> = (0..1000u64)
            .map(|i| if i % 4 == 0 { Remove(i) } else { Insert(i) })
            .collect();
        let norm = cpma_api::normalize_ops(&mut ops);
        let out = p.apply_batch_sorted(norm);
        assert_eq!(out.added, 750);
        assert_eq!(out.removed, 0);
        p.check_invariants();
        // Remove everything through the mixed path (full-rebuild regime).
        let all: Vec<cpma_api::BatchOp<u64>> = p.iter().map(Remove).collect();
        let out = p.apply_batch_sorted(&all);
        assert_eq!(out.removed, 750);
        assert!(p.is_empty());
        p.check_invariants();
    }

    #[test]
    fn pipeline_stats_accumulate() {
        use cpma_api::BatchOp;
        let mut c = Cpma::new();
        let mut seed: Vec<u64> = (0..50_000u64).map(|i| i * 3).collect();
        c.insert_batch(&mut seed, true);
        let stats0 = c.stats();
        assert!(stats0.full_rebuilds >= 1, "bulk load counts as rebuild");
        // A pipeline-regime mixed batch bumps the pipeline counters.
        let mut ops: Vec<BatchOp<u64>> = (0..2_000u64)
            .map(|i| {
                if i % 2 == 0 {
                    BatchOp::Insert(i * 3 + 1)
                } else {
                    BatchOp::Remove(i * 3)
                }
            })
            .collect();
        let norm = cpma_api::normalize_ops(&mut ops);
        c.apply_batch_sorted(norm);
        let stats1 = c.stats();
        assert_eq!(stats1.pipeline_batches, stats0.pipeline_batches + 1);
        assert!(stats1.routed_runs > stats0.routed_runs);
        assert!(stats1.leaves_touched > stats0.leaves_touched);
        // A tiny batch is a point fallback.
        let out = c.apply_batch_sorted(&[BatchOp::Insert(u64::MAX)]);
        assert_eq!(out.added, 1);
        assert_eq!(c.stats().point_fallbacks, stats1.point_fallbacks + 1);
        c.reset_stats();
        assert_eq!(c.stats(), crate::stats::PmaStats::default());
    }

    #[test]
    fn configurable_cutoffs_steer_regimes() {
        use cpma_api::BatchOp;
        // cutoff 0 forces even a two-op batch through the pipeline;
        // divisor 1 raises the full-rebuild threshold to `len` exactly.
        let cfg = crate::PmaConfig::builder()
            .point_update_cutoff(0)
            .full_rebuild_divisor(1)
            .build()
            .unwrap();
        let mut p = Pma::<u64>::with_config(cfg);
        let mut seed: Vec<u64> = (0..5_000u64).collect();
        p.insert_batch(&mut seed, true);
        let pipeline_before = p.stats().pipeline_batches;
        let out = p.apply_batch_sorted(&[BatchOp::Remove(7), BatchOp::Insert(9_999_999)]);
        assert_eq!(
            out,
            cpma_api::BatchOutcome {
                added: 1,
                removed: 1
            }
        );
        assert_eq!(p.stats().point_fallbacks, 0);
        assert_eq!(p.stats().pipeline_batches, pipeline_before + 1);
        p.check_invariants();
        // A len-sized batch hits the (divisor-1) full-rebuild regime.
        let rebuilds_before = p.stats().full_rebuilds;
        let huge: Vec<BatchOp<u64>> = (0..p.len() as u64)
            .map(|i| BatchOp::Insert(10_000_000 + i))
            .collect();
        p.apply_batch_sorted(&huge);
        assert!(p.stats().full_rebuilds > rebuilds_before);
        p.check_invariants();
        // Invalid divisor is a builder error.
        assert_eq!(
            crate::PmaConfig::builder()
                .full_rebuild_divisor(0)
                .build()
                .unwrap_err()
                .field,
            "full_rebuild_divisor"
        );
    }

    #[test]
    fn interleaved_batch_insert_remove() {
        let mut p = Pma::<u64>::new();
        let mut model = BTreeSet::new();
        for round in 0..10u64 {
            let ins = lcg_keys(4000, round * 2 + 1, 24);
            let del = lcg_keys(3000, round * 2 + 2, 24);
            let mut b = ins.clone();
            p.insert_batch(&mut b, false);
            model.extend(ins.iter().copied());
            let mut d = del.clone();
            p.remove_batch(&mut d, false);
            for k in del {
                model.remove(&k);
            }
            assert_eq!(p.len(), model.len(), "round {round}");
            p.check_invariants();
        }
        assert!(p.iter().eq(model.iter().copied()));
    }
}
