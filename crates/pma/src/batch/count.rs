//! Phase 2 of the batch update: work-efficient parallel counting.
//!
//! "This parallel algorithm avoids redundant work by processing the levels
//! serially from the leaves to the root and saving any counts for later
//! lookups by nodes in higher levels. At each level, we maintain a
//! thread-safe set of nodes that need to be counted. ... If any node at some
//! level i exceeds its density bound, the algorithm adds its parent to the
//! set of nodes to be counted at level i+1." (§4, Figure 5, Lemmas 2–3).
//!
//! Output: the *maximal* disjoint tree nodes to redistribute (nodes that
//! respect their bound but were counted because a child violated), or a
//! root-resize signal.

use crate::tree::Node;
use crate::{LeafStorage, PmaCore, PmaKey};
use rayon::prelude::*;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// Multiply-xor hasher for `(start, end)` node keys: the counting phase
/// performs thousands of cache probes per batch, and SipHash costs more
/// than the counting itself.
#[derive(Default)]
pub(crate) struct NodeHasher(u64);

impl Hasher for NodeHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u64(b as u64);
        }
    }
    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.0 = (self.0 ^ v).wrapping_mul(0x9E3779B97F4A7C15);
    }
    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }
    #[inline]
    fn finish(&self) -> u64 {
        let z = self.0;
        z ^ (z >> 29)
    }
}

type NodeCache = HashMap<(usize, usize), usize, BuildHasherDefault<NodeHasher>>;

/// Which density band the phase enforces: upper bounds after inserts,
/// lower bounds after deletes, and both at once after a *mixed* batch —
/// one counting pass over the touched set catches leaves pushed over by
/// the inserts and leaves drained under by the removes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum BoundKind {
    Upper,
    Lower,
    Both,
}

/// Which way a root violation points: over the upper bound (grow) or
/// under the lower bound (shrink).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum RootResize {
    Grow,
    Shrink,
}

/// Result of the counting phase.
#[derive(Debug, Default)]
pub(crate) struct CountOutcome {
    /// Maximal disjoint nodes to redistribute, sorted by start leaf.
    pub ranges: Vec<Node>,
    /// The root itself violates a bound, and in which direction.
    pub resize_root: Option<RootResize>,
}

/// Units of `node`, using `cache` for already-counted descendants so every
/// leaf is visited at most once across the whole phase (Lemma 2).
fn units_of<K: PmaKey, L: LeafStorage<K>, const FORM: u8>(
    core: &PmaCore<K, L, FORM>,
    cache: &NodeCache,
    node: Node,
) -> usize {
    if let Some(&u) = cache.get(&(node.start, node.end)) {
        return u;
    }
    if node.is_leaf() {
        return core.storage().units_used(node.start);
    }
    let (l, r) = node.children();
    units_of(core, cache, l) + units_of(core, cache, r)
}

/// Run the counting phase over the touched leaves (ascending, deduplicated
/// is not required — duplicates are removed here).
pub(crate) fn count_phase<K: PmaKey, L: LeafStorage<K>, const FORM: u8>(
    core: &PmaCore<K, L, FORM>,
    touched: &[usize],
    kind: BoundKind,
) -> CountOutcome {
    if touched.is_empty() {
        return CountOutcome::default();
    }
    let tree = core.tree();
    let max_depth = tree.max_depth();
    let leaf_cap = core.storage().leaf_units();
    let bounds = core.config().bounds;

    // to_count[d] = nodes awaiting counting at depth d.
    let mut to_count: Vec<Vec<Node>> = vec![Vec::new(); max_depth as usize + 1];
    for &leaf in touched {
        let node = tree.leaf_node(leaf);
        to_count[node.depth as usize].push(node);
    }

    let mut cache: NodeCache = NodeCache::default();
    let mut candidates: Vec<Node> = Vec::new();
    let mut resize_root: Option<RootResize> = None;

    for d in (0..=max_depth as usize).rev() {
        let mut nodes = std::mem::take(&mut to_count[d]);
        if nodes.is_empty() {
            continue;
        }
        nodes.sort_unstable_by_key(|n| n.start);
        nodes.dedup();
        // Count all nodes of this level in parallel; the cache is read-only
        // during the level and extended between levels (the paper's "levels
        // are processed serially, but all nodes at each level in parallel").
        // Small levels count serially — fork overhead exceeds the work
        // (grain scales inversely with the pool size).
        let grain = (4096 / rayon::current_num_threads().max(1)).max(64);
        let counted: Vec<(Node, usize)> = if nodes.len() <= grain {
            nodes
                .iter()
                .map(|&n| (n, units_of(core, &cache, n)))
                .collect()
        } else {
            nodes
                .par_iter()
                .map(|&n| (n, units_of(core, &cache, n)))
                .collect()
        };
        for (n, used) in counted {
            cache.insert((n.start, n.end), used);
            let cap = leaf_cap * n.len();
            let over = used > bounds.max_units(cap, n.depth, max_depth);
            let under = used < bounds.min_units(cap, n.depth, max_depth);
            let violates = match kind {
                BoundKind::Upper => over,
                BoundKind::Lower => under,
                BoundKind::Both => over || under,
            };
            if violates {
                match tree.parent_of(n) {
                    Some(p) => to_count[p.depth as usize].push(p),
                    None => {
                        resize_root = Some(if over {
                            RootResize::Grow
                        } else {
                            RootResize::Shrink
                        })
                    }
                }
            } else if !n.is_leaf() {
                // Counted because a child violated, and it satisfies its own
                // bound: a redistribution candidate.
                candidates.push(n);
            }
        }
    }

    if resize_root.is_some() {
        return CountOutcome {
            ranges: Vec::new(),
            resize_root,
        };
    }

    // Keep only maximal candidates (the family is laminar: candidates are
    // nested or disjoint).
    candidates.sort_unstable_by(|a, b| a.start.cmp(&b.start).then(b.end.cmp(&a.end)));
    let mut ranges: Vec<Node> = Vec::new();
    let mut max_end = 0usize;
    for n in candidates {
        if ranges.is_empty() || n.end > max_end {
            debug_assert!(n.start >= max_end, "candidates not laminar");
            max_end = n.end;
            ranges.push(n);
        }
    }
    CountOutcome {
        ranges,
        resize_root: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Pma;

    /// Build a PMA and then force specific leaves over their bound by
    /// merging directly through the shared interface (bypassing public
    /// maintenance), so the counting phase sees genuine violations.
    fn force_fill(p: &mut Pma<u64>, leaf: usize, extra: usize) {
        use crate::leaf::SharedLeaves;
        let base = 1_000_000 + leaf as u64 * 10_000;
        let add: Vec<u64> = (0..extra as u64).map(|i| base + i).collect();
        // Only valid in tests: keys must land in this leaf's range for
        // order; we instead use a fresh structure where leaf order is free.
        let mut scratch = Vec::new();
        let shared = p.storage_mut().shared();
        unsafe {
            shared.merge_into_leaf(leaf, &add, &mut scratch);
        }
    }

    #[test]
    fn no_violation_no_ranges() {
        let elems: Vec<u64> = (0..1000).collect();
        let p = Pma::from_sorted(&elems);
        let touched: Vec<usize> = (0..p.storage().num_leaves().min(4)).collect();
        let out = count_phase(&p, &touched, BoundKind::Upper);
        assert!(out.ranges.is_empty());
        assert!(out.resize_root.is_none());
    }

    #[test]
    fn empty_touch_set() {
        let p = Pma::from_sorted(&(0..100u64).collect::<Vec<_>>());
        let out = count_phase(&p, &[], BoundKind::Upper);
        assert!(out.ranges.is_empty() && out.resize_root.is_none());
    }

    #[test]
    fn overfilled_leaf_produces_covering_range() {
        let elems: Vec<u64> = (0..4000).collect();
        let mut p = Pma::from_sorted(&elems);
        let leaf_cap = p.storage().leaf_units();
        // Overflow leaf 0 well past its capacity.
        force_fill(&mut p, 0, leaf_cap * 2);
        let out = count_phase(&p, &[0], BoundKind::Upper);
        assert!(out.resize_root.is_none());
        assert_eq!(out.ranges.len(), 1);
        assert!(
            out.ranges[0].start == 0 && out.ranges[0].end >= 2,
            "{:?}",
            out.ranges
        );
        // The mixed-batch kind sees the same upper violation.
        let both = count_phase(&p, &[0], BoundKind::Both);
        assert!(both.resize_root.is_none());
        assert_eq!(both.ranges.len(), 1);
    }

    #[test]
    fn massive_overfill_requests_resize() {
        let elems: Vec<u64> = (0..400).collect();
        let mut p = Pma::from_sorted(&elems);
        let total_cap = p.capacity_units();
        force_fill(&mut p, 0, total_cap);
        let out = count_phase(&p, &[0], BoundKind::Upper);
        assert_eq!(out.resize_root, Some(RootResize::Grow));
        let both = count_phase(&p, &[0], BoundKind::Both);
        assert_eq!(both.resize_root, Some(RootResize::Grow));
    }

    #[test]
    fn ranges_are_disjoint_and_sorted() {
        let elems: Vec<u64> = (0..20_000).collect();
        let mut p = Pma::from_sorted(&elems);
        let nl = p.storage().num_leaves();
        let cap = p.storage().leaf_units();
        // Overfill two far-apart leaves.
        force_fill(&mut p, 0, cap);
        force_fill(&mut p, nl - 1, cap);
        let out = count_phase(&p, &[0, nl - 1], BoundKind::Upper);
        assert!(out.resize_root.is_none());
        assert!(out.ranges.len() >= 2 || out.ranges[0].len() == nl);
        for w in out.ranges.windows(2) {
            assert!(w[0].end <= w[1].start, "overlap {:?}", w);
        }
    }

    #[test]
    fn lower_bound_violation_detected() {
        let elems: Vec<u64> = (0..8000).collect();
        let mut p = Pma::from_sorted(&elems);
        // Empty leaf 0 manually.
        use crate::leaf::SharedLeaves;
        let mut elems0 = Vec::new();
        p.storage().collect_leaf(0, &mut elems0);
        let mut scratch = Vec::new();
        let shared = p.storage_mut().shared();
        unsafe {
            shared.remove_from_leaf(0, &elems0, &mut scratch);
        }
        let out = count_phase(&p, &[0], BoundKind::Lower);
        assert!(out.resize_root.is_none());
        assert_eq!(out.ranges.len(), 1);
        assert_eq!(out.ranges[0].start, 0);
        // The mixed-batch kind catches the same lower violation in its
        // single pass.
        let both = count_phase(&p, &[0], BoundKind::Both);
        assert!(both.resize_root.is_none());
        assert_eq!(both.ranges.len(), 1);
        assert_eq!(both.ranges[0].start, 0);
    }

    #[test]
    fn both_kind_catches_upper_and_lower_in_one_pass() {
        // Overfill one leaf and drain another: a single Both-pass must
        // surface ranges covering each violation.
        let elems: Vec<u64> = (0..20_000).collect();
        let mut p = Pma::from_sorted(&elems);
        let nl = p.storage().num_leaves();
        let cap = p.storage().leaf_units();
        force_fill(&mut p, 0, cap);
        use crate::leaf::SharedLeaves;
        let mut last = Vec::new();
        p.storage().collect_leaf(nl - 1, &mut last);
        let mut scratch = Vec::new();
        let shared = p.storage_mut().shared();
        unsafe {
            shared.remove_from_leaf(nl - 1, &last, &mut scratch);
        }
        let out = count_phase(&p, &[0, nl - 1], BoundKind::Both);
        assert!(out.resize_root.is_none());
        let covers = |leaf: usize| out.ranges.iter().any(|n| n.start <= leaf && leaf < n.end);
        assert!(covers(0), "upper violation uncovered: {:?}", out.ranges);
        assert!(
            covers(nl - 1),
            "lower violation uncovered: {:?}",
            out.ranges
        );
    }
}
