//! Phase 1a of the batch update: routing (the recursive search step).
//!
//! "At each step of the recursion, we perform a PMA search for the midpoint
//! (median) of the current batch and merge the relevant elements from the
//! batch destined for that leaf into the target leaf. ... Finally, we
//! recurse on the remaining left and right sides of the batch in parallel."
//! (§4).
//!
//! We split the paper's interleaved search-and-merge into a read-only
//! routing recursion producing `(leaf, batch segment)` assignments, followed
//! by a parallel merge over the assignments (phase 1b, in `mod.rs`). The
//! recursion, work, and span are identical to Lemma 1; the separation makes
//! the data-race argument trivial: routing only reads heads/counts, merges
//! only write disjoint leaves.

use crate::tree::ImplicitTree;
use crate::{LeafStorage, PmaCore, PmaKey};
use cpma_api::BatchOp;

/// One unit of merge work: batch[start..end] all belong in `leaf`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct Assignment {
    pub leaf: usize,
    pub start: usize,
    pub end: usize,
}

/// Anything routable: a sorted run of these is partitioned across leaves
/// by key. Plain keys (one-sided batches) and [`BatchOp`]s (mixed
/// batches) route through the *same* recursion — the mixed pipeline
/// reuses the one-sided routing phase verbatim.
pub(crate) trait RouteKey<K>: Copy + Send + Sync {
    fn route_key(&self) -> K;
}

impl<K: PmaKey> RouteKey<K> for K {
    #[inline]
    fn route_key(&self) -> K {
        *self
    }
}

impl<K: PmaKey> RouteKey<K> for BatchOp<K> {
    #[inline]
    fn route_key(&self) -> K {
        self.key()
    }
}

/// Below this many batch elements, route with a serial sweep instead of
/// forking; the grain shrinks as the pool grows (see `serial_merge_cutoff`).
fn serial_cutoff() -> usize {
    (32_768 / rayon::current_num_threads().max(1)).max(1024)
}

/// Compute the destination segments for a batch sorted strictly by key.
/// The PMA must be non-empty. Assignments come back ordered by leaf.
pub(crate) fn route_batch<K: PmaKey, L: LeafStorage<K>, T: RouteKey<K>, const FORM: u8>(
    core: &PmaCore<K, L, FORM>,
    batch: &[T],
) -> Vec<Assignment> {
    debug_assert!(!core.is_empty());
    let f0 = core
        .first_nonempty_leaf()
        .expect("route_batch requires a non-empty PMA");
    let ctx = RouteCtx {
        core,
        batch,
        f0,
        tree: core.tree(),
    };
    ctx.recurse(0, batch.len(), 0, core.storage().num_leaves())
}

struct RouteCtx<'a, K: PmaKey, L: LeafStorage<K>, T: RouteKey<K>, const FORM: u8> {
    core: &'a PmaCore<K, L, FORM>,
    batch: &'a [T],
    /// First non-empty leaf: elements below the global minimum route here.
    f0: usize,
    #[allow(dead_code)]
    tree: ImplicitTree,
}

impl<K: PmaKey, L: LeafStorage<K>, T: RouteKey<K>, const FORM: u8> RouteCtx<'_, K, L, T, FORM> {
    /// Segment of `self.batch[blo..bhi)` destined for leaf `t`:
    /// keys in `[head(t), head(next non-empty leaf))`, extended down to
    /// −∞ when `t` is the first non-empty leaf.
    fn segment_for(&self, t: usize, blo: usize, bhi: usize) -> (usize, usize) {
        let slice = &self.batch[blo..bhi];
        let lo = if t == self.f0 {
            blo
        } else {
            let h = self.core.storage().head(t);
            blo + slice.partition_point(|e| e.route_key() < h)
        };
        let hi = match self.core.next_nonempty_leaf(t) {
            Some(nn) => {
                let h = self.core.storage().head(nn);
                blo + slice.partition_point(|e| e.route_key() < h)
            }
            None => bhi,
        };
        debug_assert!(lo <= hi);
        (lo, hi)
    }

    /// Recursive parallel routing over batch `[blo, bhi)` and leaves
    /// `[llo, lhi)`; every element's destination is within the leaf range.
    fn recurse(&self, blo: usize, bhi: usize, llo: usize, lhi: usize) -> Vec<Assignment> {
        if blo >= bhi {
            return Vec::new();
        }
        debug_assert!(llo < lhi, "batch elements with no leaf range");
        if bhi - blo <= serial_cutoff() {
            return self.serial_sweep(blo, bhi);
        }
        // Search for the batch midpoint's destination leaf.
        let mid = blo + (bhi - blo) / 2;
        let t = self
            .core
            .dest_leaf(self.batch[mid].route_key())
            .expect("non-empty PMA always routes");
        debug_assert!((llo..lhi).contains(&t), "dest {t} outside [{llo},{lhi})");
        let (i, j) = self.segment_for(t, blo, bhi);
        debug_assert!(i <= mid && mid < j, "midpoint not in its own segment");
        let (mut left, right) = rayon::join(
            || self.recurse(blo, i, llo, t),
            || self.recurse(j, bhi, t + 1, lhi),
        );
        left.push(Assignment {
            leaf: t,
            start: i,
            end: j,
        });
        left.extend(right);
        left
    }

    /// Serial sweep: repeatedly route the first unassigned element and jump
    /// to the end of its segment.
    fn serial_sweep(&self, blo: usize, bhi: usize) -> Vec<Assignment> {
        let mut out = Vec::new();
        let mut b = blo;
        while b < bhi {
            let t = self
                .core
                .dest_leaf(self.batch[b].route_key())
                .expect("non-empty PMA always routes");
            let (i, j) = self.segment_for(t, b, bhi);
            debug_assert!(i <= b && b < j);
            out.push(Assignment {
                leaf: t,
                start: b,
                end: j,
            });
            b = j;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Pma;

    fn setup() -> Pma<u64> {
        // 4 values per leaf-ish structure over 0..4000 step 10.
        let elems: Vec<u64> = (0..400).map(|i| i * 10).collect();
        Pma::from_sorted(&elems)
    }

    fn check_routing(p: &Pma<u64>, batch: &[u64]) {
        let assignments = route_batch(p, batch);
        // Covers the batch exactly, in order, without overlap.
        let mut pos = 0;
        let mut prev_leaf = None;
        for a in &assignments {
            assert_eq!(a.start, pos, "gap in coverage");
            assert!(a.start < a.end);
            pos = a.end;
            if let Some(pl) = prev_leaf {
                assert!(a.leaf > pl, "assignments not in leaf order");
            }
            prev_leaf = Some(a.leaf);
            // Every element's dest matches the assignment.
            for &e in &batch[a.start..a.end] {
                assert_eq!(p.dest_leaf(e), Some(a.leaf), "element {e}");
            }
        }
        assert_eq!(pos, batch.len());
    }

    #[test]
    fn routes_cover_batch() {
        let p = setup();
        let batch: Vec<u64> = (0..200).map(|i| i * 17 + 3).collect();
        check_routing(&p, &batch);
    }

    #[test]
    fn routes_below_min_and_above_max() {
        let elems: Vec<u64> = (100..200).collect();
        let p = Pma::from_sorted(&elems);
        let batch = vec![1u64, 2, 3, 150, 500, 501];
        check_routing(&p, &batch);
        let assignments = route_batch(&p, &batch);
        // 1,2,3 go to the first non-empty leaf.
        let first = p.first_nonempty_leaf().unwrap();
        assert_eq!(assignments[0].leaf, first);
        assert!(assignments[0].end >= 3);
    }

    #[test]
    fn single_element_batches() {
        let p = setup();
        for e in [0u64, 5, 1995, 3990, 10_000] {
            let batch = vec![e];
            let assignments = route_batch(&p, &batch);
            assert_eq!(assignments.len(), 1);
            assert_eq!(
                assignments[0],
                Assignment {
                    leaf: p.dest_leaf(e).unwrap(),
                    start: 0,
                    end: 1
                }
            );
        }
    }

    #[test]
    fn large_batch_exercises_parallel_recursion() {
        let p = setup();
        let batch: Vec<u64> = (0..10_000u64).map(|i| i * 2 + 1).collect();
        check_routing(&p, &batch);
    }

    #[test]
    fn op_batches_route_like_their_keys() {
        let p = setup();
        let keys: Vec<u64> = (0..500).map(|i| i * 13 + 2).collect();
        let ops: Vec<BatchOp<u64>> = keys
            .iter()
            .map(|&k| {
                if k % 3 == 0 {
                    BatchOp::Remove(k)
                } else {
                    BatchOp::Insert(k)
                }
            })
            .collect();
        let by_key = route_batch(&p, &keys);
        let by_op = route_batch(&p, &ops);
        assert_eq!(by_key, by_op, "routing must depend only on keys");
    }

    #[test]
    fn all_elements_to_one_leaf() {
        let p = setup();
        // A tight cluster routes to a single leaf.
        let batch = vec![101u64, 102, 103, 104];
        let assignments = route_batch(&p, &batch);
        assert_eq!(assignments.len(), 1);
    }
}
