//! Phase 3 of the batch update: parallel redistribution.
//!
//! "The PMA redistributes regions by performing two copies of the relevant
//! data. The first copy packs the regions to redistribute from the PMA into
//! a buffer, and the second copy equalizes the densities in the regions to
//! redistribute by spreading the elements evenly from the buffer into the
//! target leaves." (§4, Lemma 4).
//!
//! Execution is strictly phased to keep the shared-leaf accesses disjoint:
//!
//! 1. **Collect** (parallel over ranges, read-only): pack each range's
//!    elements (including overflow buffers) and snapshot the *predecessor
//!    element* before the range — the stable quantity empty-prefix leaves
//!    inherit their head from (element order never changes during
//!    redistribution, so this snapshot cannot be invalidated by a
//!    concurrently-rewritten neighbouring range).
//! 2. **Write** (parallel over ranges, parallel over leaves within a
//!    range): plan the split and overwrite every leaf; clears overflows.
//! 3. **Repair** (serial, cheap): refresh inherited heads of empty-leaf
//!    runs that follow each range (their stale inherits could otherwise
//!    break the head array's monotonicity).

use crate::leaf::SharedLeaves;
use crate::tree::Node;
use crate::{LeafStorage, PmaCore, PmaKey};
use rayon::prelude::*;

struct RangeJob<K> {
    node: Node,
    elems: Vec<K>,
    /// Largest element stored before `node.start`, or `K::MIN`.
    prev_elem: K,
}

/// Redistribute the given disjoint nodes (sorted by start).
pub(crate) fn redistribute_ranges<K: PmaKey, L: LeafStorage<K>, const FORM: u8>(
    core: &mut PmaCore<K, L, FORM>,
    ranges: &[Node],
) {
    if ranges.is_empty() {
        // Even with nothing to redistribute, the preceding merge phase may
        // have filled or emptied leaves; the read index must still refresh.
        core.rebuild_read_index();
        return;
    }
    debug_assert!(ranges.windows(2).all(|w| w[0].end <= w[1].start));
    let leaf_units = core.storage().leaf_units();
    let total_leaves: usize = ranges.iter().map(|n| n.len()).sum();
    // Small redistributions run serially — fork overhead exceeds the copies.
    let serial = total_leaves <= (8192 / rayon::current_num_threads().max(1)).max(128);

    // Phase 1: collect (read-only).
    let collect_one = |node: Node| {
        let storage = core.storage();
        let mut elems = Vec::new();
        for l in node.start..node.end {
            if storage.is_overflowed(l) || storage.count(l) > 0 {
                storage.collect_leaf(l, &mut elems);
            }
        }
        let prev_elem = (0..node.start)
            .rev()
            .find(|&l| storage.count(l) > 0)
            .and_then(|l| storage.leaf_max(l))
            .unwrap_or(K::MIN);
        debug_assert!(elems.windows(2).all(|w| w[0] < w[1]));
        RangeJob {
            node,
            elems,
            prev_elem,
        }
    };
    let jobs: Vec<RangeJob<K>> = if serial {
        ranges.iter().map(|&n| collect_one(n)).collect()
    } else {
        ranges.par_iter().map(|&n| collect_one(n)).collect()
    };

    // Phase 1.5: plan each range's split. Must happen before the shared
    // accessor pins a mutable borrow — the planner reads the storage's
    // codec policy (hybrid vs delta-only costs).
    let plans: Vec<Vec<usize>> = if serial {
        jobs.iter()
            .map(|job| {
                core.storage()
                    .plan_split_with(&job.elems, job.node.len(), leaf_units)
            })
            .collect()
    } else {
        jobs.par_iter()
            .map(|job| {
                core.storage()
                    .plan_split_with(&job.elems, job.node.len(), leaf_units)
            })
            .collect()
    };

    // Phase 2: write (disjoint leaves).
    let shared = core.storage_mut().shared();
    let write_leaf_j = |job: &RangeJob<K>, offsets: &[usize], j: usize| -> isize {
        let leaf = job.node.start + j;
        let slice = &job.elems[offsets[j]..offsets[j + 1]];
        let inherited = if offsets[j] > 0 {
            job.elems[offsets[j] - 1]
        } else {
            job.prev_elem
        };
        // SAFETY: ranges are disjoint and each call owns a distinct leaf of
        // its range.
        unsafe {
            let old = shared.units_used(leaf) as isize;
            shared.write_leaf(leaf, slice, inherited) as isize - old
        }
    };
    let units_delta: isize = if serial {
        let mut acc = 0isize;
        for (job, offsets) in jobs.iter().zip(&plans) {
            for j in 0..job.node.len() {
                acc += write_leaf_j(job, offsets, j);
            }
        }
        acc
    } else {
        jobs.par_iter()
            .zip(plans.par_iter())
            .map(|(job, offsets)| {
                (0..job.node.len())
                    .into_par_iter()
                    .map(|j| write_leaf_j(job, offsets, j))
                    .sum::<isize>()
            })
            .sum()
    };
    core.add_units_delta(units_delta);

    // Phase 3: repair inherited heads after each range.
    for node in ranges {
        core.fix_inherited_heads_after(node.end);
    }

    // Redistribution moves elements between leaves wholesale, so refresh the
    // occupancy bitset and the auxiliary head index in one pass here rather
    // than in every caller.
    core.rebuild_read_index();

    // Hybrid split plans are estimate-driven and may leave a tail leaf
    // unfit; escalate to a capacity grow, which re-spreads everything and
    // cannot itself overflow (`rebuild_into` retries until all leaves
    // fit). Exact planners (delta-only, uncompressed) never take this.
    let unfit = ranges
        .iter()
        .any(|n| (n.start..n.end).any(|l| core.storage().is_overflowed(l)));
    if unfit {
        let all = core.collect_all_par();
        core.grow_and_rebuild(&all);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::leaf::SharedLeaves;
    use crate::tree::ImplicitTree;
    use crate::{Cpma, Pma};

    #[test]
    fn redistribute_whole_tree_evens_out() {
        // Sparse base keys so that leaf 0's key range can absorb a large
        // overflow without breaking global order.
        let elems: Vec<u64> = (0..4000u64).map(|e| e << 20).collect();
        let mut p = Pma::from_sorted(&elems);
        let extra: Vec<u64> = (1..2001u64).collect(); // all below (1 << 20)
        let mut scratch = Vec::new();
        let shared = p.storage_mut().shared();
        unsafe {
            shared.merge_into_leaf(0, &extra, &mut scratch);
        }
        p.add_units_delta(extra.len() as isize);
        p.add_len_delta(extra.len() as isize);
        let root = ImplicitTree::new(p.storage().num_leaves()).root();
        redistribute_ranges(&mut p, &[root]);
        // Everything is back in order and dense bounds hold.
        let got: Vec<u64> = p.iter().collect();
        let mut want = elems;
        want.extend(extra);
        want.sort_unstable();
        assert_eq!(got, want);
        p.check_invariants();
    }

    #[test]
    fn redistribute_subrange_only_touches_subrange() {
        let elems: Vec<u64> = (0..40_000).map(|e| e * 2).collect();
        let mut c = Cpma::from_sorted(&elems);
        let tree = ImplicitTree::new(c.storage().num_leaves());
        // Pick the left child of the root.
        let (left, _right) = tree.root().children();
        let before: Vec<u64> = c.iter().collect();
        redistribute_ranges(&mut c, &[left]);
        let after: Vec<u64> = c.iter().collect();
        assert_eq!(before, after, "redistribution must preserve contents");
        c.check_invariants();
    }

    #[test]
    fn empty_ranges_list_is_noop() {
        let mut p = Pma::from_sorted(&(0..100u64).collect::<Vec<_>>());
        redistribute_ranges(&mut p, &[]);
        p.check_invariants();
    }
}
