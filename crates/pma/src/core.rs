//! `PmaCore`: the engine shared by the PMA and the CPMA.
//!
//! Implements the paper's four public operations — `insert`, `delete`,
//! `search`, `range_map` (§3) — plus the artifact API (`has`, `sum`, `map`,
//! `min`/`max`, size accounting) against any [`LeafStorage`]. The parallel
//! batch operations live in the `batch` module and are methods on this type.
//!
//! # Head-array invariant
//!
//! Search routes through a separate array of leaf heads (the layout of the
//! search-optimized PMA \[78] the paper builds on). The invariant maintained
//! everywhere is:
//!
//! 1. the head array is **non-decreasing**;
//! 2. a non-empty leaf's head equals its minimum element;
//! 3. an empty leaf's head is an *inherited* value within
//!    `[previous head, next non-empty head]`.
//!
//! Any inherited value in that interval keeps routing correct: a query
//! binary-searches for the rightmost head ≤ key and then walks left over
//! empty leaves. Inserts never decrease a non-empty leaf's head via routing
//! (elements below the global minimum route to the first non-empty leaf),
//! and deletes that empty a leaf keep its old head — both preserve (1)-(3)
//! without cross-leaf coordination, which is what makes the batch phases
//! race-free.

use crate::density::DensityBounds;
use crate::leaf::SharedLeaves;
use crate::tree::{ImplicitTree, Node};
use crate::{stats, CompressedLeaves, LeafStorage, PmaKey, UncompressedLeaves};
use cpma_api::ConfigError;
use rayon::prelude::*;
use std::marker::PhantomData;

/// Tuning knobs. Defaults follow the paper (§6 and Appendix B/C).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PmaConfig {
    /// Density thresholds per tree level.
    pub bounds: DensityBounds,
    /// Capacity multiplier on growth, divisor on shrink. The paper uses
    /// 1.2× and studies 1.1×–2.0× in Appendix C.
    pub growing_factor: f64,
    /// Capacity floor in *leaves* (the structure never shrinks below this
    /// many leaves).
    pub min_leaves: usize,
    /// Batches smaller than this use point updates (the paper uses point
    /// inserts "for small batches when the batch update algorithm does
    /// not provide practical benefits", Table 3 — "e.g., k < 100"). Zero
    /// sends every non-empty batch through the pipeline.
    pub point_update_cutoff: usize,
    /// Batches of at least `len / full_rebuild_divisor` elements rebuild
    /// the whole structure with a linear merge (paper: "e.g., k ≥ n/10").
    pub full_rebuild_divisor: usize,
}

impl Default for PmaConfig {
    fn default() -> Self {
        Self {
            bounds: DensityBounds::default(),
            growing_factor: 1.2,
            min_leaves: 4,
            point_update_cutoff: 128,
            full_rebuild_divisor: 10,
        }
    }
}

impl PmaConfig {
    /// Start building a configuration; [`PmaConfigBuilder::build`] validates
    /// and returns `Result`, making invalid parameters a recoverable error
    /// instead of a panic.
    pub fn builder() -> PmaConfigBuilder {
        PmaConfigBuilder::default()
    }

    /// Check parameter validity. Constructors call this and panic on `Err`
    /// (an already-constructed invalid config is a programming error);
    /// build-time callers should prefer [`PmaConfig::builder`].
    pub fn check(&self) -> Result<(), ConfigError> {
        self.bounds.check()?;
        if !self.growing_factor.is_finite() {
            return Err(ConfigError::new("growing_factor", "must be finite"));
        }
        if self.growing_factor <= 1.0 {
            return Err(ConfigError::new("growing_factor", "must exceed 1"));
        }
        if self.min_leaves < 1 {
            return Err(ConfigError::new("min_leaves", "must be at least 1"));
        }
        if self.full_rebuild_divisor < 1 {
            return Err(ConfigError::new(
                "full_rebuild_divisor",
                "must be at least 1",
            ));
        }
        Ok(())
    }

    pub(crate) fn assert_valid(&self) {
        if let Err(e) = self.check() {
            panic!("{e}");
        }
    }
}

/// Builder for [`PmaConfig`] with fallible validation.
///
/// ```
/// use cpma_pma::PmaConfig;
///
/// let cfg = PmaConfig::builder().growing_factor(1.5).min_leaves(8).build().unwrap();
/// assert_eq!(cfg.min_leaves, 8);
/// assert!(PmaConfig::builder().growing_factor(0.9).build().is_err());
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct PmaConfigBuilder {
    cfg: PmaConfig,
}

impl PmaConfigBuilder {
    /// Density thresholds per tree level.
    pub fn bounds(mut self, bounds: DensityBounds) -> Self {
        self.cfg.bounds = bounds;
        self
    }

    /// Capacity multiplier on growth, divisor on shrink (Appendix C
    /// studies 1.1×–2.0×; the paper uses 1.2×).
    pub fn growing_factor(mut self, f: f64) -> Self {
        self.cfg.growing_factor = f;
        self
    }

    /// Capacity floor in leaves.
    pub fn min_leaves(mut self, n: usize) -> Self {
        self.cfg.min_leaves = n;
        self
    }

    /// Batch size below which point updates are used instead of the batch
    /// pipeline (0 disables the fallback entirely).
    pub fn point_update_cutoff(mut self, n: usize) -> Self {
        self.cfg.point_update_cutoff = n;
        self
    }

    /// Divisor of the full-rebuild threshold: batches of at least
    /// `len / divisor` elements rebuild the whole structure.
    pub fn full_rebuild_divisor(mut self, n: usize) -> Self {
        self.cfg.full_rebuild_divisor = n;
        self
    }

    /// Validate and produce the configuration.
    pub fn build(self) -> Result<PmaConfig, ConfigError> {
        self.cfg.check()?;
        Ok(self.cfg)
    }
}

/// The uncompressed batch-parallel PMA (cells of raw keys).
pub type Pma<K = u64> = PmaCore<K, UncompressedLeaves<K>>;

/// The batch-parallel Compressed PMA (delta + byte codes; §5).
pub type Cpma = PmaCore<u64, CompressedLeaves>;

/// Engine over generic leaf storage. See module docs.
///
/// `Clone` (for `Clone` leaf storages) is what snapshot publishers like
/// `cpma-store`'s combiner build on.
#[derive(Clone)]
pub struct PmaCore<K: PmaKey, L: LeafStorage<K>> {
    pub(crate) storage: L,
    pub(crate) cfg: PmaConfig,
    /// Number of stored elements.
    pub(crate) len: usize,
    /// Total occupied units across leaves.
    pub(crate) units: usize,
    /// Batch-pipeline counters (see [`stats::PmaStats`]).
    pub(crate) batch_stats: stats::PmaStats,
    pub(crate) _marker: PhantomData<K>,
}

impl<K: PmaKey, L: LeafStorage<K>> Default for PmaCore<K, L> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: PmaKey, L: LeafStorage<K>> PmaCore<K, L> {
    /// Empty structure with default configuration.
    pub fn new() -> Self {
        Self::with_config(PmaConfig::default())
    }

    /// Empty structure with explicit configuration.
    pub fn with_config(cfg: PmaConfig) -> Self {
        cfg.assert_valid();
        let leaf_units = Self::leaf_units_for_cap(cfg.min_leaves * L::MIN_LEAF_UNITS);
        Self {
            storage: L::with_geometry(cfg.min_leaves, leaf_units),
            cfg,
            len: 0,
            units: 0,
            batch_stats: stats::PmaStats::default(),
            _marker: PhantomData,
        }
    }

    /// Build from a sorted, deduplicated slice (the artifact's
    /// `CPMA(start, end)` constructor). Leaves are filled at the rebuild
    /// target density, elements spread evenly.
    pub fn from_sorted(elems: &[K]) -> Self {
        Self::from_sorted_with(elems, PmaConfig::default())
    }

    /// [`Self::from_sorted`] with explicit configuration.
    pub fn from_sorted_with(elems: &[K], cfg: PmaConfig) -> Self {
        cfg.assert_valid();
        debug_assert!(
            elems.windows(2).all(|w| w[0] < w[1]),
            "input must be sorted unique"
        );
        let mut this = Self::with_config(cfg);
        if !elems.is_empty() {
            let cap = this.capacity_for_target(elems);
            this.rebuild_into(elems, cap);
        }
        this
    }

    // ------------------------------------------------------------------
    // Geometry
    // ------------------------------------------------------------------

    /// Leaf capacity (units) for a structure of `cap_units` total capacity:
    /// `LEAF_SCALE · ⌈log₂ cap⌉`, aligned and clamped (Θ(log N) leaves, §3).
    pub(crate) fn leaf_units_for_cap(cap_units: usize) -> usize {
        let lg = (usize::BITS - cap_units.max(2).leading_zeros()) as usize;
        let raw = (lg * L::LEAF_SCALE).max(L::MIN_LEAF_UNITS);
        raw.div_ceil(L::LEAF_ALIGN) * L::LEAF_ALIGN
    }

    /// Total unit capacity.
    #[inline]
    pub fn capacity_units(&self) -> usize {
        self.storage.num_leaves() * self.storage.leaf_units()
    }

    /// The implicit tree over the current leaves.
    #[inline]
    pub(crate) fn tree(&self) -> ImplicitTree {
        ImplicitTree::new(self.storage.num_leaves())
    }

    /// Units capacity needed to host `elems` at the rebuild target density.
    pub(crate) fn capacity_for_target(&self, elems: &[K]) -> usize {
        let stream = L::units_for(elems);
        let target = self.cfg.bounds.rebuild_target;
        let mut cap = ((stream as f64) / target).ceil() as usize;
        // One refinement round: heads overhead depends on the leaf count.
        let leaf = Self::leaf_units_for_cap(cap.max(1));
        let k = cap.div_ceil(leaf).max(self.cfg.min_leaves);
        let est = stream + k.saturating_sub(1) * L::HEAD_UNITS;
        cap = ((est as f64) / target).ceil() as usize;
        cap.max(self.cfg.min_leaves * L::MIN_LEAF_UNITS)
    }

    /// Replace storage with a fresh layout of at least `cap_units` capacity
    /// holding exactly `elems` (sorted unique), spread evenly.
    pub(crate) fn rebuild_into(&mut self, elems: &[K], cap_units: usize) {
        let leaf_units = Self::leaf_units_for_cap(cap_units);
        let k = cap_units.div_ceil(leaf_units).max(self.cfg.min_leaves);
        let mut storage = L::with_geometry(k, leaf_units);
        let offsets = L::plan_split(elems, k, leaf_units);
        let shared = storage.shared();
        let units: usize = (0..k)
            .into_par_iter()
            .map(|j| {
                let slice = &elems[offsets[j]..offsets[j + 1]];
                let inherited = if offsets[j] > 0 {
                    elems[offsets[j] - 1]
                } else {
                    K::MIN
                };
                // SAFETY: each iteration owns a distinct leaf.
                unsafe { shared.write_leaf(j, slice, inherited) }
            })
            .sum();
        self.storage = storage;
        self.units = units;
        self.len = elems.len();
        self.batch_stats.full_rebuilds += 1;
    }

    /// Grow capacity by the growing factor (repeatedly if needed) and
    /// re-spread `elems`.
    pub(crate) fn grow_and_rebuild(&mut self, elems: &[K]) {
        let stream = L::units_for(elems);
        let f = self.cfg.growing_factor;
        let mut cap = ((self.capacity_units() as f64) * f).ceil() as usize;
        loop {
            let leaf = Self::leaf_units_for_cap(cap);
            let k = cap.div_ceil(leaf).max(self.cfg.min_leaves);
            let est = stream + k.saturating_sub(1) * L::HEAD_UNITS;
            if (est as f64) <= self.cfg.bounds.upper_root * (k * leaf) as f64 {
                break;
            }
            cap = ((cap as f64) * f).ceil() as usize;
        }
        self.rebuild_into(elems, cap);
    }

    /// Shrink capacity by the growing factor while the root is under its
    /// lower bound, then re-spread `elems`.
    pub(crate) fn shrink_and_rebuild(&mut self, elems: &[K]) {
        let stream = L::units_for(elems);
        let f = self.cfg.growing_factor;
        let floor = self.cfg.min_leaves * L::MIN_LEAF_UNITS;
        let mut cap = self.capacity_units();
        loop {
            let next = (((cap as f64) / f).ceil() as usize).max(floor);
            if next == cap || (stream as f64) >= self.cfg.bounds.lower_root * next as f64 {
                cap = next;
                break;
            }
            cap = next;
        }
        self.rebuild_into(elems, cap);
    }

    // ------------------------------------------------------------------
    // Search
    // ------------------------------------------------------------------

    /// First leaf with a nonzero count, if any.
    pub(crate) fn first_nonempty_leaf(&self) -> Option<usize> {
        if self.len == 0 {
            return None;
        }
        (0..self.storage.num_leaves()).find(|&l| self.storage.count(l) > 0)
    }

    /// The leaf where `key` lives / would be inserted. `None` iff empty.
    ///
    /// Binary search for the rightmost head ≤ key, walk left over empty
    /// leaves; keys below the global minimum route to the first non-empty
    /// leaf (see module docs).
    pub(crate) fn dest_leaf(&self, key: K) -> Option<usize> {
        if self.len == 0 {
            return None;
        }
        let n = self.storage.num_leaves();
        // partition point: first index with head > key.
        let (mut lo, mut hi) = (0usize, n);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if self.storage.head(mid) <= key {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        stats::record_read(((usize::BITS - n.leading_zeros()) as usize) * K::BYTES);
        if lo == 0 {
            return self.first_nonempty_leaf();
        }
        let mut leaf = lo - 1;
        while self.storage.count(leaf) == 0 {
            if leaf == 0 {
                return self.first_nonempty_leaf();
            }
            leaf -= 1;
        }
        Some(leaf)
    }

    /// Next non-empty leaf strictly after `leaf`, if any.
    pub(crate) fn next_nonempty_leaf(&self, leaf: usize) -> Option<usize> {
        ((leaf + 1)..self.storage.num_leaves()).find(|&l| self.storage.count(l) > 0)
    }

    /// Membership test (the artifact's `has`).
    pub fn has(&self, key: K) -> bool {
        match self.dest_leaf(key) {
            Some(leaf) => self.storage.leaf_contains(leaf, key),
            None => false,
        }
    }

    /// Smallest stored element ≥ `key` (the paper's `search`).
    pub fn successor(&self, key: K) -> Option<K> {
        let leaf = self.dest_leaf(key)?;
        if let Some(s) = self.storage.leaf_successor(leaf, key) {
            return Some(s);
        }
        let next = self.next_nonempty_leaf(leaf)?;
        Some(self.storage.head(next))
    }

    // ------------------------------------------------------------------
    // Point updates (§3: search, place, count, redistribute)
    // ------------------------------------------------------------------

    /// Insert one key; returns false if it was already present.
    pub fn insert(&mut self, key: K) -> bool {
        let dest = self.dest_leaf(key);
        let leaf = dest.unwrap_or(0);
        let mut scratch = Vec::new();
        let shared = self.storage.shared();
        // SAFETY: single-threaded exclusive access.
        let out = unsafe { shared.merge_into_leaf(leaf, &[key], &mut scratch) };
        if out.delta_count == 0 {
            return false;
        }
        self.len += 1;
        self.units = self.units.checked_add_signed(out.delta_units).unwrap();
        if dest.is_none() {
            // First element of an empty structure: leaf 0's head may have
            // jumped; refresh the inherited heads of the empty run after it.
            self.fix_inherited_heads_after(1);
        }
        self.rebalance_after_insert(leaf);
        true
    }

    /// Remove one key; returns false if it was absent.
    pub fn remove(&mut self, key: K) -> bool {
        let Some(leaf) = self.dest_leaf(key) else {
            return false;
        };
        let mut scratch = Vec::new();
        let shared = self.storage.shared();
        // SAFETY: single-threaded exclusive access.
        let out = unsafe { shared.remove_from_leaf(leaf, &[key], &mut scratch) };
        if out.delta_count == 0 {
            return false;
        }
        self.len -= 1;
        self.units = self.units.checked_add_signed(out.delta_units).unwrap();
        self.rebalance_after_remove(leaf);
        true
    }

    /// Units occupied within `node`'s leaf range.
    pub(crate) fn node_units(&self, node: Node) -> usize {
        (node.start..node.end)
            .map(|l| self.storage.units_used(l))
            .sum()
    }

    /// Walk up from a leaf that may violate its **upper** bound; grow or
    /// redistribute as needed (§3 steps 3–4).
    fn rebalance_after_insert(&mut self, leaf: usize) {
        let tree = self.tree();
        let max_depth = tree.max_depth();
        let path = tree.path_to_leaf(leaf);
        let leaf_node = *path.last().unwrap();
        let cap = self.storage.leaf_units();
        let leaf_used = self.storage.units_used(leaf);
        let violates_leaf = leaf_used > self.cfg.bounds.max_units(cap, leaf_node.depth, max_depth)
            || self.storage.is_overflowed(leaf);
        if !violates_leaf {
            return;
        }
        // Find the lowest ancestor that respects its bound and redistribute
        // it; if even the root violates, grow.
        for node in path.iter().rev().skip(1) {
            let used = self.node_units(*node);
            let bound = self
                .cfg
                .bounds
                .max_units(cap * node.len(), node.depth, max_depth);
            if used <= bound {
                self.redistribute(*node);
                return;
            }
        }
        let elems = self.collect_all();
        self.grow_and_rebuild(&elems);
    }

    /// Walk up from a leaf that may violate its **lower** bound; shrink or
    /// redistribute as needed. Skipped while at the capacity floor.
    fn rebalance_after_remove(&mut self, leaf: usize) {
        let tree = self.tree();
        let max_depth = tree.max_depth();
        let path = tree.path_to_leaf(leaf);
        let leaf_node = *path.last().unwrap();
        let cap = self.storage.leaf_units();
        let violates_leaf = self.storage.units_used(leaf)
            < self.cfg.bounds.min_units(cap, leaf_node.depth, max_depth);
        if !violates_leaf {
            return;
        }
        for node in path.iter().rev().skip(1) {
            let used = self.node_units(*node);
            let bound = self
                .cfg
                .bounds
                .min_units(cap * node.len(), node.depth, max_depth);
            if used >= bound {
                self.redistribute(*node);
                return;
            }
        }
        // Root under its lower bound: shrink unless already at the floor.
        if self.storage.num_leaves() > self.cfg.min_leaves {
            let elems = self.collect_all();
            self.shrink_and_rebuild(&elems);
        } else if self.len > 0 {
            self.redistribute(self.tree().root());
        }
    }

    /// Evenly re-spread the elements of `node` across its leaves
    /// (the redistribute step of §3; serial version for point updates).
    pub(crate) fn redistribute(&mut self, node: Node) {
        let mut elems = Vec::new();
        for l in node.start..node.end {
            if self.storage.is_overflowed(l) || self.storage.count(l) > 0 {
                let shared = self.storage.shared();
                // SAFETY: exclusive access.
                unsafe { shared.collect_leaf(l, &mut elems) };
            }
        }
        let prev_head = if node.start == 0 {
            K::MIN
        } else {
            self.storage.head(node.start - 1)
        };
        let k = node.len();
        let leaf_units = self.storage.leaf_units();
        let offsets = L::plan_split(&elems, k, leaf_units);
        let shared = self.storage.shared();
        let mut units_delta: isize = 0;
        for j in 0..k {
            let leaf = node.start + j;
            let slice = &elems[offsets[j]..offsets[j + 1]];
            let inherited = if offsets[j] > 0 {
                elems[offsets[j] - 1]
            } else {
                prev_head
            };
            // SAFETY: exclusive access.
            unsafe {
                let old = shared.units_used(leaf);
                let new = shared.write_leaf(leaf, slice, inherited);
                units_delta += new as isize - old as isize;
            }
        }
        self.units = self.units.checked_add_signed(units_delta).unwrap();
        self.fix_inherited_heads_after(node.end);
    }

    /// Repair inherited heads of the empty-leaf run starting at `from`
    /// (they may be stale after elements moved right within the preceding
    /// region). Stops at the first non-empty leaf.
    pub(crate) fn fix_inherited_heads_after(&mut self, from: usize) {
        if from == 0 {
            return;
        }
        let n = self.storage.num_leaves();
        let prev = self.storage.head(from - 1);
        let shared = self.storage.shared();
        for l in from..n {
            // SAFETY: exclusive access. Every leaf in the run receives the
            // same inherited value (it equals its predecessor's head by
            // construction).
            unsafe {
                if shared.count(l) > 0 {
                    break;
                }
                shared.set_inherited_head(l, prev);
            }
        }
    }

    // ------------------------------------------------------------------
    // Scans, maps, aggregates
    // ------------------------------------------------------------------

    /// Number of stored elements (the artifact's `size()`).
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True iff no elements are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bytes of backing memory (the artifact's `get_size()`).
    pub fn size_bytes(&self) -> usize {
        self.storage.size_bytes() + std::mem::size_of::<Self>()
    }

    /// Smallest stored element.
    pub fn min(&self) -> Option<K> {
        let leaf = self.first_nonempty_leaf()?;
        Some(self.storage.head(leaf))
    }

    /// Largest stored element.
    pub fn max(&self) -> Option<K> {
        if self.len == 0 {
            return None;
        }
        let leaf = (0..self.storage.num_leaves())
            .rev()
            .find(|&l| self.storage.count(l) > 0)?;
        self.storage.leaf_max(leaf)
    }

    /// Apply `f` to every element in order (the artifact's `map`).
    pub fn map(&self, mut f: impl FnMut(K)) {
        for leaf in 0..self.storage.num_leaves() {
            if self.storage.count(leaf) > 0 {
                self.storage.for_each_in_leaf(leaf, &mut |e| {
                    f(e);
                    true
                });
            }
        }
    }

    /// Apply `f` to every element, leaves in parallel (the artifact's
    /// `parallel_map`).
    pub fn par_map(&self, f: impl Fn(K) + Send + Sync) {
        (0..self.storage.num_leaves())
            .into_par_iter()
            .for_each(|leaf| {
                if self.storage.count(leaf) > 0 {
                    self.storage.for_each_in_leaf(leaf, &mut |e| {
                        f(e);
                        true
                    });
                }
            });
    }

    /// Visit elements ≥ `start` in ascending order until `f` returns
    /// `false` (the `RangeSet::scan_from` primitive).
    pub fn for_each_from(&self, start: K, f: &mut dyn FnMut(K) -> bool) {
        let Some(first) = self.dest_leaf(start) else {
            return;
        };
        let n = self.storage.num_leaves();
        for leaf in first..n {
            if self.storage.count(leaf) == 0 {
                continue;
            }
            let stopped = !self.storage.for_each_in_leaf(leaf, &mut |e| {
                if e < start {
                    return true;
                }
                f(e)
            });
            if stopped {
                return;
            }
        }
    }

    /// Apply `f` to at most `length` elements with keys ≥ `start`, in
    /// order; returns how many were visited (the artifact's
    /// `map_range_length`).
    pub fn map_range_length(&self, start: K, length: usize, mut f: impl FnMut(K)) -> usize {
        if length == 0 {
            return 0;
        }
        let Some(first) = self.dest_leaf(start) else {
            return 0;
        };
        let mut visited = 0usize;
        let n = self.storage.num_leaves();
        for leaf in first..n {
            if self.storage.count(leaf) == 0 {
                continue;
            }
            let done = !self.storage.for_each_in_leaf(leaf, &mut |e| {
                if e >= start {
                    f(e);
                    visited += 1;
                }
                visited < length
            });
            if done {
                break;
            }
        }
        visited
    }

    /// Sum of elements in `[start, end)`, with a whole-leaf fast path for
    /// interior leaves (the public API is `RangeSet::range_sum`).
    pub(crate) fn range_sum_excl(&self, start: K, end: K) -> u64 {
        if start >= end {
            return 0;
        }
        let Some(first) = self.dest_leaf(start) else {
            return 0;
        };
        let n = self.storage.num_leaves();
        let mut sum = 0u64;
        for leaf in first..n {
            if self.storage.count(leaf) == 0 {
                continue;
            }
            if self.storage.head(leaf) >= end {
                break;
            }
            // Whole leaf inside the range? (Next leaf non-empty with head ≤
            // end ⇒ this leaf's max < end.)
            let whole = self.storage.head(leaf) >= start
                && leaf + 1 < n
                && self.storage.count(leaf + 1) > 0
                && self.storage.head(leaf + 1) <= end;
            if whole {
                sum = sum.wrapping_add(self.storage.leaf_sum(leaf));
                continue;
            }
            let done = !self.storage.for_each_in_leaf(leaf, &mut |e| {
                if e >= end {
                    return false;
                }
                if e >= start {
                    sum = sum.wrapping_add(e.to_u64());
                }
                true
            });
            if done {
                break;
            }
        }
        sum
    }

    /// Sum of all elements, computed leaf-parallel (the artifact's `sum`).
    pub fn sum(&self) -> u64 {
        (0..self.storage.num_leaves())
            .into_par_iter()
            .map(|leaf| {
                if self.storage.count(leaf) > 0 {
                    self.storage.leaf_sum(leaf)
                } else {
                    0
                }
            })
            .reduce(|| 0u64, u64::wrapping_add)
    }

    /// All elements, sorted (used by rebuilds and tests).
    pub(crate) fn collect_all(&self) -> Vec<K> {
        let mut out = Vec::with_capacity(self.len);
        for leaf in 0..self.storage.num_leaves() {
            if self.storage.is_overflowed(leaf) || self.storage.count(leaf) > 0 {
                self.storage.collect_leaf(leaf, &mut out);
            }
        }
        out
    }

    /// Parallel [`Self::collect_all`]: the "pack" copy of the full-rebuild
    /// path ("the first copy packs the regions ... into a buffer", §4),
    /// parallelized over leaf chunks with precomputed offsets.
    pub(crate) fn collect_all_par(&self) -> Vec<K> {
        let nl = self.storage.num_leaves();
        let total: usize = (0..nl).map(|l| self.storage.count(l)).sum();
        if total < (1 << 15) {
            return self.collect_all();
        }
        const LEAVES_PER_CHUNK: usize = 64;
        let nchunks = nl.div_ceil(LEAVES_PER_CHUNK);
        let mut chunk_offsets = vec![0usize; nchunks + 1];
        for c in 0..nchunks {
            let lo = c * LEAVES_PER_CHUNK;
            let hi = (lo + LEAVES_PER_CHUNK).min(nl);
            chunk_offsets[c + 1] =
                chunk_offsets[c] + (lo..hi).map(|l| self.storage.count(l)).sum::<usize>();
        }
        let mut out = vec![K::MIN; total];
        // Disjoint-slice writes per chunk.
        struct OutPtr<K>(*mut K);
        unsafe impl<K> Send for OutPtr<K> {}
        unsafe impl<K> Sync for OutPtr<K> {}
        impl<K> OutPtr<K> {
            /// # Safety: ranges must be disjoint across concurrent callers.
            #[allow(clippy::mut_from_ref)]
            unsafe fn slice(&self, at: usize, len: usize) -> &mut [K] {
                std::slice::from_raw_parts_mut(self.0.add(at), len)
            }
        }
        let ptr = OutPtr(out.as_mut_ptr());
        (0..nchunks).into_par_iter().for_each(|c| {
            let lo = c * LEAVES_PER_CHUNK;
            let hi = (lo + LEAVES_PER_CHUNK).min(nl);
            let len = chunk_offsets[c + 1] - chunk_offsets[c];
            let mut buf = Vec::with_capacity(len);
            for l in lo..hi {
                if self.storage.is_overflowed(l) || self.storage.count(l) > 0 {
                    self.storage.collect_leaf(l, &mut buf);
                }
            }
            debug_assert_eq!(buf.len(), len);
            // SAFETY: chunk output ranges are disjoint by construction.
            unsafe { ptr.slice(chunk_offsets[c], len) }.copy_from_slice(&buf);
        });
        out
    }

    /// Iterate all elements in order.
    pub fn iter(&self) -> Iter<'_, K, L> {
        Iter {
            core: self,
            leaf: 0,
            buf: Vec::new(),
            pos: 0,
        }
    }

    /// Iterate, in order, the elements ≥ `start`.
    pub fn iter_from(&self, start: K) -> Iter<'_, K, L> {
        let Some(leaf) = self.dest_leaf(start) else {
            return Iter {
                core: self,
                leaf: self.storage.num_leaves(),
                buf: Vec::new(),
                pos: 0,
            };
        };
        let mut buf = Vec::new();
        self.storage.collect_leaf(leaf, &mut buf);
        let pos = buf.partition_point(|&e| e < start);
        Iter {
            core: self,
            leaf: leaf + 1,
            buf,
            pos,
        }
    }

    /// Direct read access to the leaf storage (used by the graph layer for
    /// zero-copy scans).
    pub fn storage(&self) -> &L {
        &self.storage
    }

    /// Mutable storage access for the batch phases and white-box tests.
    pub(crate) fn storage_mut(&mut self) -> &mut L {
        &mut self.storage
    }

    /// The active configuration.
    pub fn config(&self) -> &PmaConfig {
        &self.cfg
    }

    /// Batch-pipeline counters accumulated by this instance (routed runs,
    /// touched leaves, redistribution ranges, full rebuilds).
    pub fn stats(&self) -> stats::PmaStats {
        self.batch_stats
    }

    /// Zero the batch-pipeline counters (e.g. between measured phases).
    pub fn reset_stats(&mut self) {
        self.batch_stats = stats::PmaStats::default();
    }

    /// Adjust the unit counter (batch phases account deltas in bulk).
    pub(crate) fn add_units_delta(&mut self, delta: isize) {
        self.units = self.units.checked_add_signed(delta).unwrap();
    }

    /// Adjust the element counter (white-box tests only).
    #[cfg(test)]
    pub(crate) fn add_len_delta(&mut self, delta: isize) {
        self.len = self.len.checked_add_signed(delta).unwrap();
    }

    // ------------------------------------------------------------------
    // Invariant checking (tests / debugging)
    // ------------------------------------------------------------------

    /// Verify every structural invariant; panics with a description on
    /// violation. O(n) — for tests.
    pub fn check_invariants(&self) {
        let n = self.storage.num_leaves();
        let cap = self.storage.leaf_units();
        let tree = self.tree();
        let max_depth = tree.max_depth();
        // Heads non-decreasing; non-empty heads are minima; no overflows.
        let mut prev_head: Option<K> = None;
        let mut prev_elem: Option<K> = None;
        let mut total_len = 0usize;
        let mut total_units = 0usize;
        for leaf in 0..n {
            assert!(
                !self.storage.is_overflowed(leaf),
                "leaf {leaf} overflowed outside batch"
            );
            let h = self.storage.head(leaf);
            if let Some(p) = prev_head {
                assert!(p <= h, "heads decrease at leaf {leaf}");
            }
            prev_head = Some(h);
            let cnt = self.storage.count(leaf);
            total_len += cnt;
            total_units += self.storage.units_used(leaf);
            if cnt > 0 {
                let mut first = None;
                let mut local_prev: Option<K> = None;
                let mut seen = 0usize;
                self.storage.for_each_in_leaf(leaf, &mut |e| {
                    if first.is_none() {
                        first = Some(e);
                    }
                    if let Some(p) = local_prev {
                        assert!(p < e, "leaf {leaf} not strictly increasing");
                    }
                    if let Some(p) = prev_elem {
                        assert!(p < e, "global order broken at leaf {leaf}");
                    }
                    local_prev = Some(e);
                    prev_elem = Some(e);
                    seen += 1;
                    true
                });
                assert_eq!(seen, cnt, "leaf {leaf} count mismatch");
                assert_eq!(first, Some(h), "leaf {leaf} head is not its minimum");
            } else {
                assert_eq!(
                    self.storage.units_used(leaf),
                    0,
                    "empty leaf {leaf} has units"
                );
            }
        }
        assert_eq!(total_len, self.len, "len out of sync");
        assert_eq!(total_units, self.units, "units out of sync");
        // Density bounds are enforced along update paths, not globally (a
        // leaf sitting at 0.85 never triggers a walk), so the checkable
        // invariant is physical: every leaf fits its capacity.
        for leaf in 0..n {
            assert!(
                self.storage.units_used(leaf) <= cap,
                "leaf {leaf} exceeds physical capacity"
            );
        }
        let _ = (tree, max_depth);
    }
}

/// Element + configuration equality: two PMAs are equal iff they store
/// the same key set under the same [`PmaConfig`]. Physical layout
/// (capacity, leaf geometry, which leaf holds which key) is
/// intentionally ignored — it varies with insertion history while the
/// abstract set does not.
impl<K: PmaKey, L: LeafStorage<K>> PartialEq for PmaCore<K, L> {
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len && self.cfg == other.cfg && self.iter().eq(other.iter())
    }
}

impl<K: PmaKey, L: LeafStorage<K>> std::fmt::Debug for PmaCore<K, L> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PmaCore")
            .field("len", &self.len)
            .field("num_leaves", &self.storage.num_leaves())
            .field("leaf_units", &self.storage.leaf_units())
            .field("cfg", &self.cfg)
            .finish_non_exhaustive()
    }
}

/// In-order iterator over a PMA; decodes one leaf at a time.
pub struct Iter<'a, K: PmaKey, L: LeafStorage<K>> {
    core: &'a PmaCore<K, L>,
    leaf: usize,
    buf: Vec<K>,
    pos: usize,
}

impl<K: PmaKey, L: LeafStorage<K>> Iterator for Iter<'_, K, L> {
    type Item = K;

    fn next(&mut self) -> Option<K> {
        while self.pos >= self.buf.len() {
            if self.leaf >= self.core.storage.num_leaves() {
                return None;
            }
            self.buf.clear();
            self.pos = 0;
            if self.core.storage.count(self.leaf) > 0 {
                self.core.storage.collect_leaf(self.leaf, &mut self.buf);
            }
            self.leaf += 1;
        }
        let v = self.buf[self.pos];
        self.pos += 1;
        Some(v)
    }
}

impl<'a, K: PmaKey, L: LeafStorage<K>> IntoIterator for &'a PmaCore<K, L> {
    type Item = K;
    type IntoIter = Iter<'a, K, L>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// Owned iteration drains into a sorted buffer (the backing array is a
/// packed layout, not a `Vec` of elements).
impl<K: PmaKey, L: LeafStorage<K>> IntoIterator for PmaCore<K, L> {
    type Item = K;
    type IntoIter = std::vec::IntoIter<K>;
    fn into_iter(self) -> Self::IntoIter {
        self.collect_all().into_iter()
    }
}

/// Collect arbitrary (unsorted, possibly duplicated) keys into a PMA.
impl<K: PmaKey, L: LeafStorage<K>> FromIterator<K> for PmaCore<K, L> {
    fn from_iter<I: IntoIterator<Item = K>>(iter: I) -> Self {
        let mut keys: Vec<K> = iter.into_iter().collect();
        let keys = cpma_api::normalize_batch(&mut keys);
        Self::from_sorted(keys)
    }
}

/// Batch-insert arbitrary keys (buffers, then runs one batch update).
impl<K: PmaKey, L: LeafStorage<K>> Extend<K> for PmaCore<K, L> {
    fn extend<I: IntoIterator<Item = K>>(&mut self, iter: I) {
        let mut keys: Vec<K> = iter.into_iter().collect();
        self.insert_batch(&mut keys, false);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn empty_structure() {
        let p = Pma::<u64>::new();
        assert_eq!(p.len(), 0);
        assert!(p.is_empty());
        assert!(!p.has(5));
        assert_eq!(p.successor(0), None);
        assert_eq!(p.min(), None);
        assert_eq!(p.max(), None);
        assert_eq!(p.sum(), 0);
        assert_eq!(p.iter().count(), 0);
        p.check_invariants();
    }

    #[test]
    fn point_inserts_uncompressed() {
        let mut p = Pma::<u64>::new();
        for k in [5u64, 1, 9, 3, 7, 1, 5] {
            p.insert(k);
        }
        assert_eq!(p.len(), 5);
        assert_eq!(p.iter().collect::<Vec<_>>(), vec![1, 3, 5, 7, 9]);
        assert!(p.has(7));
        assert!(!p.has(2));
        assert_eq!(p.successor(4), Some(5));
        assert_eq!(p.successor(9), Some(9));
        assert_eq!(p.successor(10), None);
        assert_eq!(p.min(), Some(1));
        assert_eq!(p.max(), Some(9));
        assert_eq!(p.sum(), 25);
        p.check_invariants();
    }

    #[test]
    fn point_inserts_compressed() {
        let mut c = Cpma::new();
        for k in [500u64, 100, 900, 300, 700] {
            assert!(c.insert(k));
        }
        assert!(!c.insert(300));
        assert_eq!(c.len(), 5);
        assert_eq!(c.iter().collect::<Vec<_>>(), vec![100, 300, 500, 700, 900]);
        c.check_invariants();
    }

    #[test]
    fn many_point_inserts_trigger_growth() {
        let mut p = Pma::<u64>::new();
        let mut model = BTreeSet::new();
        let mut x = 12345u64;
        for _ in 0..5000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let k = x >> 20;
            p.insert(k);
            model.insert(k);
        }
        assert_eq!(p.len(), model.len());
        assert!(p.iter().eq(model.iter().copied()));
        p.check_invariants();
    }

    #[test]
    fn many_point_inserts_compressed_match_model() {
        let mut c = Cpma::new();
        let mut model = BTreeSet::new();
        let mut x = 999u64;
        for _ in 0..5000 {
            x = x.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            let k = x >> 24;
            c.insert(k);
            model.insert(k);
        }
        assert_eq!(c.len(), model.len());
        assert!(c.iter().eq(model.iter().copied()));
        c.check_invariants();
    }

    #[test]
    fn removals_match_model() {
        let mut p = Pma::<u64>::new();
        let mut model = BTreeSet::new();
        let mut x = 7u64;
        for _ in 0..3000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let k = (x >> 40) & 0xfff;
            if x & 4 == 0 {
                assert_eq!(p.insert(k), model.insert(k), "insert {k}");
            } else {
                assert_eq!(p.remove(k), model.remove(&k), "remove {k}");
            }
        }
        assert_eq!(p.len(), model.len());
        assert!(p.iter().eq(model.iter().copied()));
        p.check_invariants();
    }

    #[test]
    fn removals_compressed_match_model() {
        let mut c = Cpma::new();
        let mut model = BTreeSet::new();
        let mut x = 31u64;
        for _ in 0..3000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let k = (x >> 40) & 0x3ff;
            if x & 4 == 0 {
                assert_eq!(c.insert(k), model.insert(k));
            } else {
                assert_eq!(c.remove(k), model.remove(&k));
            }
        }
        assert!(c.iter().eq(model.iter().copied()));
        c.check_invariants();
    }

    #[test]
    fn remove_down_to_empty() {
        let mut p = Pma::<u64>::new();
        for k in 0..200u64 {
            p.insert(k * 3);
        }
        for k in 0..200u64 {
            assert!(p.remove(k * 3));
        }
        assert!(p.is_empty());
        assert!(!p.remove(0));
        p.check_invariants();
        // Structure remains usable.
        p.insert(42);
        assert!(p.has(42));
        p.check_invariants();
    }

    #[test]
    fn from_sorted_builds_even_layout() {
        let elems: Vec<u64> = (0..10_000).map(|i| i * 7).collect();
        let p = Pma::from_sorted(&elems);
        assert_eq!(p.len(), elems.len());
        assert!(p.iter().eq(elems.iter().copied()));
        p.check_invariants();
        let c = Cpma::from_sorted(&elems);
        assert_eq!(c.len(), elems.len());
        assert!(c.iter().eq(elems.iter().copied()));
        c.check_invariants();
    }

    #[test]
    fn for_range_respects_bounds() {
        use cpma_api::RangeSet;
        let elems: Vec<u64> = (0..1000).map(|i| i * 10).collect();
        let c = Cpma::from_sorted(&elems);
        let mut seen = Vec::new();
        c.for_range(95..250, |e| seen.push(e));
        assert_eq!(
            seen,
            vec![100, 110, 120, 130, 140, 150, 160, 170, 180, 190, 200, 210, 220, 230, 240]
        );
        // Inclusive end is part of the range.
        let mut incl = Vec::new();
        c.for_range(95..=250, |e| incl.push(e));
        assert_eq!(incl.last(), Some(&250));
        // Empty and inverted ranges.
        let mut none = Vec::new();
        c.for_range(300..300, |e| none.push(e));
        #[allow(clippy::reversed_empty_ranges)]
        c.for_range(400..300, |e| none.push(e));
        assert!(none.is_empty());
        // Range past the end.
        let mut tail = Vec::new();
        c.for_range(9_990.., |e| tail.push(e));
        assert_eq!(tail, vec![9_990]);
    }

    #[test]
    fn map_range_length_counts() {
        let elems: Vec<u64> = (0..500).collect();
        let p = Pma::from_sorted(&elems);
        let mut seen = Vec::new();
        let n = p.map_range_length(100, 5, |e| seen.push(e));
        assert_eq!(n, 5);
        assert_eq!(seen, vec![100, 101, 102, 103, 104]);
        let n = p.map_range_length(498, 10, |_| {});
        assert_eq!(n, 2);
    }

    #[test]
    fn range_sum_matches_naive() {
        let elems: Vec<u64> = (0..5000).map(|i| i * 3 + 1).collect();
        let c = Cpma::from_sorted(&elems);
        for (a, b) in [
            (0u64, 100u64),
            (50, 5000),
            (1, 2),
            (14_000, 15_000),
            (0, u64::MAX),
        ] {
            let naive: u64 = elems.iter().filter(|&&e| e >= a && e < b).sum();
            assert_eq!(c.range_sum_excl(a, b), naive, "range [{a},{b})");
        }
        assert_eq!(c.sum(), elems.iter().sum::<u64>());
    }

    #[test]
    fn par_map_visits_everything() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let elems: Vec<u64> = (0..2000).collect();
        let p = Pma::from_sorted(&elems);
        let acc = AtomicU64::new(0);
        p.par_map(|e| {
            acc.fetch_add(e, Ordering::Relaxed);
        });
        assert_eq!(acc.load(Ordering::Relaxed), elems.iter().sum::<u64>());
    }

    #[test]
    fn compressed_uses_less_space_than_uncompressed() {
        // 40-bit-style keys at realistic density.
        let mut x = 77u64;
        let mut elems: Vec<u64> = (0..50_000)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                x >> 24
            })
            .collect();
        elems.sort_unstable();
        elems.dedup();
        let p = Pma::from_sorted(&elems);
        let c = Cpma::from_sorted(&elems);
        assert!(
            (c.size_bytes() as f64) < 0.7 * p.size_bytes() as f64,
            "CPMA {} vs PMA {}",
            c.size_bytes(),
            p.size_bytes()
        );
    }

    #[test]
    fn boundary_keys() {
        let mut c = Cpma::new();
        assert!(c.insert(0));
        assert!(c.insert(u64::MAX));
        assert!(c.insert(u64::MAX - 1));
        assert!(c.has(0));
        assert!(c.has(u64::MAX));
        assert_eq!(c.successor(u64::MAX), Some(u64::MAX));
        assert_eq!(
            c.iter().collect::<Vec<_>>(),
            vec![0, u64::MAX - 1, u64::MAX]
        );
        c.check_invariants();
        assert!(c.remove(u64::MAX));
        assert_eq!(c.max(), Some(u64::MAX - 1));
        c.check_invariants();
    }

    #[test]
    fn u32_keys_supported() {
        let mut p = Pma::<u32>::new();
        for k in (0..1000u32).rev() {
            p.insert(k);
        }
        assert_eq!(p.len(), 1000);
        assert!(p.iter().eq(0..1000u32));
        p.check_invariants();
    }

    #[test]
    fn custom_growing_factor() {
        for f in [1.1f64, 1.5, 2.0] {
            let cfg = PmaConfig {
                growing_factor: f,
                ..Default::default()
            };
            let mut p = Pma::<u64>::with_config(cfg);
            for k in 0..2000u64 {
                p.insert(k);
            }
            assert_eq!(p.len(), 2000);
            p.check_invariants();
        }
    }
}
