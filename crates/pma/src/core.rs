//! `PmaCore`: the engine shared by the PMA and the CPMA.
//!
//! Implements the paper's four public operations — `insert`, `delete`,
//! `search`, `range_map` (§3) — plus the artifact API (`has`, `sum`, `map`,
//! `min`/`max`, size accounting) against any [`LeafStorage`]. The parallel
//! batch operations live in the `batch` module and are methods on this type.
//!
//! # Head-array invariant
//!
//! Search routes through a separate array of leaf heads (the layout of the
//! search-optimized PMA \[78] the paper builds on). The invariant maintained
//! everywhere is:
//!
//! 1. the head array is **non-decreasing**;
//! 2. a non-empty leaf's head equals its minimum element;
//! 3. an empty leaf's head is an *inherited* value within
//!    `[previous head, next non-empty head]`.
//!
//! Any inherited value in that interval keeps routing correct: a query
//! searches for the rightmost head ≤ key and then routes to the nearest
//! occupied leaf at or before it (an occupancy bitset answers that skip in
//! O(num_leaves / 64) words instead of a leaf-at-a-time walk). Inserts
//! never decrease a non-empty leaf's head via routing (elements below the
//! global minimum route to the first non-empty leaf), and deletes that
//! empty a leaf keep its old head — both preserve (1)-(3) without
//! cross-leaf coordination, which is what makes the batch phases race-free.
//!
//! # Head layouts
//!
//! *How* the rightmost head ≤ key is found is a compile-time choice: the
//! `FORM` const parameter selects a [`HeadForm`] — the flat in-place
//! binary search (the default), a separate flat array searched
//! branch-free, or the cache-conscious Eytzinger / B-ary tree layouts,
//! whose auxiliary arrays are rebuilt after every mutation (see
//! `docs/ARCHITECTURE.md` for the layouts and `docs/TUNING.md` for when
//! each wins).

use crate::density::DensityBounds;
use crate::leaf::SharedLeaves;
use crate::search;
use crate::tree::{ImplicitTree, Node};
use crate::{stats, CompressedLeaves, LeafStorage, PmaKey, UncompressedLeaves};
use cpma_api::ConfigError;
use rayon::prelude::*;
use std::marker::PhantomData;

/// The head-layout menu (the artifact's `HeadForm`): how `dest_leaf`
/// answers "rightmost head ≤ key". Selected at compile time through the
/// `FORM` const parameter of [`PmaCore`]; values are the `u8` the const
/// parameter takes (`PmaCore<K, L, { HeadForm::Eytzinger as u8 }>`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum HeadForm {
    /// Binary search directly over the heads stored in the leaf layout —
    /// no auxiliary array, no rebuild cost (the historical default).
    InPlace = 0,
    /// A packed copy of the head array searched with a branchless binary
    /// search. One extra array, trivially rebuilt.
    Linear = 1,
    /// Heads in BFS (Eytzinger) order: the first few levels of the
    /// implicit tree share cache lines and deeper levels are prefetched
    /// four levels ahead.
    Eytzinger = 2,
    /// A static B-ary search tree with 8 keys (one cache line) per node,
    /// searched with a branchless per-node rank.
    BNary = 3,
}

impl HeadForm {
    /// The form a `FORM` const parameter denotes (panics on out-of-range
    /// values at monomorphization time, since callers only reach this
    /// through `PmaCore::HEAD_FORM`).
    pub const fn from_u8(v: u8) -> Self {
        match v {
            0 => Self::InPlace,
            1 => Self::Linear,
            2 => Self::Eytzinger,
            3 => Self::BNary,
            _ => panic!("HeadForm const parameter must be 0..=3"),
        }
    }

    /// Short lowercase name (used by benches and snapshots' error text).
    pub const fn name(self) -> &'static str {
        match self {
            Self::InPlace => "inplace",
            Self::Linear => "linear",
            Self::Eytzinger => "eytzinger",
            Self::BNary => "bnary",
        }
    }
}

/// The auxiliary search structure backing a non-`InPlace` [`HeadForm`].
/// Rebuilt whenever heads may have changed (redistributes, rebuilds, the
/// tail of every point update and batch).
#[derive(Clone)]
pub(crate) enum HeadIndex<K> {
    None,
    Linear(Vec<K>),
    Eytzinger(search::Eytzinger<K>),
    BNary(search::BNary<K>),
}

/// Per-leaf codec selection policy for hybrid leaf storages
/// ([`crate::CompressedLeaves`]). Leaf storages without alternative
/// encodings ignore it.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ForceCodec {
    /// Pick per leaf at rewrite time: bitmap when its word cost is at most
    /// `bitmap_leaf_threshold ×` the delta-byte cost (with a small
    /// hysteresis band around the threshold to damp flip-flopping).
    #[default]
    Auto,
    /// Always delta byte codes (the paper's pure §5 CPMA).
    Delta,
    /// Always the bitmap encoding where it fits the leaf capacity
    /// (falls back to delta codes for spans too wide to fit).
    Bitmap,
}

/// Tuning knobs. Defaults follow the paper (§6 and Appendix B/C).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PmaConfig {
    /// Density thresholds per tree level.
    pub bounds: DensityBounds,
    /// Capacity multiplier on growth, divisor on shrink. The paper uses
    /// 1.2× and studies 1.1×–2.0× in Appendix C.
    pub growing_factor: f64,
    /// Capacity floor in *leaves* (the structure never shrinks below this
    /// many leaves).
    pub min_leaves: usize,
    /// Batches smaller than this use point updates (the paper uses point
    /// inserts "for small batches when the batch update algorithm does
    /// not provide practical benefits", Table 3 — "e.g., k < 100"). Zero
    /// sends every non-empty batch through the pipeline.
    pub point_update_cutoff: usize,
    /// Batches of at least `len / full_rebuild_divisor` elements rebuild
    /// the whole structure with a linear merge (paper: "e.g., k ≥ n/10").
    pub full_rebuild_divisor: usize,
    /// Codec override for hybrid leaf storages (default [`ForceCodec::Auto`]).
    pub force_codec: ForceCodec,
    /// Under [`ForceCodec::Auto`], a leaf flips to the bitmap encoding when
    /// its bitmap cost is at most `threshold ×` its delta-byte cost.
    /// `1.0` (the default) means "whichever is strictly smaller"; values
    /// above 1 bias toward bitmaps (buying wordwise range kernels at some
    /// space), below 1 toward delta codes.
    pub bitmap_leaf_threshold: f64,
}

impl Default for PmaConfig {
    fn default() -> Self {
        Self {
            bounds: DensityBounds::default(),
            growing_factor: 1.2,
            min_leaves: 4,
            point_update_cutoff: 128,
            full_rebuild_divisor: 10,
            force_codec: ForceCodec::Auto,
            bitmap_leaf_threshold: 1.0,
        }
    }
}

impl PmaConfig {
    /// Start building a configuration; [`PmaConfigBuilder::build`] validates
    /// and returns `Result`, making invalid parameters a recoverable error
    /// instead of a panic.
    pub fn builder() -> PmaConfigBuilder {
        PmaConfigBuilder::default()
    }

    /// Check parameter validity. Constructors call this and panic on `Err`
    /// (an already-constructed invalid config is a programming error);
    /// build-time callers should prefer [`PmaConfig::builder`].
    pub fn check(&self) -> Result<(), ConfigError> {
        self.bounds.check()?;
        if !self.growing_factor.is_finite() {
            return Err(ConfigError::new("growing_factor", "must be finite"));
        }
        if self.growing_factor <= 1.0 {
            return Err(ConfigError::new("growing_factor", "must exceed 1"));
        }
        if self.min_leaves < 1 {
            return Err(ConfigError::new("min_leaves", "must be at least 1"));
        }
        if self.full_rebuild_divisor < 1 {
            return Err(ConfigError::new(
                "full_rebuild_divisor",
                "must be at least 1",
            ));
        }
        if !self.bitmap_leaf_threshold.is_finite() {
            return Err(ConfigError::new("bitmap_leaf_threshold", "must be finite"));
        }
        if self.bitmap_leaf_threshold <= 0.0 {
            return Err(ConfigError::new(
                "bitmap_leaf_threshold",
                "must be positive",
            ));
        }
        Ok(())
    }

    pub(crate) fn assert_valid(&self) {
        if let Err(e) = self.check() {
            panic!("{e}");
        }
    }
}

/// Builder for [`PmaConfig`] with fallible validation.
///
/// ```
/// use cpma_pma::PmaConfig;
///
/// let cfg = PmaConfig::builder().growing_factor(1.5).min_leaves(8).build().unwrap();
/// assert_eq!(cfg.min_leaves, 8);
/// assert!(PmaConfig::builder().growing_factor(0.9).build().is_err());
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct PmaConfigBuilder {
    cfg: PmaConfig,
}

impl PmaConfigBuilder {
    /// Density thresholds per tree level.
    pub fn bounds(mut self, bounds: DensityBounds) -> Self {
        self.cfg.bounds = bounds;
        self
    }

    /// Capacity multiplier on growth, divisor on shrink (Appendix C
    /// studies 1.1×–2.0×; the paper uses 1.2×).
    pub fn growing_factor(mut self, f: f64) -> Self {
        self.cfg.growing_factor = f;
        self
    }

    /// Capacity floor in leaves.
    pub fn min_leaves(mut self, n: usize) -> Self {
        self.cfg.min_leaves = n;
        self
    }

    /// Batch size below which point updates are used instead of the batch
    /// pipeline (0 disables the fallback entirely).
    pub fn point_update_cutoff(mut self, n: usize) -> Self {
        self.cfg.point_update_cutoff = n;
        self
    }

    /// Divisor of the full-rebuild threshold: batches of at least
    /// `len / divisor` elements rebuild the whole structure.
    pub fn full_rebuild_divisor(mut self, n: usize) -> Self {
        self.cfg.full_rebuild_divisor = n;
        self
    }

    /// Codec override for hybrid leaf storages (see [`ForceCodec`]).
    pub fn force_codec(mut self, f: ForceCodec) -> Self {
        self.cfg.force_codec = f;
        self
    }

    /// Bitmap-vs-delta cost ratio at which a leaf flips to the bitmap
    /// encoding under [`ForceCodec::Auto`] (must be finite and positive).
    pub fn bitmap_leaf_threshold(mut self, t: f64) -> Self {
        self.cfg.bitmap_leaf_threshold = t;
        self
    }

    /// Validate and produce the configuration.
    pub fn build(self) -> Result<PmaConfig, ConfigError> {
        self.cfg.check()?;
        Ok(self.cfg)
    }
}

/// The uncompressed batch-parallel PMA (cells of raw keys).
pub type Pma<K = u64> = PmaCore<K, UncompressedLeaves<K>>;

/// The batch-parallel Compressed PMA (delta + byte codes; §5).
pub type Cpma = PmaCore<u64, CompressedLeaves>;

/// Uncompressed PMA with the branchless flat head copy.
pub type PmaLinear<K = u64> = PmaCore<K, UncompressedLeaves<K>, { HeadForm::Linear as u8 }>;

/// Uncompressed PMA with Eytzinger-ordered heads.
pub type PmaEytzinger<K = u64> = PmaCore<K, UncompressedLeaves<K>, { HeadForm::Eytzinger as u8 }>;

/// Uncompressed PMA with the B-ary head tree.
pub type PmaBNary<K = u64> = PmaCore<K, UncompressedLeaves<K>, { HeadForm::BNary as u8 }>;

/// CPMA with the branchless flat head copy.
pub type CpmaLinear = PmaCore<u64, CompressedLeaves, { HeadForm::Linear as u8 }>;

/// CPMA with Eytzinger-ordered heads.
pub type CpmaEytzinger = PmaCore<u64, CompressedLeaves, { HeadForm::Eytzinger as u8 }>;

/// CPMA with the B-ary head tree.
pub type CpmaBNary = PmaCore<u64, CompressedLeaves, { HeadForm::BNary as u8 }>;

/// Engine over generic leaf storage. See module docs; `FORM` is a
/// [`HeadForm`] discriminant selecting the head layout.
///
/// `Clone` (for `Clone` leaf storages) is what snapshot publishers like
/// `cpma-store`'s combiner build on.
#[derive(Clone)]
pub struct PmaCore<K: PmaKey, L: LeafStorage<K>, const FORM: u8 = 0> {
    pub(crate) storage: L,
    pub(crate) cfg: PmaConfig,
    /// Number of stored elements.
    pub(crate) len: usize,
    /// Total occupied units across leaves.
    pub(crate) units: usize,
    /// Batch-pipeline counter cells (see [`stats::PmaCounters`]); each
    /// instance registers its own, and `stats()` views them.
    pub(crate) batch_stats: stats::PmaCounters,
    /// One bit per leaf: is it non-empty? Lets routing skip empty runs a
    /// word (64 leaves) at a time instead of leaf-by-leaf.
    pub(crate) occ: Vec<u64>,
    /// Auxiliary head array for non-`InPlace` forms.
    pub(crate) aux: HeadIndex<K>,
    pub(crate) _marker: PhantomData<K>,
}

impl<K: PmaKey, L: LeafStorage<K>, const FORM: u8> Default for PmaCore<K, L, FORM> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: PmaKey, L: LeafStorage<K>, const FORM: u8> PmaCore<K, L, FORM> {
    /// The head layout this instantiation uses.
    pub const HEAD_FORM: HeadForm = HeadForm::from_u8(FORM);
    /// Empty structure with default configuration.
    pub fn new() -> Self {
        Self::with_config(PmaConfig::default())
    }

    /// Empty structure with explicit configuration.
    pub fn with_config(cfg: PmaConfig) -> Self {
        cfg.assert_valid();
        let leaf_units = Self::leaf_units_for_cap(cfg.min_leaves * L::MIN_LEAF_UNITS);
        let mut storage = L::with_geometry(cfg.min_leaves, leaf_units);
        storage.set_codec_policy(cfg.force_codec, cfg.bitmap_leaf_threshold);
        let mut this = Self {
            storage,
            cfg,
            len: 0,
            units: 0,
            batch_stats: stats::PmaCounters::new(),
            occ: Vec::new(),
            aux: HeadIndex::None,
            _marker: PhantomData,
        };
        this.rebuild_read_index();
        this
    }

    /// Build from a sorted, deduplicated slice (the artifact's
    /// `CPMA(start, end)` constructor). Leaves are filled at the rebuild
    /// target density, elements spread evenly.
    pub fn from_sorted(elems: &[K]) -> Self {
        Self::from_sorted_with(elems, PmaConfig::default())
    }

    /// [`Self::from_sorted`] with explicit configuration.
    pub fn from_sorted_with(elems: &[K], cfg: PmaConfig) -> Self {
        cfg.assert_valid();
        debug_assert!(
            elems.windows(2).all(|w| w[0] < w[1]),
            "input must be sorted unique"
        );
        let mut this = Self::with_config(cfg);
        if !elems.is_empty() {
            let cap = this.capacity_for_target(elems);
            this.rebuild_into(elems, cap);
        }
        this
    }

    // ------------------------------------------------------------------
    // Geometry
    // ------------------------------------------------------------------

    /// Leaf capacity (units) for a structure of `cap_units` total capacity:
    /// `LEAF_SCALE · ⌈log₂ cap⌉`, aligned and clamped (Θ(log N) leaves, §3).
    pub(crate) fn leaf_units_for_cap(cap_units: usize) -> usize {
        let lg = (usize::BITS - cap_units.max(2).leading_zeros()) as usize;
        let raw = (lg * L::LEAF_SCALE).max(L::MIN_LEAF_UNITS);
        raw.div_ceil(L::LEAF_ALIGN) * L::LEAF_ALIGN
    }

    /// Total unit capacity.
    #[inline]
    pub fn capacity_units(&self) -> usize {
        self.storage.num_leaves() * self.storage.leaf_units()
    }

    /// The implicit tree over the current leaves.
    #[inline]
    pub(crate) fn tree(&self) -> ImplicitTree {
        ImplicitTree::new(self.storage.num_leaves())
    }

    /// Units capacity needed to host `elems` at the rebuild target density.
    pub(crate) fn capacity_for_target(&self, elems: &[K]) -> usize {
        let stream = self.storage.units_for_with(elems);
        let target = self.cfg.bounds.rebuild_target;
        let mut cap = ((stream as f64) / target).ceil() as usize;
        // One refinement round: heads overhead depends on the leaf count.
        let leaf = Self::leaf_units_for_cap(cap.max(1));
        let k = cap.div_ceil(leaf).max(self.cfg.min_leaves);
        let est = stream + k.saturating_sub(1) * L::HEAD_UNITS;
        cap = ((est as f64) / target).ceil() as usize;
        cap.max(self.cfg.min_leaves * L::MIN_LEAF_UNITS)
    }

    /// Replace storage with a fresh layout of at least `cap_units` capacity
    /// holding exactly `elems` (sorted unique), spread evenly.
    ///
    /// The hybrid codec's `units_for_with` is an estimate (a lower bound),
    /// so a split plan can fail to fit its tail; the loop retries with a
    /// capacity sized from the *actual* units of the failed attempt, which
    /// converges in O(1) rounds. Delta-only and uncompressed storages
    /// never retry (their planners are exact).
    pub(crate) fn rebuild_into(&mut self, elems: &[K], mut cap_units: usize) {
        loop {
            let leaf_units = Self::leaf_units_for_cap(cap_units);
            let k = cap_units.div_ceil(leaf_units).max(self.cfg.min_leaves);
            let mut storage = L::with_geometry(k, leaf_units);
            storage.set_codec_policy(self.cfg.force_codec, self.cfg.bitmap_leaf_threshold);
            let offsets = self.storage.plan_split_with(elems, k, leaf_units);
            let shared = storage.shared();
            let units: usize = (0..k)
                .into_par_iter()
                .map(|j| {
                    let slice = &elems[offsets[j]..offsets[j + 1]];
                    let inherited = if offsets[j] > 0 {
                        elems[offsets[j] - 1]
                    } else {
                        K::MIN
                    };
                    // SAFETY: each iteration owns a distinct leaf.
                    unsafe { shared.write_leaf(j, slice, inherited) }
                })
                .sum();
            if (0..k).any(|j| storage.is_overflowed(j)) {
                let target = self.cfg.bounds.rebuild_target;
                let exact = ((units as f64) / target).ceil() as usize;
                let grown = ((cap_units as f64) * self.cfg.growing_factor).ceil() as usize;
                cap_units = exact.max(grown);
                continue;
            }
            self.storage = storage;
            self.units = units;
            self.len = elems.len();
            self.batch_stats.full_rebuilds.inc();
            self.rebuild_read_index();
            return;
        }
    }

    /// Grow capacity by the growing factor (repeatedly if needed) and
    /// re-spread `elems`.
    pub(crate) fn grow_and_rebuild(&mut self, elems: &[K]) {
        let stream = self.storage.units_for_with(elems);
        let f = self.cfg.growing_factor;
        let mut cap = ((self.capacity_units() as f64) * f).ceil() as usize;
        loop {
            let leaf = Self::leaf_units_for_cap(cap);
            let k = cap.div_ceil(leaf).max(self.cfg.min_leaves);
            let est = stream + k.saturating_sub(1) * L::HEAD_UNITS;
            if (est as f64) <= self.cfg.bounds.upper_root * (k * leaf) as f64 {
                break;
            }
            cap = ((cap as f64) * f).ceil() as usize;
        }
        self.rebuild_into(elems, cap);
    }

    /// Shrink capacity by the growing factor while the root is under its
    /// lower bound, then re-spread `elems`.
    pub(crate) fn shrink_and_rebuild(&mut self, elems: &[K]) {
        let stream = self.storage.units_for_with(elems);
        let f = self.cfg.growing_factor;
        let floor = self.cfg.min_leaves * L::MIN_LEAF_UNITS;
        let mut cap = self.capacity_units();
        loop {
            let next = (((cap as f64) / f).ceil() as usize).max(floor);
            if next == cap || (stream as f64) >= self.cfg.bounds.lower_root * next as f64 {
                cap = next;
                break;
            }
            cap = next;
        }
        self.rebuild_into(elems, cap);
    }

    // ------------------------------------------------------------------
    // Occupancy bitset + auxiliary head index
    // ------------------------------------------------------------------

    #[inline]
    fn occ_get(&self, leaf: usize) -> bool {
        self.occ[leaf / 64] >> (leaf % 64) & 1 == 1
    }

    #[inline]
    fn occ_set(&mut self, leaf: usize) {
        self.occ[leaf / 64] |= 1u64 << (leaf % 64);
    }

    #[inline]
    fn occ_clear(&mut self, leaf: usize) {
        self.occ[leaf / 64] &= !(1u64 << (leaf % 64));
    }

    /// First occupied leaf at or after `from`, if any.
    fn occ_next_from(&self, from: usize) -> Option<usize> {
        let n = self.storage.num_leaves();
        if from >= n {
            return None;
        }
        let mut w = from / 64;
        let mut word = self.occ[w] & (!0u64 << (from % 64));
        loop {
            if word != 0 {
                let leaf = w * 64 + word.trailing_zeros() as usize;
                return (leaf < n).then_some(leaf);
            }
            w += 1;
            if w >= self.occ.len() {
                return None;
            }
            word = self.occ[w];
        }
    }

    /// Last occupied leaf at or before `from`, if any.
    fn occ_prev_from(&self, from: usize) -> Option<usize> {
        let from = from.min(self.storage.num_leaves().saturating_sub(1));
        let mut w = from / 64;
        let mut word = self.occ[w] & (!0u64 >> (63 - from % 64));
        loop {
            if word != 0 {
                return Some(w * 64 + 63 - word.leading_zeros() as usize);
            }
            if w == 0 {
                return None;
            }
            w -= 1;
            word = self.occ[w];
        }
    }

    /// Recompute occupancy bits for leaves in `[start, end)` from counts
    /// (redistributes only disturb their own range).
    fn rebuild_occ_range(&mut self, start: usize, end: usize) {
        for leaf in start..end {
            if self.storage.count(leaf) > 0 {
                self.occ_set(leaf);
            } else {
                self.occ_clear(leaf);
            }
        }
    }

    /// Rebuild the auxiliary head array from the current heads (a no-op
    /// for `InPlace`). Must run after anything that may move a head.
    pub(crate) fn rebuild_head_index(&mut self) {
        if matches!(Self::HEAD_FORM, HeadForm::InPlace) {
            self.aux = HeadIndex::None;
            return;
        }
        let n = self.storage.num_leaves();
        debug_assert!(n < u32::MAX as usize, "head index ranks are u32");
        let mut heads = Vec::with_capacity(n);
        for l in 0..n {
            heads.push(self.storage.head(l));
        }
        self.aux = match Self::HEAD_FORM {
            HeadForm::InPlace => unreachable!(),
            HeadForm::Linear => HeadIndex::Linear(heads),
            HeadForm::Eytzinger => HeadIndex::Eytzinger(search::Eytzinger::build(&heads, K::MAX)),
            HeadForm::BNary => HeadIndex::BNary(search::BNary::build(&heads, K::MAX)),
        };
    }

    /// Recompute everything `dest_leaf` routes through — the occupancy
    /// bitset and the auxiliary head array. Called by rebuilds, snapshot
    /// loads, and the tail of every batch pipeline.
    pub(crate) fn rebuild_read_index(&mut self) {
        let n = self.storage.num_leaves();
        self.occ = vec![0u64; n.div_ceil(64).max(1)];
        for leaf in 0..n {
            if self.storage.count(leaf) > 0 {
                self.occ_set(leaf);
            }
        }
        self.rebuild_head_index();
    }

    /// Bytes held by the read index (occupancy words + auxiliary heads).
    fn read_index_bytes(&self) -> usize {
        let aux = match &self.aux {
            HeadIndex::None => 0,
            HeadIndex::Linear(h) => std::mem::size_of_val(h.as_slice()),
            HeadIndex::Eytzinger(e) => {
                std::mem::size_of_val(e.keys.as_slice()) + std::mem::size_of_val(e.rank.as_slice())
            }
            HeadIndex::BNary(b) => {
                std::mem::size_of_val(b.keys.as_slice())
                    + std::mem::size_of_val(b.rank.as_slice())
                    + b.fill.len()
            }
        };
        std::mem::size_of_val(self.occ.as_slice()) + aux
    }

    // ------------------------------------------------------------------
    // Search
    // ------------------------------------------------------------------

    /// Count of heads ≤ `key` (the partition point the routing walk needs),
    /// answered through the layout `FORM` selects.
    #[inline]
    pub(crate) fn head_partition(&self, key: K) -> usize {
        let n = self.storage.num_leaves();
        stats::record_read(((usize::BITS - n.leading_zeros()) as usize) * K::BYTES);
        match &self.aux {
            HeadIndex::Linear(heads) => search::upper_bound(heads, key),
            HeadIndex::Eytzinger(e) => e.partition(key),
            HeadIndex::BNary(b) => b.partition(key, n),
            HeadIndex::None => {
                // In-place binary search over the heads in leaf storage.
                let (mut lo, mut hi) = (0usize, n);
                while lo < hi {
                    let mid = lo + (hi - lo) / 2;
                    if self.storage.head(mid) <= key {
                        lo = mid + 1;
                    } else {
                        hi = mid;
                    }
                }
                lo
            }
        }
    }

    /// First leaf with a nonzero count, if any.
    pub(crate) fn first_nonempty_leaf(&self) -> Option<usize> {
        if self.len == 0 {
            return None;
        }
        self.occ_next_from(0)
    }

    /// The leaf where `key` lives / would be inserted. `None` iff empty.
    ///
    /// Search for the rightmost head ≤ key, then skip to the nearest
    /// occupied leaf at or before it via the occupancy bitset (inherited
    /// heads make every leaf of the skipped empty run route equivalently);
    /// keys below the global minimum route to the first non-empty leaf
    /// (see module docs).
    pub(crate) fn dest_leaf(&self, key: K) -> Option<usize> {
        if self.len == 0 {
            return None;
        }
        let lo = self.head_partition(key);
        if lo == 0 {
            return self.first_nonempty_leaf();
        }
        self.occ_prev_from(lo - 1)
            .or_else(|| self.first_nonempty_leaf())
    }

    /// Next non-empty leaf strictly after `leaf`, if any.
    pub(crate) fn next_nonempty_leaf(&self, leaf: usize) -> Option<usize> {
        self.occ_next_from(leaf + 1)
    }

    /// Membership test (the artifact's `has`).
    pub fn has(&self, key: K) -> bool {
        match self.dest_leaf(key) {
            Some(leaf) => self.storage.leaf_contains(leaf, key),
            None => false,
        }
    }

    /// Smallest stored element ≥ `key` (the paper's `search`).
    pub fn successor(&self, key: K) -> Option<K> {
        let leaf = self.dest_leaf(key)?;
        if let Some(s) = self.storage.leaf_successor(leaf, key) {
            return Some(s);
        }
        let next = self.next_nonempty_leaf(leaf)?;
        Some(self.storage.head(next))
    }

    // ------------------------------------------------------------------
    // Batched point lookups
    // ------------------------------------------------------------------

    /// Probe indices sorted by key (ties by position, so the plan is
    /// deterministic under duplicate probes).
    fn probe_order(keys: &[K]) -> Vec<usize> {
        let mut order: Vec<usize> = (0..keys.len()).collect();
        order.sort_unstable_by_key(|&i| (keys[i], i));
        order
    }

    /// The head of `leaf`, answered from the auxiliary array when one
    /// holds plain heads — routing then never touches leaf storage.
    #[inline]
    fn head_at(&self, leaf: usize) -> K {
        match &self.aux {
            HeadIndex::Linear(heads) => heads[leaf],
            _ => self.storage.head(leaf),
        }
    }

    /// How many probe groups ahead the probe phase prefetches leaf data:
    /// deep enough to keep ~a dozen independent line fills in flight,
    /// which is what the leaf-miss-bound probe loop needs to hide DRAM
    /// latency.
    const PROBE_PREFETCH_AHEAD: usize = 12;

    /// Route sorted probes group-by-group: each call of `visit` receives
    /// the destination leaf, the slice of probe slots landing in it, and
    /// the head of the next occupied leaf (= every group member's
    /// out-of-leaf successor).
    ///
    /// Two passes. The routing pass walks only the head index (plus the
    /// occupancy bitset) and records one `(leaf, range, limit)` group per
    /// destination. The probe pass then visits the groups with leaf-data
    /// prefetch issued [`Self::PROBE_PREFETCH_AHEAD`] groups early, so the
    /// cache misses of consecutive groups — almost always distinct leaves
    /// — overlap instead of serializing.
    fn for_probe_groups(
        &self,
        keys: &[K],
        order: &[usize],
        mut visit: impl FnMut(usize, &[usize], Option<K>),
    ) {
        // Routing pass: the first group pays one full head search; every
        // later group starts at the previous group's limit leaf (its key
        // is ≥ that head by the group boundary), so routing usually
        // advances with a short occupancy-bitset walk. Long skips — a
        // probe far past the cursor — fall back to the head search after
        // a few steps rather than crawling leaf by leaf.
        let mut plan: Vec<(usize, usize, usize)> = Vec::new();
        let mut limits: Vec<Option<K>> = Vec::new();
        let mut i = 0usize;
        let mut cursor: Option<usize> = None;
        while i < order.len() {
            let key = keys[order[i]];
            let leaf = match cursor {
                Some(start) => {
                    let mut cur = start;
                    let mut steps = 0usize;
                    loop {
                        match self.next_nonempty_leaf(cur) {
                            Some(nl) if self.head_at(nl) <= key => {
                                cur = nl;
                                steps += 1;
                                if steps >= 8 {
                                    // Far skip: one log-time search beats
                                    // an unbounded forward crawl.
                                    cur = self.dest_leaf(key).unwrap();
                                    break;
                                }
                            }
                            _ => break,
                        }
                    }
                    cur
                }
                None => self
                    .dest_leaf(key)
                    .expect("probe routing requires a non-empty structure"),
            };
            // Everything below the next occupied head routes to `leaf`
            // (dest_leaf is monotone and skips inherited-head runs).
            let next = self.next_nonempty_leaf(leaf);
            let limit = next.map(|nl| self.head_at(nl));
            let mut j = i + 1;
            while j < order.len() && limit.is_none_or(|lim| keys[order[j]] < lim) {
                j += 1;
            }
            plan.push((leaf, i, j));
            limits.push(limit);
            // The next group's key (if any) is ≥ `limit`, so its
            // destination is `next` or later.
            cursor = next;
            i = j;
        }
        // Probe pass, software-pipelined against the prefetcher.
        for &(leaf, _, _) in plan.iter().take(Self::PROBE_PREFETCH_AHEAD) {
            self.storage.prefetch_leaf(leaf);
        }
        for (g, &(leaf, lo, hi)) in plan.iter().enumerate() {
            if let Some(&(ahead, _, _)) = plan.get(g + Self::PROBE_PREFETCH_AHEAD) {
                self.storage.prefetch_leaf(ahead);
            }
            visit(leaf, &order[lo..hi], limits[g]);
        }
    }

    /// Membership for every probe: `out[i]` answers `keys[i]`. Probes are
    /// visited in sorted order, the destination leaf of the next group is
    /// prefetched, and probes landing in the same leaf share one decode.
    pub fn contains_batch(&self, keys: &[K]) -> Vec<bool> {
        let mut out = vec![false; keys.len()];
        if self.len == 0 || keys.is_empty() {
            return out;
        }
        let order = Self::probe_order(keys);
        let mut buf: Vec<K> = Vec::new();
        self.for_probe_groups(keys, &order, |leaf, slots, _limit| {
            if slots.len() > 1 {
                buf.clear();
                self.storage.collect_leaf(leaf, &mut buf);
                for &slot in slots {
                    let k = keys[slot];
                    let pos = search::lower_bound(&buf, k);
                    out[slot] = pos < buf.len() && buf[pos] == k;
                }
            } else {
                out[slots[0]] = self.storage.leaf_contains(leaf, keys[slots[0]]);
            }
        });
        out
    }

    /// Successor (smallest stored element ≥ probe) for every probe:
    /// `out[i]` answers `keys[i]`. Same routing plan as
    /// [`contains_batch`](Self::contains_batch); the shared group limit
    /// doubles as the out-of-leaf successor.
    pub fn successor_batch(&self, keys: &[K]) -> Vec<Option<K>> {
        let mut out = vec![None; keys.len()];
        if self.len == 0 || keys.is_empty() {
            return out;
        }
        let order = Self::probe_order(keys);
        let mut buf: Vec<K> = Vec::new();
        self.for_probe_groups(keys, &order, |leaf, slots, limit| {
            if slots.len() > 1 {
                buf.clear();
                self.storage.collect_leaf(leaf, &mut buf);
                for &slot in slots {
                    let pos = search::lower_bound(&buf, keys[slot]);
                    out[slot] = if pos < buf.len() {
                        Some(buf[pos])
                    } else {
                        limit
                    };
                }
            } else {
                out[slots[0]] = self.storage.leaf_successor(leaf, keys[slots[0]]).or(limit);
            }
        });
        out
    }

    // ------------------------------------------------------------------
    // Point updates (§3: search, place, count, redistribute)
    // ------------------------------------------------------------------

    /// Insert one key; returns false if it was already present.
    pub fn insert(&mut self, key: K) -> bool {
        let dest = self.dest_leaf(key);
        let leaf = dest.unwrap_or(0);
        let mut scratch = Vec::new();
        let shared = self.storage.shared();
        // SAFETY: single-threaded exclusive access.
        let out = unsafe { shared.merge_into_leaf(leaf, &[key], &mut scratch) };
        if out.delta_count == 0 {
            return false;
        }
        self.len += 1;
        self.units = self.units.checked_add_signed(out.delta_units).unwrap();
        self.occ_set(leaf);
        if dest.is_none() {
            // First element of an empty structure: leaf 0's head may have
            // jumped; refresh the inherited heads of the empty run after it.
            self.fix_inherited_heads_after(1);
        }
        self.rebalance_after_insert(leaf);
        // The merge may have lowered the leaf's head (key below its old
        // minimum), so non-InPlace forms refresh the auxiliary array.
        self.rebuild_head_index();
        true
    }

    /// Remove one key; returns false if it was absent.
    pub fn remove(&mut self, key: K) -> bool {
        let Some(leaf) = self.dest_leaf(key) else {
            return false;
        };
        let mut scratch = Vec::new();
        let shared = self.storage.shared();
        // SAFETY: single-threaded exclusive access.
        let out = unsafe { shared.remove_from_leaf(leaf, &[key], &mut scratch) };
        if out.delta_count == 0 {
            return false;
        }
        self.len -= 1;
        self.units = self.units.checked_add_signed(out.delta_units).unwrap();
        if self.storage.count(leaf) == 0 {
            self.occ_clear(leaf);
        }
        self.rebalance_after_remove(leaf);
        // Removing a leaf's minimum moves its head up; refresh the
        // auxiliary array for non-InPlace forms.
        self.rebuild_head_index();
        true
    }

    /// Units occupied within `node`'s leaf range.
    pub(crate) fn node_units(&self, node: Node) -> usize {
        (node.start..node.end)
            .map(|l| self.storage.units_used(l))
            .sum()
    }

    /// Walk up from a leaf that may violate its **upper** bound; grow or
    /// redistribute as needed (§3 steps 3–4).
    fn rebalance_after_insert(&mut self, leaf: usize) {
        let tree = self.tree();
        let max_depth = tree.max_depth();
        let path = tree.path_to_leaf(leaf);
        let leaf_node = *path.last().unwrap();
        let cap = self.storage.leaf_units();
        let leaf_used = self.storage.units_used(leaf);
        let violates_leaf = leaf_used > self.cfg.bounds.max_units(cap, leaf_node.depth, max_depth)
            || self.storage.is_overflowed(leaf);
        if !violates_leaf {
            return;
        }
        // Find the lowest ancestor that respects its bound and redistribute
        // it; if even the root violates, grow.
        for node in path.iter().rev().skip(1) {
            let used = self.node_units(*node);
            let bound = self
                .cfg
                .bounds
                .max_units(cap * node.len(), node.depth, max_depth);
            if used <= bound {
                self.redistribute(*node);
                return;
            }
        }
        let elems = self.collect_all();
        self.grow_and_rebuild(&elems);
    }

    /// Walk up from a leaf that may violate its **lower** bound; shrink or
    /// redistribute as needed. Skipped while at the capacity floor.
    fn rebalance_after_remove(&mut self, leaf: usize) {
        let tree = self.tree();
        let max_depth = tree.max_depth();
        let path = tree.path_to_leaf(leaf);
        let leaf_node = *path.last().unwrap();
        let cap = self.storage.leaf_units();
        let violates_leaf = self.storage.units_used(leaf)
            < self.cfg.bounds.min_units(cap, leaf_node.depth, max_depth);
        if !violates_leaf {
            return;
        }
        for node in path.iter().rev().skip(1) {
            let used = self.node_units(*node);
            let bound = self
                .cfg
                .bounds
                .min_units(cap * node.len(), node.depth, max_depth);
            if used >= bound {
                self.redistribute(*node);
                return;
            }
        }
        // Root under its lower bound: shrink unless already at the floor.
        if self.storage.num_leaves() > self.cfg.min_leaves {
            let elems = self.collect_all();
            self.shrink_and_rebuild(&elems);
        } else if self.len > 0 {
            self.redistribute(self.tree().root());
        }
    }

    /// Evenly re-spread the elements of `node` across its leaves
    /// (the redistribute step of §3; serial version for point updates).
    pub(crate) fn redistribute(&mut self, node: Node) {
        let mut elems = Vec::new();
        for l in node.start..node.end {
            if self.storage.is_overflowed(l) || self.storage.count(l) > 0 {
                let shared = self.storage.shared();
                // SAFETY: exclusive access.
                unsafe { shared.collect_leaf(l, &mut elems) };
            }
        }
        let prev_head = if node.start == 0 {
            K::MIN
        } else {
            self.storage.head(node.start - 1)
        };
        let k = node.len();
        let leaf_units = self.storage.leaf_units();
        let offsets = self.storage.plan_split_with(&elems, k, leaf_units);
        let shared = self.storage.shared();
        let mut units_delta: isize = 0;
        for j in 0..k {
            let leaf = node.start + j;
            let slice = &elems[offsets[j]..offsets[j + 1]];
            let inherited = if offsets[j] > 0 {
                elems[offsets[j] - 1]
            } else {
                prev_head
            };
            // SAFETY: exclusive access.
            unsafe {
                let old = shared.units_used(leaf);
                let new = shared.write_leaf(leaf, slice, inherited);
                units_delta += new as isize - old as isize;
            }
        }
        self.units = self.units.checked_add_signed(units_delta).unwrap();
        self.fix_inherited_heads_after(node.end);
        self.rebuild_occ_range(node.start, node.end);
        self.rebuild_head_index();
        // Hybrid plans are estimate-driven and may leave an unfit tail
        // leaf; a capacity grow re-spreads everything and cannot overflow
        // (rebuild_into retries until every leaf fits).
        if (node.start..node.end).any(|l| self.storage.is_overflowed(l)) {
            let all = self.collect_all();
            self.grow_and_rebuild(&all);
        }
    }

    /// Repair inherited heads of the empty-leaf run starting at `from`
    /// (they may be stale after elements moved right within the preceding
    /// region). Stops at the first non-empty leaf.
    pub(crate) fn fix_inherited_heads_after(&mut self, from: usize) {
        if from == 0 {
            return;
        }
        let n = self.storage.num_leaves();
        let prev = self.storage.head(from - 1);
        let shared = self.storage.shared();
        for l in from..n {
            // SAFETY: exclusive access. Every leaf in the run receives the
            // same inherited value (it equals its predecessor's head by
            // construction).
            unsafe {
                if shared.count(l) > 0 {
                    break;
                }
                shared.set_inherited_head(l, prev);
            }
        }
    }

    // ------------------------------------------------------------------
    // Scans, maps, aggregates
    // ------------------------------------------------------------------

    /// Number of stored elements (the artifact's `size()`).
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True iff no elements are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bytes of backing memory (the artifact's `get_size()`), including
    /// the read index (occupancy bitset + auxiliary head array).
    pub fn size_bytes(&self) -> usize {
        self.storage.size_bytes() + std::mem::size_of::<Self>() + self.read_index_bytes()
    }

    /// Smallest stored element.
    pub fn min(&self) -> Option<K> {
        let leaf = self.first_nonempty_leaf()?;
        Some(self.storage.head(leaf))
    }

    /// Largest stored element.
    pub fn max(&self) -> Option<K> {
        if self.len == 0 {
            return None;
        }
        let leaf = self.occ_prev_from(self.storage.num_leaves() - 1)?;
        self.storage.leaf_max(leaf)
    }

    /// Apply `f` to every element in order (the artifact's `map`).
    pub fn map(&self, mut f: impl FnMut(K)) {
        for leaf in 0..self.storage.num_leaves() {
            if self.storage.count(leaf) > 0 {
                self.storage.for_each_in_leaf(leaf, &mut |e| {
                    f(e);
                    true
                });
            }
        }
    }

    /// Apply `f` to every element, leaves in parallel (the artifact's
    /// `parallel_map`).
    pub fn par_map(&self, f: impl Fn(K) + Send + Sync) {
        (0..self.storage.num_leaves())
            .into_par_iter()
            .for_each(|leaf| {
                if self.storage.count(leaf) > 0 {
                    self.storage.for_each_in_leaf(leaf, &mut |e| {
                        f(e);
                        true
                    });
                }
            });
    }

    /// Visit elements ≥ `start` in ascending order until `f` returns
    /// `false` (the `RangeSet::scan_from` primitive).
    pub fn for_each_from(&self, start: K, f: &mut dyn FnMut(K) -> bool) {
        let Some(first) = self.dest_leaf(start) else {
            return;
        };
        let n = self.storage.num_leaves();
        for leaf in first..n {
            if self.storage.count(leaf) == 0 {
                continue;
            }
            let stopped = !self.storage.for_each_in_leaf_from(leaf, start, f);
            if stopped {
                return;
            }
        }
    }

    /// Apply `f` to at most `length` elements with keys ≥ `start`, in
    /// order; returns how many were visited (the artifact's
    /// `map_range_length`).
    pub fn map_range_length(&self, start: K, length: usize, mut f: impl FnMut(K)) -> usize {
        if length == 0 {
            return 0;
        }
        let Some(first) = self.dest_leaf(start) else {
            return 0;
        };
        let mut visited = 0usize;
        let n = self.storage.num_leaves();
        for leaf in first..n {
            if self.storage.count(leaf) == 0 {
                continue;
            }
            let done = !self.storage.for_each_in_leaf_from(leaf, start, &mut |e| {
                f(e);
                visited += 1;
                visited < length
            });
            if done {
                break;
            }
        }
        visited
    }

    /// Sum of elements in `[start, end)`, with a whole-leaf fast path for
    /// interior leaves (the public API is `RangeSet::range_sum`).
    pub(crate) fn range_sum_excl(&self, start: K, end: K) -> u64 {
        if start >= end {
            return 0;
        }
        let Some(first) = self.dest_leaf(start) else {
            return 0;
        };
        let n = self.storage.num_leaves();
        let mut sum = 0u64;
        for leaf in first..n {
            if self.storage.count(leaf) == 0 {
                continue;
            }
            if self.storage.head(leaf) >= end {
                break;
            }
            // Whole leaf inside the range? (Next leaf non-empty with head ≤
            // end ⇒ this leaf's max < end.)
            let whole = self.storage.head(leaf) >= start
                && leaf + 1 < n
                && self.storage.count(leaf + 1) > 0
                && self.storage.head(leaf + 1) <= end;
            if whole {
                sum = sum.wrapping_add(self.storage.leaf_sum(leaf));
                continue;
            }
            // Boundary leaf: codec-aware partial sum (bitmap leaves use
            // masked popcount kernels instead of an element walk). A leaf
            // reaching past `end` makes every later head ≥ end, so the
            // loop-top check terminates the scan.
            sum = sum.wrapping_add(self.storage.leaf_range_sum(leaf, start, end));
        }
        sum
    }

    /// Sum of all elements, computed leaf-parallel (the artifact's `sum`).
    pub fn sum(&self) -> u64 {
        (0..self.storage.num_leaves())
            .into_par_iter()
            .map(|leaf| {
                if self.storage.count(leaf) > 0 {
                    self.storage.leaf_sum(leaf)
                } else {
                    0
                }
            })
            .reduce(|| 0u64, u64::wrapping_add)
    }

    /// All elements, sorted (used by rebuilds and tests).
    pub(crate) fn collect_all(&self) -> Vec<K> {
        let mut out = Vec::with_capacity(self.len);
        for leaf in 0..self.storage.num_leaves() {
            if self.storage.is_overflowed(leaf) || self.storage.count(leaf) > 0 {
                self.storage.collect_leaf(leaf, &mut out);
            }
        }
        out
    }

    /// Parallel [`Self::collect_all`]: the "pack" copy of the full-rebuild
    /// path ("the first copy packs the regions ... into a buffer", §4),
    /// parallelized over leaf chunks with precomputed offsets.
    pub(crate) fn collect_all_par(&self) -> Vec<K> {
        let nl = self.storage.num_leaves();
        let total: usize = (0..nl).map(|l| self.storage.count(l)).sum();
        if total < (1 << 15) {
            return self.collect_all();
        }
        const LEAVES_PER_CHUNK: usize = 64;
        let nchunks = nl.div_ceil(LEAVES_PER_CHUNK);
        let mut chunk_offsets = vec![0usize; nchunks + 1];
        for c in 0..nchunks {
            let lo = c * LEAVES_PER_CHUNK;
            let hi = (lo + LEAVES_PER_CHUNK).min(nl);
            chunk_offsets[c + 1] =
                chunk_offsets[c] + (lo..hi).map(|l| self.storage.count(l)).sum::<usize>();
        }
        let mut out = vec![K::MIN; total];
        // Disjoint-slice writes per chunk.
        struct OutPtr<K>(*mut K);
        unsafe impl<K> Send for OutPtr<K> {}
        unsafe impl<K> Sync for OutPtr<K> {}
        impl<K> OutPtr<K> {
            /// # Safety: ranges must be disjoint across concurrent callers.
            #[allow(clippy::mut_from_ref)]
            unsafe fn slice(&self, at: usize, len: usize) -> &mut [K] {
                std::slice::from_raw_parts_mut(self.0.add(at), len)
            }
        }
        let ptr = OutPtr(out.as_mut_ptr());
        (0..nchunks).into_par_iter().for_each(|c| {
            let lo = c * LEAVES_PER_CHUNK;
            let hi = (lo + LEAVES_PER_CHUNK).min(nl);
            let len = chunk_offsets[c + 1] - chunk_offsets[c];
            let mut buf = Vec::with_capacity(len);
            for l in lo..hi {
                if self.storage.is_overflowed(l) || self.storage.count(l) > 0 {
                    self.storage.collect_leaf(l, &mut buf);
                }
            }
            debug_assert_eq!(buf.len(), len);
            // SAFETY: chunk output ranges are disjoint by construction.
            unsafe { ptr.slice(chunk_offsets[c], len) }.copy_from_slice(&buf);
        });
        out
    }

    /// Iterate all elements in order.
    pub fn iter(&self) -> Iter<'_, K, L, FORM> {
        Iter {
            core: self,
            leaf: 0,
            buf: Vec::new(),
            pos: 0,
        }
    }

    /// Iterate, in order, the elements ≥ `start`.
    pub fn iter_from(&self, start: K) -> Iter<'_, K, L, FORM> {
        let Some(leaf) = self.dest_leaf(start) else {
            return Iter {
                core: self,
                leaf: self.storage.num_leaves(),
                buf: Vec::new(),
                pos: 0,
            };
        };
        let mut buf = Vec::new();
        self.storage.collect_leaf(leaf, &mut buf);
        let pos = buf.partition_point(|&e| e < start);
        Iter {
            core: self,
            leaf: leaf + 1,
            buf,
            pos,
        }
    }

    /// Direct read access to the leaf storage (used by the graph layer for
    /// zero-copy scans).
    pub fn storage(&self) -> &L {
        &self.storage
    }

    /// Mutable storage access for the batch phases and white-box tests.
    pub(crate) fn storage_mut(&mut self) -> &mut L {
        &mut self.storage
    }

    /// The active configuration.
    pub fn config(&self) -> &PmaConfig {
        &self.cfg
    }

    /// Batch-pipeline counters accumulated by this instance (routed runs,
    /// touched leaves, redistribution ranges, full rebuilds).
    pub fn stats(&self) -> stats::PmaStats {
        self.batch_stats.view()
    }

    /// Zero the batch-pipeline counters (e.g. between measured phases).
    pub fn reset_stats(&mut self) {
        self.batch_stats = stats::PmaCounters::new();
    }

    /// Adjust the unit counter (batch phases account deltas in bulk).
    pub(crate) fn add_units_delta(&mut self, delta: isize) {
        self.units = self.units.checked_add_signed(delta).unwrap();
    }

    /// Adjust the element counter (white-box tests only).
    #[cfg(test)]
    pub(crate) fn add_len_delta(&mut self, delta: isize) {
        self.len = self.len.checked_add_signed(delta).unwrap();
    }

    // ------------------------------------------------------------------
    // Invariant checking (tests / debugging)
    // ------------------------------------------------------------------

    /// Verify every structural invariant; panics with a description on
    /// violation. O(n) — for tests.
    pub fn check_invariants(&self) {
        let n = self.storage.num_leaves();
        let cap = self.storage.leaf_units();
        let tree = self.tree();
        let max_depth = tree.max_depth();
        // Heads non-decreasing; non-empty heads are minima; no overflows.
        let mut prev_head: Option<K> = None;
        let mut prev_elem: Option<K> = None;
        let mut total_len = 0usize;
        let mut total_units = 0usize;
        for leaf in 0..n {
            assert!(
                !self.storage.is_overflowed(leaf),
                "leaf {leaf} overflowed outside batch"
            );
            let h = self.storage.head(leaf);
            if let Some(p) = prev_head {
                assert!(p <= h, "heads decrease at leaf {leaf}");
            }
            prev_head = Some(h);
            let cnt = self.storage.count(leaf);
            assert_eq!(
                self.occ_get(leaf),
                cnt > 0,
                "occupancy bit of leaf {leaf} out of sync"
            );
            total_len += cnt;
            total_units += self.storage.units_used(leaf);
            if cnt > 0 {
                let mut first = None;
                let mut local_prev: Option<K> = None;
                let mut seen = 0usize;
                self.storage.for_each_in_leaf(leaf, &mut |e| {
                    if first.is_none() {
                        first = Some(e);
                    }
                    if let Some(p) = local_prev {
                        assert!(p < e, "leaf {leaf} not strictly increasing");
                    }
                    if let Some(p) = prev_elem {
                        assert!(p < e, "global order broken at leaf {leaf}");
                    }
                    local_prev = Some(e);
                    prev_elem = Some(e);
                    seen += 1;
                    true
                });
                assert_eq!(seen, cnt, "leaf {leaf} count mismatch");
                assert_eq!(first, Some(h), "leaf {leaf} head is not its minimum");
            } else {
                assert_eq!(
                    self.storage.units_used(leaf),
                    0,
                    "empty leaf {leaf} has units"
                );
            }
        }
        assert_eq!(total_len, self.len, "len out of sync");
        assert_eq!(total_units, self.units, "units out of sync");
        // Density bounds are enforced along update paths, not globally (a
        // leaf sitting at 0.85 never triggers a walk), so the checkable
        // invariant is physical: every leaf fits its capacity.
        for leaf in 0..n {
            assert!(
                self.storage.units_used(leaf) <= cap,
                "leaf {leaf} exceeds physical capacity"
            );
        }
        // The auxiliary head index must answer exactly like the in-place
        // binary search (same partition point for every head and
        // neighbors thereof).
        if !matches!(self.aux, HeadIndex::None) {
            for leaf in 0..n {
                let h = self.storage.head(leaf).to_u64();
                let probes = [
                    h.saturating_sub(1),
                    h,
                    h.saturating_add(1).min(K::MAX.to_u64()),
                ];
                for probe in probes.map(K::from_u64) {
                    let flat = (0..n)
                        .take_while(|&l| self.storage.head(l) <= probe)
                        .count();
                    assert_eq!(
                        self.head_partition(probe),
                        flat,
                        "head index disagrees with flat search at probe {probe}"
                    );
                }
            }
        }
        let _ = (tree, max_depth);
    }
}

/// Element + configuration equality: two PMAs are equal iff they store
/// the same key set under the same [`PmaConfig`]. Physical layout
/// (capacity, leaf geometry, which leaf holds which key) is
/// intentionally ignored — it varies with insertion history while the
/// abstract set does not.
impl<K: PmaKey, L: LeafStorage<K>, const FORM: u8> PartialEq for PmaCore<K, L, FORM> {
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len && self.cfg == other.cfg && self.iter().eq(other.iter())
    }
}

impl<K: PmaKey, L: LeafStorage<K>, const FORM: u8> std::fmt::Debug for PmaCore<K, L, FORM> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PmaCore")
            .field("len", &self.len)
            .field("num_leaves", &self.storage.num_leaves())
            .field("leaf_units", &self.storage.leaf_units())
            .field("cfg", &self.cfg)
            .finish_non_exhaustive()
    }
}

/// In-order iterator over a PMA; decodes one leaf at a time.
pub struct Iter<'a, K: PmaKey, L: LeafStorage<K>, const FORM: u8 = 0> {
    core: &'a PmaCore<K, L, FORM>,
    leaf: usize,
    buf: Vec<K>,
    pos: usize,
}

impl<K: PmaKey, L: LeafStorage<K>, const FORM: u8> Iterator for Iter<'_, K, L, FORM> {
    type Item = K;

    fn next(&mut self) -> Option<K> {
        while self.pos >= self.buf.len() {
            if self.leaf >= self.core.storage.num_leaves() {
                return None;
            }
            self.buf.clear();
            self.pos = 0;
            if self.core.storage.count(self.leaf) > 0 {
                self.core.storage.collect_leaf(self.leaf, &mut self.buf);
            }
            self.leaf += 1;
        }
        let v = self.buf[self.pos];
        self.pos += 1;
        Some(v)
    }
}

impl<'a, K: PmaKey, L: LeafStorage<K>, const FORM: u8> IntoIterator for &'a PmaCore<K, L, FORM> {
    type Item = K;
    type IntoIter = Iter<'a, K, L, FORM>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// Owned iteration drains into a sorted buffer (the backing array is a
/// packed layout, not a `Vec` of elements).
impl<K: PmaKey, L: LeafStorage<K>, const FORM: u8> IntoIterator for PmaCore<K, L, FORM> {
    type Item = K;
    type IntoIter = std::vec::IntoIter<K>;
    fn into_iter(self) -> Self::IntoIter {
        self.collect_all().into_iter()
    }
}

/// Collect arbitrary (unsorted, possibly duplicated) keys into a PMA.
impl<K: PmaKey, L: LeafStorage<K>, const FORM: u8> FromIterator<K> for PmaCore<K, L, FORM> {
    fn from_iter<I: IntoIterator<Item = K>>(iter: I) -> Self {
        let mut keys: Vec<K> = iter.into_iter().collect();
        let keys = cpma_api::normalize_batch(&mut keys);
        Self::from_sorted(keys)
    }
}

/// Batch-insert arbitrary keys (buffers, then runs one batch update).
impl<K: PmaKey, L: LeafStorage<K>, const FORM: u8> Extend<K> for PmaCore<K, L, FORM> {
    fn extend<I: IntoIterator<Item = K>>(&mut self, iter: I) {
        let mut keys: Vec<K> = iter.into_iter().collect();
        self.insert_batch(&mut keys, false);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn empty_structure() {
        let p = Pma::<u64>::new();
        assert_eq!(p.len(), 0);
        assert!(p.is_empty());
        assert!(!p.has(5));
        assert_eq!(p.successor(0), None);
        assert_eq!(p.min(), None);
        assert_eq!(p.max(), None);
        assert_eq!(p.sum(), 0);
        assert_eq!(p.iter().count(), 0);
        p.check_invariants();
    }

    #[test]
    fn point_inserts_uncompressed() {
        let mut p = Pma::<u64>::new();
        for k in [5u64, 1, 9, 3, 7, 1, 5] {
            p.insert(k);
        }
        assert_eq!(p.len(), 5);
        assert_eq!(p.iter().collect::<Vec<_>>(), vec![1, 3, 5, 7, 9]);
        assert!(p.has(7));
        assert!(!p.has(2));
        assert_eq!(p.successor(4), Some(5));
        assert_eq!(p.successor(9), Some(9));
        assert_eq!(p.successor(10), None);
        assert_eq!(p.min(), Some(1));
        assert_eq!(p.max(), Some(9));
        assert_eq!(p.sum(), 25);
        p.check_invariants();
    }

    #[test]
    fn point_inserts_compressed() {
        let mut c = Cpma::new();
        for k in [500u64, 100, 900, 300, 700] {
            assert!(c.insert(k));
        }
        assert!(!c.insert(300));
        assert_eq!(c.len(), 5);
        assert_eq!(c.iter().collect::<Vec<_>>(), vec![100, 300, 500, 700, 900]);
        c.check_invariants();
    }

    #[test]
    fn many_point_inserts_trigger_growth() {
        let mut p = Pma::<u64>::new();
        let mut model = BTreeSet::new();
        let mut x = 12345u64;
        for _ in 0..5000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let k = x >> 20;
            p.insert(k);
            model.insert(k);
        }
        assert_eq!(p.len(), model.len());
        assert!(p.iter().eq(model.iter().copied()));
        p.check_invariants();
    }

    #[test]
    fn many_point_inserts_compressed_match_model() {
        let mut c = Cpma::new();
        let mut model = BTreeSet::new();
        let mut x = 999u64;
        for _ in 0..5000 {
            x = x.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            let k = x >> 24;
            c.insert(k);
            model.insert(k);
        }
        assert_eq!(c.len(), model.len());
        assert!(c.iter().eq(model.iter().copied()));
        c.check_invariants();
    }

    #[test]
    fn removals_match_model() {
        let mut p = Pma::<u64>::new();
        let mut model = BTreeSet::new();
        let mut x = 7u64;
        for _ in 0..3000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let k = (x >> 40) & 0xfff;
            if x & 4 == 0 {
                assert_eq!(p.insert(k), model.insert(k), "insert {k}");
            } else {
                assert_eq!(p.remove(k), model.remove(&k), "remove {k}");
            }
        }
        assert_eq!(p.len(), model.len());
        assert!(p.iter().eq(model.iter().copied()));
        p.check_invariants();
    }

    #[test]
    fn removals_compressed_match_model() {
        let mut c = Cpma::new();
        let mut model = BTreeSet::new();
        let mut x = 31u64;
        for _ in 0..3000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let k = (x >> 40) & 0x3ff;
            if x & 4 == 0 {
                assert_eq!(c.insert(k), model.insert(k));
            } else {
                assert_eq!(c.remove(k), model.remove(&k));
            }
        }
        assert!(c.iter().eq(model.iter().copied()));
        c.check_invariants();
    }

    #[test]
    fn remove_down_to_empty() {
        let mut p = Pma::<u64>::new();
        for k in 0..200u64 {
            p.insert(k * 3);
        }
        for k in 0..200u64 {
            assert!(p.remove(k * 3));
        }
        assert!(p.is_empty());
        assert!(!p.remove(0));
        p.check_invariants();
        // Structure remains usable.
        p.insert(42);
        assert!(p.has(42));
        p.check_invariants();
    }

    #[test]
    fn from_sorted_builds_even_layout() {
        let elems: Vec<u64> = (0..10_000).map(|i| i * 7).collect();
        let p = Pma::from_sorted(&elems);
        assert_eq!(p.len(), elems.len());
        assert!(p.iter().eq(elems.iter().copied()));
        p.check_invariants();
        let c = Cpma::from_sorted(&elems);
        assert_eq!(c.len(), elems.len());
        assert!(c.iter().eq(elems.iter().copied()));
        c.check_invariants();
    }

    #[test]
    fn for_range_respects_bounds() {
        use cpma_api::RangeSet;
        let elems: Vec<u64> = (0..1000).map(|i| i * 10).collect();
        let c = Cpma::from_sorted(&elems);
        let mut seen = Vec::new();
        c.for_range(95..250, |e| seen.push(e));
        assert_eq!(
            seen,
            vec![100, 110, 120, 130, 140, 150, 160, 170, 180, 190, 200, 210, 220, 230, 240]
        );
        // Inclusive end is part of the range.
        let mut incl = Vec::new();
        c.for_range(95..=250, |e| incl.push(e));
        assert_eq!(incl.last(), Some(&250));
        // Empty and inverted ranges.
        let mut none = Vec::new();
        c.for_range(300..300, |e| none.push(e));
        #[allow(clippy::reversed_empty_ranges)]
        c.for_range(400..300, |e| none.push(e));
        assert!(none.is_empty());
        // Range past the end.
        let mut tail = Vec::new();
        c.for_range(9_990.., |e| tail.push(e));
        assert_eq!(tail, vec![9_990]);
    }

    #[test]
    fn map_range_length_counts() {
        let elems: Vec<u64> = (0..500).collect();
        let p = Pma::from_sorted(&elems);
        let mut seen = Vec::new();
        let n = p.map_range_length(100, 5, |e| seen.push(e));
        assert_eq!(n, 5);
        assert_eq!(seen, vec![100, 101, 102, 103, 104]);
        let n = p.map_range_length(498, 10, |_| {});
        assert_eq!(n, 2);
    }

    #[test]
    fn range_sum_matches_naive() {
        let elems: Vec<u64> = (0..5000).map(|i| i * 3 + 1).collect();
        let c = Cpma::from_sorted(&elems);
        for (a, b) in [
            (0u64, 100u64),
            (50, 5000),
            (1, 2),
            (14_000, 15_000),
            (0, u64::MAX),
        ] {
            let naive: u64 = elems.iter().filter(|&&e| e >= a && e < b).sum();
            assert_eq!(c.range_sum_excl(a, b), naive, "range [{a},{b})");
        }
        assert_eq!(c.sum(), elems.iter().sum::<u64>());
    }

    #[test]
    fn par_map_visits_everything() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let elems: Vec<u64> = (0..2000).collect();
        let p = Pma::from_sorted(&elems);
        let acc = AtomicU64::new(0);
        p.par_map(|e| {
            acc.fetch_add(e, Ordering::Relaxed);
        });
        assert_eq!(acc.load(Ordering::Relaxed), elems.iter().sum::<u64>());
    }

    #[test]
    fn compressed_uses_less_space_than_uncompressed() {
        // 40-bit-style keys at realistic density.
        let mut x = 77u64;
        let mut elems: Vec<u64> = (0..50_000)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                x >> 24
            })
            .collect();
        elems.sort_unstable();
        elems.dedup();
        let p = Pma::from_sorted(&elems);
        let c = Cpma::from_sorted(&elems);
        assert!(
            (c.size_bytes() as f64) < 0.7 * p.size_bytes() as f64,
            "CPMA {} vs PMA {}",
            c.size_bytes(),
            p.size_bytes()
        );
    }

    #[test]
    fn boundary_keys() {
        let mut c = Cpma::new();
        assert!(c.insert(0));
        assert!(c.insert(u64::MAX));
        assert!(c.insert(u64::MAX - 1));
        assert!(c.has(0));
        assert!(c.has(u64::MAX));
        assert_eq!(c.successor(u64::MAX), Some(u64::MAX));
        assert_eq!(
            c.iter().collect::<Vec<_>>(),
            vec![0, u64::MAX - 1, u64::MAX]
        );
        c.check_invariants();
        assert!(c.remove(u64::MAX));
        assert_eq!(c.max(), Some(u64::MAX - 1));
        c.check_invariants();
    }

    #[test]
    fn u32_keys_supported() {
        let mut p = Pma::<u32>::new();
        for k in (0..1000u32).rev() {
            p.insert(k);
        }
        assert_eq!(p.len(), 1000);
        assert!(p.iter().eq(0..1000u32));
        p.check_invariants();
    }

    #[test]
    fn custom_growing_factor() {
        for f in [1.1f64, 1.5, 2.0] {
            let cfg = PmaConfig {
                growing_factor: f,
                ..Default::default()
            };
            let mut p = Pma::<u64>::with_config(cfg);
            for k in 0..2000u64 {
                p.insert(k);
            }
            assert_eq!(p.len(), 2000);
            p.check_invariants();
        }
    }
}
