//! Delta encoding with byte codes (the CPMA's compression scheme, §5).
//!
//! "Delta encoding stores differences (deltas) between sequential elements
//! rather than the full element. ... These deltas can then be stored in byte
//! codes, which store an integer as a series of bytes. Each byte uses one
//! bit as a continue bit." We use the standard unsigned LEB128 layout:
//! little-endian 7-bit groups, continue bit = MSB set on every byte except
//! the last. A `u64` delta takes 1–10 bytes; because the CPMA stores a set,
//! deltas are always ≥ 1 within a leaf (the head is stored raw, not here).

/// Maximum encoded size of one `u64` byte code.
pub const MAX_VARINT_BYTES: usize = 10;

/// Encoded length of `v` in bytes (≥ 1; `0` also takes one byte).
#[inline]
pub fn varint_len(v: u64) -> usize {
    // ⌈bits/7⌉ with bits = 64 - leading_zeros, minimum 1.
    let bits = 64 - (v | 1).leading_zeros() as usize;
    bits.div_ceil(7)
}

/// Append the byte code of `v` to `out`; returns bytes written.
#[inline]
pub fn encode_varint(mut v: u64, out: &mut Vec<u8>) -> usize {
    let mut n = 0;
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        n += 1;
        if v == 0 {
            out.push(byte);
            return n;
        }
        out.push(byte | 0x80);
    }
}

/// Write the byte code of `v` into `buf`, returning bytes written.
/// `buf` must have at least [`MAX_VARINT_BYTES`] of room.
#[inline]
pub fn write_varint(mut v: u64, buf: &mut [u8]) -> usize {
    let mut i = 0;
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf[i] = byte;
            return i + 1;
        }
        buf[i] = byte | 0x80;
        i += 1;
    }
}

/// Decode one byte code from `buf`, returning `(value, bytes_consumed)`.
/// `buf` must start at a code boundary and contain the complete code.
#[inline]
pub fn decode_varint(buf: &[u8]) -> (u64, usize) {
    let mut v = 0u64;
    let mut shift = 0u32;
    let mut i = 0;
    loop {
        let byte = buf[i];
        v |= ((byte & 0x7f) as u64) << shift;
        i += 1;
        if byte & 0x80 == 0 {
            return (v, i);
        }
        shift += 7;
        debug_assert!(shift < 70, "malformed varint");
    }
}

/// Total encoded size of a sorted strictly-increasing run stored as
/// `head (raw, `head_bytes`) + delta byte codes`.
#[inline]
pub fn encoded_run_len(elems: &[u64], head_bytes: usize) -> usize {
    if elems.is_empty() {
        return 0;
    }
    let mut total = head_bytes;
    for w in elems.windows(2) {
        debug_assert!(w[1] > w[0], "run must be strictly increasing");
        total += varint_len(w[1] - w[0]);
    }
    total
}

/// Encode a strictly-increasing run into `out` as raw little-endian head
/// followed by delta byte codes. Returns bytes written. `out` must be large
/// enough (see [`encoded_run_len`]).
pub fn encode_run(elems: &[u64], out: &mut [u8]) -> usize {
    if elems.is_empty() {
        return 0;
    }
    out[..8].copy_from_slice(&elems[0].to_le_bytes());
    let mut pos = 8;
    let mut prev = elems[0];
    for &e in &elems[1..] {
        debug_assert!(e > prev);
        pos += write_varint(e - prev, &mut out[pos..]);
        prev = e;
    }
    pos
}

/// Decode a run of `count` elements from `buf` (raw head + deltas),
/// appending to `out`. Returns bytes consumed.
pub fn decode_run(buf: &[u8], count: usize, out: &mut Vec<u64>) -> usize {
    if count == 0 {
        return 0;
    }
    let head = u64::from_le_bytes(buf[..8].try_into().unwrap());
    out.push(head);
    let mut pos = 8;
    let mut prev = head;
    for _ in 1..count {
        let (delta, used) = decode_varint(&buf[pos..]);
        pos += used;
        prev += delta;
        out.push(prev);
    }
    pos
}

/// Iterate a run without materializing it: calls `f(element)`; if `f`
/// returns `false`, stops early. Returns `false` iff stopped early.
#[inline]
pub fn for_each_in_run(buf: &[u8], count: usize, mut f: impl FnMut(u64) -> bool) -> bool {
    if count == 0 {
        return true;
    }
    let mut cur = u64::from_le_bytes(buf[..8].try_into().unwrap());
    if !f(cur) {
        return false;
    }
    let mut pos = 8;
    for _ in 1..count {
        let (delta, used) = decode_varint(&buf[pos..]);
        pos += used;
        cur += delta;
        if !f(cur) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_lengths() {
        assert_eq!(varint_len(0), 1);
        assert_eq!(varint_len(1), 1);
        assert_eq!(varint_len(127), 1);
        assert_eq!(varint_len(128), 2);
        assert_eq!(varint_len(16_383), 2);
        assert_eq!(varint_len(16_384), 3);
        assert_eq!(varint_len(u64::MAX), 10);
    }

    #[test]
    fn varint_roundtrip_boundaries() {
        let mut cases = vec![0u64, 1, 127, 128, 255, 300, 16_383, 16_384, u32::MAX as u64];
        for shift in 0..9 {
            cases.push(1u64 << (7 * shift));
            cases.push((1u64 << (7 * shift)) - 1);
        }
        cases.push(u64::MAX);
        for v in cases {
            let mut out = Vec::new();
            let n = encode_varint(v, &mut out);
            assert_eq!(n, out.len());
            assert_eq!(n, varint_len(v), "len mismatch for {v}");
            let (back, used) = decode_varint(&out);
            assert_eq!(back, v);
            assert_eq!(used, n);
        }
    }

    #[test]
    fn write_and_encode_agree() {
        let mut buf = [0u8; MAX_VARINT_BYTES];
        for v in [0u64, 5, 200, 99999, u64::MAX] {
            let n = write_varint(v, &mut buf);
            let mut vec = Vec::new();
            encode_varint(v, &mut vec);
            assert_eq!(&buf[..n], &vec[..]);
        }
    }

    #[test]
    fn run_roundtrip() {
        let elems = vec![10u64, 11, 200, 100_000, 1 << 40, u64::MAX];
        let len = encoded_run_len(&elems, 8);
        let mut buf = vec![0u8; len];
        let written = encode_run(&elems, &mut buf);
        assert_eq!(written, len);
        let mut out = Vec::new();
        let consumed = decode_run(&buf, elems.len(), &mut out);
        assert_eq!(consumed, len);
        assert_eq!(out, elems);
    }

    #[test]
    fn empty_and_singleton_runs() {
        let mut buf = vec![0u8; 16];
        assert_eq!(encode_run(&[], &mut buf), 0);
        assert_eq!(encoded_run_len(&[], 8), 0);
        let one = [42u64];
        assert_eq!(encoded_run_len(&one, 8), 8);
        assert_eq!(encode_run(&one, &mut buf), 8);
        let mut out = Vec::new();
        decode_run(&buf, 1, &mut out);
        assert_eq!(out, vec![42]);
    }

    #[test]
    fn for_each_early_exit() {
        let elems = vec![1u64, 2, 3, 4, 5];
        let mut buf = vec![0u8; encoded_run_len(&elems, 8)];
        encode_run(&elems, &mut buf);
        let mut seen = Vec::new();
        let finished = for_each_in_run(&buf, 5, |e| {
            seen.push(e);
            e < 3
        });
        assert!(!finished);
        assert_eq!(seen, vec![1, 2, 3]);
        let mut all = Vec::new();
        assert!(for_each_in_run(&buf, 5, |e| {
            all.push(e);
            true
        }));
        assert_eq!(all, elems);
    }

    #[test]
    fn dense_runs_compress_well() {
        // Consecutive integers: 8-byte head + 1 byte per extra element.
        let elems: Vec<u64> = (1000..2000).collect();
        assert_eq!(encoded_run_len(&elems, 8), 8 + 999);
    }
}
