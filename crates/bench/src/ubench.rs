//! Minimal micro-benchmark harness (the offline stand-in for criterion).
//!
//! Each measurement warms up, then runs timed batches until a time budget
//! is spent, and reports the per-iteration median over batches. Output is
//! one line per benchmark plus a `csv,bench,...` line for scripting, the
//! same convention as the harness binaries.

use std::time::{Duration, Instant};

/// Prevent the optimizer from deleting a computed value (criterion's
/// `black_box`; the std one is stabilized but this keeps call sites
/// dependency-shaped).
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// A benchmark group with a shared time budget per measurement.
pub struct Bencher {
    warmup: Duration,
    budget: Duration,
}

impl Default for Bencher {
    fn default() -> Self {
        Self {
            warmup: Duration::from_millis(200),
            budget: Duration::from_millis(800),
        }
    }
}

impl Bencher {
    pub fn new() -> Self {
        Self::default()
    }

    /// Override the per-benchmark measuring budget.
    pub fn budget(mut self, d: Duration) -> Self {
        self.budget = d;
        self
    }

    /// Measure `f` and print `name: <median>/iter`; returns the median
    /// seconds per iteration.
    pub fn bench(&self, name: &str, mut f: impl FnMut()) -> f64 {
        // Warmup: learn an iteration count that makes ~10ms batches.
        let warm_start = Instant::now();
        let mut iters: u64 = 0;
        while warm_start.elapsed() < self.warmup {
            f();
            iters += 1;
        }
        let per_iter = self.warmup.as_secs_f64() / iters.max(1) as f64;
        let batch = ((0.01 / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000);

        let mut samples = Vec::new();
        let start = Instant::now();
        while start.elapsed() < self.budget {
            let t = Instant::now();
            for _ in 0..batch {
                f();
            }
            samples.push(t.elapsed().as_secs_f64() / batch as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[samples.len() / 2];
        println!(
            "{name:<40} {:>12}/iter  ({} batches of {batch})",
            fmt_secs(median),
            samples.len()
        );
        println!("csv,bench,{name},{median:e}");
        median
    }

    /// criterion's `iter_batched`: run `setup` outside the clock, time only
    /// `routine`. For measurements whose input is consumed or mutated (a
    /// batch insert into a freshly built structure, say) — `bench` would
    /// charge the rebuild to the measurement.
    pub fn bench_batched<T>(
        &self,
        name: &str,
        mut setup: impl FnMut() -> T,
        mut routine: impl FnMut(T),
    ) -> f64 {
        // Warmup (untimed): learn roughly how long one routine run takes.
        let mut probe_secs = f64::MAX;
        let warm_start = Instant::now();
        loop {
            let input = setup();
            let t = Instant::now();
            routine(input);
            probe_secs = probe_secs.min(t.elapsed().as_secs_f64());
            if warm_start.elapsed() >= self.warmup {
                break;
            }
        }

        let mut samples = Vec::new();
        let start = Instant::now();
        while start.elapsed() < self.budget || samples.is_empty() {
            let input = setup();
            let t = Instant::now();
            routine(input);
            samples.push(t.elapsed().as_secs_f64());
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[samples.len() / 2];
        println!(
            "{name:<40} {:>12}/iter  ({} timed runs, setup excluded)",
            fmt_secs(median),
            samples.len()
        );
        println!("csv,bench,{name},{median:e}");
        median
    }
}

/// Human-readable seconds.
fn fmt_secs(s: f64) -> String {
    if s < 1e-6 {
        format!("{:.1} ns", s * 1e9)
    } else if s < 1e-3 {
        format!("{:.2} µs", s * 1e6)
    } else if s < 1.0 {
        format!("{:.2} ms", s * 1e3)
    } else {
        format!("{s:.3} s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_measures_something() {
        let b = Bencher::new().budget(Duration::from_millis(30));
        let mut acc = 0u64;
        let median = b.bench("test/noop_add", || {
            acc = black_box(acc.wrapping_add(1));
        });
        assert!(median > 0.0 && median < 0.1);
    }

    #[test]
    fn fmt_scales() {
        assert!(fmt_secs(5e-9).contains("ns"));
        assert!(fmt_secs(5e-5).contains("µs"));
        assert!(fmt_secs(5e-2).contains("ms"));
        assert!(fmt_secs(5.0).contains(" s"));
    }
}
