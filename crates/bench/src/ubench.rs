//! Minimal micro-benchmark harness (the offline stand-in for criterion).
//!
//! Each measurement warms up, then runs timed batches until a time budget
//! is spent, and reports the per-iteration median over batches. Output is
//! one line per benchmark plus a `csv,bench,...` line for scripting, the
//! same convention as the harness binaries.
//!
//! Every measurement is also recorded in memory; call
//! [`Bencher::write_json`] at the end of a run to emit a machine-readable
//! `BENCH_<tag>.json` (name, params, median ns/op, throughput) — the
//! artifact perf-trajectory tooling diffs across commits.

use std::cell::RefCell;
use std::io::Write;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Prevent the optimizer from deleting a computed value (criterion's
/// `black_box`; the std one is stabilized but this keeps call sites
/// dependency-shaped).
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// One recorded measurement, destined for `BENCH_<tag>.json`.
struct JsonEntry {
    name: String,
    /// `(key, value)` pairs; values that parse as numbers are emitted as
    /// JSON numbers, everything else as strings.
    params: Vec<(String, String)>,
    median_ns_per_op: f64,
    ops_per_sec: f64,
}

/// A benchmark group with a shared time budget per measurement.
pub struct Bencher {
    warmup: Duration,
    budget: Duration,
    entries: RefCell<Vec<JsonEntry>>,
}

impl Default for Bencher {
    fn default() -> Self {
        Self {
            warmup: Duration::from_millis(200),
            budget: Duration::from_millis(800),
            entries: RefCell::new(Vec::new()),
        }
    }
}

impl Bencher {
    pub fn new() -> Self {
        Self::default()
    }

    /// Override the per-benchmark measuring budget.
    pub fn budget(mut self, d: Duration) -> Self {
        self.budget = d;
        self
    }

    /// Measure `f` and print `name: <median>/iter`; returns the median
    /// seconds per iteration.
    pub fn bench(&self, name: &str, mut f: impl FnMut()) -> f64 {
        // Warmup: learn an iteration count that makes ~10ms batches.
        let warm_start = Instant::now();
        let mut iters: u64 = 0;
        while warm_start.elapsed() < self.warmup {
            f();
            iters += 1;
        }
        let per_iter = self.warmup.as_secs_f64() / iters.max(1) as f64;
        let batch = ((0.01 / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000);

        let mut samples = Vec::new();
        let start = Instant::now();
        while start.elapsed() < self.budget {
            let t = Instant::now();
            for _ in 0..batch {
                f();
            }
            samples.push(t.elapsed().as_secs_f64() / batch as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[samples.len() / 2];
        println!(
            "{name:<40} {:>12}/iter  ({} batches of {batch})",
            fmt_secs(median),
            samples.len()
        );
        println!("csv,bench,{name},{median:e}");
        self.record(name, &[], median);
        median
    }

    /// criterion's `iter_batched`: run `setup` outside the clock, time only
    /// `routine`. For measurements whose input is consumed or mutated (a
    /// batch insert into a freshly built structure, say) — `bench` would
    /// charge the rebuild to the measurement.
    pub fn bench_batched<T>(
        &self,
        name: &str,
        mut setup: impl FnMut() -> T,
        mut routine: impl FnMut(T),
    ) -> f64 {
        // Warmup (untimed): learn roughly how long one routine run takes.
        let mut probe_secs = f64::MAX;
        let warm_start = Instant::now();
        loop {
            let input = setup();
            let t = Instant::now();
            routine(input);
            probe_secs = probe_secs.min(t.elapsed().as_secs_f64());
            if warm_start.elapsed() >= self.warmup {
                break;
            }
        }

        let mut samples = Vec::new();
        let start = Instant::now();
        while start.elapsed() < self.budget || samples.is_empty() {
            let input = setup();
            let t = Instant::now();
            routine(input);
            samples.push(t.elapsed().as_secs_f64());
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[samples.len() / 2];
        println!(
            "{name:<40} {:>12}/iter  ({} timed runs, setup excluded)",
            fmt_secs(median),
            samples.len()
        );
        println!("csv,bench,{name},{median:e}");
        self.record(name, &[], median);
        median
    }

    /// Record an externally measured result (e.g. a whole-run wall-clock
    /// throughput sweep) so it lands in [`Bencher::write_json`] alongside
    /// the harnessed measurements. `secs_per_op` is the median (or only)
    /// per-operation cost in seconds.
    pub fn record(&self, name: &str, params: &[(&str, String)], secs_per_op: f64) {
        cpma_obs::global()
            .shared_counter("bench.measurements", cpma_obs::Unit::Count)
            .inc();
        self.entries.borrow_mut().push(JsonEntry {
            name: name.to_string(),
            params: params
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
            median_ns_per_op: secs_per_op * 1e9,
            ops_per_sec: if secs_per_op > 0.0 {
                1.0 / secs_per_op
            } else {
                0.0
            },
        });
    }

    /// Write everything measured so far to `BENCH_<tag>.json` in the
    /// current directory and return the path. The format is one object
    /// with a `bench` label and an `entries` array of
    /// `{name, params, median_ns_per_op, ops_per_sec}` — flat and stable
    /// on purpose, so perf-trajectory tooling can diff runs.
    pub fn write_json(&self, tag: &str) -> std::io::Result<PathBuf> {
        let path = PathBuf::from(format!("BENCH_{tag}.json"));
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"bench\": {},\n", json_string(tag)));
        out.push_str("  \"entries\": [\n");
        let entries = self.entries.borrow();
        for (i, e) in entries.iter().enumerate() {
            out.push_str("    {");
            out.push_str(&format!("\"name\": {}, ", json_string(&e.name)));
            out.push_str("\"params\": {");
            for (j, (k, v)) in e.params.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("{}: {}", json_string(k), json_value(v)));
            }
            out.push_str("}, ");
            out.push_str(&format!(
                "\"median_ns_per_op\": {}, \"ops_per_sec\": {}",
                json_number(e.median_ns_per_op),
                json_number(e.ops_per_sec)
            ));
            out.push('}');
            out.push_str(if i + 1 < entries.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ]\n}\n");
        let mut f = std::fs::File::create(&path)?;
        f.write_all(out.as_bytes())?;
        println!("wrote {}", path.display());
        Ok(path)
    }
}

/// Dump the process-wide observability registry to `METRICS.json` in the
/// current directory (next to the `BENCH_<tag>.json` artifacts) and return
/// the path. Harness binaries call this once at exit so the per-layer
/// counters and latency quantiles behind a run travel with its numbers.
pub fn write_metrics_json() -> std::io::Result<PathBuf> {
    let path = PathBuf::from("METRICS.json");
    cpma_obs::global().snapshot().write_json(&path)?;
    println!("wrote {}", path.display());
    Ok(path)
}

/// A JSON string literal (the names and params here are ASCII identifiers,
/// but escape the essentials anyway).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Param values: numbers stay numbers, everything else becomes a string.
fn json_value(v: &str) -> String {
    if v.parse::<f64>().map(|x| x.is_finite()).unwrap_or(false) {
        v.to_string()
    } else {
        json_string(v)
    }
}

/// A finite JSON number (JSON has no NaN/inf; clamp those to 0).
fn json_number(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "0".to_string()
    }
}

/// Human-readable seconds.
fn fmt_secs(s: f64) -> String {
    if s < 1e-6 {
        format!("{:.1} ns", s * 1e9)
    } else if s < 1e-3 {
        format!("{:.2} µs", s * 1e6)
    } else if s < 1.0 {
        format!("{:.2} ms", s * 1e3)
    } else {
        format!("{s:.3} s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_measures_something() {
        let b = Bencher::new().budget(Duration::from_millis(30));
        let mut acc = 0u64;
        let median = b.bench("test/noop_add", || {
            acc = black_box(acc.wrapping_add(1));
        });
        assert!(median > 0.0 && median < 0.1);
    }

    #[test]
    fn fmt_scales() {
        assert!(fmt_secs(5e-9).contains("ns"));
        assert!(fmt_secs(5e-5).contains("µs"));
        assert!(fmt_secs(5e-2).contains("ms"));
        assert!(fmt_secs(5.0).contains(" s"));
    }

    #[test]
    fn json_report_shape() {
        let b = Bencher::new();
        b.record(
            "store/insert",
            &[("writers", "8".to_string()), ("dist", "zipf".to_string())],
            1e-6,
        );
        let path = b.write_json("ubench_selftest").unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        assert!(body.contains("\"bench\": \"ubench_selftest\""));
        assert!(body.contains("\"name\": \"store/insert\""));
        // Numeric params stay numbers, non-numeric become strings.
        assert!(body.contains("\"writers\": 8"));
        assert!(body.contains("\"dist\": \"zipf\""));
        assert!(body.contains("\"median_ns_per_op\": 1000"));
        assert!(body.contains("\"ops_per_sec\": 1000000"));
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_string("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_value("12.5"), "12.5");
        assert_eq!(json_value("NaN"), "\"NaN\"");
        assert_eq!(json_value("uniform"), "\"uniform\"");
        assert_eq!(json_number(f64::NAN), "0");
    }
}
