//! Shared support for the benchmark harness.
//!
//! Every table and figure of the paper's evaluation has a dedicated binary
//! in `src/bin/` (see DESIGN.md §5 for the full index). This library holds
//! the pieces they share: a tiny CLI parser, timing helpers, thread-pool
//! control, and structure-agnostic drivers for the batch-insert and
//! range-query sweeps.
//!
//! The drivers are generic over the canonical [`cpma_api`] trait hierarchy
//! (re-exported here for the binaries): any [`BatchSet`] +
//! [`RangeSet`] — the six paper structures, `BTreeSet`, or anything new —
//! slots into every sweep unchanged.
//!
//! Conventions:
//! * defaults are laptop-scale; `--n` / `--queries` / `--threads` scale up
//!   to the paper's sizes (the paper starts structures at 1e8 elements);
//! * all binaries print a human-readable table followed by CSV lines
//!   prefixed with `csv,` for scripting.

use std::time::Instant;

pub use cpma_api::{
    normalize_batch, normalize_ops, BatchOp, BatchOutcome, BatchSet, OrderedSet, RangeSet,
};

pub mod ubench;

/// Minimal `--key value` CLI parser (no external deps by design).
pub struct Args {
    pairs: Vec<(String, String)>,
}

impl Args {
    /// Parse the process arguments.
    pub fn parse() -> Self {
        let argv: Vec<String> = std::env::args().skip(1).collect();
        let mut pairs = Vec::new();
        let mut i = 0;
        while i < argv.len() {
            let key = argv[i].trim_start_matches("--").to_string();
            if i + 1 < argv.len() && !argv[i + 1].starts_with("--") {
                pairs.push((key, argv[i + 1].clone()));
                i += 2;
            } else {
                pairs.push((key, "true".to_string()));
                i += 1;
            }
        }
        Self { pairs }
    }

    /// String value for `key`, if present.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.pairs
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Parsed value for `key`, or `default`.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        self.get(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// Flag presence.
    pub fn flag(&self, key: &str) -> bool {
        self.get(key).is_some()
    }
}

/// Wall-clock a closure.
pub fn time<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

/// Run `f` inside a fresh rayon pool with `threads` workers (strong-scaling
/// sweeps build one pool per configuration, like the paper's
/// `PARLAY_NUM_THREADS`). Note `CPMA_THREADS`, if set, caps the budget —
/// a sweep run under `CPMA_THREADS=1` is a valid serial baseline but not a
/// scaling measurement.
pub fn with_threads<T: Send>(threads: usize, f: impl FnOnce() -> T + Send) -> T {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("pool")
        .install(f)
}

/// Available parallelism.
pub fn max_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Powers of two up to `max`, always including `max` (the paper's core
/// sweep 1,2,4,...,64,64h).
pub fn core_sweep(max: usize) -> Vec<usize> {
    let mut v = Vec::new();
    let mut c = 1;
    while c < max {
        v.push(c);
        c *= 2;
    }
    v.push(max);
    v
}

/// Format a throughput in the paper's scientific-notation style (e.g. 1.4E6).
pub fn sci(x: f64) -> String {
    if x == 0.0 {
        return "0".to_string();
    }
    let exp = x.abs().log10().floor() as i32;
    let mantissa = x / 10f64.powi(exp);
    format!("{mantissa:.1}E{exp}")
}

/// Batch sizes 10^1..=10^max_exp.
pub fn batch_sizes(max_exp: u32) -> Vec<usize> {
    (1..=max_exp).map(|e| 10usize.pow(e)).collect()
}

/// Measure batch-insert throughput for one structure: build it from `base`,
/// then insert `stream` in `batch_size` chunks; returns inserts/second over
/// the whole stream (paper Figures 1/11).
pub fn insert_throughput<S: BatchSet<u64>>(base: &[u64], stream: &[u64], batch_size: usize) -> f64 {
    let mut s = S::build_sorted(base);
    let (_, secs) = time(|| {
        let mut scratch = Vec::new();
        for chunk in stream.chunks(batch_size) {
            scratch.clear();
            scratch.extend_from_slice(chunk);
            let b = normalize_batch(&mut scratch);
            s.insert_batch_sorted(b);
        }
    });
    stream.len() as f64 / secs
}

/// Measure batch-delete throughput (paper Table 5): build from
/// `base ∪ stream`, then delete `stream` in chunks.
pub fn delete_throughput<S: BatchSet<u64>>(base: &[u64], stream: &[u64], batch_size: usize) -> f64 {
    let mut all: Vec<u64> = base.iter().chain(stream.iter()).copied().collect();
    let all = normalize_batch(&mut all);
    let mut s = S::build_sorted(all);
    let (_, secs) = time(|| {
        let mut scratch = Vec::new();
        for chunk in stream.chunks(batch_size) {
            scratch.clear();
            scratch.extend_from_slice(chunk);
            let b = normalize_batch(&mut scratch);
            s.remove_batch_sorted(b);
        }
    });
    stream.len() as f64 / secs
}

/// Mixed-workload throughput, single-pass path: build from `base`, then
/// apply `ops` in `batch_size` chunks through one
/// [`BatchSet::apply_batch_sorted`] per chunk (normalization included in
/// the measurement, exactly as in the split driver below, so the two
/// differ only in the application path).
pub fn mixed_apply_throughput<S: BatchSet<u64>>(
    base: &[u64],
    ops: &[BatchOp<u64>],
    batch_size: usize,
) -> f64 {
    let mut s = S::build_sorted(base);
    let (_, secs) = time(|| {
        let mut scratch: Vec<BatchOp<u64>> = Vec::new();
        for chunk in ops.chunks(batch_size) {
            scratch.clear();
            scratch.extend_from_slice(chunk);
            let norm = normalize_ops(&mut scratch);
            s.apply_batch_sorted(norm);
        }
    });
    ops.len() as f64 / secs
}

/// Mixed-workload throughput, legacy split path: identical normalization,
/// then one `remove_batch_sorted` + one `insert_batch_sorted` per chunk —
/// the two full structure passes the mixed pipeline replaces.
pub fn mixed_split_throughput<S: BatchSet<u64>>(
    base: &[u64],
    ops: &[BatchOp<u64>],
    batch_size: usize,
) -> f64 {
    let mut s = S::build_sorted(base);
    let (_, secs) = time(|| {
        let mut scratch: Vec<BatchOp<u64>> = Vec::new();
        let (mut ins, mut del) = (Vec::new(), Vec::new());
        for chunk in ops.chunks(batch_size) {
            scratch.clear();
            scratch.extend_from_slice(chunk);
            let norm = normalize_ops(&mut scratch);
            ins.clear();
            del.clear();
            for op in norm {
                match *op {
                    BatchOp::Insert(k) => ins.push(k),
                    BatchOp::Remove(k) => del.push(k),
                }
            }
            s.remove_batch_sorted(&del);
            s.insert_batch_sorted(&ins);
        }
    });
    ops.len() as f64 / secs
}

/// Range-query throughput: `queries` random ranges of width `width`
/// (keyspace 2^`bits`), processed in parallel; returns elements/second
/// (paper Figure 2). The structure is pre-built by the caller.
pub fn range_query_throughput<S: RangeSet<u64> + Sync>(
    s: &S,
    queries: usize,
    width: u64,
    bits: u32,
    seed: u64,
) -> f64 {
    use rayon::prelude::*;
    let space = 1u64 << bits;
    let starts: Vec<u64> = {
        let mut rng = cpma_workloads::SplitMix64::new(seed);
        (0..queries)
            .map(|_| rng.next_below(space.saturating_sub(width).max(1)))
            .collect()
    };
    // Elements visited ≈ len * width / space per query.
    let expected_total = (s.len() as f64) * (width as f64) / (space as f64) * queries as f64;
    let (_, secs) = time(|| {
        starts
            .par_iter()
            .map(|&a| s.range_sum(a..a.saturating_add(width)))
            .reduce(|| 0u64, u64::wrapping_add)
    });
    expected_total / secs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sci_format() {
        assert_eq!(sci(1_400_000.0), "1.4E6");
        assert_eq!(sci(185.0), "1.9E2");
        assert_eq!(sci(0.0), "0");
    }

    #[test]
    fn core_sweep_includes_endpoints() {
        assert_eq!(core_sweep(1), vec![1]);
        assert_eq!(core_sweep(2), vec![1, 2]);
        assert_eq!(core_sweep(6), vec![1, 2, 4, 6]);
        assert_eq!(core_sweep(8), vec![1, 2, 4, 8]);
    }

    #[test]
    fn args_parse_pairs_and_flags() {
        // Args::parse reads process args; test the accessors via a built value.
        let a = Args {
            pairs: vec![("n".into(), "100".into()), ("space".into(), "true".into())],
        };
        assert_eq!(a.get_or("n", 5usize), 100);
        assert_eq!(a.get_or("missing", 5usize), 5);
        assert!(a.flag("space"));
        assert!(!a.flag("other"));
    }

    #[test]
    fn mixed_drivers_agree_on_final_state() {
        // Both mixed drivers must leave the structure in the same state;
        // this pins the single-pass path to the split oracle at bench
        // scale (tiny here).
        let base: Vec<u64> = (0..5_000u64).map(|i| i * 3).collect();
        let ops: Vec<BatchOp<u64>> = (0..2_000u64)
            .map(|i| {
                if i % 2 == 0 {
                    BatchOp::Insert(i * 7 + 1)
                } else {
                    BatchOp::Remove(i * 3)
                }
            })
            .collect();
        let tp = mixed_apply_throughput::<cpma_pma::Cpma>(&base, &ops, 500);
        assert!(tp > 0.0);
        let tp = mixed_split_throughput::<cpma_pma::Cpma>(&base, &ops, 500);
        assert!(tp > 0.0);
        let mut a = cpma_pma::Cpma::from_sorted(&base);
        let mut b = cpma_pma::Cpma::from_sorted(&base);
        let mut scratch = ops.clone();
        let norm = normalize_ops(&mut scratch);
        a.apply_batch_sorted(norm);
        let (mut ins, mut del) = (Vec::new(), Vec::new());
        for op in norm {
            match *op {
                BatchOp::Insert(k) => ins.push(k),
                BatchOp::Remove(k) => del.push(k),
            }
        }
        b.remove_batch_sorted(&del);
        b.insert_batch_sorted(&ins);
        assert!(a.iter().eq(b.iter()));
    }

    #[test]
    fn drivers_smoke_test() {
        let base: Vec<u64> = (0..10_000u64).map(|i| i * 17 % (1 << 20)).collect();
        let mut base = base;
        let base = normalize_batch(&mut base).to_vec();
        let stream: Vec<u64> = (0..5_000u64).map(|i| i * 13 + 7).collect();
        let tp = insert_throughput::<cpma_pma::Cpma>(&base, &stream, 500);
        assert!(tp > 0.0);
        let tp = delete_throughput::<cpma_pma::Pma<u64>>(&base, &stream, 500);
        assert!(tp > 0.0);
        let s = cpma_pma::Cpma::from_sorted(&base);
        let tp = range_query_throughput(&s, 50, 1 << 10, 20, 1);
        assert!(tp > 0.0);
        // Every structure in the evaluation fits the same driver.
        let tp = insert_throughput::<cpma_baselines::CTreeSet>(&base, &stream, 500);
        assert!(tp > 0.0);
        let tp = insert_throughput::<std::collections::BTreeSet<u64>>(&base, &stream, 500);
        assert!(tp > 0.0);
    }
}
