//! Table 1: memory traffic during batch inserts (the paper measures
//! hardware cache misses with `perf stat`; this reproduction counts bytes
//! moved at the storage layer and reports estimated 64 B line transfers —
//! same relative ordering, see DESIGN.md §4).
//!
//! Paper setup: "added 100 million elements serially in batches of 1
//! million". Defaults are laptop-scale.
//!
//! Expected shape (Table 1): U-PaC > C-PaC > PMA > CPMA; the PMA moves ≥3×
//! less than the trees, the CPMA less still.

use cpma_bench::{normalize_batch, sci, with_threads, Args, BatchSet};
use cpma_pma::stats;
use cpma_workloads::{dedup_sorted, uniform_keys};

fn measure<S: BatchSet<u64>>(base: &[u64], stream: &[u64], batch: usize) -> stats::Traffic {
    let mut s = S::build_sorted(base);
    // Scoped delta-capture: counts only this measurement's traffic without
    // resetting the process-global counters under anyone else's feet.
    let scope = stats::TrafficScope::begin();
    let mut scratch = Vec::new();
    for chunk in stream.chunks(batch) {
        scratch.clear();
        scratch.extend_from_slice(chunk);
        let b = normalize_batch(&mut scratch);
        s.insert_batch_sorted(b);
    }
    scope.traffic()
}

fn main() {
    let args = Args::parse();
    let n: usize = args.get_or("n", 1_000_000);
    let batch: usize = args.get_or("batch", (n / 100).max(1));
    let bits: u32 = args.get_or("bits", 40);
    let seed: u64 = args.get_or("seed", 42);

    let base = dedup_sorted(uniform_keys(n, bits, seed));
    let stream = uniform_keys(n, bits, seed ^ 0xABCD);

    println!(
        "# Table 1 — bytes moved during serial batch inserts ({} base, batches of {batch})",
        base.len()
    );
    println!("# (paper metric: cache misses; ours: bytes at the storage layer — same ordering)");
    println!(
        "{:>8} {:>14} {:>14} {:>16}",
        "struct", "bytes read", "bytes written", "est. 64B lines"
    );
    // Serial like the paper's Table 1 measurement.
    with_threads(1, || {
        let upac = measure::<cpma_baselines::UPac>(&base, &stream, batch);
        let cpac = measure::<cpma_baselines::CPac>(&base, &stream, batch);
        let pma = measure::<cpma_pma::Pma<u64>>(&base, &stream, batch);
        let cpma = measure::<cpma_pma::Cpma>(&base, &stream, batch);
        for (name, t) in [
            ("U-PaC", upac),
            ("C-PaC", cpac),
            ("PMA", pma),
            ("CPMA", cpma),
        ] {
            println!(
                "{:>8} {:>14} {:>14} {:>16}",
                name,
                sci(t.bytes_read as f64),
                sci(t.bytes_written as f64),
                sci(t.est_line_transfers() as f64)
            );
            println!(
                "csv,table1,{name},{},{},{}",
                t.bytes_read,
                t.bytes_written,
                t.est_line_transfers()
            );
        }
        if upac.est_line_transfers() == 0 {
            eprintln!(
                "warning: traffic counters are zero — build with `--features cpma-pma/stats`"
            );
        }
    });
}
