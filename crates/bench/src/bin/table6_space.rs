//! Table 6: bytes per element across structure sizes, with compression
//! ratios.
//!
//! Expected shape: P-trees fixed at 32 B/elt; U-PaC ≈ 8 B/elt; the
//! uncompressed PMA ≈ 10–12 B/elt (element cells at ~55% density + heads);
//! C-PaC and CPMA converge to a few bytes/elt, improving with scale as
//! 40-bit deltas shrink.
//!
//! Beyond the paper's uniform keys, a **clustered** distribution column
//! (runs of ~1024 consecutive keys separated by multi-million-key gaps)
//! shows the hybrid leaf codec's regime: bitmap leaves store dense runs at
//! ~1 bit/element, so the CPMA drops well under 1 B/elt while every other
//! structure stays put. Emits `BENCH_table6_space.json` (one
//! `space/{structure}` entry per distribution × size; bytes/element is
//! carried in `median_ns_per_op` verbatim). `--quick` shrinks the sweep to
//! CI-smoke scale.

use cpma_bench::ubench::Bencher;
use cpma_bench::{Args, BatchSet};
use cpma_workloads::{dedup_sorted, uniform_keys, ClusteredKeys};

fn bytes_per_elem<S: BatchSet<u64>>(elems: &[u64]) -> f64 {
    let s = S::build_sorted(elems);
    s.size_bytes() as f64 / elems.len() as f64
}

fn main() {
    let args = Args::parse();
    let quick = args.flag("quick");
    let max_exp: u32 = args.get_or("max-exp", if quick { 5 } else { 6 });
    let min_exp: u32 = if quick { 4 } else { 5 };
    let bits: u32 = args.get_or("bits", 40);
    let seed: u64 = args.get_or("seed", 42);

    let b = Bencher::new();
    for dist in ["uniform", "clustered"] {
        println!(
            "# Table 6 — bytes per element ({})",
            if dist == "uniform" {
                format!("{bits}-bit uniform keys")
            } else {
                "clustered keys, runs of ~1024".to_string()
            }
        );
        println!(
            "{:>10} {:>8} {:>8} {:>9} {:>8} {:>8} {:>10} {:>9}",
            "elements", "P-tree", "U-PaC", "PMA", "C-PaC", "CPMA", "CPMA/C-PaC", "CPMA/PMA"
        );
        for exp in min_exp..=max_exp {
            let n = 10usize.pow(exp);
            let elems = match dist {
                "clustered" => ClusteredKeys::new(1024, 1 << 22, seed + exp as u64).sorted(n),
                _ => dedup_sorted(uniform_keys(n, bits, seed + exp as u64)),
            };
            let pt = bytes_per_elem::<cpma_baselines::PTree>(&elems);
            let up = bytes_per_elem::<cpma_baselines::UPac>(&elems);
            let pm = bytes_per_elem::<cpma_pma::Pma<u64>>(&elems);
            let cp = bytes_per_elem::<cpma_baselines::CPac>(&elems);
            let cm = bytes_per_elem::<cpma_pma::Cpma>(&elems);
            println!(
                "{:>10} {:>8.2} {:>8.2} {:>9.2} {:>8.2} {:>8.2} {:>10.2} {:>9.2}",
                n,
                pt,
                up,
                pm,
                cp,
                cm,
                cm / cp,
                cm / pm
            );
            println!("csv,table6,{dist},{n},{pt},{up},{pm},{cp},{cm}");
            for (structure, bpe) in [
                ("PTree", pt),
                ("UPac", up),
                ("PMA", pm),
                ("CPac", cp),
                ("CPMA", cm),
            ] {
                b.record(
                    &format!("space/{structure}"),
                    &[("dist", dist.to_string()), ("n", n.to_string())],
                    bpe * 1e-9,
                );
            }
        }
    }
    b.write_json("table6_space")
        .expect("write BENCH_table6_space.json");
}
