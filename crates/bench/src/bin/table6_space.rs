//! Table 6: bytes per element across structure sizes, with compression
//! ratios.
//!
//! Expected shape: P-trees fixed at 32 B/elt; U-PaC ≈ 8 B/elt; the
//! uncompressed PMA ≈ 10–12 B/elt (element cells at ~55% density + heads);
//! C-PaC and CPMA converge to a few bytes/elt, improving with scale as
//! 40-bit deltas shrink.

use cpma_bench::{Args, BatchSet};
use cpma_workloads::{dedup_sorted, uniform_keys};

fn bytes_per_elem<S: BatchSet<u64>>(elems: &[u64]) -> f64 {
    let s = S::build_sorted(elems);
    s.size_bytes() as f64 / elems.len() as f64
}

fn main() {
    let args = Args::parse();
    let max_exp: u32 = args.get_or("max-exp", 6);
    let bits: u32 = args.get_or("bits", 40);
    let seed: u64 = args.get_or("seed", 42);

    println!("# Table 6 — bytes per element ({}-bit uniform keys)", bits);
    println!(
        "{:>10} {:>8} {:>8} {:>9} {:>8} {:>8} {:>10} {:>9}",
        "elements", "P-tree", "U-PaC", "PMA", "C-PaC", "CPMA", "CPMA/C-PaC", "CPMA/PMA"
    );
    for exp in 5..=max_exp {
        let n = 10usize.pow(exp);
        let elems = dedup_sorted(uniform_keys(n, bits, seed + exp as u64));
        let pt = bytes_per_elem::<cpma_baselines::PTree>(&elems);
        let up = bytes_per_elem::<cpma_baselines::UPac>(&elems);
        let pm = bytes_per_elem::<cpma_pma::Pma<u64>>(&elems);
        let cp = bytes_per_elem::<cpma_baselines::CPac>(&elems);
        let cm = bytes_per_elem::<cpma_pma::Cpma>(&elems);
        println!(
            "{:>10} {:>8.2} {:>8.2} {:>9.2} {:>8.2} {:>8.2} {:>10.2} {:>9.2}",
            n,
            pt,
            up,
            pm,
            cp,
            cm,
            cm / cp,
            cm / pm
        );
        println!("csv,table6,{n},{pt},{up},{pm},{cp},{cm}");
    }
}
