//! Figure 9 / Table 14 (+ Table 7 with `--space`): graph-algorithm
//! runtimes — PageRank (10 iterations), Connected Components, Betweenness
//! Centrality — on F-Graph vs the C-PaC and Aspen graph baselines, plus
//! per-system memory.
//!
//! Datasets: the paper's ER graph plus RMAT graphs standing in for the
//! SNAP social networks at laptop scale (DESIGN.md §4). All containers run
//! the identical Ligra-layer algorithms; results are cross-checked against
//! the CSR reference before timing.
//!
//! Expected shape (Table 14): F-Graph fastest on PR (pure scans), smallest
//! advantage on BC (topology-order); memory F ≲ C-PaC < Aspen (Table 7).

use cpma_bench::{sci, time, Args};
use cpma_fgraph::algos::{bc, cc, pagerank};
use cpma_fgraph::{AspenGraph, Csr, FGraph, GraphScan, PacGraph};
use cpma_workloads::{erdos_renyi_edges, RmatGenerator};

struct Dataset {
    name: &'static str,
    n: usize,
    edges: Vec<u64>,
}

fn datasets(scale: u32, seed: u64) -> Vec<Dataset> {
    // RMAT graphs approximating the SNAP graphs' density at reduced scale:
    // LJ ~18 edges/vertex, CO ~75, TW ~39, FS ~29 (Table 7 ratios).
    let v = 1usize << scale;
    let mk = |name, mult: usize, s: u64| {
        let g = RmatGenerator::paper_config(scale, seed ^ s);
        Dataset {
            name,
            n: v,
            edges: g.undirected_graph(v * mult),
        }
    };
    let mut sets = vec![mk("LJ*", 9, 1), mk("CO*", 37, 2)];
    // The paper's synthetic ER graph: n·p chosen to give ~100 edges/vertex
    // in the paper; scaled to ~20 here.
    let p = 20.0 / v as f64;
    sets.push(Dataset {
        name: "ER",
        n: v,
        edges: erdos_renyi_edges(v as u32, p, seed ^ 3),
    });
    sets.push(mk("TW*", 19, 4));
    sets.push(mk("FS*", 14, 5));
    sets
}

fn validate(csr: &Csr, other: &impl GraphScan, name: &str) {
    let pr_a = pagerank(csr, 3);
    let pr_b = pagerank(other, 3);
    for (a, b) in pr_a.iter().zip(&pr_b) {
        assert!((a - b).abs() < 1e-9, "{name}: PR mismatch");
    }
    let cc_a = cc(csr);
    let cc_b = cc(other);
    assert_eq!(cc_a, cc_b, "{name}: CC mismatch");
}

fn main() {
    let args = Args::parse();
    let scale: u32 = args.get_or("scale", 14);
    let seed: u64 = args.get_or("seed", 42);
    let pr_iters: usize = args.get_or("pr-iters", 10);
    let bc_src: u32 = args.get_or("bc-src", 0);
    let space_only = args.flag("space");

    println!(
        "# Figure 9 / Table 14 — graph algorithms; Table 7 — memory (RMAT* = SNAP substitute)"
    );
    println!(
        "{:>5} {:>9} {:>10} | {:>8} {:>8} {:>8} | {:>8} {:>8} {:>8} | {:>8} {:>8} {:>8} | {:>7} {:>7} {:>7}",
        "graph", "V", "E", "PR:Asp", "PR:CPaC", "PR:F", "CC:Asp", "CC:CPaC", "CC:F", "BC:Asp", "BC:CPaC", "BC:F", "MB:Asp", "MB:CPaC", "MB:F"
    );
    for d in datasets(scale, seed) {
        let csr = Csr::from_sorted_edges(d.n, &d.edges);
        let fg = FGraph::from_edges(d.n, &d.edges);
        let pac = PacGraph::from_edges(d.n, &d.edges);
        let asp = AspenGraph::from_edges(d.n, &d.edges);

        // Correctness gate before timing anything.
        let snap = fg.snapshot();
        validate(&csr, &snap, "F-Graph");
        validate(&csr, &pac, "C-PaC");
        validate(&csr, &asp, "Aspen");

        let mb = |b: usize| b as f64 / (1024.0 * 1024.0);
        if space_only {
            println!(
                "{:>5} {:>9} {:>10} | {:>7.1} {:>7.1} {:>7.1}",
                d.name,
                d.n,
                d.edges.len(),
                mb(asp.size_bytes()),
                mb(pac.size_bytes()),
                mb(fg.size_bytes())
            );
            continue;
        }

        // Timings: F-Graph pays the snapshot (offset rebuild) inside each
        // algorithm run, exactly as the paper measures it.
        let (_, pr_f) = time(|| pagerank(&fg.snapshot(), pr_iters));
        let (_, pr_p) = time(|| pagerank(&pac, pr_iters));
        let (_, pr_a) = time(|| pagerank(&asp, pr_iters));
        let (_, cc_f) = time(|| cc(&fg.snapshot()));
        let (_, cc_p) = time(|| cc(&pac));
        let (_, cc_a) = time(|| cc(&asp));
        let (_, bc_f) = time(|| bc(&fg.snapshot(), bc_src));
        let (_, bc_p) = time(|| bc(&pac, bc_src));
        let (_, bc_a) = time(|| bc(&asp, bc_src));

        println!(
            "{:>5} {:>9} {:>10} | {:>8} {:>8} {:>8} | {:>8} {:>8} {:>8} | {:>8} {:>8} {:>8} | {:>7.1} {:>7.1} {:>7.1}",
            d.name,
            d.n,
            d.edges.len(),
            sci(pr_a),
            sci(pr_p),
            sci(pr_f),
            sci(cc_a),
            sci(cc_p),
            sci(cc_f),
            sci(bc_a),
            sci(bc_p),
            sci(bc_f),
            mb(asp.size_bytes()),
            mb(pac.size_bytes()),
            mb(fg.size_bytes())
        );
        println!(
            "csv,fig9,{},{},{},{pr_a},{pr_p},{pr_f},{cc_a},{cc_p},{cc_f},{bc_a},{bc_p},{bc_f},{},{},{}",
            d.name,
            d.n,
            d.edges.len(),
            asp.size_bytes(),
            pac.size_bytes(),
            fg.size_bytes()
        );
        println!(
            "#   speedups: PR F/Aspen {:.2} F/C-PaC {:.2} | CC {:.2} {:.2} | BC {:.2} {:.2}",
            pr_a / pr_f,
            pr_p / pr_f,
            cc_a / cc_f,
            cc_p / cc_f,
            bc_a / bc_f,
            bc_p / bc_f
        );
    }
}
