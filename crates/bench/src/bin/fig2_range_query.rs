//! Figure 2 / Table 10: range-query throughput (elements/s) vs expected
//! range length for PMA, CPMA, U-PaC, C-PaC, and P-trees.
//!
//! Paper setup: 1e8 stored elements, 1e5 parallel queries, expected range
//! lengths 6…2e6. Defaults are laptop-scale (`--n`, `--queries` to scale).
//!
//! Expected shape (Table 10): PMA/CPMA win across the board (contiguous
//! scans + prefetching); the CPMA overtakes the PMA at the longest ranges
//! where memory bandwidth, not decode cost, is the limit.

use cpma_bench::{range_query_throughput, sci, Args};
use cpma_workloads::{dedup_sorted, uniform_keys};

fn main() {
    let args = Args::parse();
    let n: usize = args.get_or("n", 1_000_000);
    let bits: u32 = args.get_or("bits", 40);
    let queries: usize = args.get_or("queries", 2_000);
    let seed: u64 = args.get_or("seed", 42);

    let base = dedup_sorted(uniform_keys(n, bits, seed));
    let stored = base.len() as f64;
    // Paper's expected range lengths, capped by the store size.
    let expected: Vec<f64> = [6.0, 5e1, 4e2, 3e3, 2e4, 2e5, 2e6]
        .into_iter()
        .filter(|&e| e <= stored)
        .collect();

    let pma = cpma_pma::Pma::<u64>::from_sorted(&base);
    let cpma = cpma_pma::Cpma::from_sorted(&base);
    let ptree = cpma_baselines::PTree::from_sorted(&base);
    let upac = cpma_baselines::UPac::from_sorted(&base);
    let cpac = cpma_baselines::CPac::from_sorted(&base);

    println!(
        "# Figure 2 / Table 10 — range-query throughput (elements/s), {} elements, {queries} queries",
        base.len()
    );
    println!(
        "{:>10} {:>10} {:>10} {:>10} {:>10} {:>10}  {:>9} {:>10}",
        "avg len", "P-tree", "U-PaC", "PMA", "C-PaC", "CPMA", "PMA/U-PaC", "CPMA/C-PaC"
    );
    for e in expected {
        // width such that expected hits = e: width = e/n * 2^bits.
        let width = ((e / stored) * (1u64 << bits) as f64).ceil() as u64;
        let tp_pt = range_query_throughput(&ptree, queries, width, bits, seed ^ 1);
        let tp_up = range_query_throughput(&upac, queries, width, bits, seed ^ 1);
        let tp_pm = range_query_throughput(&pma, queries, width, bits, seed ^ 1);
        let tp_cp = range_query_throughput(&cpac, queries, width, bits, seed ^ 1);
        let tp_cm = range_query_throughput(&cpma, queries, width, bits, seed ^ 1);
        println!(
            "{:>10} {:>10} {:>10} {:>10} {:>10} {:>10}  {:>9.2} {:>10.2}",
            sci(e),
            sci(tp_pt),
            sci(tp_up),
            sci(tp_pm),
            sci(tp_cp),
            sci(tp_cm),
            tp_pm / tp_up,
            tp_cm / tp_cp
        );
        println!("csv,fig2,{e},{tp_pt},{tp_up},{tp_pm},{tp_cp},{tp_cm}");
    }
}
