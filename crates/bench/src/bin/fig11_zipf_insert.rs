//! Figure 11 / Table 13: batch-insert throughput with zipfian batches
//! (α = 0.99, 34-bit keys, scrambled — the YCSB configuration).
//!
//! Expected shape: same ordering as the uniform case (Figure 1), but the
//! PMA/CPMA gain *more* from skew than the trees — repeated keys share
//! searches and redistribution ("the PMA/CPMA achieves higher throughput
//! on zipfian batch inserts compared to uniform random batch inserts").

use cpma_bench::{batch_sizes, insert_throughput, sci, Args};
use cpma_workloads::{dedup_sorted, uniform_keys, ZipfGenerator};

fn main() {
    let args = Args::parse();
    let n: usize = args.get_or("n", 1_000_000);
    let bits: u32 = args.get_or("bits", 40);
    let max_exp: u32 = args.get_or("max-exp", 6);
    let seed: u64 = args.get_or("seed", 42);

    // Base is uniform 40-bit (as in the paper); the update stream is zipf.
    let base = dedup_sorted(uniform_keys(n, bits, seed));
    let stream = ZipfGenerator::paper_config(seed ^ 0x5a5a).keys(n);

    println!(
        "# Figure 11 / Table 13 — zipfian batch-insert throughput ({} base elements)",
        base.len()
    );
    println!(
        "{:>10} {:>10} {:>10} {:>10} {:>10} {:>10}  {:>9} {:>10}",
        "batch", "P-tree", "U-PaC", "PMA", "C-PaC", "CPMA", "PMA/U-PaC", "CPMA/C-PaC"
    );
    for bs in batch_sizes(max_exp) {
        let ptree = insert_throughput::<cpma_baselines::PTree>(&base, &stream, bs);
        let upac = insert_throughput::<cpma_baselines::UPac>(&base, &stream, bs);
        let pma = insert_throughput::<cpma_pma::Pma<u64>>(&base, &stream, bs);
        let cpac = insert_throughput::<cpma_baselines::CPac>(&base, &stream, bs);
        let cpma = insert_throughput::<cpma_pma::Cpma>(&base, &stream, bs);
        println!(
            "{:>10} {:>10} {:>10} {:>10} {:>10} {:>10}  {:>9.2} {:>10.2}",
            bs,
            sci(ptree),
            sci(upac),
            sci(pma),
            sci(cpac),
            sci(cpma),
            pma / upac,
            cpma / cpac
        );
        println!("csv,fig11,{bs},{ptree},{upac},{pma},{cpac},{cpma}");
    }
}
