//! `persist_bench` — checkpoint/restore bandwidth and write-ahead-log
//! overhead of the `cpma-persist` durability layer.
//!
//! Three measurements, emitted to `BENCH_persist.json`:
//!
//! * **checkpoint** — `Persist::save` wall time for `Pma` and `Cpma`
//!   snapshots across a size sweep, as elements/sec and MB/s (the PMA's
//!   pointer-free layout makes a snapshot a raw byte copy of the backing
//!   arrays, so this should track sequential write bandwidth);
//! * **restore** — `Persist::load` of the same images, which includes the
//!   full corruption-validation pass (checksums plus per-leaf structure);
//! * **wal** — ingest throughput of a durable `Combiner<Cpma>` vs the
//!   identical non-durable run, at ≥ 3 epoch sizes, reporting the
//!   per-epoch WAL overhead in microseconds. Bigger epochs amortize the
//!   logging exactly like they amortize the batch update itself.
//!
//! All files land in a per-process temp directory that is removed at
//! exit. `--quick` shrinks everything for the CI smoke leg.

use cpma_api::{BatchSet, Persist};
use cpma_bench::ubench::{black_box, Bencher};
use cpma_bench::{sci, Args};
use cpma_persist::{FsyncPolicy, WalConfig};
use cpma_pma::{Cpma, Pma};
use cpma_store::{Combiner, CombinerConfig};
use cpma_workloads::{dedup_sorted, uniform_keys};
use std::path::{Path, PathBuf};
use std::time::Instant;

fn best_of<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    let mut best = f64::MAX;
    for _ in 0..reps {
        let t = Instant::now();
        black_box(f());
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

/// Save/load bandwidth for one structure at one size.
fn bench_snapshot<S: BatchSet<u64> + Persist>(b: &Bencher, which: &str, keys: &[u64], path: &Path) {
    let set = S::build_sorted(keys);
    let n = keys.len();
    let save_s = best_of(3, || set.save(path).unwrap());
    let bytes = std::fs::metadata(path).unwrap().len();
    let load_s = best_of(3, || S::load(path).unwrap());
    let mb = bytes as f64 / (1 << 20) as f64;
    for (op, secs) in [("save", save_s), ("load", load_s)] {
        println!(
            "{which:>5} {op:>5} n={n:<9} {:>10} elems/s  {:>8.1} MB/s  ({:.1} bytes/elem)",
            sci(n as f64 / secs),
            mb / secs,
            bytes as f64 / n as f64
        );
        println!("csv,persist,{which},{op},{n},{secs:e},{bytes}");
        b.record(
            &format!("persist/{op}/{which}/{n}"),
            &[
                ("structure", which.to_string()),
                ("n", n.to_string()),
                ("bytes", bytes.to_string()),
                ("mb_per_s", format!("{:.1}", mb / secs)),
            ],
            secs / n as f64,
        );
    }
    std::fs::remove_file(path).unwrap();
}

/// Single-writer burst ingest of `keys` in `epoch`-sized publications,
/// durable (under `wal`) or plain; returns (seconds, epochs applied).
fn run_ingest(keys: &[u64], epoch: usize, wal: Option<WalConfig>) -> (f64, u64) {
    let cfg = CombinerConfig::default();
    let combiner: Combiner<Cpma> = match wal {
        Some(wal) => Combiner::open_durable(cfg, wal).unwrap().0,
        None => Combiner::with_config(Cpma::new(), cfg),
    };
    let t = Instant::now();
    for chunk in keys.chunks(epoch) {
        combiner.insert_many(chunk);
    }
    let secs = t.elapsed().as_secs_f64();
    (secs, combiner.epochs_applied())
}

fn main() {
    let args = Args::parse();
    let quick = args.flag("quick");
    let seed: u64 = args.get_or("seed", 42);
    let dir: PathBuf =
        std::env::temp_dir().join(format!("cpma-persist-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let b = Bencher::new();

    println!("# persist_bench — checkpoint/restore bandwidth");
    let sizes: &[usize] = if quick {
        &[100_000]
    } else {
        &[100_000, 1_000_000, 4_000_000]
    };
    for &n in sizes {
        let keys = dedup_sorted(uniform_keys(n, 34, seed ^ 0x5AFE));
        bench_snapshot::<Pma>(&b, "pma", &keys, &dir.join("pma.snap"));
        bench_snapshot::<Cpma>(&b, "cpma", &keys, &dir.join("cpma.snap"));
    }

    // WAL overhead: the same ingest with and without the epoch log. The
    // fsync policy is `Never` so the comparison isolates the logging work
    // itself (encode + append + checksum) from device sync latency;
    // `EveryN(64)` in the full run shows the amortized-sync deployment
    // point.
    let total: usize = args.get_or("ops", if quick { 40_000 } else { 400_000 });
    let keys = uniform_keys(total, 34, seed ^ 0x11A6);
    println!("# wal overhead — {total} ops, single writer, burst = epoch size");
    println!(
        "{:>7} {:>8} {:>12} {:>12} {:>10} {:>14}",
        "epoch", "fsync", "plain", "durable", "overhead", "us/epoch"
    );
    let policies: &[(&str, FsyncPolicy)] = if quick {
        &[("never", FsyncPolicy::Never)]
    } else {
        &[
            ("never", FsyncPolicy::Never),
            ("every64", FsyncPolicy::EveryN(64)),
        ]
    };
    for &epoch in &[256usize, 2048, 16384] {
        let (plain_s, epochs) = run_ingest(&keys, epoch, None);
        for (pname, policy) in policies {
            let wal_dir = dir.join(format!("wal-{epoch}-{pname}"));
            let mut wal = WalConfig::new(&wal_dir);
            wal.fsync = *policy;
            wal.rotate_bytes = 64 << 20; // rotation out of the measurement
            let (durable_s, depochs) = run_ingest(&keys, epoch, Some(wal));
            assert_eq!(epochs, depochs, "same drive, same epochs");
            let overhead = (durable_s - plain_s).max(0.0);
            let per_epoch_us = overhead * 1e6 / epochs as f64;
            println!(
                "{epoch:>7} {pname:>8} {:>10}/s {:>10}/s {:>9.1}% {:>12.2}",
                sci(total as f64 / plain_s),
                sci(total as f64 / durable_s),
                100.0 * overhead / plain_s,
                per_epoch_us
            );
            println!("csv,persist,wal,{epoch},{pname},{plain_s:e},{durable_s:e}");
            b.record(
                &format!("persist/wal/{pname}/{epoch}"),
                &[
                    ("epoch_ops", epoch.to_string()),
                    ("fsync", pname.to_string()),
                    ("total_ops", total.to_string()),
                    ("epochs", epochs.to_string()),
                    ("overhead_pct", format!("{:.1}", 100.0 * overhead / plain_s)),
                    ("wal_us_per_epoch", format!("{per_epoch_us:.2}")),
                ],
                durable_s / total as f64,
            );
            std::fs::remove_dir_all(&wal_dir).unwrap();
        }
    }

    std::fs::remove_dir_all(&dir).unwrap();
    b.write_json("persist").expect("write BENCH_persist.json");
}
