//! Figure 10 / Table 15: graph batch-insert throughput vs batch size on
//! the largest graph — F-Graph vs C-PaC vs Aspen.
//!
//! Paper setup: base graph = Friendster (substituted by RMAT at laptop
//! scale, DESIGN.md §4), update batches sampled from the RMAT distribution
//! (a=0.5, b=c=0.1, d=0.3) with potential duplicates. Expected shape:
//! F-Graph ~2–3× the trees across batch sizes.

use cpma_bench::{batch_sizes, sci, time, Args};
use cpma_fgraph::{AspenGraph, FGraph, PacGraph};
use cpma_workloads::RmatGenerator;

fn main() {
    let args = Args::parse();
    let scale: u32 = args.get_or("scale", 14);
    let edges_per_vertex: usize = args.get_or("epv", 14);
    let max_exp: u32 = args.get_or("max-exp", 6);
    let seed: u64 = args.get_or("seed", 42);

    let v = 1usize << scale;
    let gen = RmatGenerator::paper_config(scale, seed);
    let base = gen.undirected_graph(v * edges_per_vertex);
    let stream_gen = RmatGenerator::paper_config(scale, seed ^ 0x77);

    println!(
        "# Figure 10 / Table 15 — graph batch-insert throughput (FS substitute: RMAT scale {scale}, {} edges)",
        base.len()
    );
    println!(
        "{:>10} {:>10} {:>10} {:>10} {:>8} {:>8}",
        "batch", "Aspen", "C-PaC", "F-Graph", "F/Asp", "F/CPaC"
    );
    for bs in batch_sizes(max_exp) {
        let stream = stream_gen.directed_edges(bs * 10);
        let run_f = {
            let mut g = FGraph::from_edges(v, &base);
            let (_, secs) = time(|| {
                for chunk in stream.chunks(bs) {
                    let mut b = chunk.to_vec();
                    g.insert_edges(&mut b, false);
                }
            });
            stream.len() as f64 / secs
        };
        let run_p = {
            let mut g = PacGraph::from_edges(v, &base);
            let (_, secs) = time(|| {
                for chunk in stream.chunks(bs) {
                    let mut b = chunk.to_vec();
                    g.insert_edges(&mut b, false);
                }
            });
            stream.len() as f64 / secs
        };
        let run_a = {
            let mut g = AspenGraph::from_edges(v, &base);
            let (_, secs) = time(|| {
                for chunk in stream.chunks(bs) {
                    let mut b = chunk.to_vec();
                    g.insert_edges(&mut b, false);
                }
            });
            stream.len() as f64 / secs
        };
        println!(
            "{:>10} {:>10} {:>10} {:>10} {:>8.2} {:>8.2}",
            bs,
            sci(run_a),
            sci(run_p),
            sci(run_f),
            run_f / run_a,
            run_f / run_p
        );
        println!("csv,fig10,{bs},{run_a},{run_p},{run_f}");
    }
}
