//! `service_load` — the million-user scenario harness: N loopback client
//! threads drive the TCP front door (`cpma-service`) with pipelined op
//! bursts over zipf / uniform / bursty key streams, against two servers:
//!
//! * `combiner` — the production engine: per-connection pipelines funnel
//!   through `Combiner::submit_many` over `ShardedSet<Cpma, 8>`, so the
//!   flat-combining layer turns concurrent connections into batch-parallel
//!   updates;
//! * `mutex` — the conventional baseline: the same protocol and thread
//!   model, but every op takes a global `Mutex<Cpma>` individually.
//!
//! Reports saturation throughput plus p50/p99/p999 burst round-trip
//! latency per configuration, and the combiner's epoch statistics, into
//! `BENCH_service.json`. The headline row (8 clients × 4096-op bursts) is
//! the end-to-end form of the paper's claim: batched updates through the
//! combining window beat per-op locking from the first client on.
//!
//! `--quick` runs the CI-smoke sizing; full mode builds a ≥10M-key base
//! store. `--ops`, `--base`, and `--seed` override the defaults.

use cpma_bench::ubench::Bencher;
use cpma_bench::{sci, Args, BatchOp, BatchSet};
use cpma_obs::HistSnapshot;
use cpma_pma::Cpma;
use cpma_service::{Client, Service, ServiceConfig};
use cpma_store::{Combiner, CombinerConfig, ShardedSet};
use cpma_workloads::{clustered_keys, dedup_sorted, uniform_keys, SplitMix64, ZipfGenerator};
use std::sync::Arc;
use std::time::{Duration, Instant};

type Store = ShardedSet<Cpma, 8>;

/// Per-client op streams: keys from the named distribution, shaped into a
/// 3:1 insert:remove mix (disjoint per-client seeds, fully reproducible).
fn op_streams(dist: &str, clients: usize, ops: usize, seed: u64) -> Vec<Vec<BatchOp<u64>>> {
    (0..clients)
        .map(|t| {
            let s = seed ^ ((t as u64 + 1) << 32);
            let keys = match dist {
                "zipf" => ZipfGenerator::paper_config(s).keys(ops),
                // Bursty: runs of near-consecutive keys with large gaps —
                // auto-increment ids arriving in waves.
                "bursty" => clustered_keys(ops, 128, 1 << 30, s),
                _ => uniform_keys(ops, 34, s),
            };
            let mut rng = SplitMix64::new(s ^ 0x0b);
            keys.into_iter()
                .map(|k| {
                    if rng.next_below(4) == 0 {
                        BatchOp::Remove(k)
                    } else {
                        BatchOp::Insert(k)
                    }
                })
                .collect()
        })
        .collect()
}

enum EngineKind {
    Combiner,
    Mutex,
}

struct RunResult {
    ops_per_sec: f64,
    /// Burst round-trip latency quantiles, nanoseconds.
    p50: u64,
    p99: u64,
    p999: u64,
    epochs: u64,
    mean_ops_per_epoch: f64,
}

/// Serve `base` behind the chosen engine, drive every client stream in
/// `burst`-op pipelined publications, and collect throughput + latency.
fn run_load(
    kind: EngineKind,
    base: &[u64],
    streams: &[Vec<BatchOp<u64>>],
    burst: usize,
) -> RunResult {
    let clients = streams.len();
    // Hold the combining window open for one full wave of client bursts
    // (same tuning rule as the in-process store_throughput sweep), and
    // throttle snapshot publication: every published snapshot deep-clones
    // the store, which at a 10M-key base costs more than applying the
    // epoch itself. The load phase is write-only, so a sparse cadence is
    // the right trade (TUNING.md, `snapshot_every`).
    let cfg = ServiceConfig {
        workers: clients.max(1),
        read_timeout: Some(Duration::from_secs(120)),
        combiner: CombinerConfig {
            window_ops: burst.saturating_mul(clients.max(1)),
            window_wait: Duration::from_micros(200),
            snapshot_every: 32,
            ..CombinerConfig::default()
        },
        ..ServiceConfig::default()
    };

    let (mut service, combiner): (Service, Option<Arc<Combiner<Store>>>) = match kind {
        EngineKind::Combiner => {
            let (s, c) = Service::serve(Store::build_sorted(base), cfg).unwrap();
            (s, Some(c))
        }
        EngineKind::Mutex => (
            Service::serve_mutex(Cpma::build_sorted(base), cfg).unwrap(),
            None,
        ),
    };
    let addr = service.local_addr();

    let start = Instant::now();
    let hist = std::thread::scope(|scope| {
        let handles: Vec<_> = streams
            .iter()
            .map(|stream| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).unwrap();
                    client
                        .set_read_timeout(Some(Duration::from_secs(120)))
                        .unwrap();
                    let mut hist = HistSnapshot::new();
                    for chunk in stream.chunks(burst) {
                        let t0 = Instant::now();
                        let acks = client.mutate_burst(chunk).unwrap();
                        hist.record(t0.elapsed().as_nanos() as u64);
                        std::hint::black_box(acks);
                    }
                    hist
                })
            })
            .collect();
        let mut merged = HistSnapshot::new();
        for h in handles {
            merged.merge(&h.join().unwrap());
        }
        merged
    });
    let secs = start.elapsed().as_secs_f64();

    let total: usize = streams.iter().map(|s| s.len()).sum();
    let stats = combiner.as_ref().map(|c| c.stats());
    service.shutdown();
    RunResult {
        ops_per_sec: total as f64 / secs,
        p50: hist.quantile(0.50),
        p99: hist.quantile(0.99),
        p999: hist.quantile(0.999),
        epochs: stats.as_ref().map_or(0, |s| s.epochs),
        mean_ops_per_epoch: stats.as_ref().map_or(0.0, |s| s.mean_ops_per_epoch()),
    }
}

fn us(nanos: u64) -> f64 {
    nanos as f64 / 1e3
}

fn main() {
    let args = Args::parse();
    let quick = args.flag("quick");
    // Full mode: a 10M-key base store and 100k ops per client — the
    // "millions of users" sizing. Quick mode: the CI smoke.
    let base_n: usize = args.get_or("base", if quick { 50_000 } else { 10_000_000 });
    let ops: usize = args.get_or("ops", if quick { 8_192 } else { 100_000 });
    let seed: u64 = args.get_or("seed", 42);

    let base = dedup_sorted(uniform_keys(base_n, 40, seed ^ 0xBA5E));
    let b = Bencher::new();

    let dists: &[&str] = if quick {
        &["zipf"]
    } else {
        &["zipf", "uniform", "bursty"]
    };
    let client_sweep: &[usize] = if quick { &[8] } else { &[1, 8] };
    let burst_sweep: &[usize] = if quick { &[4096] } else { &[64, 4096] };

    println!(
        "# service_load — TCP front door ops/sec over {} base keys ({ops} ops/client)",
        base.len()
    );
    println!(
        "{:>8} {:>8} {:>6} {:>9} {:>12} {:>10} {:>10} {:>10} {:>8} {:>9}",
        "dist",
        "engine",
        "conns",
        "burst",
        "ops/sec",
        "p50_us",
        "p99_us",
        "p999_us",
        "epochs",
        "ops/epoch"
    );

    // The headline comparison the acceptance gate checks: combiner vs
    // per-op mutex at 8 clients × 4096-op bursts.
    let mut headline: (f64, f64) = (0.0, 0.0);

    for dist in dists {
        for &clients in client_sweep {
            let streams = op_streams(dist, clients, ops, seed);
            for &burst in burst_sweep {
                for (engine, kind) in [
                    ("combiner", EngineKind::Combiner),
                    ("mutex", EngineKind::Mutex),
                ] {
                    let r = run_load(kind, &base, &streams, burst);
                    if *dist == "zipf" && clients == 8 && burst == 4096 {
                        match engine {
                            "combiner" => headline.0 = r.ops_per_sec,
                            _ => headline.1 = r.ops_per_sec,
                        }
                    }
                    println!(
                        "{:>8} {:>8} {:>6} {:>9} {:>12} {:>10.1} {:>10.1} {:>10.1} {:>8} {:>9.1}",
                        dist,
                        engine,
                        clients,
                        burst,
                        sci(r.ops_per_sec),
                        us(r.p50),
                        us(r.p99),
                        us(r.p999),
                        r.epochs,
                        r.mean_ops_per_epoch
                    );
                    println!(
                        "csv,service,{dist},{engine},{clients},{burst},{}",
                        r.ops_per_sec
                    );
                    b.record(
                        &format!("service/{dist}/{engine}"),
                        &[
                            ("dist", dist.to_string()),
                            ("engine", engine.to_string()),
                            ("clients", clients.to_string()),
                            ("burst", burst.to_string()),
                            ("ops_per_client", ops.to_string()),
                            ("base_keys", base.len().to_string()),
                            ("p50_us", format!("{:.1}", us(r.p50))),
                            ("p99_us", format!("{:.1}", us(r.p99))),
                            ("p999_us", format!("{:.1}", us(r.p999))),
                            ("epochs", r.epochs.to_string()),
                            ("mean_ops_per_epoch", format!("{:.1}", r.mean_ops_per_epoch)),
                        ],
                        if r.ops_per_sec > 0.0 {
                            1.0 / r.ops_per_sec
                        } else {
                            0.0
                        },
                    );
                }
            }
        }
    }

    if headline.1 > 0.0 {
        println!(
            "# headline (zipf, 8 clients, 4096-op bursts): combiner {} ops/s vs mutex {} ops/s — {:.2}x",
            sci(headline.0),
            sci(headline.1),
            headline.0 / headline.1
        );
    }

    b.write_json("service").expect("write BENCH_service.json");
}
