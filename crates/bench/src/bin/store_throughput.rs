//! `store_throughput` — end-to-end throughput of the concurrent store
//! front-end (`cpma-store`), the "batches beat points under contention"
//! measurement.
//!
//! Sweeps writer-thread count × combining-window size × shard count on
//! zipfian and uniform key streams, comparing:
//!
//! * `combiner` — `Combiner<ShardedSet<Cpma, N>>`: every writer submits
//!   point ops, the flat-combining leader turns them into one
//!   batch-parallel update per epoch;
//! * `mutex_point` — the classic alternative: one `Mutex<Cpma>`, every
//!   writer locks and applies a point update (the regime the paper's
//!   Figure 1 shows losing by orders of magnitude once batching wins).
//!
//! Prints the usual human table + `csv,` lines and emits
//! `BENCH_store.json` with one entry per configuration.
//!
//! Defaults are laptop-scale; `--ops` scales the per-writer stream,
//! `--snapshot-every` the snapshot publication cadence.

use cpma_bench::ubench::Bencher;
use cpma_bench::{sci, Args, OrderedSet};
use cpma_pma::Cpma;
use cpma_store::{Combiner, CombinerConfig, CombinerStats, ShardedSet, WindowPolicy};
use cpma_workloads::{uniform_keys, SplitMix64, ZipfGenerator};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Per-writer op streams for one configuration (disjoint seeds per
/// writer so streams differ but the workload is reproducible).
fn streams(dist: &str, writers: usize, ops: usize, seed: u64) -> Vec<Vec<u64>> {
    (0..writers)
        .map(|t| {
            let s = seed ^ ((t as u64 + 1) << 32);
            match dist {
                "zipf" => ZipfGenerator::paper_config(s).keys(ops),
                _ => uniform_keys(ops, 34, s),
            }
        })
        .collect()
}

/// Drive `ops` point inserts per writer through the combiner; returns
/// ops/second of wall-clock.
fn run_combiner<const N: usize>(
    base: &[u64],
    streams: &[Vec<u64>],
    window: usize,
    snapshot_every: u64,
) -> (f64, u64) {
    // window == 1 is reactive flat combining (drain whatever is pending,
    // never wait); larger windows hold the epoch open briefly to build
    // bigger batches.
    let cfg = CombinerConfig {
        window_ops: window,
        window_wait: if window > 1 {
            Duration::from_micros(50)
        } else {
            Duration::ZERO
        },
        snapshot_every,
        ..CombinerConfig::default()
    };
    let store: Combiner<ShardedSet<Cpma, N>> =
        Combiner::with_config(cpma_bench::BatchSet::build_sorted(base), cfg);
    let start = Instant::now();
    std::thread::scope(|scope| {
        for stream in streams {
            let store = &store;
            scope.spawn(move || {
                for &k in stream {
                    store.insert(k);
                }
            });
        }
    });
    let secs = start.elapsed().as_secs_f64();
    let total: usize = streams.iter().map(|s| s.len()).sum();
    (total as f64 / secs, store.epochs_applied())
}

/// Same epochs, but each writer submits `burst`-sized publications —
/// the stream-ingest regime where combined batches stay large.
fn run_combiner_burst<const N: usize>(
    base: &[u64],
    streams: &[Vec<u64>],
    burst: usize,
    snapshot_every: u64,
) -> (f64, u64) {
    // Hold each epoch open until every writer's burst has landed (or a
    // short timeout passes) — with a zero window the first writer to
    // wake would seal an epoch around just its own burst.
    let cfg = CombinerConfig {
        window_ops: burst.saturating_mul(streams.len()),
        window_wait: Duration::from_micros(200),
        snapshot_every,
        ..CombinerConfig::default()
    };
    let store: Combiner<ShardedSet<Cpma, N>> =
        Combiner::with_config(cpma_bench::BatchSet::build_sorted(base), cfg);
    let start = Instant::now();
    std::thread::scope(|scope| {
        for stream in streams {
            let store = &store;
            scope.spawn(move || {
                for chunk in stream.chunks(burst) {
                    store.insert_many(chunk);
                }
            });
        }
    });
    let secs = start.elapsed().as_secs_f64();
    let total: usize = streams.iter().map(|s| s.len()).sum();
    (total as f64 / secs, store.epochs_applied())
}

/// Shared harness of the reader-heavy sweep: spawn one background
/// writer per stream (each looping `write_chunk` over 1024-key chunks
/// until stopped), then time `readers` threads each issuing `probes`
/// point probes; returns reader probes/second. The two variants below
/// differ only in how they build the store and what one write/probe is.
fn reader_probe_harness(
    streams: &[Vec<u64>],
    readers: usize,
    probes: usize,
    seed: u64,
    write_chunk: impl Fn(&[u64]) + Sync,
    probe: impl Fn(u64) -> bool + Sync,
) -> f64 {
    let stop = AtomicBool::new(false);
    let mut probed = 0.0;
    std::thread::scope(|scope| {
        for stream in streams {
            let (write_chunk, stop) = (&write_chunk, &stop);
            scope.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    for chunk in stream.chunks(1024) {
                        if stop.load(Ordering::Relaxed) {
                            break;
                        }
                        write_chunk(chunk);
                    }
                }
            });
        }
        let start = Instant::now();
        let handles: Vec<_> = (0..readers)
            .map(|r| {
                let probe = &probe;
                scope.spawn(move || {
                    let mut rng = SplitMix64::new(seed ^ ((r as u64 + 1) << 40));
                    let mut hits = 0usize;
                    for _ in 0..probes {
                        hits += usize::from(probe(rng.next_below(1 << 34)));
                    }
                    hits
                })
            })
            .collect();
        let mut total_hits = 0usize;
        for h in handles {
            total_hits += h.join().unwrap();
        }
        let secs = start.elapsed().as_secs_f64();
        stop.store(true, Ordering::Relaxed);
        std::hint::black_box(total_hits);
        probed = (readers * probes) as f64 / secs;
    });
    probed
}

/// Reader-heavy sweep, combiner side: every probe takes the published
/// snapshot — the wait-free read path under write pressure.
fn run_snapshot_readers<const N: usize>(
    base: &[u64],
    streams: &[Vec<u64>],
    readers: usize,
    probes: usize,
    seed: u64,
) -> f64 {
    let cfg = CombinerConfig {
        window_ops: 1024 * streams.len().max(1),
        window_wait: Duration::from_micros(200),
        snapshot_every: 1,
        ..CombinerConfig::default()
    };
    let store: Combiner<ShardedSet<Cpma, N>> =
        Combiner::with_config(cpma_bench::BatchSet::build_sorted(base), cfg);
    reader_probe_harness(
        streams,
        readers,
        probes,
        seed,
        |chunk| {
            store.insert_many(chunk);
        },
        |k| store.snapshot().contains(k),
    )
}

/// Reader-heavy sweep, baseline side: same writer load and probe count,
/// but every reader (and writer) goes through one `Mutex<Cpma>`.
fn run_mutex_readers(
    base: &[u64],
    streams: &[Vec<u64>],
    readers: usize,
    probes: usize,
    seed: u64,
) -> f64 {
    let store = Mutex::new(Cpma::from_sorted(base));
    reader_probe_harness(
        streams,
        readers,
        probes,
        seed,
        |chunk| {
            for &k in chunk {
                store.lock().unwrap().insert(k);
            }
        },
        |k| store.lock().unwrap().has(k),
    )
}

/// The window-policy sweep's traffic shapes.
#[derive(Clone, Copy, PartialEq)]
enum Traffic {
    /// Continuous burst publications, no idle gaps.
    Steady,
    /// Alternating regimes — back-to-back burst publications, then a
    /// sparse stretch of isolated point ops with inter-op idle gaps.
    /// No single fixed window fits both halves: a long wait wastes the
    /// sparse stretch, a reactive drain fragments the bursts.
    Bursty,
}

/// Drive the writers' streams through a combiner under `cfg`, shaping
/// arrivals per `traffic`; returns ops/sec of wall clock plus the
/// combiner's seal statistics.
///
/// Bursty shape, per writer: 8 × `burst`-op publications back to back,
/// then 32 point ops separated by a seeded ~150–200 µs idle gap, repeat.
fn run_policy(
    base: &[u64],
    streams: &[Vec<u64>],
    cfg: CombinerConfig,
    burst: usize,
    traffic: Traffic,
    seed: u64,
) -> (f64, CombinerStats) {
    let store: Combiner<ShardedSet<Cpma, 8>> =
        Combiner::with_config(cpma_bench::BatchSet::build_sorted(base), cfg);
    let start = Instant::now();
    std::thread::scope(|scope| {
        for (t, stream) in streams.iter().enumerate() {
            let store = &store;
            scope.spawn(move || {
                let mut rng = SplitMix64::new(seed ^ ((t as u64 + 1) << 24));
                let mut i = 0usize;
                while i < stream.len() {
                    // Burst regime: 8 publications of `burst` ops.
                    for _ in 0..8 {
                        let hi = (i + burst).min(stream.len());
                        if i >= hi {
                            break;
                        }
                        store.insert_many(&stream[i..hi]);
                        i = hi;
                    }
                    if traffic == Traffic::Steady {
                        continue;
                    }
                    // Sparse regime: isolated point ops with idle gaps.
                    for _ in 0..32 {
                        if i >= stream.len() {
                            break;
                        }
                        store.insert(stream[i]);
                        i += 1;
                        std::thread::sleep(Duration::from_micros(150 + rng.next_below(50)));
                    }
                }
            });
        }
    });
    let secs = start.elapsed().as_secs_f64();
    let total: usize = streams.iter().map(|s| s.len()).sum();
    (total as f64 / secs, store.stats())
}

/// The Fixed-vs-Adaptive window-policy candidates: hand-tuned fixed
/// windows spanning the reasonable range, and the self-tuning adaptive
/// policy with its out-of-the-box defaults.
fn policy_candidates(burst: usize, writers: usize) -> Vec<(&'static str, CombinerConfig)> {
    let fixed = |window_ops: usize, wait_us: u64| CombinerConfig {
        policy: WindowPolicy::Fixed,
        window_ops,
        window_wait: Duration::from_micros(wait_us),
        ..CombinerConfig::default()
    };
    vec![
        // Reactive: drain whatever is pending, never wait.
        ("fixed_reactive", fixed(1, 0)),
        // Tuned for one full wave of publications (the best static
        // choice for the burst regime).
        ("fixed_wave", fixed(burst * writers.max(1), 300)),
        // A middle-ground static window.
        ("fixed_mid", fixed(64, 50)),
        ("adaptive", CombinerConfig::adaptive()),
    ]
}

/// The contended baseline: every writer locks the whole set per op.
fn run_mutex_point(base: &[u64], streams: &[Vec<u64>]) -> f64 {
    let store = Mutex::new(Cpma::from_sorted(base));
    let start = Instant::now();
    std::thread::scope(|scope| {
        for stream in streams {
            let store = &store;
            scope.spawn(move || {
                for &k in stream {
                    store.lock().unwrap().insert(k);
                }
            });
        }
    });
    let secs = start.elapsed().as_secs_f64();
    let total: usize = streams.iter().map(|s| s.len()).sum();
    total as f64 / secs
}

#[allow(clippy::too_many_arguments)]
fn report(
    b: &Bencher,
    name: &str,
    dist: &str,
    writers: usize,
    window: usize,
    shards: usize,
    ops: usize,
    throughput: f64,
) {
    println!("csv,store,{dist},{name},{writers},{window},{shards},{throughput}");
    b.record(
        &format!("store/{dist}/{name}"),
        &[
            ("dist", dist.to_string()),
            ("writers", writers.to_string()),
            ("window", window.to_string()),
            ("shards", shards.to_string()),
            ("ops_per_writer", ops.to_string()),
        ],
        if throughput > 0.0 {
            1.0 / throughput
        } else {
            0.0
        },
    );
}

fn main() {
    let args = Args::parse();
    let quick = args.flag("quick");
    let ops: usize = args.get_or("ops", if quick { 3_000 } else { 30_000 });
    let base_n: usize = args.get_or("base", if quick { 60_000 } else { 1_000_000 });
    let seed: u64 = args.get_or("seed", 42);
    let snapshot_every: u64 = args.get_or("snapshot-every", 64);

    // The pre-built base set: large enough that point updates pay the
    // PMA's redistribution cost while batches amortize it — the regime
    // the store front-end exists for.
    let base = cpma_workloads::dedup_sorted(uniform_keys(base_n, 34, seed ^ 0xBA5E));

    let b = Bencher::new();
    // `--policy-only` runs just the window-policy sweep (fast iteration
    // on combining policies; the JSON then contains only those entries).
    let policy_only = args.flag("policy-only");
    let writer_sweep: &[usize] = if quick { &[2] } else { &[1, 4, 8] };
    let window_sweep: &[usize] = if quick { &[1] } else { &[1, 64] };
    let burst_sweep: &[usize] = if quick { &[256] } else { &[256, 4096] };
    let reader_sweep: &[usize] = if quick { &[2] } else { &[1, 4, 8] };
    let probes: usize = args.get_or("probes", if quick { 5_000 } else { 100_000 });

    if !policy_only {
        println!(
            "# store_throughput — concurrent front-end ops/sec ({ops} ops/writer, {} base elements)",
            base.len()
        );
        println!(
            "{:>8} {:>8} {:>8} {:>7} {:>12} {:>12}  {:>8}",
            "dist", "writers", "window", "shards", "combiner", "mutex_pt", "epochs"
        );
    }
    for dist in if policy_only {
        &[][..]
    } else {
        &["zipf", "uniform"][..]
    } {
        for &writers in writer_sweep {
            let streams = streams(dist, writers, ops, seed);
            let mutex = run_mutex_point(&base, &streams);
            report(&b, "mutex_point", dist, writers, 0, 1, ops, mutex);
            // Burst ingest: writers publish `burst`-op publications; the
            // combined epoch batch grows with both burst size and writer
            // count — the regime where batch-parallel updates pull away
            // from the point-locked baseline.
            for &burst in burst_sweep {
                let (burst_tp, burst_epochs) =
                    run_combiner_burst::<8>(&base, &streams, burst, snapshot_every);
                report(
                    &b,
                    &format!("combiner_burst{burst}"),
                    dist,
                    writers,
                    burst,
                    8,
                    ops,
                    burst_tp,
                );
                println!(
                    "{:>8} {:>8} {:>8} {:>7} {:>12} {:>12}  {:>8}  (burst {burst})",
                    dist,
                    writers,
                    "-",
                    8,
                    sci(burst_tp),
                    sci(mutex),
                    burst_epochs
                );
            }
            for &window in window_sweep {
                // Shard-count sweep (const generic, so enumerated).
                for (shards, tp, epochs) in [
                    {
                        let (tp, e) = run_combiner::<1>(&base, &streams, window, snapshot_every);
                        (1usize, tp, e)
                    },
                    {
                        let (tp, e) = run_combiner::<8>(&base, &streams, window, snapshot_every);
                        (8usize, tp, e)
                    },
                ] {
                    report(&b, "combiner", dist, writers, window, shards, ops, tp);
                    println!(
                        "{:>8} {:>8} {:>8} {:>7} {:>12} {:>12}  {:>8}",
                        dist,
                        writers,
                        window,
                        shards,
                        sci(tp),
                        sci(mutex),
                        epochs
                    );
                }
            }
        }
    }

    // Window-policy sweep: the same writer streams shaped as bursty or
    // steady arrivals, run under hand-tuned Fixed windows vs the
    // self-tuning Adaptive policy. The claim under test (and asserted by
    // docs/TUNING.md): Adaptive ≥ the best Fixed window on bursty
    // traffic and within noise of it on steady traffic, with no
    // arrival-rate knob to guess.
    let policy_writers: usize = if quick { 2 } else { 4 };
    let policy_burst: usize = 64;
    println!(
        "# window-policy sweep — ops/sec at {policy_writers} writers \
         (burst {policy_burst}; bursty = burst waves + sparse point-op stretches)"
    );
    println!(
        "{:>8} {:>8} {:>16} {:>12}  combiner stats",
        "dist", "traffic", "policy", "ops/sec"
    );
    for dist in ["zipf", "uniform"] {
        let streams = streams(dist, policy_writers, ops, seed ^ 0xB0A7);
        for (traffic, tname) in [(Traffic::Bursty, "bursty"), (Traffic::Steady, "steady")] {
            for (policy, cfg) in policy_candidates(policy_burst, policy_writers) {
                let (tp, stats) = run_policy(&base, &streams, cfg, policy_burst, traffic, seed);
                println!("csv,store,{dist},policy_{tname}_{policy},{policy_writers},{tp}");
                b.record(
                    &format!("store/{dist}/policy/{tname}/{policy}"),
                    &[
                        ("dist", dist.to_string()),
                        ("traffic", tname.to_string()),
                        ("policy", policy.to_string()),
                        ("writers", policy_writers.to_string()),
                        ("burst", policy_burst.to_string()),
                        ("ops_per_writer", ops.to_string()),
                        (
                            "mean_ops_per_epoch",
                            format!("{:.1}", stats.mean_ops_per_epoch()),
                        ),
                    ],
                    if tp > 0.0 { 1.0 / tp } else { 0.0 },
                );
                println!(
                    "{:>8} {:>8} {:>16} {:>12}  {}",
                    dist,
                    tname,
                    policy,
                    sci(tp),
                    stats.summary()
                );
            }
        }
    }

    // Reader-heavy sweep (fixed writer load of 2 burst-ingesting
    // writers): the combiner's wait-free snapshot readers vs readers
    // that must share the `Mutex<Cpma>` with the writers. This is the
    // read-path half of the store's value proposition — snapshot reads
    // never block behind a writing leader.
    let reader_writers = 2usize.min(writer_sweep[writer_sweep.len() - 1]);
    if !policy_only {
        println!(
            "# reader sweep — reader probes/sec at {reader_writers} background writers \
             ({probes} probes/reader)"
        );
        println!(
            "{:>8} {:>8} {:>14} {:>14}",
            "dist", "readers", "snapshot", "mutex_rd"
        );
    }
    for dist in if policy_only {
        &[][..]
    } else {
        &["zipf", "uniform"][..]
    } {
        let streams = streams(dist, reader_writers, ops, seed ^ 0x5EAD);
        for &readers in reader_sweep {
            let snap = run_snapshot_readers::<8>(&base, &streams, readers, probes, seed);
            let mutex_rd = run_mutex_readers(&base, &streams, readers, probes, seed);
            for (name, tp) in [("readers_snapshot", snap), ("readers_mutex", mutex_rd)] {
                println!("csv,store,{dist},{name},{readers},{tp}");
                b.record(
                    &format!("store/{dist}/{name}"),
                    &[
                        ("dist", dist.to_string()),
                        ("readers", readers.to_string()),
                        ("writers", reader_writers.to_string()),
                        ("probes", probes.to_string()),
                    ],
                    if tp > 0.0 { 1.0 / tp } else { 0.0 },
                );
            }
            println!(
                "{:>8} {:>8} {:>14} {:>14}",
                dist,
                readers,
                sci(snap),
                sci(mutex_rd)
            );
        }
    }
    b.write_json("store").expect("write BENCH_store.json");
}
