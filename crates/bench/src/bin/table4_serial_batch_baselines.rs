//! Table 4: serial batch-insert throughput, our PMA batch algorithm vs the
//! prior serial batch-update approach.
//!
//! The paper's comparator is the Rewired PMA (RMA, De Leo & Boncz) which we
//! cannot run (closed test harness, `mmap`-rewiring internals). Per the
//! substitution policy (DESIGN.md §4) the stand-ins isolate the same
//! effect Table 4 demonstrates — batching amortizes search and
//! redistribution over a serial point-insert loop and over a serial
//! merge-everything rebuild:
//!
//! * `point-loop`   — one `insert` per key (what RMA does without batching);
//! * `merge-rebuild`— two-finger merge into a fresh array per batch (the
//!   serial-batch strawman the RMA paper improves on);
//! * `batch (ours)` — §4's algorithm on one thread.

use cpma_bench::{sci, time, with_threads, Args};
use cpma_pma::Pma;
use cpma_workloads::{dedup_sorted, uniform_keys};

/// Serial merge-rebuild baseline: keeps a single sorted Vec, merging each
/// batch into a fresh allocation (O(n) per batch).
struct MergeRebuild {
    data: Vec<u64>,
}

impl MergeRebuild {
    fn insert_batch(&mut self, batch: &[u64]) {
        let mut out = Vec::with_capacity(self.data.len() + batch.len());
        let (mut i, mut j) = (0, 0);
        while i < self.data.len() && j < batch.len() {
            match self.data[i].cmp(&batch[j]) {
                std::cmp::Ordering::Less => {
                    out.push(self.data[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(batch[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    out.push(self.data[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&self.data[i..]);
        out.extend_from_slice(&batch[j..]);
        self.data = out;
    }
}

fn main() {
    let args = Args::parse();
    let n: usize = args.get_or("n", 1_000_000);
    let bits: u32 = args.get_or("bits", 40);
    let max_exp: u32 = args.get_or("max-exp", 6);
    let seed: u64 = args.get_or("seed", 42);

    let base = dedup_sorted(uniform_keys(n, bits, seed));
    let stream = uniform_keys(n, bits, seed ^ 0xABCD);

    println!(
        "# Table 4 — serial batch-insert throughput ({} base elements); RMA substituted per DESIGN.md",
        base.len()
    );
    println!(
        "{:>10} {:>12} {:>14} {:>12} {:>12}",
        "batch", "point-loop", "merge-rebuild", "batch (ours)", "ours/merge"
    );
    with_threads(1, || {
        for exp in 2..=max_exp {
            let bs = 10usize.pow(exp);
            let point = {
                let mut s = Pma::<u64>::from_sorted(&base);
                let (_, secs) = time(|| {
                    for &k in &stream {
                        s.insert(k);
                    }
                });
                stream.len() as f64 / secs
            };
            let merge = {
                let mut s = MergeRebuild { data: base.clone() };
                let (_, secs) = time(|| {
                    let mut scratch = Vec::new();
                    for chunk in stream.chunks(bs) {
                        scratch.clear();
                        scratch.extend_from_slice(chunk);
                        scratch.sort_unstable();
                        scratch.dedup();
                        s.insert_batch(&scratch);
                    }
                });
                stream.len() as f64 / secs
            };
            let ours = {
                let mut s = Pma::<u64>::from_sorted(&base);
                let (_, secs) = time(|| {
                    let mut scratch = Vec::new();
                    for chunk in stream.chunks(bs) {
                        scratch.clear();
                        scratch.extend_from_slice(chunk);
                        scratch.sort_unstable();
                        scratch.dedup();
                        s.insert_batch_sorted(&scratch);
                    }
                });
                stream.len() as f64 / secs
            };
            println!(
                "{:>10} {:>12} {:>14} {:>12} {:>12.2}",
                bs,
                sci(point),
                sci(merge),
                sci(ours),
                ours / merge
            );
            println!("csv,table4,{bs},{point},{merge},{ours}");
        }
    });
}
