//! Figure 8 / Table 12: strong scaling of range queries in the PMA and
//! CPMA.
//!
//! Paper setup: 1e8 elements, 1e5 parallel queries of ~1.5e6 elements
//! each. Expected shape: queries scale nearly linearly (read-only, no
//! coordination); the CPMA scales past the PMA once the PMA saturates
//! memory bandwidth (the paper reports 41× vs 118× at 64h).

use cpma_bench::{core_sweep, max_threads, range_query_throughput, sci, with_threads, Args};
use cpma_workloads::{dedup_sorted, uniform_keys};

fn main() {
    let args = Args::parse();
    let n: usize = args.get_or("n", 1_000_000);
    let queries: usize = args.get_or("queries", 1_000);
    let bits: u32 = args.get_or("bits", 40);
    let seed: u64 = args.get_or("seed", 42);
    let max_t = args.get_or("threads", max_threads());
    // Paper: each query returns ~1.5% of the structure (1.5e6 of 1e8).
    let frac: f64 = args.get_or("frac", 0.015);

    let base = dedup_sorted(uniform_keys(n, bits, seed));
    let width = ((1u64 << bits) as f64 * frac) as u64;
    let pma = cpma_pma::Pma::<u64>::from_sorted(&base);
    let cpma = cpma_pma::Cpma::from_sorted(&base);

    println!(
        "# Figure 8 / Table 12 — range-query strong scaling ({} elements, {queries} queries of ~{:.1}% each)",
        base.len(),
        frac * 100.0
    );
    println!(
        "{:>7} {:>12} {:>10} {:>12} {:>10}",
        "cores", "PMA TP", "speedup", "CPMA TP", "speedup"
    );
    let mut pma1 = 0.0;
    let mut cpma1 = 0.0;
    for t in core_sweep(max_t) {
        let p = with_threads(t, || {
            range_query_throughput(&pma, queries, width, bits, seed ^ 7)
        });
        let c = with_threads(t, || {
            range_query_throughput(&cpma, queries, width, bits, seed ^ 7)
        });
        if t == 1 {
            pma1 = p;
            cpma1 = c;
        }
        println!(
            "{:>7} {:>12} {:>10.1} {:>12} {:>10.1}",
            t,
            sci(p),
            p / pma1,
            sci(c),
            c / cpma1
        );
        println!("csv,fig8,{t},{p},{c}");
    }
}
