//! Read-heavy leg: uniform point-lookup throughput (lookups/s) across the
//! head-layout menu, per-key vs batched.
//!
//! The flat baseline is `Pma`/`Cpma` with in-place heads — a classic
//! binary search over the head array, one unpredictable branch per level.
//! The menu rows replace that search with a cache-conscious auxiliary
//! layout (linear / Eytzinger / B-ary), and the batched columns add
//! sorted-probe routing with software prefetch and shared leaf decodes.
//! Expected shape: Eytzinger or B-ary batched lookups clear 2× the flat
//! per-key baseline once the head array outgrows the caches.
//!
//! Emits `BENCH_point.json` (one entry per layout × codec × mode);
//! `--quick` shrinks everything to CI-smoke scale.

use cpma_api::OrderedSet;
use cpma_bench::ubench::{black_box, Bencher};
use cpma_bench::{sci, time, Args};
use cpma_pma::{
    Cpma, CpmaBNary, CpmaEytzinger, CpmaLinear, Pma, PmaBNary, PmaEytzinger, PmaLinear,
};
use cpma_workloads::{dedup_sorted, uniform_keys};

/// Probe mix: half cold uniform keys (mostly misses at 40-bit density),
/// half sampled from the stored set (hits), shuffled together.
fn probe_mix(base: &[u64], probes: usize, bits: u32, seed: u64) -> Vec<u64> {
    let mut v = uniform_keys(probes, bits, seed ^ 0xF00D);
    let stride = (base.len() / (probes / 2).max(1)).max(1);
    for (slot, hit) in v.iter_mut().step_by(2).zip(base.iter().step_by(stride)) {
        *slot = *hit;
    }
    v
}

/// Lookups/s for the per-key loop and for chunked `contains_batch`
/// (the better of two passes each; the first pass doubles as warmup).
fn measure<S: OrderedSet<u64>>(s: &S, probes: &[u64], chunk: usize) -> (f64, f64) {
    let mut point = 0f64;
    let mut batched = 0f64;
    for _ in 0..2 {
        let (_, secs) = time(|| {
            let mut acc = 0usize;
            for &p in probes {
                acc += usize::from(s.contains(p));
            }
            black_box(acc)
        });
        point = point.max(probes.len() as f64 / secs);
        let (_, secs) = time(|| {
            let mut acc = 0usize;
            for c in probes.chunks(chunk) {
                acc += s.contains_batch(c).iter().filter(|&&h| h).count();
            }
            black_box(acc)
        });
        batched = batched.max(probes.len() as f64 / secs);
    }
    (point, batched)
}

fn main() {
    let args = Args::parse();
    let quick = args.flag("quick");
    let n: usize = args.get_or("n", if quick { 200_000 } else { 10_000_000 });
    let probes: usize = args.get_or("probes", if quick { 60_000 } else { 1_000_000 });
    let bits: u32 = args.get_or("bits", 40);
    // Default: the whole probe set as one batch — sorted routing then
    // visits leaves in address order, which is where batching pays.
    // `--chunk` bounds the batch size to model incremental callers.
    let chunk: usize = match args.get_or("chunk", 0) {
        0 => probes,
        c => c,
    };
    let seed: u64 = args.get_or("seed", 42);

    let base = dedup_sorted(uniform_keys(n, bits, seed));
    let mix = probe_mix(&base, probes, bits, seed);

    let b = Bencher::new();
    println!(
        "# point_lookup — uniform point lookups, {} stored keys, {probes} probes, batch chunk {chunk}",
        base.len()
    );
    println!(
        "{:>6} {:>10} {:>12} {:>12} {:>7}",
        "codec", "layout", "per-key/s", "batched/s", "vs flat"
    );

    // Flat per-key binary search is the baseline every row is scored
    // against (per codec).
    let mut flat_point = [0f64; 2];
    let mut best_batched = [0f64; 2];
    let mut row = |codec: usize, layout: &str, point: f64, batched: f64| {
        let codec_name = ["pma", "cpma"][codec];
        if layout == "inplace" {
            flat_point[codec] = point;
        }
        best_batched[codec] = best_batched[codec].max(batched);
        let speedup = batched / flat_point[codec].max(1e-12);
        println!(
            "{:>6} {:>10} {:>12} {:>12} {:>6.2}x",
            codec_name,
            layout,
            sci(point),
            sci(batched),
            speedup
        );
        println!("csv,point,{codec_name},{layout},{point},{batched}");
        for (mode, tput) in [("point", point), ("batched", batched)] {
            b.record(
                &format!("point/{codec_name}/{layout}/{mode}"),
                &[("n", base.len().to_string()), ("chunk", chunk.to_string())],
                if tput > 0.0 { 1.0 / tput } else { 0.0 },
            );
        }
    };

    {
        let s = Pma::<u64>::from_sorted(&base);
        let (p, ba) = measure(&s, &mix, chunk);
        row(0, "inplace", p, ba);
        let s = PmaLinear::<u64>::from_sorted(&base);
        let (p, ba) = measure(&s, &mix, chunk);
        row(0, "linear", p, ba);
        let s = PmaEytzinger::<u64>::from_sorted(&base);
        let (p, ba) = measure(&s, &mix, chunk);
        row(0, "eytzinger", p, ba);
        let s = PmaBNary::<u64>::from_sorted(&base);
        let (p, ba) = measure(&s, &mix, chunk);
        row(0, "bnary", p, ba);
    }
    {
        let s = Cpma::from_sorted(&base);
        let (p, ba) = measure(&s, &mix, chunk);
        row(1, "inplace", p, ba);
        let s = CpmaLinear::from_sorted(&base);
        let (p, ba) = measure(&s, &mix, chunk);
        row(1, "linear", p, ba);
        let s = CpmaEytzinger::from_sorted(&base);
        let (p, ba) = measure(&s, &mix, chunk);
        row(1, "eytzinger", p, ba);
        let s = CpmaBNary::from_sorted(&base);
        let (p, ba) = measure(&s, &mix, chunk);
        row(1, "bnary", p, ba);
    }

    println!(
        "# best batched vs flat per-key: PMA {:.2}x, CPMA {:.2}x",
        best_batched[0] / flat_point[0].max(1e-12),
        best_batched[1] / flat_point[1].max(1e-12)
    );

    b.write_json("point").expect("write BENCH_point.json");
}
