//! Table 3: serial vs parallel batch-insert throughput in the PMA, plus
//! the speedup decomposition (batch algorithm over point inserts, parallel
//! over serial).
//!
//! Paper setup: PMA starts at 1e8 elements, inserts 1e8 more. Expected
//! shape: serial batch insert beats serial point inserts once batches are
//! large (up to ~3×), and parallelism compounds on top as the batch grows.

use cpma_bench::{batch_sizes, max_threads, sci, time, with_threads, Args};
use cpma_pma::Pma;
use cpma_workloads::{dedup_sorted, uniform_keys};

fn point_insert_throughput(base: &[u64], stream: &[u64]) -> f64 {
    let mut s = Pma::<u64>::from_sorted(base);
    let (_, secs) = time(|| {
        for &k in stream {
            s.insert(k);
        }
    });
    stream.len() as f64 / secs
}

fn batch_insert_throughput(base: &[u64], stream: &[u64], batch: usize) -> f64 {
    let mut s = Pma::<u64>::from_sorted(base);
    let (_, secs) = time(|| {
        let mut scratch = Vec::new();
        for chunk in stream.chunks(batch) {
            scratch.clear();
            scratch.extend_from_slice(chunk);
            scratch.sort_unstable();
            scratch.dedup();
            s.insert_batch_sorted(&scratch);
        }
    });
    stream.len() as f64 / secs
}

fn main() {
    let args = Args::parse();
    let n: usize = args.get_or("n", 1_000_000);
    let bits: u32 = args.get_or("bits", 40);
    let max_exp: u32 = args.get_or("max-exp", 6);
    let seed: u64 = args.get_or("seed", 42);
    let threads = args.get_or("threads", max_threads());

    let base = dedup_sorted(uniform_keys(n, bits, seed));
    let stream = uniform_keys(n, bits, seed ^ 0xABCD);

    let point_tp = with_threads(1, || point_insert_throughput(&base, &stream));
    // The effective budget can be below `--threads` when CPMA_THREADS caps
    // the process; report it so a capped run cannot read as a scaling result.
    let effective = with_threads(threads, rayon::current_num_threads);
    println!(
        "# Table 3 — PMA batch inserts: serial vs parallel ({} base elements, {threads} threads, {effective} effective)",
        base.len()
    );
    println!(
        "# serial point-insert baseline: {} inserts/s",
        sci(point_tp)
    );
    println!(
        "{:>10} {:>12} {:>14} {:>12} {:>14} {:>9}",
        "batch", "serial TP", "vs ser. point", "parallel TP", "vs ser. batch", "overall"
    );
    for bs in batch_sizes(max_exp) {
        let serial = with_threads(1, || batch_insert_throughput(&base, &stream, bs));
        let parallel = with_threads(threads, || batch_insert_throughput(&base, &stream, bs));
        println!(
            "{:>10} {:>12} {:>14.1} {:>12} {:>14.1} {:>9.1}",
            bs,
            sci(serial),
            serial / point_tp,
            sci(parallel),
            parallel / serial,
            parallel / point_tp
        );
        println!("csv,table3,{bs},{serial},{parallel},{point_tp}");
    }
}
