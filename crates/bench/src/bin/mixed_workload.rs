//! `mixed_workload` — the mixed-op batch pipeline measurement: one
//! route→merge→count→redistribute pass (`apply_batch_sorted`) versus the
//! legacy remove-batch + insert-batch split on interleaved traffic.
//!
//! Sweeps insert:remove ratio × batch size × key distribution
//! (zipf/uniform/clustered) on the PMA, the CPMA, and the sharded CPMA.
//! Removes
//! target keys drawn from the base set (so they do real work); inserts
//! draw fresh keys from the distribution. Batch sizes sit in the
//! pipeline regime (well above the point cutoff, under the full-rebuild
//! threshold) — the regime the single pass exists for.
//!
//! Prints the usual human table + `csv,` lines, the CPMA's
//! `PmaStats` pipeline counters for the headline configuration, and
//! emits `BENCH_mixed.json` (one `single` and one `split` entry per
//! configuration, so the perf-trajectory diff shows the ratio).
//!
//! The clustered distribution doubles as the hybrid-leaf-codec
//! benchmark: a final section builds the clustered base under
//! `ForceCodec::Auto` (hybrid) and `ForceCodec::Delta` and records
//! bytes/element plus dense-region `range_sum` and scan throughput for
//! both, so the JSON shows the codec win (and the uniform rows guard
//! against regressions on the paper's main workload).
//!
//! `--quick` shrinks everything to CI-smoke scale.

use cpma_bench::ubench::Bencher;
use cpma_bench::{mixed_apply_throughput, mixed_split_throughput, sci, Args, BatchOp, RangeSet};
use cpma_pma::{Cpma, ForceCodec, Pma, PmaConfig};
use cpma_store::ShardedSet;
use cpma_workloads::{dedup_sorted, uniform_keys, ClusteredKeys, SplitMix64, ZipfGenerator};

/// Mean run length for the clustered distribution. Long enough that whole
/// leaves sit inside a run (a 256-byte leaf holds ~240 delta-coded elements
/// but ~1980 bitmap positions), so the hybrid codec's bitmap regime is
/// actually exercised.
const RUN_LEN: u64 = 1024;
/// Mean inter-run gap for the clustered distribution (keeps boundary
/// leaves sparse/delta-coded).
const MEAN_GAP: u64 = 1 << 22;

/// The base set for a distribution, sorted and distinct.
fn base_for(dist: &str, n: usize, seed: u64) -> Vec<u64> {
    match dist {
        "clustered" => ClusteredKeys::new(RUN_LEN, MEAN_GAP, seed ^ 0xBA5E).sorted(n),
        _ => dedup_sorted(uniform_keys(n, 34, seed ^ 0xBA5E)),
    }
}

/// An interleaved op stream: `insert_pct`% fresh-key inserts, the rest
/// removes of (uniformly drawn) base keys.
fn mixed_stream(
    dist: &str,
    base: &[u64],
    ops: usize,
    insert_pct: u64,
    seed: u64,
) -> Vec<BatchOp<u64>> {
    let fresh = match dist {
        "zipf" => ZipfGenerator::paper_config(seed ^ 0xF5E5).keys(ops),
        // Fresh clustered runs land beyond the base space so inserts keep
        // creating new dense regions instead of only backfilling old ones.
        "clustered" => ClusteredKeys::new(RUN_LEN, MEAN_GAP, seed ^ 0xF5E5)
            .starting_at(1 << 45)
            .shuffled(ops),
        _ => uniform_keys(ops, 34, seed ^ 0xF5E5),
    };
    let mut rng = SplitMix64::new(seed);
    (0..ops)
        .map(|i| {
            if rng.next_below(100) < insert_pct {
                BatchOp::Insert(fresh[i])
            } else {
                BatchOp::Remove(base[rng.next_below(base.len() as u64) as usize])
            }
        })
        .collect()
}

#[allow(clippy::too_many_arguments)]
fn report(
    b: &Bencher,
    structure: &str,
    path: &str,
    dist: &str,
    insert_pct: u64,
    batch: usize,
    throughput: f64,
) {
    println!("csv,mixed,{structure},{path},{dist},{insert_pct},{batch},{throughput}");
    b.record(
        &format!("mixed/{structure}/{path}"),
        &[
            ("dist", dist.to_string()),
            ("insert_pct", insert_pct.to_string()),
            ("batch", batch.to_string()),
        ],
        if throughput > 0.0 {
            1.0 / throughput
        } else {
            0.0
        },
    );
}

fn main() {
    let args = Args::parse();
    let quick = args.flag("quick");
    let base_n: usize = args.get_or("base", if quick { 60_000 } else { 1_000_000 });
    let ops: usize = args.get_or("ops", if quick { 20_000 } else { 400_000 });
    let seed: u64 = args.get_or("seed", 42);

    let batch_sweep: &[usize] = if quick {
        &[1_024, 4_096]
    } else {
        &[1_000, 10_000, 100_000]
    };
    let ratio_sweep = [50u64, 90];

    let b = Bencher::new();
    println!(
        "# mixed_workload — interleaved insert/remove batches, single-pass vs split \
         (~{base_n} base elements, {ops} ops)"
    );
    println!(
        "{:>8} {:>10} {:>10} {:>8} {:>12} {:>12} {:>7}",
        "struct", "dist", "ins:rem", "batch", "single", "split", "ratio"
    );
    for dist in ["zipf", "uniform", "clustered"] {
        let base = base_for(dist, base_n, seed);
        for &insert_pct in &ratio_sweep {
            let stream = mixed_stream(dist, &base, ops, insert_pct, seed);
            for &batch in batch_sweep {
                let row = |structure: &str, single: f64, split: f64| {
                    report(&b, structure, "single", dist, insert_pct, batch, single);
                    report(&b, structure, "split", dist, insert_pct, batch, split);
                    println!(
                        "{:>8} {:>10} {:>7}:{:<2} {:>8} {:>12} {:>12} {:>6.2}x",
                        structure,
                        dist,
                        insert_pct,
                        100 - insert_pct,
                        batch,
                        sci(single),
                        sci(split),
                        single / split
                    );
                };
                let single = mixed_apply_throughput::<Pma<u64>>(&base, &stream, batch);
                let split = mixed_split_throughput::<Pma<u64>>(&base, &stream, batch);
                row("PMA", single, split);
                let single = mixed_apply_throughput::<Cpma>(&base, &stream, batch);
                let split = mixed_split_throughput::<Cpma>(&base, &stream, batch);
                row("CPMA", single, split);
                let single = mixed_apply_throughput::<ShardedSet<Cpma, 8>>(&base, &stream, batch);
                let split = mixed_split_throughput::<ShardedSet<Cpma, 8>>(&base, &stream, batch);
                row("Sharded", single, split);
            }
        }
    }

    // Pipeline counters for the headline configuration (CPMA, zipf,
    // 50:50, middle batch size): what the single pass actually touched.
    let base = base_for("zipf", base_n, seed);
    let stream = mixed_stream("zipf", &base, ops, 50, seed);
    let batch = batch_sweep[batch_sweep.len() / 2];
    let mut probe = Cpma::from_sorted(&base);
    probe.reset_stats();
    let mut scratch: Vec<BatchOp<u64>> = Vec::new();
    for chunk in stream.chunks(batch) {
        scratch.clear();
        scratch.extend_from_slice(chunk);
        let norm = cpma_bench::normalize_ops(&mut scratch);
        probe.apply_batch_sorted(norm);
    }
    println!(
        "# CPMA stats (zipf 50:50, batch {batch}): {}",
        probe.stats().summary()
    );

    // Observability overhead sweep on the headline pipeline-regime
    // configuration: timing (spans + latency histograms) on vs off. The
    // deterministic counters stay on in both arms — they are the always-on
    // cost — so this isolates the clock reads and histogram records the
    // timing side adds. Acceptance: < 5% overhead.
    let mut arms = [0.0f64; 2];
    for (i, on) in [false, true].into_iter().enumerate() {
        cpma_obs::set_timing_enabled(on);
        // Median of a few runs: single runs of this harness are noisy.
        let runs = if quick { 3 } else { 5 };
        let mut samples: Vec<f64> = (0..runs)
            .map(|_| mixed_apply_throughput::<Cpma>(&base, &stream, batch))
            .collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[samples.len() / 2];
        arms[i] = median;
        let label = if on { "on" } else { "off" };
        println!("csv,mixed_obs,{label},{median}");
        b.record(
            "mixed/CPMA/obs_sweep",
            &[
                ("obs", label.to_string()),
                ("dist", "zipf".to_string()),
                ("insert_pct", "50".to_string()),
                ("batch", batch.to_string()),
            ],
            if median > 0.0 { 1.0 / median } else { 0.0 },
        );
    }
    cpma_obs::set_timing_enabled(true);
    let overhead_pct = if arms[1] > 0.0 {
        (arms[0] / arms[1] - 1.0) * 100.0
    } else {
        0.0
    };
    println!(
        "# obs overhead (timing on vs off, zipf 50:50, batch {batch}): \
         off {} ops/s, on {} ops/s, overhead {overhead_pct:.2}%",
        sci(arms[0]),
        sci(arms[1]),
    );

    // Hybrid leaf codec vs pure delta on the clustered base: the space and
    // dense-region read claims behind the bitmap leaves. `range_sum`
    // queries and scans are anchored at existing keys, so they land inside
    // dense runs — the regime the popcount kernels are built for. Each
    // codec also reports bytes/element (recorded with `secs_per_op` set so
    // the value lands in `median_ns_per_op` verbatim).
    let cl_base = base_for("clustered", base_n, seed);
    let queries = if quick { 2_000 } else { 20_000 };
    println!(
        "# hybrid codec on clustered base ({} elements, run_len {RUN_LEN}): \
         bytes/elem + dense range_sum/scan",
        cl_base.len()
    );
    for force in [ForceCodec::Auto, ForceCodec::Delta] {
        let codec = match force {
            ForceCodec::Auto => "hybrid",
            _ => "delta",
        };
        let cfg = PmaConfig::builder().force_codec(force).build().unwrap();
        let mut s = Cpma::with_config(cfg);
        let mut batch = cl_base.clone();
        s.insert_batch(&mut batch, true);
        let bpe = s.size_bytes() as f64 / s.len() as f64;
        let sum_tp = dense_range_sum_throughput(&s, &cl_base, queries, 8 * RUN_LEN, seed);
        let scan_tp = dense_scan_throughput(&s, &cl_base, queries / 4, 4 * RUN_LEN, seed);
        let (d, m) = s.storage().codec_census();
        println!("csv,mixed_codec,{codec},{bpe:.3},{sum_tp},{scan_tp},{d},{m}");
        println!(
            "#   {codec:>6}: {bpe:.3} B/elem, range_sum {} q/s, scan {} elem/s \
             ({d} delta / {m} bitmap leaves)",
            sci(sum_tp),
            sci(scan_tp),
        );
        let params = [
            ("dist", "clustered".to_string()),
            ("codec", codec.to_string()),
        ];
        b.record("mixed/CPMA/codec_bytes_per_elem", &params, bpe * 1e-9);
        b.record(
            "mixed/CPMA/codec_range_sum",
            &params,
            if sum_tp > 0.0 { 1.0 / sum_tp } else { 0.0 },
        );
        b.record(
            "mixed/CPMA/codec_scan",
            &params,
            if scan_tp > 0.0 { 1.0 / scan_tp } else { 0.0 },
        );
    }

    b.write_json("mixed").expect("write BENCH_mixed.json");
    cpma_bench::ubench::write_metrics_json().expect("write METRICS.json");
}

/// `range_sum` throughput (queries/sec) over windows anchored at existing
/// base keys — every query starts inside a dense run.
fn dense_range_sum_throughput(
    s: &Cpma,
    base: &[u64],
    queries: usize,
    width: u64,
    seed: u64,
) -> f64 {
    let mut rng = SplitMix64::new(seed ^ 0xD105);
    let starts: Vec<u64> = (0..queries)
        .map(|_| base[rng.next_below(base.len() as u64) as usize])
        .collect();
    let mut sink = 0u64;
    let (_, secs) = cpma_bench::time(|| {
        for &lo in &starts {
            sink = sink.wrapping_add(s.range_sum(lo..lo.saturating_add(width)));
        }
    });
    std::hint::black_box(sink);
    queries as f64 / secs
}

/// Scan (`for_range` visit) throughput in elements/sec over dense windows.
fn dense_scan_throughput(s: &Cpma, base: &[u64], queries: usize, width: u64, seed: u64) -> f64 {
    let mut rng = SplitMix64::new(seed ^ 0x5CA9);
    let starts: Vec<u64> = (0..queries)
        .map(|_| base[rng.next_below(base.len() as u64) as usize])
        .collect();
    let mut visited = 0u64;
    let mut sink = 0u64;
    let (_, secs) = cpma_bench::time(|| {
        for &lo in &starts {
            s.for_range(lo..lo.saturating_add(width), |k| {
                visited += 1;
                sink ^= k;
            });
        }
    });
    std::hint::black_box(sink);
    visited as f64 / secs
}
