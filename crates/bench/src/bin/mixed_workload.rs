//! `mixed_workload` — the mixed-op batch pipeline measurement: one
//! route→merge→count→redistribute pass (`apply_batch_sorted`) versus the
//! legacy remove-batch + insert-batch split on interleaved traffic.
//!
//! Sweeps insert:remove ratio × batch size × key distribution
//! (zipf/uniform) on the PMA, the CPMA, and the sharded CPMA. Removes
//! target keys drawn from the base set (so they do real work); inserts
//! draw fresh keys from the distribution. Batch sizes sit in the
//! pipeline regime (well above the point cutoff, under the full-rebuild
//! threshold) — the regime the single pass exists for.
//!
//! Prints the usual human table + `csv,` lines, the CPMA's
//! `PmaStats` pipeline counters for the headline configuration, and
//! emits `BENCH_mixed.json` (one `single` and one `split` entry per
//! configuration, so the perf-trajectory diff shows the ratio).
//!
//! `--quick` shrinks everything to CI-smoke scale.

use cpma_bench::ubench::Bencher;
use cpma_bench::{mixed_apply_throughput, mixed_split_throughput, sci, Args, BatchOp};
use cpma_pma::{Cpma, Pma};
use cpma_store::ShardedSet;
use cpma_workloads::{dedup_sorted, uniform_keys, SplitMix64, ZipfGenerator};

/// An interleaved op stream: `insert_pct`% fresh-key inserts, the rest
/// removes of (uniformly drawn) base keys.
fn mixed_stream(
    dist: &str,
    base: &[u64],
    ops: usize,
    insert_pct: u64,
    seed: u64,
) -> Vec<BatchOp<u64>> {
    let fresh = match dist {
        "zipf" => ZipfGenerator::paper_config(seed ^ 0xF5E5).keys(ops),
        _ => uniform_keys(ops, 34, seed ^ 0xF5E5),
    };
    let mut rng = SplitMix64::new(seed);
    (0..ops)
        .map(|i| {
            if rng.next_below(100) < insert_pct {
                BatchOp::Insert(fresh[i])
            } else {
                BatchOp::Remove(base[rng.next_below(base.len() as u64) as usize])
            }
        })
        .collect()
}

#[allow(clippy::too_many_arguments)]
fn report(
    b: &Bencher,
    structure: &str,
    path: &str,
    dist: &str,
    insert_pct: u64,
    batch: usize,
    throughput: f64,
) {
    println!("csv,mixed,{structure},{path},{dist},{insert_pct},{batch},{throughput}");
    b.record(
        &format!("mixed/{structure}/{path}"),
        &[
            ("dist", dist.to_string()),
            ("insert_pct", insert_pct.to_string()),
            ("batch", batch.to_string()),
        ],
        if throughput > 0.0 {
            1.0 / throughput
        } else {
            0.0
        },
    );
}

fn main() {
    let args = Args::parse();
    let quick = args.flag("quick");
    let base_n: usize = args.get_or("base", if quick { 60_000 } else { 1_000_000 });
    let ops: usize = args.get_or("ops", if quick { 20_000 } else { 400_000 });
    let seed: u64 = args.get_or("seed", 42);

    let base = dedup_sorted(uniform_keys(base_n, 34, seed ^ 0xBA5E));
    let batch_sweep: &[usize] = if quick {
        &[1_024, 4_096]
    } else {
        &[1_000, 10_000, 100_000]
    };
    let ratio_sweep = [50u64, 90];

    let b = Bencher::new();
    println!(
        "# mixed_workload — interleaved insert/remove batches, single-pass vs split \
         ({} base elements, {ops} ops)",
        base.len()
    );
    println!(
        "{:>8} {:>8} {:>10} {:>8} {:>12} {:>12} {:>7}",
        "struct", "dist", "ins:rem", "batch", "single", "split", "ratio"
    );
    for dist in ["zipf", "uniform"] {
        for &insert_pct in &ratio_sweep {
            let stream = mixed_stream(dist, &base, ops, insert_pct, seed);
            for &batch in batch_sweep {
                let row = |structure: &str, single: f64, split: f64| {
                    report(&b, structure, "single", dist, insert_pct, batch, single);
                    report(&b, structure, "split", dist, insert_pct, batch, split);
                    println!(
                        "{:>8} {:>8} {:>7}:{:<2} {:>8} {:>12} {:>12} {:>6.2}x",
                        structure,
                        dist,
                        insert_pct,
                        100 - insert_pct,
                        batch,
                        sci(single),
                        sci(split),
                        single / split
                    );
                };
                let single = mixed_apply_throughput::<Pma<u64>>(&base, &stream, batch);
                let split = mixed_split_throughput::<Pma<u64>>(&base, &stream, batch);
                row("PMA", single, split);
                let single = mixed_apply_throughput::<Cpma>(&base, &stream, batch);
                let split = mixed_split_throughput::<Cpma>(&base, &stream, batch);
                row("CPMA", single, split);
                let single = mixed_apply_throughput::<ShardedSet<Cpma, 8>>(&base, &stream, batch);
                let split = mixed_split_throughput::<ShardedSet<Cpma, 8>>(&base, &stream, batch);
                row("Sharded", single, split);
            }
        }
    }

    // Pipeline counters for the headline configuration (CPMA, zipf,
    // 50:50, middle batch size): what the single pass actually touched.
    let stream = mixed_stream("zipf", &base, ops, 50, seed);
    let batch = batch_sweep[batch_sweep.len() / 2];
    let mut probe = Cpma::from_sorted(&base);
    probe.reset_stats();
    let mut scratch: Vec<BatchOp<u64>> = Vec::new();
    for chunk in stream.chunks(batch) {
        scratch.clear();
        scratch.extend_from_slice(chunk);
        let norm = cpma_bench::normalize_ops(&mut scratch);
        probe.apply_batch_sorted(norm);
    }
    println!(
        "# CPMA stats (zipf 50:50, batch {batch}): {}",
        probe.stats().summary()
    );

    // Observability overhead sweep on the headline pipeline-regime
    // configuration: timing (spans + latency histograms) on vs off. The
    // deterministic counters stay on in both arms — they are the always-on
    // cost — so this isolates the clock reads and histogram records the
    // timing side adds. Acceptance: < 5% overhead.
    let mut arms = [0.0f64; 2];
    for (i, on) in [false, true].into_iter().enumerate() {
        cpma_obs::set_timing_enabled(on);
        // Median of a few runs: single runs of this harness are noisy.
        let runs = if quick { 3 } else { 5 };
        let mut samples: Vec<f64> = (0..runs)
            .map(|_| mixed_apply_throughput::<Cpma>(&base, &stream, batch))
            .collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[samples.len() / 2];
        arms[i] = median;
        let label = if on { "on" } else { "off" };
        println!("csv,mixed_obs,{label},{median}");
        b.record(
            "mixed/CPMA/obs_sweep",
            &[
                ("obs", label.to_string()),
                ("dist", "zipf".to_string()),
                ("insert_pct", "50".to_string()),
                ("batch", batch.to_string()),
            ],
            if median > 0.0 { 1.0 / median } else { 0.0 },
        );
    }
    cpma_obs::set_timing_enabled(true);
    let overhead_pct = if arms[1] > 0.0 {
        (arms[0] / arms[1] - 1.0) * 100.0
    } else {
        0.0
    };
    println!(
        "# obs overhead (timing on vs off, zipf 50:50, batch {batch}): \
         off {} ops/s, on {} ops/s, overhead {overhead_pct:.2}%",
        sci(arms[0]),
        sci(arms[1]),
    );

    b.write_json("mixed").expect("write BENCH_mixed.json");
    cpma_bench::ubench::write_metrics_json().expect("write METRICS.json");
}
