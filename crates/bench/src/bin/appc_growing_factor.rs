//! Appendix C (Figures 12–13): growing-factor sensitivity of the CPMA.
//!
//! Paper setup: factors 1.1×…2.0×, fill an empty CPMA with 1000 batches of
//! 1e6; after each batch record the size and a full-scan time. Expected
//! shape: smaller factors → smaller average footprint and faster average
//! scans; insert throughput peaks at a middle factor (~1.5×) — small
//! factors re-copy too often, large factors search/rebalance bigger arrays.

use cpma_bench::{sci, time, Args};
use cpma_pma::{Cpma, PmaConfig};
use cpma_workloads::uniform_keys;

fn main() {
    let args = Args::parse();
    let total: usize = args.get_or("n", 2_000_000);
    let batches: usize = args.get_or("batches", 100);
    let bits: u32 = args.get_or("bits", 40);
    let seed: u64 = args.get_or("seed", 42);

    let stream = uniform_keys(total, bits, seed);
    let batch = (total / batches).max(1);

    println!("# Appendix C — growing-factor sensitivity ({total} inserts, batches of {batch})");
    println!(
        "{:>7} {:>12} {:>14} {:>14} {:>14}",
        "factor", "insert TP", "avg B/elt", "max B/elt", "avg scan ns/elt"
    );
    for f10 in [11u32, 12, 14, 15, 17, 20] {
        let factor = f10 as f64 / 10.0;
        let cfg = PmaConfig {
            growing_factor: factor,
            ..Default::default()
        };
        let mut c = Cpma::with_config(cfg);
        let mut sizes = Vec::new();
        let mut scan_ns = Vec::new();
        let (_, secs) = time(|| {
            for chunk in stream.chunks(batch) {
                let mut b = chunk.to_vec();
                c.insert_batch(&mut b, false);
                sizes.push(c.size_bytes() as f64 / c.len().max(1) as f64);
            }
        });
        // Scan probes after each 10% of fill would be costly inside the
        // timed loop; probe the final structure instead, plus the recorded
        // per-batch sizes.
        for _ in 0..3 {
            let (_, s) = time(|| c.sum());
            scan_ns.push(s * 1e9 / c.len().max(1) as f64);
        }
        let tp = total as f64 / secs;
        let avg_size = sizes.iter().sum::<f64>() / sizes.len() as f64;
        let max_size = sizes.iter().cloned().fold(0.0, f64::max);
        let avg_scan = scan_ns.iter().sum::<f64>() / scan_ns.len() as f64;
        println!(
            "{:>7.1} {:>12} {:>14.2} {:>14.2} {:>14.2}",
            factor,
            sci(tp),
            avg_size,
            max_size,
            avg_scan
        );
        println!("csv,appc,{factor},{tp},{avg_size},{max_size},{avg_scan}");
    }
}
