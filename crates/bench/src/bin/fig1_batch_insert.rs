//! Figure 1 / Table 9: parallel batch-insert throughput vs batch size for
//! PMA, CPMA, U-PaC, C-PaC, and P-trees on 40-bit uniform keys.
//!
//! Paper setup: structures start with 1e8 elements and absorb another 1e8.
//! Defaults here are laptop-scale; pass `--n 100000000` to match the paper.
//!
//! Expected shape (Table 9): the PMA/CPMA dominate at small and medium
//! batches (shared search + skipped redistributions); the trees close the
//! gap at the largest batches where bulk rebuilds amortize.

use cpma_bench::{batch_sizes, insert_throughput, sci, Args};
use cpma_workloads::{dedup_sorted, uniform_keys};

fn main() {
    let args = Args::parse();
    let n: usize = args.get_or("n", 1_000_000);
    let bits: u32 = args.get_or("bits", 40);
    let max_exp: u32 = args.get_or("max-exp", 6);
    let seed: u64 = args.get_or("seed", 42);

    let base = dedup_sorted(uniform_keys(n, bits, seed));
    let stream = uniform_keys(n, bits, seed ^ 0xABCD);
    println!(
        "# Figure 1 / Table 9 — batch-insert throughput (inserts/s), {} base elements, {}-bit uniform keys",
        base.len(),
        bits
    );
    println!(
        "{:>10} {:>10} {:>10} {:>10} {:>10} {:>10}  {:>9} {:>9}",
        "batch", "P-tree", "U-PaC", "PMA", "C-PaC", "CPMA", "PMA/U-PaC", "CPMA/C-PaC"
    );
    for bs in batch_sizes(max_exp) {
        let ptree = insert_throughput::<cpma_baselines::PTree>(&base, &stream, bs);
        let upac = insert_throughput::<cpma_baselines::UPac>(&base, &stream, bs);
        let pma = insert_throughput::<cpma_pma::Pma<u64>>(&base, &stream, bs);
        let cpac = insert_throughput::<cpma_baselines::CPac>(&base, &stream, bs);
        let cpma = insert_throughput::<cpma_pma::Cpma>(&base, &stream, bs);
        println!(
            "{:>10} {:>10} {:>10} {:>10} {:>10} {:>10}  {:>9.2} {:>9.2}",
            bs,
            sci(ptree),
            sci(upac),
            sci(pma),
            sci(cpac),
            sci(cpma),
            pma / upac,
            cpma / cpac
        );
        println!("csv,fig1,{bs},{ptree},{upac},{pma},{cpac},{cpma}");
    }
}
