//! Table 5: parallel batch inserts AND deletes, uniform and zipfian, for
//! the PMA and CPMA, with delete/insert ratios.
//!
//! Expected shape: deletes outrun inserts (no overflow buffers to
//! allocate, ~1.5–2× at large batches), and zipfian batches beat uniform
//! ones at equal size (shared search work — "the batch-parallel PMA is
//! well-suited for the case of all insertions targeting the same leaf").

use cpma_bench::{batch_sizes, delete_throughput, insert_throughput, sci, Args};
use cpma_workloads::{dedup_sorted, uniform_keys, ZipfGenerator};

fn main() {
    let args = Args::parse();
    let n: usize = args.get_or("n", 1_000_000);
    let bits: u32 = args.get_or("bits", 40);
    let max_exp: u32 = args.get_or("max-exp", 6);
    let seed: u64 = args.get_or("seed", 42);

    let base = dedup_sorted(uniform_keys(n, bits, seed));
    let uniform = uniform_keys(n, bits, seed ^ 0xABCD);
    let zipf = ZipfGenerator::paper_config(seed ^ 0x2222).keys(n);

    for (dist, stream) in [("uniform", &uniform), ("zipfian", &zipf)] {
        println!(
            "# Table 5 ({dist}) — batch updates/s, PMA and CPMA, {} base elements",
            base.len()
        );
        println!(
            "{:>10} {:>10} {:>10} {:>5} {:>10} {:>10} {:>5}",
            "batch", "PMA ins", "PMA del", "D/I", "CPMA ins", "CPMA del", "D/I"
        );
        for bs in batch_sizes(max_exp) {
            let pi = insert_throughput::<cpma_pma::Pma<u64>>(&base, stream, bs);
            let pd = delete_throughput::<cpma_pma::Pma<u64>>(&base, stream, bs);
            let ci = insert_throughput::<cpma_pma::Cpma>(&base, stream, bs);
            let cd = delete_throughput::<cpma_pma::Cpma>(&base, stream, bs);
            println!(
                "{:>10} {:>10} {:>10} {:>5.1} {:>10} {:>10} {:>5.1}",
                bs,
                sci(pi),
                sci(pd),
                pd / pi,
                sci(ci),
                sci(cd),
                cd / ci
            );
            println!("csv,table5,{dist},{bs},{pi},{pd},{ci},{cd}");
        }
    }

    // Pipeline counters for one representative stream (CPMA, uniform,
    // largest batch size): how much routing/merging/redistribution the
    // one-sided batches actually did.
    let bs = 10usize.pow(max_exp);
    let mut probe = cpma_pma::Cpma::from_sorted(&base);
    probe.reset_stats();
    let mut scratch = Vec::new();
    for chunk in uniform.chunks(bs) {
        scratch.clear();
        scratch.extend_from_slice(chunk);
        let b = cpma_bench::normalize_batch(&mut scratch);
        probe.insert_batch_sorted(b);
    }
    println!(
        "# CPMA stats (uniform inserts, batch {bs}): {}",
        probe.stats().summary()
    );
}
