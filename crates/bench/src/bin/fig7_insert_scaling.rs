//! Figure 7 / Table 11: strong scaling of batch inserts in the PMA and
//! CPMA.
//!
//! Paper setup: start at 1e8 elements, apply 100 batches of 1e6, core
//! counts 1…64 + hyperthreads. Expected shape: both scale; the CPMA scales
//! *further* (compression stretches memory bandwidth), overtaking the PMA
//! once enough cores contend for bandwidth.

use cpma_bench::{
    core_sweep, max_threads, normalize_batch, sci, time, with_threads, Args, BatchSet,
};
use cpma_workloads::{dedup_sorted, uniform_keys};

fn run<S: BatchSet<u64> + Send>(base: &[u64], stream: &[u64], batch: usize) -> f64 {
    let mut s = S::build_sorted(base);
    let (_, secs) = time(|| {
        let mut scratch = Vec::new();
        for chunk in stream.chunks(batch) {
            scratch.clear();
            scratch.extend_from_slice(chunk);
            let b = normalize_batch(&mut scratch);
            s.insert_batch_sorted(b);
        }
    });
    stream.len() as f64 / secs
}

fn main() {
    let args = Args::parse();
    let n: usize = args.get_or("n", 1_000_000);
    let batch: usize = args.get_or("batch", (n / 100).max(1));
    let bits: u32 = args.get_or("bits", 40);
    let seed: u64 = args.get_or("seed", 42);
    let max_t = args.get_or("threads", max_threads());

    let base = dedup_sorted(uniform_keys(n, bits, seed));
    let stream = uniform_keys(n, bits, seed ^ 0xABCD);

    println!(
        "# Figure 7 / Table 11 — batch-insert strong scaling ({} base, batches of {batch})",
        base.len()
    );
    println!(
        "{:>7} {:>12} {:>10} {:>12} {:>10}",
        "cores", "PMA TP", "speedup", "CPMA TP", "speedup"
    );
    let mut pma1 = 0.0;
    let mut cpma1 = 0.0;
    for t in core_sweep(max_t) {
        let pma = with_threads(t, || run::<cpma_pma::Pma<u64>>(&base, &stream, batch));
        let cpma = with_threads(t, || run::<cpma_pma::Cpma>(&base, &stream, batch));
        if t == 1 {
            pma1 = pma;
            cpma1 = cpma;
        }
        println!(
            "{:>7} {:>12} {:>10.1} {:>12} {:>10.1}",
            t,
            sci(pma),
            pma / pma1,
            sci(cpma),
            cpma / cpma1
        );
        println!("csv,fig7,{t},{pma},{cpma}");
    }
}
