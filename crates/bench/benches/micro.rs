//! Microbenchmarks for the point operations and codecs: the
//! regression-style counterpart to the table/figure harness binaries.
//! Runs on the in-repo `ubench` harness (`cargo bench -p cpma-bench`).

use cpma_bench::ubench::{black_box, Bencher};
use cpma_pma::{codec, Cpma, Pma};
use cpma_workloads::{dedup_sorted, uniform_keys};

fn bench_codec(b: &Bencher) {
    let elems = dedup_sorted(uniform_keys(10_000, 40, 1));
    let len = codec::encoded_run_len(&elems, 8);
    let mut buf = vec![0u8; len];
    b.bench("codec/encode_10k", || {
        codec::encode_run(black_box(&elems), &mut buf);
    });
    codec::encode_run(&elems, &mut buf);
    b.bench("codec/decode_10k", || {
        let mut out = Vec::with_capacity(elems.len());
        codec::decode_run(black_box(&buf), elems.len(), &mut out);
        black_box(out);
    });
}

fn bench_point_ops(b: &Bencher) {
    let base = dedup_sorted(uniform_keys(100_000, 40, 2));
    let probes = uniform_keys(1_000, 40, 3);
    let pma = Pma::<u64>::from_sorted(&base);
    let cpma = Cpma::from_sorted(&base);
    b.bench("point/pma_search_1k", || {
        black_box(probes.iter().filter(|&&k| pma.has(black_box(k))).count());
    });
    b.bench("point/cpma_search_1k", || {
        black_box(probes.iter().filter(|&&k| cpma.has(black_box(k))).count());
    });
    let mut p = Pma::<u64>::from_sorted(&base);
    b.bench("point/pma_insert_remove_1k", || {
        for &k in &probes {
            p.insert(k);
        }
        for &k in &probes {
            p.remove(k);
        }
    });
    let mut c = Cpma::from_sorted(&base);
    b.bench("point/cpma_insert_remove_1k", || {
        for &k in &probes {
            c.insert(k);
        }
        for &k in &probes {
            c.remove(k);
        }
    });
}

fn bench_scans(b: &Bencher) {
    use cpma_bench::RangeSet;
    let base = dedup_sorted(uniform_keys(200_000, 40, 4));
    let pma = Pma::<u64>::from_sorted(&base);
    let cpma = Cpma::from_sorted(&base);
    b.bench("scan/pma_sum", || {
        black_box(black_box(&pma).sum());
    });
    b.bench("scan/cpma_sum", || {
        black_box(black_box(&cpma).sum());
    });
    b.bench("scan/cpma_range_sum_1pct", || {
        black_box(black_box(&cpma).range_sum((1u64 << 30)..(1u64 << 30) + (1u64 << 40) / 100));
    });
}

fn main() {
    let b = Bencher::new();
    bench_codec(&b);
    bench_point_ops(&b);
    bench_scans(&b);
    b.write_json("micro").expect("write BENCH_micro.json");
}
