//! Criterion microbenchmarks for the point operations and codecs: the
//! regression-style counterpart to the table/figure harness binaries.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use cpma_pma::{codec, Cpma, Pma};
use cpma_workloads::{dedup_sorted, uniform_keys};

fn bench_codec(c: &mut Criterion) {
    let elems = dedup_sorted(uniform_keys(10_000, 40, 1));
    let len = codec::encoded_run_len(&elems, 8);
    let mut buf = vec![0u8; len];
    c.bench_function("codec/encode_10k", |b| {
        b.iter(|| codec::encode_run(black_box(&elems), &mut buf))
    });
    codec::encode_run(&elems, &mut buf);
    c.bench_function("codec/decode_10k", |b| {
        b.iter(|| {
            let mut out = Vec::with_capacity(elems.len());
            codec::decode_run(black_box(&buf), elems.len(), &mut out);
            out
        })
    });
}

fn bench_point_ops(c: &mut Criterion) {
    let base = dedup_sorted(uniform_keys(100_000, 40, 2));
    let probes = uniform_keys(1_000, 40, 3);
    let pma = Pma::<u64>::from_sorted(&base);
    let cpma = Cpma::from_sorted(&base);
    c.bench_function("point/pma_search", |b| {
        b.iter(|| probes.iter().filter(|&&k| pma.has(black_box(k))).count())
    });
    c.bench_function("point/cpma_search", |b| {
        b.iter(|| probes.iter().filter(|&&k| cpma.has(black_box(k))).count())
    });
    c.bench_function("point/pma_insert_remove", |b| {
        let mut p = Pma::<u64>::from_sorted(&base);
        b.iter(|| {
            for &k in &probes {
                p.insert(k);
            }
            for &k in &probes {
                p.remove(k);
            }
        })
    });
    c.bench_function("point/cpma_insert_remove", |b| {
        let mut p = Cpma::from_sorted(&base);
        b.iter(|| {
            for &k in &probes {
                p.insert(k);
            }
            for &k in &probes {
                p.remove(k);
            }
        })
    });
}

fn bench_scans(c: &mut Criterion) {
    let base = dedup_sorted(uniform_keys(200_000, 40, 4));
    let pma = Pma::<u64>::from_sorted(&base);
    let cpma = Cpma::from_sorted(&base);
    c.bench_function("scan/pma_sum", |b| b.iter(|| black_box(&pma).sum()));
    c.bench_function("scan/cpma_sum", |b| b.iter(|| black_box(&cpma).sum()));
    c.bench_function("scan/cpma_range_sum_1pct", |b| {
        b.iter(|| black_box(&cpma).range_sum(1 << 30, (1 << 30) + (1u64 << 40) / 100))
    });
}

criterion_group!(benches, bench_codec, bench_point_ops, bench_scans);
criterion_main!(benches);
