//! Benchmarks for the graph layer: snapshot (offset rebuild) cost, the
//! three paper kernels on F-Graph, and edge-batch ingestion. Runs on the
//! in-repo `ubench` harness.

use cpma_bench::ubench::{black_box, Bencher};
use cpma_fgraph::algos::{bc, cc, pagerank};
use cpma_fgraph::FGraph;
use cpma_workloads::RmatGenerator;

fn main() {
    let b = Bencher::new();
    let scale = 12u32;
    let v = 1usize << scale;
    let edges = RmatGenerator::paper_config(scale, 7).undirected_graph(v * 10);

    let g = FGraph::from_edges(v, &edges);
    b.bench("graph/snapshot_rebuild", || {
        black_box(g.snapshot().aux_bytes());
    });
    b.bench("graph/pagerank10", || {
        black_box(pagerank(&g.snapshot(), 10));
    });
    b.bench("graph/cc", || {
        black_box(cc(&g.snapshot()));
    });
    b.bench("graph/bc", || {
        black_box(bc(&g.snapshot(), 0));
    });

    let stream = RmatGenerator::paper_config(12, 99).directed_edges(10_000);
    b.bench_batched(
        "graph/insert_10k_edges",
        || (FGraph::from_edges(v, &edges), stream.clone()),
        |(mut g, mut s)| {
            black_box(g.insert_edges(&mut s, false));
        },
    );
    b.write_json("graph").expect("write BENCH_graph.json");
}
