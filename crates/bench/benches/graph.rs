//! Criterion benchmarks for the graph layer: snapshot (offset rebuild)
//! cost, the three paper kernels on F-Graph, and edge-batch ingestion.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use cpma_fgraph::algos::{bc, cc, pagerank};
use cpma_fgraph::FGraph;
use cpma_workloads::RmatGenerator;

fn setup() -> (usize, Vec<u64>) {
    let scale = 12u32;
    let v = 1usize << scale;
    let edges = RmatGenerator::paper_config(scale, 7).undirected_graph(v * 10);
    (v, edges)
}

fn bench_graph(c: &mut Criterion) {
    let (v, edges) = setup();
    let g = FGraph::from_edges(v, &edges);
    c.bench_function("graph/snapshot_rebuild", |b| b.iter(|| g.snapshot().aux_bytes()));
    c.bench_function("graph/pagerank10", |b| b.iter(|| pagerank(&g.snapshot(), 10)));
    c.bench_function("graph/cc", |b| b.iter(|| cc(&g.snapshot())));
    c.bench_function("graph/bc", |b| b.iter(|| bc(&g.snapshot(), 0)));

    let stream = RmatGenerator::paper_config(12, 99).directed_edges(10_000);
    c.bench_function("graph/insert_10k_edges", |b| {
        b.iter_batched(
            || (FGraph::from_edges(v, &edges), stream.clone()),
            |(mut g, mut s)| g.insert_edges(&mut s, false),
            BatchSize::LargeInput,
        )
    });
}

criterion_group!(benches, bench_graph);
criterion_main!(benches);
