//! Criterion benchmarks for the batch-update algorithm (§4): insert and
//! delete batches, PMA vs CPMA vs the tree baselines.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use cpma_baselines::{CPac, PTree};
use cpma_pma::{Cpma, Pma};
use cpma_workloads::{dedup_sorted, uniform_keys};

const BASE_N: usize = 200_000;
const BATCH: usize = 10_000;

fn bench_batch_insert(c: &mut Criterion) {
    let base = dedup_sorted(uniform_keys(BASE_N, 40, 1));
    let batch = dedup_sorted(uniform_keys(BATCH, 40, 2));
    let mut g = c.benchmark_group("batch_insert_10k_into_200k");
    g.bench_function("pma", |b| {
        b.iter_batched(
            || Pma::<u64>::from_sorted(&base),
            |mut p| p.insert_batch_sorted(&batch),
            BatchSize::LargeInput,
        )
    });
    g.bench_function("cpma", |b| {
        b.iter_batched(
            || Cpma::from_sorted(&base),
            |mut p| p.insert_batch_sorted(&batch),
            BatchSize::LargeInput,
        )
    });
    g.bench_function("ptree", |b| {
        b.iter_batched(
            || PTree::from_sorted(&base),
            |mut p| p.insert_batch_sorted(&batch),
            BatchSize::LargeInput,
        )
    });
    g.bench_function("cpac", |b| {
        b.iter_batched(
            || CPac::from_sorted(&base),
            |mut p| p.insert_batch_sorted(&batch),
            BatchSize::LargeInput,
        )
    });
    g.finish();
}

fn bench_batch_remove(c: &mut Criterion) {
    let base = dedup_sorted(uniform_keys(BASE_N, 40, 3));
    let victims: Vec<u64> = base.iter().step_by(20).copied().collect();
    let mut g = c.benchmark_group("batch_remove_10k_of_200k");
    g.bench_function("pma", |b| {
        b.iter_batched(
            || Pma::<u64>::from_sorted(&base),
            |mut p| p.remove_batch_sorted(&victims),
            BatchSize::LargeInput,
        )
    });
    g.bench_function("cpma", |b| {
        b.iter_batched(
            || Cpma::from_sorted(&base),
            |mut p| p.remove_batch_sorted(&victims),
            BatchSize::LargeInput,
        )
    });
    g.finish();
}

criterion_group!(benches, bench_batch_insert, bench_batch_remove);
criterion_main!(benches);
