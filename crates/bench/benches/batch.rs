//! Benchmarks for the batch-update algorithm (§4): insert and delete
//! batches, PMA vs CPMA vs the tree baselines, all through the canonical
//! `BatchSet` trait. Runs on the in-repo `ubench` harness.

use cpma_baselines::{CPac, PTree};
use cpma_bench::ubench::{black_box, Bencher};
use cpma_bench::BatchSet;
use cpma_pma::{Cpma, Pma};
use cpma_workloads::{dedup_sorted, uniform_keys};

const BASE_N: usize = 200_000;
const BATCH: usize = 10_000;

/// Time only the batch op: the structure rebuild runs outside the clock
/// (criterion's `iter_batched` discipline).
fn bench_insert<S: BatchSet<u64>>(b: &Bencher, name: &str, base: &[u64], batch: &[u64]) {
    b.bench_batched(
        name,
        || S::build_sorted(base),
        |mut s| {
            black_box(s.insert_batch_sorted(batch));
        },
    );
}

fn bench_remove<S: BatchSet<u64>>(b: &Bencher, name: &str, base: &[u64], victims: &[u64]) {
    b.bench_batched(
        name,
        || S::build_sorted(base),
        |mut s| {
            black_box(s.remove_batch_sorted(victims));
        },
    );
}

fn main() {
    let b = Bencher::new();

    let base = dedup_sorted(uniform_keys(BASE_N, 40, 1));
    let batch = dedup_sorted(uniform_keys(BATCH, 40, 2));
    bench_insert::<Pma<u64>>(&b, "batch_insert_10k_into_200k/pma", &base, &batch);
    bench_insert::<Cpma>(&b, "batch_insert_10k_into_200k/cpma", &base, &batch);
    bench_insert::<PTree>(&b, "batch_insert_10k_into_200k/ptree", &base, &batch);
    bench_insert::<CPac>(&b, "batch_insert_10k_into_200k/cpac", &base, &batch);

    let base = dedup_sorted(uniform_keys(BASE_N, 40, 3));
    let victims: Vec<u64> = base.iter().step_by(20).copied().collect();
    bench_remove::<Pma<u64>>(&b, "batch_remove_10k_of_200k/pma", &base, &victims);
    bench_remove::<Cpma>(&b, "batch_remove_10k_of_200k/cpma", &base, &victims);
    b.write_json("batch").expect("write BENCH_batch.json");
}
