//! Property tests for the baseline structures: the join-based P-tree, the
//! blocked PaC-tree, and the hash-chunked C-tree must all implement exact
//! set semantics, and their internal shape constraints must hold under
//! arbitrary inputs.
//!
//! Written against the in-repo randomized-test kit
//! ([`cpma_api::testkit::Rng`]) — seeded and fully deterministic, no
//! external property-testing dependency (the build environment is offline).

use cpma_api::testkit::{sorted_unique, Rng};
use cpma_api::RangeSet;
use cpma_baselines::{CPac, CTreeSet, PTree, UPac};
use std::collections::BTreeSet;

const CASES: u64 = 48;

/// P-tree union is set union with an exact added-count.
#[test]
fn ptree_union_semantics() {
    let mut rng = Rng::new(0x9731);
    for _ in 0..CASES {
        let a = sorted_unique(rng.raw_keys(400));
        let b = sorted_unique(rng.raw_keys(400));
        let mut t = PTree::from_sorted(&a);
        let added = t.insert_batch_sorted(&b);
        let union: BTreeSet<u64> = a.iter().chain(b.iter()).copied().collect();
        assert_eq!(added, union.len() - a.len());
        assert_eq!(t.collect(), union.iter().copied().collect::<Vec<_>>());
        assert_eq!(t.len(), union.len());
    }
}

/// P-tree difference is set difference with an exact removed-count.
#[test]
fn ptree_difference_semantics() {
    let mut rng = Rng::new(0x9732);
    for _ in 0..CASES {
        let a = sorted_unique(rng.raw_keys(400));
        let b = sorted_unique(rng.raw_keys(400));
        let mut t = PTree::from_sorted(&a);
        let removed = t.remove_batch_sorted(&b);
        let diff: Vec<u64> = a
            .iter()
            .copied()
            .filter(|k| b.binary_search(k).is_err())
            .collect();
        assert_eq!(removed, a.len() - diff.len());
        assert_eq!(t.collect(), diff);
    }
}

/// The treap shape is canonical: building from sorted input equals
/// building by repeated unions (same keys ⇒ same structure ⇒ same
/// traversal and size accounting).
#[test]
fn ptree_canonical_shape() {
    let mut rng = Rng::new(0x9734);
    for _ in 0..CASES {
        let keys = sorted_unique(rng.raw_keys(300));
        let built = PTree::from_sorted(&keys);
        let mut incremental = PTree::new();
        for chunk in keys.chunks(37) {
            incremental.insert_batch_sorted(chunk);
        }
        assert_eq!(built.collect(), incremental.collect());
        assert_eq!(built.size_bytes(), incremental.size_bytes());
    }
}

/// PaC-tree blocks never exceed BLOCK_SIZE elements, raw or compressed,
/// and both payloads agree with the model.
#[test]
fn pactree_matches_model_and_bounds() {
    let mut rng = Rng::new(0x9AC1);
    for _ in 0..CASES {
        let mut raw = UPac::new();
        let mut comp = CPac::new();
        let mut model = BTreeSet::new();
        let rounds = rng.below(5) + 1;
        for _ in 0..rounds {
            let b = sorted_unique(rng.raw_keys(300).into_iter().chain([0]).collect());
            if rng.chance(1, 2) {
                let before = model.len();
                model.extend(b.iter().copied());
                let want = model.len() - before;
                assert_eq!(raw.insert_batch_sorted(&b), want);
                assert_eq!(comp.insert_batch_sorted(&b), want);
            } else {
                let mut want = 0;
                for k in &b {
                    if model.remove(k) {
                        want += 1;
                    }
                }
                assert_eq!(raw.remove_batch_sorted(&b), want);
                assert_eq!(comp.remove_batch_sorted(&b), want);
            }
        }
        let wantv: Vec<u64> = model.iter().copied().collect();
        assert_eq!(raw.collect(), wantv);
        assert_eq!(comp.collect(), wantv);
    }
}

/// C-tree chunk boundaries are value-determined: any insertion order
/// yields the identical structure footprint.
#[test]
fn ctree_order_independent() {
    let mut rng = Rng::new(0xC731);
    for _ in 0..CASES {
        let keys = sorted_unique(rng.raw_keys(400).into_iter().chain([7]).collect());
        let one_shot = CTreeSet::from_sorted(&keys);
        let mut incremental = CTreeSet::new();
        for chunk in keys.chunks(29) {
            incremental.insert_batch_sorted(chunk);
        }
        assert_eq!(one_shot.collect(), incremental.collect());
        assert_eq!(one_shot.size_bytes(), incremental.size_bytes());
    }
}

/// for_range agrees with filtering for every structure, on the trait API.
#[test]
fn for_range_agreement() {
    let mut rng = Rng::new(0xFA9E);
    for _ in 0..CASES {
        let keys = sorted_unique(rng.raw_keys(400));
        let a = rng.next_u64();
        let b = rng.next_u64();
        let (lo, hi) = (a.min(b), a.max(b));
        let want: Vec<u64> = keys
            .iter()
            .copied()
            .filter(|&e| e >= lo && e < hi)
            .collect();

        let t = PTree::from_sorted(&keys);
        let mut got = Vec::new();
        t.for_range(lo..hi, |k| got.push(k));
        assert_eq!(got, want);

        let t = CPac::from_sorted(&keys);
        let mut got = Vec::new();
        t.for_range(lo..hi, |k| got.push(k));
        assert_eq!(got, want);

        let t = CTreeSet::from_sorted(&keys);
        let mut got = Vec::new();
        t.for_range(lo..hi, |k| got.push(k));
        assert_eq!(got, want);
    }
}

/// successor on every baseline matches the model, via the trait.
#[test]
fn successor_matches_model() {
    use cpma_api::OrderedSet;
    let mut rng = Rng::new(0x50CC);
    for _ in 0..CASES {
        let keys = sorted_unique(rng.raw_keys(300));
        let model: BTreeSet<u64> = keys.iter().copied().collect();
        let pt = PTree::from_sorted(&keys);
        let cp = CPac::from_sorted(&keys);
        let ct = CTreeSet::from_sorted(&keys);
        for _ in 0..20 {
            let probe = rng.next_u64();
            let want = model.range(probe..).next().copied();
            assert_eq!(pt.successor(probe), want, "P-tree successor({probe})");
            assert_eq!(
                OrderedSet::successor(&cp, probe),
                want,
                "C-PaC successor({probe})"
            );
            assert_eq!(
                OrderedSet::successor(&ct, probe),
                want,
                "C-tree successor({probe})"
            );
        }
    }
}

#[test]
fn compression_ratio_ordering_on_dense_keys() {
    // Dense keys: compressed structures must be far smaller than raw.
    let keys: Vec<u64> = (0..200_000u64).collect();
    let raw = UPac::from_sorted(&keys);
    let comp = CPac::from_sorted(&keys);
    let ctree = CTreeSet::from_sorted(&keys);
    let ptree = PTree::from_sorted(&keys);
    assert!(comp.size_bytes() < raw.size_bytes() / 3);
    assert!(ctree.size_bytes() < raw.size_bytes() / 3);
    assert_eq!(ptree.size_bytes(), keys.len() * 32);
}

#[test]
fn empty_batch_operations() {
    let mut t = PTree::new();
    assert_eq!(t.insert_batch_sorted(&[]), 0);
    assert_eq!(t.remove_batch_sorted(&[]), 0);
    let mut c = CPac::new();
    assert_eq!(c.insert_batch_sorted(&[]), 0);
    assert_eq!(c.remove_batch_sorted(&[]), 0);
    let mut s = CTreeSet::new();
    assert_eq!(s.insert_batch_sorted(&[]), 0);
    assert_eq!(s.remove_batch_sorted(&[]), 0);
}
