//! Property tests for the baseline structures: the join-based P-tree, the
//! blocked PaC-tree, and the hash-chunked C-tree must all implement exact
//! set semantics, and their internal shape constraints must hold under
//! arbitrary inputs.

use cpma_baselines::{CPac, CTreeSet, PTree, UPac};
use proptest::collection::vec;
use proptest::prelude::*;
use std::collections::BTreeSet;

fn sorted_unique(mut v: Vec<u64>) -> Vec<u64> {
    v.sort_unstable();
    v.dedup();
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// P-tree union is set union with an exact added-count.
    #[test]
    fn ptree_union_semantics(a in vec(any::<u64>(), 0..400), b in vec(any::<u64>(), 0..400)) {
        let a = sorted_unique(a);
        let b = sorted_unique(b);
        let mut t = PTree::from_sorted(&a);
        let added = t.insert_batch_sorted(&b);
        let union: BTreeSet<u64> = a.iter().chain(b.iter()).copied().collect();
        prop_assert_eq!(added, union.len() - a.len());
        prop_assert_eq!(t.collect(), union.iter().copied().collect::<Vec<_>>());
        prop_assert_eq!(t.len(), union.len());
    }

    /// P-tree difference is set difference with an exact removed-count.
    #[test]
    fn ptree_difference_semantics(a in vec(any::<u64>(), 0..400), b in vec(any::<u64>(), 0..400)) {
        let a = sorted_unique(a);
        let b = sorted_unique(b);
        let mut t = PTree::from_sorted(&a);
        let removed = t.remove_batch_sorted(&b);
        let diff: Vec<u64> = a.iter().copied().filter(|k| b.binary_search(k).is_err()).collect();
        prop_assert_eq!(removed, a.len() - diff.len());
        prop_assert_eq!(t.collect(), diff);
    }

    /// The treap shape is canonical: building from sorted input equals
    /// building by repeated unions (same keys ⇒ same structure ⇒ same
    /// traversal and size accounting).
    #[test]
    fn ptree_canonical_shape(keys in vec(any::<u64>(), 1..300)) {
        let keys = sorted_unique(keys);
        let built = PTree::from_sorted(&keys);
        let mut incremental = PTree::new();
        for chunk in keys.chunks(37) {
            incremental.insert_batch_sorted(chunk);
        }
        prop_assert_eq!(built.collect(), incremental.collect());
        prop_assert_eq!(built.size_bytes(), incremental.size_bytes());
    }

    /// PaC-tree blocks never exceed BLOCK_SIZE elements, raw or compressed,
    /// and both payloads agree with the model.
    #[test]
    fn pactree_matches_model_and_bounds(
        rounds in vec((any::<bool>(), vec(any::<u64>(), 1..300)), 1..6)
    ) {
        let mut raw = UPac::new();
        let mut comp = CPac::new();
        let mut model = BTreeSet::new();
        for (ins, keys) in rounds {
            let b = sorted_unique(keys);
            if ins {
                let before = model.len();
                model.extend(b.iter().copied());
                let want = model.len() - before;
                prop_assert_eq!(raw.insert_batch_sorted(&b), want);
                prop_assert_eq!(comp.insert_batch_sorted(&b), want);
            } else {
                let mut want = 0;
                for k in &b {
                    if model.remove(k) {
                        want += 1;
                    }
                }
                prop_assert_eq!(raw.remove_batch_sorted(&b), want);
                prop_assert_eq!(comp.remove_batch_sorted(&b), want);
            }
        }
        let wantv: Vec<u64> = model.iter().copied().collect();
        prop_assert_eq!(raw.collect(), wantv.clone());
        prop_assert_eq!(comp.collect(), wantv);
    }

    /// C-tree chunk boundaries are value-determined: any insertion order
    /// yields the identical structure footprint.
    #[test]
    fn ctree_order_independent(keys in vec(any::<u64>(), 1..400)) {
        let keys = sorted_unique(keys);
        let one_shot = CTreeSet::from_sorted(&keys);
        let mut incremental = CTreeSet::new();
        for chunk in keys.chunks(29) {
            incremental.insert_batch_sorted(chunk);
        }
        prop_assert_eq!(one_shot.collect(), incremental.collect());
        prop_assert_eq!(one_shot.size_bytes(), incremental.size_bytes());
    }

    /// map_range agrees with filtering for every structure.
    #[test]
    fn map_range_agreement(
        keys in vec(any::<u64>(), 0..400),
        a in any::<u64>(),
        b in any::<u64>(),
    ) {
        let keys = sorted_unique(keys);
        let (lo, hi) = (a.min(b), a.max(b));
        let want: Vec<u64> = keys.iter().copied().filter(|&e| e >= lo && e < hi).collect();

        let t = PTree::from_sorted(&keys);
        let mut got = Vec::new();
        t.map_range(lo, hi, &mut |k| got.push(k));
        prop_assert_eq!(&got, &want);

        let t = CPac::from_sorted(&keys);
        let mut got = Vec::new();
        t.map_range(lo, hi, &mut |k| got.push(k));
        prop_assert_eq!(&got, &want);

        let t = CTreeSet::from_sorted(&keys);
        let mut got = Vec::new();
        t.map_range(lo, hi, &mut |k| got.push(k));
        prop_assert_eq!(&got, &want);
    }

    /// successor on the P-tree matches the model.
    #[test]
    fn ptree_successor(keys in vec(any::<u64>(), 0..300), probe in any::<u64>()) {
        let keys = sorted_unique(keys);
        let model: BTreeSet<u64> = keys.iter().copied().collect();
        let t = PTree::from_sorted(&keys);
        prop_assert_eq!(t.successor(probe), model.range(probe..).next().copied());
    }
}

#[test]
fn compression_ratio_ordering_on_dense_keys() {
    // Dense keys: compressed structures must be far smaller than raw.
    let keys: Vec<u64> = (0..200_000u64).collect();
    let raw = UPac::from_sorted(&keys);
    let comp = CPac::from_sorted(&keys);
    let ctree = CTreeSet::from_sorted(&keys);
    let ptree = PTree::from_sorted(&keys);
    assert!(comp.size_bytes() < raw.size_bytes() / 3);
    assert!(ctree.size_bytes() < raw.size_bytes() / 3);
    assert_eq!(ptree.size_bytes(), keys.len() * 32);
}

#[test]
fn empty_batch_operations() {
    let mut t = PTree::new();
    assert_eq!(t.insert_batch_sorted(&[]), 0);
    assert_eq!(t.remove_batch_sorted(&[]), 0);
    let mut c = CPac::new();
    assert_eq!(c.insert_batch_sorted(&[]), 0);
    assert_eq!(c.remove_batch_sorted(&[]), 0);
    let mut s = CTreeSet::new();
    assert_eq!(s.insert_batch_sorted(&[]), 0);
    assert_eq!(s.remove_batch_sorted(&[]), 0);
}
