//! PaC-trees: parallel (compressed) blocked binary trees (CPAM \[33]).
//!
//! A PaC-tree stores elements in *blocks* of up to `P` elements at the
//! leaves of a binary tree; C-PaC difference-encodes each block's elements.
//! The paper configures "the PaC-trees library block size ... to the default
//! for sets at 256". Batch updates descend the tree splitting the batch by
//! router keys (join-style), rebuilding blocks that over- or underflow and
//! rebuilding subtrees that drift out of weight balance (a scapegoat rule —
//! the original maintains weight balance via join; the amortized cost is
//! the same and the memory behaviour, pointer-chasing between blocks, is
//! preserved; see DESIGN.md §4).
//!
//! Blocks are laid out at independent heap addresses, deliberately so: the
//! whole point of the paper's comparison is that trees pay pointer-chasing
//! costs between blocks, while the PMA scans contiguously.

use cpma_pma::codec;
use cpma_pma::stats;

/// Maximum elements per block (the paper's set default).
pub const BLOCK_SIZE: usize = 256;
/// Fill target when (re)building blocks: 3/4 of the maximum, so freshly
/// built trees absorb inserts without immediate splits.
const BLOCK_TARGET: usize = BLOCK_SIZE * 3 / 4;
/// Batch sizes below this update serially.
const PAR_CUTOFF: usize = 1 << 9;
/// Weight-balance slack: rebuild a subtree when one side outweighs the
/// other by more than this factor (plus one block of hysteresis).
const BALANCE_FACTOR: usize = 4;

/// Storage for one block's elements.
pub trait BlockPayload: Send + Sync + Sized {
    /// Name of the variant this payload yields, as the paper's tables
    /// spell it ("U-PaC" / "C-PaC"); surfaces as `OrderedSet::NAME`.
    const NAME: &'static str;
    /// Encode a sorted, deduplicated, non-empty run.
    fn encode(elems: &[u64]) -> Self;
    /// Append all elements, in order, to `out`.
    fn decode(&self, out: &mut Vec<u64>);
    /// Number of elements.
    fn count(&self) -> usize;
    /// Smallest element.
    fn head(&self) -> u64;
    /// Bytes of heap memory used by the payload.
    fn payload_bytes(&self) -> usize;
    /// In-order traversal with early exit; false iff stopped early.
    fn for_each(&self, f: &mut dyn FnMut(u64) -> bool) -> bool;

    /// Membership test.
    fn contains(&self, key: u64) -> bool {
        let mut found = false;
        self.for_each(&mut |e| {
            if e >= key {
                found = e == key;
                return false;
            }
            true
        });
        found
    }

    /// Sum of elements.
    fn sum(&self) -> u64 {
        let mut s = 0u64;
        self.for_each(&mut |e| {
            s = s.wrapping_add(e);
            true
        });
        s
    }
}

/// Uncompressed block: raw sorted keys (U-PaC).
pub struct RawBlock(Box<[u64]>);

impl BlockPayload for RawBlock {
    const NAME: &'static str = "U-PaC";
    fn encode(elems: &[u64]) -> Self {
        debug_assert!(!elems.is_empty());
        stats::record_write(elems.len() * 8);
        RawBlock(elems.to_vec().into_boxed_slice())
    }
    fn decode(&self, out: &mut Vec<u64>) {
        stats::record_read(self.0.len() * 8);
        out.extend_from_slice(&self.0);
    }
    fn count(&self) -> usize {
        self.0.len()
    }
    fn head(&self) -> u64 {
        self.0[0]
    }
    fn payload_bytes(&self) -> usize {
        self.0.len() * 8
    }
    fn for_each(&self, f: &mut dyn FnMut(u64) -> bool) -> bool {
        stats::record_read(self.0.len() * 8);
        for &e in self.0.iter() {
            if !f(e) {
                return false;
            }
        }
        true
    }
    fn contains(&self, key: u64) -> bool {
        stats::record_read(64);
        self.0.binary_search(&key).is_ok()
    }
}

/// Difference-encoded block: raw head + delta byte codes (C-PaC).
pub struct CompressedBlock {
    count: u32,
    bytes: Box<[u8]>,
}

impl BlockPayload for CompressedBlock {
    const NAME: &'static str = "C-PaC";
    fn encode(elems: &[u64]) -> Self {
        debug_assert!(!elems.is_empty());
        let len = codec::encoded_run_len(elems, 8);
        let mut bytes = vec![0u8; len];
        codec::encode_run(elems, &mut bytes);
        stats::record_write(len);
        CompressedBlock {
            count: elems.len() as u32,
            bytes: bytes.into_boxed_slice(),
        }
    }
    fn decode(&self, out: &mut Vec<u64>) {
        stats::record_read(self.bytes.len());
        codec::decode_run(&self.bytes, self.count as usize, out);
    }
    fn count(&self) -> usize {
        self.count as usize
    }
    fn head(&self) -> u64 {
        u64::from_le_bytes(self.bytes[..8].try_into().unwrap())
    }
    fn payload_bytes(&self) -> usize {
        self.bytes.len()
    }
    fn for_each(&self, f: &mut dyn FnMut(u64) -> bool) -> bool {
        stats::record_read(self.bytes.len());
        codec::for_each_in_run(&self.bytes, self.count as usize, f)
    }
}

enum Tree<P> {
    Leaf(P),
    Node {
        split: u64,
        size: usize,
        left: Box<Tree<P>>,
        right: Box<Tree<P>>,
    },
}

impl<P: BlockPayload> Tree<P> {
    fn size(&self) -> usize {
        match self {
            Tree::Leaf(p) => p.count(),
            Tree::Node { size, .. } => *size,
        }
    }
}

/// Per-internal-node memory: split key + size + two pointers.
const NODE_BYTES: usize = 32;
/// Per-leaf overhead: enum tag + payload descriptor.
const LEAF_OVERHEAD: usize = 24;

/// Batch-parallel blocked tree; `P` selects U-PaC or C-PaC. See module docs.
pub struct PacTree<P: BlockPayload> {
    root: Option<Box<Tree<P>>>,
}

impl<P: BlockPayload> Default for PacTree<P> {
    fn default() -> Self {
        Self::new()
    }
}

/// Build a balanced tree over blocks from a sorted, deduplicated slice.
fn build<P: BlockPayload>(elems: &[u64]) -> Option<Box<Tree<P>>> {
    if elems.is_empty() {
        return None;
    }
    let nblocks = elems.len().div_ceil(BLOCK_TARGET);
    fn rec<P: BlockPayload>(elems: &[u64], blocks: usize) -> Box<Tree<P>> {
        if blocks <= 1 {
            return Box::new(Tree::Leaf(P::encode(elems)));
        }
        let lb = blocks / 2;
        let at = elems.len() * lb / blocks;
        let (ls, rs) = elems.split_at(at);
        let (l, r) = if elems.len() > PAR_CUTOFF {
            rayon::join(|| rec::<P>(ls, lb), || rec::<P>(rs, blocks - lb))
        } else {
            (rec::<P>(ls, lb), rec::<P>(rs, blocks - lb))
        };
        Box::new(Tree::Node {
            split: rs[0],
            size: elems.len(),
            left: l,
            right: r,
        })
    }
    Some(rec::<P>(elems, nblocks))
}

/// Collect a subtree's elements in order.
fn collect_into<P: BlockPayload>(t: &Tree<P>, out: &mut Vec<u64>) {
    match t {
        Tree::Leaf(p) => p.decode(out),
        Tree::Node { left, right, .. } => {
            stats::record_read(NODE_BYTES);
            collect_into(left, out);
            collect_into(right, out);
        }
    }
}

/// Sorted-union of a block's contents with a batch slice; returns the
/// merged elements and how many batch elements were new.
fn union_block<P: BlockPayload>(p: &P, batch: &[u64]) -> (Vec<u64>, usize) {
    let mut cur = Vec::with_capacity(p.count() + batch.len());
    p.decode(&mut cur);
    let mut out = Vec::with_capacity(cur.len() + batch.len());
    let (mut i, mut j, mut added) = (0, 0, 0);
    while i < cur.len() && j < batch.len() {
        match cur[i].cmp(&batch[j]) {
            std::cmp::Ordering::Less => {
                out.push(cur[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(batch[j]);
                added += 1;
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(cur[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&cur[i..]);
    added += batch.len() - j;
    out.extend_from_slice(&batch[j..]);
    (out, added)
}

/// Insert `batch` into subtree `t`; returns the new subtree and #added.
fn bulk_insert<P: BlockPayload>(t: Box<Tree<P>>, batch: &[u64]) -> (Box<Tree<P>>, usize) {
    if batch.is_empty() {
        return (t, 0);
    }
    match *t {
        Tree::Leaf(p) => {
            let (merged, added) = union_block(&p, batch);
            if merged.len() <= BLOCK_SIZE {
                (Box::new(Tree::Leaf(P::encode(&merged))), added)
            } else {
                (build::<P>(&merged).unwrap(), added)
            }
        }
        Tree::Node {
            split, left, right, ..
        } => {
            stats::record_read(NODE_BYTES);
            let at = batch.partition_point(|&e| e < split);
            let (lb, rb) = batch.split_at(at);
            let ((l, a1), (r, a2)) = if batch.len() > PAR_CUTOFF {
                rayon::join(|| bulk_insert(left, lb), || bulk_insert(right, rb))
            } else {
                (bulk_insert(left, lb), bulk_insert(right, rb))
            };
            let size = l.size() + r.size();
            let node = Box::new(Tree::Node {
                split,
                size,
                left: l,
                right: r,
            });
            (rebalance(node), a1 + a2)
        }
    }
}

/// Remove `batch` keys from subtree `t`; returns the new subtree (possibly
/// `None`) and #removed.
fn bulk_remove<P: BlockPayload>(t: Box<Tree<P>>, batch: &[u64]) -> (Option<Box<Tree<P>>>, usize) {
    if batch.is_empty() {
        return (Some(t), 0);
    }
    match *t {
        Tree::Leaf(p) => {
            let mut cur = Vec::with_capacity(p.count());
            p.decode(&mut cur);
            let mut out = Vec::with_capacity(cur.len());
            let mut j = 0;
            let mut removed = 0;
            for &c in &cur {
                while j < batch.len() && batch[j] < c {
                    j += 1;
                }
                if j < batch.len() && batch[j] == c {
                    removed += 1;
                    j += 1;
                } else {
                    out.push(c);
                }
            }
            if removed == 0 {
                return (Some(Box::new(Tree::Leaf(p))), 0);
            }
            if out.is_empty() {
                (None, removed)
            } else {
                (Some(Box::new(Tree::Leaf(P::encode(&out)))), removed)
            }
        }
        Tree::Node {
            split, left, right, ..
        } => {
            stats::record_read(NODE_BYTES);
            let at = batch.partition_point(|&e| e < split);
            let (lb, rb) = batch.split_at(at);
            let ((l, r1), (r, r2)) = if batch.len() > PAR_CUTOFF {
                rayon::join(|| bulk_remove(left, lb), || bulk_remove(right, rb))
            } else {
                (bulk_remove(left, lb), bulk_remove(right, rb))
            };
            let node = match (l, r) {
                (None, None) => None,
                (Some(x), None) | (None, Some(x)) => Some(x),
                (Some(l), Some(r)) => {
                    let size = l.size() + r.size();
                    Some(rebalance(Box::new(Tree::Node {
                        split,
                        size,
                        left: l,
                        right: r,
                    })))
                }
            };
            (node, r1 + r2)
        }
    }
}

/// Scapegoat-style rebuild when the two sides drift far out of balance.
fn rebalance<P: BlockPayload>(t: Box<Tree<P>>) -> Box<Tree<P>> {
    if let Tree::Node {
        ref left,
        ref right,
        size,
        ..
    } = *t
    {
        let (ls, rs) = (left.size(), right.size());
        if ls > BALANCE_FACTOR * rs + BLOCK_SIZE || rs > BALANCE_FACTOR * ls + BLOCK_SIZE {
            let mut elems = Vec::with_capacity(size);
            collect_into(&t, &mut elems);
            return build::<P>(&elems).unwrap();
        }
    }
    t
}

impl<P: BlockPayload> PacTree<P> {
    /// Empty tree.
    pub fn new() -> Self {
        Self { root: None }
    }

    /// Build from a sorted, deduplicated slice.
    pub fn from_sorted(elems: &[u64]) -> Self {
        debug_assert!(elems.windows(2).all(|w| w[0] < w[1]));
        Self {
            root: build::<P>(elems),
        }
    }

    /// Number of stored keys.
    pub fn len(&self) -> usize {
        self.root.as_ref().map_or(0, |t| t.size())
    }

    /// True iff empty.
    pub fn is_empty(&self) -> bool {
        self.root.is_none()
    }

    /// Heap bytes used (blocks + internal nodes).
    pub fn size_bytes(&self) -> usize {
        fn walk<P: BlockPayload>(t: &Tree<P>) -> usize {
            match t {
                Tree::Leaf(p) => LEAF_OVERHEAD + p.payload_bytes(),
                Tree::Node { left, right, .. } => NODE_BYTES + walk(left) + walk(right),
            }
        }
        self.root.as_ref().map_or(0, |t| walk(t))
    }

    /// Membership test.
    pub fn has(&self, key: u64) -> bool {
        let mut cur = match &self.root {
            Some(t) => t.as_ref(),
            None => return false,
        };
        loop {
            match cur {
                Tree::Leaf(p) => return p.contains(key),
                Tree::Node {
                    split, left, right, ..
                } => {
                    stats::record_read(NODE_BYTES);
                    cur = if key < *split { left } else { right };
                }
            }
        }
    }

    /// Batch insert of a sorted, deduplicated slice. Unsorted input goes
    /// through `cpma_api::BatchSet::insert_batch`.
    pub fn insert_batch_sorted(&mut self, batch: &[u64]) -> usize {
        if batch.is_empty() {
            return 0;
        }
        match self.root.take() {
            None => {
                self.root = build::<P>(batch);
                batch.len()
            }
            Some(t) => {
                let (t, added) = bulk_insert(t, batch);
                self.root = Some(t);
                added
            }
        }
    }

    /// Batch remove of a sorted, deduplicated slice.
    pub fn remove_batch_sorted(&mut self, batch: &[u64]) -> usize {
        match self.root.take() {
            None => 0,
            Some(t) => {
                let (t, removed) = bulk_remove(t, batch);
                self.root = t;
                removed
            }
        }
    }

    /// Apply `f` to all keys in `[start, end)` in order.
    pub fn map_range(&self, start: u64, end: u64, f: &mut impl FnMut(u64)) {
        fn walk<P: BlockPayload>(t: &Tree<P>, start: u64, end: u64, f: &mut impl FnMut(u64)) {
            match t {
                Tree::Leaf(p) => {
                    p.for_each(&mut |e| {
                        if e >= end {
                            return false;
                        }
                        if e >= start {
                            f(e);
                        }
                        true
                    });
                }
                Tree::Node {
                    split, left, right, ..
                } => {
                    stats::record_read(NODE_BYTES);
                    if start < *split {
                        walk(left, start, end, f);
                    }
                    if end > *split {
                        walk(right, start, end, f);
                    }
                }
            }
        }
        if start < end {
            if let Some(t) = &self.root {
                walk(t, start, end, f);
            }
        }
    }

    /// Sum of keys in `[start, end)` (the public API is
    /// `RangeSet::range_sum`).
    pub(crate) fn range_sum_excl(&self, start: u64, end: u64) -> u64 {
        let mut s = 0u64;
        self.map_range(start, end, &mut |k| s = s.wrapping_add(k));
        s
    }

    /// Parallel sum of all keys.
    pub fn sum(&self) -> u64 {
        fn walk<P: BlockPayload>(t: &Tree<P>) -> u64 {
            match t {
                Tree::Leaf(p) => p.sum(),
                Tree::Node {
                    left, right, size, ..
                } => {
                    if *size > PAR_CUTOFF {
                        let (l, r) = rayon::join(|| walk(left), || walk(right));
                        l.wrapping_add(r)
                    } else {
                        walk(left).wrapping_add(walk(right))
                    }
                }
            }
        }
        self.root.as_ref().map_or(0, |t| walk(t))
    }

    /// All keys in order.
    pub fn collect(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.len());
        if let Some(t) = &self.root {
            collect_into(t, &mut out);
        }
        out
    }

    /// Smallest stored key.
    pub fn min(&self) -> Option<u64> {
        let mut cur = self.root.as_ref()?.as_ref();
        loop {
            match cur {
                Tree::Leaf(p) => return Some(p.head()),
                Tree::Node { left, .. } => cur = left,
            }
        }
    }

    /// Largest stored key.
    pub fn max(&self) -> Option<u64> {
        let mut cur = self.root.as_ref()?.as_ref();
        loop {
            match cur {
                Tree::Leaf(p) => {
                    let mut last = None;
                    p.for_each(&mut |e| {
                        last = Some(e);
                        true
                    });
                    return last;
                }
                Tree::Node { right, .. } => cur = right,
            }
        }
    }

    /// Visit keys ≥ `start` in order until `f` returns false; returns
    /// false iff stopped early (the `RangeSet::scan_from` primitive).
    pub fn for_each_from(&self, start: u64, f: &mut dyn FnMut(u64) -> bool) -> bool {
        fn walk<P: BlockPayload>(t: &Tree<P>, start: u64, f: &mut dyn FnMut(u64) -> bool) -> bool {
            match t {
                Tree::Leaf(p) => p.for_each(&mut |e| if e < start { true } else { f(e) }),
                Tree::Node {
                    split, left, right, ..
                } => {
                    stats::record_read(NODE_BYTES);
                    if start < *split && !walk(left, start, f) {
                        return false;
                    }
                    walk(right, start, f)
                }
            }
        }
        match &self.root {
            Some(t) => walk(t, start, f),
            None => true,
        }
    }

    /// In-order traversal with early exit; returns false iff stopped early.
    pub fn for_each(&self, f: &mut dyn FnMut(u64) -> bool) -> bool {
        fn walk<P: BlockPayload>(t: &Tree<P>, f: &mut dyn FnMut(u64) -> bool) -> bool {
            match t {
                Tree::Leaf(p) => p.for_each(f),
                Tree::Node { left, right, .. } => {
                    stats::record_read(NODE_BYTES);
                    walk(left, f) && walk(right, f)
                }
            }
        }
        match &self.root {
            Some(t) => walk(t, f),
            None => true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpma_api::BatchSet;
    use std::collections::BTreeSet;

    fn lcg(n: usize, seed: u64, bits: u32) -> Vec<u64> {
        let mut x = seed;
        (0..n)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                x >> (64 - bits)
            })
            .collect()
    }

    fn roundtrip<P: BlockPayload>() {
        let elems: Vec<u64> = (0..10_000u64).map(|i| i * 11 + 5).collect();
        let t = PacTree::<P>::from_sorted(&elems);
        assert_eq!(t.len(), elems.len());
        assert_eq!(t.collect(), elems);
        for &e in elems.iter().step_by(777) {
            assert!(t.has(e));
            assert!(!t.has(e + 1));
        }
    }

    #[test]
    fn build_roundtrip_raw() {
        roundtrip::<RawBlock>();
    }

    #[test]
    fn build_roundtrip_compressed() {
        roundtrip::<CompressedBlock>();
    }

    fn batches_match_model<P: BlockPayload>() {
        let mut t = PacTree::<P>::new();
        let mut model = BTreeSet::new();
        for round in 0..8u64 {
            let keys = lcg(5000, round + 1, 30);
            let mut b = keys.clone();
            let added = t.insert_batch(&mut b, false);
            let before = model.len();
            model.extend(keys.iter().copied());
            assert_eq!(added, model.len() - before, "round {round}");
            // Remove a slice of what we inserted plus some misses.
            let dels: Vec<u64> = keys
                .iter()
                .step_by(3)
                .map(|&k| k ^ 1)
                .chain(keys.iter().step_by(2).copied())
                .collect();
            let mut d = dels.clone();
            let removed = t.remove_batch(&mut d, false);
            let mut expect = 0;
            let mut seen = BTreeSet::new();
            for k in dels {
                if seen.insert(k) && model.remove(&k) {
                    expect += 1;
                }
            }
            assert_eq!(removed, expect, "round {round}");
            assert_eq!(t.len(), model.len());
        }
        assert_eq!(t.collect(), model.iter().copied().collect::<Vec<_>>());
    }

    #[test]
    fn batches_match_model_raw() {
        batches_match_model::<RawBlock>();
    }

    #[test]
    fn batches_match_model_compressed() {
        batches_match_model::<CompressedBlock>();
    }

    #[test]
    fn remove_everything_empties_tree() {
        let elems: Vec<u64> = (0..5000u64).collect();
        let mut t = PacTree::<CompressedBlock>::from_sorted(&elems);
        let removed = t.remove_batch_sorted(&elems);
        assert_eq!(removed, 5000);
        assert!(t.is_empty());
        assert_eq!(t.size_bytes(), 0);
        // Usable afterwards.
        assert_eq!(t.insert_batch_sorted(&[1, 2, 3]), 3);
        assert_eq!(t.collect(), vec![1, 2, 3]);
    }

    #[test]
    fn map_range_and_sum() {
        let elems: Vec<u64> = (0..3000u64).map(|i| i * 2).collect();
        let t = PacTree::<CompressedBlock>::from_sorted(&elems);
        let mut seen = Vec::new();
        t.map_range(10, 21, &mut |e| seen.push(e));
        assert_eq!(seen, vec![10, 12, 14, 16, 18, 20]);
        assert_eq!(t.sum(), elems.iter().sum::<u64>());
        assert_eq!(t.range_sum_excl(0, u64::MAX), t.sum());
        assert_eq!(t.range_sum_excl(100, 100), 0);
    }

    #[test]
    fn compression_shrinks_dense_sets() {
        let elems: Vec<u64> = (0..100_000u64).collect();
        let raw = PacTree::<RawBlock>::from_sorted(&elems);
        let comp = PacTree::<CompressedBlock>::from_sorted(&elems);
        assert!(
            comp.size_bytes() * 3 < raw.size_bytes(),
            "{} vs {}",
            comp.size_bytes(),
            raw.size_bytes()
        );
    }

    #[test]
    fn skewed_inserts_stay_balanced_enough() {
        // Repeated batches into the same key region force rebalances.
        let spread: Vec<u64> = (0..20_000u64).map(|i| i << 16).collect();
        let mut t = PacTree::<RawBlock>::from_sorted(&spread);
        for round in 0..20u64 {
            let batch: Vec<u64> = (0..2000u64).map(|i| (round << 32) + i * 3 + 1).collect();
            let mut b = batch.clone();
            t.insert_batch(&mut b, true);
        }
        assert_eq!(t.len(), 20_000 + 20 * 2000);
        // Depth sanity: a balanced blocked tree over 60k elems has ~8-9
        // levels of blocks; allow generous slack.
        fn depth<P: BlockPayload>(t: &Tree<P>) -> usize {
            match t {
                Tree::Leaf(_) => 1,
                Tree::Node { left, right, .. } => 1 + depth(left).max(depth(right)),
            }
        }
        let d = depth(t.root.as_ref().unwrap());
        assert!(d < 40, "tree degenerated to depth {d}");
    }
}
