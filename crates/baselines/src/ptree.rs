//! P-trees: batch-parallel binary search trees (the PAM library \[70]).
//!
//! PAM's trees support several balancing schemes built on one primitive,
//! `join`; we use the treap scheme with deterministic pseudo-random
//! priorities (`mix64(key)`), which gives a canonical shape, expected
//! O(log n) depth, and the simplest correct join-based `union` /
//! `difference` — the algorithms behind PAM's batch updates ("existing join
//! algorithms for tree layouts rely on pointer adjustments", §4 of the CPMA
//! paper).
//!
//! As in the paper's accounting, a P-tree node costs a fixed 32 bytes per
//! element: key (8) + subtree size (8) + two child pointers (16).

/// Subtrees smaller than this update serially (fork overhead dominates).
const PAR_CUTOFF: usize = 1 << 9;

/// Deterministic treap priority (Stafford mix13 of the key).
#[inline]
fn prio(key: u64) -> u64 {
    let mut z = key.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

type Link = Option<Box<Node>>;

struct Node {
    key: u64,
    size: u64,
    left: Link,
    right: Link,
}

#[inline]
fn size(t: &Link) -> u64 {
    t.as_ref().map_or(0, |n| n.size)
}

#[inline]
fn fix(mut n: Box<Node>) -> Box<Node> {
    n.size = 1 + size(&n.left) + size(&n.right);
    n
}

/// Split `t` by `key`: (elements < key, key present?, elements > key).
fn split(t: Link, key: u64) -> (Link, bool, Link) {
    match t {
        None => (None, false, None),
        Some(mut n) => {
            if key < n.key {
                let (ll, found, lr) = split(n.left.take(), key);
                n.left = lr;
                (ll, found, Some(fix(n)))
            } else if key > n.key {
                let (rl, found, rr) = split(n.right.take(), key);
                n.right = rl;
                (Some(fix(n)), found, rr)
            } else {
                let (l, r) = (n.left.take(), n.right.take());
                (l, true, r)
            }
        }
    }
}

/// Join two treaps with all keys of `l` below all keys of `r`.
fn join2(l: Link, r: Link) -> Link {
    match (l, r) {
        (None, r) => r,
        (l, None) => l,
        (Some(mut a), Some(mut b)) => {
            if prio(a.key) >= prio(b.key) {
                a.right = join2(a.right.take(), Some(b));
                Some(fix(a))
            } else {
                b.left = join2(Some(a), b.left.take());
                Some(fix(b))
            }
        }
    }
}

/// Set union; returns the merged tree and the number of duplicate keys.
fn union(a: Link, b: Link) -> (Link, u64) {
    match (a, b) {
        (None, b) => (b, 0),
        (a, None) => (a, 0),
        (Some(x), Some(y)) => {
            // Root = higher priority, split the other by its key; recurse
            // on the two sides in parallel (join-based union, [21]).
            let (mut root, other) = if prio(x.key) >= prio(y.key) {
                (x, y)
            } else {
                (y, x)
            };
            let (ol, dup, or) = split(Some(other), root.key);
            let (rl, rr) = (root.left.take(), root.right.take());
            let ((l, d1), (r, d2)) =
                if size(&rl) + size(&ol) + size(&rr) + size(&or) > PAR_CUTOFF as u64 {
                    rayon::join(|| union(rl, ol), || union(rr, or))
                } else {
                    (union(rl, ol), union(rr, or))
                };
            root.left = l;
            root.right = r;
            (Some(fix(root)), d1 + d2 + dup as u64)
        }
    }
}

/// Set difference `a \ b`; returns the tree and the number removed.
fn difference(a: Link, b: Link) -> (Link, u64) {
    match (a, b) {
        (None, _) => (None, 0),
        (a, None) => (a, 0),
        (Some(mut x), b) => {
            let (bl, found, br) = split(b, x.key);
            let (xl, xr) = (x.left.take(), x.right.take());
            let ((l, r1), (r, r2)) = if size(&xl) + size(&xr) > PAR_CUTOFF as u64 {
                rayon::join(|| difference(xl, bl), || difference(xr, br))
            } else {
                (difference(xl, bl), difference(xr, br))
            };
            if found {
                (join2(l, r), r1 + r2 + 1)
            } else {
                x.left = l;
                x.right = r;
                (Some(fix(x)), r1 + r2)
            }
        }
    }
}

/// Build a canonical treap from a sorted, deduplicated slice: the root is
/// the maximum-priority element; recurse (in parallel) on the two sides.
fn build_sorted(elems: &[u64]) -> Link {
    if elems.is_empty() {
        return None;
    }
    let mut best = 0;
    let mut best_p = prio(elems[0]);
    for (i, &e) in elems.iter().enumerate().skip(1) {
        let p = prio(e);
        if p > best_p {
            best_p = p;
            best = i;
        }
    }
    let (ls, rs) = (&elems[..best], &elems[best + 1..]);
    let (left, right) = if elems.len() > PAR_CUTOFF {
        rayon::join(|| build_sorted(ls), || build_sorted(rs))
    } else {
        (build_sorted(ls), build_sorted(rs))
    };
    Some(fix(Box::new(Node {
        key: elems[best],
        size: 0,
        left,
        right,
    })))
}

/// Batch-parallel uncompressed binary search tree (PAM-style). See module
/// docs.
#[derive(Default)]
pub struct PTree {
    root: Link,
}

impl PTree {
    /// Empty tree.
    pub fn new() -> Self {
        Self { root: None }
    }

    /// Build from a sorted, deduplicated slice.
    pub fn from_sorted(elems: &[u64]) -> Self {
        debug_assert!(elems.windows(2).all(|w| w[0] < w[1]));
        Self {
            root: build_sorted(elems),
        }
    }

    /// Number of stored keys.
    pub fn len(&self) -> usize {
        size(&self.root) as usize
    }

    /// True iff empty.
    pub fn is_empty(&self) -> bool {
        self.root.is_none()
    }

    /// Bytes used (the paper's fixed 32 B/element accounting for P-trees).
    pub fn size_bytes(&self) -> usize {
        self.len() * std::mem::size_of::<Node>()
    }

    /// Membership test.
    pub fn has(&self, key: u64) -> bool {
        let mut cur = &self.root;
        while let Some(n) = cur {
            cpma_pma::stats::record_read(std::mem::size_of::<Node>());
            if key == n.key {
                return true;
            }
            cur = if key < n.key { &n.left } else { &n.right };
        }
        false
    }

    /// Smallest stored key ≥ `key`.
    pub fn successor(&self, key: u64) -> Option<u64> {
        let mut cur = &self.root;
        let mut best = None;
        while let Some(n) = cur {
            if n.key >= key {
                best = Some(n.key);
                cur = &n.left;
            } else {
                cur = &n.right;
            }
        }
        best
    }

    /// Smallest stored key.
    pub fn min(&self) -> Option<u64> {
        let mut cur = self.root.as_ref()?;
        loop {
            match &cur.left {
                Some(l) => cur = l,
                None => return Some(cur.key),
            }
        }
    }

    /// Largest stored key.
    pub fn max(&self) -> Option<u64> {
        let mut cur = self.root.as_ref()?;
        loop {
            match &cur.right {
                Some(r) => cur = r,
                None => return Some(cur.key),
            }
        }
    }

    /// Visit keys ≥ `start` in order until `f` returns false; returns
    /// false iff stopped early (the `RangeSet::scan_from` primitive).
    pub fn for_each_from(&self, start: u64, f: &mut dyn FnMut(u64) -> bool) -> bool {
        fn walk(t: &Link, start: u64, f: &mut dyn FnMut(u64) -> bool) -> bool {
            match t {
                None => true,
                Some(n) => {
                    if n.key > start && !walk(&n.left, start, f) {
                        return false;
                    }
                    if n.key >= start && !f(n.key) {
                        return false;
                    }
                    walk(&n.right, start, f)
                }
            }
        }
        walk(&self.root, start, f)
    }

    /// Insert one key; false if already present.
    pub fn insert(&mut self, key: u64) -> bool {
        if self.has(key) {
            return false;
        }
        let single = Some(Box::new(Node {
            key,
            size: 1,
            left: None,
            right: None,
        }));
        let (root, dups) = union(self.root.take(), single);
        debug_assert_eq!(dups, 0);
        self.root = root;
        true
    }

    /// Remove one key; false if absent.
    pub fn remove(&mut self, key: u64) -> bool {
        let (l, found, r) = split(self.root.take(), key);
        self.root = join2(l, r);
        found
    }

    /// Batch insert of a sorted, deduplicated slice (PAM-style: build a
    /// tree from the batch, then join-based union). Unsorted input goes
    /// through `cpma_api::BatchSet::insert_batch`.
    pub fn insert_batch_sorted(&mut self, batch: &[u64]) -> usize {
        if batch.is_empty() {
            return 0;
        }
        let b = build_sorted(batch);
        let (root, dups) = union(self.root.take(), b);
        self.root = root;
        batch.len() - dups as usize
    }

    /// Batch remove of a sorted, deduplicated slice.
    pub fn remove_batch_sorted(&mut self, batch: &[u64]) -> usize {
        if batch.is_empty() || self.root.is_none() {
            return 0;
        }
        let b = build_sorted(batch);
        let (root, removed) = difference(self.root.take(), b);
        self.root = root;
        removed as usize
    }

    /// Apply `f` to all keys in `[start, end)` in order.
    pub fn map_range(&self, start: u64, end: u64, f: &mut impl FnMut(u64)) {
        fn walk(t: &Link, start: u64, end: u64, f: &mut impl FnMut(u64)) {
            if let Some(n) = t {
                cpma_pma::stats::record_read(std::mem::size_of::<Node>());
                if n.key > start {
                    walk(&n.left, start, end, f);
                }
                if n.key >= start && n.key < end {
                    f(n.key);
                }
                if n.key < end {
                    walk(&n.right, start, end, f);
                }
            }
        }
        if start < end {
            walk(&self.root, start, end, f);
        }
    }

    /// Sum of keys in `[start, end)` (the public API is
    /// `RangeSet::range_sum`).
    pub(crate) fn range_sum_excl(&self, start: u64, end: u64) -> u64 {
        let mut s = 0u64;
        self.map_range(start, end, &mut |k| s = s.wrapping_add(k));
        s
    }

    /// Parallel sum of all keys.
    pub fn sum(&self) -> u64 {
        fn walk(t: &Link) -> u64 {
            match t {
                None => 0,
                Some(n) => {
                    if n.size > PAR_CUTOFF as u64 {
                        let (l, r) = rayon::join(|| walk(&n.left), || walk(&n.right));
                        l.wrapping_add(r).wrapping_add(n.key)
                    } else {
                        walk(&n.left)
                            .wrapping_add(walk(&n.right))
                            .wrapping_add(n.key)
                    }
                }
            }
        }
        walk(&self.root)
    }

    /// All keys in order.
    pub fn collect(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.len());
        fn walk(t: &Link, out: &mut Vec<u64>) {
            if let Some(n) = t {
                walk(&n.left, out);
                out.push(n.key);
                walk(&n.right, out);
            }
        }
        walk(&self.root, &mut out);
        out
    }
}

impl Drop for PTree {
    fn drop(&mut self) {
        // Iterative drop: deep treap chains must not overflow the stack.
        let mut stack = Vec::new();
        if let Some(n) = self.root.take() {
            stack.push(n);
        }
        while let Some(mut n) = stack.pop() {
            if let Some(l) = n.left.take() {
                stack.push(l);
            }
            if let Some(r) = n.right.take() {
                stack.push(r);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpma_api::BatchSet;
    use std::collections::BTreeSet;

    #[test]
    fn node_is_32_bytes() {
        assert_eq!(std::mem::size_of::<Node>(), 32);
    }

    #[test]
    fn empty_tree() {
        let t = PTree::new();
        assert!(t.is_empty());
        assert!(!t.has(0));
        assert_eq!(t.successor(0), None);
        assert_eq!(t.sum(), 0);
        assert_eq!(t.collect(), Vec::<u64>::new());
    }

    #[test]
    fn point_ops_match_model() {
        let mut t = PTree::new();
        let mut model = BTreeSet::new();
        let mut x = 5u64;
        for _ in 0..3000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let k = (x >> 40) & 0xfff;
            if x & 2 == 0 {
                assert_eq!(t.insert(k), model.insert(k));
            } else {
                assert_eq!(t.remove(k), model.remove(&k));
            }
        }
        assert_eq!(t.len(), model.len());
        assert_eq!(t.collect(), model.iter().copied().collect::<Vec<_>>());
    }

    #[test]
    fn batch_insert_union_semantics() {
        let mut t = PTree::from_sorted(&[2, 4, 6, 8]);
        let mut batch = vec![1u64, 4, 5, 8, 9];
        let added = t.insert_batch(&mut batch, false);
        assert_eq!(added, 3);
        assert_eq!(t.collect(), vec![1, 2, 4, 5, 6, 8, 9]);
    }

    #[test]
    fn batch_remove_difference_semantics() {
        let mut t = PTree::from_sorted(&(0..100u64).collect::<Vec<_>>());
        let mut batch: Vec<u64> = (0..200u64).step_by(2).collect();
        let removed = t.remove_batch(&mut batch, true);
        assert_eq!(removed, 50);
        assert_eq!(t.len(), 50);
        assert!(t.collect().iter().all(|k| k % 2 == 1));
    }

    #[test]
    fn large_batches_match_model() {
        let mut t = PTree::new();
        let mut model = BTreeSet::new();
        let mut x = 77u64;
        for _ in 0..10 {
            let batch: Vec<u64> = (0..5000)
                .map(|_| {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                    x >> 34
                })
                .collect();
            let mut b = batch.clone();
            let added = t.insert_batch(&mut b, false);
            let before = model.len();
            model.extend(batch.iter().copied());
            assert_eq!(added, model.len() - before);
        }
        assert_eq!(t.collect(), model.iter().copied().collect::<Vec<_>>());
    }

    #[test]
    fn map_range_and_sums() {
        let elems: Vec<u64> = (0..1000u64).map(|i| i * 3).collect();
        let t = PTree::from_sorted(&elems);
        let mut seen = Vec::new();
        t.map_range(10, 40, &mut |k| seen.push(k));
        assert_eq!(seen, vec![12, 15, 18, 21, 24, 27, 30, 33, 36, 39]);
        assert_eq!(t.range_sum_excl(0, u64::MAX), elems.iter().sum::<u64>());
        assert_eq!(t.sum(), elems.iter().sum::<u64>());
        assert_eq!(t.successor(100), Some(102));
    }

    #[test]
    fn size_accounting() {
        let t = PTree::from_sorted(&(0..1000u64).collect::<Vec<_>>());
        assert_eq!(t.size_bytes(), 1000 * 32);
    }

    #[test]
    fn build_from_sorted_is_search_tree() {
        let elems: Vec<u64> = (0..10_000u64).map(|i| i * 7 + 1).collect();
        let t = PTree::from_sorted(&elems);
        assert_eq!(t.collect(), elems);
        for &e in elems.iter().step_by(500) {
            assert!(t.has(e));
            assert!(!t.has(e + 1));
        }
    }
}
