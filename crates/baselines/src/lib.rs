//! Reimplementations of the systems the CPMA paper evaluates against.
//!
//! The paper compares the PMA/CPMA to three families of batch-parallel
//! pointer-based sets (§6):
//!
//! * [`PTree`] — P-trees (the PAM library \[70]): uncompressed binary trees
//!   with join-based parallel bulk operations, 32 bytes per element;
//! * [`PacTree`] — PaC-trees (the CPAM library \[33]): binary trees over
//!   *blocks* of up to `P = 256` elements, in uncompressed (`U-PaC`) and
//!   difference-encoded (`C-PaC`) variants;
//! * [`CTreeSet`] — Aspen-style C-trees \[36]: elements hash-sampled into
//!   chunk heads, each head carrying a compressed chunk of followers.
//!
//! These are clean-room Rust reimplementations built for the benchmark
//! harness: they preserve the baselines' *structural* behaviour (pointer
//! chasing between nodes/blocks, join-based batch updates, per-block
//! compression) rather than matching the original C++ line by line.
//! DESIGN.md §4 records the simplifications.
//!
//! Every baseline implements the canonical `cpma_api` hierarchy
//! (`OrderedSet`/`BatchSet`/`RangeSet`; see this crate's `api` module), so
//! the sweep binaries and equivalence tests drive them exactly like the
//! PMA/CPMA. Batch preprocessing is the shared `cpma_api::normalize_batch`
//! — identical normal form across structures keeps the comparison honest.

pub mod ctree;
pub mod pactree;
pub mod ptree;

mod api;

pub use ctree::CTreeSet;
pub use pactree::{CompressedBlock, PacTree, RawBlock};
pub use ptree::PTree;

/// Uncompressed PaC-tree (the paper's "U-PaC").
pub type UPac = PacTree<RawBlock>;
/// Compressed PaC-tree (the paper's "C-PaC").
pub type CPac = PacTree<CompressedBlock>;
