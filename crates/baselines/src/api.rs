//! [`cpma_api`] trait implementations for the baseline structures.
//!
//! Everything the sweep binaries and equivalence tests need from a
//! baseline goes through these impls; the inherent methods on the types
//! are the structure-specific machinery (join-based unions, block
//! management, chunk hashing).

use crate::pactree::BlockPayload;
use crate::{CTreeSet, PTree, PacTree};
use cpma_api::{BatchSet, OrderedSet, ParallelChunks, RangeSet};

// ---------------------------------------------------------------- P-tree

impl OrderedSet<u64> for PTree {
    const NAME: &'static str = "P-tree";

    fn contains(&self, key: u64) -> bool {
        self.has(key)
    }

    fn len(&self) -> usize {
        PTree::len(self)
    }

    fn min(&self) -> Option<u64> {
        PTree::min(self)
    }

    fn max(&self) -> Option<u64> {
        PTree::max(self)
    }

    fn successor(&self, key: u64) -> Option<u64> {
        PTree::successor(self, key)
    }

    fn size_bytes(&self) -> usize {
        PTree::size_bytes(self)
    }
}

impl BatchSet<u64> for PTree {
    fn new_set() -> Self {
        Self::new()
    }

    fn build_sorted(elems: &[u64]) -> Self {
        Self::from_sorted(elems)
    }

    fn insert_batch_sorted(&mut self, batch: &[u64]) -> usize {
        PTree::insert_batch_sorted(self, batch)
    }

    fn remove_batch_sorted(&mut self, batch: &[u64]) -> usize {
        PTree::remove_batch_sorted(self, batch)
    }
}

impl RangeSet<u64> for PTree {
    fn scan_from(&self, start: u64, f: &mut dyn FnMut(u64) -> bool) {
        self.for_each_from(start, f);
    }

    fn range_sum<R: std::ops::RangeBounds<u64>>(&self, range: R) -> u64 {
        cpma_api::range_sum_via_exclusive(
            &range,
            || self.has(u64::MAX),
            |lo, hi| self.range_sum_excl(lo, hi),
        )
    }
}

impl ParallelChunks<u64> for PTree {}

// ------------------------------------------------------- PaC-tree (U/C)

impl<P: BlockPayload> OrderedSet<u64> for PacTree<P> {
    const NAME: &'static str = P::NAME;

    fn contains(&self, key: u64) -> bool {
        self.has(key)
    }

    fn len(&self) -> usize {
        PacTree::len(self)
    }

    fn min(&self) -> Option<u64> {
        PacTree::min(self)
    }

    fn max(&self) -> Option<u64> {
        PacTree::max(self)
    }

    fn successor(&self, key: u64) -> Option<u64> {
        let mut out = None;
        self.for_each_from(key, &mut |e| {
            out = Some(e);
            false
        });
        out
    }

    fn size_bytes(&self) -> usize {
        PacTree::size_bytes(self)
    }
}

impl<P: BlockPayload> BatchSet<u64> for PacTree<P> {
    fn new_set() -> Self {
        Self::new()
    }

    fn build_sorted(elems: &[u64]) -> Self {
        Self::from_sorted(elems)
    }

    fn insert_batch_sorted(&mut self, batch: &[u64]) -> usize {
        PacTree::insert_batch_sorted(self, batch)
    }

    fn remove_batch_sorted(&mut self, batch: &[u64]) -> usize {
        PacTree::remove_batch_sorted(self, batch)
    }
}

impl<P: BlockPayload> RangeSet<u64> for PacTree<P> {
    fn scan_from(&self, start: u64, f: &mut dyn FnMut(u64) -> bool) {
        self.for_each_from(start, f);
    }

    fn range_sum<R: std::ops::RangeBounds<u64>>(&self, range: R) -> u64 {
        cpma_api::range_sum_via_exclusive(
            &range,
            || self.has(u64::MAX),
            |lo, hi| self.range_sum_excl(lo, hi),
        )
    }
}

impl<P: BlockPayload> ParallelChunks<u64> for PacTree<P> {}

// ---------------------------------------------------------------- C-tree

impl OrderedSet<u64> for CTreeSet {
    const NAME: &'static str = "C-tree";

    fn contains(&self, key: u64) -> bool {
        self.has(key)
    }

    fn len(&self) -> usize {
        CTreeSet::len(self)
    }

    fn min(&self) -> Option<u64> {
        CTreeSet::min(self)
    }

    fn max(&self) -> Option<u64> {
        CTreeSet::max(self)
    }

    fn successor(&self, key: u64) -> Option<u64> {
        let mut out = None;
        self.for_each_from(key, &mut |e| {
            out = Some(e);
            false
        });
        out
    }

    fn size_bytes(&self) -> usize {
        CTreeSet::size_bytes(self)
    }
}

impl BatchSet<u64> for CTreeSet {
    fn new_set() -> Self {
        Self::new()
    }

    fn build_sorted(elems: &[u64]) -> Self {
        Self::from_sorted(elems)
    }

    fn insert_batch_sorted(&mut self, batch: &[u64]) -> usize {
        CTreeSet::insert_batch_sorted(self, batch)
    }

    fn remove_batch_sorted(&mut self, batch: &[u64]) -> usize {
        CTreeSet::remove_batch_sorted(self, batch)
    }
}

impl RangeSet<u64> for CTreeSet {
    fn scan_from(&self, start: u64, f: &mut dyn FnMut(u64) -> bool) {
        self.for_each_from(start, f);
    }
}

impl ParallelChunks<u64> for CTreeSet {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CPac, UPac};
    use cpma_api::conformance::assert_ordered_set_contract;

    #[test]
    fn ptree_conforms() {
        assert_ordered_set_contract::<PTree>(0x9733);
    }

    #[test]
    fn upac_conforms() {
        assert_ordered_set_contract::<UPac>(0x09AC);
    }

    #[test]
    fn cpac_conforms() {
        assert_ordered_set_contract::<CPac>(0xC9AC);
    }

    #[test]
    fn ctree_conforms() {
        assert_ordered_set_contract::<CTreeSet>(0xC733);
    }

    #[test]
    fn names_match_the_paper() {
        assert_eq!(<PTree as OrderedSet<u64>>::NAME, "P-tree");
        assert_eq!(<UPac as OrderedSet<u64>>::NAME, "U-PaC");
        assert_eq!(<CPac as OrderedSet<u64>>::NAME, "C-PaC");
        assert_eq!(<CTreeSet as OrderedSet<u64>>::NAME, "C-tree");
    }
}
