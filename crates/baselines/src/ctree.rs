//! Aspen-style C-trees: hash-sampled heads with compressed chunks \[36].
//!
//! Aspen ("Low-latency graph streaming using compressed purely-functional
//! trees", PLDI '19) stores an ordered set as a search tree over *heads* —
//! elements whose hash falls in a 1/b sample — where each head carries a
//! difference-encoded chunk of the following non-head elements. Sampling
//! makes chunk boundaries a pure function of the element values, so an
//! update only ever rewrites the chunks its keys fall into: a property this
//! reimplementation preserves exactly.
//!
//! The search tree over heads is a `BTreeMap` here rather than a purely
//! functional AVL tree; what the CPMA paper's comparison exercises —
//! pointer hops between chunk allocations, per-chunk decode costs, batch
//! updates that rebuild affected chunks — is retained (DESIGN.md §4).

use cpma_pma::codec;
use rayon::prelude::*;
use std::collections::BTreeMap;

/// Expected chunk length (1 / sampling rate). Aspen's default is on the
/// order of dozens of elements; 128 keeps chunks within a few cache lines
/// once compressed.
const EXPECTED_CHUNK: u64 = 128;

/// Is `e` a chunk head? A 1/EXPECTED_CHUNK hash sample.
#[inline]
fn is_head(e: u64) -> bool {
    let mut z = e.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    (z ^ (z >> 31)) & (EXPECTED_CHUNK - 1) == 0
}

/// A difference-encoded run (first element stored raw inside the bytes).
struct Chunk {
    count: u32,
    bytes: Box<[u8]>,
}

impl Chunk {
    fn encode(elems: &[u64]) -> Self {
        debug_assert!(!elems.is_empty());
        let len = codec::encoded_run_len(elems, 8);
        let mut bytes = vec![0u8; len];
        codec::encode_run(elems, &mut bytes);
        Chunk {
            count: elems.len() as u32,
            bytes: bytes.into_boxed_slice(),
        }
    }

    fn decode(&self, out: &mut Vec<u64>) {
        codec::decode_run(&self.bytes, self.count as usize, out);
    }

    fn for_each(&self, f: &mut dyn FnMut(u64) -> bool) -> bool {
        codec::for_each_in_run(&self.bytes, self.count as usize, f)
    }
}

/// Ordered `u64` set stored as hash-chunked compressed runs. See module docs.
#[derive(Default)]
pub struct CTreeSet {
    /// Elements before the first head (Aspen's "prefix").
    prefix: Option<Chunk>,
    /// head → chunk of `[head, next head)` elements.
    heads: BTreeMap<u64, Chunk>,
    len: usize,
}

impl CTreeSet {
    /// Empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from a sorted, deduplicated slice.
    pub fn from_sorted(elems: &[u64]) -> Self {
        debug_assert!(elems.windows(2).all(|w| w[0] < w[1]));
        if elems.is_empty() {
            return Self::new();
        }
        // Chunk boundaries = head positions; encode chunks in parallel.
        let mut bounds: Vec<usize> = Vec::new();
        for (i, &e) in elems.iter().enumerate() {
            if is_head(e) {
                bounds.push(i);
            }
        }
        let prefix_end = bounds.first().copied().unwrap_or(elems.len());
        let prefix = if prefix_end > 0 {
            Some(Chunk::encode(&elems[..prefix_end]))
        } else {
            None
        };
        let heads: BTreeMap<u64, Chunk> = bounds
            .par_iter()
            .enumerate()
            .map(|(bi, &start)| {
                let end = bounds.get(bi + 1).copied().unwrap_or(elems.len());
                (elems[start], Chunk::encode(&elems[start..end]))
            })
            .collect::<Vec<_>>()
            .into_iter()
            .collect();
        Self {
            prefix,
            heads,
            len: elems.len(),
        }
    }

    /// Number of stored keys.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True iff empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Heap bytes: chunk payloads plus per-entry tree overhead (three words
    /// per head entry, modelling Aspen's tree nodes).
    pub fn size_bytes(&self) -> usize {
        let chunks = self
            .heads
            .values()
            .map(|c| c.bytes.len() + 16)
            .sum::<usize>();
        let prefix = self.prefix.as_ref().map_or(0, |c| c.bytes.len() + 16);
        chunks + prefix + self.heads.len() * 24
    }

    /// Membership test.
    pub fn has(&self, key: u64) -> bool {
        let chunk = match self.heads.range(..=key).next_back() {
            Some((_, c)) => c,
            None => match &self.prefix {
                Some(c) => c,
                None => return false,
            },
        };
        let mut found = false;
        chunk.for_each(&mut |e| {
            if e >= key {
                found = e == key;
                return false;
            }
            true
        });
        found
    }

    /// Batch insert of a sorted, deduplicated slice; returns #added.
    ///
    /// Only the chunks containing batch keys are rewritten; new heads among
    /// the inserted keys split their chunk locally (chunk boundaries are
    /// value-determined, so the rewrite never cascades).
    pub fn insert_batch_sorted(&mut self, batch: &[u64]) -> usize {
        if batch.is_empty() {
            return 0;
        }
        let mut added = 0;
        let mut i = 0;
        while i < batch.len() {
            let key = batch[i];
            // The run of batch keys belonging to the same existing chunk.
            let (chunk_elems, run_end) = match self.heads.range(..=key).next_back() {
                Some((&h, _)) => {
                    let next = self
                        .heads
                        .range((std::ops::Bound::Excluded(h), std::ops::Bound::Unbounded))
                        .next()
                        .map(|(&nh, _)| nh);
                    let run_end = match next {
                        Some(nh) => i + batch[i..].partition_point(|&e| e < nh),
                        None => batch.len(),
                    };
                    let mut cur = Vec::new();
                    self.heads.get(&h).unwrap().decode(&mut cur);
                    self.heads.remove(&h);
                    (cur, run_end)
                }
                None => {
                    // Prefix chunk (keys below the first head).
                    let first_head = self.heads.keys().next().copied();
                    let run_end = match first_head {
                        Some(fh) => i + batch[i..].partition_point(|&e| e < fh),
                        None => batch.len(),
                    };
                    let mut cur = Vec::new();
                    if let Some(c) = self.prefix.take() {
                        c.decode(&mut cur);
                    }
                    (cur, run_end)
                }
            };
            // Merge and re-chunk locally.
            let mut merged = Vec::with_capacity(chunk_elems.len() + (run_end - i));
            let (mut a, mut b) = (0, i);
            while a < chunk_elems.len() && b < run_end {
                match chunk_elems[a].cmp(&batch[b]) {
                    std::cmp::Ordering::Less => {
                        merged.push(chunk_elems[a]);
                        a += 1;
                    }
                    std::cmp::Ordering::Greater => {
                        merged.push(batch[b]);
                        added += 1;
                        b += 1;
                    }
                    std::cmp::Ordering::Equal => {
                        merged.push(chunk_elems[a]);
                        a += 1;
                        b += 1;
                    }
                }
            }
            merged.extend_from_slice(&chunk_elems[a..]);
            while b < run_end {
                merged.push(batch[b]);
                added += 1;
                b += 1;
            }
            self.write_run(&merged);
            i = run_end;
        }
        self.len += added;
        added
    }

    /// Batch remove of a sorted, deduplicated slice; returns #removed.
    pub fn remove_batch_sorted(&mut self, batch: &[u64]) -> usize {
        if batch.is_empty() || self.len == 0 {
            return 0;
        }
        // Collect + difference + rebuild of affected chunks. Removing a head
        // merges its survivors into the preceding chunk, so we conservatively
        // rebuild from the whole affected span: simplest correct form.
        let mut all = self.collect();
        let mut out = Vec::with_capacity(all.len());
        let mut j = 0;
        let mut removed = 0;
        for &e in &all {
            while j < batch.len() && batch[j] < e {
                j += 1;
            }
            if j < batch.len() && batch[j] == e {
                removed += 1;
                j += 1;
            } else {
                out.push(e);
            }
        }
        all.clear();
        *self = Self::from_sorted(&out);
        removed
    }

    /// Write a merged run back as prefix/head chunks (splitting on heads).
    fn write_run(&mut self, merged: &[u64]) {
        if merged.is_empty() {
            return;
        }
        let mut start = 0;
        let mut cur_head: Option<u64> = if is_head(merged[0]) {
            Some(merged[0])
        } else {
            None
        };
        for (idx, &e) in merged.iter().enumerate().skip(1) {
            if is_head(e) {
                let slice = &merged[start..idx];
                match cur_head {
                    Some(h) => {
                        self.heads.insert(h, Chunk::encode(slice));
                    }
                    None => self.prefix = Some(Chunk::encode(slice)),
                }
                start = idx;
                cur_head = Some(e);
            }
        }
        let slice = &merged[start..];
        match cur_head {
            Some(h) => {
                self.heads.insert(h, Chunk::encode(slice));
            }
            None => self.prefix = Some(Chunk::encode(slice)),
        }
    }

    /// Smallest stored key.
    pub fn min(&self) -> Option<u64> {
        let mut out = None;
        self.for_each(&mut |e| {
            out = Some(e);
            false
        });
        out
    }

    /// Largest stored key.
    pub fn max(&self) -> Option<u64> {
        let last = self.heads.values().next_back().or(self.prefix.as_ref())?;
        let mut out = None;
        last.for_each(&mut |e| {
            out = Some(e);
            true
        });
        out
    }

    /// Visit keys ≥ `start` in order until `f` returns false; returns
    /// false iff stopped early (the `RangeSet::scan_from` primitive).
    pub fn for_each_from(&self, start: u64, f: &mut dyn FnMut(u64) -> bool) -> bool {
        // The chunk containing `start` may begin before it.
        if let Some(p) = &self.prefix {
            if !p.for_each(&mut |e| if e < start { true } else { f(e) }) {
                return false;
            }
        }
        for (_, c) in self.heads.range(..=start).next_back().into_iter().chain(
            self.heads
                .range((std::ops::Bound::Excluded(start), std::ops::Bound::Unbounded)),
        ) {
            if !c.for_each(&mut |e| if e < start { true } else { f(e) }) {
                return false;
            }
        }
        true
    }

    /// Apply `f` to all keys in order.
    pub fn for_each(&self, f: &mut dyn FnMut(u64) -> bool) {
        if let Some(p) = &self.prefix {
            if !p.for_each(f) {
                return;
            }
        }
        for c in self.heads.values() {
            if !c.for_each(f) {
                return;
            }
        }
    }

    /// Apply `f` to all keys in `[start, end)` in order.
    pub fn map_range(&self, start: u64, end: u64, f: &mut impl FnMut(u64)) {
        if start >= end {
            return;
        }
        let mut apply = |c: &Chunk| {
            c.for_each(&mut |e| {
                if e >= end {
                    return false;
                }
                if e >= start {
                    f(e);
                }
                true
            })
        };
        // The chunk containing `start` may begin before it.
        if let Some(p) = &self.prefix {
            if !apply(p) {
                return;
            }
        }
        for (_, c) in self.heads.range(..=start).next_back().into_iter().chain(
            self.heads
                .range((std::ops::Bound::Excluded(start), std::ops::Bound::Unbounded)),
        ) {
            if !apply(c) {
                return;
            }
        }
    }

    /// Parallel sum of all keys.
    pub fn sum(&self) -> u64 {
        let chunks: Vec<&Chunk> = self.prefix.iter().chain(self.heads.values()).collect();
        chunks
            .par_iter()
            .map(|c| {
                let mut s = 0u64;
                c.for_each(&mut |e| {
                    s = s.wrapping_add(e);
                    true
                });
                s
            })
            .reduce(|| 0, u64::wrapping_add)
    }

    /// All keys in order.
    pub fn collect(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.len);
        if let Some(p) = &self.prefix {
            p.decode(&mut out);
        }
        for c in self.heads.values() {
            c.decode(&mut out);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn lcg(n: usize, seed: u64, bits: u32) -> Vec<u64> {
        let mut x = seed;
        (0..n)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                x >> (64 - bits)
            })
            .collect()
    }

    #[test]
    fn build_roundtrip() {
        let mut elems = lcg(20_000, 3, 34);
        elems.sort_unstable();
        elems.dedup();
        let t = CTreeSet::from_sorted(&elems);
        assert_eq!(t.len(), elems.len());
        assert_eq!(t.collect(), elems);
        for &e in elems.iter().step_by(997) {
            assert!(t.has(e));
        }
        assert!(!t.has(elems.last().unwrap() + 1));
    }

    #[test]
    fn empty_set() {
        let t = CTreeSet::new();
        assert!(t.is_empty());
        assert!(!t.has(7));
        assert_eq!(t.sum(), 0);
        assert_eq!(t.collect(), Vec::<u64>::new());
        assert_eq!(t.size_bytes(), 0);
    }

    #[test]
    fn batch_inserts_match_model() {
        let mut t = CTreeSet::new();
        let mut model = BTreeSet::new();
        for round in 0..6u64 {
            let mut keys = lcg(4000, round + 10, 28);
            keys.sort_unstable();
            keys.dedup();
            let before = model.len();
            model.extend(keys.iter().copied());
            let added = t.insert_batch_sorted(&keys);
            assert_eq!(added, model.len() - before, "round {round}");
        }
        assert_eq!(t.collect(), model.iter().copied().collect::<Vec<_>>());
        assert_eq!(t.sum(), model.iter().sum::<u64>());
    }

    #[test]
    fn removals_match_model() {
        let mut elems = lcg(10_000, 5, 26);
        elems.sort_unstable();
        elems.dedup();
        let mut t = CTreeSet::from_sorted(&elems);
        let mut model: BTreeSet<u64> = elems.iter().copied().collect();
        let dels: Vec<u64> = elems.iter().step_by(3).copied().collect();
        let removed = t.remove_batch_sorted(&dels);
        for d in &dels {
            model.remove(d);
        }
        assert_eq!(removed, dels.len());
        assert_eq!(t.len(), model.len());
        assert_eq!(t.collect(), model.iter().copied().collect::<Vec<_>>());
    }

    #[test]
    fn map_range_matches_filter() {
        let mut elems = lcg(5000, 9, 24);
        elems.sort_unstable();
        elems.dedup();
        let t = CTreeSet::from_sorted(&elems);
        let (a, b) = (elems[100], elems[4000]);
        let mut seen = Vec::new();
        t.map_range(a, b, &mut |e| seen.push(e));
        let want: Vec<u64> = elems.iter().copied().filter(|&e| e >= a && e < b).collect();
        assert_eq!(seen, want);
    }

    #[test]
    fn chunk_statistics_reasonable() {
        let elems: Vec<u64> = (0..100_000u64).collect();
        let t = CTreeSet::from_sorted(&elems);
        // Expected chunk length 128 → ~780 heads for 100k elements.
        let heads = t.heads.len();
        assert!(heads > 400 && heads < 1600, "heads = {heads}");
        // Dense run compresses to ~1 byte/element.
        assert!(t.size_bytes() < 100_000 * 2, "{}", t.size_bytes());
    }

    #[test]
    fn insert_creating_new_heads_splits_chunks() {
        // Insert keys until statistically some of them must be heads.
        let mut t = CTreeSet::from_sorted(&(0..1000u64).map(|i| i * 1000).collect::<Vec<_>>());
        let heads_before = t.heads.len();
        let extra: Vec<u64> = (0..5000u64).map(|i| i * 200 + 7).collect();
        let mut uniq = extra.clone();
        uniq.sort_unstable();
        uniq.dedup();
        t.insert_batch_sorted(&uniq);
        assert!(t.heads.len() > heads_before);
        let mut all: Vec<u64> = (0..1000u64).map(|i| i * 1000).collect();
        all.extend(uniq);
        all.sort_unstable();
        all.dedup();
        assert_eq!(t.collect(), all);
    }
}
