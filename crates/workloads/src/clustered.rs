//! Clustered (run-structured) key workloads.
//!
//! Real key spaces are rarely uniform: auto-incremented identifiers,
//! timestamps, and packed graph edges arrive as *runs* of consecutive (or
//! near-consecutive) values separated by larger jumps. Such inputs are the
//! natural habitat of the hybrid leaf codec — runs of consecutive keys cost
//! one **bit** per element in a bitmap leaf versus one **byte** per element
//! as delta codes, while the inter-run gaps keep sparse leaves on the delta
//! side. This generator produces exactly that shape, seed-deterministically.
//!
//! The model: the key space is a sequence of runs. Run `r` starts at a
//! cursor, covers `len_r` consecutive keys with stride 1, and the cursor
//! then jumps ahead by a gap drawn from a geometric-like distribution with
//! the configured mean. Run lengths are uniform in
//! `[run_len / 2, 3 · run_len / 2]`, so the density inside a run is 1.0 and
//! the global density is about `run_len / (run_len + mean_gap)`.

use crate::keys::shuffle;
use crate::rng::SplitMix64;

/// Configuration of a clustered key stream. Construct with
/// [`ClusteredKeys::new`] and refine with the builder-style setters.
#[derive(Clone, Copy, Debug)]
pub struct ClusteredKeys {
    /// Mean run length (consecutive keys per cluster).
    run_len: u64,
    /// Mean gap between the end of one run and the start of the next.
    mean_gap: u64,
    /// First key of the first run.
    start: u64,
    seed: u64,
}

impl ClusteredKeys {
    /// A clustered stream with the given mean run length and mean
    /// inter-run gap. `run_len` must be ≥ 1; `mean_gap` ≥ 1.
    pub fn new(run_len: u64, mean_gap: u64, seed: u64) -> Self {
        assert!(run_len >= 1, "run_len must be >= 1");
        assert!(mean_gap >= 1, "mean_gap must be >= 1");
        Self {
            run_len,
            mean_gap,
            start: 0,
            seed,
        }
    }

    /// Offset the whole key space (first run starts here).
    pub fn starting_at(mut self, start: u64) -> Self {
        self.start = start;
        self
    }

    /// Generate `n` keys, sorted ascending and distinct.
    ///
    /// Deterministic in `(self, n)` — thread count and platform never
    /// change the output.
    pub fn sorted(&self, n: usize) -> Vec<u64> {
        let mut out = Vec::with_capacity(n);
        let mut rng = SplitMix64::new(self.seed);
        let mut cursor = self.start;
        while out.len() < n {
            // Uniform in [run_len/2, 3·run_len/2] (mean = run_len).
            let lo = (self.run_len / 2).max(1);
            let span = self.run_len + 1 - lo; // hi = run_len + run_len/2
            let len = (lo + rng.next_below(span + self.run_len / 2)).min((n - out.len()) as u64);
            for k in 0..len {
                out.push(cursor + k);
            }
            // Geometric-ish gap with the configured mean: 1 + floor of an
            // exponential-shaped draw built from two uniform halves (cheap,
            // deterministic, heavy enough tail to scatter clusters).
            let u = rng.next_below(self.mean_gap.max(1) * 2) + 1;
            let gap = 1 + u / 2 + rng.next_below(u);
            cursor = cursor
                .checked_add(len + gap)
                .expect("clustered key space exceeded u64");
        }
        out
    }

    /// Generate `n` keys in a shuffled (insertion) order — what a batch
    /// insert benchmark feeds the structure.
    pub fn shuffled(&self, n: usize) -> Vec<u64> {
        let mut keys = self.sorted(n);
        shuffle(&mut keys, self.seed ^ 0x5EED_C1D5);
        keys
    }
}

/// Convenience: `n` clustered keys with the given run length and gap,
/// shuffled, seed-deterministic (the common benchmark call).
pub fn clustered_keys(n: usize, run_len: u64, mean_gap: u64, seed: u64) -> Vec<u64> {
    ClusteredKeys::new(run_len, mean_gap, seed).shuffled(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorted_is_sorted_distinct_and_sized() {
        let keys = ClusteredKeys::new(64, 1 << 20, 42).sorted(50_000);
        assert_eq!(keys.len(), 50_000);
        assert!(keys.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn runs_have_the_requested_shape() {
        let run_len = 100u64;
        let keys = ClusteredKeys::new(run_len, 1 << 24, 7).sorted(100_000);
        // Count maximal runs of consecutive keys; their mean length must
        // sit near run_len (uniform in [50, 150]).
        let mut runs = Vec::new();
        let mut cur = 1usize;
        for w in keys.windows(2) {
            if w[1] == w[0] + 1 {
                cur += 1;
            } else {
                runs.push(cur);
                cur = 1;
            }
        }
        runs.push(cur);
        let mean = runs.iter().sum::<usize>() as f64 / runs.len() as f64;
        assert!(
            (run_len as f64 * 0.8..=run_len as f64 * 1.2).contains(&mean),
            "mean run length {mean} far from {run_len}"
        );
        // Gaps must dominate the key space (clusters, not a dense block).
        let span = keys.last().unwrap() - keys[0];
        assert!(span > 10 * keys.len() as u64);
    }

    #[test]
    fn deterministic_across_calls_and_shuffled_is_permutation() {
        let g = ClusteredKeys::new(32, 1000, 9);
        assert_eq!(g.sorted(10_000), g.sorted(10_000));
        assert_eq!(g.shuffled(10_000), g.shuffled(10_000));
        let mut s = g.shuffled(10_000);
        s.sort_unstable();
        assert_eq!(s, g.sorted(10_000));
        // Different seeds give different streams.
        assert_ne!(
            g.sorted(10_000),
            ClusteredKeys::new(32, 1000, 10).sorted(10_000)
        );
    }

    #[test]
    fn starting_at_offsets_the_space() {
        let keys = ClusteredKeys::new(16, 100, 3)
            .starting_at(1 << 40)
            .sorted(1000);
        assert!(keys.iter().all(|&k| k >= 1 << 40));
    }

    #[test]
    fn short_and_single_runs_work() {
        let keys = ClusteredKeys::new(1, 10, 5).sorted(100);
        assert_eq!(keys.len(), 100);
        assert!(keys.windows(2).all(|w| w[0] < w[1]));
    }
}
