//! Deterministic workload generation for the CPMA reproduction.
//!
//! The paper evaluates the PMA/CPMA and its baselines on a fixed set of input
//! distributions:
//!
//! * **uniform 40-bit keys** — the main microbenchmark input ("40-bit numbers
//!   gives a balance between the compression ratio and the number of
//!   duplicates", §6);
//! * **zipfian 34-bit keys** with skew `α = 0.99` (the YCSB parameter);
//! * **RMAT edges** with `a = 0.5, b = c = 0.1, d = 0.3` (the PaC-tree paper's
//!   update-stream distribution, used for the graph insert benchmark);
//! * **Erdős–Rényi** `G(n, p)` graphs (the synthetic graph in Table 7);
//! * **clustered runs** — bursts of consecutive keys separated by large
//!   gaps (auto-increment ids, timestamps, packed edges); the workload the
//!   hybrid bitmap/delta leaf codec is designed for.
//!
//! Everything here is seeded and reproducible: the same seed always yields
//! the same byte-for-byte workload, independent of thread count.

pub mod clustered;
pub mod er;
pub mod keys;
pub mod rmat;
pub mod rng;
pub mod zipf;

pub use clustered::{clustered_keys, ClusteredKeys};
pub use er::erdos_renyi_edges;
pub use keys::{batches_of, dedup_sorted, uniform_keys, uniform_keys_in, unique_uniform_keys};
pub use rmat::RmatGenerator;
pub use rng::SplitMix64;
pub use zipf::ZipfGenerator;

/// Pack a directed edge `(src, dst)` into the single `u64` representation
/// F-Graph stores in its CPMA: source in the upper 32 bits, destination in
/// the lower 32 bits (§6, "F-Graph description").
#[inline]
pub fn pack_edge(src: u32, dst: u32) -> u64 {
    ((src as u64) << 32) | dst as u64
}

/// Inverse of [`pack_edge`].
#[inline]
pub fn unpack_edge(e: u64) -> (u32, u32) {
    ((e >> 32) as u32, e as u32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_roundtrip() {
        for &(s, d) in &[
            (0, 0),
            (1, 2),
            (u32::MAX, 0),
            (0, u32::MAX),
            (123456, 654321),
        ] {
            assert_eq!(unpack_edge(pack_edge(s, d)), (s, d));
        }
    }

    #[test]
    fn pack_orders_by_source_first() {
        // Sorted packed edges group by source, then destination — the property
        // F-Graph relies on for implicit adjacency lists.
        assert!(pack_edge(1, u32::MAX) < pack_edge(2, 0));
        assert!(pack_edge(5, 3) < pack_edge(5, 4));
    }
}
