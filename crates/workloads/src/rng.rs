//! Small, fast, deterministic PRNGs.
//!
//! Benchmark inputs must be reproducible across runs and machines, so we use
//! our own SplitMix64 (Steele, Lea & Flood 2014) rather than a library RNG
//! whose stream could change between versions. SplitMix64 passes BigCrush,
//! is a single multiply-xor-shift pipeline, and is the standard seeder for
//! the xoshiro family.

/// SplitMix64 PRNG. One `u64` of state; every call advances the state by a
/// fixed odd constant and hashes it, so jumping ahead is O(1).
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a seed. Distinct seeds give independent-looking
    /// streams.
    #[inline]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)` using Lemire's multiply-shift reduction
    /// (no modulo bias worth caring about for workload generation; we apply
    /// the widening-multiply map which is exact for bound ≤ 2^32 and has
    /// ≤ 2^-64 bias otherwise).
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform value with exactly `bits` random low bits (`bits` ≤ 64).
    #[inline]
    pub fn next_bits(&mut self, bits: u32) -> u64 {
        debug_assert!((1..=64).contains(&bits));
        if bits == 64 {
            self.next_u64()
        } else {
            self.next_u64() >> (64 - bits)
        }
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Split off an independent generator (used to give each parallel task
    /// its own stream while keeping the whole workload a function of one
    /// seed).
    #[inline]
    pub fn split(&mut self) -> SplitMix64 {
        SplitMix64::new(self.next_u64())
    }
}

/// Stafford variant 13 finalizer — a high-quality 64-bit mixer used to
/// scramble zipfian ranks (so that "rank 0 is hottest" does not mean
/// "smallest key is hottest").
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn next_below_respects_bound() {
        let mut r = SplitMix64::new(7);
        for bound in [1u64, 2, 3, 10, 1000, u32::MAX as u64 + 5] {
            for _ in 0..200 {
                assert!(r.next_below(bound) < bound);
            }
        }
    }

    #[test]
    fn next_bits_respects_width() {
        let mut r = SplitMix64::new(9);
        for bits in [1u32, 7, 34, 40, 63, 64] {
            for _ in 0..100 {
                let v = r.next_bits(bits);
                if bits < 64 {
                    assert!(v < 1u64 << bits, "bits={bits} v={v}");
                }
            }
        }
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut r = SplitMix64::new(11);
        for _ in 0..1000 {
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn next_below_covers_small_ranges() {
        // Sanity: over many draws every residue of a small bound appears.
        let mut r = SplitMix64::new(5);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[r.next_below(8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn split_streams_are_independent() {
        let mut root = SplitMix64::new(13);
        let mut c1 = root.split();
        let mut c2 = root.split();
        let matches = (0..64).filter(|_| c1.next_u64() == c2.next_u64()).count();
        assert_eq!(matches, 0);
    }
}
