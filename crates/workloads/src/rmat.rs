//! RMAT (recursive-matrix) edge generator.
//!
//! Used in two places in the paper: the graph-update benchmark samples
//! directed edges "from an RMAT generator (with a=0.5; b=c=0.1; d=0.3 to
//! match the distribution from the PaC-tree paper)" (§6), and — in this
//! reproduction — RMAT graphs stand in for the SNAP social networks
//! (LiveJournal/Orkut/Twitter/Friendster), which we cannot download; RMAT
//! produces the same heavy-tailed degree distribution those graphs exhibit
//! (see DESIGN.md §4, substitutions).

use crate::pack_edge;
use crate::rng::SplitMix64;
use rayon::prelude::*;

/// RMAT generator over a `2^scale × 2^scale` adjacency matrix.
#[derive(Clone, Debug)]
pub struct RmatGenerator {
    scale: u32,
    a: f64,
    ab: f64,
    abc: f64,
    seed: u64,
}

impl RmatGenerator {
    /// New generator; quadrant probabilities must sum to 1.
    pub fn new(scale: u32, a: f64, b: f64, c: f64, d: f64, seed: u64) -> Self {
        assert!((1..=32).contains(&scale));
        assert!(
            (a + b + c + d - 1.0).abs() < 1e-9,
            "probabilities must sum to 1"
        );
        Self {
            scale,
            a,
            ab: a + b,
            abc: a + b + c,
            seed,
        }
    }

    /// The paper's parameters: a=0.5, b=c=0.1, d=0.3.
    pub fn paper_config(scale: u32, seed: u64) -> Self {
        Self::new(scale, 0.5, 0.1, 0.1, 0.3, seed)
    }

    /// Number of vertices (2^scale).
    pub fn num_vertices(&self) -> u64 {
        1u64 << self.scale
    }

    /// Sample one directed edge with an explicit RNG.
    #[inline]
    fn sample_with(&self, rng: &mut SplitMix64) -> (u32, u32) {
        let mut src = 0u64;
        let mut dst = 0u64;
        for _ in 0..self.scale {
            src <<= 1;
            dst <<= 1;
            let r = rng.next_f64();
            if r < self.a {
                // top-left quadrant: no bits set
            } else if r < self.ab {
                dst |= 1;
            } else if r < self.abc {
                src |= 1;
            } else {
                src |= 1;
                dst |= 1;
            }
        }
        (src as u32, dst as u32)
    }

    /// Generate `count` directed edges (with possible duplicates, as in the
    /// paper's insert streams), packed as `u64`s. Deterministic in the seed
    /// regardless of parallelism.
    pub fn directed_edges(&self, count: usize) -> Vec<u64> {
        const CHUNK: usize = 1 << 15;
        let mut out = vec![0u64; count];
        out.par_chunks_mut(CHUNK)
            .enumerate()
            .for_each(|(ci, chunk)| {
                let mut rng =
                    SplitMix64::new(self.seed ^ (ci as u64).wrapping_mul(0x9E3779B97F4A7C15));
                for e in chunk.iter_mut() {
                    let (s, d) = self.sample_with(&mut rng);
                    *e = pack_edge(s, d);
                }
            });
        out
    }

    /// Generate a simple undirected graph with roughly `target_edges`
    /// *undirected* edges: samples directed edges, drops self-loops,
    /// symmetrizes, dedups. Returns sorted packed edges (both directions
    /// present). The result is what the graph benchmarks load as the base
    /// graph.
    pub fn undirected_graph(&self, target_edges: usize) -> Vec<u64> {
        // Oversample: duplicates and self-loops shrink the result.
        let mut sampled = self.directed_edges(target_edges * 2);
        let mut edges = Vec::with_capacity(sampled.len() * 2);
        for &e in &sampled {
            let (s, d) = crate::unpack_edge(e);
            if s != d {
                edges.push(pack_edge(s, d));
                edges.push(pack_edge(d, s));
            }
        }
        sampled.clear();
        edges.par_sort_unstable();
        edges.dedup();
        edges
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::unpack_edge;

    #[test]
    fn edges_within_vertex_space() {
        let g = RmatGenerator::paper_config(10, 1);
        for &e in &g.directed_edges(5000) {
            let (s, d) = unpack_edge(e);
            assert!((s as u64) < g.num_vertices());
            assert!((d as u64) < g.num_vertices());
        }
    }

    #[test]
    fn deterministic() {
        let g = RmatGenerator::paper_config(12, 5);
        assert_eq!(g.directed_edges(10_000), g.directed_edges(10_000));
    }

    #[test]
    fn skewed_out_degrees() {
        // a=0.5 concentrates mass on low vertex ids: the max out-degree must
        // far exceed the average.
        let g = RmatGenerator::paper_config(12, 3);
        let edges = g.directed_edges(100_000);
        let mut deg = vec![0u32; 1 << 12];
        for &e in &edges {
            deg[unpack_edge(e).0 as usize] += 1;
        }
        let avg = 100_000.0 / (1 << 12) as f64;
        let max = *deg.iter().max().unwrap() as f64;
        assert!(max > avg * 5.0, "max {max} vs avg {avg}");
    }

    #[test]
    fn undirected_graph_is_symmetric_simple() {
        let g = RmatGenerator::paper_config(8, 9);
        let edges = g.undirected_graph(2000);
        let set: std::collections::HashSet<u64> = edges.iter().copied().collect();
        assert_eq!(set.len(), edges.len(), "duplicates remain");
        for &e in &edges {
            let (s, d) = unpack_edge(e);
            assert_ne!(s, d, "self-loop remains");
            assert!(set.contains(&pack_edge(d, s)), "missing reverse edge");
        }
        // Sorted.
        assert!(edges.windows(2).all(|w| w[0] < w[1]));
    }
}
