//! Zipfian key generator (YCSB-style).
//!
//! The paper's skewed microbenchmark "generates 34-bit numbers with skew
//! parameter α = 0.99 (parameter taken from the YCSB)". We implement the
//! classic Gray et al. "Quickly generating billion-record synthetic
//! databases" algorithm, the same one YCSB uses, with the standard
//! large-`n` approximation of the zeta normalizer (the exact sum over 2³⁴
//! terms would dominate workload generation).
//!
//! Like YCSB's `ScrambledZipfianGenerator`, ranks are scrambled through a
//! 64-bit mixer so the hot items are spread across the key space rather than
//! clustered at small keys — without scrambling, a sorted-set benchmark
//! would see all the skew land in a single PMA leaf and measure nothing but
//! that leaf.

use crate::rng::{mix64, SplitMix64};

/// Zipfian generator over `[0, n)` with skew `theta` (α in the paper).
#[derive(Clone, Debug)]
pub struct ZipfGenerator {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    zeta2theta: f64,
    rng: SplitMix64,
    scramble: bool,
}

/// Number of leading terms of the zeta sum computed exactly; the tail is
/// approximated by the integral ∫ x^-θ dx, which for θ < 1 is accurate to
/// well under 0.1% at this cutoff.
const EXACT_TERMS: u64 = 1 << 20;

fn zeta_approx(n: u64, theta: f64) -> f64 {
    let exact = n.min(EXACT_TERMS);
    let mut sum = 0.0;
    for i in 1..=exact {
        sum += 1.0 / (i as f64).powf(theta);
    }
    if n > exact {
        // ∫_{exact}^{n} x^-θ dx  = (n^{1-θ} − exact^{1-θ}) / (1−θ)
        let one_minus = 1.0 - theta;
        sum += ((n as f64).powf(one_minus) - (exact as f64).powf(one_minus)) / one_minus;
    }
    sum
}

impl ZipfGenerator {
    /// Zipfian over `[0, n)` with the given skew; `scramble` spreads ranks
    /// over the space (YCSB scrambled-zipfian behaviour).
    pub fn new(n: u64, theta: f64, seed: u64, scramble: bool) -> Self {
        assert!(n >= 2, "zipf needs at least 2 items");
        assert!(theta > 0.0 && theta < 1.0, "theta must be in (0,1)");
        let zetan = zeta_approx(n, theta);
        let zeta2theta = zeta_approx(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2theta / zetan);
        Self {
            n,
            theta,
            alpha,
            zetan,
            eta,
            zeta2theta,
            rng: SplitMix64::new(seed),
            scramble,
        }
    }

    /// The paper's configuration: 34-bit key space, α = 0.99, scrambled.
    pub fn paper_config(seed: u64) -> Self {
        Self::new(1u64 << 34, 0.99, seed, true)
    }

    /// Draw the next zipfian rank (0 = hottest) before scrambling.
    #[inline]
    pub fn next_rank(&mut self) -> u64 {
        let u = self.rng.next_f64();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let rank = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        rank.min(self.n - 1)
    }

    /// Draw the next key in `[0, n)`.
    #[inline]
    pub fn next_key(&mut self) -> u64 {
        let rank = self.next_rank();
        if self.scramble {
            // Offset before mixing: mix64 is a bijection with mix64(0) = 0,
            // which would leave the hottest rank unscrambled.
            mix64(rank.wrapping_add(0x9E3779B97F4A7C15)) % self.n
        } else {
            rank
        }
    }

    /// Generate a vector of `count` keys.
    pub fn keys(&mut self, count: usize) -> Vec<u64> {
        (0..count).map(|_| self.next_key()).collect()
    }

    /// Item-space size.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Accessor used by tests to validate the normalizer.
    pub fn zeta2theta(&self) -> f64 {
        self.zeta2theta
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeta_exact_matches_small_n() {
        // For n below the cutoff the approximation is the exact sum.
        let z = zeta_approx(100, 0.99);
        let exact: f64 = (1..=100u64).map(|i| 1.0 / (i as f64).powf(0.99)).sum();
        assert!((z - exact).abs() < 1e-12);
    }

    #[test]
    fn zeta_tail_approx_is_close() {
        // Compare the integral tail against the exact sum at a size we can
        // still afford: n = 2^22 with cutoff 2^20.
        let n = 1u64 << 22;
        let theta = 0.99;
        let approx = zeta_approx(n, theta);
        let exact: f64 = (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum();
        assert!(
            (approx - exact).abs() / exact < 1e-3,
            "approx {approx} vs exact {exact}"
        );
    }

    #[test]
    fn ranks_in_range_and_skewed() {
        let mut z = ZipfGenerator::new(1 << 20, 0.99, 42, false);
        let mut rank0 = 0usize;
        let n = 200_000;
        for _ in 0..n {
            let r = z.next_rank();
            assert!(r < 1 << 20);
            if r == 0 {
                rank0 += 1;
            }
        }
        // With θ=0.99 and n=2^20, P(rank 0) ≈ 1/ζ ≈ 5.8%. Accept a broad band.
        let frac = rank0 as f64 / n as f64;
        assert!(frac > 0.02 && frac < 0.15, "rank-0 fraction {frac}");
    }

    #[test]
    fn scrambled_keys_stay_in_range() {
        let mut z = ZipfGenerator::paper_config(7);
        for _ in 0..10_000 {
            assert!(z.next_key() < 1u64 << 34);
        }
    }

    #[test]
    fn scrambling_spreads_hot_keys() {
        let mut z = ZipfGenerator::new(1 << 30, 0.99, 21, true);
        let keys = z.keys(50_000);
        // The hottest key must not be tiny (scrambled), and duplicates must
        // exist (skew).
        let mut counts = std::collections::HashMap::new();
        for &k in &keys {
            *counts.entry(k).or_insert(0usize) += 1;
        }
        let (&hot, &hits) = counts.iter().max_by_key(|(_, &c)| c).unwrap();
        assert!(hits > 1000, "no skew: hottest only {hits}");
        assert!(hot > 1 << 20, "hot key not scrambled: {hot}");
    }

    #[test]
    fn deterministic() {
        let a = ZipfGenerator::paper_config(3).keys(1000);
        let b = ZipfGenerator::paper_config(3).keys(1000);
        assert_eq!(a, b);
    }
}
