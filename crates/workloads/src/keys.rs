//! Uniform key workloads and batch helpers.
//!
//! The paper's main microbenchmark draws 40-bit uniform random numbers: wide
//! enough that duplicates are rare at 2×10⁸ elements, narrow enough that the
//! CPMA's delta compression has something to compress (§6, "Experimental
//! setup").

use crate::rng::SplitMix64;
use rayon::prelude::*;

/// Generate `n` uniform keys of the given bit width (the paper uses 40).
/// Duplicates may occur, exactly as in the paper's workload.
pub fn uniform_keys(n: usize, bits: u32, seed: u64) -> Vec<u64> {
    // Generated in parallel chunks, but the output depends only on the seed:
    // each chunk uses a stream derived from (seed, chunk index).
    const CHUNK: usize = 1 << 16;
    let chunks = n.div_ceil(CHUNK.max(1)).max(1);
    let mut out = vec![0u64; n];
    out.par_chunks_mut(CHUNK)
        .enumerate()
        .for_each(|(ci, chunk)| {
            let mut rng = SplitMix64::new(seed ^ (ci as u64).wrapping_mul(0xA24BAED4963EE407));
            for v in chunk.iter_mut() {
                *v = rng.next_bits(bits);
            }
        });
    debug_assert!(chunks >= 1);
    out
}

/// Generate `n` uniform keys in `[lo, hi)`.
pub fn uniform_keys_in(n: usize, lo: u64, hi: u64, seed: u64) -> Vec<u64> {
    assert!(hi > lo, "empty range");
    let width = hi - lo;
    let mut rng = SplitMix64::new(seed);
    (0..n).map(|_| lo + rng.next_below(width)).collect()
}

/// Generate `n` *distinct* uniform keys of the given bit width. Keeps drawing
/// until enough unique values exist, so `n` must be comfortably below
/// `2^bits`.
pub fn unique_uniform_keys(n: usize, bits: u32, seed: u64) -> Vec<u64> {
    assert!(
        bits >= 63 || (n as u128) <= (1u128 << bits) / 2,
        "cannot draw {n} unique values from a {bits}-bit space"
    );
    let mut keys = uniform_keys(n + n / 8 + 16, bits, seed);
    keys.sort_unstable();
    keys.dedup();
    let mut rng = SplitMix64::new(seed ^ 0xDEAD_BEEF);
    while keys.len() < n {
        let mut extra: Vec<u64> = (0..(n - keys.len()) * 2 + 16)
            .map(|_| rng.next_bits(bits))
            .collect();
        extra.sort_unstable();
        keys.extend(extra);
        keys.sort_unstable();
        keys.dedup();
    }
    keys.truncate(n);
    // Return in shuffled (insertion) order, not sorted order.
    shuffle(&mut keys, seed ^ 0xC0FFEE);
    keys
}

/// Fisher–Yates shuffle driven by a seed.
pub fn shuffle<T>(items: &mut [T], seed: u64) {
    let mut rng = SplitMix64::new(seed);
    for i in (1..items.len()).rev() {
        let j = rng.next_below(i as u64 + 1) as usize;
        items.swap(i, j);
    }
}

/// Sort and deduplicate a batch in place (what `insert_batch(sorted=false)`
/// does internally); returned for convenience.
pub fn dedup_sorted(mut batch: Vec<u64>) -> Vec<u64> {
    batch.par_sort_unstable();
    batch.dedup();
    batch
}

/// Split a key stream into consecutive batches of `batch_size` (the last
/// batch may be short). Used by every throughput experiment: "inserting 100
/// million elements in batches into a data structure that starts with 100
/// million elements".
pub fn batches_of(keys: &[u64], batch_size: usize) -> impl Iterator<Item = &[u64]> {
    assert!(batch_size > 0);
    keys.chunks(batch_size)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_keys_respect_bit_width() {
        let keys = uniform_keys(10_000, 40, 1);
        assert_eq!(keys.len(), 10_000);
        assert!(keys.iter().all(|&k| k < 1u64 << 40));
        // 40-bit space: duplicates in 10k draws are vanishingly unlikely but
        // allowed; just check the values are spread out.
        let lo = keys.iter().filter(|&&k| k < 1u64 << 39).count();
        assert!(lo > 4000 && lo < 6000, "not uniform: {lo}");
    }

    #[test]
    fn uniform_keys_deterministic() {
        assert_eq!(uniform_keys(5000, 40, 7), uniform_keys(5000, 40, 7));
        assert_ne!(uniform_keys(5000, 40, 7), uniform_keys(5000, 40, 8));
    }

    #[test]
    fn uniform_keys_in_range() {
        let keys = uniform_keys_in(1000, 100, 200, 3);
        assert!(keys.iter().all(|&k| (100..200).contains(&k)));
    }

    #[test]
    fn unique_keys_are_unique() {
        let keys = unique_uniform_keys(5000, 20, 11);
        assert_eq!(keys.len(), 5000);
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 5000);
    }

    #[test]
    fn dedup_sorted_sorts_and_dedups() {
        let out = dedup_sorted(vec![5, 1, 5, 3, 1, 2]);
        assert_eq!(out, vec![1, 2, 3, 5]);
    }

    #[test]
    fn batches_cover_everything() {
        let keys: Vec<u64> = (0..107).collect();
        let collected: Vec<u64> = batches_of(&keys, 10).flatten().copied().collect();
        assert_eq!(collected, keys);
        assert_eq!(batches_of(&keys, 10).count(), 11);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut v: Vec<u64> = (0..1000).collect();
        shuffle(&mut v, 99);
        assert_ne!(v, (0..1000).collect::<Vec<u64>>());
        let mut s = v.clone();
        s.sort_unstable();
        assert_eq!(s, (0..1000).collect::<Vec<u64>>());
    }

    #[test]
    fn empty_inputs_ok() {
        assert!(uniform_keys(0, 40, 1).is_empty());
        assert!(dedup_sorted(vec![]).is_empty());
        let empty: Vec<u64> = vec![];
        assert_eq!(batches_of(&empty, 4).count(), 0);
    }
}
