//! Erdős–Rényi `G(n, p)` graph generator.
//!
//! The paper evaluates on "an Erdős–Rényi (ER) graph with n = 10⁷ and
//! p = 5·10⁻⁶" (§6, Datasets). Enumerating all n² cells is infeasible, so we
//! use the standard geometric-skipping construction (Batagelj & Brandes
//! 2005): iterate over the implicit row-major cell index and jump ahead by
//! geometrically distributed gaps, which touches only the expected `p·n²`
//! present cells.

use crate::pack_edge;
use crate::rng::SplitMix64;
use rayon::prelude::*;

/// Generate a directed ER graph as sorted packed edges, excluding self-loops,
/// then symmetrized (both directions present) so it matches the undirected
/// graphs the paper's systems store.
pub fn erdos_renyi_edges(n: u32, p: f64, seed: u64) -> Vec<u64> {
    assert!(n >= 2);
    assert!(p > 0.0 && p < 1.0);
    let total_cells = (n as u64) * (n as u64);

    // Parallelize over row stripes; each stripe owns the cell range
    // [row_start*n, row_end*n) and skips through it independently.
    const ROWS_PER_STRIPE: u64 = 4096;
    let stripes = (n as u64).div_ceil(ROWS_PER_STRIPE);
    let log1m = (-p).ln_1p(); // ln(1 - p), p small so this is ≈ -p

    let mut per_stripe: Vec<Vec<u64>> = (0..stripes)
        .into_par_iter()
        .map(|s| {
            let start_cell = s * ROWS_PER_STRIPE * n as u64;
            let end_cell = ((s + 1) * ROWS_PER_STRIPE * n as u64).min(total_cells);
            let mut rng = SplitMix64::new(seed ^ s.wrapping_mul(0xD1B54A32D192ED03));
            let mut out = Vec::new();
            let mut cell = start_cell;
            loop {
                // Geometric gap: floor(ln(U)/ln(1-p)) cells skipped.
                let u = rng.next_f64().max(f64::MIN_POSITIVE);
                let gap = (u.ln() / log1m).floor() as u64;
                cell = cell.saturating_add(gap);
                if cell >= end_cell {
                    break;
                }
                let src = (cell / n as u64) as u32;
                let dst = (cell % n as u64) as u32;
                if src != dst {
                    out.push(pack_edge(src, dst));
                }
                cell += 1;
            }
            out
        })
        .collect();

    let mut edges: Vec<u64> =
        Vec::with_capacity(per_stripe.iter().map(Vec::len).sum::<usize>() * 2);
    for stripe in per_stripe.iter_mut() {
        for &e in stripe.iter() {
            let (s, d) = crate::unpack_edge(e);
            edges.push(e);
            edges.push(pack_edge(d, s));
        }
        stripe.clear();
    }
    edges.par_sort_unstable();
    edges.dedup();
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::unpack_edge;

    #[test]
    fn edge_count_close_to_expectation() {
        let n = 2000u32;
        let p = 1e-3;
        let edges = erdos_renyi_edges(n, p, 42);
        // Expected directed non-loop cells: p*n*(n-1); symmetrization roughly
        // doubles (collisions with the reverse direction are rare).
        let expected = 2.0 * p * (n as f64) * (n as f64 - 1.0);
        let got = edges.len() as f64;
        assert!(
            (got - expected).abs() / expected < 0.15,
            "got {got}, expected ≈ {expected}"
        );
    }

    #[test]
    fn no_self_loops_and_symmetric() {
        let edges = erdos_renyi_edges(500, 5e-3, 7);
        let set: std::collections::HashSet<u64> = edges.iter().copied().collect();
        for &e in &edges {
            let (s, d) = unpack_edge(e);
            assert_ne!(s, d);
            assert!(set.contains(&pack_edge(d, s)));
        }
    }

    #[test]
    fn sorted_and_deduped() {
        let edges = erdos_renyi_edges(300, 1e-2, 9);
        assert!(edges.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn deterministic() {
        assert_eq!(
            erdos_renyi_edges(400, 2e-3, 5),
            erdos_renyi_edges(400, 2e-3, 5)
        );
    }

    #[test]
    fn degrees_are_binomial_ish() {
        // Every vertex should have degree near n*p*2 (in+out collapse into
        // symmetric adjacency).
        let n = 1000u32;
        let p = 5e-3;
        let edges = erdos_renyi_edges(n, p, 13);
        let mut deg = vec![0u32; n as usize];
        for &e in &edges {
            deg[unpack_edge(e).0 as usize] += 1;
        }
        let avg = edges.len() as f64 / n as f64;
        let max = *deg.iter().max().unwrap() as f64;
        // ER tails are thin: max degree within ~3x of average.
        assert!(max < avg * 3.0, "max {max} vs avg {avg}");
    }
}
