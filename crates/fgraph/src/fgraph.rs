//! F-Graph: a dynamic-graph container backed by **one** ordered edge set
//! (§6; the paper's instance stores packed edges in a CPMA).
//!
//! "F-Graph is built on a single batch-parallel CPMA with delta compression
//! and byte codes. It differs from traditional graph representations
//! because it uses only a single array to store both the vertex and edge
//! data." Edges are 64-bit words, source in the upper 32 bits, destination
//! in the lower 32; "the delta compression in the CPMA elides out the
//! source vertex in all edges except for the edges in the uncompressed PMA
//! leaf heads and the first edge of each vertex."
//!
//! The container itself ([`SetGraph`]) is generic over any
//! [`cpma_api::RangeSet`]/[`cpma_api::BatchSet`] backend (the [`EdgeSet`]
//! bound): [`FGraph`] is the paper's CPMA instantiation, while
//! `SetGraph<Pma>`, `SetGraph<BTreeSet<u64>>`, or any future backend drop
//! in unchanged — the same role the container abstraction plays in the
//! paper's own evaluation harness.
//!
//! Algorithms other than pure edge scans need per-vertex offsets; F-Graph
//! "must incur a fixed cost to reconstruct the vertex array of offsets" —
//! [`FGraph::snapshot`] is that reconstruction, and [`FGraphSnapshot`]
//! serves `degree` / neighbor scans straight off the backend's ordered
//! scans.

use crate::{pack_edge, unpack_edge, GraphScan};
use cpma_api::{BatchSet, ParallelChunks, RangeSet};
use cpma_pma::Cpma;
use std::sync::atomic::{AtomicU64, Ordering};

/// What F-Graph needs from its edge container: batch updates, ordered
/// scans, and chunked parallel traversal. Blanket-implemented for every
/// conforming set.
pub trait EdgeSet: BatchSet<u64> + RangeSet<u64> + ParallelChunks<u64> + Send + Sync {}

impl<T: BatchSet<u64> + RangeSet<u64> + ParallelChunks<u64> + Send + Sync> EdgeSet for T {}

/// Dynamic unweighted graph on a single ordered edge set. See module docs.
pub struct SetGraph<S: EdgeSet> {
    edges: S,
    n: usize,
}

/// The paper's F-Graph: a [`SetGraph`] on the CPMA.
pub type FGraph = SetGraph<Cpma>;

impl<S: EdgeSet> SetGraph<S> {
    /// Empty graph over vertex ids `0..n`.
    pub fn new(n: usize) -> Self {
        assert!(n <= u32::MAX as usize + 1);
        Self {
            edges: S::new_set(),
            n,
        }
    }

    /// Build from sorted, deduplicated packed edges.
    pub fn from_edges(n: usize, edges: &[u64]) -> Self {
        assert!(n <= u32::MAX as usize + 1);
        Self {
            edges: S::build_sorted(edges),
            n,
        }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Number of stored directed edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Insert a batch of directed packed edges (duplicates and already-
    /// present edges are skipped); returns edges actually added.
    pub fn insert_edges(&mut self, batch: &mut [u64], sorted: bool) -> usize {
        self.edges.insert_batch(batch, sorted)
    }

    /// Remove a batch of directed packed edges; returns edges removed.
    pub fn delete_edges(&mut self, batch: &mut [u64], sorted: bool) -> usize {
        self.edges.remove_batch(batch, sorted)
    }

    /// Edge-existence test.
    pub fn has_edge(&self, src: u32, dst: u32) -> bool {
        self.edges.contains(pack_edge(src, dst))
    }

    /// Bytes of backing memory.
    pub fn size_bytes(&self) -> usize {
        self.edges.size_bytes()
    }

    /// The underlying edge set (read-only).
    pub fn backend(&self) -> &S {
        &self.edges
    }

    /// Rebuild the vertex offset array and return a scan handle. This is
    /// the fixed per-algorithm cost the paper measures (≈10% of BC's
    /// runtime); PR-style full scans could skip it, but we build it for
    /// every algorithm exactly as the paper's experiments do.
    pub fn snapshot(&self) -> SetGraphSnapshot<'_, S> {
        // Count edges per source over the backend's parallel chunks (one
        // atomic add per source-run per chunk — sources are contiguous in
        // the packed order), then prefix-sum into rank-of-first-edge.
        let counts: Vec<AtomicU64> = (0..self.n + 1).map(|_| AtomicU64::new(0)).collect();
        self.edges.par_chunks(&|chunk| {
            let mut i = 0;
            while i < chunk.len() {
                let (s, _) = unpack_edge(chunk[i]);
                let mut j = i + 1;
                while j < chunk.len() && unpack_edge(chunk[j]).0 == s {
                    j += 1;
                }
                counts[s as usize + 1].fetch_add((j - i) as u64, Ordering::Relaxed);
                i = j;
            }
        });
        let mut offsets: Vec<u64> = counts.into_iter().map(|a| a.into_inner()).collect();
        for v in 0..self.n {
            offsets[v + 1] += offsets[v];
        }
        SetGraphSnapshot { g: self, offsets }
    }
}

impl FGraph {
    /// The underlying CPMA (read-only); alias of [`SetGraph::backend`] for
    /// the paper's default instantiation.
    pub fn cpma(&self) -> &Cpma {
        &self.edges
    }
}

/// Read handle over a [`SetGraph`] with materialized vertex offsets;
/// neighbor scans decode directly from the backend's ordered leaves.
pub struct SetGraphSnapshot<'a, S: EdgeSet> {
    g: &'a SetGraph<S>,
    /// Rank of each vertex's first edge (length `n + 1`).
    offsets: Vec<u64>,
}

/// Snapshot of the paper's F-Graph (CPMA backend).
pub type FGraphSnapshot<'a> = SetGraphSnapshot<'a, Cpma>;

impl<S: EdgeSet> SetGraphSnapshot<'_, S> {
    /// Bytes used by the snapshot's auxiliary arrays.
    pub fn aux_bytes(&self) -> usize {
        self.offsets.len() * 8
    }
}

impl<S: EdgeSet> GraphScan for SetGraphSnapshot<'_, S> {
    fn num_vertices(&self) -> usize {
        self.g.n
    }

    fn num_edges(&self) -> usize {
        self.g.num_edges()
    }

    #[inline]
    fn degree(&self, v: u32) -> usize {
        (self.offsets[v as usize + 1] - self.offsets[v as usize]) as usize
    }

    /// Flat-scan pull: one pass over the packed edge array, visited as the
    /// backend's parallel chunks. A source whose run is interior to a chunk
    /// is written with plain stores (no other chunk can touch it), while
    /// runs that may continue across a chunk boundary accumulate
    /// atomically.
    fn pull_accumulate(&self, weights: &[f64], out: &mut [f64]) {
        let acc: Vec<AtomicU64> = (0..out.len()).map(|_| AtomicU64::new(0)).collect();
        let add = |src: u32, v: f64| {
            let cell = &acc[src as usize];
            let mut cur = cell.load(Ordering::Relaxed);
            loop {
                let next = (f64::from_bits(cur) + v).to_bits();
                match cell.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
                    Ok(_) => return,
                    Err(c) => cur = c,
                }
            }
        };
        self.g.edges.par_chunks(&|chunk| {
            let mut cur_src: Option<u32> = None;
            let mut run = 0.0f64;
            let mut first_run = true;
            for &e in chunk {
                let (s, d) = unpack_edge(e);
                match cur_src {
                    Some(cs) if cs == s => run += weights[d as usize],
                    Some(cs) => {
                        if first_run {
                            add(cs, run); // may continue from the previous chunk
                            first_run = false;
                        } else {
                            // Interior run: only this chunk holds cs's edges.
                            acc[cs as usize].store(
                                (f64::from_bits(acc[cs as usize].load(Ordering::Relaxed)) + run)
                                    .to_bits(),
                                Ordering::Relaxed,
                            );
                        }
                        cur_src = Some(s);
                        run = weights[d as usize];
                    }
                    None => {
                        cur_src = Some(s);
                        run = weights[d as usize];
                    }
                }
            }
            if let Some(cs) = cur_src {
                add(cs, run); // may continue into the next chunk
            }
        });
        for (o, a) in out.iter_mut().zip(&acc) {
            *o = f64::from_bits(a.load(Ordering::Relaxed));
        }
    }

    fn for_each_neighbor(&self, v: u32, f: &mut dyn FnMut(u32) -> bool) {
        if self.degree(v) == 0 {
            return;
        }
        self.g.edges.scan_from(pack_edge(v, 0), &mut |e| {
            let (s, d) = unpack_edge(e);
            if s != v {
                return false;
            }
            f(d)
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym_edges(pairs: &[(u32, u32)]) -> Vec<u64> {
        let mut edges = Vec::new();
        for &(a, b) in pairs {
            edges.push(pack_edge(a, b));
            edges.push(pack_edge(b, a));
        }
        edges.sort_unstable();
        edges.dedup();
        edges
    }

    #[test]
    fn build_and_query() {
        let edges = sym_edges(&[(0, 1), (0, 2), (1, 2), (2, 3)]);
        let g = FGraph::from_edges(5, &edges);
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 8);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 3));
        let s = g.snapshot();
        assert_eq!(s.degree(0), 2);
        assert_eq!(s.degree(2), 3);
        assert_eq!(s.degree(4), 0);
        let mut nbrs = Vec::new();
        s.for_each_neighbor(2, &mut |d| {
            nbrs.push(d);
            true
        });
        assert_eq!(nbrs, vec![0, 1, 3]);
    }

    #[test]
    fn incremental_inserts_visible_in_new_snapshot() {
        let mut g = FGraph::from_edges(10, &sym_edges(&[(0, 1)]));
        let mut batch = sym_edges(&[(1, 2), (2, 3), (0, 9)]);
        let added = g.insert_edges(&mut batch, true);
        assert_eq!(added, 6);
        let s = g.snapshot();
        assert_eq!(s.degree(0), 2);
        assert_eq!(s.degree(9), 1);
        let mut nbrs = Vec::new();
        s.for_each_neighbor(0, &mut |d| {
            nbrs.push(d);
            true
        });
        assert_eq!(nbrs, vec![1, 9]);
    }

    #[test]
    fn duplicate_and_existing_edges_skipped() {
        let mut g = FGraph::from_edges(4, &sym_edges(&[(0, 1)]));
        let mut batch = vec![pack_edge(0, 1), pack_edge(0, 1), pack_edge(1, 2)];
        let added = g.insert_edges(&mut batch, false);
        assert_eq!(added, 1);
        assert_eq!(g.num_edges(), 3);
    }

    #[test]
    fn deletions() {
        let mut g = FGraph::from_edges(4, &sym_edges(&[(0, 1), (1, 2), (2, 3)]));
        let mut del = sym_edges(&[(1, 2)]);
        assert_eq!(g.delete_edges(&mut del, true), 2);
        assert!(!g.has_edge(1, 2));
        assert!(g.has_edge(0, 1));
        let s = g.snapshot();
        assert_eq!(s.degree(1), 1);
        assert_eq!(s.degree(2), 1);
    }

    #[test]
    fn neighbor_scan_spans_leaves() {
        // One high-degree vertex whose adjacency crosses many CPMA leaves.
        let mut pairs = Vec::new();
        for d in 1..5000u32 {
            pairs.push((0u32, d));
        }
        let edges = sym_edges(&pairs);
        let g = FGraph::from_edges(5000, &edges);
        let s = g.snapshot();
        assert_eq!(s.degree(0), 4999);
        let mut cnt = 0u32;
        let mut prev = 0u32;
        s.for_each_neighbor(0, &mut |d| {
            assert!(d > prev || cnt == 0);
            prev = d;
            cnt += 1;
            true
        });
        assert_eq!(cnt, 4999);
        // Early exit works mid-stream.
        let mut seen = 0;
        s.for_each_neighbor(0, &mut |_| {
            seen += 1;
            seen < 10
        });
        assert_eq!(seen, 10);
    }

    #[test]
    fn empty_graph_snapshot() {
        let g = FGraph::new(3);
        let s = g.snapshot();
        for v in 0..3 {
            assert_eq!(s.degree(v), 0);
            s.for_each_neighbor(v, &mut |_| panic!("no neighbors"));
        }
    }

    #[test]
    fn alternate_backends_present_the_same_graph() {
        use std::collections::BTreeSet;
        let edges = sym_edges(&[(0, 1), (0, 2), (1, 2), (2, 3), (3, 4)]);
        let cpma_g: FGraph = FGraph::from_edges(6, &edges);
        let pma_g: SetGraph<cpma_pma::Pma<u64>> = SetGraph::from_edges(6, &edges);
        let btree_g: SetGraph<BTreeSet<u64>> = SetGraph::from_edges(6, &edges);
        let (a, b, c) = (cpma_g.snapshot(), pma_g.snapshot(), btree_g.snapshot());
        for v in 0..6u32 {
            assert_eq!(a.degree(v), b.degree(v));
            assert_eq!(a.degree(v), c.degree(v));
            let collect = |s: &dyn GraphScan| {
                let mut out = Vec::new();
                s.for_each_neighbor(v, &mut |d| {
                    out.push(d);
                    true
                });
                out
            };
            assert_eq!(collect(&a), collect(&b));
            assert_eq!(collect(&a), collect(&c));
        }
        // The flat pull kernel agrees across backends too.
        let w: Vec<f64> = (0..6).map(|i| i as f64 + 0.5).collect();
        let mut oa = vec![0.0; 6];
        let mut ob = vec![0.0; 6];
        a.pull_accumulate(&w, &mut oa);
        c.pull_accumulate(&w, &mut ob);
        for (x, y) in oa.iter().zip(&ob) {
            assert!((x - y).abs() < 1e-12);
        }
    }
}
