//! F-Graph: a dynamic-graph container backed by **one** CPMA (§6).
//!
//! "F-Graph is built on a single batch-parallel CPMA with delta compression
//! and byte codes. It differs from traditional graph representations
//! because it uses only a single array to store both the vertex and edge
//! data." Edges are 64-bit words, source in the upper 32 bits, destination
//! in the lower 32; "the delta compression in the CPMA elides out the
//! source vertex in all edges except for the edges in the uncompressed PMA
//! leaf heads and the first edge of each vertex."
//!
//! Algorithms other than pure edge scans need per-vertex offsets; F-Graph
//! "must incur a fixed cost to reconstruct the vertex array of offsets" —
//! [`FGraph::snapshot`] is that reconstruction, and [`FGraphSnapshot`]
//! serves `degree` / neighbor scans directly out of the CPMA's leaves.

use crate::{pack_edge, unpack_edge, GraphScan};
use cpma_pma::{Cpma, LeafStorage};
use rayon::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};

/// Dynamic unweighted graph on a single CPMA. See module docs.
pub struct FGraph {
    edges: Cpma,
    n: usize,
}

impl FGraph {
    /// Empty graph over vertex ids `0..n`.
    pub fn new(n: usize) -> Self {
        assert!(n <= u32::MAX as usize + 1);
        Self { edges: Cpma::new(), n }
    }

    /// Build from sorted, deduplicated packed edges.
    pub fn from_edges(n: usize, edges: &[u64]) -> Self {
        let mut g = Self::new(n);
        if !edges.is_empty() {
            g.edges.insert_batch_sorted(edges);
        }
        g
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Number of stored directed edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Insert a batch of directed packed edges (duplicates and already-
    /// present edges are skipped); returns edges actually added.
    pub fn insert_edges(&mut self, batch: &mut [u64], sorted: bool) -> usize {
        self.edges.insert_batch(batch, sorted)
    }

    /// Remove a batch of directed packed edges; returns edges removed.
    pub fn delete_edges(&mut self, batch: &mut [u64], sorted: bool) -> usize {
        self.edges.remove_batch(batch, sorted)
    }

    /// Edge-existence test.
    pub fn has_edge(&self, src: u32, dst: u32) -> bool {
        self.edges.has(pack_edge(src, dst))
    }

    /// Bytes of backing memory.
    pub fn size_bytes(&self) -> usize {
        self.edges.size_bytes()
    }

    /// The underlying CPMA (read-only).
    pub fn cpma(&self) -> &Cpma {
        &self.edges
    }

    /// Rebuild the vertex offset array and return a scan handle. This is
    /// the fixed per-algorithm cost the paper measures (≈10% of BC's
    /// runtime); PR-style full scans could skip it, but we build it for
    /// every algorithm exactly as the paper's experiments do.
    pub fn snapshot(&self) -> FGraphSnapshot<'_> {
        let storage = self.edges.storage();
        let nl = storage.num_leaves();
        // Global rank of each leaf's first element.
        let mut leaf_prefix = vec![0u64; nl + 1];
        for l in 0..nl {
            leaf_prefix[l + 1] = leaf_prefix[l] + storage.count(l) as u64;
        }
        let m = leaf_prefix[nl];
        // offsets[v] = rank of the first edge with source ≥ v.
        let offsets: Vec<AtomicU64> = (0..self.n + 1).map(|_| AtomicU64::new(u64::MAX)).collect();
        (0..nl).into_par_iter().for_each(|l| {
            let mut rank = leaf_prefix[l];
            let mut prev_src = u32::MAX;
            storage.for_each_in_leaf(l, &mut |e| {
                let (s, _) = unpack_edge(e);
                if rank == leaf_prefix[l] || s != prev_src {
                    offsets[s as usize].fetch_min(rank, Ordering::Relaxed);
                }
                prev_src = s;
                rank += 1;
                true
            });
        });
        let mut offsets: Vec<u64> =
            offsets.into_iter().map(|a| a.into_inner()).collect();
        offsets[self.n] = m;
        for v in (0..self.n).rev() {
            if offsets[v] == u64::MAX {
                offsets[v] = offsets[v + 1];
            }
        }
        FGraphSnapshot { g: self, leaf_prefix, offsets }
    }
}

/// Read handle over an [`FGraph`] with materialized vertex offsets;
/// neighbor scans decode directly from the CPMA's compressed leaves.
pub struct FGraphSnapshot<'a> {
    g: &'a FGraph,
    /// Rank of each leaf's first element (length `num_leaves + 1`).
    leaf_prefix: Vec<u64>,
    /// Rank of each vertex's first edge (length `n + 1`).
    offsets: Vec<u64>,
}

impl FGraphSnapshot<'_> {
    /// Bytes used by the snapshot's auxiliary arrays.
    pub fn aux_bytes(&self) -> usize {
        (self.leaf_prefix.len() + self.offsets.len()) * 8
    }
}

impl GraphScan for FGraphSnapshot<'_> {
    fn num_vertices(&self) -> usize {
        self.g.n
    }

    fn num_edges(&self) -> usize {
        self.g.num_edges()
    }

    #[inline]
    fn degree(&self, v: u32) -> usize {
        (self.offsets[v as usize + 1] - self.offsets[v as usize]) as usize
    }

    /// Flat-scan pull: one pass over the packed edge array. Each leaf is
    /// processed independently; a source whose run is interior to a leaf is
    /// written plainly (no other leaf can touch it), while runs that may
    /// continue across a leaf boundary accumulate atomically.
    fn pull_accumulate(&self, weights: &[f64], out: &mut [f64]) {
        use std::sync::atomic::{AtomicU64, Ordering};
        let storage = self.g.edges.storage();
        let nl = storage.num_leaves();
        let acc: Vec<AtomicU64> = (0..out.len()).map(|_| AtomicU64::new(0)).collect();
        let add = |src: u32, v: f64| {
            let cell = &acc[src as usize];
            let mut cur = cell.load(Ordering::Relaxed);
            loop {
                let next = (f64::from_bits(cur) + v).to_bits();
                match cell.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
                {
                    Ok(_) => return,
                    Err(c) => cur = c,
                }
            }
        };
        (0..nl).into_par_iter().for_each(|l| {
            let mut cur_src: Option<u32> = None;
            let mut run = 0.0f64;
            let mut first_run = true;
            storage.for_each_in_leaf(l, &mut |e| {
                let (s, d) = unpack_edge(e);
                match cur_src {
                    Some(cs) if cs == s => run += weights[d as usize],
                    Some(cs) => {
                        if first_run {
                            add(cs, run); // may continue from the previous leaf
                            first_run = false;
                        } else {
                            // Interior run: only this leaf holds cs's edges.
                            acc[cs as usize]
                                .store((f64::from_bits(acc[cs as usize].load(Ordering::Relaxed)) + run).to_bits(), Ordering::Relaxed);
                        }
                        cur_src = Some(s);
                        run = weights[d as usize];
                    }
                    None => {
                        cur_src = Some(s);
                        run = weights[d as usize];
                    }
                }
                true
            });
            if let Some(cs) = cur_src {
                add(cs, run); // may continue into the next leaf
            }
        });
        for (o, a) in out.iter_mut().zip(&acc) {
            *o = f64::from_bits(a.load(Ordering::Relaxed));
        }
    }

    fn for_each_neighbor(&self, v: u32, f: &mut dyn FnMut(u32) -> bool) {
        let start = self.offsets[v as usize];
        let end = self.offsets[v as usize + 1];
        if start == end {
            return;
        }
        let storage = self.g.edges.storage();
        // Leaf containing rank `start`: rightmost leaf whose first rank ≤ it.
        let mut leaf = self.leaf_prefix.partition_point(|&p| p <= start) - 1;
        let mut skip = start - self.leaf_prefix[leaf];
        let mut remaining = end - start;
        while remaining > 0 {
            let mut stop = false;
            storage.for_each_in_leaf(leaf, &mut |e| {
                if skip > 0 {
                    skip -= 1;
                    return true;
                }
                if remaining == 0 {
                    return false;
                }
                remaining -= 1;
                if !f(unpack_edge(e).1) {
                    stop = true;
                    remaining = 0;
                    return false;
                }
                true
            });
            if stop || remaining == 0 {
                return;
            }
            leaf += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym_edges(pairs: &[(u32, u32)]) -> Vec<u64> {
        let mut edges = Vec::new();
        for &(a, b) in pairs {
            edges.push(pack_edge(a, b));
            edges.push(pack_edge(b, a));
        }
        edges.sort_unstable();
        edges.dedup();
        edges
    }

    #[test]
    fn build_and_query() {
        let edges = sym_edges(&[(0, 1), (0, 2), (1, 2), (2, 3)]);
        let g = FGraph::from_edges(5, &edges);
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 8);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 3));
        let s = g.snapshot();
        assert_eq!(s.degree(0), 2);
        assert_eq!(s.degree(2), 3);
        assert_eq!(s.degree(4), 0);
        let mut nbrs = Vec::new();
        s.for_each_neighbor(2, &mut |d| {
            nbrs.push(d);
            true
        });
        assert_eq!(nbrs, vec![0, 1, 3]);
    }

    #[test]
    fn incremental_inserts_visible_in_new_snapshot() {
        let mut g = FGraph::from_edges(10, &sym_edges(&[(0, 1)]));
        let mut batch = sym_edges(&[(1, 2), (2, 3), (0, 9)]);
        let added = g.insert_edges(&mut batch, true);
        assert_eq!(added, 6);
        let s = g.snapshot();
        assert_eq!(s.degree(0), 2);
        assert_eq!(s.degree(9), 1);
        let mut nbrs = Vec::new();
        s.for_each_neighbor(0, &mut |d| {
            nbrs.push(d);
            true
        });
        assert_eq!(nbrs, vec![1, 9]);
    }

    #[test]
    fn duplicate_and_existing_edges_skipped() {
        let mut g = FGraph::from_edges(4, &sym_edges(&[(0, 1)]));
        let mut batch = vec![pack_edge(0, 1), pack_edge(0, 1), pack_edge(1, 2)];
        let added = g.insert_edges(&mut batch, false);
        assert_eq!(added, 1);
        assert_eq!(g.num_edges(), 3);
    }

    #[test]
    fn deletions() {
        let mut g = FGraph::from_edges(4, &sym_edges(&[(0, 1), (1, 2), (2, 3)]));
        let mut del = sym_edges(&[(1, 2)]);
        assert_eq!(g.delete_edges(&mut del, true), 2);
        assert!(!g.has_edge(1, 2));
        assert!(g.has_edge(0, 1));
        let s = g.snapshot();
        assert_eq!(s.degree(1), 1);
        assert_eq!(s.degree(2), 1);
    }

    #[test]
    fn neighbor_scan_spans_leaves() {
        // One high-degree vertex whose adjacency crosses many CPMA leaves.
        let mut pairs = Vec::new();
        for d in 1..5000u32 {
            pairs.push((0u32, d));
        }
        let edges = sym_edges(&pairs);
        let g = FGraph::from_edges(5000, &edges);
        let s = g.snapshot();
        assert_eq!(s.degree(0), 4999);
        let mut cnt = 0u32;
        let mut prev = 0u32;
        s.for_each_neighbor(0, &mut |d| {
            assert!(d > prev || cnt == 0);
            prev = d;
            cnt += 1;
            true
        });
        assert_eq!(cnt, 4999);
        // Early exit works mid-stream.
        let mut seen = 0;
        s.for_each_neighbor(0, &mut |_| {
            seen += 1;
            seen < 10
        });
        assert_eq!(seen, 10);
    }

    #[test]
    fn empty_graph_snapshot() {
        let g = FGraph::new(3);
        let s = g.snapshot();
        for v in 0..3 {
            assert_eq!(s.degree(v), 0);
            s.for_each_neighbor(v, &mut |_| panic!("no neighbors"));
        }
    }
}
