//! Single-source betweenness centrality (Brandes) — the paper's
//! topology-order kernel ("topology-order algorithms such as BC access
//! vertices depending on the graph topology, and are therefore more likely
//! to incur cache misses").
//!
//! Forward phase: level-synchronous BFS; each new frontier then *pulls* its
//! shortest-path counts σ(v) = Σ σ(u) over predecessors in one exact pass
//! (pulling avoids the lost-update hazard a push-style accumulation has
//! under edge_map's dense-mode early exit). Backward phase: pull-based
//! dependency accumulation δ(v) = Σ_{w : succ} σ(v)/σ(w) · (1 + δ(w)).

use crate::ligra::{edge_map, VertexSubset};
use crate::GraphScan;
use rayon::prelude::*;
use std::sync::atomic::{AtomicU32, Ordering};

/// Dependency scores δ from a single source (the source's own score is 0).
pub fn bc<G: GraphScan>(g: &G, src: u32) -> Vec<f64> {
    let n = g.num_vertices();
    let level: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(u32::MAX)).collect();
    level[src as usize].store(0, Ordering::Relaxed);
    let mut sigma = vec![0.0f64; n];
    sigma[src as usize] = 1.0;

    // Forward: claim each level with edge_map, then pull σ for it.
    let mut levels: Vec<Vec<u32>> = vec![vec![src]];
    let mut frontier = VertexSubset::single(n, src);
    let mut depth = 0u32;
    while !frontier.is_empty() {
        depth += 1;
        let next = edge_map(
            g,
            &frontier,
            |_, d| {
                level[d as usize]
                    .compare_exchange(u32::MAX, depth, Ordering::Relaxed, Ordering::Relaxed)
                    .is_ok()
            },
            |d| level[d as usize].load(Ordering::Relaxed) == u32::MAX,
        );
        if next.is_empty() {
            break;
        }
        let verts = next.to_sparse();
        let pulled: Vec<(u32, f64)> = verts
            .par_iter()
            .map(|&v| {
                let mut acc = 0.0;
                g.for_each_neighbor(v, &mut |u| {
                    if level[u as usize].load(Ordering::Relaxed) == depth - 1 {
                        acc += sigma[u as usize];
                    }
                    true
                });
                (v, acc)
            })
            .collect();
        for (v, s) in pulled {
            sigma[v as usize] = s;
        }
        levels.push(verts);
        frontier = next;
    }

    // Backward: pull dependencies level by level.
    let level: Vec<u32> = level.iter().map(|a| a.load(Ordering::Relaxed)).collect();
    let mut delta = vec![0.0f64; n];
    for d in (0..levels.len().saturating_sub(1)).rev() {
        let pulled: Vec<(u32, f64)> = levels[d]
            .par_iter()
            .map(|&v| {
                let mut acc = 0.0;
                g.for_each_neighbor(v, &mut |w| {
                    if level[w as usize] == d as u32 + 1 && sigma[w as usize] > 0.0 {
                        acc += sigma[v as usize] / sigma[w as usize] * (1.0 + delta[w as usize]);
                    }
                    true
                });
                (v, acc)
            })
            .collect();
        for (v, x) in pulled {
            delta[v as usize] = x;
        }
    }
    delta[src as usize] = 0.0;
    delta
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algos::testgraphs::csr_from_pairs;

    #[test]
    fn path_graph_dependencies() {
        // Path 0-1-2-3, source 0: δ(3)=0, δ(2)=1, δ(1)=2.
        let g = csr_from_pairs(4, &[(0, 1), (1, 2), (2, 3)]);
        let d = bc(&g, 0);
        assert_eq!(d[0], 0.0);
        assert!((d[1] - 2.0).abs() < 1e-12);
        assert!((d[2] - 1.0).abs() < 1e-12);
        assert!((d[3] - 0.0).abs() < 1e-12);
    }

    #[test]
    fn diamond_splits_dependency() {
        // 0 - {1,2} - 3: two shortest paths to 3; δ(1) = δ(2) = 0.5.
        let g = csr_from_pairs(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let d = bc(&g, 0);
        assert!((d[1] - 0.5).abs() < 1e-12);
        assert!((d[2] - 0.5).abs() < 1e-12);
        assert_eq!(d[3], 0.0);
    }

    #[test]
    fn sigma_counts_multiple_paths() {
        // Two disjoint 2-hop routes 0→{1,2}→3, then 3→4: δ(3) from source 0
        // covers vertex 4: δ(3) = 1; δ(1) = δ(2) = 0.5·(1+1) = ... check
        // against hand computation: σ(3) = 2, σ(4) = 2.
        // δ(3) = σ(3)/σ(4)·(1+δ(4)) = 1. δ(1) = σ(1)/σ(3)·(1+δ(3)) = 1.
        let g = csr_from_pairs(5, &[(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)]);
        let d = bc(&g, 0);
        assert!((d[3] - 1.0).abs() < 1e-12);
        assert!((d[1] - 1.0).abs() < 1e-12);
        assert!((d[2] - 1.0).abs() < 1e-12);
        assert_eq!(d[4], 0.0);
    }

    #[test]
    fn star_center_carries_everything() {
        let g = csr_from_pairs(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        let d = bc(&g, 1);
        // From leaf 1, center 0 mediates paths to the other 3 leaves.
        assert!((d[0] - 3.0).abs() < 1e-12);
        assert_eq!(d[2], 0.0);
    }

    #[test]
    fn disconnected_vertices_zero() {
        let g = csr_from_pairs(4, &[(0, 1)]);
        let d = bc(&g, 0);
        assert_eq!(d[2], 0.0);
        assert_eq!(d[3], 0.0);
    }
}
