//! The paper's graph-algorithm suite, container-generic via `GraphScan`.
//!
//! "We evaluate the performance of F-Graph, C-PaC, and Aspen on three
//! fundamental graph algorithms: PageRank (PR), connected components (CC),
//! and single-source betweenness centrality (BC). The algorithms are from
//! the Ligra distribution with minor cosmetic changes." (§6). BFS is
//! included as the building block of BC and as a fourth kernel.
//!
//! The three kernels deliberately span the paper's traversal continuum:
//! PR is *arbitrary-order* (pure scans — flat layouts win), BC is
//! *topology-order* (random vertex access), and CC sits in between.

mod bc;
mod bfs;
mod cc;
mod pagerank;

pub use bc::bc;
pub use bfs::bfs;
pub use cc::cc;
pub use pagerank::pagerank;

#[cfg(test)]
pub(crate) mod testgraphs {
    use crate::{pack_edge, Csr};

    /// Symmetrize, sort, dedup a pair list and build a CSR.
    pub fn csr_from_pairs(n: usize, pairs: &[(u32, u32)]) -> Csr {
        Csr::from_sorted_edges(n, &edges_from_pairs(pairs))
    }

    /// Symmetrized sorted packed edges from an undirected pair list.
    pub fn edges_from_pairs(pairs: &[(u32, u32)]) -> Vec<u64> {
        let mut edges = Vec::new();
        for &(a, b) in pairs {
            if a != b {
                edges.push(pack_edge(a, b));
                edges.push(pack_edge(b, a));
            }
        }
        edges.sort_unstable();
        edges.dedup();
        edges
    }

    /// A small two-component graph used across algorithm tests:
    /// component A: 0-1-2-3 path plus chord 1-3; component B: 4-5.
    pub fn two_components() -> Csr {
        csr_from_pairs(6, &[(0, 1), (1, 2), (2, 3), (1, 3), (4, 5)])
    }
}
