//! Connected components — the paper's in-between kernel ("CC ... starts
//! with large scans in the beginning of the algorithm, but it converges to
//! smaller scans as fewer vertices remain under consideration").
//! Ligra-style label propagation: every vertex starts as its own label,
//! frontiers carry vertices whose labels changed.

use crate::ligra::{edge_map, VertexSubset};
use crate::GraphScan;
use std::sync::atomic::{AtomicU32, Ordering};

/// Per-vertex component labels (the minimum vertex id in the component).
pub fn cc<G: GraphScan>(g: &G) -> Vec<u32> {
    let n = g.num_vertices();
    let labels: Vec<AtomicU32> = (0..n as u32).map(AtomicU32::new).collect();
    let mut frontier = VertexSubset::from_dense(vec![true; n]);
    while !frontier.is_empty() {
        frontier = edge_map(
            g,
            &frontier,
            |s, d| {
                let ls = labels[s as usize].load(Ordering::Relaxed);
                let mut ld = labels[d as usize].load(Ordering::Relaxed);
                let mut changed = false;
                while ls < ld {
                    match labels[d as usize].compare_exchange_weak(
                        ld,
                        ls,
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => {
                            changed = true;
                            break;
                        }
                        Err(cur) => ld = cur,
                    }
                }
                changed
            },
            |_| true,
        );
    }
    labels.into_iter().map(AtomicU32::into_inner).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algos::testgraphs::{csr_from_pairs, two_components};

    #[test]
    fn two_components_two_labels() {
        let g = two_components();
        let l = cc(&g);
        assert_eq!(l[0], 0);
        assert!(l[..4].iter().all(|&x| x == 0));
        assert_eq!(l[4], 4);
        assert_eq!(l[5], 4);
    }

    #[test]
    fn singletons_keep_own_labels() {
        let g = csr_from_pairs(4, &[]);
        assert_eq!(cc(&g), vec![0, 1, 2, 3]);
    }

    #[test]
    fn long_path_converges() {
        let pairs: Vec<(u32, u32)> = (0..999).map(|v| (v, v + 1)).collect();
        let g = csr_from_pairs(1000, &pairs);
        let l = cc(&g);
        assert!(l.iter().all(|&x| x == 0));
    }

    #[test]
    fn ring_converges() {
        let mut pairs: Vec<(u32, u32)> = (0..99).map(|v| (v, v + 1)).collect();
        pairs.push((99, 0));
        let g = csr_from_pairs(100, &pairs);
        assert!(cc(&g).iter().all(|&x| x == 0));
    }
}
