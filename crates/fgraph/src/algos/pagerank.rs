//! PageRank — the paper's arbitrary-order kernel ("PR access[es] vertices
//! in any order and can be cast as a straightforward pass through the data
//! structure"; F-Graph is 1.5× faster than C-PaC on it). Pull-based, a
//! fixed number of iterations ("the PR implementation runs for a fixed
//! number (10) of iterations").

use crate::GraphScan;
use rayon::prelude::*;

/// Damping factor (Brin & Page).
const DAMPING: f64 = 0.85;

/// `iters` rounds of pull-based PageRank; returns per-vertex scores.
pub fn pagerank<G: GraphScan>(g: &G, iters: usize) -> Vec<f64> {
    let n = g.num_vertices();
    if n == 0 {
        return Vec::new();
    }
    let mut rank = vec![1.0 / n as f64; n];
    let mut contrib = vec![0.0f64; n];
    for _ in 0..iters {
        contrib.par_iter_mut().enumerate().for_each(|(v, c)| {
            let d = g.degree(v as u32);
            *c = if d > 0 { rank[v] / d as f64 } else { 0.0 };
        });
        let base = (1.0 - DAMPING) / n as f64;
        // The container supplies the whole-graph pull (flat containers
        // implement it as one pass over the edge array).
        let mut acc = vec![0.0f64; n];
        g.pull_accumulate(&contrib, &mut acc);
        rank.par_iter_mut()
            .zip(acc.par_iter())
            .for_each(|(r, a)| *r = base + DAMPING * a);
    }
    rank
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algos::testgraphs::{csr_from_pairs, two_components};

    #[test]
    fn ranks_sum_bounded_and_positive() {
        let g = two_components();
        let r = pagerank(&g, 10);
        assert_eq!(r.len(), 6);
        assert!(r.iter().all(|&x| x > 0.0));
        // With no dangling mass loss (all vertices have degree ≥ 1 here)
        // the total mass stays 1.
        let total: f64 = r.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "total {total}");
    }

    #[test]
    fn symmetric_graph_symmetric_ranks() {
        // A 4-cycle: all vertices equivalent.
        let g = csr_from_pairs(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let r = pagerank(&g, 20);
        for v in 1..4 {
            assert!((r[v] - r[0]).abs() < 1e-12);
        }
    }

    #[test]
    fn high_degree_vertex_ranks_higher() {
        // Star: center 0 must outrank the leaves.
        let g = csr_from_pairs(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        let r = pagerank(&g, 10);
        for v in 1..5 {
            assert!(r[0] > r[v]);
        }
    }
}
