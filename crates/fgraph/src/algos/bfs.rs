//! Breadth-first search (Ligra-style frontier advancement).

use crate::ligra::{edge_map, VertexSubset};
use crate::GraphScan;
use std::sync::atomic::{AtomicU32, Ordering};

/// Parent array of a BFS from `src`; unreached vertices hold `u32::MAX`,
/// the source holds itself.
pub fn bfs<G: GraphScan>(g: &G, src: u32) -> Vec<u32> {
    let n = g.num_vertices();
    let parent: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(u32::MAX)).collect();
    parent[src as usize].store(src, Ordering::Relaxed);
    let mut frontier = VertexSubset::single(n, src);
    while !frontier.is_empty() {
        frontier = edge_map(
            g,
            &frontier,
            |s, d| {
                parent[d as usize]
                    .compare_exchange(u32::MAX, s, Ordering::Relaxed, Ordering::Relaxed)
                    .is_ok()
            },
            |d| parent[d as usize].load(Ordering::Relaxed) == u32::MAX,
        );
    }
    parent.into_iter().map(AtomicU32::into_inner).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algos::testgraphs::two_components;

    #[test]
    fn reaches_component_only() {
        let g = two_components();
        let p = bfs(&g, 0);
        assert_eq!(p[0], 0);
        for (v, &parent) in p.iter().enumerate().take(4).skip(1) {
            assert_ne!(parent, u32::MAX, "vertex {v} unreached");
        }
        assert_eq!(p[4], u32::MAX);
        assert_eq!(p[5], u32::MAX);
    }

    #[test]
    fn parents_form_valid_tree() {
        let g = two_components();
        let p = bfs(&g, 2);
        // Walking parents from any reached vertex terminates at the source.
        for start in 0..4u32 {
            let mut cur = start;
            let mut hops = 0;
            while cur != 2 {
                cur = p[cur as usize];
                hops += 1;
                assert!(hops < 10, "parent chain does not terminate");
            }
        }
    }

    #[test]
    fn isolated_source() {
        let g = crate::algos::testgraphs::csr_from_pairs(3, &[(0, 1)]);
        let p = bfs(&g, 2);
        assert_eq!(p, vec![u32::MAX, u32::MAX, 2]);
    }
}
