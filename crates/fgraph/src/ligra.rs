//! Ligra-style frontier abstraction: `VertexSubset` + `edge_map` (paper's reference \[66]).
//!
//! "All systems run the same algorithms via the Ligra interface, which is
//! based on the VertexSubset/EdgeMap abstraction" (§6). `edge_map` applies
//! an update along every edge leaving the frontier, returning the subset of
//! destinations for which the update succeeded, switching between a sparse
//! (per-frontier-vertex) and dense (per-destination, early-exit) traversal
//! by frontier size exactly as Ligra does.
//!
//! `update` must be atomic/idempotent (CAS-style) — in sparse mode it runs
//! concurrently from many sources, and its first success is what inserts a
//! destination into the output frontier.

use crate::GraphScan;
use rayon::prelude::*;

/// A subset of vertices, sparse (id list) or dense (flag vector).
#[derive(Clone, Debug)]
pub enum VertexSubset {
    /// Sorted-or-not list of member ids (may be unsorted after edge_map).
    Sparse { n: usize, verts: Vec<u32> },
    /// Membership flags with a cached count.
    Dense { flags: Vec<bool>, count: usize },
}

impl VertexSubset {
    /// Empty subset over `0..n`.
    pub fn empty(n: usize) -> Self {
        VertexSubset::Sparse {
            n,
            verts: Vec::new(),
        }
    }

    /// Singleton subset.
    pub fn single(n: usize, v: u32) -> Self {
        VertexSubset::Sparse { n, verts: vec![v] }
    }

    /// Subset from an id list.
    pub fn from_sparse(n: usize, verts: Vec<u32>) -> Self {
        VertexSubset::Sparse { n, verts }
    }

    /// Subset from flags.
    pub fn from_dense(flags: Vec<bool>) -> Self {
        let count = flags.par_iter().filter(|&&b| b).count();
        VertexSubset::Dense { flags, count }
    }

    /// Universe size.
    pub fn n(&self) -> usize {
        match self {
            VertexSubset::Sparse { n, .. } => *n,
            VertexSubset::Dense { flags, .. } => flags.len(),
        }
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        match self {
            VertexSubset::Sparse { verts, .. } => verts.len(),
            VertexSubset::Dense { count, .. } => *count,
        }
    }

    /// True iff no members.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Member ids (materializes for dense subsets).
    pub fn to_sparse(&self) -> Vec<u32> {
        match self {
            VertexSubset::Sparse { verts, .. } => verts.clone(),
            VertexSubset::Dense { flags, .. } => (0..flags.len() as u32)
                .into_par_iter()
                .filter(|&v| flags[v as usize])
                .collect(),
        }
    }

    /// Membership flags (materializes for sparse subsets).
    pub fn to_dense(&self) -> Vec<bool> {
        match self {
            VertexSubset::Dense { flags, .. } => flags.clone(),
            VertexSubset::Sparse { n, verts } => {
                let mut flags = vec![false; *n];
                for &v in verts {
                    flags[v as usize] = true;
                }
                flags
            }
        }
    }
}

/// Frontier-out-degree fraction above which `edge_map` switches to the
/// dense traversal (Ligra's threshold is m/20).
const DENSE_FRACTION: usize = 20;

/// Apply `update(src, dst)` over every edge leaving `frontier`, for
/// destinations passing `cond`; returns the subset of destinations whose
/// update returned true. See module docs for the atomicity contract.
pub fn edge_map<G, U, C>(g: &G, frontier: &VertexSubset, update: U, cond: C) -> VertexSubset
where
    G: GraphScan,
    U: Fn(u32, u32) -> bool + Send + Sync,
    C: Fn(u32) -> bool + Send + Sync,
{
    let n = g.num_vertices();
    let sparse_verts = frontier.to_sparse();
    let out_degree: usize =
        sparse_verts.par_iter().map(|&v| g.degree(v)).sum::<usize>() + sparse_verts.len();
    if out_degree > g.num_edges() / DENSE_FRACTION {
        // Dense: scan candidates' in-edges (graphs are symmetric), early-
        // exiting once the destination no longer needs updates.
        let flags = frontier.to_dense();
        let out: Vec<bool> = (0..n as u32)
            .into_par_iter()
            .map(|dst| {
                if !cond(dst) {
                    return false;
                }
                let mut hit = false;
                g.for_each_neighbor(dst, &mut |src| {
                    if flags[src as usize] && update(src, dst) {
                        hit = true;
                    }
                    // Keep scanning while dst still wants updates.
                    cond(dst)
                });
                hit
            })
            .collect();
        VertexSubset::from_dense(out)
    } else {
        // Sparse: fan out from each frontier vertex.
        let next: Vec<u32> = sparse_verts
            .par_iter()
            .flat_map_iter(|&src| {
                let mut local = Vec::new();
                g.for_each_neighbor(src, &mut |dst| {
                    if cond(dst) && update(src, dst) {
                        local.push(dst);
                    }
                    true
                });
                local.into_iter()
            })
            .collect();
        VertexSubset::from_sparse(n, next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{pack_edge, Csr};
    use std::sync::atomic::{AtomicU32, Ordering};

    fn path_graph(n: u32) -> Csr {
        let mut edges = Vec::new();
        for v in 0..n - 1 {
            edges.push(pack_edge(v, v + 1));
            edges.push(pack_edge(v + 1, v));
        }
        edges.sort_unstable();
        Csr::from_sorted_edges(n as usize, &edges)
    }

    #[test]
    fn subset_conversions() {
        let s = VertexSubset::from_sparse(5, vec![1, 3]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.to_dense(), vec![false, true, false, true, false]);
        let d = VertexSubset::from_dense(vec![true, false, true]);
        assert_eq!(d.len(), 2);
        assert_eq!(d.to_sparse(), vec![0, 2]);
        assert!(VertexSubset::empty(4).is_empty());
        assert_eq!(VertexSubset::single(4, 2).to_sparse(), vec![2]);
    }

    #[test]
    fn edge_map_bfs_wavefront() {
        // One BFS step on a path graph reaches exactly the two neighbours.
        let g = path_graph(10);
        let parent: Vec<AtomicU32> = (0..10).map(|_| AtomicU32::new(u32::MAX)).collect();
        parent[5].store(5, Ordering::Relaxed);
        let frontier = VertexSubset::single(10, 5);
        let next = edge_map(
            &g,
            &frontier,
            |src, dst| {
                parent[dst as usize]
                    .compare_exchange(u32::MAX, src, Ordering::Relaxed, Ordering::Relaxed)
                    .is_ok()
            },
            |dst| parent[dst as usize].load(Ordering::Relaxed) == u32::MAX,
        );
        let mut got = next.to_sparse();
        got.sort_unstable();
        assert_eq!(got, vec![4, 6]);
    }

    #[test]
    fn edge_map_dense_path_taken_for_full_frontier() {
        let g = path_graph(50);
        let all = VertexSubset::from_dense(vec![true; 50]);
        // Update that always fails: output must be empty either way.
        let next = edge_map(&g, &all, |_, _| false, |_| true);
        assert!(next.is_empty());
    }
}
