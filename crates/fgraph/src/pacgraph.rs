//! C-PaC graph baseline: per-vertex compressed PaC-trees.
//!
//! The paper's C-PaC comparator stores "compressed trees (one per vertex)"
//! (§6). We hold the per-vertex edge trees in a flat vector indexed by
//! vertex id — a simplification of CPAM's vertex-tree that, if anything,
//! *favours* the baseline (vertex lookup is O(1) here instead of a tree
//! descent), making F-Graph's measured advantage conservative (DESIGN.md
//! §4).

use crate::{unpack_edge, GraphScan};
use cpma_baselines::CPac;
use rayon::prelude::*;

/// Per-vertex compressed PaC-trees. See module docs.
pub struct PacGraph {
    verts: Vec<CPac>,
    m: usize,
}

/// Group a sorted packed-edge slice by source vertex.
pub(crate) fn groups_by_src(edges: &[u64]) -> Vec<(u32, &[u64])> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < edges.len() {
        let src = unpack_edge(edges[i]).0;
        let j = if src == u32::MAX {
            edges.len() // all remaining edges share the maximal source
        } else {
            let hi = (src as u64 + 1) << 32;
            i + edges[i..].partition_point(|&e| e < hi)
        };
        out.push((src, &edges[i..j]));
        i = j;
    }
    out
}

/// Shared-disjoint access to a vector: each parallel task must touch a
/// distinct index (the groups have unique source vertices).
pub(crate) struct SharedVec<T>(pub(crate) *mut T);
unsafe impl<T> Send for SharedVec<T> {}
unsafe impl<T> Sync for SharedVec<T> {}

impl<T> SharedVec<T> {
    /// # Safety
    /// No two concurrent calls may use the same index.
    #[inline]
    #[allow(clippy::mut_from_ref)] // disjoint-index contract: see struct docs
    pub(crate) unsafe fn get(&self, i: usize) -> &mut T {
        &mut *self.0.add(i)
    }
}

impl PacGraph {
    /// Empty graph over `0..n`.
    pub fn new(n: usize) -> Self {
        Self {
            verts: (0..n).map(|_| CPac::new()).collect(),
            m: 0,
        }
    }

    /// Build from sorted, deduplicated packed edges.
    pub fn from_edges(n: usize, edges: &[u64]) -> Self {
        let mut g = Self::new(n);
        let groups = groups_by_src(edges);
        let shared = SharedVec(g.verts.as_mut_ptr());
        groups.par_iter().for_each(|(src, es)| {
            let dsts: Vec<u64> = es.iter().map(|&e| unpack_edge(e).1 as u64).collect();
            // SAFETY: group sources are unique.
            unsafe { shared.get(*src as usize).insert_batch_sorted(&dsts) };
        });
        g.m = edges.len();
        g
    }

    /// Insert a batch of directed packed edges; returns edges added.
    pub fn insert_edges(&mut self, batch: &mut [u64], sorted: bool) -> usize {
        if !sorted {
            batch.par_sort_unstable();
        }
        let groups = groups_by_src(batch);
        let shared = SharedVec(self.verts.as_mut_ptr());
        let added: usize = groups
            .par_iter()
            .map(|(src, es)| {
                let mut dsts: Vec<u64> = es.iter().map(|&e| unpack_edge(e).1 as u64).collect();
                dsts.dedup();
                // SAFETY: group sources are unique.
                unsafe { shared.get(*src as usize).insert_batch_sorted(&dsts) }
            })
            .sum();
        self.m += added;
        added
    }

    /// Remove a batch of directed packed edges; returns edges removed.
    pub fn delete_edges(&mut self, batch: &mut [u64], sorted: bool) -> usize {
        if !sorted {
            batch.par_sort_unstable();
        }
        let groups = groups_by_src(batch);
        let shared = SharedVec(self.verts.as_mut_ptr());
        let removed: usize = groups
            .par_iter()
            .map(|(src, es)| {
                let mut dsts: Vec<u64> = es.iter().map(|&e| unpack_edge(e).1 as u64).collect();
                dsts.dedup();
                // SAFETY: group sources are unique.
                unsafe { shared.get(*src as usize).remove_batch_sorted(&dsts) }
            })
            .sum();
        self.m -= removed;
        removed
    }

    /// Edge-existence test.
    pub fn has_edge(&self, src: u32, dst: u32) -> bool {
        self.verts[src as usize].has(dst as u64)
    }

    /// Bytes of backing memory (per-vertex trees + the vertex vector).
    pub fn size_bytes(&self) -> usize {
        let trees: usize = self.verts.par_iter().map(|t| t.size_bytes()).sum();
        trees + self.verts.len() * std::mem::size_of::<CPac>()
    }
}

impl GraphScan for PacGraph {
    fn num_vertices(&self) -> usize {
        self.verts.len()
    }

    fn num_edges(&self) -> usize {
        self.m
    }

    fn degree(&self, v: u32) -> usize {
        self.verts[v as usize].len()
    }

    fn for_each_neighbor(&self, v: u32, f: &mut dyn FnMut(u32) -> bool) {
        self.verts[v as usize].for_each(&mut |e| f(e as u32));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pack_edge;

    #[test]
    fn groups_partition_edges() {
        let edges = vec![
            pack_edge(1, 2),
            pack_edge(1, 5),
            pack_edge(3, 0),
            pack_edge(7, 7),
        ];
        let groups = groups_by_src(&edges);
        assert_eq!(groups.len(), 3);
        assert_eq!(groups[0].0, 1);
        assert_eq!(groups[0].1.len(), 2);
        assert_eq!(groups[1], (3, &edges[2..3]));
        assert_eq!(groups[2], (7, &edges[3..4]));
    }

    #[test]
    fn build_and_scan() {
        let mut edges = vec![
            pack_edge(0, 1),
            pack_edge(1, 0),
            pack_edge(0, 2),
            pack_edge(2, 0),
        ];
        edges.sort_unstable();
        let g = PacGraph::from_edges(3, &edges);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.degree(0), 2);
        assert!(g.has_edge(0, 2));
        assert!(!g.has_edge(1, 2));
        let mut nbrs = Vec::new();
        g.for_each_neighbor(0, &mut |d| {
            nbrs.push(d);
            true
        });
        assert_eq!(nbrs, vec![1, 2]);
    }

    #[test]
    fn insert_and_delete_batches() {
        let mut g = PacGraph::new(10);
        let mut batch = vec![pack_edge(0, 1), pack_edge(1, 0), pack_edge(0, 1)];
        assert_eq!(g.insert_edges(&mut batch, false), 2);
        assert_eq!(g.num_edges(), 2);
        let mut del = vec![pack_edge(0, 1)];
        assert_eq!(g.delete_edges(&mut del, true), 1);
        assert!(!g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
    }
}
