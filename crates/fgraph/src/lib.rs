//! F-Graph and the dynamic-graph evaluation substrate (§6 of the CPMA
//! paper).
//!
//! The paper demonstrates the CPMA on dynamic-graph processing: F-Graph
//! stores an entire graph in **one** CPMA of packed `(src << 32) | dst`
//! edges, and is compared against C-PaC (per-vertex compressed PaC-trees)
//! and Aspen (per-vertex C-trees) on PageRank, Connected Components, and
//! Betweenness Centrality, all "via the Ligra interface" so the containers
//! are the only variable.
//!
//! * [`GraphScan`] — the neighbor-iteration interface all algorithms use;
//! * [`Csr`] — static Compressed Sparse Row reference (correctness oracle);
//! * [`FGraph`] — the paper's system: one CPMA, offsets rebuilt on demand;
//! * [`PacGraph`] / [`AspenGraph`] — the baseline containers;
//! * [`ligra`] — `VertexSubset` + `edge_map` (sparse/dense with switching);
//! * [`algos`] — BFS, PageRank, label-propagation CC, Brandes BC.

pub mod algos;
pub mod aspen;
pub mod csr;
pub mod fgraph;
pub mod ligra;
pub mod pacgraph;

pub use aspen::AspenGraph;
pub use csr::Csr;
pub use fgraph::{EdgeSet, FGraph, FGraphSnapshot, SetGraph, SetGraphSnapshot};
pub use ligra::{edge_map, VertexSubset};
pub use pacgraph::PacGraph;

/// Pack a directed edge the way F-Graph stores it: source in the upper 32
/// bits, destination in the lower 32 (§6, "F-Graph description").
#[inline]
pub fn pack_edge(src: u32, dst: u32) -> u64 {
    ((src as u64) << 32) | dst as u64
}

/// Inverse of [`pack_edge`].
#[inline]
pub fn unpack_edge(e: u64) -> (u32, u32) {
    ((e >> 32) as u32, e as u32)
}

/// Neighbor-scan interface shared by every container (the role the Ligra
/// `Graph` abstraction plays in the paper's evaluation: "all systems run
/// the same algorithms via the Ligra interface").
pub trait GraphScan: Send + Sync {
    /// Number of vertices (fixed id space `0..n`).
    fn num_vertices(&self) -> usize;
    /// Number of directed edges stored.
    fn num_edges(&self) -> usize;
    /// Out-degree of `v` (== in-degree: graphs are symmetrized).
    fn degree(&self, v: u32) -> usize;
    /// Visit `v`'s neighbors in ascending order; stop early on `false`.
    fn for_each_neighbor(&self, v: u32, f: &mut dyn FnMut(u32) -> bool);

    /// Dense pull: `out[v] = Σ_{u ∈ N(v)} weights[u]` for every vertex —
    /// the whole-graph kernel behind PageRank. The default pulls per
    /// vertex; flat containers override it with a single pass over the
    /// edge array (the paper's "arbitrary-order algorithms ... can be cast
    /// as a straightforward pass through the data structure").
    fn pull_accumulate(&self, weights: &[f64], out: &mut [f64]) {
        use rayon::prelude::*;
        debug_assert_eq!(weights.len(), self.num_vertices());
        debug_assert_eq!(out.len(), self.num_vertices());
        out.par_iter_mut().enumerate().for_each(|(v, o)| {
            let mut acc = 0.0;
            self.for_each_neighbor(v as u32, &mut |u| {
                acc += weights[u as usize];
                true
            });
            *o = acc;
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_packing_roundtrip() {
        for (s, d) in [(0u32, 0u32), (7, 9), (u32::MAX, 1)] {
            assert_eq!(unpack_edge(pack_edge(s, d)), (s, d));
        }
    }
}
