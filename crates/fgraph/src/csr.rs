//! Static Compressed Sparse Row graph — the representation the paper uses
//! to *motivate* F-Graph ("consider the canonical Compressed Sparse Row
//! (CSR) representation", §6) and this reproduction's correctness oracle
//! for the graph algorithms.

use crate::{unpack_edge, GraphScan};
use rayon::prelude::*;

/// Immutable CSR over `u32` vertex ids.
pub struct Csr {
    /// `offsets[v]..offsets[v+1]` indexes `targets` for vertex `v`.
    offsets: Vec<u64>,
    targets: Vec<u32>,
}

impl Csr {
    /// Build from sorted, deduplicated packed edges and a vertex count.
    pub fn from_sorted_edges(n: usize, edges: &[u64]) -> Self {
        debug_assert!(edges.windows(2).all(|w| w[0] < w[1]));
        let mut offsets = vec![0u64; n + 1];
        for &e in edges {
            let (s, _) = unpack_edge(e);
            assert!((s as usize) < n, "source {s} out of range");
            offsets[s as usize + 1] += 1;
        }
        for v in 0..n {
            offsets[v + 1] += offsets[v];
        }
        let targets: Vec<u32> = edges.par_iter().map(|&e| unpack_edge(e).1).collect();
        Self { offsets, targets }
    }

    /// Neighbor slice of `v`.
    #[inline]
    pub fn neighbors(&self, v: u32) -> &[u32] {
        let (a, b) = (self.offsets[v as usize], self.offsets[v as usize + 1]);
        &self.targets[a as usize..b as usize]
    }

    /// Bytes of backing memory.
    pub fn size_bytes(&self) -> usize {
        self.offsets.len() * 8 + self.targets.len() * 4
    }
}

impl GraphScan for Csr {
    fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    fn num_edges(&self) -> usize {
        self.targets.len()
    }

    #[inline]
    fn degree(&self, v: u32) -> usize {
        (self.offsets[v as usize + 1] - self.offsets[v as usize]) as usize
    }

    #[inline]
    fn for_each_neighbor(&self, v: u32, f: &mut dyn FnMut(u32) -> bool) {
        for &d in self.neighbors(v) {
            if !f(d) {
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pack_edge;

    fn tiny() -> Csr {
        // 0-1, 0-2, 1-2, 3 isolated (symmetric).
        let mut edges = vec![
            pack_edge(0, 1),
            pack_edge(1, 0),
            pack_edge(0, 2),
            pack_edge(2, 0),
            pack_edge(1, 2),
            pack_edge(2, 1),
        ];
        edges.sort_unstable();
        Csr::from_sorted_edges(4, &edges)
    }

    #[test]
    fn degrees_and_neighbors() {
        let g = tiny();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 6);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbors(2), &[0, 1]);
        assert_eq!(g.degree(3), 0);
        assert_eq!(g.neighbors(3), &[] as &[u32]);
    }

    #[test]
    fn early_exit_neighbor_scan() {
        let g = tiny();
        let mut seen = Vec::new();
        g.for_each_neighbor(2, &mut |d| {
            seen.push(d);
            false
        });
        assert_eq!(seen, vec![0]);
    }

    #[test]
    fn empty_graph() {
        let g = Csr::from_sorted_edges(3, &[]);
        assert_eq!(g.num_edges(), 0);
        for v in 0..3 {
            assert_eq!(g.degree(v), 0);
        }
    }
}
