//! Aspen graph baseline: per-vertex C-trees (paper's reference \[36]).
//!
//! Aspen stores "compressed trees (one per vertex)" where each adjacency
//! set is a C-tree: hash-sampled heads carrying compressed chunks. As with
//! [`PacGraph`](crate::PacGraph), the vertex level is a flat vector here
//! (Aspen's is itself a tree, so this favours the baseline; DESIGN.md §4).

use crate::pacgraph::{groups_by_src, SharedVec};
use crate::{unpack_edge, GraphScan};
use cpma_baselines::CTreeSet;
use rayon::prelude::*;

/// Per-vertex Aspen-style C-trees. See module docs.
pub struct AspenGraph {
    verts: Vec<CTreeSet>,
    m: usize,
}

impl AspenGraph {
    /// Empty graph over `0..n`.
    pub fn new(n: usize) -> Self {
        Self {
            verts: (0..n).map(|_| CTreeSet::new()).collect(),
            m: 0,
        }
    }

    /// Build from sorted, deduplicated packed edges.
    pub fn from_edges(n: usize, edges: &[u64]) -> Self {
        let mut g = Self::new(n);
        let groups = groups_by_src(edges);
        let shared = SharedVec(g.verts.as_mut_ptr());
        groups.par_iter().for_each(|(src, es)| {
            let dsts: Vec<u64> = es.iter().map(|&e| unpack_edge(e).1 as u64).collect();
            // SAFETY: group sources are unique.
            unsafe {
                *shared.get(*src as usize) = CTreeSet::from_sorted(&dsts);
            }
        });
        g.m = edges.len();
        g
    }

    /// Insert a batch of directed packed edges; returns edges added.
    pub fn insert_edges(&mut self, batch: &mut [u64], sorted: bool) -> usize {
        if !sorted {
            batch.par_sort_unstable();
        }
        let groups = groups_by_src(batch);
        let shared = SharedVec(self.verts.as_mut_ptr());
        let added: usize = groups
            .par_iter()
            .map(|(src, es)| {
                let mut dsts: Vec<u64> = es.iter().map(|&e| unpack_edge(e).1 as u64).collect();
                dsts.dedup();
                // SAFETY: group sources are unique.
                unsafe { shared.get(*src as usize).insert_batch_sorted(&dsts) }
            })
            .sum();
        self.m += added;
        added
    }

    /// Remove a batch of directed packed edges; returns edges removed.
    pub fn delete_edges(&mut self, batch: &mut [u64], sorted: bool) -> usize {
        if !sorted {
            batch.par_sort_unstable();
        }
        let groups = groups_by_src(batch);
        let shared = SharedVec(self.verts.as_mut_ptr());
        let removed: usize = groups
            .par_iter()
            .map(|(src, es)| {
                let mut dsts: Vec<u64> = es.iter().map(|&e| unpack_edge(e).1 as u64).collect();
                dsts.dedup();
                // SAFETY: group sources are unique.
                unsafe { shared.get(*src as usize).remove_batch_sorted(&dsts) }
            })
            .sum();
        self.m -= removed;
        removed
    }

    /// Edge-existence test.
    pub fn has_edge(&self, src: u32, dst: u32) -> bool {
        self.verts[src as usize].has(dst as u64)
    }

    /// Bytes of backing memory.
    pub fn size_bytes(&self) -> usize {
        let trees: usize = self.verts.par_iter().map(|t| t.size_bytes()).sum();
        trees + self.verts.len() * std::mem::size_of::<CTreeSet>()
    }
}

impl GraphScan for AspenGraph {
    fn num_vertices(&self) -> usize {
        self.verts.len()
    }

    fn num_edges(&self) -> usize {
        self.m
    }

    fn degree(&self, v: u32) -> usize {
        self.verts[v as usize].len()
    }

    fn for_each_neighbor(&self, v: u32, f: &mut dyn FnMut(u32) -> bool) {
        self.verts[v as usize].for_each(&mut |e| f(e as u32));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pack_edge;

    #[test]
    fn build_insert_delete() {
        let mut edges = vec![
            pack_edge(0, 1),
            pack_edge(1, 0),
            pack_edge(1, 2),
            pack_edge(2, 1),
        ];
        edges.sort_unstable();
        let mut g = AspenGraph::from_edges(4, &edges);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.degree(1), 2);
        assert!(g.has_edge(1, 2));
        let mut b = vec![pack_edge(3, 0), pack_edge(0, 3)];
        assert_eq!(g.insert_edges(&mut b, false), 2);
        assert!(g.has_edge(3, 0));
        let mut d = vec![pack_edge(1, 2), pack_edge(2, 1)];
        assert_eq!(g.delete_edges(&mut d, true), 2);
        assert!(!g.has_edge(1, 2));
        assert_eq!(g.num_edges(), 4);
        let mut nbrs = Vec::new();
        g.for_each_neighbor(0, &mut |x| {
            nbrs.push(x);
            true
        });
        assert_eq!(nbrs, vec![1, 3]);
    }
}
