//! Edge-case tests for the graph layer that the happy-path consistency
//! suite doesn't reach: hubs spanning many CPMA leaves, empty graphs,
//! vertex-id extremes, snapshot staleness semantics, and Ligra frontier
//! switching.

use cpma_fgraph::algos::{bc, bfs, cc, pagerank};
use cpma_fgraph::{edge_map, pack_edge, Csr, FGraph, GraphScan, VertexSubset};

fn sym(pairs: &[(u32, u32)]) -> Vec<u64> {
    let mut edges = Vec::new();
    for &(a, b) in pairs {
        edges.push(pack_edge(a, b));
        edges.push(pack_edge(b, a));
    }
    edges.sort_unstable();
    edges.dedup();
    edges
}

#[test]
fn empty_graph_algorithms() {
    let g = FGraph::new(5);
    let s = g.snapshot();
    assert_eq!(pagerank(&s, 5).len(), 5);
    assert_eq!(cc(&s), vec![0, 1, 2, 3, 4]);
    let d = bc(&s, 2);
    assert!(d.iter().all(|&x| x == 0.0));
    let p = bfs(&s, 0);
    assert_eq!(p[0], 0);
    assert!(p[1..].iter().all(|&x| x == u32::MAX));
}

#[test]
fn single_edge_graph() {
    let g = FGraph::from_edges(2, &sym(&[(0, 1)]));
    let s = g.snapshot();
    assert_eq!(s.degree(0), 1);
    assert_eq!(cc(&s), vec![0, 0]);
    let pr = pagerank(&s, 10);
    assert!((pr[0] - pr[1]).abs() < 1e-12, "symmetric pair must tie");
}

#[test]
fn hub_spanning_many_leaves() {
    // A 20k-degree hub guarantees its adjacency crosses dozens of
    // compressed leaves; verify order, count, and BC through the hub.
    let n = 20_002;
    let pairs: Vec<(u32, u32)> = (1..20_001u32).map(|v| (0, v)).collect();
    let g = FGraph::from_edges(n, &sym(&pairs));
    let s = g.snapshot();
    assert_eq!(s.degree(0), 20_000);
    let mut prev = 0;
    let mut cnt = 0;
    s.for_each_neighbor(0, &mut |d| {
        assert!(d > prev || cnt == 0, "neighbors out of order");
        prev = d;
        cnt += 1;
        true
    });
    assert_eq!(cnt, 20_000);
    // From a leaf, the hub mediates all shortest paths.
    let d = bc(&s, 1);
    assert!((d[0] - 19_999.0).abs() < 1e-6);
}

#[test]
fn snapshot_is_a_point_in_time_view() {
    let mut g = FGraph::from_edges(4, &sym(&[(0, 1)]));
    let before = g.snapshot().degree(0);
    assert_eq!(before, 1);
    // Mutating after a snapshot is a new-epoch operation (single-writer
    // phasing, as the paper's systems do); a fresh snapshot sees the change.
    drop(g.snapshot());
    let mut batch = sym(&[(0, 2), (0, 3)]);
    g.insert_edges(&mut batch, true);
    assert_eq!(g.snapshot().degree(0), 3);
}

#[test]
fn max_vertex_ids() {
    // Vertices near the u32 ceiling pack/unpack correctly through the CPMA.
    let a = u32::MAX - 1;
    let b = u32::MAX;
    let edges = vec![pack_edge(a, b), pack_edge(b, a)];
    let mut sorted = edges.clone();
    sorted.sort_unstable();
    let g = FGraph::from_edges(u32::MAX as usize + 1, &sorted);
    assert!(g.has_edge(a, b));
    assert!(g.has_edge(b, a));
    assert_eq!(g.num_edges(), 2);
}

#[test]
fn edge_map_sparse_and_dense_modes_correct() {
    // A ring: neighbors of the frontier are exactly the ±1 vertices.
    // A 2-vertex frontier stays under Ligra's m/20 threshold (sparse
    // traversal); the full-vertex frontier exceeds it (dense traversal).
    let pairs: Vec<(u32, u32)> = (0..200u32).map(|v| (v, (v + 1) % 200)).collect();
    let edges = sym(&pairs);
    let csr = Csr::from_sorted_edges(200, &edges);
    use std::sync::atomic::{AtomicBool, Ordering};
    let run = |frontier: &VertexSubset| {
        let seen: Vec<AtomicBool> = (0..200).map(|_| AtomicBool::new(false)).collect();
        let out = edge_map(
            &csr,
            frontier,
            |_, d| !seen[d as usize].swap(true, Ordering::Relaxed),
            |_| true,
        );
        let mut v = out.to_sparse();
        v.sort_unstable();
        v
    };
    // Sparse mode: out-degree 2·2+2 = 6 < 800/20.
    let sparse_result = run(&VertexSubset::from_sparse(200, vec![0, 100]));
    assert_eq!(sparse_result, vec![1, 99, 101, 199]);
    // Dense mode: the full frontier reaches every vertex exactly once.
    let dense_result = run(&VertexSubset::from_dense(vec![true; 200]));
    assert_eq!(dense_result, (0..200u32).collect::<Vec<_>>());
}

#[test]
fn cc_on_star_forest() {
    // Several stars: components = number of stars; labels = star minimums.
    let mut pairs = Vec::new();
    for star in 0..5u32 {
        let center = star * 100;
        for leaf in 1..50u32 {
            pairs.push((center, center + leaf));
        }
    }
    let n = 500;
    let g = FGraph::from_edges(n, &sym(&pairs));
    let labels = cc(&g.snapshot());
    for star in 0..5u32 {
        let center = (star * 100) as usize;
        for leaf in 0..50usize {
            assert_eq!(labels[center + leaf], star * 100);
        }
    }
}

#[test]
fn pagerank_mass_conservation_large() {
    let pairs: Vec<(u32, u32)> = (0..999u32).map(|v| (v, v + 1)).collect();
    let g = FGraph::from_edges(1000, &sym(&pairs));
    let pr = pagerank(&g.snapshot(), 15);
    let total: f64 = pr.iter().sum();
    assert!((total - 1.0).abs() < 1e-9, "mass leaked: {total}");
}

#[test]
fn bfs_levels_match_csr_on_random_graph() {
    use cpma_workloads::RmatGenerator;
    let edges = RmatGenerator::paper_config(9, 77).undirected_graph(2_000);
    let n = 1 << 9;
    let csr = Csr::from_sorted_edges(n, &edges);
    let g = FGraph::from_edges(n, &edges);
    let snap = g.snapshot();
    // Compare per-vertex BFS levels (parents may legally differ).
    let level = |scan: &dyn Fn(u32) -> Vec<u32>, src: u32| -> Vec<i32> {
        let mut lv = vec![-1i32; n];
        lv[src as usize] = 0;
        let mut frontier = vec![src];
        let mut d = 0;
        while !frontier.is_empty() {
            d += 1;
            let mut next = Vec::new();
            for &v in &frontier {
                for w in scan(v) {
                    if lv[w as usize] < 0 {
                        lv[w as usize] = d;
                        next.push(w);
                    }
                }
            }
            frontier = next;
        }
        lv
    };
    let csr_scan = |v: u32| {
        let mut out = Vec::new();
        csr.for_each_neighbor(v, &mut |d| {
            out.push(d);
            true
        });
        out
    };
    let fg_scan = |v: u32| {
        let mut out = Vec::new();
        snap.for_each_neighbor(v, &mut |d| {
            out.push(d);
            true
        });
        out
    };
    assert_eq!(level(&csr_scan, 1), level(&fg_scan, 1));
}
