//! The metric [`Registry`]: named counters/gauges/histograms with interned
//! keys, per-instance cells, and merged snapshots.

use std::collections::HashMap;
use std::sync::atomic::AtomicU64;
use std::sync::{Arc, Mutex, Weak};

use crate::metrics::{Counter, CounterCell, Gauge, GaugeCell, HistCell, Histogram, RetiredHist};
use crate::snapshot::{Metric, MetricValue, Snapshot};

/// Dimension of a metric. [`Unit::Nanos`] marks a metric as
/// *timing-derived*: its values depend on the machine and the schedule and
/// must never feed back into algorithmic decisions. [`Unit::Count`] and
/// [`Unit::Bytes`] metrics are deterministic for a deterministic workload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Unit {
    /// Plain event/item count (deterministic).
    Count,
    /// Byte volume (deterministic).
    Bytes,
    /// Nanoseconds (timing-derived; gated by [`crate::set_timing_enabled`]).
    Nanos,
}

impl Unit {
    /// Short lowercase label used in the JSON exposition.
    pub fn label(self) -> &'static str {
        match self {
            Unit::Count => "count",
            Unit::Bytes => "bytes",
            Unit::Nanos => "ns",
        }
    }
}

/// Prune dead weak refs once a cell list grows past this length.
const PRUNE_AT: usize = 64;

enum Slot {
    Counter {
        cells: Vec<Weak<CounterCell>>,
        retired: Arc<AtomicU64>,
        shared: Option<Counter>,
    },
    Gauge {
        cells: Vec<Weak<GaugeCell>>,
        shared: Option<Gauge>,
    },
    Hist {
        cells: Vec<Weak<HistCell>>,
        retired: Arc<Mutex<RetiredHist>>,
        shared: Option<Histogram>,
    },
}

impl Slot {
    fn kind(&self) -> &'static str {
        match self {
            Slot::Counter { .. } => "counter",
            Slot::Gauge { .. } => "gauge",
            Slot::Hist { .. } => "histogram",
        }
    }
}

struct Entry {
    unit: Unit,
    slot: Slot,
}

/// A registry of named metrics.
///
/// Each name maps to one *metric* backed by any number of *cells*: every
/// structure instance registers its own cell (so its private `stats()`
/// view stays schedule-independent), and `snapshot()` merges live cells
/// with the retired totals of dropped ones. Recording never takes the
/// registry lock — only registration and snapshots do.
///
/// Most code uses the process-wide [`crate::global`] registry; tests can
/// make isolated ones with [`Registry::new`].
pub struct Registry {
    inner: Mutex<HashMap<String, Entry>>,
    span_hists: Mutex<HashMap<&'static str, Histogram>>,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self {
            inner: Mutex::new(HashMap::new()),
            span_hists: Mutex::new(HashMap::new()),
        }
    }

    fn with_entry<R>(
        &self,
        name: &str,
        unit: Unit,
        mk: fn(Unit) -> Slot,
        f: impl FnOnce(&mut Entry) -> R,
    ) -> R {
        let mut map = self.inner.lock().unwrap();
        if !map.contains_key(name) {
            map.insert(
                name.to_string(),
                Entry {
                    unit,
                    slot: mk(unit),
                },
            );
        }
        let entry = map.get_mut(name).unwrap();
        let want = mk(unit).kind();
        assert_eq!(
            entry.slot.kind(),
            want,
            "metric `{name}` is a {}, requested as a {want}",
            entry.slot.kind()
        );
        assert_eq!(
            entry.unit, unit,
            "metric `{name}` registered with unit {:?}, requested {unit:?}",
            entry.unit
        );
        f(entry)
    }

    /// Register a fresh counter cell under `name`. Each call returns an
    /// independent cell; the snapshot for `name` is the sum of all cells
    /// ever registered (live plus retired).
    pub fn counter(&self, name: &str, unit: Unit) -> Counter {
        self.with_entry(name, unit, new_counter_slot, |entry| {
            let Slot::Counter { cells, retired, .. } = &mut entry.slot else {
                unreachable!()
            };
            let cell = Arc::new(CounterCell::new(retired.clone()));
            push_pruned(cells, Arc::downgrade(&cell));
            Counter(cell)
        })
    }

    /// Get-or-create the single process-shared counter cell under `name`.
    /// Use for metrics with no owning structure (a global thread pool, the
    /// WAL layer); repeated calls return handles to the same cell.
    pub fn shared_counter(&self, name: &str, unit: Unit) -> Counter {
        self.with_entry(name, unit, new_counter_slot, |entry| {
            let Slot::Counter {
                cells,
                retired,
                shared,
            } = &mut entry.slot
            else {
                unreachable!()
            };
            shared
                .get_or_insert_with(|| {
                    let cell = Arc::new(CounterCell::new(retired.clone()));
                    push_pruned(cells, Arc::downgrade(&cell));
                    Counter(cell)
                })
                .clone()
        })
    }

    /// Register a fresh gauge cell under `name`; the snapshot is the sum
    /// of live cells (a dropped gauge's level vanishes with it).
    pub fn gauge(&self, name: &str) -> Gauge {
        self.with_entry(name, Unit::Count, new_gauge_slot, |entry| {
            let Slot::Gauge { cells, .. } = &mut entry.slot else {
                unreachable!()
            };
            let g = Gauge::new_cell();
            push_pruned(cells, Arc::downgrade(&g.0));
            g
        })
    }

    /// Get-or-create the single process-shared gauge cell under `name`.
    pub fn shared_gauge(&self, name: &str) -> Gauge {
        self.with_entry(name, Unit::Count, new_gauge_slot, |entry| {
            let Slot::Gauge { cells, shared } = &mut entry.slot else {
                unreachable!()
            };
            shared
                .get_or_insert_with(|| {
                    let g = Gauge::new_cell();
                    push_pruned(cells, Arc::downgrade(&g.0));
                    g
                })
                .clone()
        })
    }

    /// Register a fresh histogram cell under `name`; the snapshot merges
    /// all cells bucket-wise (live plus retired).
    pub fn histogram(&self, name: &str, unit: Unit) -> Histogram {
        self.with_entry(name, unit, new_hist_slot, |entry| {
            let Slot::Hist { cells, retired, .. } = &mut entry.slot else {
                unreachable!()
            };
            let cell = Arc::new(HistCell::new(retired.clone()));
            push_pruned(cells, Arc::downgrade(&cell));
            Histogram(cell)
        })
    }

    /// Get-or-create the single process-shared histogram cell under `name`.
    pub fn shared_histogram(&self, name: &str, unit: Unit) -> Histogram {
        self.with_entry(name, unit, new_hist_slot, |entry| {
            let Slot::Hist {
                cells,
                retired,
                shared,
            } = &mut entry.slot
            else {
                unreachable!()
            };
            shared
                .get_or_insert_with(|| {
                    let cell = Arc::new(HistCell::new(retired.clone()));
                    push_pruned(cells, Arc::downgrade(&cell));
                    Histogram(cell)
                })
                .clone()
        })
    }

    /// Shared nanosecond histogram for a span name: `"<name>.ns"`. Cached
    /// by the `&'static str` key so span entry does not allocate.
    pub(crate) fn span_histogram(&self, name: &'static str) -> Histogram {
        if let Some(h) = self.span_hists.lock().unwrap().get(name) {
            return h.clone();
        }
        let h = self.shared_histogram(&format!("{name}.ns"), Unit::Nanos);
        self.span_hists.lock().unwrap().insert(name, h.clone());
        h
    }

    /// Merged point-in-time view of every metric, sorted by name: counter
    /// values are `retired + Σ live cells`, gauges are `Σ live cells`,
    /// histograms are the bucket-wise merge of every cell.
    pub fn snapshot(&self) -> Snapshot {
        let map = self.inner.lock().unwrap();
        let mut metrics: Vec<Metric> = map
            .iter()
            .map(|(name, entry)| {
                let value = match &entry.slot {
                    Slot::Counter { cells, retired, .. } => {
                        let mut total = retired.load(std::sync::atomic::Ordering::Relaxed);
                        for w in cells {
                            if let Some(cell) = w.upgrade() {
                                total += cell.value();
                            }
                        }
                        MetricValue::Counter(total)
                    }
                    Slot::Gauge { cells, .. } => {
                        let mut total = 0i64;
                        for w in cells {
                            if let Some(cell) = w.upgrade() {
                                total += Gauge(cell).value();
                            }
                        }
                        MetricValue::Gauge(total)
                    }
                    Slot::Hist { cells, retired, .. } => {
                        let mut snap = crate::HistSnapshot::new();
                        retired.lock().unwrap().fold_into(&mut snap);
                        for w in cells {
                            if let Some(cell) = w.upgrade() {
                                cell.fold_into(&mut snap);
                            }
                        }
                        MetricValue::Histogram(snap)
                    }
                };
                Metric {
                    name: name.clone(),
                    unit: entry.unit,
                    value,
                }
            })
            .collect();
        metrics.sort_by(|a, b| a.name.cmp(&b.name));
        Snapshot { metrics }
    }
}

fn new_counter_slot(_unit: Unit) -> Slot {
    Slot::Counter {
        cells: Vec::new(),
        retired: Arc::new(AtomicU64::new(0)),
        shared: None,
    }
}

fn new_gauge_slot(_unit: Unit) -> Slot {
    Slot::Gauge {
        cells: Vec::new(),
        shared: None,
    }
}

fn new_hist_slot(_unit: Unit) -> Slot {
    Slot::Hist {
        cells: Vec::new(),
        retired: Arc::new(Mutex::new(RetiredHist::default())),
        shared: None,
    }
}

fn push_pruned<T>(cells: &mut Vec<Weak<T>>, w: Weak<T>) {
    if cells.len() >= PRUNE_AT {
        cells.retain(|c| c.strong_count() > 0);
    }
    cells.push(w);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_cells_sum_and_retire() {
        let r = Registry::new();
        let a = r.counter("x.events", Unit::Count);
        let b = r.counter("x.events", Unit::Count);
        a.add(3);
        b.add(4);
        assert_eq!(r.snapshot().counter("x.events"), Some(7));
        drop(a);
        assert_eq!(
            r.snapshot().counter("x.events"),
            Some(7),
            "retired total kept"
        );
        b.inc();
        assert_eq!(r.snapshot().counter("x.events"), Some(8));
    }

    #[test]
    fn shared_counter_is_one_cell() {
        let r = Registry::new();
        let a = r.shared_counter("pool.jobs", Unit::Count);
        let b = r.shared_counter("pool.jobs", Unit::Count);
        a.add(2);
        b.add(3);
        assert_eq!(a.value(), 5, "both handles hit the same cell");
        assert_eq!(r.snapshot().counter("pool.jobs"), Some(5));
    }

    #[test]
    fn gauge_contribution_vanishes_on_drop() {
        let r = Registry::new();
        let a = r.gauge("q.depth");
        let b = r.gauge("q.depth");
        a.set(10);
        b.set(5);
        assert_eq!(r.snapshot().gauge("q.depth"), Some(15));
        drop(a);
        assert_eq!(r.snapshot().gauge("q.depth"), Some(5));
    }

    #[test]
    fn histogram_cells_merge_and_retire() {
        let r = Registry::new();
        let a = r.histogram("lat.ns", Unit::Nanos);
        let b = r.histogram("lat.ns", Unit::Nanos);
        a.record(10);
        b.record(1000);
        let snap = r.snapshot();
        let h = snap.histogram("lat.ns").unwrap();
        assert_eq!(h.count, 2);
        drop(a);
        let snap = r.snapshot();
        let h = snap.histogram("lat.ns").unwrap();
        assert_eq!(h.count, 2, "retired buckets kept");
        assert_eq!(h.quantile(0.0), 10);
    }

    #[test]
    #[should_panic(expected = "requested as a gauge")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        let _c = r.counter("dup", Unit::Count);
        let _g = r.gauge("dup");
    }

    #[test]
    #[should_panic(expected = "registered with unit")]
    fn unit_mismatch_panics() {
        let r = Registry::new();
        let _a = r.counter("dup2", Unit::Count);
        let _b = r.counter("dup2", Unit::Bytes);
    }

    #[test]
    fn dead_cells_are_pruned() {
        let r = Registry::new();
        for _ in 0..500 {
            let c = r.counter("churn", Unit::Count);
            c.inc();
        }
        let map = r.inner.lock().unwrap();
        let Slot::Counter { cells, retired, .. } = &map["churn"].slot else {
            panic!()
        };
        assert!(
            cells.len() <= PRUNE_AT + 1,
            "weak list bounded, got {}",
            cells.len()
        );
        assert_eq!(retired.load(std::sync::atomic::Ordering::Relaxed), 500);
    }
}
