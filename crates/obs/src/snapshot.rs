//! Point-in-time metric snapshots and the two exposition formats:
//! Prometheus-style text and JSON (same conventions as `ubench`'s
//! `BENCH_*.json`: escaped string literals, finite numbers, a flat
//! top-level array that diffing tools can walk without a schema).

use std::io::Write;
use std::path::Path;

use crate::metrics::HistSnapshot;
use crate::registry::Unit;

/// The quantiles every histogram exposes in both formats:
/// `(q, prometheus label, json key)`.
pub const QUANTILES: [(f64, &str, &str); 3] = [
    (0.5, "0.5", "p50"),
    (0.99, "0.99", "p99"),
    (0.999, "0.999", "p999"),
];

/// One named metric in a [`Snapshot`].
#[derive(Clone, Debug)]
pub struct Metric {
    /// Dotted metric name, e.g. `combiner.epoch.ns`.
    pub name: String,
    /// Dimension; [`Unit::Nanos`] marks timing-derived metrics.
    pub unit: Unit,
    /// The merged value across every cell registered under this name.
    pub value: MetricValue,
}

/// The value side of a [`Metric`].
#[derive(Clone, Debug)]
pub enum MetricValue {
    /// Monotonic total.
    Counter(u64),
    /// Instantaneous level (sum of live cells).
    Gauge(i64),
    /// Merged distribution.
    Histogram(HistSnapshot),
}

/// A sorted point-in-time view of a [`Registry`](crate::Registry),
/// produced by [`Registry::snapshot`](crate::Registry::snapshot).
#[derive(Clone, Debug, Default)]
pub struct Snapshot {
    /// All metrics, sorted by name.
    pub metrics: Vec<Metric>,
}

impl Snapshot {
    fn find(&self, name: &str) -> Option<&Metric> {
        self.metrics.iter().find(|m| m.name == name)
    }

    /// Value of a counter metric, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.find(name)?.value {
            MetricValue::Counter(v) => Some(v),
            _ => None,
        }
    }

    /// Level of a gauge metric, if present.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        match self.find(name)?.value {
            MetricValue::Gauge(v) => Some(v),
            _ => None,
        }
    }

    /// Merged histogram under `name`, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistSnapshot> {
        match &self.find(name)?.value {
            MetricValue::Histogram(h) => Some(h),
            _ => None,
        }
    }

    /// Prometheus-style text exposition. Dotted names become
    /// `cpma_`-prefixed underscore names; histograms render as summaries
    /// with `quantile` labels plus `_sum`/`_count` series.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for m in &self.metrics {
            let pname = prom_name(&m.name);
            match &m.value {
                MetricValue::Counter(v) => {
                    out.push_str(&format!("# TYPE {pname} counter\n{pname} {v}\n"));
                }
                MetricValue::Gauge(v) => {
                    out.push_str(&format!("# TYPE {pname} gauge\n{pname} {v}\n"));
                }
                MetricValue::Histogram(h) => {
                    out.push_str(&format!("# TYPE {pname} summary\n"));
                    for (q, label, _) in QUANTILES {
                        out.push_str(&format!(
                            "{pname}{{quantile=\"{label}\"}} {}\n",
                            h.quantile(q)
                        ));
                    }
                    out.push_str(&format!("{pname}_sum {}\n", h.sum));
                    out.push_str(&format!("{pname}_count {}\n", h.count));
                }
            }
        }
        out
    }

    /// JSON exposition: `{"metrics": [{name, kind, unit, ...}, ...]}`,
    /// flat and stable like `BENCH_*.json`.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"metrics\": [\n");
        for (i, m) in self.metrics.iter().enumerate() {
            out.push_str("    {");
            out.push_str(&format!("\"name\": {}, ", json_string(&m.name)));
            match &m.value {
                MetricValue::Counter(v) => {
                    out.push_str(&format!(
                        "\"kind\": \"counter\", \"unit\": \"{}\", \"value\": {v}",
                        m.unit.label()
                    ));
                }
                MetricValue::Gauge(v) => {
                    out.push_str(&format!(
                        "\"kind\": \"gauge\", \"unit\": \"{}\", \"value\": {v}",
                        m.unit.label()
                    ));
                }
                MetricValue::Histogram(h) => {
                    out.push_str(&format!(
                        "\"kind\": \"histogram\", \"unit\": \"{}\", \"count\": {}, \"sum\": {}, ",
                        m.unit.label(),
                        h.count,
                        h.sum
                    ));
                    out.push_str(&format!("\"mean\": {}, ", json_number(h.mean())));
                    for (j, (q, _, key)) in QUANTILES.iter().enumerate() {
                        if j > 0 {
                            out.push_str(", ");
                        }
                        out.push_str(&format!("\"{key}\": {}", h.quantile(*q)));
                    }
                }
            }
            out.push('}');
            out.push_str(if i + 1 < self.metrics.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Write [`Snapshot::to_json`] to `path`.
    pub fn write_json(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.to_json().as_bytes())
    }
}

/// `combiner.epoch.ns` → `cpma_combiner_epoch_ns`.
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 5);
    out.push_str("cpma_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// A JSON string literal (same escaping rules as `ubench`).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A finite JSON number (JSON has no NaN/inf; clamp those to 0).
fn json_number(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "0".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    #[test]
    fn prometheus_shape() {
        let r = Registry::new();
        let c = r.counter("pma.batches", Unit::Count);
        c.add(42);
        let g = r.gauge("q.depth");
        g.set(3);
        let h = r.histogram("epoch.ns", Unit::Nanos);
        for v in 1..=100u64 {
            h.record(v);
        }
        let text = r.snapshot().to_prometheus();
        assert!(text.contains("# TYPE cpma_pma_batches counter"));
        assert!(text.contains("cpma_pma_batches 42"));
        assert!(text.contains("cpma_q_depth 3"));
        assert!(text.contains("cpma_epoch_ns{quantile=\"0.5\"}"));
        assert!(text.contains("cpma_epoch_ns_count 100"));
        assert!(text.contains("cpma_epoch_ns_sum 5050"));
    }

    #[test]
    fn json_shape() {
        let r = Registry::new();
        r.counter("pma.batches", Unit::Count).add(7);
        let h = r.histogram("epoch.ns", Unit::Nanos);
        h.record(31);
        let body = r.snapshot().to_json();
        assert!(body.contains("\"name\": \"pma.batches\""));
        assert!(body.contains("\"kind\": \"counter\", \"unit\": \"count\", \"value\": 7"));
        assert!(
            body.contains("\"kind\": \"histogram\", \"unit\": \"ns\", \"count\": 1, \"sum\": 31")
        );
        assert!(body.contains("\"p50\": 31"));
        assert!(body.contains("\"p999\": 31"));
    }

    #[test]
    fn json_string_escaping_matches_ubench() {
        assert_eq!(json_string("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_number(f64::NAN), "0");
    }
}
