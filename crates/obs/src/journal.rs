//! Bounded ring-buffer event journal.
//!
//! Every completed [`span()`](crate::span) (and any explicit
//! [`Journal::push`]) lands here as an [`Event`]. The ring keeps the most
//! recent `capacity` events; [`crate::install_panic_hook`] dumps it to
//! stderr when the process panics, so the last thing a crashed run prints
//! is what the system was doing.

use std::collections::VecDeque;
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Default ring capacity (events).
pub const DEFAULT_CAPACITY: usize = 1024;

/// One recorded span/event.
#[derive(Clone, Debug)]
pub struct Event {
    /// Monotonic sequence number (total events ever pushed, 1-based).
    pub seq: u64,
    /// Nanoseconds since the journal first woke up, at event *completion*.
    pub at_ns: u64,
    /// Static span name, e.g. `"combiner.epoch"`.
    pub name: &'static str,
    /// Span duration in nanoseconds (0 for instantaneous events).
    pub dur_ns: u64,
    /// Free-form item count (ops applied, leaves touched, worker index).
    pub items: u64,
}

struct Inner {
    ring: VecDeque<Event>,
    capacity: usize,
    seq: u64,
}

/// The process-wide event journal (see [`journal`]).
pub struct Journal {
    inner: Mutex<Inner>,
    epoch: Instant,
}

/// The process-wide journal.
pub fn journal() -> &'static Journal {
    static J: OnceLock<Journal> = OnceLock::new();
    J.get_or_init(|| Journal::with_capacity(DEFAULT_CAPACITY))
}

impl Journal {
    /// A standalone journal (the usual entry point is the process-wide
    /// [`journal`]; standalone instances are for tests and tools).
    pub fn with_capacity(capacity: usize) -> Journal {
        Journal {
            inner: Mutex::new(Inner {
                ring: VecDeque::with_capacity(capacity.max(1)),
                capacity: capacity.max(1),
                seq: 0,
            }),
            epoch: Instant::now(),
        }
    }

    /// Append an event, evicting the oldest if the ring is full.
    pub fn push(&self, name: &'static str, dur_ns: u64, items: u64) {
        let at_ns = self.epoch.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        let mut inner = self.inner.lock().unwrap();
        inner.seq += 1;
        let seq = inner.seq;
        if inner.ring.len() == inner.capacity {
            inner.ring.pop_front();
        }
        inner.ring.push_back(Event {
            seq,
            at_ns,
            name,
            dur_ns,
            items,
        });
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> Vec<Event> {
        self.inner.lock().unwrap().ring.iter().cloned().collect()
    }

    /// Total events ever pushed (including evicted ones).
    pub fn total_events(&self) -> u64 {
        self.inner.lock().unwrap().seq
    }

    /// Resize the ring (keeps the newest events on shrink).
    pub fn set_capacity(&self, capacity: usize) {
        let capacity = capacity.max(1);
        let mut inner = self.inner.lock().unwrap();
        while inner.ring.len() > capacity {
            inner.ring.pop_front();
        }
        inner.capacity = capacity;
    }

    /// Drop all retained events (the sequence counter keeps counting).
    pub fn clear(&self) {
        self.inner.lock().unwrap().ring.clear();
    }

    /// Human-readable dump, oldest first: one line per event.
    pub fn render(&self) -> String {
        let inner = self.inner.lock().unwrap();
        let mut out = String::new();
        out.push_str(&format!(
            "journal: {} retained of {} total events\n",
            inner.ring.len(),
            inner.seq
        ));
        for e in &inner.ring {
            out.push_str(&format!(
                "  #{:<6} +{:>12}ns  {:<28} dur={:>10}ns items={}\n",
                e.seq, e.at_ns, e.name, e.dur_ns, e.items
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_is_bounded_and_keeps_newest() {
        let j = Journal::with_capacity(4);
        for i in 0..10 {
            j.push("test.ring", i, i);
        }
        let ev = j.events();
        assert_eq!(ev.len(), 4);
        assert_eq!(ev[0].dur_ns, 6, "oldest evicted, order kept");
        assert_eq!(ev[3].dur_ns, 9);
        assert!(ev.windows(2).all(|w| w[0].seq < w[1].seq));
        assert_eq!(j.total_events(), 10);
    }

    #[test]
    fn shrinking_capacity_keeps_newest() {
        let j = Journal::with_capacity(8);
        for i in 0..8 {
            j.push("test.shrink", i, 0);
        }
        j.set_capacity(2);
        let ev = j.events();
        assert_eq!(ev.len(), 2);
        assert_eq!(ev[1].dur_ns, 7);
    }

    #[test]
    fn render_mentions_names() {
        let j = Journal::with_capacity(16);
        j.push("test.render", 123, 7);
        let s = j.render();
        assert!(s.contains("test.render"));
        assert!(s.contains("items=7"));
    }
}
