//! `cpma-obs` — one observability layer for the whole CPMA stack.
//!
//! Std-only, zero dependencies, usable from every other workspace crate
//! (nothing here depends back on the data structures). Four pieces:
//!
//! - **[`Registry`]** — named counters/gauges/histograms. Structures
//!   register per-instance *cells* (so their own `stats()` views stay
//!   schedule-independent); [`Registry::snapshot`] merges live cells with
//!   the retired totals of dropped ones. Recording is a relaxed atomic
//!   add on a thread-striped line — no locks on any hot path.
//! - **[`Histogram`]** — fixed-bucket log-linear (HdrHistogram-style)
//!   distributions with [`HistSnapshot::quantile`] for p50/p99/p999,
//!   exact bucket-wise [`HistSnapshot::merge`], and exact per-octave
//!   counts (what `CombinerStats::ops_per_epoch_log2` is a view of).
//! - **Spans + [`journal`]** — `let _s = span!("combiner.epoch");` times
//!   a region into `<name>.ns` and appends an [`Event`] to a bounded
//!   ring buffer; [`install_panic_hook`] dumps the ring on panic.
//! - **Exposition** — [`Snapshot::to_prometheus`] text and
//!   [`Snapshot::to_json`] (same JSON conventions as `ubench`'s
//!   `BENCH_*.json`).
//!
//! # Determinism contract
//!
//! Metrics are split by [`Unit`]: `Count`/`Bytes` metrics are
//! *deterministic* — for a fixed workload they are identical at any
//! thread budget — while `Nanos` metrics are *timing-derived* and must
//! never feed back into algorithmic decisions. [`set_timing_enabled`]
//! turns the timing side off entirely (spans become no-ops that never
//! read the clock); deterministic counters are always on and cost one
//! relaxed `fetch_add` each.
//!
//! ```
//! use cpma_obs::{global, span, Unit};
//!
//! let ops = global().counter("doc.ops", Unit::Count);
//! {
//!     let mut s = cpma_obs::span!("doc.phase");
//!     ops.add(17);
//!     s.set_items(17);
//! } // span records doc.phase.ns + a journal event here
//! let snap = global().snapshot();
//! assert_eq!(snap.counter("doc.ops"), Some(17));
//! assert!(snap.histogram("doc.phase.ns").is_some());
//! ```

mod journal;
mod metrics;
mod registry;
mod snapshot;

pub use journal::{journal, Event, Journal, DEFAULT_CAPACITY};
pub use metrics::{
    bucket_bounds, bucket_index, Counter, Gauge, HistSnapshot, Histogram, NUM_BUCKETS,
};
pub use registry::{Registry, Unit};
pub use snapshot::{Metric, MetricValue, Snapshot, QUANTILES};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Once, OnceLock};
use std::time::Instant;

/// The process-wide registry. Library crates record here; applications
/// call `global().snapshot()` to expose everything at once.
pub fn global() -> &'static Registry {
    static R: OnceLock<Registry> = OnceLock::new();
    R.get_or_init(Registry::new)
}

static TIMING: AtomicBool = AtomicBool::new(true);

/// Globally enable/disable the timing side (spans, `Histogram::time`).
/// When disabled, spans never read the clock and record nothing — this is
/// the "obs-off" arm of the overhead sweep. Deterministic counters are
/// unaffected.
pub fn set_timing_enabled(on: bool) {
    TIMING.store(on, Ordering::Relaxed);
}

/// Whether the timing side is currently enabled.
#[inline]
pub fn timing_enabled() -> bool {
    TIMING.load(Ordering::Relaxed)
}

/// RAII span guard: on drop, records the elapsed nanoseconds into the
/// span's histogram and appends an event to the [`journal`]. Created by
/// [`span()`]/[`span_with`] (or the [`span!`] macro); inert when timing is
/// disabled.
pub struct SpanGuard {
    name: &'static str,
    start: Option<Instant>,
    hist: Option<Histogram>,
    items: u64,
}

impl SpanGuard {
    /// Attach an item count (ops applied, leaves touched, ...) that lands
    /// in the journal event.
    #[inline]
    pub fn set_items(&mut self, items: u64) {
        self.items = items;
    }

    /// Add to the attached item count.
    #[inline]
    pub fn add_items(&mut self, items: u64) {
        self.items += items;
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let (Some(start), Some(hist)) = (self.start, self.hist.take()) {
            let ns = start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            hist.record(ns);
            journal().push(self.name, ns, self.items);
        }
    }
}

/// Start a span named `name`, timed into the [`global`] registry's
/// shared `"<name>.ns"` histogram. Returns an inert guard when timing is
/// disabled.
pub fn span(name: &'static str) -> SpanGuard {
    if !timing_enabled() {
        return SpanGuard {
            name,
            start: None,
            hist: None,
            items: 0,
        };
    }
    let hist = global().span_histogram(name);
    SpanGuard {
        name,
        start: Some(Instant::now()),
        hist: Some(hist),
        items: 0,
    }
}

/// Start a span recording into a caller-held histogram handle — the
/// zero-lookup variant for hot paths that cache their handles.
pub fn span_with(hist: &Histogram, name: &'static str) -> SpanGuard {
    if !timing_enabled() {
        return SpanGuard {
            name,
            start: None,
            hist: None,
            items: 0,
        };
    }
    SpanGuard {
        name,
        start: Some(Instant::now()),
        hist: Some(hist.clone()),
        items: 0,
    }
}

/// `span!("combiner.epoch")` — sugar for [`span()`]. Bind the guard
/// (`let _s = span!(...)`) so it lives to the end of the region.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span($name)
    };
}

/// Install a panic hook (idempotent, chains any existing hook) that dumps
/// the event [`journal`] to stderr before the default panic output — the
/// last thing a crashed run prints is what the system was doing.
pub fn install_panic_hook() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            eprintln!("== cpma-obs event journal (most recent last) ==");
            eprintln!("{}", journal().render());
            prev(info);
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The timing switch is process-global; tests that read or toggle it
    /// serialize here so the parallel test harness can't interleave them.
    fn timing_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn span_records_histogram_and_journal() {
        let _t = timing_lock();
        let before = journal().total_events();
        {
            let mut s = span!("obs.test.span");
            s.set_items(5);
            std::hint::black_box(());
        }
        assert!(journal().total_events() > before);
        let snap = global().snapshot();
        let h = snap.histogram("obs.test.span.ns").expect("span histogram");
        assert!(h.count >= 1);
        let ev = journal().events();
        assert!(ev.iter().any(|e| e.name == "obs.test.span" && e.items == 5));
    }

    #[test]
    fn disabled_timing_makes_spans_inert() {
        let _t = timing_lock();
        set_timing_enabled(false);
        let before = journal().total_events();
        {
            let _s = span!("obs.test.inert");
        }
        set_timing_enabled(true);
        assert_eq!(journal().total_events(), before);
        assert!(global().snapshot().histogram("obs.test.inert.ns").is_none());
    }

    #[test]
    fn histogram_time_respects_switch() {
        let _t = timing_lock();
        let r = Registry::new();
        let h = r.histogram("t.ns", Unit::Nanos);
        set_timing_enabled(false);
        let v = h.time(|| 42);
        set_timing_enabled(true);
        assert_eq!(v, 42);
        assert_eq!(h.snapshot().count, 0);
        let v = h.time(|| 43);
        assert_eq!(v, 43);
        assert_eq!(h.snapshot().count, 1);
    }
}
