//! Metric primitives: striped atomic counters, gauges, and log-linear
//! latency histograms.
//!
//! Every handle ([`Counter`], [`Gauge`], [`Histogram`]) is a cheap
//! `Arc`-backed clone around a *cell* owned by the structure that records
//! into it. The [`Registry`](crate::Registry) holds `Weak` references to
//! live cells plus a *retired* sink per metric name: when a cell is
//! dropped (its owning structure goes away), its totals are folded into
//! the retired sink so registry snapshots stay monotonic across structure
//! lifetimes.

use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Number of cache-line-padded stripes per counter cell. Threads hash to a
/// stripe so concurrent `add`s don't bounce one line between cores.
pub(crate) const STRIPES: usize = 8;

#[repr(align(64))]
#[derive(Default)]
pub(crate) struct Stripe(pub(crate) AtomicU64);

/// Stable per-thread stripe index (assigned round-robin on first use).
fn stripe_index() -> usize {
    use std::cell::Cell;
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static IDX: Cell<usize> = const { Cell::new(usize::MAX) };
    }
    IDX.with(|c| {
        let mut i = c.get();
        if i == usize::MAX {
            i = NEXT.fetch_add(1, Ordering::Relaxed) % STRIPES;
            c.set(i);
        }
        i
    })
}

// ---------------------------------------------------------------------------
// Counter
// ---------------------------------------------------------------------------

pub(crate) struct CounterCell {
    stripes: [Stripe; STRIPES],
    retired: Arc<AtomicU64>,
}

impl CounterCell {
    pub(crate) fn new(retired: Arc<AtomicU64>) -> Self {
        Self {
            stripes: Default::default(),
            retired,
        }
    }

    pub(crate) fn value(&self) -> u64 {
        self.stripes
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }
}

impl Drop for CounterCell {
    fn drop(&mut self) {
        // Fold this cell's total into the per-name retired sink so the
        // registry's view of the metric never goes backwards.
        self.retired.fetch_add(self.value(), Ordering::Relaxed);
    }
}

/// Monotonic event counter. `add` is a single relaxed `fetch_add` on a
/// thread-striped cache line — safe on any hot path.
#[derive(Clone)]
pub struct Counter(pub(crate) Arc<CounterCell>);

impl Counter {
    /// Add 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.stripes[stripe_index()]
            .0
            .fetch_add(n, Ordering::Relaxed);
    }

    /// Current total recorded through *this cell* (not the global sum —
    /// use [`Registry::snapshot`](crate::Registry::snapshot) for that).
    pub fn value(&self) -> u64 {
        self.0.value()
    }
}

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Counter").field(&self.value()).finish()
    }
}

// ---------------------------------------------------------------------------
// Gauge
// ---------------------------------------------------------------------------

pub(crate) struct GaugeCell {
    value: AtomicI64,
}

/// Instantaneous level (queue depth, shard count, live workers). Unlike
/// counters, a gauge's contribution vanishes when its cell is dropped.
#[derive(Clone)]
pub struct Gauge(pub(crate) Arc<GaugeCell>);

impl Gauge {
    pub(crate) fn new_cell() -> Self {
        Gauge(Arc::new(GaugeCell {
            value: AtomicI64::new(0),
        }))
    }

    /// Set the gauge to an absolute level.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.value.store(v, Ordering::Relaxed);
    }

    /// Adjust the gauge by a delta.
    #[inline]
    pub fn add(&self, d: i64) {
        self.0.value.fetch_add(d, Ordering::Relaxed);
    }

    /// Current level of this cell.
    pub fn value(&self) -> i64 {
        self.0.value.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for Gauge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Gauge").field(&self.value()).finish()
    }
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

/// Subbucket resolution: 2^5 = 32 subbuckets per octave, i.e. worst-case
/// relative quantile error of 1/32 (~3%).
pub(crate) const SUB_BITS: u32 = 5;
pub(crate) const SUB: usize = 1 << SUB_BITS;

/// Total bucket count: 32 exact buckets for values `< 32`, then 32
/// subbuckets per octave for octaves 5..=63.
pub const NUM_BUCKETS: usize = SUB + (64 - SUB_BITS as usize) * SUB;

/// Bucket index for a recorded value (HdrHistogram-style log-linear).
/// Values below 32 are exact; above, each octave is split into 32 linear
/// subbuckets. Buckets never span an octave boundary, which is what makes
/// [`HistSnapshot::octave_counts`] an exact log2 view.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < SUB as u64 {
        v as usize
    } else {
        let octave = 63 - v.leading_zeros(); // >= SUB_BITS
        let sub = (v >> (octave - SUB_BITS)) as usize & (SUB - 1);
        ((octave - SUB_BITS + 1) as usize) * SUB + sub
    }
}

/// `(low, high)` inclusive value bounds of bucket `i`.
pub fn bucket_bounds(i: usize) -> (u64, u64) {
    debug_assert!(i < NUM_BUCKETS);
    if i < SUB {
        (i as u64, i as u64)
    } else {
        let octave = (i / SUB - 1) as u32 + SUB_BITS;
        let sub = (i % SUB) as u64;
        let width = 1u64 << (octave - SUB_BITS);
        let lo = (SUB as u64 + sub) << (octave - SUB_BITS);
        (lo, lo + (width - 1))
    }
}

#[derive(Default)]
pub(crate) struct RetiredHist {
    pub(crate) buckets: Vec<u64>, // empty (all-zero) or NUM_BUCKETS long
    pub(crate) sum: u64,
}

impl RetiredHist {
    pub(crate) fn fold_into(&self, snap: &mut HistSnapshot) {
        snap.sum = snap.sum.wrapping_add(self.sum);
        for (i, &c) in self.buckets.iter().enumerate() {
            if c != 0 {
                snap.buckets[i] += c;
                snap.count += c;
            }
        }
    }
}

pub(crate) struct HistCell {
    buckets: Box<[AtomicU64]>, // NUM_BUCKETS long
    sum: AtomicU64,
    retired: Arc<Mutex<RetiredHist>>,
}

impl HistCell {
    pub(crate) fn new(retired: Arc<Mutex<RetiredHist>>) -> Self {
        let buckets: Vec<AtomicU64> = (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect();
        Self {
            buckets: buckets.into_boxed_slice(),
            sum: AtomicU64::new(0),
            retired,
        }
    }

    pub(crate) fn fold_into(&self, snap: &mut HistSnapshot) {
        snap.sum = snap.sum.wrapping_add(self.sum.load(Ordering::Relaxed));
        for (i, b) in self.buckets.iter().enumerate() {
            let c = b.load(Ordering::Relaxed);
            if c != 0 {
                snap.buckets[i] += c;
                snap.count += c;
            }
        }
    }
}

impl Drop for HistCell {
    fn drop(&mut self) {
        let mut retired = self.retired.lock().unwrap();
        if retired.buckets.is_empty() {
            retired.buckets = vec![0; NUM_BUCKETS];
        }
        retired.sum = retired.sum.wrapping_add(self.sum.load(Ordering::Relaxed));
        for (i, b) in self.buckets.iter().enumerate() {
            retired.buckets[i] += b.load(Ordering::Relaxed);
        }
    }
}

/// Fixed-bucket log-linear latency/size histogram (1920 buckets covering
/// the full `u64` range; values `< 32` exact, then 32 subbuckets per
/// octave). `record` is two relaxed `fetch_add`s.
#[derive(Clone)]
pub struct Histogram(pub(crate) Arc<HistCell>);

impl Histogram {
    /// Record one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        self.0.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Record a duration in nanoseconds (saturating at `u64::MAX`).
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Time `f` and record the elapsed nanoseconds — unless timing is
    /// globally disabled via [`set_timing_enabled`](crate::set_timing_enabled),
    /// in which case `f` runs untouched (zero clock reads).
    #[inline]
    pub fn time<T>(&self, f: impl FnOnce() -> T) -> T {
        if !crate::timing_enabled() {
            return f();
        }
        let start = Instant::now();
        let out = f();
        self.record_duration(start.elapsed());
        out
    }

    /// Snapshot of *this cell* (not the merged per-name view — use
    /// [`Registry::snapshot`](crate::Registry::snapshot) for that).
    pub fn snapshot(&self) -> HistSnapshot {
        let mut snap = HistSnapshot::new();
        self.0.fold_into(&mut snap);
        snap
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.snapshot();
        f.debug_struct("Histogram")
            .field("count", &s.count)
            .field("p50", &s.quantile(0.5))
            .finish()
    }
}

/// Immutable merged view of a histogram: bucket counts plus total
/// count/sum. Merging snapshots is bucket-wise addition and therefore
/// exactly associative and commutative.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistSnapshot {
    pub(crate) buckets: Vec<u64>,
    /// Number of recorded observations.
    pub count: u64,
    /// Sum of recorded values (wrapping).
    pub sum: u64,
}

impl Default for HistSnapshot {
    fn default() -> Self {
        Self::new()
    }
}

impl HistSnapshot {
    /// An empty snapshot.
    pub fn new() -> Self {
        Self {
            buckets: vec![0; NUM_BUCKETS],
            count: 0,
            sum: 0,
        }
    }

    /// Record into a snapshot directly (useful for tests and offline
    /// aggregation; the concurrent path is [`Histogram::record`]).
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_index(v)] += 1;
        self.sum = self.sum.wrapping_add(v);
        self.count += 1;
    }

    /// Bucket-wise merge of `other` into `self`.
    pub fn merge(&mut self, other: &HistSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
    }

    /// Quantile estimate: the inclusive upper bound of the bucket holding
    /// the rank-`ceil(q·count)` observation (ranks clamp to `[1, count]`).
    /// Exact for values `< 32`; relative error `<= 1/32` above. Returns 0
    /// on an empty snapshot.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return bucket_bounds(i).1;
            }
        }
        bucket_bounds(NUM_BUCKETS - 1).1
    }

    /// Mean of recorded values (0.0 on an empty snapshot).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Exact per-octave counts: slot `k` holds the number of observations
    /// `v` with `ilog2(max(v, 1)) == k`, and the last slot collects every
    /// larger octave. Exact because buckets never span octave boundaries.
    pub fn octave_counts<const NB: usize>(&self) -> [u64; NB] {
        let mut out = [0u64; NB];
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let (lo, _) = bucket_bounds(i);
            let octave = if lo <= 1 { 0 } else { lo.ilog2() as usize };
            out[octave.min(NB - 1)] += c;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_roundtrips_bounds() {
        for i in 0..NUM_BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert_eq!(bucket_index(lo), i, "lo of bucket {i}");
            assert_eq!(bucket_index(hi), i, "hi of bucket {i}");
        }
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
    }

    #[test]
    fn buckets_are_contiguous_and_never_span_octaves() {
        let mut prev_hi = None;
        for i in 0..NUM_BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert!(lo <= hi);
            if let Some(p) = prev_hi {
                assert_eq!(lo, p + 1, "gap before bucket {i}");
            }
            if lo >= 2 {
                assert_eq!(lo.ilog2(), hi.ilog2(), "bucket {i} spans an octave");
            }
            prev_hi = Some(hi);
        }
        assert_eq!(prev_hi, Some(u64::MAX));
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = HistSnapshot::new();
        for v in 0..SUB as u64 {
            h.record(v);
        }
        for v in 0..SUB as u64 {
            assert_eq!(h.buckets[v as usize], 1);
        }
    }

    #[test]
    fn octave_counts_match_ilog2() {
        let mut h = HistSnapshot::new();
        let values = [
            0u64,
            1,
            2,
            3,
            4,
            7,
            8,
            100,
            1000,
            1 << 14,
            (1 << 15) + 9,
            1 << 40,
        ];
        for &v in &values {
            h.record(v);
        }
        let got = h.octave_counts::<16>();
        let mut want = [0u64; 16];
        for &v in &values {
            let oct = if v <= 1 { 0 } else { v.ilog2() as usize };
            want[oct.min(15)] += 1;
        }
        assert_eq!(got, want);
    }

    #[test]
    fn counter_stripes_sum() {
        let retired = Arc::new(AtomicU64::new(0));
        let c = Counter(Arc::new(CounterCell::new(retired.clone())));
        c.add(5);
        c.inc();
        assert_eq!(c.value(), 6);
        drop(c);
        assert_eq!(
            retired.load(Ordering::Relaxed),
            6,
            "drop folds into retired"
        );
    }

    #[test]
    fn gauge_set_add() {
        let g = Gauge::new_cell();
        g.set(10);
        g.add(-3);
        assert_eq!(g.value(), 7);
    }
}
