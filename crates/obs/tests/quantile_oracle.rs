//! Histogram quantile math vs an exact sorted-sample oracle.
//!
//! The histogram's contract: `quantile(q)` returns the inclusive upper
//! bound of the bucket holding the rank-`ceil(q·n)` sample, so for the
//! exact oracle value `e` at that rank, `e <= quantile(q)` and the
//! overshoot is at most one bucket width (`<= max(1, e/16)` for our
//! 32-subbuckets-per-octave layout). Verified across uniform, zipf, and
//! point-mass distributions, plus merge associativity.

use cpma_obs::HistSnapshot;

/// Deterministic SplitMix64 — the same generator style the workloads
/// crate uses, reimplemented here so obs stays dependency-free.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }
}

/// Exact oracle: the rank-`ceil(q·n)` element of the sorted sample
/// (ranks clamp to `[1, n]`), i.e. the same rank definition the
/// histogram uses.
fn oracle(sorted: &[u64], q: f64) -> u64 {
    let n = sorted.len() as u64;
    let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
    sorted[(rank - 1) as usize]
}

const QS: [f64; 5] = [0.5, 0.9, 0.99, 0.999, 1.0];

fn check_against_oracle(samples: &[u64], what: &str) {
    let mut h = HistSnapshot::new();
    let mut sorted = samples.to_vec();
    for &v in samples {
        h.record(v);
    }
    sorted.sort_unstable();
    assert_eq!(h.count, samples.len() as u64);
    for q in QS {
        let e = oracle(&sorted, q);
        let r = h.quantile(q);
        assert!(
            e <= r && r - e <= (e / 16).max(1),
            "{what}: q={q} oracle={e} histogram={r}"
        );
    }
}

#[test]
fn uniform_distribution() {
    let mut rng = Rng(1);
    for range in [100u64, 10_000, 1 << 32] {
        let samples: Vec<u64> = (0..20_000).map(|_| rng.next() % range).collect();
        check_against_oracle(&samples, &format!("uniform[0,{range})"));
    }
}

#[test]
fn zipf_distribution() {
    // Zipf(s=1) over ranks 1..=N via inverse-CDF on the harmonic weights.
    const N: usize = 10_000;
    let mut cdf = Vec::with_capacity(N);
    let mut acc = 0.0f64;
    for k in 1..=N {
        acc += 1.0 / k as f64;
        cdf.push(acc);
    }
    let total = acc;
    let mut rng = Rng(2);
    let samples: Vec<u64> = (0..50_000)
        .map(|_| {
            let u = (rng.next() >> 11) as f64 / (1u64 << 53) as f64 * total;
            let idx = cdf.partition_point(|&c| c < u).min(N - 1);
            (idx + 1) as u64
        })
        .collect();
    check_against_oracle(&samples, "zipf(s=1)");
}

#[test]
fn point_mass_distributions() {
    // All mass on one value: every quantile is that value's bucket.
    for v in [0u64, 1, 31, 32, 1_000_000, u64::MAX] {
        let samples = vec![v; 1000];
        check_against_oracle(&samples, &format!("point-mass@{v}"));
    }
    // Two-point mass: p50 must sit on the lower mode, p99 on the upper.
    let mut samples = vec![10u64; 600];
    samples.extend(std::iter::repeat_n(1_000_000u64, 400));
    let mut h = HistSnapshot::new();
    for &v in &samples {
        h.record(v);
    }
    assert_eq!(h.quantile(0.5), 10, "p50 lands exactly on the lower mode");
    let p99 = h.quantile(0.99);
    assert!(
        (1_000_000..=1_031_249).contains(&p99),
        "p99={p99} within one bucket of the upper mode"
    );
}

#[test]
fn small_values_are_exact_at_every_quantile() {
    // Values < 32 land in width-1 buckets: quantiles are exactly the oracle.
    let mut rng = Rng(3);
    let samples: Vec<u64> = (0..5_000).map(|_| rng.next() % 32).collect();
    let mut sorted = samples.clone();
    sorted.sort_unstable();
    let mut h = HistSnapshot::new();
    for &v in &samples {
        h.record(v);
    }
    for q in QS {
        assert_eq!(h.quantile(q), oracle(&sorted, q), "q={q}");
    }
}

#[test]
fn merge_is_associative_and_commutative() {
    let mut rng = Rng(4);
    let mk = |rng: &mut Rng, n: usize, range: u64| {
        let mut h = HistSnapshot::new();
        for _ in 0..n {
            h.record(rng.next() % range);
        }
        h
    };
    let a = mk(&mut rng, 1000, 1 << 20);
    let b = mk(&mut rng, 2000, 1 << 10);
    let c = mk(&mut rng, 500, u64::MAX);

    // (a ⊕ b) ⊕ c
    let mut ab_c = a.clone();
    ab_c.merge(&b);
    ab_c.merge(&c);
    // a ⊕ (b ⊕ c)
    let mut bc = b.clone();
    bc.merge(&c);
    let mut a_bc = a.clone();
    a_bc.merge(&bc);
    assert_eq!(ab_c, a_bc, "merge is associative (bucket-exact)");

    // b ⊕ a == a ⊕ b
    let mut ba = b.clone();
    ba.merge(&a);
    let mut ab = a.clone();
    ab.merge(&b);
    assert_eq!(ab, ba, "merge is commutative (bucket-exact)");

    assert_eq!(ab_c.count, 3500);
}

#[test]
fn merge_of_shards_equals_whole() {
    // Recording a stream into one histogram or into 8 shards then merging
    // must produce the identical snapshot — the property that makes
    // per-shard cells safe to aggregate in the registry.
    let mut rng = Rng(5);
    let samples: Vec<u64> = (0..40_000)
        .map(|_| rng.next() >> (rng.next() % 50))
        .collect();
    let mut whole = HistSnapshot::new();
    let mut shards = vec![HistSnapshot::new(); 8];
    for (i, &v) in samples.iter().enumerate() {
        whole.record(v);
        shards[i % 8].record(v);
    }
    let mut merged = HistSnapshot::new();
    for s in &shards {
        merged.merge(s);
    }
    assert_eq!(whole, merged);
    for q in QS {
        assert_eq!(whole.quantile(q), merged.quantile(q));
    }
}
