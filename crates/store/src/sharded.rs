//! Range-partitioned sharding over any batch-parallel set backend.
//!
//! # Shard routing
//!
//! A [`ShardedSet<S, N>`] owns `N` backends and `N − 1` ascending
//! *splitters*. Key `k` lives in shard `i` iff
//! `splitters[i − 1] ≤ k < splitters[i]` (with implicit `−∞`/`+∞`
//! sentinels), i.e. `shard_of(k)` is the number of splitters ≤ `k`.
//! Because shards partition the key space in order, every cross-shard
//! operation stitches shard results in shard index order and gets key
//! order for free: `to_vec` concatenates, `scan_from` resumes in the next
//! shard, `range_sum` adds per-shard sums, `par_chunks` hands out each
//! shard's chunks unchanged.
//!
//! # Batch splitting
//!
//! The `*_batch_sorted` methods binary-search the sorted batch once per
//! splitter ([`slice::partition_point`]), yielding `N` disjoint sub-batch
//! ranges, then apply them to their shards **in parallel** via the
//! workspace pool (`par_iter_mut` over the shard vector). Sub-batch `i`
//! only ever touches shard `i`, so the shards' `&mut` batch updates run
//! concurrently without any locking, and the per-shard counts are summed
//! in shard index order — results are bit-identical at any thread count.
//! Mixed op batches ([`BatchSet::apply_batch_sorted`]) follow the same
//! route: **one** split of the op run at the splitters, each shard
//! applying its interleaved inserts and removes in its backend's single
//! mixed pass — where the former remove-then-insert split walked every
//! shard twice.
//!
//! # Splitter learning and rebalance
//!
//! A freshly built set learns its splitters from the data: splitter `i` is
//! the `(i + 1)/N` quantile of the sorted input. An empty set starts from
//! evenly spaced cut points over the `u64` domain. Skewed traffic can
//! outgrow either choice, so after every batch update the set checks the
//! observed skew: once it holds at least [`REBALANCE_MIN_PER_SHARD`]
//! elements per shard on average, and the fullest shard exceeds
//! [`SKEW_FACTOR`]× the mean, the set re-learns quantile splitters from
//! its own (sorted) contents and redistributes — an `O(n)` rebuild, the
//! same cost class as the backend PMA's own resize, and deterministic
//! because it depends only on the stored contents.

use cpma_api::{
    range_to_inclusive, BatchOp, BatchOutcome, BatchSet, OrderedSet, ParallelChunks, RangeSet,
    SetKey,
};
use rayon::prelude::*;
use std::ops::RangeBounds;

/// Average elements per shard below which rebalance is never attempted
/// (tiny sets gain nothing from redistribution).
pub const REBALANCE_MIN_PER_SHARD: usize = 256;

/// Rebalance triggers when the fullest shard holds more than this many
/// times the mean shard load.
pub const SKEW_FACTOR: usize = 2;

/// A range-partitioned composition of `N` ordered-set backends that
/// applies sorted batches to its shards in parallel.
///
/// `ShardedSet<S, N>` implements the same canonical trait hierarchy as its
/// backend `S`, so it drops into every generic driver in the workspace —
/// including [`Combiner`](crate::Combiner), benches, and
/// `fgraph::SetGraph`. The default shard count is 8.
#[derive(Clone)]
pub struct ShardedSet<S, const N: usize = 8> {
    /// The backends, in key order.
    shards: Vec<S>,
    /// `splitters[i]` = smallest key (widened to `u64`) routed to shard
    /// `i + 1`; strictly context-dependent but always non-decreasing.
    splitters: Vec<u64>,
}

/// Sub-batch boundaries: `bounds[i]..bounds[i + 1]` is shard `i`'s slice
/// of a batch sorted by key — plain keys and mixed op runs split through
/// the same routine via `key_of`.
fn split_bounds_by<T>(splitters: &[u64], batch: &[T], key_of: impl Fn(&T) -> u64) -> Vec<usize> {
    let mut bounds = Vec::with_capacity(splitters.len() + 2);
    bounds.push(0);
    for &s in splitters {
        bounds.push(batch.partition_point(|t| key_of(t) < s));
    }
    bounds.push(batch.len());
    bounds
}

fn split_bounds<K: SetKey>(splitters: &[u64], batch: &[K]) -> Vec<usize> {
    split_bounds_by(splitters, batch, |k| k.to_u64())
}

impl<S, const N: usize> ShardedSet<S, N> {
    /// Shard index for a key (widened): the number of splitters ≤ it.
    fn shard_of(&self, key: u64) -> usize {
        self.splitters.partition_point(|&s| s <= key)
    }

    /// Evenly spaced cut points over the `u64` domain — the no-data prior.
    fn default_splitters() -> Vec<u64> {
        let stride = (u64::MAX / N as u64).max(1);
        (1..N as u64).map(|i| i.saturating_mul(stride)).collect()
    }

    /// Quantile splitters learned from a strictly increasing key slice;
    /// falls back to the domain prior when there is too little data to
    /// pick `N − 1` distinct quantiles.
    fn learned_splitters<K: SetKey>(elems: &[K]) -> Vec<u64> {
        if elems.len() < N * 2 {
            return Self::default_splitters();
        }
        (1..N)
            .map(|i| elems[i * elems.len() / N].to_u64())
            .collect()
    }

    /// Current per-shard element counts (diagnostics and tests).
    pub fn shard_lens<K: SetKey>(&self) -> Vec<usize>
    where
        S: OrderedSet<K>,
    {
        self.shards.iter().map(|s| s.len()).collect()
    }

    /// The number of shards, `N`.
    pub fn shard_count(&self) -> usize {
        N
    }

    /// The current splitters (widened to `u64`), ascending.
    pub fn splitters(&self) -> &[u64] {
        &self.splitters
    }
}

impl<S, const N: usize> ShardedSet<S, N> {
    /// Split `batch` at the splitters and run `apply` on every non-empty
    /// (shard, sub-batch) pair in parallel; returns the summed counts in
    /// shard index order (schedule-independent).
    fn apply_split<K: SetKey>(
        &mut self,
        batch: &[K],
        apply: impl Fn(&mut S, &[K]) -> usize + Sync + Send,
    ) -> usize
    where
        S: Send,
    {
        let bounds = split_bounds(&self.splitters, batch);
        let bounds = &bounds;
        self.shards
            .par_iter_mut()
            .enumerate()
            .map(|(i, shard)| {
                let sub = &batch[bounds[i]..bounds[i + 1]];
                if sub.is_empty() {
                    0
                } else {
                    apply(shard, sub)
                }
            })
            .sum()
    }

    /// Re-learn splitters from the stored contents and redistribute if the
    /// observed skew warrants it. Depends only on the stored contents, so
    /// the decision (and result) is identical at any thread count.
    fn maybe_rebalance<K: SetKey>(&mut self)
    where
        S: BatchSet<K> + RangeSet<K> + Send,
    {
        if N <= 1 {
            return;
        }
        let lens: Vec<usize> = self.shards.iter().map(|s| s.len()).collect();
        let total: usize = lens.iter().sum();
        if total < N * REBALANCE_MIN_PER_SHARD {
            return;
        }
        let max = lens.into_iter().max().unwrap_or(0);
        if max * N > total * SKEW_FACTOR {
            let all = RangeSet::to_vec(self);
            *self = BatchSet::build_sorted(&all);
        }
    }
}

impl<K: SetKey, S: OrderedSet<K>, const N: usize> OrderedSet<K> for ShardedSet<S, N> {
    const NAME: &'static str = "Sharded";

    fn contains(&self, key: K) -> bool {
        self.shards[self.shard_of(key.to_u64())].contains(key)
    }

    fn len(&self) -> usize {
        self.shards.iter().map(|s| s.len()).sum()
    }

    fn min(&self) -> Option<K> {
        self.shards.iter().find_map(|s| s.min())
    }

    fn max(&self) -> Option<K> {
        self.shards.iter().rev().find_map(|s| s.max())
    }

    fn successor(&self, key: K) -> Option<K> {
        let first = self.shard_of(key.to_u64());
        // Every key in a later shard is ≥ its left splitter > `key`, so
        // the first hit in shard order is the global successor.
        self.shards[first]
            .successor(key)
            .or_else(|| self.shards[first + 1..].iter().find_map(|s| s.min()))
    }

    fn size_bytes(&self) -> usize {
        self.shards.iter().map(|s| s.size_bytes()).sum::<usize>()
            + self.splitters.len() * std::mem::size_of::<u64>()
    }
}

impl<K: SetKey, S: BatchSet<K> + RangeSet<K> + Send, const N: usize> BatchSet<K>
    for ShardedSet<S, N>
{
    fn new_set() -> Self {
        assert!(N >= 1, "ShardedSet needs at least one shard");
        Self {
            shards: (0..N).map(|_| S::new_set()).collect(),
            splitters: Self::default_splitters(),
        }
    }

    fn build_sorted(elems: &[K]) -> Self {
        assert!(N >= 1, "ShardedSet needs at least one shard");
        let splitters = Self::learned_splitters(elems);
        let bounds = split_bounds(&splitters, elems);
        let bounds = &bounds;
        let shards: Vec<S> = (0..N)
            .into_par_iter()
            .map(|i| S::build_sorted(&elems[bounds[i]..bounds[i + 1]]))
            .collect();
        Self { shards, splitters }
    }

    fn insert_batch_sorted(&mut self, batch: &[K]) -> usize {
        let added = self.apply_split(batch, |s, b| s.insert_batch_sorted(b));
        self.maybe_rebalance();
        added
    }

    fn remove_batch_sorted(&mut self, batch: &[K]) -> usize {
        let removed = self.apply_split(batch, |s, b| s.remove_batch_sorted(b));
        self.maybe_rebalance();
        removed
    }

    /// Mixed batches split **once** at the splitters and fan out to the
    /// shards in parallel, each shard running its backend's own mixed
    /// pass; outcomes merge in shard index order (schedule-independent).
    fn apply_batch_sorted(&mut self, ops: &[BatchOp<K>]) -> BatchOutcome {
        let bounds = split_bounds_by(&self.splitters, ops, |op| op.key().to_u64());
        let bounds = &bounds;
        let outcome = self
            .shards
            .par_iter_mut()
            .enumerate()
            .map(|(i, shard)| {
                let sub = &ops[bounds[i]..bounds[i + 1]];
                if sub.is_empty() {
                    BatchOutcome::default()
                } else {
                    shard.apply_batch_sorted(sub)
                }
            })
            .reduce(BatchOutcome::default, |a, b| a + b);
        self.maybe_rebalance();
        outcome
    }
}

impl<K: SetKey, S: RangeSet<K>, const N: usize> RangeSet<K> for ShardedSet<S, N> {
    fn scan_from(&self, start: K, f: &mut dyn FnMut(K) -> bool) {
        let first = self.shard_of(start.to_u64());
        let mut live = true;
        for (i, shard) in self.shards.iter().enumerate().skip(first) {
            let from = if i == first { start } else { K::MIN };
            shard.scan_from(from, &mut |k| {
                live = f(k);
                live
            });
            if !live {
                return;
            }
        }
    }

    fn range_sum<R: RangeBounds<K>>(&self, range: R) -> u64 {
        // Stitch per-shard sums in shard (= key) order so each backend's
        // own range_sum fast path runs on its slice of the range.
        let Some((lo, hi)) = range_to_inclusive(&range) else {
            return 0;
        };
        let first = self.shard_of(lo.to_u64());
        let last = self.shard_of(hi.to_u64());
        let mut sum = 0u64;
        for shard in &self.shards[first..=last] {
            sum = sum.wrapping_add(shard.range_sum(lo..=hi));
        }
        sum
    }
}

impl<K: SetKey, S: ParallelChunks<K> + Sync, const N: usize> ParallelChunks<K>
    for ShardedSet<S, N>
{
    /// Shards are disjoint and ascending, so each shard's chunks are valid
    /// chunks of the whole set; visit the shards in parallel too.
    fn par_chunks(&self, f: &(dyn Fn(&[K]) + Sync)) {
        self.shards.par_iter().for_each(|s| s.par_chunks(f));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    type Sharded4 = ShardedSet<BTreeSet<u64>, 4>;

    #[test]
    fn routing_matches_splitters() {
        let s = Sharded4 {
            shards: (0..4).map(|_| BTreeSet::new()).collect(),
            splitters: vec![10, 20, 30],
        };
        assert_eq!(s.shard_of(0), 0);
        assert_eq!(s.shard_of(9), 0);
        assert_eq!(s.shard_of(10), 1);
        assert_eq!(s.shard_of(29), 2);
        assert_eq!(s.shard_of(30), 3);
        assert_eq!(s.shard_of(u64::MAX), 3);
    }

    #[test]
    fn split_bounds_partition_the_batch() {
        let batch: Vec<u64> = vec![1, 5, 10, 15, 25, 40];
        let bounds = split_bounds(&[10, 20, 30], &batch);
        assert_eq!(bounds, vec![0, 2, 4, 5, 6]);
        // Sub-batches agree with per-key routing.
        let s = Sharded4 {
            shards: (0..4).map(|_| BTreeSet::new()).collect(),
            splitters: vec![10, 20, 30],
        };
        for i in 0..4 {
            for &k in &batch[bounds[i]..bounds[i + 1]] {
                assert_eq!(s.shard_of(k), i, "key {k}");
            }
        }
    }

    #[test]
    fn build_learns_quantile_splitters() {
        let elems: Vec<u64> = (0..1000).map(|i| i * 3).collect();
        let s: Sharded4 = BatchSet::build_sorted(&elems);
        assert_eq!(s.splitters().len(), 3);
        assert_eq!(RangeSet::to_vec(&s), elems);
        let lens = s.shard_lens();
        assert_eq!(lens.iter().sum::<usize>(), 1000);
        assert!(
            lens.iter().all(|&l| l == 250),
            "quantile build should balance exactly: {lens:?}"
        );
    }

    #[test]
    fn skewed_traffic_triggers_rebalance() {
        // Dense small keys all route to shard 0 under the domain prior.
        let mut s: Sharded4 = BatchSet::new_set();
        let keys: Vec<u64> = (0..(4 * REBALANCE_MIN_PER_SHARD as u64)).collect();
        s.insert_batch_sorted(&keys);
        let lens = s.shard_lens();
        let max = *lens.iter().max().unwrap();
        assert!(
            max <= keys.len() / 3,
            "rebalance should have spread the load: {lens:?}"
        );
        assert_eq!(OrderedSet::len(&s), keys.len());
        assert_eq!(RangeSet::to_vec(&s), keys);
    }

    #[test]
    fn single_shard_degenerates_gracefully() {
        let mut s: ShardedSet<BTreeSet<u64>, 1> = BatchSet::new_set();
        assert!(s.splitters().is_empty());
        s.insert_batch_sorted(&[1, 2, 3]);
        assert_eq!(OrderedSet::len(&s), 3);
        assert_eq!(s.remove_batch_sorted(&[2, 9]), 1);
        assert_eq!(RangeSet::to_vec(&s), vec![1, 3]);
    }

    #[test]
    fn mixed_batches_fan_out_across_shards() {
        use cpma_api::normalize_ops;
        let elems: Vec<u64> = (0..2_000).map(|i| i * 4).collect();
        let mut s: Sharded4 = BatchSet::build_sorted(&elems);
        let mut model: BTreeSet<u64> = elems.iter().copied().collect();
        // Ops spanning every shard, interleaving inserts and removes.
        let mut ops: Vec<BatchOp<u64>> = (0..1_000u64)
            .map(|i| {
                if i % 2 == 0 {
                    BatchOp::Remove(i * 8)
                } else {
                    BatchOp::Insert(i * 8 + 1)
                }
            })
            .collect();
        let norm = normalize_ops(&mut ops);
        let mut want = BatchOutcome::default();
        for op in norm {
            match *op {
                BatchOp::Insert(k) => want.added += usize::from(model.insert(k)),
                BatchOp::Remove(k) => want.removed += usize::from(model.remove(&k)),
            }
        }
        let got = s.apply_batch_sorted(norm);
        assert_eq!(got, want);
        assert_eq!(
            RangeSet::to_vec(&s),
            model.iter().copied().collect::<Vec<_>>()
        );
    }

    #[test]
    fn cross_shard_queries_stitch_in_key_order() {
        let elems: Vec<u64> = (0..400).map(|i| i * 5).collect();
        let s: Sharded4 = BatchSet::build_sorted(&elems);
        // Range spanning all shards.
        assert_eq!(
            s.range_sum(..),
            elems.iter().fold(0u64, |a, &b| a.wrapping_add(b))
        );
        // scan_from across a shard boundary, with early exit.
        let mut got = Vec::new();
        s.scan_from(495, &mut |k| {
            got.push(k);
            got.len() < 4
        });
        assert_eq!(got, vec![495, 500, 505, 510]);
        assert_eq!(OrderedSet::successor(&s, 501), Some(505));
        assert_eq!(OrderedSet::min(&s), Some(0));
        assert_eq!(OrderedSet::max(&s), Some(1995));
    }
}
